#!/usr/bin/env python3
"""Perf-trend diff for the CI smoke-bench artifacts (ROADMAP "Perf
trajectory").

Compares every BENCH_smoke*.json in a baseline directory (the previous CI
run's artifact) against the same-named file in the current directory and
warns -- GitHub `::warning::` annotations, nonzero is never returned -- on
metrics that regressed by more than the threshold (default 10%).

Row matching: rows are keyed by the bench name plus every field that is
not a known metric (backend, d, n, mode, ...). Metrics where lower is
better are checked current-vs-baseline; rate metrics (higher is better)
are checked in the opposite direction. CPU metrics on shared runners are
noisy, so they use a slacker threshold (default 50%) -- the trend signal
there is order-of-magnitude, not percent.

Usage: perf_trend.py BASELINE_DIR CURRENT_DIR [--threshold 0.10]
"""

import argparse
import glob
import json
import os
import sys

# Lower is better. CPU-ish metrics get the slack threshold.
METRICS_LOWER = {
    "bytes_down", "bytes_up", "rounds", "frames",
    "mean", "median", "stddev",
    "riblt", "met", "iblt", "iblt_est", "pinsketch",
    "bytes_plain", "bytes_residual", "count_bytes_per_symbol",  # §6 wire cost
    # Adaptive-backend bench: total link traffic, bytes before the peer's
    # first useful frame, pacing-credit round trips, and the adaptive/best-
    # fixed cost ratio (all deterministic netsim numbers).
    "link_bytes", "first_contact_bytes", "credits", "ratio",
    # Chaos anti-entropy harness: staleness and per-item wire cost are
    # simulated-clock numbers, deterministic for a given seed/scale.
    "staleness_p50_s", "staleness_p99_s", "bytes_per_item",
}
METRICS_LOWER_NOISY = {
    "cpu_s", "hello_us", "churn_us", "build_s", "wall_s",
    # Serving bench observability gate: instrumentation attached-vs-
    # detached delta in percent (can be slightly negative; the bench
    # itself enforces the 2% ceiling, the trend just tracks drift).
    "obs_overhead_pct",
    "riblt_s", "pinsketch_s",
    "p50_ms", "p99_ms",  # transport sync latency (loopback jitter is real)
    # Connection-sweep serving cost: syscalls per session is mostly
    # deterministic per backend, but batching boundaries shift with timing
    # (one epoll_wait or io_uring_enter can cover more or fewer events).
    # sqe_submits rides along so the fluctuating count stays out of the
    # row key (it would break baseline/current row matching otherwise).
    "syscalls_per_session", "sqe_submits",
    # Chaos harness counters that shift with fault-plan phasing: aborted
    # and reaped sessions, and the simulated time-to-convergence.
    "sessions_aborted", "sessions_reaped", "converge_s",
}
# Higher is better (rates). All of these are CPU-derived (sessions/sec,
# decode items/sec, shard speedups), so they all take the slack threshold
# on shared runners -- the trend signal is order-of-magnitude, not percent.
METRICS_HIGHER = {
    "sessions_per_s", "sessions_per_s_detached", "speedup", "riblt_d_per_s",
    "ingest_items_per_s", "ingest_speedup_4w",
    "rounds_converged",  # chaos harness: successful anti-entropy rounds
}
METRICS_NOISY = METRICS_LOWER_NOISY | METRICS_HIGHER

ALL_METRICS = METRICS_LOWER | METRICS_LOWER_NOISY | METRICS_HIGHER

# Registry-histogram quantile fields: JsonReport::hist emits `<key>_p50` /
# `<key>_p99` for any histogram a bench pulls off a registry snapshot, so
# new quantile columns are learned by suffix instead of by name. All are
# latency-flavored lower-is-better and CPU-derived, so they take the slack
# threshold like the other noisy metrics.
QUANTILE_SUFFIXES = ("_p50", "_p90", "_p99")


def is_quantile(name):
    return name.endswith(QUANTILE_SUFFIXES) and name not in ALL_METRICS


def is_metric(name):
    return name in ALL_METRICS or is_quantile(name)


def is_noisy(name):
    return name in METRICS_NOISY or is_quantile(name)


def row_key(row):
    return tuple(sorted(
        (k, v) for k, v in row.items() if not is_metric(k)
    ))


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[row_key(row)] = row
    return doc.get("bench", os.path.basename(path)), rows


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline_dir")
    ap.add_argument("current_dir")
    ap.add_argument("--threshold", type=float, default=0.10)
    ap.add_argument("--noisy-threshold", type=float, default=0.50)
    ap.add_argument("--pattern", default="BENCH_smoke*.json")
    args = ap.parse_args()

    baseline_files = {
        os.path.basename(p): p
        for p in glob.glob(os.path.join(args.baseline_dir, args.pattern))
    }
    current_files = sorted(
        glob.glob(os.path.join(args.current_dir, args.pattern)))

    if not baseline_files:
        print(f"perf-trend: no baseline files in {args.baseline_dir}; "
              "nothing to compare (first run?)")
        return 0
    if not current_files:
        print(f"::warning::perf-trend: no current bench JSON in "
              f"{args.current_dir}")
        return 0

    compared = regressions = 0
    for cur_path in current_files:
        name = os.path.basename(cur_path)
        if name not in baseline_files:
            print(f"perf-trend: {name} has no baseline counterpart; skipped")
            continue
        bench, base_rows = load(baseline_files[name])
        _, cur_rows = load(cur_path)
        for key, cur in cur_rows.items():
            base = base_rows.get(key)
            if base is None:
                continue
            for metric in sorted(cur):
                if not is_metric(metric) or metric not in base:
                    continue
                b, c = float(base[metric]), float(cur[metric])
                if b <= 0:
                    continue
                compared += 1
                threshold = (args.noisy_threshold
                             if is_noisy(metric)
                             else args.threshold)
                if metric in METRICS_HIGHER:
                    worse = c < b * (1.0 - threshold)
                    change = (b - c) / b
                else:
                    worse = c > b * (1.0 + threshold)
                    change = (c - b) / b
                if worse:
                    regressions += 1
                    print(f"::warning title=perf regression ({bench})::"
                          f"{metric} {fmt_key(key)}: {b:g} -> {c:g} "
                          f"({change:+.0%}, threshold {threshold:.0%})")

    print(f"perf-trend: compared {compared} metric points, "
          f"{regressions} regression warning(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
