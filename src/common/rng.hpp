// Deterministic pseudorandom generators used throughout the repository.
//
// All experiment randomness (workload generation, Monte-Carlo trials) flows
// from named 64-bit seeds through these generators so that every test and
// benchmark is bit-reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <limits>

namespace ribltx {

/// SplitMix64 (Steele, Lea, Flood 2014): tiny, fast, passes BigCrush when
/// used as a stream; the canonical seeder/mixer for 64-bit state.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // UniformRandomBitGenerator interface so <random> distributions apply.
  constexpr std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    __extension__ using uint128 = unsigned __int128;
    const auto wide = static_cast<uint128>(next()) * static_cast<uint128>(bound);
    return static_cast<std::uint64_t>(wide >> 64);
  }

 private:
  std::uint64_t state_;
};

/// One-shot SplitMix64 finalizer: a high-quality 64 -> 64 bit mixer. Used to
/// derive independent sub-seeds from (seed, index) pairs.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derives a deterministic sub-seed for the `n`-th stream of `seed`.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t n) noexcept {
  return mix64(seed + 0x9e3779b97f4a7c15ULL * (n + 1));
}

}  // namespace ribltx
