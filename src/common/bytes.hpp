// Bounds-checked little-endian byte buffer writer/reader.
//
// All wire formats in this repository (Rateless IBLT sketches, IBLT cells,
// strata estimators, Merkle trie messages) serialize through these two
// classes so that framing bugs surface as exceptions, not buffer overreads.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/varint.hpp"

namespace ribltx {

/// Appends primitive values to an owned byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }

  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void uvarint(std::uint64_t v) { put_uvarint(buf_, v); }
  void svarint(std::int64_t v) { put_uvarint(buf_, zigzag_encode(v)); }

  void bytes(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::span<const std::byte> view() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buf_); }
  [[nodiscard]] const std::vector<std::byte>& data() const noexcept { return buf_; }

 private:
  void put_le(std::uint64_t v, unsigned n) {
    for (unsigned i = 0; i < n; ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }

  std::vector<std::byte> buf_;
};

/// Reads primitive values from a non-owned byte span; throws
/// std::out_of_range past the end. Track position with offset().
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  [[nodiscard]] std::uint16_t u16() { return static_cast<std::uint16_t>(get_le(2)); }
  [[nodiscard]] std::uint32_t u32() { return static_cast<std::uint32_t>(get_le(4)); }
  [[nodiscard]] std::uint64_t u64() { return get_le(8); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  [[nodiscard]] std::uint64_t uvarint() { return get_uvarint(data_, pos_); }
  [[nodiscard]] std::int64_t svarint() { return zigzag_decode(uvarint()); }

  [[nodiscard]] std::span<const std::byte> bytes(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void copy_to(void* dst, std::size_t n) {
    need(n);
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw std::out_of_range("ByteReader: read past end (need " +
                              std::to_string(n) + ", have " +
                              std::to_string(data_.size() - pos_) + ")");
    }
  }

  std::uint64_t get_le(unsigned n) {
    need(n);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += n;
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace ribltx
