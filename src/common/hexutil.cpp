#include "common/hexutil.hpp"

#include <stdexcept>

namespace ribltx {
namespace {

constexpr char kDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument(std::string("from_hex: bad digit '") + c + "'");
}

}  // namespace

std::string to_hex(std::span<const std::byte> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::byte b : data) {
    const auto v = static_cast<unsigned char>(b);
    out.push_back(kDigits[v >> 4]);
    out.push_back(kDigits[v & 0xf]);
  }
  return out;
}

std::vector<std::byte> from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  std::vector<std::byte> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::byte>((nibble(hex[i]) << 4) |
                                         nibble(hex[i + 1])));
  }
  return out;
}

}  // namespace ribltx
