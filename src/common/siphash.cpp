#include "common/siphash.hpp"

#include <cstring>

namespace ribltx {
namespace {

inline std::uint64_t rotl64(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

inline std::uint64_t load_le64(const unsigned char* p) noexcept {
  // Byte-wise load: portable across host endianness.
  return static_cast<std::uint64_t>(p[0]) |
         (static_cast<std::uint64_t>(p[1]) << 8) |
         (static_cast<std::uint64_t>(p[2]) << 16) |
         (static_cast<std::uint64_t>(p[3]) << 24) |
         (static_cast<std::uint64_t>(p[4]) << 32) |
         (static_cast<std::uint64_t>(p[5]) << 40) |
         (static_cast<std::uint64_t>(p[6]) << 48) |
         (static_cast<std::uint64_t>(p[7]) << 56);
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  explicit SipState(SipKey key) noexcept
      : v0(0x736f6d6570736575ULL ^ key.k0),
        v1(0x646f72616e646f6dULL ^ key.k1),
        v2(0x6c7967656e657261ULL ^ key.k0),
        v3(0x7465646279746573ULL ^ key.k1) {}

  void round() noexcept {
    v0 += v1;
    v1 = rotl64(v1, 13);
    v1 ^= v0;
    v0 = rotl64(v0, 32);
    v2 += v3;
    v3 = rotl64(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl64(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl64(v1, 17);
    v1 ^= v2;
    v2 = rotl64(v2, 32);
  }
};

}  // namespace

std::uint64_t siphash24(SipKey key, const void* data, std::size_t len) noexcept {
  const auto* in = static_cast<const unsigned char*>(data);
  SipState s(key);

  const std::size_t full_blocks = len / 8;
  for (std::size_t i = 0; i < full_blocks; ++i) {
    const std::uint64_t m = load_le64(in + i * 8);
    s.v3 ^= m;
    s.round();
    s.round();
    s.v0 ^= m;
  }

  // Final block: remaining bytes plus the length in the top byte.
  std::uint64_t b = static_cast<std::uint64_t>(len & 0xff) << 56;
  const unsigned char* tail = in + full_blocks * 8;
  switch (len & 7) {
    case 7: b |= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: b |= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: b |= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: b |= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: b |= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: b |= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1: b |= static_cast<std::uint64_t>(tail[0]); break;
    case 0: break;
  }
  s.v3 ^= b;
  s.round();
  s.round();
  s.v0 ^= b;

  s.v2 ^= 0xff;
  s.round();
  s.round();
  s.round();
  s.round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

std::uint64_t siphash24(SipKey key, std::span<const std::byte> data) noexcept {
  return siphash24(key, data.data(), data.size());
}

namespace {

/// Four SipHash states in struct-of-arrays form: each line of round4() is a
/// fixed four-trip loop over one operation, the layout a vectorizer can map
/// onto 4x64-bit vector add/rotate/xor (and that never spills the way four
/// interleaved scalar states do -- 16 live v-registers exceed the x86-64
/// GPR file).
struct SipState4 {
  std::uint64_t v0[kSipHashLanes], v1[kSipHashLanes];
  std::uint64_t v2[kSipHashLanes], v3[kSipHashLanes];

  explicit SipState4(SipKey key) noexcept {
    for (std::size_t l = 0; l < kSipHashLanes; ++l) {
      v0[l] = 0x736f6d6570736575ULL ^ key.k0;
      v1[l] = 0x646f72616e646f6dULL ^ key.k1;
      v2[l] = 0x6c7967656e657261ULL ^ key.k0;
      v3[l] = 0x7465646279746573ULL ^ key.k1;
    }
  }

  void round4() noexcept {
    constexpr std::size_t L = kSipHashLanes;
    for (std::size_t l = 0; l < L; ++l) v0[l] += v1[l];
    for (std::size_t l = 0; l < L; ++l) v1[l] = rotl64(v1[l], 13);
    for (std::size_t l = 0; l < L; ++l) v1[l] ^= v0[l];
    for (std::size_t l = 0; l < L; ++l) v0[l] = rotl64(v0[l], 32);
    for (std::size_t l = 0; l < L; ++l) v2[l] += v3[l];
    for (std::size_t l = 0; l < L; ++l) v3[l] = rotl64(v3[l], 16);
    for (std::size_t l = 0; l < L; ++l) v3[l] ^= v2[l];
    for (std::size_t l = 0; l < L; ++l) v0[l] += v3[l];
    for (std::size_t l = 0; l < L; ++l) v3[l] = rotl64(v3[l], 21);
    for (std::size_t l = 0; l < L; ++l) v3[l] ^= v0[l];
    for (std::size_t l = 0; l < L; ++l) v2[l] += v1[l];
    for (std::size_t l = 0; l < L; ++l) v1[l] = rotl64(v1[l], 17);
    for (std::size_t l = 0; l < L; ++l) v1[l] ^= v2[l];
    for (std::size_t l = 0; l < L; ++l) v2[l] = rotl64(v2[l], 32);
  }
};

}  // namespace

void siphash24_x4(SipKey key, const std::byte* const in[kSipHashLanes],
                  std::size_t len, std::uint64_t out[kSipHashLanes]) noexcept {
  SipState4 s(key);
  const unsigned char* p[kSipHashLanes];
  for (std::size_t l = 0; l < kSipHashLanes; ++l) {
    p[l] = reinterpret_cast<const unsigned char*>(in[l]);
  }

  const std::size_t full_blocks = len / 8;
  for (std::size_t i = 0; i < full_blocks; ++i) {
    std::uint64_t m[kSipHashLanes];
    for (std::size_t l = 0; l < kSipHashLanes; ++l) {
      m[l] = load_le64(p[l] + i * 8);
      s.v3[l] ^= m[l];
    }
    s.round4();
    s.round4();
    for (std::size_t l = 0; l < kSipHashLanes; ++l) s.v0[l] ^= m[l];
  }

  std::uint64_t b[kSipHashLanes];
  for (std::size_t l = 0; l < kSipHashLanes; ++l) {
    b[l] = static_cast<std::uint64_t>(len & 0xff) << 56;
    const unsigned char* tail = p[l] + full_blocks * 8;
    switch (len & 7) {
      case 7: b[l] |= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
      case 6: b[l] |= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
      case 5: b[l] |= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
      case 4: b[l] |= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
      case 3: b[l] |= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
      case 2: b[l] |= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
      case 1: b[l] |= static_cast<std::uint64_t>(tail[0]); break;
      case 0: break;
    }
    s.v3[l] ^= b[l];
  }
  s.round4();
  s.round4();
  for (std::size_t l = 0; l < kSipHashLanes; ++l) {
    s.v0[l] ^= b[l];
    s.v2[l] ^= 0xff;
  }
  for (int r = 0; r < 4; ++r) s.round4();
  for (std::size_t l = 0; l < kSipHashLanes; ++l) {
    out[l] = s.v0[l] ^ s.v1[l] ^ s.v2[l] ^ s.v3[l];
  }
}

}  // namespace ribltx
