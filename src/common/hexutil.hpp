// Hex encoding helpers for diagnostics and test fixtures.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ribltx {

/// Lower-case hex string of `data` ("deadbeef").
[[nodiscard]] std::string to_hex(std::span<const std::byte> data);

/// Parses a hex string (even length, [0-9a-fA-F]); throws
/// std::invalid_argument otherwise.
[[nodiscard]] std::vector<std::byte> from_hex(const std::string& hex);

}  // namespace ribltx
