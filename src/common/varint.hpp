// Variable-length integer coding (LEB128-style base-128 varints) and ZigZag
// signed mapping.
//
// The paper (§6) compresses the `count` field of each coded symbol by storing
// the difference between the actual count and its expectation N*rho(i) as a
// variable-length quantity; small residuals then cost ~1 byte instead of a
// fixed 8. These are the primitives that wire format uses.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace ribltx {

/// Maximum encoded size of a 64-bit varint.
inline constexpr std::size_t kMaxVarintLen = 10;

/// Appends the base-128 varint encoding of `value` to `out`.
/// Returns the number of bytes written (1..10).
inline std::size_t put_uvarint(std::vector<std::byte>& out,
                               std::uint64_t value) {
  std::size_t n = 0;
  while (value >= 0x80) {
    out.push_back(static_cast<std::byte>((value & 0x7f) | 0x80));
    value >>= 7;
    ++n;
  }
  out.push_back(static_cast<std::byte>(value));
  return n + 1;
}

/// Number of bytes put_uvarint would emit for `value`.
[[nodiscard]] inline std::size_t uvarint_size(std::uint64_t value) noexcept {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

/// Decodes a varint from data[pos...]; advances `pos` past it.
/// Throws std::out_of_range on truncated input and std::overflow_error on
/// encodings longer than 10 bytes or overflowing 64 bits.
[[nodiscard]] inline std::uint64_t get_uvarint(std::span<const std::byte> data,
                                               std::size_t& pos) {
  std::uint64_t result = 0;
  unsigned shift = 0;
  for (std::size_t i = 0; i < kMaxVarintLen; ++i) {
    if (pos >= data.size()) throw std::out_of_range("varint: truncated input");
    const auto b = static_cast<std::uint8_t>(data[pos++]);
    if (i == kMaxVarintLen - 1 && b > 1) {
      throw std::overflow_error("varint: value exceeds 64 bits");
    }
    result |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return result;
    shift += 7;
  }
  throw std::overflow_error("varint: encoding longer than 10 bytes");
}

/// ZigZag: maps signed integers to unsigned so that values near zero (of
/// either sign) get short varints. -1 -> 1, 1 -> 2, -2 -> 3, ...
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace ribltx
