// SipHash-2-4: a fast keyed pseudorandom function for short inputs.
//
// Used as the keyed checksum/mapping hash for Rateless IBLT (paper §4.3):
// with a secret 128-bit key shared by the reconciling parties, an adversary
// who can inject set items cannot target checksum collisions, so 64-bit
// checksums are safe. Implemented from the reference specification
// (Aumasson & Bernstein, INDOCRYPT 2012); no third-party code.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>

namespace ribltx {

/// 128-bit SipHash key. Both reconciling parties must use the same key.
struct SipKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;

  friend bool operator==(const SipKey&, const SipKey&) = default;
};

/// Computes SipHash-2-4 of `data` under `key`. Deterministic, portable
/// (little-endian interpretation of input regardless of host byte order).
[[nodiscard]] std::uint64_t siphash24(SipKey key,
                                      std::span<const std::byte> data) noexcept;

/// Convenience overload for raw buffers.
[[nodiscard]] std::uint64_t siphash24(SipKey key, const void* data,
                                      std::size_t len) noexcept;

/// Lane count of the batched SipHash path.
inline constexpr std::size_t kSipHashLanes = 4;

/// Computes SipHash-2-4 of four equal-length messages in one interleaved
/// pass: the four independent state chains pipeline through the rotate/add
/// rounds, hiding the serial dependency that bounds the one-message path.
/// Bit-identical to four siphash24() calls. The decoder's batched checksum
/// verification (core/decoder.hpp) is the main consumer.
void siphash24_x4(SipKey key, const std::byte* const in[kSipHashLanes],
                  std::size_t len, std::uint64_t out[kSipHashLanes]) noexcept;

}  // namespace ribltx
