// SipHash-2-4: a fast keyed pseudorandom function for short inputs.
//
// Used as the keyed checksum/mapping hash for Rateless IBLT (paper §4.3):
// with a secret 128-bit key shared by the reconciling parties, an adversary
// who can inject set items cannot target checksum collisions, so 64-bit
// checksums are safe. Implemented from the reference specification
// (Aumasson & Bernstein, INDOCRYPT 2012); no third-party code.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>

namespace ribltx {

/// 128-bit SipHash key. Both reconciling parties must use the same key.
struct SipKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;

  friend bool operator==(const SipKey&, const SipKey&) = default;
};

/// Computes SipHash-2-4 of `data` under `key`. Deterministic, portable
/// (little-endian interpretation of input regardless of host byte order).
[[nodiscard]] std::uint64_t siphash24(SipKey key,
                                      std::span<const std::byte> data) noexcept;

/// Convenience overload for raw buffers.
[[nodiscard]] std::uint64_t siphash24(SipKey key, const void* data,
                                      std::size_t len) noexcept;

}  // namespace ribltx
