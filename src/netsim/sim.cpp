#include "netsim/sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ribltx::netsim {

void EventLoop::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("EventLoop: cannot schedule in the past");
  }
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void EventLoop::schedule_in(SimTime delay, std::function<void()> fn) {
  schedule_at(now_ + delay, std::move(fn));
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  // Pop before running: the handler may schedule more events.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ev.fn();
  return true;
}

void EventLoop::run() {
  while (step()) {
  }
}

void Link::send(std::size_t bytes,
                std::function<void(const Delivery&)> on_delivered) {
  const SimTime depart_start = std::max(loop_->now(), busy_until_);
  const SimTime depart_end = depart_start + config_.tx_time(bytes);
  busy_until_ = depart_end;
  total_bytes_ += bytes;

  // A partition blackholes everything whose departure falls inside the
  // window: the sender's NIC still serialized into the dead path, so the
  // wire time above is already charged.
  if (partitioned_at(depart_start)) {
    ++partition_drops_;
    return;
  }
  // The loss process drops the message *after* it occupied the wire (a
  // corrupted/discarded packet still burned its serialization time): no
  // delivery record, no callback -- reliability is the conduit's job.
  if (config_.loss_rate > 0 && rng_.next_double() < config_.loss_rate) {
    ++dropped_count_;
    return;
  }
  // Per-message jitter shifts only propagation, so two back-to-back sends
  // can arrive out of order -- the reordering model net::SimConduit's
  // sequencing must absorb.
  const double jitter = config_.reorder_jitter_s > 0
                            ? rng_.next_double() * config_.reorder_jitter_s
                            : 0.0;

  Delivery d;
  d.depart_start = depart_start;
  d.arrive_start = depart_start + config_.one_way_delay_s + jitter;
  d.arrive_end = depart_end + config_.one_way_delay_s + jitter;
  d.bytes = bytes;
  if (config_.corrupt_rate > 0 && rng_.next_double() < config_.corrupt_rate) {
    d.corrupted = true;
    d.corrupt_seed = mix64(rng_.next()) | 1;  // nonzero by construction
    ++corrupted_count_;
  }
  log_.push_back(d);

  if (on_delivered) {
    loop_->schedule_at(d.arrive_end, [cb = on_delivered, d] { cb(d); });
  }
  // Duplicate delivery: the copy rides the same serialization window (it
  // is a routing artifact, not a second transmission) with a fresh jitter
  // draw, so it can land before or after -- or far from -- the original.
  if (config_.duplicate_rate > 0 &&
      rng_.next_double() < config_.duplicate_rate) {
    ++duplicated_count_;
    const double dup_jitter =
        config_.reorder_jitter_s > 0
            ? rng_.next_double() * config_.reorder_jitter_s
            : 0.0;
    Delivery dup = d;
    dup.arrive_start = depart_start + config_.one_way_delay_s + dup_jitter;
    dup.arrive_end = depart_end + config_.one_way_delay_s + dup_jitter;
    dup.duplicate = true;
    log_.push_back(dup);
    if (on_delivered) {
      loop_->schedule_at(dup.arrive_end,
                         [cb = std::move(on_delivered), dup] { cb(dup); });
    }
  }
}

void BandwidthTrace::add(const Delivery& d) {
  if (d.bytes == 0) return;
  const double start = d.arrive_start;
  const double end = std::max(d.arrive_end, start + 1e-12);
  const double rate = static_cast<double>(d.bytes) / (end - start);
  auto first_bin = static_cast<std::size_t>(start / bin_);
  auto last_bin = static_cast<std::size_t>(end / bin_);
  if (bytes_per_bin_.size() <= last_bin) bytes_per_bin_.resize(last_bin + 1);
  for (std::size_t b = first_bin; b <= last_bin; ++b) {
    const double lo = std::max(start, static_cast<double>(b) * bin_);
    const double hi = std::min(end, static_cast<double>(b + 1) * bin_);
    if (hi > lo) bytes_per_bin_[b] += rate * (hi - lo);
  }
}

std::vector<BandwidthTrace::Bin> BandwidthTrace::bins() const {
  std::vector<Bin> out;
  out.reserve(bytes_per_bin_.size());
  for (std::size_t b = 0; b < bytes_per_bin_.size(); ++b) {
    out.push_back(Bin{static_cast<double>(b) * bin_,
                      bytes_per_bin_[b] * 8.0 / 1e6 / bin_});
  }
  return out;
}

}  // namespace ribltx::netsim
