// Event-driven network simulator (DESIGN.md §1.4 substitution 2).
//
// Replaces the paper's Dummynet testbed: full-duplex links with a one-way
// propagation delay and a bandwidth cap, modeled as a FIFO serialization
// queue per direction (fluid model -- bytes occupy the wire for
// size/bandwidth seconds, then arrive delay seconds later). Per-delivery
// records feed the bandwidth-over-time traces of Fig 13.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace ribltx::netsim {

using SimTime = double;  ///< seconds since simulation start

/// Minimal discrete-event loop: schedule closures, run to quiescence.
class EventLoop {
 public:
  void schedule_at(SimTime t, std::function<void()> fn);
  void schedule_in(SimTime delay, std::function<void()> fn);

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Runs one event; false when the queue is empty.
  bool step();

  /// Runs until no events remain.
  void run();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

struct LinkConfig {
  double one_way_delay_s = 0.05;  ///< propagation delay (paper: 50 ms)
  /// Bits per second; 0 means unlimited (the paper's "no cap" points).
  double bandwidth_bps = 20e6;
  /// Probability each message is silently dropped in flight (lossy-link
  /// scenarios for net::SimConduit; 0 keeps the link deterministic).
  double loss_rate = 0.0;
  /// Uniform extra propagation delay in [0, reorder_jitter_s] drawn per
  /// message: with jitter > serialization time, deliveries arrive out of
  /// order. 0 keeps strict FIFO arrival.
  double reorder_jitter_s = 0.0;
  /// Probability each delivered message arrives bit-damaged: the Delivery
  /// is flagged corrupted and carries a seed for the receiver to apply a
  /// deterministic bit-flip (the link only models byte counts, so the
  /// damage happens where the payload actually lives -- see
  /// net::SimEndpoint). Checksums above, not the link, must catch it.
  double corrupt_rate = 0.0;
  /// Probability a delivered message is delivered twice (routing-artifact
  /// duplication; the copy takes its own jitter draw and can reorder past
  /// the original). Duplicates consume no extra sender bandwidth.
  double duplicate_rate = 0.0;
  /// Seed of the loss/jitter/corruption RNG stream (deterministic per link).
  std::uint64_t seed = 0;

  [[nodiscard]] bool unlimited() const noexcept { return bandwidth_bps <= 0; }

  [[nodiscard]] bool lossy() const noexcept {
    return loss_rate > 0 || reorder_jitter_s > 0 || corrupt_rate > 0 ||
           duplicate_rate > 0;
  }

  /// Seconds to serialize `bytes` onto the wire.
  [[nodiscard]] double tx_time(std::size_t bytes) const noexcept {
    return unlimited() ? 0.0
                       : static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }
};

/// One message delivery: bytes flow into the receiver during
/// [arrive_start, arrive_end] (line-rate reception of the serialized
/// window, shifted by the propagation delay).
struct Delivery {
  SimTime depart_start = 0;
  SimTime arrive_start = 0;
  SimTime arrive_end = 0;
  std::size_t bytes = 0;
  /// The message arrived bit-damaged (LinkConfig::corrupt_rate). The link
  /// carries only byte counts, so the receiver applies the damage to its
  /// copy of the payload, deterministically from corrupt_seed.
  bool corrupted = false;
  std::uint64_t corrupt_seed = 0;  ///< nonzero iff corrupted
  bool duplicate = false;          ///< this is the extra copy of a message
};

/// Unidirectional FIFO link.
class Link {
 public:
  Link(EventLoop& loop, LinkConfig config, std::string name = {})
      : loop_(&loop),
        config_(config),
        name_(std::move(name)),
        rng_(mix64(config.seed ^ 0x6c696e6bULL)) {}

  /// Queues `bytes` for transmission now; `on_delivered` fires when the
  /// last byte reaches the receiver.
  void send(std::size_t bytes,
            std::function<void(const Delivery&)> on_delivered = {});

  /// Schedules a blackhole window [start, end): any message whose wire
  /// departure falls inside it vanishes (it still occupied the sender's
  /// wire -- the NIC serialized into a dead path). Call on both direction
  /// links of a conduit for a bidirectional partition.
  void add_partition(SimTime start, SimTime end) {
    if (end <= start) {
      throw std::invalid_argument("Link: empty partition window");
    }
    partitions_.emplace_back(start, end);
  }

  [[nodiscard]] bool partitioned_at(SimTime t) const noexcept {
    for (const auto& [s, e] : partitions_) {
      if (t >= s && t < e) return true;
    }
    return false;
  }

  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }
  [[nodiscard]] SimTime busy_until() const noexcept { return busy_until_; }
  [[nodiscard]] const std::vector<Delivery>& deliveries() const noexcept {
    return log_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Total bytes ever queued on this link.
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return total_bytes_;
  }

  /// Messages dropped by the loss process (they occupy the wire but never
  /// arrive: no delivery record, no callback).
  [[nodiscard]] std::size_t dropped_count() const noexcept {
    return dropped_count_;
  }

  /// Messages blackholed by a partition window (also no delivery).
  [[nodiscard]] std::size_t partition_drops() const noexcept {
    return partition_drops_;
  }

  /// Deliveries flagged corrupted.
  [[nodiscard]] std::size_t corrupted_count() const noexcept {
    return corrupted_count_;
  }

  /// Messages delivered twice (the duplicate process).
  [[nodiscard]] std::size_t duplicated_count() const noexcept {
    return duplicated_count_;
  }

 private:
  EventLoop* loop_;
  LinkConfig config_;
  std::string name_;
  SplitMix64 rng_{0};  ///< loss/jitter draws; seeded from config in ctor
  SimTime busy_until_ = 0;
  std::size_t total_bytes_ = 0;
  std::size_t dropped_count_ = 0;
  std::size_t partition_drops_ = 0;
  std::size_t corrupted_count_ = 0;
  std::size_t duplicated_count_ = 0;
  std::vector<std::pair<SimTime, SimTime>> partitions_;
  std::vector<Delivery> log_;
};

/// Bins deliveries into a bandwidth-vs-time series (Fig 13).
class BandwidthTrace {
 public:
  explicit BandwidthTrace(double bin_seconds) : bin_(bin_seconds) {}

  void add(const Delivery& d);
  void add_all(const std::vector<Delivery>& ds) {
    for (const auto& d : ds) add(d);
  }

  struct Bin {
    SimTime start = 0;
    double mbps = 0;
  };

  /// Bins from t=0 through the last nonzero bin.
  [[nodiscard]] std::vector<Bin> bins() const;

 private:
  double bin_;
  std::vector<double> bytes_per_bin_;
};

}  // namespace ribltx::netsim
