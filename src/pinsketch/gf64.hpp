// GF(2^64) field arithmetic for the PinSketch baseline (paper's [7, 38]).
//
// Elements are 64-bit polynomials over GF(2) reduced modulo the low-weight
// irreducible pentanomial  x^64 + x^4 + x^3 + x + 1  (reduction mask 0x1b).
// Multiplication is a portable carry-less multiply (4-bit windowed
// shift-XOR; no PCLMUL intrinsics, see DESIGN.md §1.4 substitution 4)
// followed by two folding rounds of reduction. Inversion is Fermat
// exponentiation a^(2^64 - 2).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/symbol.hpp"

namespace ribltx::pinsketch {

class GF64 {
 public:
  constexpr GF64() = default;
  constexpr explicit GF64(std::uint64_t bits) noexcept : bits_(bits) {}

  [[nodiscard]] constexpr std::uint64_t bits() const noexcept { return bits_; }
  [[nodiscard]] constexpr bool is_zero() const noexcept { return bits_ == 0; }

  static constexpr GF64 zero() noexcept { return GF64(0); }
  static constexpr GF64 one() noexcept { return GF64(1); }

  // Addition = XOR (characteristic 2); subtraction is identical.
  friend constexpr GF64 operator+(GF64 a, GF64 b) noexcept {
    return GF64(a.bits_ ^ b.bits_);
  }
  constexpr GF64& operator+=(GF64 o) noexcept {
    bits_ ^= o.bits_;
    return *this;
  }

  friend GF64 operator*(GF64 a, GF64 b) noexcept {
    std::uint64_t hi, lo;
    clmul(a.bits_, b.bits_, hi, lo);
    return GF64(reduce(hi, lo));
  }
  GF64& operator*=(GF64 o) noexcept {
    *this = *this * o;
    return *this;
  }

  [[nodiscard]] GF64 squared() const noexcept { return *this * *this; }

  /// a^e by square-and-multiply.
  [[nodiscard]] GF64 pow(std::uint64_t e) const noexcept {
    GF64 base = *this;
    GF64 acc = one();
    while (e != 0) {
      if (e & 1) acc *= base;
      base = base.squared();
      e >>= 1;
    }
    return acc;
  }

  /// Multiplicative inverse; throws std::domain_error for zero.
  [[nodiscard]] GF64 inverse() const {
    if (is_zero()) throw std::domain_error("GF64: zero has no inverse");
    // a^(2^64 - 2) = a^-1 (group order 2^64 - 1).
    return pow(~std::uint64_t{0} - 1);
  }

  friend constexpr bool operator==(GF64, GF64) = default;

  /// Field element from an 8-byte set item (little-endian bits).
  [[nodiscard]] static GF64 from_symbol(const U64Symbol& s) noexcept {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(s.data[i]))
           << (8 * i);
    }
    return GF64(v);
  }

  [[nodiscard]] U64Symbol to_symbol() const noexcept {
    return U64Symbol::from_u64(bits_);
  }

 private:
  /// Portable carry-less 64x64 -> 128 multiply, 4-bit windows of `a`.
  static void clmul(std::uint64_t a, std::uint64_t b, std::uint64_t& hi,
                    std::uint64_t& lo) noexcept {
    // tab[w] = carry-less w * b for all 4-bit w; entries spill <= 3 bits
    // into a high word.
    std::uint64_t tl[16], th[16];
    tl[0] = 0;
    th[0] = 0;
    tl[1] = b;
    th[1] = 0;
    for (unsigned w = 2; w < 16; w += 2) {
      tl[w] = tl[w >> 1] << 1;
      th[w] = (th[w >> 1] << 1) | (tl[w >> 1] >> 63);
      tl[w + 1] = tl[w] ^ b;
      th[w + 1] = th[w];
    }
    lo = 0;
    hi = 0;
    for (unsigned i = 0; i < 16; ++i) {
      const unsigned w = static_cast<unsigned>((a >> (4 * i)) & 0xf);
      const unsigned s = 4 * i;
      lo ^= tl[w] << s;
      hi ^= (th[w] << s) | (s == 0 ? 0 : tl[w] >> (64 - s));
    }
  }

  /// Reduces a 128-bit carry-less product modulo x^64 + x^4 + x^3 + x + 1.
  static std::uint64_t reduce(std::uint64_t hi, std::uint64_t lo) noexcept {
    // hi * x^64 == hi * (x^4 + x^3 + x + 1); the multiply spills at most 4
    // bits past position 63, which one more folding round absorbs.
    lo ^= hi ^ (hi << 1) ^ (hi << 3) ^ (hi << 4);
    const std::uint64_t spill = (hi >> 63) ^ (hi >> 61) ^ (hi >> 60);
    lo ^= spill ^ (spill << 1) ^ (spill << 3) ^ (spill << 4);
    return lo;
  }

  std::uint64_t bits_ = 0;
};

}  // namespace ribltx::pinsketch
