// Dense univariate polynomial arithmetic over GF(2^64), sized for the
// PinSketch decoder: schoolbook multiply, Euclidean division, GCD, and the
// char-2 square-then-reduce used by the Berlekamp trace algorithm. Degrees
// here are at most the sketch capacity (thousands), where O(d^2) schoolbook
// is the appropriate tool -- PinSketch's quadratic decode cost is exactly
// what the paper benchmarks against (Fig 9).
#pragma once

#include <cstddef>
#include <vector>

#include "pinsketch/gf64.hpp"

namespace ribltx::pinsketch {

struct PolyDivMod;

/// Coefficients in ascending power order; invariant: no trailing zeros
/// (enforced by trim), so degree() == coeffs.size() - 1.
class Poly {
 public:
  Poly() = default;
  explicit Poly(std::vector<GF64> coeffs) : c_(std::move(coeffs)) { trim(); }

  [[nodiscard]] static Poly constant(GF64 v) {
    return v.is_zero() ? Poly{} : Poly(std::vector<GF64>{v});
  }

  /// The monomial c * x^k.
  [[nodiscard]] static Poly monomial(GF64 coeff, std::size_t k);

  [[nodiscard]] bool is_zero() const noexcept { return c_.empty(); }

  /// Degree of the zero polynomial is -1 by convention.
  [[nodiscard]] int degree() const noexcept {
    return static_cast<int>(c_.size()) - 1;
  }

  [[nodiscard]] GF64 coeff(std::size_t i) const noexcept {
    return i < c_.size() ? c_[i] : GF64::zero();
  }

  [[nodiscard]] GF64 leading() const noexcept {
    return c_.empty() ? GF64::zero() : c_.back();
  }

  [[nodiscard]] const std::vector<GF64>& coeffs() const noexcept { return c_; }

  Poly& operator+=(const Poly& o);
  friend Poly operator+(Poly a, const Poly& b) {
    a += b;
    return a;
  }

  friend Poly operator*(const Poly& a, const Poly& b);

  /// Scales every coefficient.
  [[nodiscard]] Poly scaled(GF64 s) const;

  /// Divides by the leading coefficient. No-op for zero.
  [[nodiscard]] Poly monic() const;

  /// Euclidean remainder *this mod m; m must be nonzero.
  [[nodiscard]] Poly mod(const Poly& m) const;

  /// Euclidean division: (*this) = q * m + r with deg r < deg m.
  [[nodiscard]] PolyDivMod divmod(const Poly& m) const;

  /// Squares then reduces mod m. In characteristic 2 the square has no
  /// cross terms: coefficient c_i lands at 2i as c_i^2, so this is O(d)
  /// squarings plus one reduction (the trace-algorithm inner loop).
  [[nodiscard]] Poly squared_mod(const Poly& m) const;

  /// Monic gcd(a, b).
  [[nodiscard]] static Poly gcd(Poly a, Poly b);

  /// Horner evaluation.
  [[nodiscard]] GF64 eval(GF64 x) const noexcept;

  friend bool operator==(const Poly&, const Poly&) = default;

 private:
  void trim() {
    while (!c_.empty() && c_.back().is_zero()) c_.pop_back();
  }

  std::vector<GF64> c_;
};

/// Result of Euclidean division: dividend = quotient * divisor + remainder.
struct PolyDivMod {
  Poly quotient;
  Poly remainder;
};

/// All roots of a monic polynomial that splits into distinct linear factors
/// over GF(2^64), via the Berlekamp trace algorithm (deterministic: the
/// splitting element iterates over the polynomial basis). Returns false if
/// `p` does not fully split -- for PinSketch that signals an undecodable
/// sketch (difference larger than capacity), not a programming error.
[[nodiscard]] bool find_roots(const Poly& p, std::vector<GF64>& out);

}  // namespace ribltx::pinsketch
