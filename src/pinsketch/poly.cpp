#include "pinsketch/poly.hpp"

#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace ribltx::pinsketch {

Poly Poly::monomial(GF64 coeff, std::size_t k) {
  if (coeff.is_zero()) return Poly{};
  std::vector<GF64> c(k + 1, GF64::zero());
  c[k] = coeff;
  return Poly(std::move(c));
}

Poly& Poly::operator+=(const Poly& o) {
  if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), GF64::zero());
  for (std::size_t i = 0; i < o.c_.size(); ++i) c_[i] += o.c_[i];
  trim();
  return *this;
}

Poly operator*(const Poly& a, const Poly& b) {
  if (a.is_zero() || b.is_zero()) return Poly{};
  std::vector<GF64> out(a.c_.size() + b.c_.size() - 1, GF64::zero());
  for (std::size_t i = 0; i < a.c_.size(); ++i) {
    if (a.c_[i].is_zero()) continue;
    for (std::size_t j = 0; j < b.c_.size(); ++j) {
      out[i + j] += a.c_[i] * b.c_[j];
    }
  }
  return Poly(std::move(out));
}

Poly Poly::scaled(GF64 s) const {
  if (s.is_zero()) return Poly{};
  std::vector<GF64> out(c_);
  for (auto& v : out) v *= s;
  return Poly(std::move(out));
}

Poly Poly::monic() const {
  if (is_zero() || leading() == GF64::one()) return *this;
  return scaled(leading().inverse());
}

Poly Poly::mod(const Poly& m) const {
  return divmod(m).remainder;
}

PolyDivMod Poly::divmod(const Poly& m) const {
  if (m.is_zero()) throw std::domain_error("Poly::divmod: divisor is zero");
  if (degree() < m.degree()) return PolyDivMod{Poly{}, *this};
  std::vector<GF64> rem(c_);
  const auto md = static_cast<std::size_t>(m.degree());
  std::vector<GF64> quot(rem.size() - md, GF64::zero());
  const GF64 inv_lead = m.leading().inverse();
  for (std::size_t i = rem.size(); i-- > md;) {
    if (rem[i].is_zero()) continue;
    const GF64 factor = rem[i] * inv_lead;
    quot[i - md] = factor;
    // rem -= factor * x^(i-md) * m; rem[i] becomes exactly zero.
    for (std::size_t j = 0; j <= md; ++j) {
      rem[i - md + j] += factor * m.c_[j];
    }
  }
  rem.resize(md);
  return PolyDivMod{Poly(std::move(quot)), Poly(std::move(rem))};
}

Poly Poly::squared_mod(const Poly& m) const {
  if (is_zero()) return Poly{};
  std::vector<GF64> sq(2 * c_.size() - 1, GF64::zero());
  for (std::size_t i = 0; i < c_.size(); ++i) {
    sq[2 * i] = c_[i].squared();  // Frobenius: cross terms vanish in char 2
  }
  return Poly(std::move(sq)).mod(m);
}

Poly Poly::gcd(Poly a, Poly b) {
  while (!b.is_zero()) {
    Poly r = a.mod(b);
    a = std::move(b);
    b = std::move(r);
  }
  return a.monic();
}

GF64 Poly::eval(GF64 x) const noexcept {
  GF64 acc = GF64::zero();
  for (std::size_t i = c_.size(); i-- > 0;) {
    acc = acc * x + c_[i];
  }
  return acc;
}

namespace {

/// Recursive splitter: `p` monic with distinct roots; `basis_index` walks
/// the polynomial basis 1, x, x^2, ... of GF(2^64) over GF(2). For any two
/// distinct roots there is a basis element whose trace separates them, so
/// the recursion always terminates within 64 levels for genuinely split
/// polynomials.
bool split_roots(const Poly& p, unsigned basis_index,
                 std::vector<GF64>& out) {
  const int deg = p.degree();
  if (deg <= 0) return true;
  if (deg == 1) {
    // monic x + c: root is c (char 2).
    out.push_back(p.coeff(0));
    return true;
  }
  for (unsigned k = basis_index; k < 64; ++k) {
    // trace_poly = sum_{i=0..63} (beta x)^(2^i) mod p, beta = x^k in GF(2^64).
    const GF64 beta(std::uint64_t{1} << k);
    Poly term = Poly::monomial(beta, 1).mod(p);
    Poly trace = term;
    for (int i = 1; i < 64; ++i) {
      term = term.squared_mod(p);
      trace += term;
    }
    const Poly g = Poly::gcd(p, trace);
    if (g.degree() <= 0 || g.degree() >= deg) continue;  // trivial split

    // p = g * h with both factors nontrivial; divide via remainder-free
    // long division (compute h = p / g by repeated subtraction).
    // Since p and g are monic and g | p, mod(p, g) == 0; recover h by
    // synthetic division.
    std::vector<GF64> h(static_cast<std::size_t>(deg - g.degree()) + 1,
                        GF64::zero());
    std::vector<GF64> rem(p.coeffs());
    const auto gd = static_cast<std::size_t>(g.degree());
    for (std::size_t i = rem.size(); i-- > gd;) {
      if (rem[i].is_zero()) continue;
      const GF64 factor = rem[i];  // g is monic
      h[i - gd] = factor;
      for (std::size_t j = 0; j <= gd; ++j) {
        rem[i - gd + j] += factor * g.coeff(j);
      }
    }
    return split_roots(g, k + 1, out) &&
           split_roots(Poly(std::move(h)), k + 1, out);
  }
  return false;  // no basis element splits p: p does not have distinct roots
}

}  // namespace

bool find_roots(const Poly& p, std::vector<GF64>& out) {
  if (p.is_zero()) return false;
  const Poly m = p.monic();
  out.clear();
  out.reserve(static_cast<std::size_t>(m.degree() > 0 ? m.degree() : 0));
  if (!split_roots(m, 0, out)) return false;
  if (static_cast<int>(out.size()) != m.degree()) return false;
  // Repeated factors (e.g. (x+r)^2) split into duplicate "roots"; the
  // contract is distinct linear factors, so reject them here.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(out.size());
  for (const GF64& r : out) {
    if (!seen.insert(r.bits()).second) return false;
  }
  return true;
}

}  // namespace ribltx::pinsketch
