#include "pinsketch/cpi.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "pinsketch/poly.hpp"

namespace ribltx::cpi {

using pinsketch::GF64;
using pinsketch::Poly;

GF64 CpiSketch::eval_point(std::size_t j) noexcept {
  // Fixed pseudorandom nonzero points, identical for all parties.
  std::uint64_t v = mix64(0xC7A9ac7e9157ULL + j);
  if (v == 0) v = 1;
  return GF64(v);
}

CpiSketch::CpiSketch(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("CpiSketch: capacity must be positive");
  }
  evals_.assign(capacity, GF64::one());
}

void CpiSketch::add_symbol(const U64Symbol& s) {
  add_element(GF64::from_symbol(s));
}

void CpiSketch::add_element(GF64 x) {
  if (x.is_zero()) {
    throw std::invalid_argument("CpiSketch: items must be nonzero");
  }
  for (std::size_t j = 0; j < evals_.size(); ++j) {
    const GF64 factor = eval_point(j) + x;  // (e_j - x) in char 2
    if (factor.is_zero()) {
      throw std::invalid_argument(
          "CpiSketch: item collides with an evaluation point");
    }
    evals_[j] *= factor;
  }
  ++set_size_;
}

GF64 CpiSketch::evaluate_at(std::span<const U64Symbol> items, std::size_t j) {
  const GF64 e = eval_point(j);
  GF64 acc = GF64::one();
  for (const U64Symbol& s : items) {
    const GF64 x = GF64::from_symbol(s);
    if (x.is_zero()) {
      throw std::invalid_argument("CpiSketch: items must be nonzero");
    }
    const GF64 factor = e + x;
    if (factor.is_zero()) {
      throw std::invalid_argument(
          "CpiSketch: item collides with an evaluation point");
    }
    acc *= factor;
  }
  return acc;
}

CpiSketch CpiSketch::from_evaluations(std::span<const GF64> evals,
                                      std::size_t set_size) {
  if (evals.empty()) {
    throw std::invalid_argument("CpiSketch::from_evaluations: need points");
  }
  CpiSketch out(evals.size());
  out.evals_.assign(evals.begin(), evals.end());
  out.set_size_ = set_size;
  return out;
}

void CpiSketch::remove_symbol(const U64Symbol& s) {
  const GF64 x = GF64::from_symbol(s);
  if (x.is_zero() || set_size_ == 0) {
    throw std::invalid_argument("CpiSketch: invalid removal");
  }
  for (std::size_t j = 0; j < evals_.size(); ++j) {
    evals_[j] *= (eval_point(j) + x).inverse();
  }
  --set_size_;
}

namespace {

/// Solves the m x u system over GF(2^64) by Gaussian elimination (forward
/// elimination to row-echelon form, then back-substitution -- about a third
/// of the field multiplies of full Gauss-Jordan, same O(m^3) class this
/// baseline is meant to exhibit). Returns false on inconsistency. Free
/// variables (rank deficiency, which happens when the true difference is
/// below capacity) are set to zero; the caller verifies the reconstruction
/// regardless.
bool gaussian_solve(std::vector<std::vector<GF64>>& rows, std::size_t unknowns,
                    std::vector<GF64>& solution) {
  const std::size_t m = rows.size();
  std::vector<std::size_t> pivot_of_col(unknowns, SIZE_MAX);
  std::size_t rank = 0;
  for (std::size_t col = 0; col < unknowns && rank < m; ++col) {
    std::size_t pivot = SIZE_MAX;
    for (std::size_t r = rank; r < m; ++r) {
      if (!rows[r][col].is_zero()) {
        pivot = r;
        break;
      }
    }
    if (pivot == SIZE_MAX) continue;
    std::swap(rows[rank], rows[pivot]);
    const GF64 inv = rows[rank][col].inverse();
    for (std::size_t c = col; c <= unknowns; ++c) rows[rank][c] *= inv;
    for (std::size_t r = rank + 1; r < m; ++r) {
      if (rows[r][col].is_zero()) continue;
      const GF64 f = rows[r][col];
      for (std::size_t c = col; c <= unknowns; ++c) {
        rows[r][c] += f * rows[rank][c];
      }
    }
    pivot_of_col[col] = rank;
    ++rank;
  }
  // Inconsistent row: all-zero coefficients with nonzero RHS (rows past the
  // rank are fully eliminated -- any nonzero coefficient there would have
  // been picked as a pivot when its column was scanned).
  for (std::size_t r = rank; r < m; ++r) {
    if (!rows[r][unknowns].is_zero()) return false;
  }
  solution.assign(unknowns, GF64::zero());
  for (std::size_t col = unknowns; col-- > 0;) {
    const std::size_t pr = pivot_of_col[col];
    if (pr == SIZE_MAX) continue;  // free variable: zero
    GF64 v = rows[pr][unknowns];
    for (std::size_t c = col + 1; c < unknowns; ++c) {
      if (!solution[c].is_zero() && !rows[pr][c].is_zero()) {
        v += rows[pr][c] * solution[c];
      }
    }
    solution[col] = v;
  }
  return true;
}

}  // namespace

CpiSketch::Result CpiSketch::reconcile(const CpiSketch& alice,
                                       const CpiSketch& bob) {
  Result out;
  const std::size_t m = alice.capacity();
  if (bob.capacity() != m) {
    throw std::invalid_argument("CpiSketch::reconcile: capacity mismatch");
  }

  // Degree split: d_A - d_B = |A| - |B| is known; d_A + d_B <= m. Any
  // slack becomes a common factor of P and Q, stripped by gcd below (MTZ
  // §3). In char-2 arithmetic subtraction is addition throughout.
  const auto size_a = static_cast<std::int64_t>(alice.set_size());
  const auto size_b = static_cast<std::int64_t>(bob.set_size());
  const std::int64_t delta = size_a - size_b;
  const auto mi = static_cast<std::int64_t>(m);
  if (delta > mi || -delta > mi) return out;  // difference exceeds capacity
  const auto deg_p = static_cast<std::size_t>((mi + delta) / 2);
  const auto deg_q =
      static_cast<std::size_t>(static_cast<std::int64_t>(deg_p) - delta);

  // Unknowns: p_0..p_{deg_p-1}, q_0..q_{deg_q-1} (both polynomials monic).
  // Equation at e_j:  sum_i p_i e^i + r_j sum_i q_i e^i
  //                 = r_j e^{deg_q} + e^{deg_p},   r_j = chiA(e)/chiB(e).
  const std::size_t unknowns = deg_p + deg_q;
  std::vector<std::vector<GF64>> rows(
      m, std::vector<GF64>(unknowns + 1, GF64::zero()));
  for (std::size_t j = 0; j < m; ++j) {
    const GF64 e = eval_point(j);
    if (bob.evals_[j].is_zero() || alice.evals_[j].is_zero()) return out;
    const GF64 r = alice.evals_[j] * bob.evals_[j].inverse();
    GF64 power = GF64::one();
    for (std::size_t i = 0; i < deg_p; ++i) {
      rows[j][i] = power;
      power *= e;
    }
    const GF64 e_deg_p = power;
    power = GF64::one();
    for (std::size_t i = 0; i < deg_q; ++i) {
      rows[j][deg_p + i] = r * power;
      power *= e;
    }
    rows[j][unknowns] = r * power + e_deg_p;  // RHS (power = e^{deg_q})
  }

  std::vector<GF64> solution;
  if (!gaussian_solve(rows, unknowns, solution)) return out;

  std::vector<GF64> pc(solution.begin(),
                       solution.begin() + static_cast<std::ptrdiff_t>(deg_p));
  pc.push_back(GF64::one());
  std::vector<GF64> qc(solution.begin() + static_cast<std::ptrdiff_t>(deg_p),
                       solution.end());
  qc.push_back(GF64::one());
  Poly p(std::move(pc)), q(std::move(qc));

  // Strip the common slack factor.
  const Poly g = Poly::gcd(p, q);
  if (g.degree() > 0) {
    p = p.divmod(g).quotient;
    q = q.divmod(g).quotient;
  }

  std::vector<GF64> roots_p, roots_q;
  if (p.degree() > 0 && !pinsketch::find_roots(p, roots_p)) return out;
  if (q.degree() > 0 && !pinsketch::find_roots(q, roots_q)) return out;

  // Verify the rational function against every transmitted evaluation.
  for (std::size_t j = 0; j < m; ++j) {
    const GF64 e = eval_point(j);
    const GF64 qv = q.eval(e);
    if (qv.is_zero()) return out;
    const GF64 r = alice.evals_[j] * bob.evals_[j].inverse();
    if (p.eval(e) != r * qv) return out;
  }
  // Cross-check the degree split against the exchanged set sizes.
  if (static_cast<std::int64_t>(roots_p.size()) -
          static_cast<std::int64_t>(roots_q.size()) !=
      delta) {
    return out;
  }

  out.success = true;
  for (const GF64& x : roots_p) out.alice_only.push_back(x.to_symbol());
  for (const GF64& x : roots_q) out.bob_only.push_back(x.to_symbol());
  return out;
}

}  // namespace ribltx::cpi
