// Characteristic Polynomial Interpolation (CPI) set reconciliation --
// Minsky, Trachtenberg & Zippel 2003, the paper's [19] and the scheme whose
// computation cost motivates both PinSketch and Rateless IBLT (§2).
//
// Alice evaluates her set's characteristic polynomial
//   chi_A(z) = prod_{x in A} (z + x)       over GF(2^64)
// at m agreed-upon points and sends the m evaluations (plus |A|).
// Bob forms the ratios chi_A(e_j)/chi_B(e_j) = P(e_j)/Q(e_j) where
// P = chi_{A\B}, Q = chi_{B\A}, interpolates the rational function by
// solving an m x m linear system (O(m^3) -- the "quadratic-time or worse"
// decoder of §1), strips the common factor, and factors P and Q with the
// same Berlekamp-trace machinery as PinSketch.
//
// Communication is optimal like PinSketch's (8 bytes per unit of
// capacity); encoding is O(m) multiplies per item; decoding is
// O(m^3 + d^2 * 64) -- the worst of the three families, reproduced here as
// the historical baseline (bench/extra_cpi_comparison).
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "core/symbol.hpp"
#include "pinsketch/gf64.hpp"

namespace ribltx::cpi {

class CpiSketch {
 public:
  /// Sketch able to reconcile up to `capacity` differences (= number of
  /// evaluation points). Points are fixed pseudorandom field elements
  /// shared by construction.
  explicit CpiSketch(std::size_t capacity);

  /// Adds an item (nonzero, and not equal to an evaluation point --
  /// probability ~2^-58 for random data; throws otherwise).
  void add_symbol(const U64Symbol& s);
  void add_element(pinsketch::GF64 x);

  /// Removes a previously added item (divides the evaluations back out).
  void remove_symbol(const U64Symbol& s);

  [[nodiscard]] std::size_t capacity() const noexcept {
    return evals_.size();
  }
  [[nodiscard]] std::size_t set_size() const noexcept { return set_size_; }

  /// Wire size: one field element per evaluation plus the set size (the
  /// protocol exchanges set sizes, §2 of MTZ).
  [[nodiscard]] std::size_t serialized_size() const noexcept {
    return evals_.size() * 8 + 8;
  }

  struct Result {
    bool success = false;
    std::vector<U64Symbol> alice_only;  ///< A \ B
    std::vector<U64Symbol> bob_only;    ///< B \ A
  };

  /// Reconciles two sketches of equal capacity. Fails cleanly when the
  /// true difference exceeds the capacity.
  [[nodiscard]] static Result reconcile(const CpiSketch& alice,
                                        const CpiSketch& bob);

  [[nodiscard]] std::span<const pinsketch::GF64> evaluations() const noexcept {
    return evals_;
  }

  /// Rebuilds a sketch from evaluations received off the wire plus the
  /// sender's set size. Because the evaluation points are fixed per index,
  /// the evaluations of a capacity-c sketch are a prefix of those of any
  /// larger sketch of the same set -- capacity escalation ships only the new
  /// evaluations and the receiver re-assembles with this.
  [[nodiscard]] static CpiSketch from_evaluations(
      std::span<const pinsketch::GF64> evals, std::size_t set_size);

  /// The j-th shared evaluation point.
  [[nodiscard]] static pinsketch::GF64 eval_point(std::size_t j) noexcept;

  /// chi_S(e_j) for the given item set -- one evaluation without building a
  /// whole sketch. Capacity escalation uses this to compute only the new
  /// points of a grown sketch (the prefix is already on the wire). Same
  /// item restrictions as add_symbol.
  [[nodiscard]] static pinsketch::GF64 evaluate_at(
      std::span<const U64Symbol> items, std::size_t j);

 private:
  std::vector<pinsketch::GF64> evals_;  ///< chi_S(e_j), j = 0..m-1
  std::size_t set_size_ = 0;
};

}  // namespace ribltx::cpi
