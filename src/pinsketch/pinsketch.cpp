#include "pinsketch/pinsketch.hpp"

#include <stdexcept>

#include "common/bytes.hpp"
#include "pinsketch/poly.hpp"

namespace ribltx::pinsketch {

PinSketch::PinSketch(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("PinSketch: capacity must be positive");
  }
  syndromes_.assign(capacity, GF64::zero());
}

void PinSketch::add_symbol(const U64Symbol& s) {
  add_element(GF64::from_symbol(s));
}

void PinSketch::add_element(GF64 x) {
  if (x.is_zero()) {
    throw std::invalid_argument(
        "PinSketch: items must be nonzero 64-bit strings");
  }
  // Odd powers x^1, x^3, ...: one multiply by x^2 per syndrome.
  const GF64 x2 = x.squared();
  GF64 p = x;
  for (auto& s : syndromes_) {
    s += p;
    p *= x2;
  }
}

PinSketch& PinSketch::subtract(const PinSketch& other) {
  if (other.syndromes_.size() != syndromes_.size()) {
    throw std::invalid_argument("PinSketch::subtract: capacity mismatch");
  }
  for (std::size_t i = 0; i < syndromes_.size(); ++i) {
    syndromes_[i] += other.syndromes_[i];
  }
  return *this;
}

namespace {

/// Berlekamp-Massey over GF(2^64): minimal LFSR (the error locator) for the
/// sequence `s`. Returns the connection polynomial C with C[0] = 1.
Poly berlekamp_massey(const std::vector<GF64>& s) {
  std::vector<GF64> c{GF64::one()};  // current connection polynomial
  std::vector<GF64> b{GF64::one()};  // copy at last length change
  std::size_t l = 0;
  std::size_t m = 1;
  GF64 bb = GF64::one();  // discrepancy at last length change

  for (std::size_t n = 0; n < s.size(); ++n) {
    GF64 delta = s[n];
    for (std::size_t i = 1; i <= l && i < c.size(); ++i) {
      delta += c[i] * s[n - i];
    }
    if (delta.is_zero()) {
      ++m;
      continue;
    }
    const GF64 coef = delta * bb.inverse();
    if (2 * l <= n) {
      const std::vector<GF64> t = c;
      if (c.size() < b.size() + m) c.resize(b.size() + m, GF64::zero());
      for (std::size_t i = 0; i < b.size(); ++i) c[i + m] += coef * b[i];
      l = n + 1 - l;
      b = t;
      bb = delta;
      m = 1;
    } else {
      if (c.size() < b.size() + m) c.resize(b.size() + m, GF64::zero());
      for (std::size_t i = 0; i < b.size(); ++i) c[i + m] += coef * b[i];
      ++m;
    }
  }
  return Poly(std::move(c));
}

}  // namespace

PinSketch::Result PinSketch::decode() const {
  Result out;

  bool all_zero = true;
  for (const auto& s : syndromes_) {
    if (!s.is_zero()) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) {
    out.success = true;
    return out;  // empty symmetric difference
  }

  // Full syndrome sequence S_1..S_2c: odd entries are stored, even entries
  // follow from Frobenius: S_{2k} = S_k^2 (char-2 power sums).
  const std::size_t c = syndromes_.size();
  std::vector<GF64> full(2 * c, GF64::zero());  // full[j] = S_{j+1}
  for (std::size_t j = 1; j <= 2 * c; ++j) {
    full[j - 1] = (j % 2 == 1) ? syndromes_[(j - 1) / 2]
                               : full[j / 2 - 1].squared();
  }

  const Poly locator = berlekamp_massey(full);
  const int t = locator.degree();
  if (t <= 0 || static_cast<std::size_t>(t) > c) return out;  // overloaded

  // Roots of the locator are inverses of the difference elements.
  std::vector<GF64> roots;
  if (!find_roots(locator, roots)) return out;

  std::vector<GF64> elements;
  elements.reserve(roots.size());
  for (const GF64& r : roots) {
    if (r.is_zero()) return out;  // 0 cannot be a locator root of a valid set
    elements.push_back(r.inverse());
  }

  // Verify: the recovered set must reproduce every transmitted syndrome.
  // This catches Berlekamp-Massey "solutions" for differences > capacity.
  PinSketch check(c);
  for (const GF64& e : elements) check.add_element(e);
  if (check.syndromes_ != syndromes_) return out;

  out.success = true;
  out.difference.reserve(elements.size());
  for (const GF64& e : elements) out.difference.push_back(e.to_symbol());
  return out;
}

std::vector<std::byte> PinSketch::serialize() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(syndromes_.size()));
  for (const auto& s : syndromes_) w.u64(s.bits());
  return std::move(w).take();
}

PinSketch PinSketch::deserialize(std::span<const std::byte> data) {
  ByteReader r(data);
  const std::uint32_t cap = r.u32();
  if (cap == 0) throw std::invalid_argument("PinSketch: empty sketch");
  PinSketch out(cap);
  for (std::uint32_t i = 0; i < cap; ++i) out.syndromes_[i] = GF64(r.u64());
  return out;
}

}  // namespace ribltx::pinsketch
