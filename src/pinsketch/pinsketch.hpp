// PinSketch: BCH-syndrome set reconciliation (Dodis et al. 2008; deployed
// as minisketch in Bitcoin/Erlay -- the paper's [7, 23, 38] baseline).
//
// A sketch of capacity c over 8-byte items stores the odd power sums
//   s_j = sum_{x in S} x^j,  j = 1, 3, ..., 2c-1,   over GF(2^64).
// Sketches XOR to the sketch of the symmetric difference, and exactly c*8
// bytes reconcile up to c differences: communication overhead 1.0, the
// information-theoretic optimum (Fig 7). The price is computation: encoding
// evaluates c syndromes per item (cost linear in c), and decoding runs
// Berlekamp-Massey plus root finding, quadratic in c -- the 2-2000x gap
// Figs 8-9 measure against Rateless IBLT.
//
// Unlike IBLT-style schemes, a decoded PinSketch yields the symmetric
// difference only, without which-side attribution (the paper notes Bob can
// look items up against his own set).
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "core/symbol.hpp"
#include "pinsketch/gf64.hpp"

namespace ribltx::pinsketch {

class PinSketch {
 public:
  /// Sketch that can reconcile up to `capacity` differences.
  explicit PinSketch(std::size_t capacity);

  /// Adds an item. Zero (the additive identity of GF(2^64)) has no syndrome
  /// footprint and is rejected, matching minisketch's domain [1, 2^64).
  void add_symbol(const U64Symbol& s);
  void add_element(GF64 x);

  /// Removing equals adding (characteristic 2): provided for API symmetry.
  void remove_symbol(const U64Symbol& s) { add_symbol(s); }

  /// Cell-wise XOR: *this becomes the sketch of the symmetric difference.
  PinSketch& subtract(const PinSketch& other);

  struct Result {
    bool success = false;
    std::vector<U64Symbol> difference;  ///< A (-) B, unattributed
  };

  /// Decodes the (difference) sketch: Berlekamp-Massey over the syndrome
  /// sequence (even syndromes derived via Frobenius), Berlekamp-trace root
  /// finding, then a full syndrome re-verification. Fails cleanly when the
  /// actual difference exceeds capacity.
  [[nodiscard]] Result decode() const;

  [[nodiscard]] std::size_t capacity() const noexcept {
    return syndromes_.size();
  }

  /// Exact wire size: capacity * 8 bytes (nothing else is transmitted).
  [[nodiscard]] std::size_t serialized_size() const noexcept {
    return syndromes_.size() * 8;
  }

  [[nodiscard]] std::vector<std::byte> serialize() const;
  [[nodiscard]] static PinSketch deserialize(std::span<const std::byte> data);

  [[nodiscard]] std::span<const GF64> syndromes() const noexcept {
    return syndromes_;
  }

 private:
  std::vector<GF64> syndromes_;  ///< s_1, s_3, ..., s_{2c-1}
};

}  // namespace ribltx::pinsketch
