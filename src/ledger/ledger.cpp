#include "ledger/ledger.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/rng.hpp"

namespace ribltx::ledger {
namespace {

constexpr std::uint64_t kAddrDomain = 0x6164647265737321ULL;
constexpr std::uint64_t kValueDomain = 0x76616c7565212121ULL;
constexpr std::uint64_t kBlockDomain = 0x626c6f636b212121ULL;

merkle::AddressKey address_of(std::uint64_t seed, std::uint64_t index) {
  merkle::AddressKey key;
  SplitMix64 rng(derive_seed(seed ^ kAddrDomain, index));
  for (std::size_t i = 0; i < key.size(); i += 4) {
    const auto w = static_cast<std::uint32_t>(rng.next());
    std::memcpy(key.data() + i, &w, 4);
  }
  return key;
}

merkle::AccountValue value_of(std::uint64_t seed, std::uint64_t index,
                              std::uint64_t version_tag) {
  merkle::AccountValue value;
  SplitMix64 rng(derive_seed(seed ^ kValueDomain, mix64(index) ^ version_tag));
  for (std::size_t i = 0; i < value.size(); i += 8) {
    const std::uint64_t w = rng.next();
    std::memcpy(value.data() + i, &w, 8);
  }
  return value;
}

/// Latest version tag per account index after `block` blocks (0 = original
/// value). The returned vector covers the full population at that height.
std::vector<std::uint64_t> materialize_tags(const LedgerParams& p,
                                            std::uint64_t block) {
  const std::size_t population =
      p.base_accounts + static_cast<std::size_t>(block) * p.creates_per_block;
  std::vector<std::uint64_t> tags(population, 0);
  for (std::uint64_t b = 1; b <= block; ++b) {
    // Targets are drawn from the population as of the *previous* block, so
    // replays at different heights agree on every prefix.
    const std::size_t pool =
        p.base_accounts + static_cast<std::size_t>(b - 1) * p.creates_per_block;
    SplitMix64 rng(derive_seed(p.seed ^ kBlockDomain, b));
    for (std::size_t j = 0; j < p.modifies_per_block; ++j) {
      const auto idx = static_cast<std::size_t>(rng.next_below(pool));
      tags[idx] = derive_seed(b, j) | 1;  // nonzero: distinct from original
    }
  }
  return tags;
}

}  // namespace

LedgerState::LedgerState(const LedgerParams& params, std::uint64_t block)
    : params_(params), block_(block) {
  if (params.base_accounts == 0) {
    throw std::invalid_argument("LedgerState: base population must be > 0");
  }
  const auto tags = materialize_tags(params_, block_);
  accounts_.resize(tags.size());
  for (std::size_t i = 0; i < tags.size(); ++i) {
    accounts_[i].key = address_of(params_.seed, i);
    accounts_[i].value = value_of(params_.seed, i, tags[i]);
  }
}

std::vector<StateItem> LedgerState::as_symbols() const {
  std::vector<StateItem> out;
  out.reserve(accounts_.size());
  for (const auto& a : accounts_) out.push_back(to_state_item(a));
  return out;
}

merkle::Trie LedgerState::build_trie() const {
  return merkle::Trie(accounts_, SipKey{params_.seed, 0x74726965ULL});
}

std::size_t symmetric_difference_size(const LedgerParams& params,
                                      std::uint64_t block_a,
                                      std::uint64_t block_b) {
  const std::uint64_t lo = std::min(block_a, block_b);
  const std::uint64_t hi = std::max(block_a, block_b);
  const auto tags_lo = materialize_tags(params, lo);
  const auto tags_hi = materialize_tags(params, hi);
  std::size_t d = tags_hi.size() - tags_lo.size();  // created: 1 each
  for (std::size_t i = 0; i < tags_lo.size(); ++i) {
    if (tags_lo[i] != tags_hi[i]) d += 2;  // modified: old + new version
  }
  return d;
}

std::uint64_t blocks_for_staleness(const LedgerParams& params,
                                   double seconds) {
  if (seconds < 0 || params.seconds_per_block <= 0) {
    throw std::invalid_argument("blocks_for_staleness: bad arguments");
  }
  return static_cast<std::uint64_t>(
      std::llround(seconds / params.seconds_per_block));
}

StateItem to_state_item(const merkle::Account& account) {
  StateItem item;
  std::memcpy(item.data.data(), account.key.data(), merkle::kKeyBytes);
  std::memcpy(item.data.data() + merkle::kKeyBytes, account.value.data(),
              merkle::kValueBytes);
  return item;
}

}  // namespace ribltx::ledger
