// Synthetic Ethereum-like ledger state (DESIGN.md §1.4 substitution 1).
//
// The paper's §7.3 experiments replay snapshots of the real Ethereum
// account table (20-byte addresses -> 72-byte account states, one snapshot
// per 12-second block). We reproduce the *workload shape* deterministically:
// a base population of accounts plus a per-block update stream in which
// most updates modify existing accounts (balance/nonce churn) and a
// fraction creates new ones. Every byte of state is a pure function of
// (seed, block), so Alice at block b1 and Bob at block b0 < b1 can be
// materialized independently and always agree on the shared part.
//
// Set-reconciliation view: an account is the 92-byte item key||value; a
// modified account contributes 2 to |A (-) B| (old and new version), a
// created account contributes 1 -- exactly how the paper counts state
// differences.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "core/symbol.hpp"
#include "merkle/trie.hpp"

namespace ribltx::ledger {

/// 92-byte reconciliation item: address || account body.
using StateItem = ByteSymbol<merkle::kKeyBytes + merkle::kValueBytes>;

struct LedgerParams {
  std::uint64_t seed = 0x45746845524c6564ULL;
  /// Base accounts at block 0 (the paper's mainnet had 230 M; we default to
  /// 1 M and document the scale factor in EXPERIMENTS.md).
  std::size_t base_accounts = 1'000'000;
  /// Accounts touched per block: modifications of existing accounts.
  std::size_t modifies_per_block = 10;
  /// New accounts created per block.
  std::size_t creates_per_block = 2;
  /// Wall-clock seconds per block (Ethereum: 12 s).
  double seconds_per_block = 12.0;

  [[nodiscard]] std::size_t updates_per_block() const noexcept {
    return modifies_per_block + creates_per_block;
  }
};

/// The ledger state as of a given block height.
class LedgerState {
 public:
  /// Materializes the state at `block` (block 0 = base population).
  /// Cost: O(base_accounts + block * updates_per_block).
  LedgerState(const LedgerParams& params, std::uint64_t block);

  [[nodiscard]] std::uint64_t block() const noexcept { return block_; }
  [[nodiscard]] std::size_t account_count() const noexcept {
    return accounts_.size();
  }

  /// Accounts in key order.
  [[nodiscard]] const std::vector<merkle::Account>& accounts() const noexcept {
    return accounts_;
  }

  /// The state as reconciliation items (92-byte symbols).
  [[nodiscard]] std::vector<StateItem> as_symbols() const;

  /// Builds the Merkle trie of this state (same hash key both sides).
  [[nodiscard]] merkle::Trie build_trie() const;

 private:
  LedgerParams params_;
  std::uint64_t block_;
  std::vector<merkle::Account> accounts_;
};

/// Exact symmetric-difference size between the states at two blocks,
/// computed from the update stream (for experiment bookkeeping without
/// materializing both states).
[[nodiscard]] std::size_t symmetric_difference_size(const LedgerParams& params,
                                                    std::uint64_t block_a,
                                                    std::uint64_t block_b);

/// Converts staleness in seconds to blocks under `params`.
[[nodiscard]] std::uint64_t blocks_for_staleness(const LedgerParams& params,
                                                 double seconds);

[[nodiscard]] StateItem to_state_item(const merkle::Account& account);

}  // namespace ribltx::ledger
