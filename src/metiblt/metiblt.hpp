// MET-IBLT: rate-compatible multi-edge-type IBLT baseline (Lazaro & Matuz,
// IEEE Trans. Commun. 2023; the paper's [16]).
//
// MET-IBLT jointly optimizes IBLT parameters for a few pre-selected
// difference sizes d_0 < d_1 < ... so that the coded symbols for d_i are a
// prefix of those for d_j (j > i): the table is organized in *extension
// blocks*. The sender transmits block after block; the receiver re-tries the
// peeling decoder after each block. Because only a handful of d values can
// be optimized for (the optimization is expensive, §2 of the paper), any
// actual difference between two targets must fall through to the next
// block, paying up to a d_{i+1}/d_i overhead factor -- the 4-10x penalty the
// paper reports for non-optimized d (Fig 7's sawtooth).
//
// This is a reconstruction from the cited paper's design (the authors'
// implementation is not public): every source symbol maps to
// `edges_per_block` distinct cells inside each block, and block boundaries
// are sized so that the cumulative table at level i holds
// ceil(overhead_at_target * d_i) cells. DESIGN.md §1.4 records this
// substitution.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "core/coded_symbol.hpp"
#include "core/sketch.hpp"
#include "core/symbol.hpp"

namespace ribltx::metiblt {

/// Geometry of a MET-IBLT: target difference sizes and per-level sizing.
struct MetConfig {
  /// Difference sizes the table is optimized for (cumulative prefixes).
  std::vector<std::uint64_t> targets{16, 128, 1024, 8192, 65536};
  /// Cells per unit difference at each optimized point. Small IBLTs need
  /// proportionally more space to peel reliably (the same small-d penalty
  /// regular IBLTs pay, paper §7.1), so the multiplier decays with the
  /// target. Calibrated by simulation for >=99% decode at each target with
  /// 3 edges per block (see tests and bench/fig07).
  std::vector<double> level_overheads{3.4, 2.0, 1.7, 1.55, 1.5};
  /// Edges each source symbol gets inside every block.
  unsigned edges_per_block = 3;

  [[nodiscard]] static MetConfig recommended() { return MetConfig{}; }

  void validate() const {
    if (targets.empty()) {
      throw std::invalid_argument("MetConfig: need at least one target");
    }
    if (level_overheads.size() != targets.size()) {
      throw std::invalid_argument(
          "MetConfig: one overhead multiplier per target required");
    }
    for (std::size_t i = 1; i < targets.size(); ++i) {
      if (targets[i] <= targets[i - 1]) {
        throw std::invalid_argument("MetConfig: targets must increase");
      }
      if (cumulative_cells(i) <= cumulative_cells(i - 1)) {
        throw std::invalid_argument("MetConfig: levels must add cells");
      }
    }
    for (double c : level_overheads) {
      if (c < 1.0) {
        throw std::invalid_argument("MetConfig: overheads must be >= 1");
      }
    }
    if (edges_per_block == 0) {
      throw std::invalid_argument("MetConfig: edges_per_block must be > 0");
    }
  }

  /// Total cells after `level + 1` blocks.
  [[nodiscard]] std::size_t cumulative_cells(std::size_t level) const {
    return static_cast<std::size_t>(
        level_overheads.at(level) * static_cast<double>(targets.at(level)) +
        0.5);
  }
};

template <Symbol T, typename Hasher = SipHasher<T>>
class MetIblt {
 public:
  explicit MetIblt(MetConfig config = MetConfig::recommended(),
                   Hasher hasher = Hasher{})
      : hasher_(std::move(hasher)), config_(std::move(config)) {
    config_.validate();
    boundaries_.reserve(config_.targets.size());
    for (std::size_t l = 0; l < config_.targets.size(); ++l) {
      boundaries_.push_back(config_.cumulative_cells(l));
    }
    cells_.resize(boundaries_.back());
  }

  void add_symbol(const T& s) { apply(hasher_.hashed(s), Direction::kAdd); }
  void remove_symbol(const T& s) {
    apply(hasher_.hashed(s), Direction::kRemove);
  }

  void apply(const HashedSymbol<T>& s, Direction dir) noexcept {
    for (std::size_t level = 0; level < boundaries_.size(); ++level) {
      for_each_cell(s.hash, level, [&](std::size_t ci) {
        cells_[ci].apply(s, dir);
      });
    }
  }

  MetIblt& subtract(const MetIblt& other) {
    if (other.cells_.size() != cells_.size() ||
        other.boundaries_ != boundaries_) {
      throw std::invalid_argument("MetIblt::subtract: geometry mismatch");
    }
    subtract_run<T>(cells_, other.cells_);
    return *this;
  }

  /// Result of progressive decoding: the first level whose cumulative
  /// prefix decoded, or failure after all levels.
  struct ProgressiveResult {
    DecodeResult<T> result;
    std::size_t level_used = 0;      ///< index into config().targets
    std::size_t cells_used = 0;      ///< cumulative cells actually sent
  };

  /// Simulates the rate-compatible protocol on a subtracted table: reveal
  /// blocks one at a time and peel over the revealed prefix.
  [[nodiscard]] ProgressiveResult decode_progressive() const {
    ProgressiveResult out;
    for (std::size_t level = 0; level < boundaries_.size(); ++level) {
      out.level_used = level;
      out.cells_used = boundaries_[level];
      out.result = decode_prefix(level);
      if (out.result.success) return out;
    }
    return out;
  }

  /// Peels using only blocks 0..level (edges into later blocks ignored).
  [[nodiscard]] DecodeResult<T> decode_prefix(std::size_t level) const {
    if (level >= boundaries_.size()) {
      throw std::out_of_range("MetIblt::decode_prefix: no such level");
    }
    return decode_prefix_over(
        std::span<const CodedSymbol<T>>(cells_.data(), boundaries_[level]),
        level);
  }

  /// Peels externally supplied *difference* cells covering blocks 0..level
  /// (exactly boundary(level) of them) under this table's geometry. This is
  /// the receive path of the rate-compatible protocol: the peer streams its
  /// cumulative prefix, the receiver subtracts its own cells block-wise and
  /// re-tries the peel after each extension block.
  ///
  /// `checksum_mask` ports the §7.1 narrow-checksum trick (see
  /// Iblt::decode): cells settle in the masked checksum domain, purity is
  /// verified under the mask, and the placement hash is recomputed from the
  /// recovered sum.
  [[nodiscard]] DecodeResult<T> decode_prefix_over(
      std::span<const CodedSymbol<T>> diff, std::size_t level,
      std::uint64_t checksum_mask = ~std::uint64_t{0}) const {
    if (level >= boundaries_.size()) {
      throw std::out_of_range("MetIblt::decode_prefix_over: no such level");
    }
    if (diff.size() != boundaries_[level]) {
      throw std::invalid_argument(
          "MetIblt::decode_prefix_over: cell count does not match level");
    }
    std::vector<CodedSymbol<T>> cells(diff.begin(), diff.end());
    if (checksum_mask != ~std::uint64_t{0}) {
      for (auto& c : cells) c.checksum &= checksum_mask;
    }
    const auto pure = [&](const CodedSymbol<T>& c) {
      return (c.count == 1 || c.count == -1) &&
             (hasher_(c.sum) & checksum_mask) == c.checksum;
    };
    DecodeResult<T> out;

    std::vector<std::size_t> queue;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (pure(cells[i])) queue.push_back(i);
    }
    while (!queue.empty()) {
      const std::size_t i = queue.back();
      queue.pop_back();
      if (!pure(cells[i])) continue;
      const HashedSymbol<T> sym{cells[i].sum, hasher_(cells[i].sum)};
      const bool is_remote = cells[i].count == 1;
      (is_remote ? out.remote : out.local).push_back(sym);
      const Direction dir = is_remote ? Direction::kRemove : Direction::kAdd;
      for (std::size_t l = 0; l <= level; ++l) {
        for_each_cell(sym.hash, l, [&](std::size_t ci) {
          cells[ci].apply(sym, dir);
          cells[ci].checksum &= checksum_mask;
          if (pure(cells[ci])) queue.push_back(ci);
        });
      }
    }

    out.success = true;
    for (const auto& c : cells) {
      if (!c.is_empty()) {
        out.success = false;
        break;
      }
    }
    return out;
  }

  [[nodiscard]] const MetConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_levels() const noexcept {
    return boundaries_.size();
  }
  /// Cumulative cell count after blocks 0..level.
  [[nodiscard]] std::size_t boundary(std::size_t level) const {
    return boundaries_.at(level);
  }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }
  [[nodiscard]] std::span<const CodedSymbol<T>> cells() const noexcept {
    return cells_;
  }

  /// Wire bytes for the cumulative prefix at `level`, under the paper's
  /// baseline accounting (8-byte checksum + 8-byte count per cell).
  [[nodiscard]] std::size_t serialized_size(std::size_t level) const {
    return boundaries_.at(level) * (T::kSize + 8 + 8);
  }

 private:
  template <typename Fn>
  void for_each_cell(std::uint64_t hash, std::size_t level, Fn&& fn) const {
    const std::size_t lo = level == 0 ? 0 : boundaries_[level - 1];
    const std::size_t block = boundaries_[level] - lo;
    // Partition each block into edges_per_block sub-ranges for distinct
    // cell choices (same scheme as the regular IBLT baseline).
    const std::size_t sub = block / config_.edges_per_block;
    for (unsigned j = 0; j < config_.edges_per_block; ++j) {
      const std::uint64_t h =
          mix64(hash ^ (0x6d65740000000000ULL + level * 131 + j));
      std::size_t idx;
      if (sub == 0) {
        idx = lo + static_cast<std::size_t>(h % block);
      } else {
        idx = lo + j * sub + static_cast<std::size_t>(h % sub);
      }
      fn(idx);
    }
  }

  Hasher hasher_;
  MetConfig config_;
  std::vector<std::size_t> boundaries_;  ///< cumulative cell counts per level
  std::vector<CodedSymbol<T>> cells_;
};

}  // namespace ribltx::metiblt
