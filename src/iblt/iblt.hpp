// Regular (fixed-size) Invertible Bloom Lookup Table -- the non-rateless
// baseline of the paper's Fig 7 (Goodrich & Mitzenmacher 2011; Eppstein et
// al. 2011 for set reconciliation).
//
// Each item maps to k cells, one per sub-table (partitioned hashing keeps
// the k indices distinct, as in Eppstein et al.'s implementation). Cells
// reuse the core CodedSymbol format (sum / keyed checksum / count). IBLTs
// with equal geometry subtract cell-wise; the peeling decoder recovers the
// symmetric difference or fails (probabilistically -- unlike Rateless IBLT
// there is no way to extend a failed table, Fig 3 / Theorems A.1-A.2).
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "core/coded_symbol.hpp"
#include "core/sketch.hpp"
#include "core/symbol.hpp"

namespace ribltx::iblt {

template <Symbol T, typename Hasher = SipHasher<T>>
class Iblt {
 public:
  /// `num_cells` total cells, `k` sub-tables (hash functions). num_cells is
  /// rounded up to a multiple of k. `salt` decorrelates cell placement from
  /// the checksum hash (and from other IBLT instances).
  Iblt(std::size_t num_cells, unsigned k, Hasher hasher = Hasher{},
       std::uint64_t salt = 0)
      : hasher_(std::move(hasher)), k_(k), salt_(salt) {
    if (k == 0) throw std::invalid_argument("Iblt: k must be positive");
    if (num_cells == 0) throw std::invalid_argument("Iblt: need cells");
    subtable_ = (num_cells + k - 1) / k;
    cells_.resize(subtable_ * k);
  }

  void add_symbol(const T& s) { apply(hasher_.hashed(s), Direction::kAdd); }
  void remove_symbol(const T& s) {
    apply(hasher_.hashed(s), Direction::kRemove);
  }

  void apply(const HashedSymbol<T>& s, Direction dir) noexcept {
    for (unsigned j = 0; j < k_; ++j) {
      cells_[cell_index(s.hash, j)].apply(s, dir);
    }
  }

  /// Cell-wise subtraction; geometries must match.
  Iblt& subtract(const Iblt& other) {
    if (other.cells_.size() != cells_.size() || other.k_ != k_ ||
        other.salt_ != salt_) {
      throw std::invalid_argument("Iblt::subtract: geometry mismatch");
    }
    subtract_run<T>(cells_, other.cells_);
    return *this;
  }

  friend Iblt operator-(Iblt a, const Iblt& b) {
    a.subtract(b);
    return a;
  }

  /// Cell-wise *addition*: folds `other`'s encoded multiset into this
  /// table, as if every item had been applied here directly (cell updates
  /// are linear, so add commutes exactly like subtract). Lets per-thread
  /// replica tables be maintained independently and merged when a combined
  /// view is needed. Geometries must match.
  Iblt& absorb(const Iblt& other) {
    if (other.cells_.size() != cells_.size() || other.k_ != k_ ||
        other.salt_ != salt_) {
      throw std::invalid_argument("Iblt::absorb: geometry mismatch");
    }
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].sum ^= other.cells_[i].sum;
      cells_[i].checksum ^= other.cells_[i].checksum;
      cells_[i].count += other.cells_[i].count;
    }
    return *this;
  }

  /// Peels this (difference) IBLT. success = fully decoded; on failure the
  /// partial recovery is returned (regular IBLTs usually recover *nothing*
  /// when undersized -- Theorem A.1).
  ///
  /// `checksum_mask` supports narrow wire checksums (the §7.1 trick, ported
  /// from the rateless decoder): when the peer's cells carry truncated
  /// (e.g. 4-byte) checksums, pass the matching mask. Every cell's checksum
  /// is reduced modulo the mask up front (masking commutes with XOR, so
  /// mixed masked-remote / full-local cells settle into the masked domain),
  /// purity is verified against the masked keyed hash, and the full 64-bit
  /// hash driving cell placement is recomputed from the recovered sum.
  [[nodiscard]] DecodeResult<T> decode(
      std::uint64_t checksum_mask = ~std::uint64_t{0}) const {
    std::vector<CodedSymbol<T>> cells(cells_.begin(), cells_.end());
    if (checksum_mask != ~std::uint64_t{0}) {
      for (auto& c : cells) c.checksum &= checksum_mask;
    }
    const auto pure = [&](const CodedSymbol<T>& c) {
      return (c.count == 1 || c.count == -1) &&
             (hasher_(c.sum) & checksum_mask) == c.checksum;
    };
    DecodeResult<T> out;

    std::vector<std::size_t> queue;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (pure(cells[i])) queue.push_back(i);
    }
    while (!queue.empty()) {
      const std::size_t i = queue.back();
      queue.pop_back();
      if (!pure(cells[i])) continue;  // stale entry
      // Recompute the full hash from the sum: under a narrow mask the cell
      // only holds the low checksum bits, and cell placement needs all 64.
      const HashedSymbol<T> sym{cells[i].sum, hasher_(cells[i].sum)};
      const bool is_remote = cells[i].count == 1;
      (is_remote ? out.remote : out.local).push_back(sym);
      const Direction dir = is_remote ? Direction::kRemove : Direction::kAdd;
      for (unsigned j = 0; j < k_; ++j) {
        const std::size_t ci = cell_index(sym.hash, j);
        cells[ci].apply(sym, dir);
        cells[ci].checksum &= checksum_mask;
        if (pure(cells[ci])) queue.push_back(ci);
      }
    }

    out.success = true;
    for (const auto& c : cells) {
      if (!c.is_empty()) {
        out.success = false;
        break;
      }
    }
    return out;
  }

  /// Replaces this table's cells with cells received off the wire (see
  /// iblt_wire.hpp); the table must have been constructed with the sender's
  /// geometry (same cell count, k, and salt) for decode to be meaningful.
  void load_cells(std::span<const CodedSymbol<T>> cells) {
    if (cells.size() != cells_.size()) {
      throw std::invalid_argument("Iblt::load_cells: cell count mismatch");
    }
    for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] = cells[i];
  }

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] std::span<const CodedSymbol<T>> cells() const noexcept {
    return cells_;
  }

  /// Bytes this IBLT occupies on the wire under the paper's accounting for
  /// the baselines (§7: 8-byte checksum and 8-byte count per cell).
  [[nodiscard]] std::size_t serialized_size() const noexcept {
    return cells_.size() * (T::kSize + 8 + 8);
  }

 private:
  [[nodiscard]] std::size_t cell_index(std::uint64_t hash,
                                       unsigned j) const noexcept {
    // Sub-table j gets an independently mixed index; partitioning keeps the
    // k cell choices distinct so counts stay consistent.
    const std::uint64_t h = mix64(hash ^ salt_ ^ (0x9e3779b97f4a7c15ULL * (j + 1)));
    return static_cast<std::size_t>(j) * subtable_ +
           static_cast<std::size_t>(h % subtable_);
  }

  Hasher hasher_;
  unsigned k_;
  std::uint64_t salt_;
  std::size_t subtable_;
  std::vector<CodedSymbol<T>> cells_;
};

}  // namespace ribltx::iblt
