// Wire format for the regular-IBLT baseline (and, stratum by stratum, the
// strata estimator). Mirrors the accounting used in the paper's Fig 7
// baselines (8-byte count per cell -- regular IBLTs cannot exploit the
// expected-count trick of §6 because their cell loads do not follow a
// position-dependent schedule), but the checksum width is negotiable: the
// §7.1 narrow-checksum trick ports to the table family, so cells may carry
// 4-byte truncated checksums (the receiver peels under the matching mask,
// iblt.hpp).
//
// Layout: magic "RBIB" | version u8 | k u8 | checksum_len u8 | salt u64 |
//         symbol_len u32 | num_cells uvarint |
//         cells (sum | checksum u32/u64 | count i64)
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/bytes.hpp"
#include "iblt/iblt.hpp"

namespace ribltx::iblt::wire {

inline constexpr std::uint32_t kMagic = 0x42494252;  // "RBIB"
inline constexpr std::uint8_t kVersion = 2;

template <Symbol T, typename Hasher>
[[nodiscard]] std::vector<std::byte> serialize(const Iblt<T, Hasher>& table,
                                               std::uint64_t salt = 0,
                                               std::uint8_t checksum_len = 8) {
  if (checksum_len != 4 && checksum_len != 8) {
    throw std::invalid_argument("iblt: checksum_len must be 4 or 8");
  }
  ByteWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(table.k()));
  w.u8(checksum_len);
  w.u64(salt);
  w.u32(static_cast<std::uint32_t>(T::kSize));
  w.uvarint(table.cell_count());
  for (const auto& cell : table.cells()) {
    w.bytes(cell.sum.bytes());
    if (checksum_len == 8) {
      w.u64(cell.checksum);
    } else {
      w.u32(static_cast<std::uint32_t>(cell.checksum));
    }
    w.i64(cell.count);
  }
  return std::move(w).take();
}

/// Parsed geometry + cells; the receiver subtracts its own table of the
/// same geometry before decoding (under checksum_len's mask when narrow).
template <Symbol T>
struct Parsed {
  unsigned k = 0;
  std::uint64_t salt = 0;
  std::uint8_t checksum_len = 8;
  std::vector<CodedSymbol<T>> cells;
};

template <Symbol T>
[[nodiscard]] Parsed<T> parse(std::span<const std::byte> data) {
  ByteReader r(data);
  if (r.u32() != kMagic) throw std::invalid_argument("iblt: bad magic");
  if (r.u8() != kVersion) throw std::invalid_argument("iblt: bad version");
  Parsed<T> out;
  out.k = r.u8();
  if (out.k == 0) throw std::invalid_argument("iblt: k must be positive");
  out.checksum_len = r.u8();
  if (out.checksum_len != 4 && out.checksum_len != 8) {
    throw std::invalid_argument("iblt: bad checksum length");
  }
  out.salt = r.u64();
  if (r.u32() != static_cast<std::uint32_t>(T::kSize)) {
    throw std::invalid_argument("iblt: symbol size mismatch");
  }
  const std::uint64_t cells = r.uvarint();
  // Reject cell counts the frame cannot possibly hold before allocating.
  if (cells > r.remaining() / (T::kSize + out.checksum_len + 8)) {
    throw std::out_of_range("iblt: num_cells exceeds frame size");
  }
  out.cells.resize(cells);
  for (auto& cell : out.cells) {
    r.copy_to(cell.sum.data.data(), T::kSize);
    cell.checksum = (out.checksum_len == 8) ? r.u64() : r.u32();
    cell.count = r.i64();
  }
  if (!r.done()) throw std::invalid_argument("iblt: trailing bytes");
  return out;
}

}  // namespace ribltx::iblt::wire
