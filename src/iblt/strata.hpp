// Strata estimator for the size of a set difference (Eppstein, Goodrich,
// Uyeda, Varghese, SIGCOMM 2011 §3).
//
// Regular IBLTs must be sized for the (unknown) difference d, so deployed
// systems first exchange an estimator. Items are assigned to stratum i with
// probability 2^-(i+1) (by counting trailing zero bits of a salted hash);
// each stratum is a small fixed-size IBLT. The peer subtracts stratum-wise
// and decodes from the deepest stratum downward: strata deep enough to
// decode count their differences exactly, and the first stratum that fails
// scales the running count by 2^(i+1).
//
// The paper's Fig 7 "Regular IBLT + Estimator" line charges this
// estimator's wire size (>= 15 KB in the recommended setup) on top of the
// IBLT itself; serialized_size() reports ours.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/bytes.hpp"
#include "core/wire.hpp"
#include "iblt/iblt.hpp"

namespace ribltx::iblt {

template <Symbol T, typename Hasher = SipHasher<T>>
class StrataEstimator {
 public:
  static constexpr std::uint32_t kWireMagic = 0x45534252;  // "RBSE"
  static constexpr std::uint8_t kWireVersion = 2;  ///< v2: checksum_len field

  /// `num_strata` levels of `cells_per_stratum`-cell IBLTs with `k` hashes.
  /// Defaults follow the SIGCOMM'11 recommendation (80 cells, k=4, 16
  /// strata cover differences up to ~2^20).
  explicit StrataEstimator(std::size_t num_strata = 16,
                           std::size_t cells_per_stratum = 80, unsigned k = 4,
                           Hasher hasher = Hasher{})
      : hasher_(hasher), num_strata_(num_strata) {
    if (num_strata == 0) {
      throw std::invalid_argument("StrataEstimator: need at least 1 stratum");
    }
    strata_.reserve(num_strata);
    for (std::size_t i = 0; i < num_strata; ++i) {
      strata_.emplace_back(cells_per_stratum, k, hasher,
                           /*salt=*/0x5374726174614575ULL + i);
    }
  }

  void add_symbol(const T& s) { add_hashed(hasher_.hashed(s)); }

  /// Same, for a pre-hashed item (callers keep one HashedSymbol per item
  /// and reuse it across the estimator, tables, and the rateless cache).
  void add_hashed(const HashedSymbol<T>& hs) {
    strata_[stratum_of(hs.hash)].apply(hs, Direction::kAdd);
  }

  /// Backs one item out of its stratum -- the subtractive cells make the
  /// estimator fully incremental, so a long-lived engine can maintain a
  /// live probe digest under churn instead of rebuilding it per HELLO.
  void remove_hashed(const HashedSymbol<T>& hs) {
    strata_[stratum_of(hs.hash)].apply(hs, Direction::kRemove);
  }

  StrataEstimator& subtract(const StrataEstimator& other) {
    if (other.strata_.size() != strata_.size()) {
      throw std::invalid_argument("StrataEstimator::subtract: shape mismatch");
    }
    for (std::size_t i = 0; i < strata_.size(); ++i) {
      strata_[i].subtract(other.strata_[i]);
    }
    // The difference cells only hold checksum bits both sides carry: peel
    // under the narrower mask regardless of which side deserialized the
    // narrow wire form.
    checksum_mask_ &= other.checksum_mask_;
    return *this;
  }

  /// Stratum-wise addition: merges `other`'s items into this estimator
  /// (linearity again). SyncEngine keeps one probe replica per ingest lane
  /// so concurrent churn never contends on one digest, then absorbs the
  /// replicas into a scratch copy at HELLO time.
  StrataEstimator& absorb(const StrataEstimator& other) {
    if (other.strata_.size() != strata_.size()) {
      throw std::invalid_argument("StrataEstimator::absorb: shape mismatch");
    }
    for (std::size_t i = 0; i < strata_.size(); ++i) {
      strata_[i].absorb(other.strata_[i]);
    }
    checksum_mask_ &= other.checksum_mask_;
    return *this;
  }

  /// Estimates |A (-) B| from a subtracted estimator. Never returns 0 for a
  /// non-empty difference in expectation; can over/under-shoot by ~1.5-2x,
  /// which is why deployments over-provision the IBLT they size with it.
  /// Peels under this estimator's checksum mask (narrow when deserialized
  /// from a narrow-checksum wire form).
  [[nodiscard]] std::uint64_t estimate() const {
    std::uint64_t count = 0;
    for (std::size_t i = strata_.size(); i-- > 0;) {
      const auto result = strata_[i].decode(checksum_mask_);
      if (!result.success) {
        return count << (i + 1);
      }
      count += result.remote.size() + result.local.size();
    }
    return count;  // every stratum decoded: the count is exact
  }

  [[nodiscard]] std::size_t num_strata() const noexcept { return num_strata_; }

  /// Wire size under the same per-cell accounting as the regular IBLT.
  [[nodiscard]] std::size_t serialized_size() const noexcept {
    std::size_t total = 0;
    for (const auto& s : strata_) total += s.serialized_size();
    return total;
  }

  /// Actual wire form used by the sync backends: geometry header plus the
  /// raw cells of every stratum (checksums truncated to `checksum_len`
  /// bytes -- the §7.1 narrow-checksum option, honored by estimate()'s
  /// masked peel on the receive side). The receiver rebuilds an estimator
  /// of the same geometry with deserialize() and subtracts its own.
  [[nodiscard]] std::vector<std::byte> serialize(
      std::uint8_t checksum_len = 8) const {
    (void)ribltx::wire::checksum_mask(checksum_len);  // validates the width
    ByteWriter w;
    w.u32(kWireMagic);
    w.u8(kWireVersion);
    w.u8(checksum_len);
    w.uvarint(num_strata_);
    w.uvarint(strata_[0].cell_count());
    w.u8(static_cast<std::uint8_t>(strata_[0].k()));
    w.u32(static_cast<std::uint32_t>(T::kSize));
    for (const auto& s : strata_) {
      for (const auto& cell : s.cells()) {
        ribltx::wire::write_stream_symbol(w, cell, checksum_len);
      }
    }
    return std::move(w).take();
  }

  /// Parses a serialize()d estimator. Throws std::invalid_argument on
  /// malformed input and std::out_of_range on truncation.
  [[nodiscard]] static StrataEstimator deserialize(
      std::span<const std::byte> data, Hasher hasher = Hasher{}) {
    ByteReader r(data);
    if (r.u32() != kWireMagic) {
      throw std::invalid_argument("strata: bad magic");
    }
    if (r.u8() != kWireVersion) {
      throw std::invalid_argument("strata: bad version");
    }
    const std::uint8_t checksum_len = r.u8();
    if (checksum_len != 4 && checksum_len != 8) {
      throw std::invalid_argument("strata: bad checksum length");
    }
    const std::uint64_t num_strata = r.uvarint();
    const std::uint64_t cells_per_stratum = r.uvarint();
    const unsigned k = r.u8();
    if (r.u32() != static_cast<std::uint32_t>(T::kSize)) {
      throw std::invalid_argument("strata: symbol size mismatch");
    }
    if (num_strata == 0 || num_strata > 64 || cells_per_stratum == 0 ||
        k == 0) {
      throw std::invalid_argument("strata: bad geometry");
    }
    // Each cell occupies at least sum + checksum + 1 count byte; reject
    // geometries the frame cannot possibly hold before allocating. The
    // factor is bounded first so the product cannot wrap uint64 (a 20-byte
    // frame claiming 64 x 2^58 cells must die here, not in the allocator).
    const std::size_t min_cell = T::kSize + checksum_len + 1;
    const std::size_t max_cells = r.remaining() / min_cell;
    if (cells_per_stratum > max_cells ||
        num_strata * cells_per_stratum > max_cells) {
      throw std::out_of_range("strata: cell count exceeds frame size");
    }
    StrataEstimator out(num_strata, cells_per_stratum, k, hasher);
    out.checksum_mask_ = ribltx::wire::checksum_mask(checksum_len);
    std::vector<CodedSymbol<T>> cells(out.strata_[0].cell_count());
    for (auto& stratum : out.strata_) {
      for (auto& cell : cells) {
        cell = ribltx::wire::read_stream_symbol<T>(r, checksum_len);
      }
      stratum.load_cells(cells);
    }
    if (!r.done()) throw std::invalid_argument("strata: trailing bytes");
    return out;
  }

 private:
  [[nodiscard]] std::size_t stratum_of(std::uint64_t hash) const noexcept {
    const std::uint64_t mixed = mix64(hash ^ 0x7374726174756d21ULL);
    const auto tz = static_cast<std::size_t>(std::countr_zero(mixed));
    return tz >= num_strata_ ? num_strata_ - 1 : tz;
  }

  Hasher hasher_;
  std::size_t num_strata_;
  std::vector<Iblt<T, Hasher>> strata_;
  /// Checksum-compare mask for estimate(): all-ones for locally built
  /// estimators; the wire width's mask after deserialize().
  std::uint64_t checksum_mask_ = ~std::uint64_t{0};
};

}  // namespace ribltx::iblt
