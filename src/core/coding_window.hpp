// CodingWindow: a set of source symbols plus a priority queue of their next
// mapped coded-symbol indices.
//
// This is the paper's "efficient incremental encoding" structure (§6): the
// symbols whose next mapped index is smallest sit at the heap head, so
// producing the coded symbol at stream index i touches exactly the symbols
// mapped to i (O(log n) heap maintenance each), never the whole set.
// The decoder reuses the same structure to lazily subtract its local set --
// and previously recovered symbols -- from newly arriving cells.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/coded_symbol.hpp"
#include "core/mapping.hpp"
#include "core/symbol.hpp"

namespace ribltx {

template <Symbol T, typename Mapping = IndexMapping>
class CodingWindow {
 public:
  CodingWindow() = default;

  /// Adds a symbol whose mapping generator is freshly seeded (next mapped
  /// index = 0). Use before any cell has been produced/consumed.
  template <typename MappingFactory>
  void add(const HashedSymbol<T>& s, const MappingFactory& factory) {
    add_with_mapping(s, factory(s.hash));
  }

  /// Adds a symbol with an explicit mapping state. The decoder uses this to
  /// register a just-recovered symbol whose mapping has already been walked
  /// past every received cell. `dir` is the entry's own direction: a
  /// kRemove entry folds its symbol with the opposite sign on every future
  /// cell -- the tombstone that cancels an earlier kAdd entry of the same
  /// symbol (SequenceCache churn) or undoes a set change a snapshot must
  /// not see (SequenceCache::Cursor overlays).
  void add_with_mapping(const HashedSymbol<T>& s, Mapping mapping,
                        Direction dir = Direction::kAdd) {
    if (symbols_.size() >= kRemoveBit) {
      throw std::length_error("CodingWindow: symbol capacity exhausted");
    }
    const auto ordinal = static_cast<std::uint32_t>(symbols_.size());
    symbols_.push_back(s);
    // The sign rides in the ordinal's top bit: widening Entry by even one
    // byte measurably slows the sift-down swap chain (the encode hot path),
    // and windows are memory-bounded far below 2^31 symbols anyway.
    const std::uint32_t packed =
        dir == Direction::kAdd ? ordinal : (ordinal | kRemoveBit);
    keys_.push_back(mapping.index());
    heap_.push_back(Entry{std::move(mapping), packed});
    sift_up(heap_.size() - 1);
  }

  /// Folds every symbol mapped to stream index `index` into `cell`, then
  /// advances those symbols to their next mapped index. `dir` composes with
  /// each entry's own direction (signs multiply). Must be called with
  /// non-decreasing `index` values (stream order); throws std::logic_error
  /// if a symbol's next index was already passed.
  void apply_at(std::uint64_t index, CodedSymbol<T>& cell, Direction dir) {
    while (!heap_.empty() && keys_[0] <= index) {
      Entry& top = heap_.front();
      if (keys_[0] < index) {
        throw std::logic_error(
            "CodingWindow::apply_at: indices must be visited in stream order");
      }
      cell.apply(symbols_[top.ordinal & ~kRemoveBit],
                 (top.ordinal & kRemoveBit) == 0 ? dir : invert(dir));
      keys_[0] = top.mapping.advance();
      sift_down(0);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return symbols_.size(); }
  [[nodiscard]] bool empty() const noexcept { return symbols_.empty(); }

  [[nodiscard]] std::span<const HashedSymbol<T>> symbols() const noexcept {
    return symbols_;
  }

  void clear() noexcept {
    symbols_.clear();
    heap_.clear();
    keys_.clear();
  }

  /// Visits every entry as (symbol, direction, next mapped index) in
  /// unspecified order. SequenceCache compaction uses this to recover the
  /// live multiset (adds minus tombstones) without shadow bookkeeping.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      const Entry& e = heap_[i];
      fn(symbols_[e.ordinal & ~kRemoveBit],
         (e.ordinal & kRemoveBit) == 0 ? Direction::kAdd : Direction::kRemove,
         keys_[i]);
    }
  }

 private:
  /// Top ordinal bit marks a kRemove (tombstone/undo) entry.
  static constexpr std::uint32_t kRemoveBit = 0x80000000u;
  /// Heap fan-out. Four children per node halves the sift depth of a binary
  /// heap and puts all four child keys on one cache line of `keys_`, which
  /// is what the decode/encode profile is bound by (sift_down of cold
  /// 24-byte entries), not by comparison count.
  static constexpr std::size_t kArity = 4;

  struct Entry {
    Mapping mapping;
    std::uint32_t ordinal;  ///< symbol index, kRemoveBit-tagged
  };

  // Minimal d-ary min-heap on the next mapped index. The keys live in a
  // flat parallel array (`keys_[i] == heap_[i].mapping.index()`) so the
  // compare path never touches the fat entries. Hand-rolled instead of
  // std::priority_queue because apply_at mutates the top element in place
  // (advance + sift_down), which the standard adapter cannot express
  // without a pop/push pair per touched symbol.
  // Hole-based sifts: the displaced node is held in a local and written
  // once at its final position, one move per level instead of a three-move
  // swap of the fat entries.
  void sift_up(std::size_t i) noexcept {
    if (i == 0) return;
    const std::uint64_t key = keys_[i];
    std::size_t parent = (i - 1) / kArity;
    if (keys_[parent] <= key) return;
    Entry entry = std::move(heap_[i]);
    do {
      keys_[i] = keys_[parent];
      heap_[i] = std::move(heap_[parent]);
      i = parent;
      parent = (i - 1) / kArity;
    } while (i > 0 && keys_[parent] > key);
    keys_[i] = key;
    heap_[i] = std::move(entry);
  }

  [[nodiscard]] std::size_t smallest_child(std::size_t first,
                                           std::size_t n) const noexcept {
    const std::size_t last = first + kArity < n ? first + kArity : n;
    std::size_t smallest = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (keys_[c] < keys_[smallest]) smallest = c;
    }
    return smallest;
  }

  void sift_down(std::size_t i) noexcept {
    const std::size_t n = heap_.size();
    const std::uint64_t key = keys_[i];
    std::size_t first = kArity * i + 1;
    if (first >= n) return;
    std::size_t smallest = smallest_child(first, n);
    if (keys_[smallest] >= key) return;
    Entry entry = std::move(heap_[i]);
    for (;;) {
      keys_[i] = keys_[smallest];
      heap_[i] = std::move(heap_[smallest]);
      i = smallest;
      first = kArity * i + 1;
      if (first >= n) break;
      smallest = smallest_child(first, n);
      if (keys_[smallest] >= key) break;
    }
    keys_[i] = key;
    heap_[i] = std::move(entry);
  }

  std::vector<HashedSymbol<T>> symbols_;
  std::vector<Entry> heap_;
  std::vector<std::uint64_t> keys_;  ///< heap_[i].mapping.index(), flat
};

}  // namespace ribltx
