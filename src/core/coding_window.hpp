// CodingWindow: a set of source symbols plus a priority queue of their next
// mapped coded-symbol indices.
//
// This is the paper's "efficient incremental encoding" structure (§6): the
// symbols whose next mapped index is smallest sit at the heap head, so
// producing the coded symbol at stream index i touches exactly the symbols
// mapped to i (O(log n) heap maintenance each), never the whole set.
// The decoder reuses the same structure to lazily subtract its local set --
// and previously recovered symbols -- from newly arriving cells.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/coded_symbol.hpp"
#include "core/mapping.hpp"
#include "core/symbol.hpp"

namespace ribltx {

template <Symbol T, typename Mapping = IndexMapping>
class CodingWindow {
 public:
  CodingWindow() = default;

  /// Adds a symbol whose mapping generator is freshly seeded (next mapped
  /// index = 0). Use before any cell has been produced/consumed.
  template <typename MappingFactory>
  void add(const HashedSymbol<T>& s, const MappingFactory& factory) {
    add_with_mapping(s, factory(s.hash));
  }

  /// Adds a symbol with an explicit mapping state. The decoder uses this to
  /// register a just-recovered symbol whose mapping has already been walked
  /// past every received cell. `dir` is the entry's own direction: a
  /// kRemove entry folds its symbol with the opposite sign on every future
  /// cell -- the tombstone that cancels an earlier kAdd entry of the same
  /// symbol (SequenceCache churn) or undoes a set change a snapshot must
  /// not see (SequenceCache::Cursor overlays).
  void add_with_mapping(const HashedSymbol<T>& s, Mapping mapping,
                        Direction dir = Direction::kAdd) {
    if (symbols_.size() >= kRemoveBit) {
      throw std::length_error("CodingWindow: symbol capacity exhausted");
    }
    const auto ordinal = static_cast<std::uint32_t>(symbols_.size());
    symbols_.push_back(s);
    // The sign rides in the ordinal's top bit: widening Entry by even one
    // byte measurably slows the sift-down swap chain (the encode hot path),
    // and windows are memory-bounded far below 2^31 symbols anyway.
    const std::uint32_t packed =
        dir == Direction::kAdd ? ordinal : (ordinal | kRemoveBit);
    heap_.push_back(Entry{std::move(mapping), packed});
    sift_up(heap_.size() - 1);
  }

  /// Folds every symbol mapped to stream index `index` into `cell`, then
  /// advances those symbols to their next mapped index. `dir` composes with
  /// each entry's own direction (signs multiply). Must be called with
  /// non-decreasing `index` values (stream order); throws std::logic_error
  /// if a symbol's next index was already passed.
  void apply_at(std::uint64_t index, CodedSymbol<T>& cell, Direction dir) {
    while (!heap_.empty() && heap_.front().mapping.index() <= index) {
      Entry& top = heap_.front();
      if (top.mapping.index() < index) {
        throw std::logic_error(
            "CodingWindow::apply_at: indices must be visited in stream order");
      }
      cell.apply(symbols_[top.ordinal & ~kRemoveBit],
                 (top.ordinal & kRemoveBit) == 0 ? dir : invert(dir));
      top.mapping.advance();
      sift_down(0);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return symbols_.size(); }
  [[nodiscard]] bool empty() const noexcept { return symbols_.empty(); }

  [[nodiscard]] std::span<const HashedSymbol<T>> symbols() const noexcept {
    return symbols_;
  }

  void clear() noexcept {
    symbols_.clear();
    heap_.clear();
  }

 private:
  /// Top ordinal bit marks a kRemove (tombstone/undo) entry.
  static constexpr std::uint32_t kRemoveBit = 0x80000000u;

  struct Entry {
    Mapping mapping;
    std::uint32_t ordinal;  ///< symbol index, kRemoveBit-tagged
  };

  // Minimal binary min-heap on Entry::mapping.index(). Hand-rolled instead
  // of std::priority_queue because apply_at mutates the top element in place
  // (advance + sift_down), which the standard adapter cannot express without
  // a pop/push pair per touched symbol.
  void sift_up(std::size_t i) noexcept {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_[parent].mapping.index() <= heap_[i].mapping.index()) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) noexcept {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      std::size_t smallest = i;
      if (l < n &&
          heap_[l].mapping.index() < heap_[smallest].mapping.index()) {
        smallest = l;
      }
      if (r < n &&
          heap_[r].mapping.index() < heap_[smallest].mapping.index()) {
        smallest = r;
      }
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<HashedSymbol<T>> symbols_;
  std::vector<Entry> heap_;
};

}  // namespace ribltx
