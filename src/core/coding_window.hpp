// CodingWindow: a set of source symbols plus a schedule of their next
// mapped coded-symbol indices.
//
// This is the paper's "efficient incremental encoding" structure (§6): the
// symbols mapped to the next stream index must be found in O(their count),
// never by scanning the whole set. Stream indices are visited in
// non-decreasing order (grow_to blocks, encoder produce_next, cursor
// overlays), which admits the same calendar-queue trick the decoder uses --
// but bounded: where the decoder keeps one bucket per received cell
// (O(stream) memory it needs anyway for the cells), the window keeps a
// fixed-size circular bucket array covering the next kHorizon indices, and
// entries mapped beyond the horizon park in a "far" min-heap keyed by next
// index. The common operations become:
//
//   * apply_at(i): drain bucket i & (kHorizon-1) -- O(1) per mapped symbol,
//     no sift -- then re-bucket each advanced entry (O(1) when the next
//     index lands inside the horizon, one far-heap push otherwise);
//   * window advance: far entries whose key enters the horizon are pulled
//     with one heap pop each (amortized: a symbol has O(log m) mapped
//     indices below any horizon).
//
// The far heap sifts a flat (u64 key, u32 entry id) pair -- 12 bytes per
// level -- where the old 4-ary entry heap moved 24-byte entries; the
// near-horizon traffic (the dense, hot part of the mapping distribution)
// bypasses the heap entirely. Stream-order misuse still throws: a skipped
// index with a live entry is detected by scanning exactly the skipped
// bucket slots, and far entries below the applied index are caught at the
// heap head.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/coded_symbol.hpp"
#include "core/mapping.hpp"
#include "core/symbol.hpp"

namespace ribltx {

template <Symbol T, typename Mapping = IndexMapping>
class CodingWindow {
 public:
  CodingWindow() = default;

  /// Adds a symbol whose mapping generator is freshly seeded (next mapped
  /// index = 0). Use before any cell has been produced/consumed.
  template <typename MappingFactory>
  void add(const HashedSymbol<T>& s, const MappingFactory& factory) {
    add_with_mapping(s, factory(s.hash));
  }

  /// Adds a symbol with an explicit mapping state. The decoder uses this to
  /// register a just-recovered symbol whose mapping has already been walked
  /// past every received cell. `dir` is the entry's own direction: a
  /// kRemove entry folds its symbol with the opposite sign on every future
  /// cell -- the tombstone that cancels an earlier kAdd entry of the same
  /// symbol (SequenceCache churn) or undoes a set change a snapshot must
  /// not see (SequenceCache::Cursor overlays). The mapping must not point
  /// at an index the window already visited.
  void add_with_mapping(const HashedSymbol<T>& s, Mapping mapping,
                        Direction dir = Direction::kAdd) {
    if (symbols_.size() >= kRemoveBit) {
      throw std::length_error("CodingWindow: symbol capacity exhausted");
    }
    const auto ordinal = static_cast<std::uint32_t>(symbols_.size());
    symbols_.push_back(s);
    // The sign rides in the ordinal's top bit: windows are memory-bounded
    // far below 2^31 symbols, and a separate byte would widen the entry.
    const std::uint32_t packed =
        dir == Direction::kAdd ? ordinal : (ordinal | kRemoveBit);
    const std::uint64_t key = mapping.index();
    if (key < pos_) {
      throw std::logic_error(
          "CodingWindow: entry mapped to an already-visited index");
    }
    entries_.push_back(Entry{std::move(mapping), packed, kNilEntry});
    place(static_cast<std::uint32_t>(entries_.size() - 1), key);
  }

  /// Folds every symbol mapped to stream index `index` into `cell`, then
  /// advances those symbols to their next mapped index. `dir` composes with
  /// each entry's own direction (signs multiply). Must be called with
  /// non-decreasing `index` values (stream order); throws std::logic_error
  /// if a symbol's next index was already passed.
  void apply_at(std::uint64_t index, CodedSymbol<T>& cell, Direction dir) {
    if (index + 1 < pos_) {
      // A backward revisit would drain a bucket slot that now belongs to a
      // different (future) key -- corruption, not a no-op. Re-applying the
      // just-visited index is allowed (its slot is already drained).
      throw std::logic_error(
          "CodingWindow::apply_at: indices must be visited in stream order");
    }
    if (index + 1 > pos_) advance_to(index);
    if (buckets_.empty()) return;  // no entry was ever in bucket range
    const std::size_t slot = static_cast<std::size_t>(index) & (kHorizon - 1);
    std::uint32_t id = buckets_[slot];
    buckets_[slot] = kNilEntry;
    while (id != kNilEntry) {
      Entry& e = entries_[id];
      const std::uint32_t chain = e.next;
      cell.apply(symbols_[e.ordinal & ~kRemoveBit],
                 (e.ordinal & kRemoveBit) == 0 ? dir : invert(dir));
      const std::uint64_t next = e.mapping.advance();
      e.next = kNilEntry;
      place(id, next);
      id = chain;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return symbols_.size(); }
  [[nodiscard]] bool empty() const noexcept { return symbols_.empty(); }

  [[nodiscard]] std::span<const HashedSymbol<T>> symbols() const noexcept {
    return symbols_;
  }

  void clear() noexcept {
    symbols_.clear();
    entries_.clear();
    buckets_.clear();
    far_keys_.clear();
    far_ids_.clear();
    base_ = 0;
    pos_ = 0;
  }

  /// Visits every entry as (symbol, direction, next mapped index) in
  /// unspecified order. SequenceCache compaction uses this to recover the
  /// live multiset (adds minus tombstones) without shadow bookkeeping.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const Entry& e : entries_) {
      fn(symbols_[e.ordinal & ~kRemoveBit],
         (e.ordinal & kRemoveBit) == 0 ? Direction::kAdd : Direction::kRemove,
         e.mapping.index());
    }
  }

  /// Calendar span: indices in [base, base + kHorizon) resolve to buckets;
  /// anything farther parks in the far heap until the window slides there.
  static constexpr std::size_t kHorizon = 512;

 private:
  /// Top ordinal bit marks a kRemove (tombstone/undo) entry.
  static constexpr std::uint32_t kRemoveBit = 0x80000000u;
  static constexpr std::uint32_t kNilEntry = 0xffffffffu;
  /// Far-heap fan-out: four (key, id) pairs per node keep the child keys on
  /// one cache line, same rationale as the decoder-side calendar.
  static constexpr std::size_t kArity = 4;

  struct Entry {
    Mapping mapping;
    std::uint32_t ordinal;  ///< symbol index, kRemoveBit-tagged
    std::uint32_t next;     ///< intrusive bucket chain
  };

  static_assert((kHorizon & (kHorizon - 1)) == 0, "horizon must be 2^k");

  /// Links entry `id` (with next mapped index `key`) into its calendar
  /// bucket, or parks it in the far heap beyond the horizon.
  void place(std::uint32_t id, std::uint64_t key) {
    if (key < base_ + kHorizon) {
      if (buckets_.empty()) buckets_.assign(kHorizon, kNilEntry);
      const std::size_t slot = static_cast<std::size_t>(key) & (kHorizon - 1);
      entries_[id].next = buckets_[slot];
      buckets_[slot] = id;
    } else {
      far_push(key, id);
    }
  }

  /// Slides the visit position (and, when needed, the window base) forward
  /// to `index`: verifies every skipped bucket slot is empty (a live entry
  /// there means the caller broke stream order) and pulls far entries whose
  /// key now falls inside the horizon.
  void advance_to(std::uint64_t index) {
    if (!buckets_.empty() && index > pos_) {
      // Each in-window slot holds exactly the key congruent to it, so the
      // skipped values [pos_, index) -- at most kHorizon distinct slots --
      // are checkable without touching any entry.
      const std::uint64_t skipped = index - pos_;
      const std::uint64_t scan =
          skipped < kHorizon ? skipped : std::uint64_t{kHorizon};
      for (std::uint64_t v = pos_; v < pos_ + scan; ++v) {
        if (buckets_[static_cast<std::size_t>(v) & (kHorizon - 1)] !=
            kNilEntry) {
          throw std::logic_error(
              "CodingWindow::apply_at: indices must be visited in stream "
              "order");
        }
      }
    }
    pos_ = index + 1;
    if (index >= base_ + kHorizon) base_ = index;
    while (!far_keys_.empty() && far_keys_[0] < base_ + kHorizon) {
      if (far_keys_[0] < index) {
        throw std::logic_error(
            "CodingWindow::apply_at: indices must be visited in stream "
            "order");
      }
      const std::uint32_t id = far_ids_[0];
      const std::uint64_t key = far_keys_[0];
      far_pop();
      if (buckets_.empty()) buckets_.assign(kHorizon, kNilEntry);
      const std::size_t slot = static_cast<std::size_t>(key) & (kHorizon - 1);
      entries_[id].next = buckets_[slot];
      buckets_[slot] = id;
    }
  }

  // Far heap: flat 4-ary min-heap over (key, id) pairs in parallel arrays;
  // hole-based sifts move 12 bytes per level.
  void far_push(std::uint64_t key, std::uint32_t id) {
    far_keys_.push_back(key);
    far_ids_.push_back(id);
    std::size_t i = far_keys_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (far_keys_[parent] <= key) break;
      far_keys_[i] = far_keys_[parent];
      far_ids_[i] = far_ids_[parent];
      i = parent;
    }
    far_keys_[i] = key;
    far_ids_[i] = id;
  }

  void far_pop() {
    const std::uint64_t key = far_keys_.back();
    const std::uint32_t id = far_ids_.back();
    far_keys_.pop_back();
    far_ids_.pop_back();
    const std::size_t n = far_keys_.size();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = kArity * i + 1;
      if (first >= n) break;
      const std::size_t last = first + kArity < n ? first + kArity : n;
      std::size_t smallest = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (far_keys_[c] < far_keys_[smallest]) smallest = c;
      }
      if (far_keys_[smallest] >= key) break;
      far_keys_[i] = far_keys_[smallest];
      far_ids_[i] = far_ids_[smallest];
      i = smallest;
    }
    far_keys_[i] = key;
    far_ids_[i] = id;
  }

  std::vector<HashedSymbol<T>> symbols_;
  std::vector<Entry> entries_;          ///< flat arena, never reordered
  std::vector<std::uint32_t> buckets_;  ///< circular calendar, chain heads
  std::vector<std::uint64_t> far_keys_;  ///< far-heap keys (next index)
  std::vector<std::uint32_t> far_ids_;   ///< far-heap entry ids
  std::uint64_t base_ = 0;  ///< smallest index the calendar can hold
  std::uint64_t pos_ = 0;   ///< next unvisited stream index
};

}  // namespace ribltx
