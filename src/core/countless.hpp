// Count-less decoding (paper §7.1, "Scalability of Rateless IBLT"):
// "It is also possible to remove the count field altogether; Bob can still
// recover the symmetric difference as the peeling decoder does not use
// this field."
//
// Without counts, a cell is pure iff its checksum equals the keyed hash of
// its sum (works for both one-remote and one-local cells: XOR is sign-
// blind), and empty iff sum and checksum are both zero. What is lost is
// only the remote/local attribution -- the decoder returns one
// undifferentiated difference list, and callers who need sides can probe
// their own set. Paired with wire::SketchWireOptions{include_counts=false}
// this trims every varint residual byte off the stream.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/coded_symbol.hpp"
#include "core/coding_window.hpp"
#include "core/mapping.hpp"
#include "core/symbol.hpp"

namespace ribltx {

template <Symbol T, typename Hasher = SipHasher<T>,
          typename MappingFactory = DefaultMappingFactory>
class CountlessDecoder {
 public:
  using mapping_type = typename MappingFactory::mapping_type;

  explicit CountlessDecoder(Hasher hasher = Hasher{},
                            MappingFactory factory = MappingFactory{})
      : hasher_(std::move(hasher)), factory_(std::move(factory)) {}

  /// Registers one of Bob's local items; must precede the stream.
  void add_local_symbol(const T& s) {
    if (!cells_.empty()) {
      throw std::logic_error(
          "CountlessDecoder: local items must precede coded symbols");
    }
    local_set_.add(hasher_.hashed(s), factory_);
  }

  /// Consumes the next coded symbol (count field ignored entirely).
  void add_coded_symbol(const CodedSymbol<T>& incoming) {
    const std::uint64_t index = cells_.size();
    CodedSymbol<T> cell = incoming;
    cell.count = 0;
    local_set_.apply_at(index, cell, Direction::kAdd);
    recovered_.apply_at(index, cell, Direction::kAdd);
    cells_.push_back(cell);
    settled_flags_.push_back(0);
    enqueue_if_actionable(static_cast<std::size_t>(index));
    peel();
  }

  [[nodiscard]] bool decoded() const noexcept {
    return !cells_.empty() && settled_count_ == cells_.size();
  }

  /// The symmetric difference A (-) B, unattributed, in recovery order.
  [[nodiscard]] std::span<const HashedSymbol<T>> difference() const noexcept {
    return difference_;
  }

  [[nodiscard]] std::size_t cells_received() const noexcept {
    return cells_.size();
  }

  void reset() noexcept {
    local_set_.clear();
    recovered_.clear();
    cells_.clear();
    settled_flags_.clear();
    queue_.clear();
    difference_.clear();
    settled_count_ = 0;
  }

 private:
  [[nodiscard]] bool cell_empty(const CodedSymbol<T>& c) const noexcept {
    return c.checksum == 0 && c.sum == T{};
  }

  [[nodiscard]] bool cell_pure(const CodedSymbol<T>& c) const noexcept {
    return !cell_empty(c) && hasher_(c.sum) == c.checksum;
  }

  void enqueue_if_actionable(std::size_t i) {
    if (settled_flags_[i]) return;
    if (cell_empty(cells_[i]) || cell_pure(cells_[i])) queue_.push_back(i);
  }

  void peel() {
    while (!queue_.empty()) {
      const std::size_t i = queue_.back();
      queue_.pop_back();
      if (settled_flags_[i]) continue;
      if (cell_empty(cells_[i])) {
        settled_flags_[i] = 1;
        ++settled_count_;
        continue;
      }
      if (!cell_pure(cells_[i])) continue;

      const HashedSymbol<T> sym{cells_[i].sum, cells_[i].checksum};
      mapping_type mapping = factory_(sym.hash);
      while (mapping.index() < cells_.size()) {
        const auto ci = static_cast<std::size_t>(mapping.index());
        cells_[ci].sum ^= sym.symbol;
        cells_[ci].checksum ^= sym.hash;
        enqueue_if_actionable(ci);
        mapping.advance();
      }
      difference_.push_back(sym);
      recovered_.add_with_mapping(sym, std::move(mapping));
    }
  }

  Hasher hasher_;
  MappingFactory factory_;
  CodingWindow<T, mapping_type> local_set_;
  CodingWindow<T, mapping_type> recovered_;
  std::vector<CodedSymbol<T>> cells_;
  std::vector<std::uint8_t> settled_flags_;
  std::vector<std::size_t> queue_;
  std::size_t settled_count_ = 0;
  std::vector<HashedSymbol<T>> difference_;
};

}  // namespace ribltx
