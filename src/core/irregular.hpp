// Irregular Rateless IBLT (paper §8).
//
// Source symbols are partitioned (by hash) into c subsets; subset j gets its
// own mapping probability rho_j(i) = 1/(1 + alpha_j * i). With the paper's
// brute-force-optimized c = 3 configuration the asymptotic communication
// overhead drops from 1.35 to 1.10 (Fig 15), at ~1.88x the encode/decode
// CPU (generic-alpha gap sampling needs pow() instead of sqrt()).
#pragma once

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/mapping.hpp"
#include "core/sketch.hpp"

namespace ribltx {

/// Subset weights and per-subset alphas. weights must sum to ~1.
struct IrregularConfig {
  std::vector<double> weights;
  std::vector<double> alphas;

  /// The configuration found by the paper's brute-force search (§8):
  /// c=3, w = (0.18, 0.56, 0.26), alpha = (0.11, 0.68, 0.82).
  [[nodiscard]] static IrregularConfig paper_optimal() {
    return IrregularConfig{{0.18, 0.56, 0.26}, {0.11, 0.68, 0.82}};
  }

  void validate() const {
    if (weights.empty() || weights.size() != alphas.size()) {
      throw std::invalid_argument("IrregularConfig: weights/alphas mismatch");
    }
    const double total =
        std::accumulate(weights.begin(), weights.end(), 0.0);
    if (total < 0.999 || total > 1.001) {
      throw std::invalid_argument("IrregularConfig: weights must sum to 1");
    }
    for (double a : alphas) {
      if (a <= 0.0 || a > 1.0) {
        throw std::invalid_argument("IrregularConfig: alpha out of (0,1]");
      }
    }
  }
};

/// Picks the subset for a symbol from its hash, then seeds a GenericMapping
/// with an independently mixed stream so the subset choice and the gap
/// sequence are decorrelated. Encoder and decoder derive identical mappings
/// because both are pure functions of the keyed hash.
class IrregularMappingFactory {
 public:
  using mapping_type = GenericMapping;

  IrregularMappingFactory() : IrregularMappingFactory(IrregularConfig::paper_optimal()) {}

  explicit IrregularMappingFactory(IrregularConfig config)
      : config_(std::move(config)) {
    config_.validate();
    cumulative_.reserve(config_.weights.size());
    double acc = 0.0;
    for (double w : config_.weights) {
      acc += w;
      cumulative_.push_back(acc);
    }
    cumulative_.back() = 1.0;  // guard against rounding in the last bucket
  }

  [[nodiscard]] GenericMapping operator()(std::uint64_t hash) const noexcept {
    return GenericMapping(config_.alphas[subset_of(hash)],
                          mix64(hash ^ kSeedSalt));
  }

  /// Which subset a symbol with this hash belongs to (exposed for tests).
  [[nodiscard]] std::size_t subset_of(std::uint64_t hash) const noexcept {
    const double u = static_cast<double>(hash) * 0x1.0p-64;
    for (std::size_t j = 0; j + 1 < cumulative_.size(); ++j) {
      if (u < cumulative_[j]) return j;
    }
    return cumulative_.size() - 1;
  }

  [[nodiscard]] const IrregularConfig& config() const noexcept {
    return config_;
  }

 private:
  static constexpr std::uint64_t kSeedSalt = 0x1bf58476d1ce4e5bULL;

  IrregularConfig config_;
  std::vector<double> cumulative_;
};

template <Symbol T, typename Hasher = SipHasher<T>>
using IrregularEncoder = Encoder<T, Hasher, IrregularMappingFactory>;

template <Symbol T, typename Hasher = SipHasher<T>>
using IrregularDecoder = Decoder<T, Hasher, IrregularMappingFactory>;

template <Symbol T, typename Hasher = SipHasher<T>>
using IrregularSketch = Sketch<T, Hasher, IrregularMappingFactory>;

}  // namespace ribltx
