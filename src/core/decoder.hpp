// Streaming Rateless IBLT decoder (Bob's side).
//
// Bob feeds (a) his local set items and (b) Alice's coded symbols in stream
// order. Each arriving cell is lazily reduced to a *difference* cell
// a_i (-) b_i by subtracting the local set's contributions (§3), plus the
// contributions of symbols already recovered. The peeling decoder (§3) runs
// incrementally: whenever a cell becomes pure (count = +/-1, checksum
// matches), its symbol is recovered, XOR-ed out of every received cell it
// maps to, and registered so future cells arrive pre-peeled. Reconciliation
// is complete when every received cell has settled to empty -- cell 0, to
// which every symbol maps, settles last (§4.1's termination signal).
//
// Hot-path layout (the fig09 cost center):
//   * Each cell lives in ONE power-of-two-aligned slot packing sum,
//     checksum, count, and the queue link word, so a peel apply touches a
//     single cache line per cell -- the old whole-struct cells plus
//     separate flag and queue vectors cost several scattered lines.
//   * The peel queue is a flat intrusive stack threaded through the
//     per-cell link word: a cell is on the queue at most once, is enqueued
//     by count alone (no hash at enqueue time), and its checksum is
//     verified exactly once at pop. The settled state is folded into the
//     same word. The old map/vector scheme hashed every candidate at
//     enqueue, again at pop, and a third time at recovery.
//   * Local items, recovered remote symbols, and recovered local symbols
//     all live in ONE pending calendar queue whose entries carry their own
//     direction: because arrivals visit stream indices strictly in order,
//     each entry sits in the bucket of its next mapped index (the same
//     incremental mapping state the encoder keeps, §6 -- never re-derived
//     per cell) and re-bucketing after an advance is O(1), where the old
//     three per-purpose CodingWindow heaps paid a fat-entry sift per touch.
//   * The recovery walk pipelines its index mapping: it advances one mapped
//     index ahead and prefetches that cell while applying the current one,
//     overlapping the inverse-CDF sqrt latency with the memory fetch --
//     the two serial dependencies that bound decode throughput.
//   * Checksum verification is batched: queued candidates are verified four
//     at a time through SipHasher::hash4 (interleaved SipHash lanes) when
//     the hasher supports it.
//   At steady state the peel loop performs no heap allocation: all state
//   lives in the flat cell array and the window heap, which grow amortized
//   with the stream / recovered difference only (reserve() removes even
//   that).
//
// Cost: O(log m) cell updates per recovered difference, matching the
// paper's O(l log d) per-difference decode bound.
//
// Narrow wire checksums: when the peer transmits truncated (e.g. 4-byte)
// checksums (wire.hpp, §7.1 "Scalability"), call set_checksum_mask() with
// the matching mask before the first coded symbol. Masking commutes with
// XOR, so the decoder keeps every received cell's checksum reduced modulo
// the mask and verifies purity against the masked hash; the full 64-bit
// hash that seeds the index mapping is recomputed from the recovered sum,
// so mappings stay bit-identical with the encoder's.
#pragma once

#include <cstdint>
#include <cstddef>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/coded_symbol.hpp"
#include "core/mapping.hpp"
#include "core/symbol.hpp"

namespace ribltx {

/// Hashers that can verify four checksums per dispatch (SipHasher does).
template <typename Hasher, typename T>
concept BatchHasher = requires(const Hasher& h, const T* const s[4],
                               std::uint64_t out[4]) {
  h.hash4(s, out);
};

namespace detail {

/// Slot alignment: the next power of two >= the payload, capped at a cache
/// line, so a random cell access touches exactly one line for every item
/// size up to 48 bytes of payload (and the minimum number above that).
[[nodiscard]] constexpr std::size_t cell_slot_align(std::size_t raw) noexcept {
  std::size_t a = 1;
  while (a < raw && a < 64) a *= 2;
  return a;
}

}  // namespace detail

template <Symbol T, typename Hasher = SipHasher<T>,
          typename MappingFactory = DefaultMappingFactory>
class Decoder {
 public:
  using mapping_type = typename MappingFactory::mapping_type;

  explicit Decoder(Hasher hasher = Hasher{},
                   MappingFactory factory = MappingFactory{})
      : hasher_(std::move(hasher)), factory_(std::move(factory)) {}

  /// Registers one of Bob's local set items. All local items must be added
  /// before the first coded symbol arrives (earlier cells cannot be
  /// retroactively reduced); throws std::logic_error otherwise.
  void add_local_symbol(const T& s) { add_local_hashed_symbol(hasher_.hashed(s)); }

  void add_local_hashed_symbol(const HashedSymbol<T>& s) {
    if (!cells_.empty()) {
      throw std::logic_error(
          "Decoder::add_local_symbol: local items must precede coded symbols");
    }
    // A kRemove entry: the local set is subtracted from every arriving cell.
    add_pending(s, factory_(s.hash), Direction::kRemove);
  }

  /// Restricts checksum comparisons to the given mask (e.g. 0xffffffff for
  /// 4-byte wire checksums). Must be set before the first coded symbol.
  void set_checksum_mask(std::uint64_t mask) {
    if (!cells_.empty()) {
      throw std::logic_error(
          "Decoder::set_checksum_mask: must precede coded symbols");
    }
    checksum_mask_ = mask;
  }

  [[nodiscard]] std::uint64_t checksum_mask() const noexcept {
    return checksum_mask_;
  }

  /// Pre-sizes the cell array for an expected stream length (the peel loop
  /// never allocates; this removes the amortized growth too).
  void reserve(std::size_t cells) { cells_.reserve(cells); }

  /// Consumes the next coded symbol of Alice's stream (stream order is part
  /// of the protocol; cells carry no explicit index). Peeling runs
  /// incrementally; check decoded() after each call.
  void add_coded_symbol(const CodedSymbol<T>& incoming) {
    if (cells_.size() >= kSettled) {
      // The intrusive queue threads cell indices through a 32-bit link
      // word; past the sentinel range a new index would alias them.
      throw std::length_error("Decoder: coded-symbol capacity exhausted");
    }
    const std::uint64_t index = cells_.size();
    CodedSymbol<T> cell = incoming;
    // One calendar-bucket walk folds the local set (kRemove entries) and
    // every already-recovered symbol (entry-direction encoded) into it.
    apply_pending(static_cast<std::size_t>(index), cell);
    Cell slot;
    slot.sum = cell.sum;
    slot.checksum = cell.checksum & checksum_mask_;
    slot.count = static_cast<std::int32_t>(cell.count);
    slot.link = kNotQueued;
    cells_.push_back(slot);
    enqueue_if_candidate(static_cast<std::size_t>(index));
    peel();
  }

  /// True when the received prefix fully decodes: every cell reduced to
  /// empty, i.e. all of A (-) B recovered (and Bob should tell Alice to stop
  /// streaming).
  [[nodiscard]] bool decoded() const noexcept {
    return !cells_.empty() && settled_count_ == cells_.size();
  }

  /// Symbols exclusive to Alice (A \ B), in recovery order.
  [[nodiscard]] std::span<const HashedSymbol<T>> remote() const noexcept {
    return remote_symbols_;
  }

  /// Symbols exclusive to Bob (B \ A), in recovery order.
  [[nodiscard]] std::span<const HashedSymbol<T>> local() const noexcept {
    return local_symbols_;
  }

  [[nodiscard]] std::size_t cells_received() const noexcept {
    return cells_.size();
  }

  /// Residual difference cell at stream index `i`, reassembled from the
  /// slot (diagnostics / tests).
  [[nodiscard]] CodedSymbol<T> cell(std::size_t i) const {
    const Cell& c = cells_.at(i);
    return CodedSymbol<T>{c.sum, c.checksum, c.count};
  }

  [[nodiscard]] const Hasher& hasher() const noexcept { return hasher_; }

  /// Clears everything, including local set items.
  void reset() noexcept {
    arena_.clear();
    buckets_.clear();
    far_.clear();
    cells_.clear();
    queue_head_ = kQueueEnd;
    remote_symbols_.clear();
    local_symbols_.clear();
    settled_count_ = 0;
  }

 private:
  // Link-word states beyond "next queue index". Settling only ever happens
  // at pop time (when the link word is being vacated anyway), so the
  // settled state can live in the same word as the queue.
  static constexpr std::uint32_t kNotQueued = 0xffffffffu;
  static constexpr std::uint32_t kQueueEnd = 0xfffffffeu;
  static constexpr std::uint32_t kSettled = 0xfffffffdu;
  /// Candidates verified per dispatch == the batched SipHash lane count
  /// (the hash4 array parameters decay to pointers, so this tie is the
  /// compile-time guard against a lane-count change under-sizing the
  /// batch arrays).
  static constexpr std::size_t kBatch = kSipHashLanes;

  struct CellData {
    T sum;
    std::uint64_t checksum;
    std::int32_t count;
    std::uint32_t link;
  };

  /// One difference cell: sum, checksum, count, and the queue/settled link
  /// in a single aligned slot -- every peel-loop access is one cache line.
  struct alignas(detail::cell_slot_align(sizeof(CellData))) Cell
      : CellData {};

  void push_queue(std::size_t i) noexcept {
    cells_[i].link = queue_head_;
    queue_head_ = static_cast<std::uint32_t>(i);
  }

  [[nodiscard]] std::size_t pop_queue() noexcept {
    const std::uint32_t i = queue_head_;
    queue_head_ = cells_[i].link;
    cells_[i].link = kNotQueued;
    return i;
  }

  /// Cheap sign screen, no hashing: +/-1 cells and checksum-zero empties
  /// queue for verification/settling at pop; each cell queues at most once.
  void enqueue_if_candidate(std::size_t i) {
    Cell& c = cells_[i];
    if (c.link != kNotQueued) return;  // queued already, or settled
    if (c.count == 1 || c.count == -1 || (c.count == 0 && c.checksum == 0)) {
      push_queue(i);
    }
  }

  void apply_to_cell(std::size_t ci, const HashedSymbol<T>& sym,
                     Direction dir) noexcept {
    Cell& c = cells_[ci];
    c.sum ^= sym.symbol;
    c.checksum = (c.checksum ^ sym.hash) & checksum_mask_;
    c.count += static_cast<std::int32_t>(dir);
  }

  void peel() {
    std::size_t cand[kBatch];
    std::uint64_t hashes[kBatch];
    bool dirty[kBatch];
    while (queue_head_ != kQueueEnd) {
      // Drain up to four +/-1 candidates; empties settle on the spot and
      // stale entries (count moved on since enqueue) drop out, re-entering
      // if a later apply makes them actionable again.
      std::size_t ncand = 0;
      while (queue_head_ != kQueueEnd && ncand < kBatch) {
        const std::size_t i = pop_queue();
        Cell& c = cells_[i];
        if (c.count == 1 || c.count == -1) {
          cand[ncand] = i;
          dirty[ncand] = false;
          ++ncand;
        } else if (c.count == 0 && c.checksum == 0 && c.sum == T{}) {
          c.link = kSettled;
          ++settled_count_;
        }
      }
      if (ncand == 0) continue;

      // One interleaved SipHash dispatch verifies four candidates when the
      // hasher supports it; short batches take the scalar path.
      if constexpr (BatchHasher<Hasher, T>) {
        if (ncand == kBatch) {
          const T* const s[kBatch] = {
              &cells_[cand[0]].sum, &cells_[cand[1]].sum,
              &cells_[cand[2]].sum, &cells_[cand[3]].sum};
          hasher_.hash4(s, hashes);
        } else {
          for (std::size_t k = 0; k < ncand; ++k) {
            hashes[k] = hasher_(cells_[cand[k]].sum);
          }
        }
      } else {
        for (std::size_t k = 0; k < ncand; ++k) {
          hashes[k] = hasher_(cells_[cand[k]].sum);
        }
      }

      if (checksum_mask_ == ~std::uint64_t{0}) {
        // Full-width checksums: two distinct simultaneously-pure cells can
        // only interfere through a 64-bit SipHash collision (if symbol A
        // mapped to pure cell B's cell, A's un-recovered contribution would
        // have to cancel exactly in sum, checksum, and count), which is the
        // same negligible failure class the scheme itself rests on (§4.3).
        // So after dropping duplicate symbols, the verified recoveries are
        // independent and their walks can run in lockstep -- four serial
        // inverse-CDF div/sqrt chains pipelining through the FP unit
        // instead of one at a time.
        std::size_t pure[kBatch];
        std::uint64_t pure_hash[kBatch];
        std::size_t npure = 0;
        for (std::size_t k = 0; k < ncand; ++k) {
          const std::size_t i = cand[k];
          if (hashes[k] != cells_[i].checksum) continue;
          bool duplicate = false;
          for (std::size_t j = 0; j < npure; ++j) {
            // The same symbol pure in two cells at once: recover it once;
            // its walk empties the twin.
            if (pure_hash[j] == hashes[k] &&
                cells_[pure[j]].sum == cells_[i].sum) {
              duplicate = true;
              break;
            }
          }
          if (duplicate) continue;
          pure[npure] = i;
          pure_hash[npure] = hashes[k];
          ++npure;
        }
        recover_interleaved(pure, pure_hash, npure);
      } else {
        for (std::size_t k = 0; k < ncand; ++k) {
          const std::size_t i = cand[k];
          if (cells_[i].link == kSettled) continue;  // peeled meanwhile
          if (dirty[k]) {
            // An earlier recovery in this batch rewrote the cell: the
            // prefetched hash no longer matches the sum. Re-screen and
            // re-hash before trusting it.
            const std::int32_t c = cells_[i].count;
            if (c != 1 && c != -1) continue;  // re-enqueued on changes
            hashes[k] = hasher_(cells_[i].sum);
          }
          if ((hashes[k] & checksum_mask_) != cells_[i].checksum) continue;
          recover(i, hashes[k], cand, dirty, ncand, k);
        }
      }
    }
  }

  /// Runs up to kBatch verified, distinct recoveries with their mapping
  /// walks interleaved round-robin: each walk's advance chain (multiply,
  /// divide, sqrt) is serially dependent, but the four chains are mutually
  /// independent, so the round-robin keeps the pipelined FP divider busy.
  /// Full-checksum mode only -- see the §4.3 argument at the call site.
  void recover_interleaved(const std::size_t* pure,
                           const std::uint64_t* pure_hash, std::size_t n) {
    struct Walk {
      HashedSymbol<T> sym;
      mapping_type mapping;
      std::uint64_t ci;
      Direction dir;
    };
    if (n == 0) return;
    std::optional<Walk> walks[kBatch];
    const std::size_t m = cells_.size();
    for (std::size_t w = 0; w < n; ++w) {
      const std::size_t i = pure[w];
      const bool is_remote = cells_[i].count == 1;
      walks[w].emplace(Walk{HashedSymbol<T>{cells_[i].sum, pure_hash[w]},
                            factory_(pure_hash[w]), 0,
                            is_remote ? Direction::kRemove : Direction::kAdd});
      walks[w]->ci = walks[w]->mapping.index();
      (is_remote ? remote_symbols_ : local_symbols_).push_back(walks[w]->sym);
    }
    std::size_t live = n;
    while (live > 0) {
      live = 0;
      for (std::size_t w = 0; w < n; ++w) {
        Walk& wk = *walks[w];
        if (wk.ci >= m) continue;
        const std::uint64_t next = wk.mapping.advance();
        if (next < m) {
          __builtin_prefetch(&cells_[static_cast<std::size_t>(next)]);
          ++live;
        }
        const auto ci = static_cast<std::size_t>(wk.ci);
        apply_to_cell(ci, wk.sym, wk.dir);
        enqueue_if_candidate(ci);
        wk.ci = next;
      }
    }
    for (std::size_t w = 0; w < n; ++w) {
      // Mapping now past the received prefix: future arrivals pre-peel
      // through the calendar.
      add_pending(walks[w]->sym, std::move(walks[w]->mapping), walks[w]->dir);
    }
  }

  /// Pure cell i: recover its lone symbol and peel it out of every received
  /// cell it maps to (including cell i itself, which thereby empties and
  /// settles on its next pop). The mapping seed is the full 64-bit hash
  /// recomputed from the sum: under a narrow checksum mask the cell only
  /// holds the masked low bits, and the mapping must match the encoder's.
  void recover(std::size_t i, std::uint64_t full_hash, const std::size_t* cand,
               bool* dirty, std::size_t ncand, std::size_t k) {
    const HashedSymbol<T> sym{cells_[i].sum, full_hash};
    const bool is_remote = cells_[i].count == 1;
    const Direction dir = is_remote ? Direction::kRemove : Direction::kAdd;
    const std::size_t m = cells_.size();
    mapping_type mapping = factory_(sym.hash);
    // Software-pipelined walk: advance to the next mapped index and issue
    // its prefetch before applying the current one, so the inverse-CDF sqrt
    // and the cell-line fetch -- both serial chains -- overlap.
    std::size_t ci = static_cast<std::size_t>(mapping.index());
    while (ci < m) {
      const std::uint64_t next = mapping.advance();
      if (next < m) {
        __builtin_prefetch(&cells_[static_cast<std::size_t>(next)]);
      }
      apply_to_cell(ci, sym, dir);
      enqueue_if_candidate(ci);
      for (std::size_t j = k + 1; j < ncand; ++j) {
        if (cand[j] == ci) dirty[j] = true;
      }
      ci = static_cast<std::size_t>(next);
    }
    // The mapping state now points past the received prefix; future cells
    // at those indices arrive pre-peeled through the calendar (a kRemove
    // entry for a remote symbol mirrors the local set; a kAdd entry for a
    // local symbol cancels its local-set twin).
    add_pending(sym, std::move(mapping), dir);
    if (is_remote) {
      remote_symbols_.push_back(sym);
    } else {
      local_symbols_.push_back(sym);
    }
  }

  // ----------------------------------------------- pending calendar queue
  //
  // Local items (kRemove) and recovered symbols (own direction) waiting to
  // be folded into future arrivals. Entries live in a flat arena and are
  // threaded into the bucket of their next mapped stream index; entries
  // mapped beyond the bucket horizon park in `far_` and are redistributed
  // when the horizon doubles (amortized O(1) -- a symbol has O(log m)
  // mapped indices below any horizon).

  static constexpr std::uint32_t kNilEntry = 0xffffffffu;

  struct PendingEntry {
    HashedSymbol<T> sym;
    mapping_type mapping;
    std::uint32_t next = kNilEntry;  ///< intrusive bucket chain
    Direction dir = Direction::kAdd;
  };

  void add_pending(const HashedSymbol<T>& s, mapping_type mapping,
                   Direction dir) {
    if (arena_.size() >= kNilEntry - 1) {
      throw std::length_error("Decoder: pending symbol capacity exhausted");
    }
    const auto id = static_cast<std::uint32_t>(arena_.size());
    arena_.push_back(PendingEntry{s, std::move(mapping), kNilEntry, dir});
    place(id);
  }

  /// Links entry `id` into the bucket of its next mapped index, or parks it
  /// in `far_` when that index is beyond the current horizon.
  void place(std::uint32_t id) {
    const std::uint64_t idx = arena_[id].mapping.index();
    if (idx < buckets_.size()) {
      arena_[id].next = buckets_[static_cast<std::size_t>(idx)];
      buckets_[static_cast<std::size_t>(idx)] = id;
    } else {
      arena_[id].next = kNilEntry;
      far_.push_back(id);
    }
  }

  /// Folds every pending symbol mapped to stream index `index` into `cell`
  /// (each with its own direction), advancing and re-bucketing as it goes.
  /// Arrival indices are strictly increasing, so drained buckets are never
  /// revisited.
  void apply_pending(std::size_t index, CodedSymbol<T>& cell) {
    if (index >= buckets_.size()) grow_horizon(index + 1);
    std::uint32_t id = buckets_[index];
    buckets_[index] = kNilEntry;
    while (id != kNilEntry) {
      PendingEntry& e = arena_[id];
      const std::uint32_t chain = e.next;
      if (chain != kNilEntry) __builtin_prefetch(&arena_[chain]);
      cell.apply(e.sym, e.dir);
      e.mapping.advance();
      place(id);
      id = chain;
    }
  }

  /// Doubles the bucket horizon to cover `need` indices and pulls every
  /// parked entry whose next mapped index now falls under it.
  void grow_horizon(std::size_t need) {
    std::size_t target = buckets_.empty() ? 64 : buckets_.size();
    while (target < need) target *= 2;
    buckets_.resize(target, kNilEntry);
    for (std::size_t j = 0; j < far_.size();) {
      if (arena_[far_[j]].mapping.index() < target) {
        const std::uint32_t id = far_[j];
        far_[j] = far_.back();
        far_.pop_back();
        arena_[id].next = buckets_[static_cast<std::size_t>(
            arena_[id].mapping.index())];
        buckets_[static_cast<std::size_t>(arena_[id].mapping.index())] = id;
      } else {
        ++j;
      }
    }
  }

  Hasher hasher_;
  MappingFactory factory_;
  std::uint64_t checksum_mask_ = ~std::uint64_t{0};  // wire checksum width

  std::vector<PendingEntry> arena_;     ///< pending symbols, flat
  std::vector<std::uint32_t> buckets_;  ///< chain head per stream index
  std::vector<std::uint32_t> far_;      ///< parked beyond the horizon

  std::vector<Cell> cells_;  ///< difference cells, reduced in place
  std::uint32_t queue_head_ = kQueueEnd;
  std::size_t settled_count_ = 0;

  std::vector<HashedSymbol<T>> remote_symbols_;
  std::vector<HashedSymbol<T>> local_symbols_;
};

}  // namespace ribltx
