// Streaming Rateless IBLT decoder (Bob's side).
//
// Bob feeds (a) his local set items and (b) Alice's coded symbols in stream
// order. Each arriving cell is lazily reduced to a *difference* cell
// a_i (-) b_i by subtracting the local set's contributions (§3), plus the
// contributions of symbols already recovered. The peeling decoder (§3) runs
// incrementally: whenever a cell becomes pure (count = +/-1, checksum
// matches), its symbol is recovered, XOR-ed out of every received cell it
// maps to, and registered so future cells arrive pre-peeled. Reconciliation
// is complete when every received cell has settled to empty -- cell 0, to
// which every symbol maps, settles last (§4.1's termination signal).
//
// Cost: O(log m) cell updates per recovered difference, matching the
// paper's O(l log d) per-difference decode bound.
//
// Narrow wire checksums: when the peer transmits truncated (e.g. 4-byte)
// checksums (wire.hpp, §7.1 "Scalability"), call set_checksum_mask() with
// the matching mask before the first coded symbol. Masking commutes with
// XOR, so the decoder keeps every received cell's checksum reduced modulo
// the mask and verifies purity against the masked hash; the full 64-bit
// hash that seeds the index mapping is recomputed from the recovered sum,
// so mappings stay bit-identical with the encoder's.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/coded_symbol.hpp"
#include "core/coding_window.hpp"
#include "core/mapping.hpp"
#include "core/symbol.hpp"

namespace ribltx {

template <Symbol T, typename Hasher = SipHasher<T>,
          typename MappingFactory = DefaultMappingFactory>
class Decoder {
 public:
  using mapping_type = typename MappingFactory::mapping_type;

  explicit Decoder(Hasher hasher = Hasher{},
                   MappingFactory factory = MappingFactory{})
      : hasher_(std::move(hasher)), factory_(std::move(factory)) {}

  /// Registers one of Bob's local set items. All local items must be added
  /// before the first coded symbol arrives (earlier cells cannot be
  /// retroactively reduced); throws std::logic_error otherwise.
  void add_local_symbol(const T& s) { add_local_hashed_symbol(hasher_.hashed(s)); }

  void add_local_hashed_symbol(const HashedSymbol<T>& s) {
    if (!cells_.empty()) {
      throw std::logic_error(
          "Decoder::add_local_symbol: local items must precede coded symbols");
    }
    local_set_.add(s, factory_);
  }

  /// Restricts checksum comparisons to the given mask (e.g. 0xffffffff for
  /// 4-byte wire checksums). Must be set before the first coded symbol.
  void set_checksum_mask(std::uint64_t mask) {
    if (!cells_.empty()) {
      throw std::logic_error(
          "Decoder::set_checksum_mask: must precede coded symbols");
    }
    checksum_mask_ = mask;
  }

  [[nodiscard]] std::uint64_t checksum_mask() const noexcept {
    return checksum_mask_;
  }

  /// Consumes the next coded symbol of Alice's stream (stream order is part
  /// of the protocol; cells carry no explicit index). Peeling runs
  /// incrementally; check decoded() after each call.
  void add_coded_symbol(const CodedSymbol<T>& incoming) {
    const std::uint64_t index = cells_.size();
    CodedSymbol<T> cell = incoming;
    local_set_.apply_at(index, cell, Direction::kRemove);
    recovered_remote_.apply_at(index, cell, Direction::kRemove);
    recovered_local_.apply_at(index, cell, Direction::kAdd);
    cell.checksum &= checksum_mask_;
    cells_.push_back(cell);
    settled_flags_.push_back(0);
    enqueue_if_actionable(static_cast<std::size_t>(index));
    peel();
  }

  /// True when the received prefix fully decodes: every cell reduced to
  /// empty, i.e. all of A (-) B recovered (and Bob should tell Alice to stop
  /// streaming).
  [[nodiscard]] bool decoded() const noexcept {
    return !cells_.empty() && settled_count_ == cells_.size();
  }

  /// Symbols exclusive to Alice (A \ B), in recovery order.
  [[nodiscard]] std::span<const HashedSymbol<T>> remote() const noexcept {
    return remote_symbols_;
  }

  /// Symbols exclusive to Bob (B \ A), in recovery order.
  [[nodiscard]] std::span<const HashedSymbol<T>> local() const noexcept {
    return local_symbols_;
  }

  [[nodiscard]] std::size_t cells_received() const noexcept {
    return cells_.size();
  }

  /// Residual difference cells (diagnostics / tests).
  [[nodiscard]] std::span<const CodedSymbol<T>> cells() const noexcept {
    return cells_;
  }

  [[nodiscard]] const Hasher& hasher() const noexcept { return hasher_; }

  /// Clears everything, including local set items.
  void reset() noexcept {
    local_set_.clear();
    recovered_remote_.clear();
    recovered_local_.clear();
    cells_.clear();
    settled_flags_.clear();
    queue_.clear();
    remote_symbols_.clear();
    local_symbols_.clear();
    settled_count_ = 0;
  }

 private:
  /// is_pure under the wire checksum mask (equals CodedSymbol::is_pure when
  /// the mask is all-ones).
  [[nodiscard]] bool pure(const CodedSymbol<T>& c) const noexcept {
    return (c.count == 1 || c.count == -1) &&
           (hasher_(c.sum) & checksum_mask_) == c.checksum;
  }

  void enqueue_if_actionable(std::size_t i) {
    if (settled_flags_[i]) return;
    const CodedSymbol<T>& c = cells_[i];
    if (c.is_empty() || pure(c)) queue_.push_back(i);
  }

  void peel() {
    while (!queue_.empty()) {
      const std::size_t i = queue_.back();
      queue_.pop_back();
      if (settled_flags_[i]) continue;
      if (cells_[i].is_empty()) {
        settled_flags_[i] = 1;
        ++settled_count_;
        continue;
      }
      if (!pure(cells_[i])) continue;  // stale queue entry

      // Recover the lone symbol and peel it out of every received cell it
      // maps to (including cell i itself, which thereby becomes empty). The
      // full hash is recomputed from the sum: under a narrow checksum mask
      // the cell's checksum only holds the masked low bits, and the index
      // mapping must be seeded with the same 64 bits the encoder used.
      const HashedSymbol<T> sym{cells_[i].sum, hasher_(cells_[i].sum)};
      const bool is_remote = cells_[i].count == 1;
      const Direction dir = is_remote ? Direction::kRemove : Direction::kAdd;

      mapping_type mapping = factory_(sym.hash);
      while (mapping.index() < cells_.size()) {
        const auto ci = static_cast<std::size_t>(mapping.index());
        cells_[ci].apply(sym, dir);
        cells_[ci].checksum &= checksum_mask_;
        enqueue_if_actionable(ci);
        mapping.advance();
      }
      // The mapping state now points past the received prefix; future cells
      // at those indices will be reduced on arrival.
      if (is_remote) {
        remote_symbols_.push_back(sym);
        recovered_remote_.add_with_mapping(sym, std::move(mapping));
      } else {
        local_symbols_.push_back(sym);
        recovered_local_.add_with_mapping(sym, std::move(mapping));
      }
    }
  }

  Hasher hasher_;
  MappingFactory factory_;
  std::uint64_t checksum_mask_ = ~std::uint64_t{0};  // wire checksum width

  CodingWindow<T, mapping_type> local_set_;          // Bob's items
  CodingWindow<T, mapping_type> recovered_remote_;   // recovered, in A \ B
  CodingWindow<T, mapping_type> recovered_local_;    // recovered, in B \ A

  std::vector<CodedSymbol<T>> cells_;  // difference cells, reduced in place
  std::vector<std::uint8_t> settled_flags_;
  std::vector<std::size_t> queue_;
  std::size_t settled_count_ = 0;

  std::vector<HashedSymbol<T>> remote_symbols_;
  std::vector<HashedSymbol<T>> local_symbols_;
};

}  // namespace ribltx
