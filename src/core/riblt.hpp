// Umbrella header for the Rateless IBLT library.
//
// Quick tour (see examples/quickstart.cpp for a runnable version):
//
//   using Item = ribltx::ByteSymbol<32>;
//   ribltx::Encoder<Item> alice;           // Alice's side
//   for (auto& x : setA) alice.add_symbol(x);
//
//   ribltx::Decoder<Item> bob;             // Bob's side
//   for (auto& y : setB) bob.add_local_symbol(y);
//
//   while (!bob.decoded())
//     bob.add_coded_symbol(alice.produce_next());   // stream until done
//
//   bob.remote();  // items only Alice has
//   bob.local();   // items only Bob has
#pragma once

#include "core/coded_symbol.hpp"    // IWYU pragma: export
#include "core/coding_window.hpp"   // IWYU pragma: export
#include "core/decoder.hpp"         // IWYU pragma: export
#include "core/encoder.hpp"         // IWYU pragma: export
#include "core/irregular.hpp"       // IWYU pragma: export
#include "core/mapping.hpp"         // IWYU pragma: export
#include "core/sketch.hpp"          // IWYU pragma: export
#include "core/symbol.hpp"          // IWYU pragma: export
#include "core/wire.hpp"            // IWYU pragma: export
