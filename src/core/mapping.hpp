// Index mapping generators: which coded symbols does a source symbol map to?
//
// The paper (§4.1.2) shows the mapping probability must be rho(i) = 1/(1+a*i)
// and (§4.2) samples the *gap* to the next mapped index directly from the
// closed-form inverse CDF, so enumerating a symbol's mapped indices among the
// first m coded symbols costs O(log m) instead of O(m).
//
// For a = 0.5 the paper derives the exact inverse (one square root):
//   C^{-1}(r) = sqrt(((3+2i)^2 - r) / (4(1-r))) - (3+2i)/2,
// which `IndexMapping` implements verbatim -- the gap distribution is exact.
//
// For generic a, the paper suggests the Stirling approximation
// C^{-1}(r) ~ (i+1)((1-r)^{-a} - 1). That first-order form is badly biased at
// small indices for small a (it overshoots rho(i) by >15%, enough to sink the
// Irregular Rateless IBLT of §8, whose optimized config uses a0 = 0.11).
// `GenericMapping` therefore samples the gap *exactly* while the survival
// product is cheap to walk (small current index), and switches to a
// second-order ("shifted") Stirling inverse
//   C^{-1}(r) ~ (i + 1 + (1/a - 1)/2) * ((1-r)^{-a} - 1)
// once the index is large enough that the remaining relative error is <1%.
// Note the shift reproduces the paper's exact (i + 1.5) coefficient at
// a = 0.5.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace ribltx {

namespace detail {

/// Multiplicative congruential step (full period over odd 64-bit states):
/// cheap, deterministic across platforms, and well mixed in the high bits,
/// which are the only bits we consume.
inline constexpr std::uint64_t kMcgMultiplier = 0xda942042e4dd58b5ULL;

/// Indices beyond this are "infinite" for every practical stream; mapping
/// generators saturate here instead of overflowing 64-bit arithmetic.
inline constexpr std::uint64_t kIndexSaturation = 1ULL << 62;

/// Sentinel index returned once a mapping has saturated.
inline constexpr std::uint64_t kIndexInfinity =
    std::numeric_limits<std::uint64_t>::max();

/// Draws u uniform in (0, 1] from the high PRNG bits (2^-32 granularity).
inline double uniform_open_closed(std::uint64_t prng) noexcept {
  return (static_cast<double>(prng >> 32) + 1.0) * 0x1.0p-32;
}

}  // namespace detail

/// Deterministic stream of mapped coded-symbol indices for one source
/// symbol, with mapping probability rho(i) = 1/(1 + 0.5 i), sampled from the
/// paper's exact inverse CDF. Every symbol maps to index 0 (rho(0) = 1),
/// which is why the first coded symbol decodes last and serves as the
/// termination signal (§4.1).
class IndexMapping {
 public:
  /// `seed` is the symbol's 64-bit keyed hash.
  explicit constexpr IndexMapping(std::uint64_t seed) noexcept : prng_(seed) {}

  /// The current mapped index. Starts at 0.
  [[nodiscard]] constexpr std::uint64_t index() const noexcept { return idx_; }

  /// Advances to the next mapped index and returns it. Saturates at
  /// detail::kIndexInfinity far past any practical stream length.
  std::uint64_t advance() noexcept {
    if (idx_ >= detail::kIndexSaturation) {
      idx_ = detail::kIndexInfinity;
      return idx_;
    }
    prng_ *= detail::kMcgMultiplier;
    const double u = detail::uniform_open_closed(prng_);
    // Exact inverse CDF at alpha = 0.5 (paper §4.2), written in terms of the
    // survival variable u = 1 - r:
    //   gap = ceil( sqrt((A^2 - 1 + u) / (4u)) - A/2 ),  A = 3 + 2i.
    const double a = 3.0 + 2.0 * static_cast<double>(idx_);
    const double gap_f = std::sqrt((a * a - 1.0 + u) / (4.0 * u)) - 0.5 * a;
    if (!(gap_f < static_cast<double>(detail::kIndexSaturation))) {
      idx_ = detail::kIndexInfinity;
      return idx_;
    }
    auto gap = static_cast<std::uint64_t>(std::ceil(gap_f));
    if (gap == 0) gap = 1;  // r == 0 draw (probability 2^-32)
    idx_ += gap;
    return idx_;
  }

  friend bool operator==(const IndexMapping&, const IndexMapping&) = default;

 private:
  std::uint64_t prng_;
  std::uint64_t idx_ = 0;
};

/// Generic-alpha mapping: rho(i) = 1/(1 + alpha*i). Exact survival-product
/// scan near the origin, shifted-Stirling closed form in the tail. Used by
/// the Fig 4 alpha sweep and the irregular variant (§8); alpha = 0.5 users
/// should prefer IndexMapping (sqrt-only fast path, the paper's §4.2
/// rationale).
class GenericMapping {
 public:
  GenericMapping(double alpha, std::uint64_t seed) noexcept
      : prng_(seed), alpha_(alpha), inv_alpha_(1.0 / alpha) {
    assert(alpha > 0.0 && alpha <= 1.0);
    // Tail error of the shifted Stirling form decays like s^3 / z^2 (s =
    // 1/alpha, z = index); switch once it is comfortably below 1%.
    const double s = inv_alpha_;
    scan_below_ = static_cast<std::uint64_t>(
        std::fmax(8.0, std::ceil(3.0 * s * std::sqrt(s))));
  }

  [[nodiscard]] std::uint64_t index() const noexcept { return idx_; }

  std::uint64_t advance() noexcept {
    if (idx_ >= detail::kIndexSaturation) {
      idx_ = detail::kIndexInfinity;
      return idx_;
    }
    prng_ *= detail::kMcgMultiplier;
    const double u = detail::uniform_open_closed(prng_);
    const double s = inv_alpha_;
    const double i = static_cast<double>(idx_);

    double gap_f;
    if (idx_ < scan_below_) {
      // Exact sequential inversion: survival after x steps is
      //   S(x) = prod_{n=1..x} (1 - rho(i+n)),  1 - rho(k) = k / (k + s);
      // the gap is the smallest x with S(x) <= u. Costs O(gap) multiplies,
      // but gaps at small i are short, so the total is O(scan_below_) per
      // symbol -- a constant.
      double survival = 1.0;
      std::uint64_t x = 0;
      const std::uint64_t scan_cap = 4 * scan_below_ + 16;
      while (x < scan_cap) {
        ++x;
        const double k = i + static_cast<double>(x);
        survival *= k / (k + s);
        if (survival <= u) {
          idx_ += x;
          return idx_;
        }
      }
      // Rare deep tail: finish with the closed form, conditioned on having
      // survived `scan_cap` steps (remaining survival target u/survival).
      const double iprime = i + static_cast<double>(scan_cap);
      gap_f = static_cast<double>(scan_cap) +
              shifted_inverse(iprime, u / survival, s);
    } else {
      gap_f = shifted_inverse(i, u, s);
    }

    if (!(gap_f < static_cast<double>(detail::kIndexSaturation))) {
      idx_ = detail::kIndexInfinity;
      return idx_;
    }
    auto gap = static_cast<std::uint64_t>(std::ceil(gap_f));
    if (gap == 0) gap = 1;
    idx_ += gap;
    return idx_;
  }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  /// Second-order Stirling inverse of the gap CDF from index i with
  /// survival target u: gap ~ (i + 1 + (s-1)/2) * (u^{-1/s} - 1).
  [[nodiscard]] double shifted_inverse(double i, double u,
                                       double s) const noexcept {
    const double b = i + 1.0 + 0.5 * (s - 1.0);
    return b * (std::pow(u, -alpha_) - 1.0);
  }

  std::uint64_t prng_;
  double alpha_;
  double inv_alpha_;
  std::uint64_t scan_below_;
  std::uint64_t idx_ = 0;
};

/// Factory producing the default (alpha = 0.5) mapping from a symbol hash.
/// Encoder/Decoder/Sketch are parameterized on a mapping factory so that the
/// same machinery runs regular (§4) and irregular (§8) Rateless IBLTs as
/// well as the Fig 4 alpha sweep.
struct DefaultMappingFactory {
  using mapping_type = IndexMapping;

  [[nodiscard]] IndexMapping operator()(std::uint64_t hash) const noexcept {
    return IndexMapping(hash);
  }
};

/// Factory producing GenericMapping with one fixed alpha for all symbols.
struct GenericMappingFactory {
  using mapping_type = GenericMapping;

  double alpha = 0.5;

  [[nodiscard]] GenericMapping operator()(std::uint64_t hash) const noexcept {
    return GenericMapping(alpha, hash);
  }
};

}  // namespace ribltx
