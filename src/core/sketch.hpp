// Sketch: a materialized fixed-length prefix of the Rateless IBLT coded
// symbol sequence.
//
// Because the sequence is universal (§4.1), a length-m sketch of set A
// serves three roles at once:
//   1. a normal IBLT: subtract Sketch(B), decode, get A (-) B;
//   2. Alice's cached coded-symbol prefix for serving many peers (§2):
//      stream prefix cells until each peer decodes;
//   3. an incrementally updatable cache (§7.3): when A changes, apply the
//      inserted/deleted items in place -- O(log m) cells per item -- instead
//      of re-encoding.
#pragma once

#include <cstdint>
#include <cstddef>
#include <memory>
#include <span>
#include <unordered_map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/coded_symbol.hpp"
#include "core/coding_window.hpp"
#include "core/decoder.hpp"
#include "core/mapping.hpp"
#include "core/symbol.hpp"

namespace ribltx {

/// Result of decoding a difference sketch.
template <Symbol T>
struct DecodeResult {
  bool success = false;
  std::vector<HashedSymbol<T>> remote;  ///< items with net count +1 (A \ B)
  std::vector<HashedSymbol<T>> local;   ///< items with net count -1 (B \ A)
};

template <Symbol T, typename Hasher = SipHasher<T>,
          typename MappingFactory = DefaultMappingFactory>
class Sketch {
 public:
  using mapping_type = typename MappingFactory::mapping_type;

  explicit Sketch(std::size_t num_cells, Hasher hasher = Hasher{},
                  MappingFactory factory = MappingFactory{})
      : hasher_(std::move(hasher)),
        factory_(std::move(factory)),
        cells_(num_cells) {
    if (num_cells == 0) {
      throw std::invalid_argument("Sketch: need at least one cell");
    }
  }

  /// Adds an item to the encoded set. O(log m) cells touched.
  void add_symbol(const T& s) { apply(hasher_.hashed(s), Direction::kAdd); }

  /// Removes an item from the encoded set (it must have been added; the
  /// structure cannot verify this). O(log m).
  void remove_symbol(const T& s) {
    apply(hasher_.hashed(s), Direction::kRemove);
  }

  void apply(const HashedSymbol<T>& s, Direction dir) noexcept {
    mapping_type m = factory_(s.hash);
    while (m.index() < cells_.size()) {
      cells_[static_cast<std::size_t>(m.index())].apply(s, dir);
      m.advance();
    }
  }

  /// Cell-wise subtraction: *this becomes Sketch(A (-) B). Sizes must match.
  Sketch& subtract(const Sketch& other) {
    if (other.cells_.size() != cells_.size()) {
      throw std::invalid_argument("Sketch::subtract: size mismatch");
    }
    subtract_run<T>(cells_, other.cells_);
    return *this;
  }

  friend Sketch operator-(Sketch a, const Sketch& b) {
    a.subtract(b);
    return a;
  }

  /// Peels this (difference) sketch. Non-destructive. success = every cell
  /// reduced to empty; on failure remote/local hold whatever was recovered
  /// before the decoder stalled.
  [[nodiscard]] DecodeResult<T> decode() const {
    Decoder<T, Hasher, MappingFactory> dec(hasher_, factory_);
    for (const auto& c : cells_) dec.add_coded_symbol(c);
    DecodeResult<T> out;
    out.success = dec.decoded();
    out.remote.assign(dec.remote().begin(), dec.remote().end());
    out.local.assign(dec.local().begin(), dec.local().end());
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

  [[nodiscard]] std::span<const CodedSymbol<T>> cells() const noexcept {
    return cells_;
  }

  /// First `k` coded symbols -- the universal stream prefix Alice sends.
  [[nodiscard]] std::span<const CodedSymbol<T>> prefix(std::size_t k) const {
    if (k > cells_.size()) {
      throw std::out_of_range("Sketch::prefix: beyond materialized cells");
    }
    return std::span<const CodedSymbol<T>>(cells_.data(), k);
  }

  [[nodiscard]] const CodedSymbol<T>& cell(std::size_t i) const {
    return cells_.at(i);
  }

  [[nodiscard]] const Hasher& hasher() const noexcept { return hasher_; }
  [[nodiscard]] const MappingFactory& mapping_factory() const noexcept {
    return factory_;
  }

 private:
  Hasher hasher_;
  MappingFactory factory_;
  std::vector<CodedSymbol<T>> cells_;
};

/// Alice's universal coded-symbol cache (§2, §7.3), the server's single
/// source of truth for the rateless stream.
///
/// Unlike a fixed-length Sketch, the cache is *lazily extended*: cells are
/// materialized in doubling blocks through a CodingWindow the first time a
/// reader walks past the materialized prefix, so extension costs O(log m)
/// amortized per cell and building the cache never pays for cells nobody
/// asked for. Set churn (§7.3 linearity) updates the materialized prefix in
/// place -- O(log m) cells per inserted/removed item -- and registers the
/// item (or a cancelling tombstone) in the window so future blocks reflect
/// the change too.
///
/// Every churn op is stamped with a monotonically increasing version and
/// recorded in a journal. A Cursor opened at version v streams the
/// *snapshot* of the set as it stood at v: it reads the live (current-set)
/// cells and undoes the journal ops in (v, now] through a private overlay
/// window, so one cache serves any number of concurrently open sessions of
/// different staleness without copying cells or freezing the set. The
/// journal is kept only while cursors are alive (it empties itself when the
/// last cursor dies; SyncEngine additionally prunes it to the oldest active
/// session).
///
/// Not thread-safe: one cache serves many *sessions*, not many threads.
template <Symbol T, typename Hasher = SipHasher<T>,
          typename MappingFactory = DefaultMappingFactory>
class SequenceCache {
 public:
  using mapping_type = typename MappingFactory::mapping_type;

  /// First materialization block; subsequent blocks double.
  static constexpr std::size_t kInitialBlock = 64;

  explicit SequenceCache(Hasher hasher = Hasher{},
                         MappingFactory factory = MappingFactory{})
      : hasher_(std::move(hasher)), factory_(std::move(factory)) {}

  /// Pre-materializes exactly `num_cells` cells up front (the fixed-size
  /// working style of §7.3's 50M-cell Ethereum cache).
  explicit SequenceCache(std::size_t num_cells, Hasher hasher = Hasher{},
                         MappingFactory factory = MappingFactory{})
      : hasher_(std::move(hasher)), factory_(std::move(factory)) {
    grow_to(num_cells);
  }

  // ------------------------------------------------------------- set churn

  void add_symbol(const T& s) { churn(hasher_.hashed(s), Direction::kAdd); }
  void remove_symbol(const T& s) {
    churn(hasher_.hashed(s), Direction::kRemove);
  }
  void add_hashed(const HashedSymbol<T>& s) { churn(s, Direction::kAdd); }
  void remove_hashed(const HashedSymbol<T>& s) {
    churn(s, Direction::kRemove);
  }

  /// Applies one set change: updates every materialized cell the item maps
  /// to (O(log m)) and registers the item in the window -- with `dir`'s
  /// sign, so a removal rides as a tombstone that exactly cancels the
  /// still-queued kAdd entry on all future cells. Journaled for snapshot
  /// cursors when any are alive.
  void churn(const HashedSymbol<T>& s, Direction dir) {
    mapping_type m = factory_(s.hash);
    while (m.index() < cells_.size()) {
      cells_[static_cast<std::size_t>(m.index())].apply(s, dir);
      m.advance();
    }
    // The mapping now points at the item's first unmaterialized index, so
    // the window folds it into every future block from there on.
    window_.add_with_mapping(s, std::move(m), dir);
    if (dir == Direction::kAdd) {
      ++set_size_;
    } else {
      if (set_size_ > 0) --set_size_;
      ++tombstones_;
    }
    ++version_;
    if (live_cursors_ > 0) {
      journal_.push_back(ChurnOp{s, dir});
    } else {
      journal_base_ = version_;  // nobody can reference older ops
    }
    maybe_compact();
  }

  // ---------------------------------------------------------- compaction

  /// Entries currently in the coding window (live items + cancelled
  /// add/tombstone pairs that compaction will drop).
  [[nodiscard]] std::size_t window_size() const noexcept {
    return window_.size();
  }

  /// Tombstone (removal) entries currently in the window.
  [[nodiscard]] std::size_t window_tombstones() const noexcept {
    return tombstones_;
  }

  /// Rebuilds the coding window from the net-live item multiset, dropping
  /// every cancelled add/tombstone pair (ROADMAP "journal compaction under
  /// sustained churn"). A cache that churns for weeks otherwise re-walks
  /// each dead pair on every future block materialization. O(n log m):
  /// each live item's mapping is re-walked past the materialized prefix.
  /// Safe at any time -- materialized cells are already net-correct, and
  /// snapshot Cursors replay history through their own private overlays,
  /// never through this window.
  void compact_window() {
    // Net count per distinct symbol; bucketed by hash with symbol-equality
    // confirmation so hash collisions cannot merge distinct items.
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<HashedSymbol<T>, std::int64_t>>>
        net;
    net.reserve(window_.size());
    window_.for_each_entry([&](const HashedSymbol<T>& sym, Direction dir,
                               std::uint64_t) {
      auto& bucket = net[sym.hash];
      for (auto& [existing, count] : bucket) {
        if (existing.symbol == sym.symbol) {
          count += static_cast<std::int64_t>(dir);
          return;
        }
      }
      bucket.emplace_back(sym, static_cast<std::int64_t>(dir));
    });
    CodingWindow<T, mapping_type> rebuilt;
    std::size_t rebuilt_tombstones = 0;
    for (const auto& [hash, bucket] : net) {
      for (const auto& [sym, count] : bucket) {
        // A set sees net 0 (dead pair) or +1 (live); the general loop
        // preserves exact linearity for any multiset history (a
        // net-negative symbol -- removal of a never-added item -- stays a
        // tombstone and keeps counting as one).
        const Direction dir =
            count > 0 ? Direction::kAdd : Direction::kRemove;
        for (std::int64_t c = count < 0 ? -count : count; c > 0; --c) {
          mapping_type m = factory_(sym.hash);
          while (m.index() < cells_.size()) m.advance();
          rebuilt.add_with_mapping(sym, m, dir);
          if (dir == Direction::kRemove) ++rebuilt_tombstones;
        }
      }
    }
    window_ = std::move(rebuilt);
    tombstones_ = rebuilt_tombstones;
    window_size_at_compact_ = window_.size();
  }

 private:
  /// Compacts once tombstones and their cancelled adds make up at least
  /// half the window (2t >= live, i.e. 4t >= entries), with a floor so
  /// small windows never bother and a *multiplicative* growth cooldown
  /// (the window must outgrow its post-compaction size by half) so
  /// non-cancellable tombstones -- removals of never-added items, which a
  /// rebuild cannot drop -- keep the amortized-doubling argument instead
  /// of re-triggering a full O(n log m) rebuild every few ops.
  void maybe_compact() {
    const std::size_t cooldown =
        window_size_at_compact_ / 2 > kCompactMinTombstones
            ? window_size_at_compact_ / 2
            : kCompactMinTombstones;
    if (tombstones_ >= kCompactMinTombstones &&
        4 * tombstones_ >= window_.size() &&
        window_.size() >= window_size_at_compact_ + cooldown) {
      compact_window();
    }
  }

 public:
  static constexpr std::size_t kCompactMinTombstones = 64;

  // ------------------------------------------------------------ cell reads

  /// The coded symbol at stream index `i` for the *current* set,
  /// materializing lazily (doubling blocks) as needed.
  [[nodiscard]] const CodedSymbol<T>& cell(std::size_t i) {
    ensure(i + 1);
    return cells_[i];
  }

  /// Ensures cells [0, n) are materialized.
  void ensure(std::size_t n) {
    if (n <= cells_.size()) return;
    std::size_t target = cells_.empty() ? kInitialBlock : cells_.size();
    while (target < n) target *= 2;
    grow_to(target);
  }

  /// The materialized prefix (grows over time; never shrinks).
  [[nodiscard]] std::span<const CodedSymbol<T>> cells() const noexcept {
    return cells_;
  }

  [[nodiscard]] std::size_t materialized() const noexcept {
    return cells_.size();
  }

  /// Items currently encoded net of removals (adds minus tombstones).
  [[nodiscard]] std::size_t set_size() const noexcept { return set_size_; }

  [[nodiscard]] const Hasher& hasher() const noexcept { return hasher_; }
  [[nodiscard]] const MappingFactory& mapping_factory() const noexcept {
    return factory_;
  }

  // --------------------------------------------------- versions & journal

  struct ChurnOp {
    HashedSymbol<T> sym;
    Direction dir = Direction::kAdd;
  };

  /// Total churn ops ever applied; the version a new Cursor snapshots.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// The op that moved the cache from version `v` to `v + 1`. Throws
  /// std::out_of_range if that op was pruned (a cursor outliving its
  /// journal window is a caller bug).
  [[nodiscard]] const ChurnOp& op(std::uint64_t v) const {
    if (v < journal_base_ || v - journal_base_ >= journal_.size()) {
      throw std::out_of_range("SequenceCache::op: journal entry pruned");
    }
    return journal_[static_cast<std::size_t>(v - journal_base_)];
  }

  /// Drops journal entries below `min_version` (no live cursor may still
  /// need them). SyncEngine calls this with the oldest active session's
  /// position; the last Cursor's destructor empties the journal outright.
  void prune_journal(std::uint64_t min_version) {
    if (min_version <= journal_base_) return;
    const std::uint64_t limit = journal_base_ + journal_.size();
    const std::uint64_t upto = min_version < limit ? min_version : limit;
    journal_.erase(journal_.begin(),
                   journal_.begin() +
                       static_cast<std::ptrdiff_t>(upto - journal_base_));
    journal_base_ = upto;
  }

  [[nodiscard]] std::size_t journal_size() const noexcept {
    return journal_.size();
  }

  [[nodiscard]] std::size_t live_cursor_count() const noexcept {
    return live_cursors_;
  }

  // --------------------------------------------------------------- Cursor

  /// Snapshot-consistent reader: streams the coded-symbol sequence of the
  /// set as it stood when the cursor was created, while the cache keeps
  /// absorbing churn and serving other cursors. Cells already handed out
  /// are never re-read, so churn can never mutate a cell out from under a
  /// peer mid-stream: per cell the cursor copies the live value and undoes
  /// the ops its snapshot must not see (each op registered once, O(log m),
  /// through a private overlay CodingWindow holding the *inverse* ops).
  class Cursor {
   public:
    Cursor() = default;

    explicit Cursor(std::shared_ptr<SequenceCache> cache)
        : cache_(std::move(cache)),
          version_(cache_->version()),
          seen_(version_) {
      ++cache_->live_cursors_;
    }

    Cursor(const Cursor&) = delete;
    Cursor& operator=(const Cursor&) = delete;

    Cursor(Cursor&& other) noexcept
        : cache_(std::move(other.cache_)),
          overlay_(std::move(other.overlay_)),
          index_(other.index_),
          version_(other.version_),
          seen_(other.seen_) {
      other.cache_.reset();
    }

    Cursor& operator=(Cursor&& other) noexcept {
      if (this != &other) {
        release();
        cache_ = std::move(other.cache_);
        overlay_ = std::move(other.overlay_);
        index_ = other.index_;
        version_ = other.version_;
        seen_ = other.seen_;
        other.cache_.reset();
      }
      return *this;
    }

    ~Cursor() { release(); }

    /// The next coded symbol of the snapshot's stream.
    [[nodiscard]] CodedSymbol<T> next() {
      catch_up();
      CodedSymbol<T> cell = cache_->cell(static_cast<std::size_t>(index_));
      overlay_.apply_at(index_, cell, Direction::kAdd);
      ++index_;
      return cell;
    }

    /// Stream index of the next coded symbol (== symbols already read).
    [[nodiscard]] std::uint64_t index() const noexcept { return index_; }

    /// The cache version this cursor's snapshot pinned.
    [[nodiscard]] std::uint64_t snapshot_version() const noexcept {
      return version_;
    }

    /// Oldest journal entry this cursor may still read (pruning floor).
    [[nodiscard]] std::uint64_t journal_position() const noexcept {
      return seen_;
    }

    [[nodiscard]] bool attached() const noexcept { return cache_ != nullptr; }

   private:
    /// Registers the inverse of every journal op in (seen_, now] into the
    /// overlay, mapping pre-walked past the cells already handed out --
    /// those were emitted before the op existed and are already consistent.
    void catch_up() {
      const std::uint64_t now = cache_->version();
      for (; seen_ < now; ++seen_) {
        const ChurnOp& op = cache_->op(seen_);
        mapping_type m = cache_->factory_(op.sym.hash);
        while (m.index() < index_) m.advance();
        overlay_.add_with_mapping(op.sym, std::move(m), invert(op.dir));
      }
    }

    void release() noexcept {
      if (!cache_) return;
      if (--cache_->live_cursors_ == 0) {
        // Nobody left to replay history for; drop it.
        cache_->journal_.clear();
        cache_->journal_base_ = cache_->version_;
      }
      cache_.reset();
    }

    std::shared_ptr<SequenceCache> cache_;
    CodingWindow<T, mapping_type> overlay_;  ///< inverse ops since snapshot
    std::uint64_t index_ = 0;
    std::uint64_t version_ = 0;
    std::uint64_t seen_ = 0;
  };

 private:
  friend class Cursor;

  void grow_to(std::size_t target) {
    const std::size_t old = cells_.size();
    if (target <= old) return;
    cells_.resize(target);
    for (std::size_t i = old; i < target; ++i) {
      window_.apply_at(i, cells_[i], Direction::kAdd);
    }
  }

  Hasher hasher_;
  MappingFactory factory_;
  CodingWindow<T, mapping_type> window_;  ///< items not yet folded past m
  std::vector<CodedSymbol<T>> cells_;     ///< materialized prefix, live set
  std::vector<ChurnOp> journal_;          ///< ops [journal_base_, version_)
  std::uint64_t journal_base_ = 0;
  std::uint64_t version_ = 0;
  std::size_t set_size_ = 0;
  std::size_t tombstones_ = 0;  ///< removal entries in the window
  std::size_t window_size_at_compact_ = 0;  ///< rebuild-frequency cooldown
  std::size_t live_cursors_ = 0;
};

}  // namespace ribltx
