// Sketch: a materialized fixed-length prefix of the Rateless IBLT coded
// symbol sequence.
//
// Because the sequence is universal (§4.1), a length-m sketch of set A
// serves three roles at once:
//   1. a normal IBLT: subtract Sketch(B), decode, get A (-) B;
//   2. Alice's cached coded-symbol prefix for serving many peers (§2):
//      stream prefix cells until each peer decodes;
//   3. an incrementally updatable cache (§7.3): when A changes, apply the
//      inserted/deleted items in place -- O(log m) cells per item -- instead
//      of re-encoding.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/coded_symbol.hpp"
#include "core/decoder.hpp"
#include "core/mapping.hpp"
#include "core/symbol.hpp"

namespace ribltx {

/// Result of decoding a difference sketch.
template <Symbol T>
struct DecodeResult {
  bool success = false;
  std::vector<HashedSymbol<T>> remote;  ///< items with net count +1 (A \ B)
  std::vector<HashedSymbol<T>> local;   ///< items with net count -1 (B \ A)
};

template <Symbol T, typename Hasher = SipHasher<T>,
          typename MappingFactory = DefaultMappingFactory>
class Sketch {
 public:
  using mapping_type = typename MappingFactory::mapping_type;

  explicit Sketch(std::size_t num_cells, Hasher hasher = Hasher{},
                  MappingFactory factory = MappingFactory{})
      : hasher_(std::move(hasher)),
        factory_(std::move(factory)),
        cells_(num_cells) {
    if (num_cells == 0) {
      throw std::invalid_argument("Sketch: need at least one cell");
    }
  }

  /// Adds an item to the encoded set. O(log m) cells touched.
  void add_symbol(const T& s) { apply(hasher_.hashed(s), Direction::kAdd); }

  /// Removes an item from the encoded set (it must have been added; the
  /// structure cannot verify this). O(log m).
  void remove_symbol(const T& s) {
    apply(hasher_.hashed(s), Direction::kRemove);
  }

  void apply(const HashedSymbol<T>& s, Direction dir) noexcept {
    mapping_type m = factory_(s.hash);
    while (m.index() < cells_.size()) {
      cells_[static_cast<std::size_t>(m.index())].apply(s, dir);
      m.advance();
    }
  }

  /// Cell-wise subtraction: *this becomes Sketch(A (-) B). Sizes must match.
  Sketch& subtract(const Sketch& other) {
    if (other.cells_.size() != cells_.size()) {
      throw std::invalid_argument("Sketch::subtract: size mismatch");
    }
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].subtract(other.cells_[i]);
    }
    return *this;
  }

  friend Sketch operator-(Sketch a, const Sketch& b) {
    a.subtract(b);
    return a;
  }

  /// Peels this (difference) sketch. Non-destructive. success = every cell
  /// reduced to empty; on failure remote/local hold whatever was recovered
  /// before the decoder stalled.
  [[nodiscard]] DecodeResult<T> decode() const {
    Decoder<T, Hasher, MappingFactory> dec(hasher_, factory_);
    for (const auto& c : cells_) dec.add_coded_symbol(c);
    DecodeResult<T> out;
    out.success = dec.decoded();
    out.remote.assign(dec.remote().begin(), dec.remote().end());
    out.local.assign(dec.local().begin(), dec.local().end());
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

  [[nodiscard]] std::span<const CodedSymbol<T>> cells() const noexcept {
    return cells_;
  }

  /// First `k` coded symbols -- the universal stream prefix Alice sends.
  [[nodiscard]] std::span<const CodedSymbol<T>> prefix(std::size_t k) const {
    if (k > cells_.size()) {
      throw std::out_of_range("Sketch::prefix: beyond materialized cells");
    }
    return std::span<const CodedSymbol<T>>(cells_.data(), k);
  }

  [[nodiscard]] const CodedSymbol<T>& cell(std::size_t i) const {
    return cells_.at(i);
  }

  [[nodiscard]] const Hasher& hasher() const noexcept { return hasher_; }
  [[nodiscard]] const MappingFactory& mapping_factory() const noexcept {
    return factory_;
  }

 private:
  Hasher hasher_;
  MappingFactory factory_;
  std::vector<CodedSymbol<T>> cells_;
};

/// Alice's universal coded-symbol cache (§2, §7.3): same structure as a
/// sketch, read through prefix()/cell() and updated in place as the set
/// changes.
template <Symbol T, typename Hasher = SipHasher<T>,
          typename MappingFactory = DefaultMappingFactory>
using SequenceCache = Sketch<T, Hasher, MappingFactory>;

}  // namespace ribltx
