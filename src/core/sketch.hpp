// Sketch: a materialized fixed-length prefix of the Rateless IBLT coded
// symbol sequence.
//
// Because the sequence is universal (§4.1), a length-m sketch of set A
// serves three roles at once:
//   1. a normal IBLT: subtract Sketch(B), decode, get A (-) B;
//   2. Alice's cached coded-symbol prefix for serving many peers (§2):
//      stream prefix cells until each peer decodes;
//   3. an incrementally updatable cache (§7.3): when A changes, apply the
//      inserted/deleted items in place -- O(log m) cells per item -- instead
//      of re-encoding.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/atomic_cell.hpp"
#include "core/coded_symbol.hpp"
#include "core/coding_window.hpp"
#include "core/decoder.hpp"
#include "core/mapping.hpp"
#include "core/symbol.hpp"
#include "obs/metrics.hpp"

namespace ribltx {

/// Result of decoding a difference sketch.
template <Symbol T>
struct DecodeResult {
  bool success = false;
  std::vector<HashedSymbol<T>> remote;  ///< items with net count +1 (A \ B)
  std::vector<HashedSymbol<T>> local;   ///< items with net count -1 (B \ A)
};

template <Symbol T, typename Hasher = SipHasher<T>,
          typename MappingFactory = DefaultMappingFactory>
class Sketch {
 public:
  using mapping_type = typename MappingFactory::mapping_type;

  explicit Sketch(std::size_t num_cells, Hasher hasher = Hasher{},
                  MappingFactory factory = MappingFactory{})
      : hasher_(std::move(hasher)),
        factory_(std::move(factory)),
        cells_(num_cells) {
    if (num_cells == 0) {
      throw std::invalid_argument("Sketch: need at least one cell");
    }
  }

  /// Adds an item to the encoded set. O(log m) cells touched.
  void add_symbol(const T& s) { apply(hasher_.hashed(s), Direction::kAdd); }

  /// Removes an item from the encoded set (it must have been added; the
  /// structure cannot verify this). O(log m).
  void remove_symbol(const T& s) {
    apply(hasher_.hashed(s), Direction::kRemove);
  }

  void apply(const HashedSymbol<T>& s, Direction dir) noexcept {
    mapping_type m = factory_(s.hash);
    while (m.index() < cells_.size()) {
      cells_[static_cast<std::size_t>(m.index())].apply(s, dir);
      m.advance();
    }
  }

  /// Cell-wise subtraction: *this becomes Sketch(A (-) B). Sizes must match.
  Sketch& subtract(const Sketch& other) {
    if (other.cells_.size() != cells_.size()) {
      throw std::invalid_argument("Sketch::subtract: size mismatch");
    }
    subtract_run<T>(cells_, other.cells_);
    return *this;
  }

  friend Sketch operator-(Sketch a, const Sketch& b) {
    a.subtract(b);
    return a;
  }

  /// Peels this (difference) sketch. Non-destructive. success = every cell
  /// reduced to empty; on failure remote/local hold whatever was recovered
  /// before the decoder stalled.
  [[nodiscard]] DecodeResult<T> decode() const {
    Decoder<T, Hasher, MappingFactory> dec(hasher_, factory_);
    for (const auto& c : cells_) dec.add_coded_symbol(c);
    DecodeResult<T> out;
    out.success = dec.decoded();
    out.remote.assign(dec.remote().begin(), dec.remote().end());
    out.local.assign(dec.local().begin(), dec.local().end());
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

  [[nodiscard]] std::span<const CodedSymbol<T>> cells() const noexcept {
    return cells_;
  }

  /// First `k` coded symbols -- the universal stream prefix Alice sends.
  [[nodiscard]] std::span<const CodedSymbol<T>> prefix(std::size_t k) const {
    if (k > cells_.size()) {
      throw std::out_of_range("Sketch::prefix: beyond materialized cells");
    }
    return std::span<const CodedSymbol<T>>(cells_.data(), k);
  }

  [[nodiscard]] const CodedSymbol<T>& cell(std::size_t i) const {
    return cells_.at(i);
  }

  [[nodiscard]] const Hasher& hasher() const noexcept { return hasher_; }
  [[nodiscard]] const MappingFactory& mapping_factory() const noexcept {
    return factory_;
  }

 private:
  Hasher hasher_;
  MappingFactory factory_;
  std::vector<CodedSymbol<T>> cells_;
};

/// Alice's universal coded-symbol cache (§2, §7.3), the server's single
/// source of truth for the rateless stream.
///
/// Unlike a fixed-length Sketch, the cache is *lazily extended*: cells are
/// materialized in doubling blocks through CodingWindows the first time a
/// reader walks past the materialized prefix, so extension costs O(log m)
/// amortized per cell and building the cache never pays for cells nobody
/// asked for. Set churn (§7.3 linearity) updates the materialized prefix in
/// place -- O(log m) cells per inserted/removed item -- and registers the
/// item (or a cancelling tombstone) in a window so future blocks reflect
/// the change too.
///
/// Every churn op is stamped with a monotonically increasing version and
/// recorded in a journal. A Cursor opened at version v streams the
/// *snapshot* of the set as it stood at v: it reads the live (current-set)
/// cells and undoes the journal ops in (v, now] through a private overlay
/// window, so one cache serves any number of concurrently open sessions of
/// different staleness without copying cells or freezing the set. The
/// journal is kept only while cursors are alive (it empties itself when the
/// last cursor dies; SyncEngine additionally prunes it to the oldest active
/// session).
///
/// Concurrency (the multi-writer churn design):
///
/// Cell updates commute (XOR sums/checksums, signed counts -- §7.3
/// linearity), so steady-state churn is LOCK-FREE on the shared state:
/// materialized cells are AtomicCodedCells updated with relaxed
/// `fetch_xor` + release `fetch_add` (the speedex-IBLT idiom, SNIPPETS.md
/// snippet 1), and the journal + not-yet-materialized window are striped
/// into kWriterLanes per-thread lanes so appends contend only within a
/// lane. Writers never take a global lock.
///
/// The op protocol is a seqlock over two global counters: a writer
/// reserves a version from `reserved_` (inside its lane lock, so each
/// lane's journal stays version-sorted), applies its cell XORs, then
/// publishes with a release increment of `completed_`. A reader
/// (Cursor::next, cell()) waits for reserved_ == completed_ == V, reads
/// its cell with atomic word loads, and revalidates reserved_ == V -- a
/// moved counter means a writer raced the read, so the (atomically
/// loaded, never-UB) value is discarded and the read retries; after
/// kReadRetries failures it escalates to the exclusive gate below.
/// Readers are pure loads -- they never announce themselves anywhere:
/// growth retires (keeps allocated) superseded cell arrays instead of
/// freeing them, so a reader racing a grow safely finishes on the old
/// copy (doubling keeps the total footprint under 2x the live array).
///
/// The rare structural phases -- block materialization (ensure/grow),
/// compact_window(), cursor creation, last-cursor journal teardown, and
/// reader escalation -- are EXCLUSIVE: they set `barrier_` and drain the
/// per-lane active counters (an asymmetric Dekker gate: writers announce
/// themselves in `lane.active` before checking the barrier, both seq_cst,
/// so either the writer sees the barrier and parks or the gate sees the
/// writer and waits). Steady-state churn never touches the gate's mutex.
template <Symbol T, typename Hasher = SipHasher<T>,
          typename MappingFactory = DefaultMappingFactory>
class SequenceCache {
 public:
  using mapping_type = typename MappingFactory::mapping_type;

  /// First materialization block; subsequent blocks double.
  static constexpr std::size_t kInitialBlock = 64;

  /// Writer lanes: each owns a mutex, a journal stripe, and a
  /// CodingWindow stripe. Threads pick a lane by a round-robin
  /// thread-local ordinal, so a writer thread almost always has its lane
  /// to itself.
  static constexpr std::size_t kWriterLanes = 8;

  /// Seqlock retries before a reader escalates to the exclusive gate.
  static constexpr int kReadRetries = 64;

  explicit SequenceCache(Hasher hasher = Hasher{},
                         MappingFactory factory = MappingFactory{})
      : hasher_(std::move(hasher)), factory_(std::move(factory)) {}

  /// Pre-materializes exactly `num_cells` cells up front (the fixed-size
  /// working style of §7.3's 50M-cell Ethereum cache).
  explicit SequenceCache(std::size_t num_cells, Hasher hasher = Hasher{},
                         MappingFactory factory = MappingFactory{})
      : hasher_(std::move(hasher)), factory_(std::move(factory)) {
    if (num_cells > 0) {
      // Exactly the requested count (ensure() would round up to a doubling
      // block); no contention is possible in a constructor, the gate is
      // just the required entry protocol for grow_exclusive.
      ExclusiveGate gate(*this);
      grow_exclusive(num_cells);
    }
  }

  SequenceCache(const SequenceCache&) = delete;
  SequenceCache& operator=(const SequenceCache&) = delete;

  // ------------------------------------------------------------- set churn

  void add_symbol(const T& s) { churn(hasher_.hashed(s), Direction::kAdd); }
  void remove_symbol(const T& s) {
    churn(hasher_.hashed(s), Direction::kRemove);
  }
  void add_hashed(const HashedSymbol<T>& s) { churn(s, Direction::kAdd); }
  void remove_hashed(const HashedSymbol<T>& s) {
    churn(s, Direction::kRemove);
  }

  /// Applies one set change: updates every materialized cell the item maps
  /// to (O(log m) atomic XORs) and registers the item in the lane's window
  /// -- with `dir`'s sign, so a removal rides as a tombstone that exactly
  /// cancels the still-queued kAdd entry on all future cells. Journaled for
  /// snapshot cursors when any are alive. Safe from any number of threads
  /// concurrently; the steady state takes no lock beyond the (usually
  /// uncontended) per-lane mutex around the journal append.
  void churn(const HashedSymbol<T>& s, Direction dir) {
    Lane& lane = lanes_[lane_of_thread()];
    enter_shared(lane);
    // The materialized size is frozen for the whole op: growth is
    // exclusive and this thread is announced in lane.active.
    const std::size_t m = cells_size_.load(std::memory_order_acquire);
    // The cursor count is stable for this whole op: cursor creation runs
    // under the gate, which waits for this announced writer -- so a new
    // cursor's pinned version necessarily covers this op's reservation and
    // needs no journal entry for it.
    if (live_cursors_.load(std::memory_order_relaxed) > 0) {
      // Version reservation and journal append are atomic under the lane
      // mutex, so each lane's journal is version-sorted -- what lets a
      // cursor's catch-up consume a lane with a plain prefix scan.
      const std::lock_guard<std::mutex> lk(lane.mu);
      const std::uint64_t v =
          reserved_.fetch_add(1, std::memory_order_seq_cst);
      lane.journal.push_back(LaneOp{v, s, dir});
      journal_entries_.fetch_add(1, std::memory_order_relaxed);
    } else {
      reserved_.fetch_add(1, std::memory_order_seq_cst);
    }
    // Cell application strictly follows the reservation: a validated
    // seqlock reader saw reserved_ == V before reading, so any XOR it can
    // observe belongs to an op its journal catch-up accounted for.
    mapping_type m_walk = factory_(s.hash);
    AtomicCodedCell<T>* const cells = cells_.load(std::memory_order_relaxed);
    while (m_walk.index() < m) {
      cells[static_cast<std::size_t>(m_walk.index())].apply(s, dir);
      m_walk.advance();
    }
    {
      // The mapping now points at the item's first unmaterialized index;
      // the lane window folds it into every future block from there on.
      const std::lock_guard<std::mutex> lk(lane.mu);
      lane.window.add_with_mapping(s, std::move(m_walk), dir);
    }
    if (dir == Direction::kAdd) {
      set_size_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // May go transiently negative under a concurrent remove/add race on
      // the same item (linearity makes the net correct); set_size() clamps.
      set_size_.fetch_sub(1, std::memory_order_relaxed);
      tombstones_.fetch_add(1, std::memory_order_relaxed);
    }
    window_entries_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_release);
    exit_shared(lane);
    maybe_compact();
  }

  // ---------------------------------------------------------- compaction

  /// Entries currently in the coding windows (live items + cancelled
  /// add/tombstone pairs that compaction will drop).
  [[nodiscard]] std::size_t window_size() const noexcept {
    return window_entries_.load(std::memory_order_relaxed);
  }

  /// Tombstone (removal) entries currently in the windows.
  [[nodiscard]] std::size_t window_tombstones() const noexcept {
    return tombstones_.load(std::memory_order_relaxed);
  }

  /// Rebuilds the coding windows from the net-live item multiset, dropping
  /// every cancelled add/tombstone pair (ROADMAP "journal compaction under
  /// sustained churn"). A cache that churns for weeks otherwise re-walks
  /// each dead pair on every future block materialization. O(n log m):
  /// each live item's mapping is re-walked past the materialized prefix.
  /// Runs under the exclusive gate -- materialized cells are already
  /// net-correct, and snapshot Cursors replay history through their own
  /// private overlays, never through these windows.
  void compact_window() {
    ExclusiveGate gate(*this);
    compact_window_exclusive();
  }

  static constexpr std::size_t kCompactMinTombstones = 64;

  // -------------------------------------------------------- observability

  /// Attaches registry handles (any may be null). The pointers are stored
  /// relaxed-atomic so binding can happen after writer threads are already
  /// churning: a writer that misses the store simply skips one record.
  /// The referenced cells must outlive the cache's last writer.
  void bind_metrics(obs::Histogram* gate_wait_us, obs::Histogram* compact_us,
                    obs::Counter* compactions) noexcept {
    obs_gate_wait_us_.store(gate_wait_us, std::memory_order_relaxed);
    obs_compact_us_.store(compact_us, std::memory_order_relaxed);
    obs_compactions_.store(compactions, std::memory_order_relaxed);
  }

  // ------------------------------------------------------------ cell reads

  /// The coded symbol at stream index `i` for the *current* set,
  /// materializing lazily (doubling blocks) as needed. Safe concurrently
  /// with churn (seqlock-validated read).
  [[nodiscard]] CodedSymbol<T> cell(std::size_t i) {
    ensure(i + 1);
    return read_cell(i);
  }

  /// Ensures cells [0, n) are materialized.
  void ensure(std::size_t n) {
    if (n <= cells_size_.load(std::memory_order_acquire)) return;
    ExclusiveGate gate(*this);
    const std::size_t old = cells_size_.load(std::memory_order_relaxed);
    if (n <= old) return;  // another thread grew while we queued
    std::size_t target = old == 0 ? kInitialBlock : old;
    while (target < n) target *= 2;
    grow_exclusive(target);
  }

  /// Snapshot copy of the materialized prefix (grows over time; never
  /// shrinks). Taken under the exclusive gate, so the copy is a consistent
  /// point-in-time state even mid-churn. Diagnostics/tests; hot paths use
  /// cell() or a Cursor.
  [[nodiscard]] std::vector<CodedSymbol<T>> cells() {
    ExclusiveGate gate(*this);
    const std::size_t n = cells_size_.load(std::memory_order_relaxed);
    std::vector<CodedSymbol<T>> out;
    out.reserve(n);
    AtomicCodedCell<T>* const cells = cells_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) out.push_back(cells[i].load());
    return out;
  }

  [[nodiscard]] std::size_t materialized() const noexcept {
    return cells_size_.load(std::memory_order_acquire);
  }

  /// Items currently encoded net of removals (adds minus tombstones).
  [[nodiscard]] std::size_t set_size() const noexcept {
    const std::int64_t n = set_size_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }

  [[nodiscard]] const Hasher& hasher() const noexcept { return hasher_; }
  [[nodiscard]] const MappingFactory& mapping_factory() const noexcept {
    return factory_;
  }

  // --------------------------------------------------- versions & journal

  struct ChurnOp {
    HashedSymbol<T> sym;
    Direction dir = Direction::kAdd;
  };

  /// Total churn ops fully applied; the version a new Cursor snapshots.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return completed_.load(std::memory_order_acquire);
  }

  /// The op that moved the cache from version `v` to `v + 1` (a lane scan;
  /// tests/diagnostics only). Throws std::out_of_range if that op was
  /// pruned or has not completed (a cursor outliving its journal window is
  /// a caller bug).
  [[nodiscard]] ChurnOp op(std::uint64_t v) const {
    for (const Lane& lane : lanes_) {
      const std::lock_guard<std::mutex> lk(lane.mu);
      // Per-lane journals are version-sorted: binary search.
      std::size_t lo = 0, hi = lane.journal.size();
      while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (lane.journal[mid].version < v) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < lane.journal.size() && lane.journal[lo].version == v) {
        return ChurnOp{lane.journal[lo].sym, lane.journal[lo].dir};
      }
    }
    throw std::out_of_range("SequenceCache::op: journal entry pruned");
  }

  /// Drops journal entries below `min_version` (no live cursor may still
  /// need them). SyncEngine calls this with the oldest active session's
  /// position; the last Cursor's destructor empties the journal outright.
  /// Safe concurrently with churn and cursor reads (per-lane locking).
  void prune_journal(std::uint64_t min_version) {
    std::size_t erased = 0;
    for (Lane& lane : lanes_) {
      const std::lock_guard<std::mutex> lk(lane.mu);
      auto it = lane.journal.begin();
      while (it != lane.journal.end() && it->version < min_version) ++it;
      const auto n = static_cast<std::size_t>(it - lane.journal.begin());
      if (n != 0) {
        lane.pruned += n;
        lane.journal.erase(lane.journal.begin(), it);
        erased += n;
      }
    }
    if (erased != 0) {
      journal_entries_.fetch_sub(erased, std::memory_order_relaxed);
    }
  }

  /// Entries retained across all lane journals.
  [[nodiscard]] std::size_t journal_size() const noexcept {
    return journal_entries_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t live_cursor_count() const noexcept {
    return live_cursors_.load(std::memory_order_relaxed);
  }

  // --------------------------------------------------------------- Cursor

  /// Snapshot-consistent reader: streams the coded-symbol sequence of the
  /// set as it stood when the cursor was created, while the cache keeps
  /// absorbing churn and serving other cursors. Cells already handed out
  /// are never re-read, so churn can never mutate a cell out from under a
  /// peer mid-stream: per cell the cursor copies the live value (seqlock-
  /// validated against in-flight writers) and undoes the ops its snapshot
  /// must not see (each op registered once, O(log m), through a private
  /// overlay CodingWindow holding the *inverse* ops, gathered from the
  /// per-lane journals).
  ///
  /// Creation is exclusive (it pins a version with no op in flight); next()
  /// is concurrent with churn. One cursor is single-reader; distinct
  /// cursors may run on distinct threads.
  class Cursor {
   public:
    Cursor() = default;

    explicit Cursor(std::shared_ptr<SequenceCache> cache)
        : cache_(std::move(cache)) {
      ExclusiveGate gate(*cache_);
      // Drained: reserved_ == completed_, and every journal entry < V is
      // in place, so per-lane positions pin the snapshot exactly.
      version_ = cache_->reserved_.load(std::memory_order_relaxed);
      seen_ = version_;
      for (std::size_t k = 0; k < kWriterLanes; ++k) {
        Lane& lane = cache_->lanes_[k];
        pos_[k] = lane.pruned + lane.journal.size();
      }
      cache_->live_cursors_.fetch_add(1, std::memory_order_relaxed);
    }

    Cursor(const Cursor&) = delete;
    Cursor& operator=(const Cursor&) = delete;

    Cursor(Cursor&& other) noexcept
        : cache_(std::move(other.cache_)),
          overlay_(std::move(other.overlay_)),
          index_(other.index_),
          version_(other.version_),
          seen_(other.seen_),
          pos_(other.pos_) {
      other.cache_.reset();
    }

    Cursor& operator=(Cursor&& other) noexcept {
      if (this != &other) {
        release();
        cache_ = std::move(other.cache_);
        overlay_ = std::move(other.overlay_);
        index_ = other.index_;
        version_ = other.version_;
        seen_ = other.seen_;
        pos_ = other.pos_;
        other.cache_.reset();
      }
      return *this;
    }

    ~Cursor() { release(); }

    /// The next coded symbol of the snapshot's stream.
    [[nodiscard]] CodedSymbol<T> next() {
      const auto i = static_cast<std::size_t>(index_);
      cache_->ensure(i + 1);
      CodedSymbol<T> cell;
      for (int attempt = 0;; ++attempt) {
        if (attempt >= kReadRetries) {
          // Writer storm: take the gate and read at a quiescent point.
          ExclusiveGate gate(*cache_);
          catch_up(cache_->reserved_.load(std::memory_order_relaxed));
          cell = cache_->cells_.load(std::memory_order_relaxed)[i].load();
          break;
        }
        const std::uint64_t v =
            cache_->reserved_.load(std::memory_order_seq_cst);
        if (cache_->completed_.load(std::memory_order_seq_cst) != v) {
          std::this_thread::yield();  // an op is mid-flight; let it land
          continue;
        }
        catch_up(v);
        // Load-only read: the retire list keeps any superseded array
        // alive, and the version re-check rejects a racing writer.
        cell = cache_->cells_.load(std::memory_order_acquire)[i].load();
        if (cache_->reserved_.load(std::memory_order_seq_cst) == v) {
          break;  // nothing started during the read: the value is exact
        }
      }
      overlay_.apply_at(index_, cell, Direction::kAdd);
      ++index_;
      return cell;
    }

    /// Stream index of the next coded symbol (== symbols already read).
    [[nodiscard]] std::uint64_t index() const noexcept { return index_; }

    /// The cache version this cursor's snapshot pinned.
    [[nodiscard]] std::uint64_t snapshot_version() const noexcept {
      return version_;
    }

    /// Oldest journal entry this cursor may still read (pruning floor).
    [[nodiscard]] std::uint64_t journal_position() const noexcept {
      return seen_;
    }

    [[nodiscard]] bool attached() const noexcept { return cache_ != nullptr; }

   private:
    /// Registers the inverse of every journal op in (seen_, target) into
    /// the overlay, mapping pre-walked past the cells already handed out --
    /// those were emitted before the op existed and are already consistent.
    /// Precondition: every op below `target` has fully completed (the
    /// seqlock validated reserved_ == completed_ == target, or the caller
    /// holds the gate), so each version-sorted lane yields its share with
    /// a prefix scan from this cursor's saved position.
    void catch_up(std::uint64_t target) {
      if (seen_ >= target) return;
      for (std::size_t k = 0; k < kWriterLanes; ++k) {
        Lane& lane = cache_->lanes_[k];
        const std::lock_guard<std::mutex> lk(lane.mu);
        std::size_t idx = pos_[k] > lane.pruned
                              ? static_cast<std::size_t>(pos_[k] - lane.pruned)
                              : 0;
        while (idx < lane.journal.size() &&
               lane.journal[idx].version < target) {
          const LaneOp& op = lane.journal[idx];
          mapping_type m = cache_->factory_(op.sym.hash);
          while (m.index() < index_) m.advance();
          overlay_.add_with_mapping(op.sym, std::move(m), invert(op.dir));
          ++idx;
        }
        pos_[k] = lane.pruned + idx;
      }
      seen_ = target;
    }

    void release() noexcept {
      if (!cache_) return;
      if (cache_->live_cursors_.fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        // Nobody left to replay history for; drop it. The gate excludes
        // in-flight writers (whose journal check raced our decrement) and
        // re-checks against a concurrently created cursor.
        ExclusiveGate gate(*cache_);
        if (cache_->live_cursors_.load(std::memory_order_relaxed) == 0) {
          for (Lane& lane : cache_->lanes_) {
            lane.pruned += lane.journal.size();
            lane.journal.clear();
          }
          cache_->journal_entries_.store(0, std::memory_order_relaxed);
        }
      }
      cache_.reset();
    }

    std::shared_ptr<SequenceCache> cache_;
    CodingWindow<T, mapping_type> overlay_;  ///< inverse ops since snapshot
    std::uint64_t index_ = 0;
    std::uint64_t version_ = 0;
    std::uint64_t seen_ = 0;
    /// Per-lane journal positions (absolute: lane.pruned + vector index)
    /// up to which this cursor has consumed entries.
    std::array<std::uint64_t, kWriterLanes> pos_{};
  };

 private:
  friend class Cursor;

  struct LaneOp {
    std::uint64_t version = 0;
    HashedSymbol<T> sym;
    Direction dir = Direction::kAdd;
  };

  /// One writer lane: journal stripe + window stripe behind a lane mutex,
  /// plus this lane's share of the shared/exclusive gate. Cache-line
  /// aligned so lanes do not false-share their active counters.
  struct alignas(64) Lane {
    mutable std::mutex mu;
    std::atomic<std::size_t> active{0};  ///< threads inside a shared section
    std::vector<LaneOp> journal;         ///< version-sorted (reserve under mu)
    std::uint64_t pruned = 0;            ///< entries ever erased at the front
    CodingWindow<T, mapping_type> window;  ///< items not yet folded past m
  };

  /// Round-robin thread->lane assignment (stable per thread).
  [[nodiscard]] static std::size_t lane_of_thread() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t ordinal =
        next.fetch_add(1, std::memory_order_relaxed);
    return ordinal % kWriterLanes;
  }

  /// Shared-side entry of the asymmetric gate: announce in the lane's
  /// active counter first, THEN check the barrier (both seq_cst -- the
  /// Dekker pattern). Either this thread sees the barrier and backs out to
  /// park on the gate mutex, or the exclusive side's drain sees the
  /// announcement and waits.
  void enter_shared(Lane& lane) {
    for (;;) {
      lane.active.fetch_add(1, std::memory_order_seq_cst);
      if (!barrier_.load(std::memory_order_seq_cst)) return;
      lane.active.fetch_sub(1, std::memory_order_seq_cst);
      // Park until the exclusive phase releases the mutex, then retry.
      const std::lock_guard<std::mutex> park(exclusive_mu_);
    }
  }

  void exit_shared(Lane& lane) noexcept {
    lane.active.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Exclusive phase: holds the gate mutex (serializing exclusive phases),
  /// raises the barrier, and drains every lane's shared sections. On
  /// destruction the barrier drops and parked writers re-enter.
  class ExclusiveGate {
   public:
    explicit ExclusiveGate(SequenceCache& cache)
        : cache_(cache), lock_(cache.exclusive_mu_) {
      // Gate-wait covers barrier raise + lane drain, but not the mutex
      // queue (the member initializer above): the drain is the part the
      // Dekker gate adds over a plain lock, which is what the histogram
      // is sized to expose. Sampled 1-in-8: the gate sits on the
      // session-open path, where unconditional clock reads would be a
      // measurable fraction of a small session's budget.
      obs::Histogram* const h =
          (cache_.obs_gate_sample_.fetch_add(1, std::memory_order_relaxed) &
           7) == 0
              ? cache_.obs_gate_wait_us_.load(std::memory_order_relaxed)
              : nullptr;
      const std::uint64_t t0 = h != nullptr ? steady_us() : 0;
      cache_.barrier_.store(true, std::memory_order_seq_cst);
      for (Lane& lane : cache_.lanes_) {
        while (lane.active.load(std::memory_order_seq_cst) != 0) {
          std::this_thread::yield();
        }
      }
      if (h != nullptr) h->record(steady_us() - t0);
    }

    ~ExclusiveGate() {
      cache_.barrier_.store(false, std::memory_order_seq_cst);
    }

    ExclusiveGate(const ExclusiveGate&) = delete;
    ExclusiveGate& operator=(const ExclusiveGate&) = delete;

   private:
    SequenceCache& cache_;
    std::lock_guard<std::mutex> lock_;
  };

  /// Seqlock-validated read of one materialized cell (bounds unchecked;
  /// callers ensure()d). Entirely load-only in the common case -- readers
  /// never announce themselves: the retire list keeps superseded arrays
  /// alive, so a reader racing a grow just reads the old copy, and the
  /// version-pair validation catches any racing writer. Only a read that
  /// loses the race kReadRetries times in a row escalates to the gate
  /// (quiescing writers) rather than spinning unboundedly.
  [[nodiscard]] CodedSymbol<T> read_cell(std::size_t i) {
    for (int attempt = 0; attempt < kReadRetries; ++attempt) {
      const std::uint64_t v = reserved_.load(std::memory_order_seq_cst);
      if (completed_.load(std::memory_order_seq_cst) != v) {
        std::this_thread::yield();
        continue;
      }
      const CodedSymbol<T> out =
          cells_.load(std::memory_order_acquire)[i].load();
      if (reserved_.load(std::memory_order_seq_cst) == v) return out;
    }
    ExclusiveGate gate(*this);
    return cells_.load(std::memory_order_relaxed)[i].load();
  }

  /// Materializes cells [old, target) by draining every lane window
  /// through them in stream order. Caller holds the gate (no writer can
  /// observe the swap mid-way). The superseded array is *retired*, not
  /// freed: un-announced readers may still be loading from it. Doubling
  /// growth makes all retired arrays together smaller than the live one,
  /// so the cache never holds more than 2x the final footprint.
  void grow_exclusive(std::size_t target) {
    const std::size_t old = cells_size_.load(std::memory_order_relaxed);
    auto grown = std::make_unique<AtomicCodedCell<T>[]>(target);
    AtomicCodedCell<T>* const prev = cells_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < old; ++i) {
      grown[i].store(prev[i].load());
    }
    for (std::size_t i = old; i < target; ++i) {
      CodedSymbol<T> cell;
      for (Lane& lane : lanes_) {
        lane.window.apply_at(i, cell, Direction::kAdd);
      }
      grown[i].store(cell);
    }
    // Pointer first, size second (both release): a reader that
    // acquire-loads the new size is therefore guaranteed to see the new
    // pointer; one that sees the old size reads old indices, valid in
    // either array.
    cells_.store(grown.get(), std::memory_order_release);
    retired_.push_back(std::move(grown));
    cells_size_.store(target, std::memory_order_release);
  }

  /// Compacts once tombstones and their cancelled adds make up at least
  /// half the window (2t >= live, i.e. 4t >= entries), with a floor so
  /// small windows never bother and a *multiplicative* growth cooldown
  /// (the window must outgrow its post-compaction size by half) so
  /// non-cancellable tombstones -- removals of never-added items, which a
  /// rebuild cannot drop -- keep the amortized-doubling argument instead
  /// of re-triggering a full O(n log m) rebuild every few ops. The
  /// threshold test reads the atomic counters racily (cheap, per-op); a
  /// hit re-checks under the gate, so concurrent writers cannot trigger
  /// back-to-back rebuilds off the same stale counters.
  void maybe_compact() {
    if (!compact_eligible()) return;
    ExclusiveGate gate(*this);
    if (compact_eligible()) compact_window_exclusive();
  }

  [[nodiscard]] bool compact_eligible() const noexcept {
    const std::size_t t = tombstones_.load(std::memory_order_relaxed);
    const std::size_t w = window_entries_.load(std::memory_order_relaxed);
    const std::size_t at =
        window_size_at_compact_.load(std::memory_order_relaxed);
    const std::size_t cooldown =
        at / 2 > kCompactMinTombstones ? at / 2 : kCompactMinTombstones;
    return t >= kCompactMinTombstones && 4 * t >= w && w >= at + cooldown;
  }

  [[nodiscard]] static std::uint64_t steady_us() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Caller holds the gate.
  void compact_window_exclusive() {
    obs::Histogram* const obs_dur =
        obs_compact_us_.load(std::memory_order_relaxed);
    const std::uint64_t obs_t0 = obs_dur != nullptr ? steady_us() : 0;
    // Net count per distinct symbol across every lane window; bucketed by
    // hash with symbol-equality confirmation so hash collisions cannot
    // merge distinct items.
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<HashedSymbol<T>, std::int64_t>>>
        net;
    net.reserve(window_entries_.load(std::memory_order_relaxed));
    for (Lane& lane : lanes_) {
      lane.window.for_each_entry([&](const HashedSymbol<T>& sym,
                                     Direction dir, std::uint64_t) {
        auto& bucket = net[sym.hash];
        for (auto& [existing, count] : bucket) {
          if (existing.symbol == sym.symbol) {
            count += static_cast<std::int64_t>(dir);
            return;
          }
        }
        bucket.emplace_back(sym, static_cast<std::int64_t>(dir));
      });
    }
    const std::size_t m = cells_size_.load(std::memory_order_relaxed);
    CodingWindow<T, mapping_type> rebuilt;
    std::size_t rebuilt_tombstones = 0;
    std::size_t rebuilt_entries = 0;
    for (const auto& [hash, bucket] : net) {
      for (const auto& [sym, count] : bucket) {
        // A set sees net 0 (dead pair) or +1 (live); the general loop
        // preserves exact linearity for any multiset history (a
        // net-negative symbol -- removal of a never-added item -- stays a
        // tombstone and keeps counting as one).
        const Direction dir =
            count > 0 ? Direction::kAdd : Direction::kRemove;
        for (std::int64_t c = count < 0 ? -count : count; c > 0; --c) {
          mapping_type walk = factory_(sym.hash);
          while (walk.index() < m) walk.advance();
          rebuilt.add_with_mapping(sym, walk, dir);
          ++rebuilt_entries;
          if (dir == Direction::kRemove) ++rebuilt_tombstones;
        }
      }
    }
    // The merged live set lands in lane 0's window; the other stripes
    // restart empty (apply_at on an empty window is a cheap no-op).
    for (Lane& lane : lanes_) lane.window.clear();
    lanes_[0].window = std::move(rebuilt);
    tombstones_.store(rebuilt_tombstones, std::memory_order_relaxed);
    window_entries_.store(rebuilt_entries, std::memory_order_relaxed);
    window_size_at_compact_.store(rebuilt_entries,
                                  std::memory_order_relaxed);
    if (obs_dur != nullptr) obs_dur->record(steady_us() - obs_t0);
    if (obs::Counter* const c =
            obs_compactions_.load(std::memory_order_relaxed);
        c != nullptr) {
      c->inc();
    }
  }

  Hasher hasher_;
  MappingFactory factory_;
  std::array<Lane, kWriterLanes> lanes_;
  /// Materialized cells of the live set. The raw pointer is what readers
  /// load; every array ever published lives in retired_ (the newest entry
  /// is the current one) until destruction, so un-announced readers can
  /// never dangle across a grow.
  std::atomic<AtomicCodedCell<T>*> cells_{nullptr};
  std::vector<std::unique_ptr<AtomicCodedCell<T>[]>> retired_;
  std::atomic<std::size_t> cells_size_{0};
  std::atomic<std::uint64_t> reserved_{0};   ///< versions handed to writers
  std::atomic<std::uint64_t> completed_{0};  ///< versions fully applied
  std::atomic<std::int64_t> set_size_{0};
  std::atomic<std::size_t> tombstones_{0};  ///< removal entries in windows
  std::atomic<std::size_t> window_entries_{0};
  std::atomic<std::size_t> journal_entries_{0};
  std::atomic<std::size_t> window_size_at_compact_{0};  ///< rebuild cooldown
  std::atomic<std::size_t> live_cursors_{0};
  std::atomic<bool> barrier_{false};  ///< an exclusive phase wants the cache
  std::mutex exclusive_mu_;
  /// Registry taps (null = untapped); see bind_metrics().
  std::atomic<obs::Histogram*> obs_gate_wait_us_{nullptr};
  std::atomic<std::uint64_t> obs_gate_sample_{0};  ///< 1-in-8 phase
  std::atomic<obs::Histogram*> obs_compact_us_{nullptr};
  std::atomic<obs::Counter*> obs_compactions_{nullptr};
};

}  // namespace ribltx
