// Atomic coded-symbol cell: the multi-writer variant of CodedSymbol.
//
// Coded-symbol cell updates are linear (§7.3): `sum` and `checksum` are
// XOR accumulators and `count` is a signed sum, so updates from different
// writers commute and a cell needs no lock -- only word-granular atomicity.
// This is the speedex-IBLT idiom (SNIPPETS.md snippet 1): the sum is held
// as 64-bit words updated with `fetch_xor`, the checksum is one more XOR
// word, and the count publishes with a release `fetch_add`.
//
// Memory-order contract (see SequenceCache for the full protocol): the
// XOR words are relaxed -- XOR needs no ordering against itself, and
// readers never infer anything from a lone word. The count's release
// fetch_add mirrors snippet 1's publication fence, but cross-thread
// visibility of a *whole* op is established by SequenceCache's
// reserved_/completed_ seqlock, not per cell: a reader that validated the
// op window may assume every word of every completed op is visible; a
// reader that lost the seqlock race discards the (atomically loaded, so
// never UB) torn value and retries.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "core/coded_symbol.hpp"
#include "core/symbol.hpp"

namespace ribltx {

template <Symbol T>
struct AtomicCodedCell {
  // The word view of the sum is a byte image of T: pack/unpack are
  // memcpys, which requires the symbol to *be* its bytes (true of every
  // ByteSymbol; a symbol with padding or indirection would need its own
  // packing).
  static_assert(std::is_trivially_copyable_v<T>,
                "AtomicCodedCell: symbol must be trivially copyable");
  static_assert(sizeof(T) == T::kSize,
                "AtomicCodedCell: symbol must be exactly its byte image");

  static constexpr std::size_t kSumWords = (T::kSize + 7) / 8;

  std::array<std::atomic<std::uint64_t>, kSumWords> sum{};
  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::int64_t> count{0};

  /// Folds one hashed source symbol into this cell; safe from any number
  /// of concurrent writers (updates commute).
  void apply(const HashedSymbol<T>& s, Direction dir) noexcept {
    std::array<std::uint64_t, kSumWords> w{};  // zero tail past kSize
    std::memcpy(w.data(), static_cast<const void*>(&s.symbol), T::kSize);
    for (std::size_t i = 0; i < kSumWords; ++i) {
      sum[i].fetch_xor(w[i], std::memory_order_relaxed);
    }
    checksum.fetch_xor(s.hash, std::memory_order_relaxed);
    count.fetch_add(static_cast<std::int64_t>(dir),
                    std::memory_order_release);
  }

  /// Word-wise atomic load into a plain cell. Consistent only when the
  /// caller has excluded (or validated the absence of) concurrent writers.
  [[nodiscard]] CodedSymbol<T> load() const noexcept {
    std::array<std::uint64_t, kSumWords> w;
    for (std::size_t i = 0; i < kSumWords; ++i) {
      w[i] = sum[i].load(std::memory_order_relaxed);
    }
    CodedSymbol<T> out;
    std::memcpy(static_cast<void*>(&out.sum), w.data(), T::kSize);
    out.checksum = checksum.load(std::memory_order_relaxed);
    out.count = count.load(std::memory_order_acquire);
    return out;
  }

  /// Plain overwrite; exclusive phases (materialization, rebuilds) only.
  void store(const CodedSymbol<T>& v) noexcept {
    std::array<std::uint64_t, kSumWords> w{};
    std::memcpy(w.data(), static_cast<const void*>(&v.sum), T::kSize);
    for (std::size_t i = 0; i < kSumWords; ++i) {
      sum[i].store(w[i], std::memory_order_relaxed);
    }
    checksum.store(v.checksum, std::memory_order_relaxed);
    count.store(v.count, std::memory_order_release);
  }
};

}  // namespace ribltx
