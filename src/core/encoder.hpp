// Streaming Rateless IBLT encoder (Alice's side).
//
// Encodes a set into the infinite coded-symbol sequence s0, s1, s2, ...
// defined in §4.1. The encoder is rateless: call produce_next() as many
// times as the peer needs; the first m outputs are exactly the length-m
// prefix regardless of m (prefix property, Fig 3). Per §6, the per-symbol
// cost is O(log m) thanks to the CodingWindow heap.
//
// One Encoder serves ONE stream. A server answering many peers should not
// build an encoder per session: the sequence is universal (§2), so use
// SequenceCache + its snapshot Cursors (core/sketch.hpp) -- cells are
// materialized once, shared by every session, and survive set churn --
// which is what sync::SyncEngine and sync::ReconcileServer do.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/coded_symbol.hpp"
#include "core/coding_window.hpp"
#include "core/mapping.hpp"
#include "core/symbol.hpp"

namespace ribltx {

template <Symbol T, typename Hasher = SipHasher<T>,
          typename MappingFactory = DefaultMappingFactory>
class Encoder {
 public:
  using mapping_type = typename MappingFactory::mapping_type;

  explicit Encoder(Hasher hasher = Hasher{},
                   MappingFactory factory = MappingFactory{})
      : hasher_(std::move(hasher)), factory_(std::move(factory)) {}

  /// Adds a set item. All items must be added before the first
  /// produce_next(): cells already emitted cannot reflect a late item (use
  /// SequenceCache for post-hoc set updates). Throws std::logic_error on
  /// misuse.
  void add_symbol(const T& s) { add_hashed_symbol(hasher_.hashed(s)); }

  /// Same, for a pre-hashed item (lets callers reuse hashes across peers).
  void add_hashed_symbol(const HashedSymbol<T>& s) {
    if (next_index_ != 0) {
      throw std::logic_error(
          "Encoder::add_symbol: cannot add items after encoding started");
    }
    window_.add(s, factory_);
  }

  /// Produces the coded symbol at the next stream index.
  [[nodiscard]] CodedSymbol<T> produce_next() {
    CodedSymbol<T> cell;
    window_.apply_at(next_index_, cell, Direction::kAdd);
    ++next_index_;
    return cell;
  }

  /// Stream index of the next coded symbol to be produced.
  [[nodiscard]] std::uint64_t next_index() const noexcept {
    return next_index_;
  }

  [[nodiscard]] std::size_t set_size() const noexcept {
    return window_.size();
  }

  [[nodiscard]] const Hasher& hasher() const noexcept { return hasher_; }

  /// Forgets all items and restarts the stream at index 0.
  void reset() noexcept {
    window_.clear();
    next_index_ = 0;
  }

 private:
  Hasher hasher_;
  MappingFactory factory_;
  CodingWindow<T, mapping_type> window_;
  std::uint64_t next_index_ = 0;
};

}  // namespace ribltx
