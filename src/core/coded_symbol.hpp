// Coded symbol: one cell of a (rateless) IBLT.
//
// Format per the paper §3: `sum` (XOR of mapped source symbols), `checksum`
// (XOR of their keyed hashes), `count` (signed number of mapped symbols;
// negative counts appear only in *difference* cells, after subtraction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/symbol.hpp"

namespace ribltx {

/// Direction in which a source symbol is applied to a cell. XOR is its own
/// inverse, so `sum`/`checksum` updates are identical either way; only
/// `count` distinguishes add from remove.
enum class Direction : std::int64_t {
  kAdd = 1,
  kRemove = -1,
};

/// The opposite direction (add <-> remove).
[[nodiscard]] constexpr Direction invert(Direction dir) noexcept {
  return static_cast<Direction>(-static_cast<std::int64_t>(dir));
}

template <Symbol T>
struct CodedSymbol {
  T sum{};
  std::uint64_t checksum = 0;
  std::int64_t count = 0;

  /// Folds one hashed source symbol into this cell.
  void apply(const HashedSymbol<T>& s, Direction dir) noexcept {
    sum ^= s.symbol;
    checksum ^= s.hash;
    count += static_cast<std::int64_t>(dir);
  }

  /// Cell-wise subtraction (paper §3): IBLT(A) - IBLT(B) = IBLT(A diff B).
  void subtract(const CodedSymbol& other) noexcept {
    sum ^= other.sum;
    checksum ^= other.checksum;
    count -= other.count;
  }

  friend CodedSymbol operator-(CodedSymbol a, const CodedSymbol& b) noexcept {
    a.subtract(b);
    return a;
  }

  /// True iff no source symbol remains in this cell.
  [[nodiscard]] bool is_empty() const noexcept {
    return count == 0 && checksum == 0 && sum == T{};
  }

  /// True iff exactly one source symbol (from either side) remains, verified
  /// by the checksum (paper §3: "pure" cell). `hasher` must be the keyed
  /// hasher both parties agreed on.
  template <typename Hasher>
  [[nodiscard]] bool is_pure(const Hasher& hasher) const noexcept {
    return (count == 1 || count == -1) && hasher(sum) == checksum;
  }

  friend bool operator==(const CodedSymbol&, const CodedSymbol&) = default;
};

/// Cell-wise subtraction over two equal-length contiguous runs:
/// dst[i] -= src[i]. The single tight loop over restrict-qualified pointers
/// is the vectorizable spelling of the subtract loops every sketch family
/// repeats (Sketch, Iblt, StrataEstimator, MetIblt, and the MET arrival
/// path) -- the compiler can fuse the per-cell XOR words across cells
/// instead of reloading `this`/`other` through the member function.
template <Symbol T>
inline void subtract_run(std::span<CodedSymbol<T>> dst,
                         std::span<const CodedSymbol<T>> src) noexcept {
  const std::size_t n = dst.size() < src.size() ? dst.size() : src.size();
  if (dst.data() == src.data()) {
    // Self-subtraction zeroes every cell; the restrict-qualified fast path
    // below would be UB for aliasing arguments.
    for (std::size_t i = 0; i < n; ++i) dst[i] = CodedSymbol<T>{};
    return;
  }
  CodedSymbol<T>* __restrict__ d = dst.data();
  const CodedSymbol<T>* __restrict__ s = src.data();
  for (std::size_t i = 0; i < n; ++i) d[i].subtract(s[i]);
}

}  // namespace ribltx
