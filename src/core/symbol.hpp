// Source-symbol model for Rateless IBLT.
//
// The paper (§2) reconciles sets of fixed-length bit strings. A source
// symbol type must form a group under XOR (so coded-symbol sums cancel,
// §3) and expose its bytes for keyed hashing (§4.3). `ByteSymbol<N>` is the
// canonical fixed-length implementation; `U64Symbol` (= ByteSymbol<8>) is
// the fast path used in the paper's compute benchmarks.
#pragma once

#include <array>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "common/rng.hpp"
#include "common/siphash.hpp"

namespace ribltx {

/// A set item: regular (copyable, equality-comparable), XOR-composable, and
/// hashable through a byte view. `T{}` must be the XOR identity (all zeros).
template <typename T>
concept Symbol = std::regular<T> && requires(T a, const T b) {
  { a ^= b } -> std::same_as<T&>;
  { b.bytes() } -> std::convertible_to<std::span<const std::byte>>;
};

/// Fixed-length byte-string symbol. N is the item length in bytes (the
/// paper's l). Value-initialized instances are all-zero (the XOR identity).
template <std::size_t N>
struct ByteSymbol {
  static constexpr std::size_t kSize = N;

  std::array<std::byte, N> data{};

  ByteSymbol& operator^=(const ByteSymbol& other) noexcept {
    // Word-wise XOR; the tail is handled byte-wise. The compiler vectorizes
    // the main loop, which dominates cost for large items (paper Fig 11).
    std::size_t i = 0;
    for (; i + 8 <= N; i += 8) {
      std::uint64_t a, b;
      std::memcpy(&a, data.data() + i, 8);
      std::memcpy(&b, other.data.data() + i, 8);
      a ^= b;
      std::memcpy(data.data() + i, &a, 8);
    }
    for (; i < N; ++i) data[i] ^= other.data[i];
    return *this;
  }

  friend ByteSymbol operator^(ByteSymbol a, const ByteSymbol& b) noexcept {
    a ^= b;
    return a;
  }

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return data;
  }

  [[nodiscard]] bool is_zero() const noexcept {
    for (std::byte b : data) {
      if (b != std::byte{0}) return false;
    }
    return true;
  }

  friend bool operator==(const ByteSymbol&, const ByteSymbol&) = default;
  friend auto operator<=>(const ByteSymbol&, const ByteSymbol&) = default;

  /// Builds a symbol whose first 8 bytes encode `v` little-endian; handy for
  /// tests and workload generators. For N < 8 the value is truncated.
  [[nodiscard]] static ByteSymbol from_u64(std::uint64_t v) noexcept {
    ByteSymbol s;
    for (std::size_t i = 0; i < N && i < 8; ++i) {
      s.data[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
    }
    return s;
  }

  /// Deterministically fills all N bytes from a 64-bit seed (SplitMix64
  /// stream), so large items have full-entropy content.
  [[nodiscard]] static ByteSymbol random(std::uint64_t seed) noexcept {
    ByteSymbol s;
    SplitMix64 rng(seed);
    std::size_t i = 0;
    for (; i + 8 <= N; i += 8) {
      const std::uint64_t w = rng.next();
      std::memcpy(s.data.data() + i, &w, 8);
    }
    if (i < N) {
      const std::uint64_t w = rng.next();
      std::memcpy(s.data.data() + i, &w, N - i);
    }
    return s;
  }
};

/// 8-byte symbol: the item size used for the paper's computation benchmarks
/// (§7.2 fixes 8 bytes, the largest size minisketch supports).
using U64Symbol = ByteSymbol<8>;

/// 32-byte symbol: the SHA256-sized keys used in the paper's communication
/// benchmarks (§7.1).
using Hash256Symbol = ByteSymbol<32>;

/// A source symbol paired with its keyed 64-bit hash. The hash doubles as
/// the checksum contribution and the seed of the index mapping (§4.2).
template <Symbol T>
struct HashedSymbol {
  T symbol{};
  std::uint64_t hash = 0;

  friend bool operator==(const HashedSymbol&, const HashedSymbol&) = default;
};

/// Keyed symbol hasher (SipHash-2-4, §4.3). The default key is all-zero;
/// applications facing adversarial workloads must agree on a secret key.
template <Symbol T>
class SipHasher {
 public:
  SipHasher() = default;
  explicit SipHasher(SipKey key) noexcept : key_(key) {}

  [[nodiscard]] std::uint64_t operator()(const T& s) const noexcept {
    return siphash24(key_, s.bytes());
  }

  [[nodiscard]] HashedSymbol<T> hashed(const T& s) const noexcept {
    return HashedSymbol<T>{s, (*this)(s)};
  }

  /// Hashes four symbols in one interleaved SipHash pass (bit-identical to
  /// four operator() calls, ~2x the throughput). The decoder's batched
  /// checksum verification detects this method via a concept and falls back
  /// to scalar hashing for hashers that lack it.
  void hash4(const T* const s[kSipHashLanes],
             std::uint64_t out[kSipHashLanes]) const noexcept {
    const std::byte* in[kSipHashLanes] = {
        s[0]->bytes().data(), s[1]->bytes().data(), s[2]->bytes().data(),
        s[3]->bytes().data()};
    siphash24_x4(key_, in, s[0]->bytes().size(), out);
  }

  [[nodiscard]] SipKey key() const noexcept { return key_; }

 private:
  SipKey key_{};
};

}  // namespace ribltx
