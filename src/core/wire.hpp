// Wire format for sketches and coded-symbol streams.
//
// Implements the paper's count-field compression (§6): the i-th cell of a
// sketch of an N-item set is expected to hold count ~= N * rho(i); only the
// zigzag residual (actual - expected) is stored, as a varint. For the §6
// workload (N = 10^6 items, 10^4 cells) this averages ~1 byte per cell
// instead of a fixed 8. The receiver reconstructs counts from N (in the
// header) and the cell position.
//
// Layout (all integers little-endian; varints are LEB128):
//   header:  magic "RBSK" | version u8 | flags u8 | checksum_len u8 |
//            symbol_len u32 | num_cells uvarint | set_size uvarint
//   cell i:  sum (symbol_len bytes) | checksum (checksum_len bytes) |
//            svarint(count - round(set_size * rho(i)))      [flags bit 0]
//
// flags bit 0: counts present. The paper notes the peeling decoder never
// reads count when reconciling (only the sign classification needs it);
// count-less sketches save the residual byte at the cost of not telling
// remote from local items.
// checksum_len: 8 by default; 4 is enough for differences up to tens of
// thousands (§7.1 "Scalability"), halving per-cell fixed overhead for small
// items.
#pragma once

#include <cstdint>
#include <cstring>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/bytes.hpp"
#include "core/sketch.hpp"

namespace ribltx::wire {

inline constexpr std::uint32_t kMagic = 0x4b534252;  // "RBSK"
inline constexpr std::uint8_t kVersion = 1;

inline constexpr std::uint8_t kFlagHasCounts = 0x01;

struct SketchWireOptions {
  bool include_counts = true;
  std::uint8_t checksum_len = 8;  ///< 4 or 8 bytes on the wire
};

/// Expected count of cell i for an N-item set under rho(i) = 1/(1 + i/2).
[[nodiscard]] inline std::int64_t expected_count(std::uint64_t set_size,
                                                 std::uint64_t i) noexcept {
  return static_cast<std::int64_t>(
      std::llround(static_cast<double>(set_size) /
                   (1.0 + 0.5 * static_cast<double>(i))));
}

/// Serializes a sketch built over `set_size` items. `set_size` must be the
/// number of items currently encoded (it anchors count reconstruction).
template <Symbol T, typename Hasher, typename MappingFactory>
[[nodiscard]] std::vector<std::byte> serialize_sketch(
    const Sketch<T, Hasher, MappingFactory>& sketch, std::uint64_t set_size,
    SketchWireOptions opts = {}) {
  if (opts.checksum_len != 4 && opts.checksum_len != 8) {
    throw std::invalid_argument("serialize_sketch: checksum_len must be 4 or 8");
  }
  ByteWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(opts.include_counts ? kFlagHasCounts : 0);
  w.u8(opts.checksum_len);
  w.u32(static_cast<std::uint32_t>(T::kSize));
  w.uvarint(sketch.size());
  w.uvarint(set_size);
  std::uint64_t i = 0;
  for (const auto& cell : sketch.cells()) {
    w.bytes(cell.sum.bytes());
    if (opts.checksum_len == 8) {
      w.u64(cell.checksum);
    } else {
      w.u32(static_cast<std::uint32_t>(cell.checksum));
    }
    if (opts.include_counts) {
      w.svarint(cell.count - expected_count(set_size, i));
    }
    ++i;
  }
  return std::move(w).take();
}

/// Parsed sketch plus the metadata needed to interpret it.
template <Symbol T>
struct ParsedSketch {
  std::vector<CodedSymbol<T>> cells;
  std::uint64_t set_size = 0;
  bool has_counts = false;
  std::uint8_t checksum_len = 8;
};

/// Parses a serialized sketch. Throws std::invalid_argument on malformed
/// input (bad magic/version/symbol size) and std::out_of_range on
/// truncation.
template <Symbol T>
[[nodiscard]] ParsedSketch<T> parse_sketch(std::span<const std::byte> data) {
  ByteReader r(data);
  if (r.u32() != kMagic) throw std::invalid_argument("sketch: bad magic");
  if (r.u8() != kVersion) throw std::invalid_argument("sketch: bad version");
  const std::uint8_t flags = r.u8();
  const std::uint8_t checksum_len = r.u8();
  if (checksum_len != 4 && checksum_len != 8) {
    throw std::invalid_argument("sketch: bad checksum length");
  }
  const std::uint32_t symbol_len = r.u32();
  if (symbol_len != T::kSize) {
    throw std::invalid_argument("sketch: symbol size mismatch");
  }
  const std::uint64_t num_cells = r.uvarint();
  const std::uint64_t set_size = r.uvarint();
  // Every cell occupies at least sum + checksum (+1 residual byte when
  // counts are present); a claimed cell count beyond what the frame can
  // possibly hold is rejected before any allocation, so a hostile header
  // cannot trigger a huge resize.
  const std::size_t min_cell =
      T::kSize + checksum_len + ((flags & kFlagHasCounts) ? 1 : 0);
  if (num_cells > r.remaining() / min_cell) {
    throw std::out_of_range("sketch: num_cells exceeds frame size");
  }

  ParsedSketch<T> out;
  out.set_size = set_size;
  out.has_counts = (flags & kFlagHasCounts) != 0;
  out.checksum_len = checksum_len;
  out.cells.resize(num_cells);
  for (std::uint64_t i = 0; i < num_cells; ++i) {
    CodedSymbol<T>& cell = out.cells[static_cast<std::size_t>(i)];
    r.copy_to(cell.sum.data.data(), T::kSize);
    cell.checksum = (checksum_len == 8) ? r.u64() : r.u32();
    cell.count = out.has_counts ? r.svarint() + expected_count(set_size, i)
                                : 0;
  }
  return out;
}

/// The checksum-compare mask for a wire checksum width. The single source
/// of the width contract: throws std::invalid_argument for anything but 4
/// or 8, and yields the mask Decoder::set_checksum_mask expects.
[[nodiscard]] inline std::uint64_t checksum_mask(std::uint8_t checksum_len) {
  if (checksum_len == 8) return ~std::uint64_t{0};
  if (checksum_len == 4) return 0xffffffffULL;
  throw std::invalid_argument("checksum width must be 4 or 8");
}

/// Bytes a single streamed coded symbol occupies on the wire (stream frames
/// have no count residual anchor, so counts ride as plain svarints).
template <Symbol T>
[[nodiscard]] std::size_t
streamed_symbol_size(const CodedSymbol<T>& cell, std::uint8_t checksum_len = 8) {
  return T::kSize + checksum_len + uvarint_size(zigzag_encode(cell.count));
}

/// Serializes one coded symbol as a stream frame.
template <Symbol T>
void write_stream_symbol(ByteWriter& w, const CodedSymbol<T>& cell,
                         std::uint8_t checksum_len = 8) {
  w.bytes(cell.sum.bytes());
  if (checksum_len == 8) {
    w.u64(cell.checksum);
  } else {
    w.u32(static_cast<std::uint32_t>(cell.checksum));
  }
  w.svarint(cell.count);
}

/// Parses one coded symbol written by write_stream_symbol.
template <Symbol T>
[[nodiscard]] CodedSymbol<T> read_stream_symbol(ByteReader& r,
                                                std::uint8_t checksum_len = 8) {
  CodedSymbol<T> cell;
  r.copy_to(cell.sum.data.data(), T::kSize);
  cell.checksum = (checksum_len == 8) ? r.u64() : r.u32();
  cell.count = r.svarint();
  return cell;
}

/// Serializes one stream symbol with the §6 count compression: the count
/// rides as a residual against `anchor_set_size * rho(stream_index)`. Both
/// ends must share the anchor (the v2 engine negotiates it in HELLO/ACK,
/// pinned to the serving SequenceCache's snapshot set_size) and the
/// absolute stream index (implicit: symbols are consumed in stream order).
template <Symbol T>
void write_stream_symbol_residual(ByteWriter& w, const CodedSymbol<T>& cell,
                                  std::uint8_t checksum_len,
                                  std::uint64_t anchor_set_size,
                                  std::uint64_t stream_index) {
  w.bytes(cell.sum.bytes());
  if (checksum_len == 8) {
    w.u64(cell.checksum);
  } else {
    w.u32(static_cast<std::uint32_t>(cell.checksum));
  }
  w.svarint(cell.count - expected_count(anchor_set_size, stream_index));
}

/// Parses one stream symbol written by write_stream_symbol_residual.
template <Symbol T>
[[nodiscard]] CodedSymbol<T> read_stream_symbol_residual(
    ByteReader& r, std::uint8_t checksum_len, std::uint64_t anchor_set_size,
    std::uint64_t stream_index) {
  CodedSymbol<T> cell;
  r.copy_to(cell.sum.data.data(), T::kSize);
  cell.checksum = (checksum_len == 8) ? r.u64() : r.u32();
  cell.count = r.svarint() + expected_count(anchor_set_size, stream_index);
  return cell;
}

}  // namespace ribltx::wire
