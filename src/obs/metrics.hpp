// Process-wide metrics substrate: lock-free counters, gauges, and
// log-linear (HdrHistogram-style) histograms behind a named registry.
//
// Design constraints, in order:
//
//   * record() is O(1) and purely relaxed-atomic -- safe from shard
//     workers, SequenceCache writer lanes, and the uring serving thread
//     without ever taking a lock or fencing the caller. A histogram
//     record is exactly three relaxed fetch_adds (bucket, count, sum).
//   * Handles are stable raw pointers: registration (mutexed, slow) is
//     done once at wiring time; the hot path never touches the registry.
//   * Scrapes never stop the world: a snapshot is a plain relaxed walk
//     of the cells. See "Snapshot consistency" below for exactly what
//     that buys -- and what it does not.
//
// Snapshot consistency model (the contract every scrape-facing surface
// in this tree documents against, including SocketServerStats and
// ShardedEngine's EngineTotals roll-up):
//
//   * Each individual cell (one counter, one gauge, one histogram
//     bucket) is a single 64-bit atomic: a snapshot of it is always a
//     real value some record() produced -- never torn mid-word.
//   * CROSS-cell invariants may transiently not hold in a snapshot
//     taken while writers run: a histogram's `count` can differ from
//     the sum of its buckets by the handful of records in flight, and
//     two counters bumped by the same code path can be off by a few
//     events from each other. Quantiles therefore rank against the sum
//     of the snapshotted buckets, not the count cell.
//   * Counters and histogram cells are monotone, so two successive
//     snapshots bracket the truth: anything that happened before the
//     first is in both, anything after the second is in neither.
//
// This is deliberately the weakest model that is still useful: making a
// scrape linearizable would put a barrier (or a seqlock retry loop) on
// every record() -- the exact cost this subsystem exists to avoid.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ribltx::obs {

/// Label set of one time series ((key, value) pairs, order-significant
/// at registration; the registry sorts them so lookups are order-blind).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event counter on its own cache line (shard workers and the
/// serving thread bump disjoint counters without false sharing).
struct alignas(64) Counter {
  std::atomic<std::uint64_t> v{0};

  void inc(std::uint64_t d = 1) noexcept {
    v.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t load() const noexcept {
    return v.load(std::memory_order_relaxed);
  }
};

/// Instantaneous signed level (queue depths, live session counts).
struct alignas(64) Gauge {
  std::atomic<std::int64_t> v{0};

  void set(std::int64_t x) noexcept {
    v.store(x, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t load() const noexcept {
    return v.load(std::memory_order_relaxed);
  }
};

/// Log-linear bucket geometry shared by Histogram and its snapshots:
/// values below kSub get unit-width buckets; above, each power-of-two
/// octave splits into kSub linear sub-buckets, so the relative width of
/// any bucket is at most 1/kSub (3.125%) of its lower bound. Covers the
/// full uint64 range in kBucketCount buckets -- callers record ns, us,
/// bytes, or plain counts and the geometry is unit-agnostic.
struct HistogramLayout {
  static constexpr std::uint32_t kSubBits = 5;
  static constexpr std::uint64_t kSub = 1ull << kSubBits;  // 32
  static constexpr std::size_t kBucketCount =
      (64 - kSubBits + 1) * static_cast<std::size_t>(kSub);  // 1920

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int e = 63 - std::countl_zero(v);  // floor(log2 v) >= kSubBits
    const std::uint64_t sub =
        (v >> (static_cast<std::uint32_t>(e) - kSubBits)) & (kSub - 1);
    return (static_cast<std::size_t>(e) - (kSubBits - 1)) * kSub +
           static_cast<std::size_t>(sub);
  }

  /// Smallest value that lands in bucket `idx`.
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t idx) noexcept {
    if (idx < kSub) return idx;
    const std::uint32_t e =
        static_cast<std::uint32_t>(idx / kSub) + (kSubBits - 1);
    const std::uint64_t sub = idx % kSub;
    return (kSub + sub) << (e - kSubBits);
  }

  /// One past the largest value in bucket `idx` (saturates at the top).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t idx) noexcept {
    if (idx + 1 >= kBucketCount) return ~0ull;
    return bucket_lower(idx + 1);
  }
};

/// Read-side copy of one histogram. Also the merge algebra: merging two
/// snapshots is bucket-wise addition, so merge(snapshot(a), snapshot(b))
/// equals snapshot of a histogram that recorded both streams -- the
/// property test in tests/test_obs.cpp pins this.
struct HistogramSnapshot : HistogramLayout {
  std::vector<std::uint64_t> buckets;  ///< size kBucketCount (or empty)
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void merge(const HistogramSnapshot& o) {
    if (o.buckets.empty()) {
      count += o.count;
      sum += o.sum;
      return;
    }
    if (buckets.empty()) buckets.assign(kBucketCount, 0);
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      buckets[i] += o.buckets[i];
    }
    count += o.count;
    sum += o.sum;
  }

  /// Total events actually visible in the bucket cells. Under concurrent
  /// record() this can trail `count` by the in-flight handful (see the
  /// consistency model above); ranking quantiles against it keeps them
  /// internally consistent with the buckets they walk.
  [[nodiscard]] std::uint64_t bucket_total() const noexcept {
    std::uint64_t t = 0;
    for (const std::uint64_t b : buckets) t += b;
    return t;
  }

  /// Quantile estimate: the representative value of the bucket holding
  /// the rank-q sample (width-1 buckets are exact; wider buckets return
  /// their midpoint, so the error is at most half the bucket width --
  /// a relative error <= 1/(2*kSub) + rounding of the true value).
  /// Rank convention matches the benches' sorted-vector percentile:
  /// index round(q * (n - 1)) of the sorted samples.
  [[nodiscard]] double quantile(double q) const noexcept {
    const std::uint64_t total = bucket_total();
    if (total == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total - 1) + 0.5);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      cum += buckets[i];
      if (cum > rank) return representative(i);
    }
    return representative(buckets.size() - 1);
  }

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  [[nodiscard]] static double representative(std::size_t idx) noexcept {
    const std::uint64_t lo = bucket_lower(idx);
    const std::uint64_t hi = bucket_upper(idx);
    if (hi - lo <= 1) return static_cast<double>(lo);
    return (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
  }
};

/// Write-side histogram: a flat array of relaxed atomic bucket cells.
/// The bucket array is NOT per-bucket padded -- concurrent recorders of
/// similar values do share lines, but a record is one fetch_add per
/// cell and the workloads here (timings, sizes) spread across octaves;
/// the count/sum pair gets its own line so every record's two common
/// cells never contend with an unrelated histogram.
class Histogram : public HistogramLayout {
 public:
  Histogram() : buckets_(new std::atomic<std::uint64_t>[kBucketCount]) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      buckets_[i].store(0, std::memory_order_relaxed);
    }
  }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// O(1), three relaxed fetch_adds, no branches past the bucket math.
  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    s.buckets.resize(kBucketCount);
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  /// count/sum share one dedicated line: the same record() bumps both,
  /// and nothing else lives there to false-share with.
  alignas(64) std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Point-in-time copy of every registered series, grouped by family.
/// Render with prometheus_text() / json() (src/obs/prom.hpp holds the
/// format helpers; this struct is the data they consume).
struct MetricsSnapshot {
  struct Series {
    Labels labels;
    std::uint64_t counter = 0;  ///< kCounter
    std::int64_t gauge = 0;     ///< kGauge
    HistogramSnapshot hist;     ///< kHistogram
  };
  struct Family {
    std::string name;
    std::string help;
    MetricKind kind{};
    std::vector<Series> series;
  };
  std::vector<Family> families;

  [[nodiscard]] const Family* find(std::string_view name) const noexcept {
    for (const Family& f : families) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }

  /// Appends a counter sample to the snapshot (creating the family on
  /// first use): how the transport and engine tiers expose their
  /// existing stats structs as thin views at scrape time without
  /// re-homing every hot atomic into the registry.
  void add_counter(std::string_view name, std::string_view help,
                   std::uint64_t value, Labels labels = {}) {
    Series s;
    s.labels = std::move(labels);
    s.counter = value;
    family(name, help, MetricKind::kCounter).series.push_back(std::move(s));
  }

  void add_gauge(std::string_view name, std::string_view help,
                 std::int64_t value, Labels labels = {}) {
    Series s;
    s.labels = std::move(labels);
    s.gauge = value;
    family(name, help, MetricKind::kGauge).series.push_back(std::move(s));
  }

  /// First series of `name` whose labels contain every (k, v) in
  /// `subset` (empty subset: the first series). Null when absent.
  [[nodiscard]] const Series* find_series(std::string_view name,
                                          const Labels& subset = {}) const {
    const Family* f = find(name);
    if (f == nullptr) return nullptr;
    for (const Series& s : f->series) {
      bool all = true;
      for (const auto& [k, v] : subset) {
        bool got = false;
        for (const auto& [sk, sv] : s.labels) {
          if (sk == k && sv == v) {
            got = true;
            break;
          }
        }
        if (!got) {
          all = false;
          break;
        }
      }
      if (all) return &s;
    }
    return nullptr;
  }

 private:
  Family& family(std::string_view name, std::string_view help,
                 MetricKind kind) {
    for (Family& f : families) {
      if (f.name == name) return f;
    }
    Family f;
    f.name = std::string(name);
    f.help = std::string(help);
    f.kind = kind;
    families.push_back(std::move(f));
    return families.back();
  }
};

/// Name -> series registry. Registration is mutexed and dedupes on
/// (name, sorted labels) -- asking twice returns the same handle, which
/// is what lets K shard engines share one set of process-wide cells.
/// Handles are valid for the registry's lifetime (deque storage: no
/// reallocation ever moves a cell).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {}) {
    return *static_cast<Counter*>(
        series(name, help, MetricKind::kCounter, std::move(labels)));
  }

  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {}) {
    return *static_cast<Gauge*>(
        series(name, help, MetricKind::kGauge, std::move(labels)));
  }

  Histogram& histogram(std::string_view name, std::string_view help,
                       Labels labels = {}) {
    return *static_cast<Histogram*>(
        series(name, help, MetricKind::kHistogram, std::move(labels)));
  }

  /// Relaxed walk of every cell; see the consistency model above.
  [[nodiscard]] MetricsSnapshot snapshot() const {
    const std::lock_guard<std::mutex> lk(mu_);
    MetricsSnapshot out;
    out.families.reserve(families_.size());
    for (const auto& [name, fam] : families_) {
      MetricsSnapshot::Family f;
      f.name = name;
      f.help = fam.help;
      f.kind = fam.kind;
      f.series.reserve(fam.series.size());
      for (const SeriesCell& cell : fam.series) {
        MetricsSnapshot::Series s;
        s.labels = cell.labels;
        switch (fam.kind) {
          case MetricKind::kCounter:
            s.counter = cell.counter->load();
            break;
          case MetricKind::kGauge:
            s.gauge = cell.gauge->load();
            break;
          case MetricKind::kHistogram:
            s.hist = cell.hist->snapshot();
            break;
        }
        f.series.push_back(std::move(s));
      }
      out.families.push_back(std::move(f));
    }
    return out;
  }

 private:
  struct SeriesCell {
    Labels labels;  ///< sorted by key
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
  };
  struct Family {
    std::string help;
    MetricKind kind{};
    std::deque<SeriesCell> series;
  };

  [[nodiscard]] static bool valid_name(std::string_view n) noexcept {
    if (n.empty()) return false;
    auto head = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
             c == ':';
    };
    if (!head(n[0])) return false;
    for (const char c : n.substr(1)) {
      if (!head(c) && !(c >= '0' && c <= '9')) return false;
    }
    return true;
  }

  void* series(std::string_view name, std::string_view help, MetricKind kind,
               Labels labels) {
    if (!valid_name(name)) {
      throw std::invalid_argument("obs: invalid metric name: " +
                                  std::string(name));
    }
    for (const auto& [k, v] : labels) {
      if (!valid_name(k)) {
        throw std::invalid_argument("obs: invalid label name: " + k);
      }
      (void)v;
    }
    std::sort(labels.begin(), labels.end());
    const std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = families_.try_emplace(std::string(name));
    Family& fam = it->second;
    if (inserted) {
      fam.help = std::string(help);
      fam.kind = kind;
    } else if (fam.kind != kind) {
      throw std::invalid_argument("obs: metric re-registered as a "
                                  "different kind: " +
                                  std::string(name));
    }
    for (SeriesCell& cell : fam.series) {
      if (cell.labels == labels) return cell_ptr(fam.kind, cell);
    }
    SeriesCell cell;
    cell.labels = std::move(labels);
    switch (kind) {
      case MetricKind::kCounter:
        cell.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        cell.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        cell.hist = std::make_unique<Histogram>();
        break;
    }
    fam.series.push_back(std::move(cell));
    return cell_ptr(kind, fam.series.back());
  }

  [[nodiscard]] static void* cell_ptr(MetricKind kind,
                                      SeriesCell& cell) noexcept {
    switch (kind) {
      case MetricKind::kCounter: return cell.counter.get();
      case MetricKind::kGauge: return cell.gauge.get();
      case MetricKind::kHistogram: return cell.hist.get();
    }
    return nullptr;
  }

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;  ///< ordered -> stable render
};

}  // namespace ribltx::obs
