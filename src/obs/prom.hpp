// Prometheus text exposition (0.0.4) and JSON rendering for
// MetricsSnapshot, plus PromWriter -- the low-level line writer the
// servers use to expose their existing stats structs as thin views
// without re-homing every atomic into the registry -- and an in-tree
// exposition-format lint (the ctest target test_promlint runs live
// scrape output through it).
//
// Histogram rendering emits cumulative `le` buckets only at boundaries
// that end a nonzero bucket (plus +Inf). Dropping empty boundaries is
// format-legal -- cumulative buckets stay cumulative under any boundary
// subset; it just coarsens the histogram -- and keeps a 1920-bucket
// log-linear histogram from producing 1920 lines per scrape.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace ribltx::obs {

/// Formats a double the way the exposition format expects (no
/// locale, shortest-ish round-trip form).
[[nodiscard]] inline std::string prom_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Escapes a label value (backslash, quote, newline).
[[nodiscard]] inline std::string prom_escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Line-level writer for the text exposition format. Families must be
/// written contiguously (help/type once, then every sample); the
/// registry snapshot renderer below does that, and hand-written views
/// (SocketServer stats, EngineTotals) follow the same discipline.
class PromWriter {
 public:
  void help(std::string_view name, std::string_view text) {
    out_ += "# HELP ";
    out_ += name;
    out_ += ' ';
    out_ += text;
    out_ += '\n';
  }

  void type(std::string_view name, std::string_view kind) {
    out_ += "# TYPE ";
    out_ += name;
    out_ += ' ';
    out_ += kind;
    out_ += '\n';
  }

  void sample(std::string_view name, const Labels& labels,
              std::uint64_t value) {
    sample_prefix(name, labels, {});
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out_ += buf;
    out_ += '\n';
  }

  void sample(std::string_view name, const Labels& labels,
              std::int64_t value) {
    sample_prefix(name, labels, {});
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, value);
    out_ += buf;
    out_ += '\n';
  }

  void sample(std::string_view name, const Labels& labels, double value) {
    sample_prefix(name, labels, {});
    out_ += prom_double(value);
    out_ += '\n';
  }

  /// One cumulative histogram bucket line: name_bucket{...,le="<le>"}.
  void bucket(std::string_view name, const Labels& labels,
              std::string_view le, std::uint64_t cumulative) {
    std::string n(name);
    n += "_bucket";
    sample_prefix(n, labels, le);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, cumulative);
    out_ += buf;
    out_ += '\n';
  }

  [[nodiscard]] std::string take() && { return std::move(out_); }
  [[nodiscard]] const std::string& text() const noexcept { return out_; }

 private:
  void sample_prefix(std::string_view name, const Labels& labels,
                     std::string_view le) {
    out_ += name;
    if (!labels.empty() || !le.empty()) {
      out_ += '{';
      bool first = true;
      for (const auto& [k, v] : labels) {
        if (!first) out_ += ',';
        first = false;
        out_ += k;
        out_ += "=\"";
        out_ += prom_escape(v);
        out_ += '"';
      }
      if (!le.empty()) {
        if (!first) out_ += ',';
        out_ += "le=\"";
        out_ += le;
        out_ += '"';
      }
      out_ += '}';
    }
    out_ += ' ';
  }

  std::string out_;
};

/// Renders one histogram snapshot as a family sample set (bucket lines,
/// _sum, _count). `count` is rendered as the bucket total so the +Inf
/// bucket always equals _count even when the snapshot raced writers.
inline void write_histogram(PromWriter& w, std::string_view name,
                            const Labels& labels,
                            const HistogramSnapshot& h) {
  const std::uint64_t total = h.bucket_total();
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    cum += h.buckets[i];
    // Prometheus `le` is an INCLUSIVE upper bound, while bucket_upper
    // is one past the largest contained value; recorded values are
    // integers, so the largest value counted by this bucket is
    // upper - 1 (the top bucket saturates: its upper IS its largest).
    const std::uint64_t upper = HistogramLayout::bucket_upper(i);
    const std::uint64_t le_value = upper == ~0ull ? upper : upper - 1;
    char le[32];
    std::snprintf(le, sizeof le, "%" PRIu64, le_value);
    w.bucket(name, labels, le, cum);
  }
  w.bucket(name, labels, "+Inf", total);
  std::string n(name);
  w.sample(n + "_sum", labels, h.sum);
  w.sample(n + "_count", labels, total);
}

/// Full text exposition of a registry snapshot.
[[nodiscard]] inline std::string prometheus_text(const MetricsSnapshot& s) {
  PromWriter w;
  for (const auto& f : s.families) {
    if (!f.help.empty()) w.help(f.name, f.help);
    switch (f.kind) {
      case MetricKind::kCounter:
        w.type(f.name, "counter");
        for (const auto& series : f.series) {
          w.sample(f.name, series.labels, series.counter);
        }
        break;
      case MetricKind::kGauge:
        w.type(f.name, "gauge");
        for (const auto& series : f.series) {
          w.sample(f.name, series.labels, series.gauge);
        }
        break;
      case MetricKind::kHistogram:
        w.type(f.name, "histogram");
        for (const auto& series : f.series) {
          write_histogram(w, f.name, series.labels, series.hist);
        }
        break;
    }
  }
  return std::move(w).take();
}

// --------------------------------------------------------------- JSON

[[nodiscard]] inline std::string json_escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON rendering of a snapshot: the machine-readable twin of the text
/// exposition (benches consume this for their BENCH_*.json rows, and
/// the METRICS_JSON admin verb returns it). Histograms carry count,
/// sum, and the standard quantiles; buckets are (upper_bound, count)
/// pairs for the nonzero buckets only.
[[nodiscard]] inline std::string json_text(const MetricsSnapshot& s) {
  std::string out = "{\"metrics\":[";
  bool first_m = true;
  for (const auto& f : s.families) {
    for (const auto& series : f.series) {
      if (!first_m) out += ',';
      first_m = false;
      out += "{\"name\":\"" + json_escape(f.name) + "\"";
      if (!series.labels.empty()) {
        out += ",\"labels\":{";
        bool first_l = true;
        for (const auto& [k, v] : series.labels) {
          if (!first_l) out += ',';
          first_l = false;
          out += '"' + json_escape(k) + "\":\"" + json_escape(v) + '"';
        }
        out += '}';
      }
      char buf[64];
      switch (f.kind) {
        case MetricKind::kCounter:
          out += ",\"type\":\"counter\",\"value\":";
          std::snprintf(buf, sizeof buf, "%" PRIu64, series.counter);
          out += buf;
          break;
        case MetricKind::kGauge:
          out += ",\"type\":\"gauge\",\"value\":";
          std::snprintf(buf, sizeof buf, "%" PRId64, series.gauge);
          out += buf;
          break;
        case MetricKind::kHistogram: {
          const HistogramSnapshot& h = series.hist;
          out += ",\"type\":\"histogram\"";
          std::snprintf(buf, sizeof buf, ",\"count\":%" PRIu64,
                        h.bucket_total());
          out += buf;
          std::snprintf(buf, sizeof buf, ",\"sum\":%" PRIu64, h.sum);
          out += buf;
          out += ",\"p50\":" + prom_double(h.quantile(0.50));
          out += ",\"p90\":" + prom_double(h.quantile(0.90));
          out += ",\"p99\":" + prom_double(h.quantile(0.99));
          out += ",\"buckets\":[";
          bool first_b = true;
          for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            if (h.buckets[i] == 0) continue;
            if (!first_b) out += ',';
            first_b = false;
            std::snprintf(buf, sizeof buf, "[%" PRIu64 ",%" PRIu64 "]",
                          HistogramLayout::bucket_upper(i), h.buckets[i]);
            out += buf;
          }
          out += ']';
          break;
        }
      }
      out += '}';
    }
  }
  out += "]}";
  return out;
}

// --------------------------------------------------- exposition lint

/// Validates Prometheus text-format output. Returns an empty string on
/// success, else a one-line diagnostic naming the first offending line.
/// Checks, per the 0.0.4 exposition format:
///   * every line is a # HELP / # TYPE comment, blank, or a sample
///     `name{labels} value` with a legal metric name and float value;
///   * a family's # TYPE precedes its samples and is declared once;
///   * histogram bucket series are cumulative (non-decreasing in file
///     order), end with le="+Inf", and the +Inf bucket equals _count.
[[nodiscard]] inline std::string lint_prometheus(std::string_view text) {
  auto is_name = [](std::string_view n) {
    if (n.empty()) return false;
    auto head = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
             c == ':';
    };
    if (!head(n[0])) return false;
    for (const char c : n.substr(1)) {
      if (!head(c) && !(c >= '0' && c <= '9')) return false;
    }
    return true;
  };
  auto fail = [](std::size_t lineno, const std::string& why,
                 std::string_view line) {
    return "line " + std::to_string(lineno) + ": " + why + ": " +
           std::string(line.substr(0, 120));
  };
  /// Family name of a sample: strip the histogram suffixes.
  auto family_of = [](std::string_view name) {
    for (const std::string_view suffix :
         {"_bucket", "_sum", "_count", "_total"}) {
      if (name.size() > suffix.size() &&
          name.substr(name.size() - suffix.size()) == suffix) {
        return std::string(name.substr(0, name.size() - suffix.size()));
      }
    }
    return std::string(name);
  };

  std::map<std::string, std::string> declared;  ///< family -> type
  /// Per (family + labels-minus-le) histogram bucket state.
  struct BucketRun {
    std::uint64_t last = 0;
    bool inf_seen = false;
    std::uint64_t inf_value = 0;
  };
  std::map<std::string, BucketRun> buckets;
  std::map<std::string, std::uint64_t> counts;  ///< family+labels -> _count

  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // # HELP name text | # TYPE name kind
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
        return fail(lineno, "unknown comment form", line);
      }
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      std::string_view rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      const std::string_view name =
          sp == std::string_view::npos ? rest : rest.substr(0, sp);
      if (!is_name(name)) return fail(lineno, "bad metric name", line);
      if (is_type) {
        const std::string_view kind =
            sp == std::string_view::npos ? "" : rest.substr(sp + 1);
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped") {
          return fail(lineno, "bad TYPE kind", line);
        }
        if (!declared.emplace(std::string(name), std::string(kind)).second) {
          return fail(lineno, "duplicate TYPE for family", line);
        }
      }
      continue;
    }
    // Sample: name[{labels}] value
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    const std::string_view name = line.substr(0, i);
    if (!is_name(name)) return fail(lineno, "bad sample name", line);
    std::string le;
    std::string label_key;
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string_view::npos) {
        return fail(lineno, "unterminated label set", line);
      }
      // Parse k="v" pairs; collect the non-le labels as an identity key
      // and pull out le.
      std::string_view body = line.substr(i + 1, close - i - 1);
      while (!body.empty()) {
        const std::size_t eq = body.find('=');
        if (eq == std::string_view::npos || eq + 1 >= body.size() ||
            body[eq + 1] != '"') {
          return fail(lineno, "malformed label pair", line);
        }
        const std::string_view k = body.substr(0, eq);
        if (!is_name(k)) return fail(lineno, "bad label name", line);
        std::size_t v_end = eq + 2;
        while (v_end < body.size() &&
               !(body[v_end] == '"' && body[v_end - 1] != '\\')) {
          ++v_end;
        }
        if (v_end >= body.size()) {
          return fail(lineno, "unterminated label value", line);
        }
        const std::string_view v = body.substr(eq + 2, v_end - eq - 2);
        if (k == "le") {
          le = std::string(v);
        } else {
          label_key += std::string(k) + "=" + std::string(v) + ";";
        }
        body = body.substr(v_end + 1);
        if (!body.empty()) {
          if (body[0] != ',') return fail(lineno, "missing comma", line);
          body = body.substr(1);
        }
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail(lineno, "missing value separator", line);
    }
    const std::string value_str(line.substr(i + 1));
    char* end = nullptr;
    const double value = std::strtod(value_str.c_str(), &end);
    const bool inf_ok = value_str == "+Inf" || value_str == "-Inf" ||
                        value_str == "NaN";
    if (!inf_ok && (end == value_str.c_str() || *end != '\0')) {
      return fail(lineno, "bad sample value", line);
    }
    // TYPE-before-sample and histogram shape checks.
    const std::string fam = family_of(name);
    const auto decl = declared.find(fam);
    const bool histo = decl != declared.end() && decl->second == "histogram";
    if (histo && name.size() > 7 &&
        name.substr(name.size() - 7) == "_bucket") {
      if (le.empty()) return fail(lineno, "bucket without le", line);
      BucketRun& run = buckets[fam + "{" + label_key + "}"];
      const auto cum = static_cast<std::uint64_t>(value);
      if (cum < run.last) {
        return fail(lineno, "non-cumulative histogram buckets", line);
      }
      run.last = cum;
      if (le == "+Inf") {
        run.inf_seen = true;
        run.inf_value = cum;
      }
    } else if (histo && name.size() > 6 &&
               name.substr(name.size() - 6) == "_count") {
      counts[fam + "{" + label_key + "}"] =
          static_cast<std::uint64_t>(value);
    }
  }
  for (const auto& [key, run] : buckets) {
    if (!run.inf_seen) return "histogram " + key + " missing +Inf bucket";
    const auto it = counts.find(key);
    if (it == counts.end()) return "histogram " + key + " missing _count";
    if (it->second != run.inf_value) {
      return "histogram " + key + " +Inf bucket != _count";
    }
  }
  return "";
}

}  // namespace ribltx::obs
