// Session-lifecycle tracer: fixed-size POD events written into
// per-thread lock-free ring buffers, exported as chrome://tracing JSON.
//
// Write path: one thread owns each ring (threads self-register on first
// record; registration takes the tracer mutex once per thread per
// tracer, then the ring pointer is cached in a thread_local map keyed
// on the tracer's process-unique id -- never its address, so a tracer
// constructed where a destroyed one lived cannot alias a stale ring,
// and a thread alternating between live tracers reuses one ring per
// tracer). A record is a sequence of relaxed per-field atomic slot
// stores plus a release head bump -- no locks, safe from shard workers
// and the uring serving thread.
//
// Read path (export/snapshot): acquire-loads each ring's head and walks
// the retained window with relaxed per-field atomic loads (no data
// race with a concurrent writer). A writer that laps the reader
// mid-walk can tear the oldest slots; the exporter revalidates head
// after copying and drops every slot the writer could have been
// overwriting during the walk -- including the one slot below the lap
// window that an in-flight record (slot stored, head not yet bumped)
// occupies -- so exported events are always real events (same
// bracketing contract as the metrics snapshot: newest events win,
// oldest may be missing).
//
// Lifetime: rings live as long as the tracer; a Tracer must outlive
// every thread that records into it (the same contract the engines'
// worker threads already have with their owning server).
#pragma once

#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ribltx::obs {

/// What happened to a session (the HELLO -> grant -> rounds ->
/// DONE/ERROR/reap lifecycle of sync/engine.hpp, plus transport taps).
enum class TraceKind : std::uint8_t {
  kOpen,     ///< HELLO accepted; a = d_estimate, b = pace_cap
  kRound,    ///< round escalation honored; a = rounds so far
  kCredit,   ///< pacing credit received; a = credits so far
  kDone,     ///< client DONE; a = bytes_to_peer, b = bytes_from_peer
  kError,    ///< contained failure; a = bytes_to_peer, b = bytes_from_peer
  kReap,     ///< idle-reaped; a = bytes_to_peer
  kEvict,    ///< shed at the session cap; a = bytes_to_peer
  kClose,    ///< retired from the table; a = bytes_to_peer, b = rounds
};

[[nodiscard]] constexpr const char* trace_kind_name(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kOpen: return "session_open";
    case TraceKind::kRound: return "round";
    case TraceKind::kCredit: return "credit";
    case TraceKind::kDone: return "done";
    case TraceKind::kError: return "error";
    case TraceKind::kReap: return "reap";
    case TraceKind::kEvict: return "evict";
    case TraceKind::kClose: return "close";
  }
  return "unknown";
}

/// One span event. POD; ts_s is whatever clock the recording tier uses
/// (engines pass their EngineOptions clock, so simulated harnesses
/// trace in simulated time).
struct TraceEvent {
  double ts_s = 0;
  std::uint64_t session_id = 0;
  std::uint64_t a = 0;  ///< kind-specific, see TraceKind
  std::uint64_t b = 0;  ///< kind-specific, see TraceKind
  TraceKind kind{};
  std::uint8_t backend = 0;  ///< sync::BackendId wire id (0 = n/a)
};

class Tracer {
 public:
  /// `capacity` events are retained per recording thread (newest win).
  explicit Tracer(std::size_t capacity = 4096)
      : capacity_(capacity < 2 ? 2 : capacity), id_(next_tracer_id()) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Lock-free after the first call per thread (the first call per
  /// thread registers its ring under the tracer mutex).
  void record(const TraceEvent& ev) {
    Ring& r = ring_for_thread();
    const std::uint64_t h = r.head.load(std::memory_order_relaxed);
    store_slot(r.slots[static_cast<std::size_t>(h % capacity_)], ev);
    r.head.store(h + 1, std::memory_order_release);
  }

  /// Copies every retained event, oldest first per ring. Slots a writer
  /// may have overwritten during the copy are dropped (see file header).
  [[nodiscard]] std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    std::vector<Ring*> rings;
    {
      const std::lock_guard<std::mutex> lk(mu_);
      rings.reserve(rings_.size());
      for (const auto& r : rings_) rings.push_back(r.get());
    }
    for (std::size_t tid = 0; tid < rings.size(); ++tid) {
      Ring& r = *rings[tid];
      const std::uint64_t head = r.head.load(std::memory_order_acquire);
      const std::uint64_t lo = head > capacity_ ? head - capacity_ : 0;
      std::vector<TraceEvent> window;
      window.reserve(static_cast<std::size_t>(head - lo));
      for (std::uint64_t i = lo; i < head; ++i) {
        window.push_back(load_slot(r.slots[static_cast<std::size_t>(i % capacity_)]));
      }
      // Drop the prefix a concurrent writer could have lapped while we
      // copied: only slots >= the post-copy overwrite floor are surely
      // intact copies of real events. The floor is one above the lap
      // window because a record in flight at head2 has already stored
      // into slot head2 % capacity -- the same physical slot as logical
      // index head2 - capacity -- without bumping head yet.
      const std::uint64_t head2 = r.head.load(std::memory_order_acquire);
      const std::uint64_t floor =
          head2 + 1 > capacity_ ? head2 + 1 - capacity_ : 0;
      const std::uint64_t skip = floor > lo ? floor - lo : 0;
      for (std::uint64_t i = skip; i < window.size(); ++i) {
        TraceEvent ev = window[static_cast<std::size_t>(i)];
        out.push_back(ev);
      }
    }
    return out;
  }

  /// chrome://tracing "Trace Event Format" JSON: instant events per
  /// lifecycle step (tid = recording thread's ring ordinal is not
  /// preserved across the merge; the session id is in args, which is
  /// what the lifecycle view groups on).
  [[nodiscard]] std::string chrome_json() const {
    std::vector<TraceEvent> evs = events();
    std::string out = "{\"traceEvents\":[";
    char buf[256];
    bool first = true;
    for (const TraceEvent& ev : evs) {
      if (!first) out += ',';
      first = false;
      // Timestamps are microseconds in the trace event format.
      std::snprintf(
          buf, sizeof buf,
          "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,"
          "\"tid\":%u,\"ts\":%.3f,\"args\":{\"sid\":%" PRIu64
          ",\"backend\":%u,\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}",
          trace_kind_name(ev.kind), static_cast<unsigned>(ev.backend),
          ev.ts_s * 1e6, ev.session_id, static_cast<unsigned>(ev.backend),
          ev.a, ev.b);
      out += buf;
    }
    out += "]}";
    return out;
  }

  [[nodiscard]] std::size_t ring_count() const {
    const std::lock_guard<std::mutex> lk(mu_);
    return rings_.size();
  }

 private:
  struct alignas(64) Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::vector<TraceEvent> slots;
    std::atomic<std::uint64_t> head{0};
  };

  /// Process-unique, never reused: the thread_local ring cache keys on
  /// this instead of the tracer's address, so a tracer constructed at a
  /// destroyed tracer's address can never resolve to the dead ring.
  [[nodiscard]] static std::uint64_t next_tracer_id() noexcept {
    static std::atomic<std::uint64_t> n{0};
    return n.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Slots are written and read with relaxed per-field atomics: a
  /// reader walking the ring while a writer laps it sees each field as
  /// some value actually stored (never a torn word); whole-event
  /// staleness is handled by the exporter's overwrite-floor drop.
  static void store_slot(TraceEvent& dst, const TraceEvent& src) noexcept {
    std::atomic_ref<double>(dst.ts_s).store(src.ts_s,
                                            std::memory_order_relaxed);
    std::atomic_ref<std::uint64_t>(dst.session_id)
        .store(src.session_id, std::memory_order_relaxed);
    std::atomic_ref<std::uint64_t>(dst.a).store(src.a,
                                                std::memory_order_relaxed);
    std::atomic_ref<std::uint64_t>(dst.b).store(src.b,
                                                std::memory_order_relaxed);
    std::atomic_ref<TraceKind>(dst.kind).store(src.kind,
                                               std::memory_order_relaxed);
    std::atomic_ref<std::uint8_t>(dst.backend)
        .store(src.backend, std::memory_order_relaxed);
  }

  [[nodiscard]] static TraceEvent load_slot(TraceEvent& src) noexcept {
    TraceEvent out;
    out.ts_s = std::atomic_ref<double>(src.ts_s).load(
        std::memory_order_relaxed);
    out.session_id = std::atomic_ref<std::uint64_t>(src.session_id)
                         .load(std::memory_order_relaxed);
    out.a = std::atomic_ref<std::uint64_t>(src.a).load(
        std::memory_order_relaxed);
    out.b = std::atomic_ref<std::uint64_t>(src.b).load(
        std::memory_order_relaxed);
    out.kind = std::atomic_ref<TraceKind>(src.kind).load(
        std::memory_order_relaxed);
    out.backend = std::atomic_ref<std::uint8_t>(src.backend)
                      .load(std::memory_order_relaxed);
    return out;
  }

  [[nodiscard]] Ring& ring_for_thread() {
    // Single-entry fast path for the common one-tracer-per-thread case;
    // the map behind it makes switching between live tracers reuse each
    // tracer's ring instead of registering a new one per switch.
    // Entries for destroyed tracers linger in the map (ids are never
    // reused, so they can only miss) -- bounded by the number of
    // tracers this thread ever recorded into.
    thread_local std::uint64_t last_id = 0;
    thread_local Ring* last_ring = nullptr;
    if (last_id == id_) return *last_ring;
    thread_local std::unordered_map<std::uint64_t, Ring*> by_tracer;
    auto [it, inserted] = by_tracer.try_emplace(id_, nullptr);
    if (inserted) {
      const std::lock_guard<std::mutex> lk(mu_);
      rings_.push_back(std::make_unique<Ring>(capacity_));
      it->second = rings_.back().get();
    }
    last_id = id_;
    last_ring = it->second;
    return *last_ring;
  }

  const std::size_t capacity_;
  const std::uint64_t id_;
  mutable std::mutex mu_;
  std::deque<std::unique_ptr<Ring>> rings_;
};

}  // namespace ribltx::obs
