#include "merkle/trie.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bytes.hpp"

namespace ribltx::merkle {

std::size_t Node::wire_size() const noexcept {
  switch (kind) {
    case Kind::kBranch: {
      std::size_t n = 0;
      for (auto h : children) {
        if (h != 0) ++n;
      }
      // tag + 2-byte presence bitmap + one wire hash per occupied slot.
      return 1 + 2 + n * kWireHashBytes;
    }
    case Kind::kExtension:
      // tag + compact-encoded path + child hash.
      return 1 + 1 + (path.size() + 1) / 2 + kWireHashBytes;
    case Kind::kLeaf:
      // tag + compact-encoded path + account body.
      return 1 + 1 + (path.size() + 1) / 2 + kValueBytes;
  }
  return 0;  // unreachable
}

Trie::Trie(std::vector<Account> accounts, SipKey hash_key)
    : hash_key_(hash_key) {
  std::sort(accounts.begin(), accounts.end(),
            [](const Account& a, const Account& b) { return a.key < b.key; });
  for (std::size_t i = 1; i < accounts.size(); ++i) {
    if (accounts[i].key == accounts[i - 1].key) {
      throw std::invalid_argument("Trie: duplicate account key");
    }
  }
  num_accounts_ = accounts.size();
  if (!accounts.empty()) {
    root_ = build(accounts, 0);
  }
}

std::uint64_t Trie::build(std::span<const Account> accounts,
                          std::size_t depth) {
  if (accounts.size() == 1) {
    Node leaf;
    leaf.kind = Node::Kind::kLeaf;
    leaf.account = accounts.front();
    for (std::size_t i = depth; i < kKeyNibbles; ++i) {
      leaf.path.push_back(
          static_cast<std::uint8_t>(nibble_at(leaf.account.key, i)));
    }
    return intern(std::move(leaf));
  }

  // Sorted range: the common prefix of first and last bounds everyone's.
  std::size_t lcp = 0;
  const AddressKey& lo = accounts.front().key;
  const AddressKey& hi = accounts.back().key;
  while (depth + lcp < kKeyNibbles &&
         nibble_at(lo, depth + lcp) == nibble_at(hi, depth + lcp)) {
    ++lcp;
  }
  if (lcp > 0) {
    Node ext;
    ext.kind = Node::Kind::kExtension;
    for (std::size_t i = 0; i < lcp; ++i) {
      ext.path.push_back(static_cast<std::uint8_t>(nibble_at(lo, depth + i)));
    }
    ext.child = build(accounts, depth + lcp);
    return intern(std::move(ext));
  }

  Node branch;
  branch.kind = Node::Kind::kBranch;
  std::size_t begin = 0;
  while (begin < accounts.size()) {
    const unsigned nib = nibble_at(accounts[begin].key, depth);
    std::size_t end = begin + 1;
    while (end < accounts.size() &&
           nibble_at(accounts[end].key, depth) == nib) {
      ++end;
    }
    branch.children[nib] =
        build(accounts.subspan(begin, end - begin), depth + 1);
    begin = end;
  }
  return intern(std::move(branch));
}

std::uint64_t Trie::intern(Node node) {
  const std::uint64_t h = hash_node(node);
  auto [it, inserted] = store_.try_emplace(h, std::move(node));
  if (inserted) {
    total_wire_bytes_ += it->second.wire_size();
  }
  return h;
}

std::uint64_t Trie::hash_node(const Node& node) const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(node.kind));
  switch (node.kind) {
    case Node::Kind::kBranch:
      for (auto h : node.children) w.u64(h);
      break;
    case Node::Kind::kExtension:
      w.uvarint(node.path.size());
      w.bytes(node.path.data(), node.path.size());
      w.u64(node.child);
      break;
    case Node::Kind::kLeaf:
      w.uvarint(node.path.size());
      w.bytes(node.path.data(), node.path.size());
      w.bytes(node.account.key.data(), node.account.key.size());
      w.bytes(node.account.value.data(), node.account.value.size());
      break;
  }
  return siphash24(hash_key_, w.view());
}

const Node* Trie::find(std::uint64_t hash) const {
  const auto it = store_.find(hash);
  return it == store_.end() ? nullptr : &it->second;
}

std::vector<Account> Trie::all_accounts() const {
  std::vector<Account> out;
  out.reserve(num_accounts_);
  if (root_ != 0) collect(root_, out);
  std::sort(out.begin(), out.end(),
            [](const Account& a, const Account& b) { return a.key < b.key; });
  return out;
}

void Trie::collect(std::uint64_t hash, std::vector<Account>& out) const {
  const Node* node = find(hash);
  if (node == nullptr) {
    throw std::logic_error("Trie::collect: dangling node hash");
  }
  switch (node->kind) {
    case Node::Kind::kLeaf:
      out.push_back(node->account);
      break;
    case Node::Kind::kExtension:
      collect(node->child, out);
      break;
    case Node::Kind::kBranch:
      for (auto h : node->children) {
        if (h != 0) collect(h, out);
      }
      break;
  }
}

}  // namespace ribltx::merkle
