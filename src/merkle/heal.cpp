#include "merkle/heal.hpp"

#include <stdexcept>

namespace ribltx::merkle {

HealPlan plan_heal(const Trie& alice, const Trie& bob) {
  HealPlan plan;
  if (alice.root_hash() == 0) return plan;  // nothing to fetch

  std::vector<std::uint64_t> frontier;
  if (!bob.contains_node(alice.root_hash())) {
    frontier.push_back(alice.root_hash());
  }

  while (!frontier.empty()) {
    HealRound round;
    round.requests = frontier.size();
    round.bytes_up = frontier.size() * (kWireHashBytes + kRequestFraming);

    std::vector<std::uint64_t> next;
    for (const std::uint64_t h : frontier) {
      const Node* node = alice.find(h);
      if (node == nullptr) {
        throw std::logic_error("plan_heal: Alice missing her own node");
      }
      ++round.nodes;
      round.bytes_down += node->wire_size() + kResponseFraming;
      switch (node->kind) {
        case Node::Kind::kLeaf:
          ++round.leaves;
          break;
        case Node::Kind::kExtension:
          if (!bob.contains_node(node->child)) next.push_back(node->child);
          break;
        case Node::Kind::kBranch:
          for (const std::uint64_t c : node->children) {
            if (c != 0 && !bob.contains_node(c)) next.push_back(c);
          }
          break;
      }
    }

    plan.total_nodes += round.nodes;
    plan.total_leaves += round.leaves;
    plan.total_bytes_up += round.bytes_up;
    plan.total_bytes_down += round.bytes_down;
    plan.rounds.push_back(round);
    frontier = std::move(next);
  }
  return plan;
}

}  // namespace ribltx::merkle
