// State heal: Geth's Merkle-trie synchronization protocol (paper §7.3).
//
// Bob (stale) walks Alice's (fresh) trie top-down, requesting every node he
// is missing from his own content-addressed store. Unchanged subtrees share
// hashes with Bob's trie and are pruned immediately; changed paths must be
// fetched level by level, in lock-step rounds -- one round per trie level
// touched, which is where the O(log N) round trips and the node-transfer
// amplification come from (Figs 12-14).
//
// plan_heal computes the full traffic schedule (per-round request/response
// bytes and node counts); the sync layer replays it through the network
// simulator to get completion times and bandwidth traces.
#pragma once

#include <cstddef>
#include <vector>

#include "merkle/trie.hpp"

namespace ribltx::merkle {

/// Per-request overhead on the wire besides the 32-byte node hash.
inline constexpr std::size_t kRequestFraming = 4;
/// Per-response framing per node body.
inline constexpr std::size_t kResponseFraming = 4;

struct HealRound {
  std::size_t requests = 0;      ///< node hashes asked for this round
  std::size_t bytes_up = 0;      ///< Bob -> Alice request bytes
  std::size_t bytes_down = 0;    ///< Alice -> Bob node bodies
  std::size_t nodes = 0;         ///< nodes delivered (== requests)
  std::size_t leaves = 0;        ///< of which leaf nodes (account payloads)
};

struct HealPlan {
  std::vector<HealRound> rounds;
  std::size_t total_nodes = 0;
  std::size_t total_leaves = 0;
  std::size_t total_bytes_up = 0;
  std::size_t total_bytes_down = 0;

  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return total_bytes_up + total_bytes_down;
  }
};

/// Simulates the heal of `bob` against `alice` and returns the traffic
/// schedule. Both tries must be built with the same hash key. Bob's trie is
/// not modified (the plan records what he *would* fetch).
[[nodiscard]] HealPlan plan_heal(const Trie& alice, const Trie& bob);

}  // namespace ribltx::merkle
