// 16-ary Merkle trie over fixed-length keys, modeled on the Ethereum
// account trie (the paper's §7.3 baseline, Geth's "state heal" protocol
// operates on this structure).
//
// Faithful pieces: 16-ary branching on key nibbles, path compression
// ("shortening sub-tries that have no branches" via extension/leaf nodes),
// content-addressed node store keyed by node hash (Geth's node database),
// and wire-size accounting that charges 32 bytes per child hash as the real
// protocol does. Simplifications (DESIGN.md §1.4): node identity uses
// 64-bit SipHash internally (we simulate, not defend, the hash tree), and
// tries are rebuilt per snapshot instead of mutated copy-on-write.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/siphash.hpp"

namespace ribltx::merkle {

inline constexpr std::size_t kKeyBytes = 20;    ///< wallet address length
inline constexpr std::size_t kValueBytes = 72;  ///< account state length
inline constexpr std::size_t kKeyNibbles = kKeyBytes * 2;
/// Bytes a child hash occupies on the wire (Keccak-256 in the real system).
inline constexpr std::size_t kWireHashBytes = 32;

using AddressKey = std::array<std::byte, kKeyBytes>;
using AccountValue = std::array<std::byte, kValueBytes>;

struct Account {
  AddressKey key{};
  AccountValue value{};

  friend bool operator==(const Account&, const Account&) = default;
};

/// Nibble `i` of a key, most-significant first (aligns with lexicographic
/// byte order, so sorted accounts share nibble prefixes contiguously).
[[nodiscard]] inline unsigned nibble_at(const AddressKey& key,
                                        std::size_t i) noexcept {
  const auto b = static_cast<unsigned>(key[i / 2]);
  return (i % 2 == 0) ? (b >> 4) : (b & 0xf);
}

struct Node {
  enum class Kind : std::uint8_t { kBranch, kExtension, kLeaf };

  Kind kind = Kind::kLeaf;
  /// kBranch: child node hashes, 0 = empty slot.
  std::array<std::uint64_t, 16> children{};
  /// kExtension: shared nibble run; kLeaf: remaining key nibbles.
  std::vector<std::uint8_t> path;
  /// kExtension: the single child's hash.
  std::uint64_t child = 0;
  /// kLeaf payload.
  Account account{};

  /// Modeled wire size (RLP-like): tag + compact path + 32 B per child
  /// hash; leaves carry the 72-byte account body.
  [[nodiscard]] std::size_t wire_size() const noexcept;
};

/// Immutable Merkle trie with a content-addressed node store.
class Trie {
 public:
  /// Builds from an account set (keys must be unique; any order). The
  /// `hash_key` seeds node hashing and must match between peers.
  explicit Trie(std::vector<Account> accounts, SipKey hash_key = SipKey{});

  /// 0 for the empty trie.
  [[nodiscard]] std::uint64_t root_hash() const noexcept { return root_; }

  /// Node lookup by hash (how the heal protocol serves requests); nullptr
  /// if this trie does not contain the node.
  [[nodiscard]] const Node* find(std::uint64_t hash) const;

  [[nodiscard]] bool contains_node(std::uint64_t hash) const {
    return find(hash) != nullptr;
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return store_.size();
  }
  [[nodiscard]] std::size_t account_count() const noexcept {
    return num_accounts_;
  }

  /// Walks the trie and returns every account, sorted by key (test aid).
  [[nodiscard]] std::vector<Account> all_accounts() const;

  /// Sum of wire sizes over all stored nodes.
  [[nodiscard]] std::size_t total_wire_bytes() const noexcept {
    return total_wire_bytes_;
  }

 private:
  std::uint64_t build(std::span<const Account> accounts, std::size_t depth);
  std::uint64_t intern(Node node);
  [[nodiscard]] std::uint64_t hash_node(const Node& node) const;
  void collect(std::uint64_t hash, std::vector<Account>& out) const;

  SipKey hash_key_;
  std::uint64_t root_ = 0;
  std::size_t num_accounts_ = 0;
  std::size_t total_wire_bytes_ = 0;
  std::unordered_map<std::uint64_t, Node> store_;
};

}  // namespace ribltx::merkle
