// Adaptive per-peer backend negotiation: the paper's headline property --
// communication that scales with the actual difference d, not the set size
// -- applied one layer up, to the choice of backend itself.
//
// Three pieces close the loop (ISSUE 6 tentpole; rate-compatible
// reconciliation, Lazaro & Matuz arXiv:2211.05472, is the theory anchor):
//
//   1. A cheap up-front d estimate. The client may attach a tiny strata
//      probe digest to its HELLO (kProbe* geometry below -- 16 strata x 4
//      cells, k=3, narrow checksums: ~850 B for 8-byte items, first
//      contact only). The server subtracts its own live digest and reads a
//      power-of-two-grade estimate. Without a probe the server falls back
//      to a per-peer EWMA of past session diffs (PeerEwma), then to a
//      configured default.
//
//   2. A cost model (estimate_cost / choose_backend) that prices each
//      backend's bytes, round trips, and CPU for that d against a
//      LinkProfile, and picks the cheapest. The byte formulas mirror the
//      real codec sizing rules in sync/reconciler.hpp (CPI's power-of-two
//      evaluation ladder, the strata estimator's fixed wire cost plus a
//      2x-overprovisioned table, MET's cumulative level boundaries, the
//      rateless stream's ~1.35d symbols plus its pacing runway), so the
//      model ranks backends the way the measured bench does.
//
//   3. An emission pace for the one backend that streams unboundedly: a
//      granted rateless session carries a pace_cap -- the server pauses
//      once it is cap bytes past the last inbound frame, and the client
//      renews the runway with empty ROUND "credit" frames. This bounds a
//      session's overshoot past its useful prefix to the cap, so one slow
//      peer multiplexed on a fat connection cannot eat the shared
//      SocketServer watermark, and a lossy SimConduit link is never asked
//      to carry a window full of symbols the peer already decoded past.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "core/symbol.hpp"
#include "iblt/strata.hpp"
#include "sync/reconciler.hpp"

namespace ribltx::sync::adaptive {

/// Probe digest geometry -- a protocol constant, not a tunable: both ends
/// must build the same shape for the subtract to be meaningful, and the
/// server rejects nothing on mismatch (it just falls back to the EWMA), so
/// skewed builds degrade gracefully. 16 strata x 4 cells x k=3 with
/// narrow checksums is ~64 cells: enough for an order-of-magnitude d
/// estimate (which is all backend choice needs), ~850 B for 8-byte items.
inline constexpr std::size_t kProbeStrata = 16;
inline constexpr std::size_t kProbeCells = 4;
inline constexpr unsigned kProbeK = 3;
inline constexpr std::uint8_t kProbeChecksumLen = 4;

template <Symbol T, typename Hasher>
[[nodiscard]] iblt::StrataEstimator<T, Hasher> make_probe(Hasher hasher) {
  return iblt::StrataEstimator<T, Hasher>(kProbeStrata, kProbeCells, kProbeK,
                                          std::move(hasher));
}

/// What the serving layer knows about the link a session crosses. The two
/// non-byte cost surfaces are expressed in byte equivalents so the model
/// stays a single scalar: round_cost_bytes is what one extra round trip is
/// worth (latency + per-frame overhead), cpu_cost is what one unit of
/// codec work (one hash/cell/GF operation) is worth.
struct LinkProfile {
  double loss_rate = 0.0;        ///< expected segment loss fraction
  double round_cost_bytes = 64;  ///< byte value of one extra round trip
  double cpu_cost = 1.0 / 64;    ///< byte value of one codec work unit
  /// Fat local links: rounds are nearly free, CPU shows up directly in
  /// sessions/s (PR 5 measured serving CPU-bound on loopback).
  [[nodiscard]] static LinkProfile loopback() { return {0.0, 64, 1.0 / 64}; }
  /// Thin/lossy links (SimConduit): every byte may be sent 1/(1-loss)
  /// times, a round trip costs real time and retransmit exposure, and the
  /// link -- not the CPU -- is the bottleneck.
  [[nodiscard]] static LinkProfile lossy(double loss) {
    return {loss, 2048, 1.0 / 1024};
  }
};

/// Tuning for the adaptive grant path (EngineOptions::adaptive).
struct AdaptiveOptions {
  bool enabled = true;        ///< grant adaptive negotiation when requested
  double ewma_alpha = 0.25;   ///< weight of the newest observed diff
  std::uint64_t default_d = 64;  ///< no probe, no history
  /// Pacing runway = clamp(pace_slack * expected stream bytes,
  /// min_pace_cap, max_pace_cap). The cap bounds overshoot past the last
  /// inbound frame, so the max matters most: a few frame budgets keeps the
  /// stream pipelined (credits arrive before the server stalls) while
  /// bounding wasted symbols to that same few-KB runway.
  double pace_slack = 1.4;
  std::uint64_t min_pace_cap = 256;
  std::uint64_t max_pace_cap = 2048;
  std::size_t max_peers = 65536;  ///< EWMA table bound (evicts beyond)
};

/// Worst-case wire bytes of one rateless stream symbol (symbol + checksum
/// + svarint count) -- the pacing slop that guarantees a frame emitted
/// under a clamped budget never crosses the cap.
template <Symbol T>
[[nodiscard]] constexpr std::size_t max_symbol_wire(
    std::uint8_t checksum_len) noexcept {
  return T::kSize + checksum_len + 10;
}

/// Frame header worst case (type + uvarint sid + uvarint len).
inline constexpr std::size_t kFrameHeaderSlop = 16;

/// The one-shot CPI capacity for an estimated difference: the same
/// power-of-two ladder the fixed escalation walks, picked up front (a 12%
/// margin absorbs estimate error; the decoder still escalates if it was
/// not enough). Prefix reuse means guessing high costs only the gap to
/// the next power of two -- exactly what the fixed ladder would have sent.
[[nodiscard]] inline std::uint64_t cpi_capacity_for(
    std::uint64_t d, const ReconcilerConfig& config) {
  const std::uint64_t margin = d + d / 8 + 1;
  return std::bit_ceil(
      std::max<std::uint64_t>(config.cpi_initial_capacity, margin));
}

/// CPI decode is O(capacity^3): past a few hundred evaluation points the
/// CPU bill dwarfs any byte win, so both the adaptive chooser and the
/// bench's fixed-backend cells draw the feasibility line with this same
/// predicate -- they must agree on where CPI stops being a candidate.
inline constexpr std::uint64_t kMaxAdaptiveCpiCapacity = 256;

template <Symbol T>
[[nodiscard]] bool cpi_feasible(std::uint64_t d,
                                const ReconcilerConfig& config) {
  return T::kSize == 8 && cpi_capacity_for(d, config) <= kMaxAdaptiveCpiCapacity;
}

/// Predicted cost surfaces for one backend at one estimated d.
struct CostEstimate {
  double bytes = 0;   ///< session wire bytes, both directions
  double rounds = 0;  ///< blocking round trips before completion
  double cpu = 0;     ///< codec work units (hashes / cells / GF ops)
};

/// The pacing runway granted to a rateless session (0 would mean unpaced;
/// this always returns a positive cap).
template <Symbol T>
[[nodiscard]] std::uint64_t pace_cap_for(std::uint64_t d,
                                         std::uint8_t checksum_len,
                                         const AdaptiveOptions& opts) {
  const double sym =
      static_cast<double>(T::kSize + checksum_len + 2);  // typical count
  const double expected = (1.35 * static_cast<double>(d) + 1.0) * sym;
  const auto scaled =
      static_cast<std::uint64_t>(opts.pace_slack * expected);
  // Never clamp below what one clamped-budget frame needs to make
  // progress: a cap smaller than slop + one symbol would pause forever.
  const std::uint64_t floor_cap =
      std::max(opts.min_pace_cap,
               2 * (max_symbol_wire<T>(checksum_len) + kFrameHeaderSlop));
  return std::clamp(scaled, floor_cap,
                    std::max(floor_cap, opts.max_pace_cap));
}

/// Prices one backend at one estimated d. `set_size` is the server set
/// (the CPU surfaces scale with it); formulas mirror reconciler.hpp's
/// actual sizing so the ranking tracks the measured byte surface.
template <Symbol T>
[[nodiscard]] CostEstimate estimate_cost(BackendId backend, std::uint64_t d,
                                         std::size_t set_size,
                                         std::uint8_t checksum_len,
                                         const ReconcilerConfig& config,
                                         const AdaptiveOptions& opts) {
  const double n = static_cast<double>(set_size);
  const double dd = static_cast<double>(std::max<std::uint64_t>(d, 1));
  const double cell = static_cast<double>(T::kSize) + checksum_len + 1.5;
  CostEstimate out;
  switch (backend) {
    case BackendId::kRiblt: {
      // ~1.35d coded symbols to decode -- but a rateless encoder fills
      // whatever runway it is granted immediately (it cannot know d), so
      // the session never costs less than the pacing cap, and past the
      // useful prefix it streams about half a runway before the DONE
      // lands. bytes = max(cap, 1.05*stream + cap/2).
      const double stream = (1.35 * dd + 1.0) * (cell + 0.5);
      const double runway = static_cast<double>(
          pace_cap_for<T>(d, checksum_len, opts));
      out.bytes = std::max(runway, stream * 1.05 + runway / 2);
      out.rounds = 0;  // credits pipeline; they never block the stream
      out.cpu = 3.0 * (1.35 * dd + 1.0) + 16.0;
      break;
    }
    case BackendId::kIbltStrata: {
      // Fixed-price estimator exchange, then a table over-provisioned 2
      // cells per estimated difference (reconciler.hpp escalation rule).
      const double estimator =
          static_cast<double>(config.strata_num_strata *
                              config.strata_cells_per_stratum) * cell + 13;
      const double table =
          std::max<double>(static_cast<double>(config.iblt_min_cells),
                           2.0 * dd) * cell;
      out.bytes = estimator + table * 1.1;
      out.rounds = 2;
      out.cpu = 2.0 * n + 8.0 * dd;
      break;
    }
    case BackendId::kCpi: {
      const double cap =
          static_cast<double>(cpi_capacity_for(d, config));
      out.bytes = cap * 8.0 + 20.0;
      out.rounds = 0.05;  // one-shot capacity; the 12% margin makes the
                          // escalation round trip rare
      // Encode evaluates the set polynomial at cap points; decode solves a
      // cap-sized rational system (the O(cap^3) wall kMaxAdaptiveCpi
      // guards).
      out.cpu = n * cap * 0.25 + cap * cap * cap / 8.0;
      break;
    }
    case BackendId::kMetIblt: {
      // Cumulative extension blocks up to the first level whose target
      // covers d (MetConfig::recommended() boundaries).
      const auto& met = config.met;
      std::size_t level = met.targets.size() - 1;
      for (std::size_t i = 0; i < met.targets.size(); ++i) {
        if (static_cast<double>(met.targets[i]) >= dd) {
          level = i;
          break;
        }
      }
      out.bytes =
          static_cast<double>(met.cumulative_cells(level)) * cell + 8;
      out.rounds = static_cast<double>(level) + 1.0;
      out.cpu = n * met.edges_per_block + 4.0 * dd;
      break;
    }
  }
  return out;
}

[[nodiscard]] inline double link_cost(const CostEstimate& e,
                                      const LinkProfile& link) {
  return e.bytes / (1.0 - std::min(link.loss_rate, 0.9)) +
         e.rounds * link.round_cost_bytes + e.cpu * link.cpu_cost;
}

/// Picks the cheapest feasible backend for an adaptive session. The
/// requested backend is always a candidate (the client can decode it by
/// construction); CPI joins only inside its feasibility envelope.
template <Symbol T>
[[nodiscard]] BackendId choose_backend(BackendId requested, std::uint64_t d,
                                       std::size_t set_size,
                                       std::uint8_t checksum_len,
                                       const ReconcilerConfig& config,
                                       const AdaptiveOptions& opts,
                                       const LinkProfile& link) {
  const BackendId candidates[] = {BackendId::kRiblt, BackendId::kIbltStrata,
                                  BackendId::kCpi, BackendId::kMetIblt};
  BackendId best = requested;
  double best_cost = link_cost(
      estimate_cost<T>(requested, d, set_size, checksum_len, config, opts),
      link);
  for (const BackendId b : candidates) {
    if (b == requested) continue;
    if (b == BackendId::kCpi && !cpi_feasible<T>(d, config)) continue;
    const double cost = link_cost(
        estimate_cost<T>(b, d, set_size, checksum_len, config, opts), link);
    if (cost < best_cost) {
      best = b;
      best_cost = cost;
    }
  }
  return best;
}

/// Per-peer EWMA of observed session diffs -- the probe-free estimate for
/// peers that reconcile repeatedly (the common steady state: a node
/// re-syncing the same neighbors converges to their churn rate).
class PeerEwma {
 public:
  explicit PeerEwma(double alpha = 0.25, std::size_t max_peers = 65536)
      : alpha_(alpha), max_peers_(max_peers) {}

  /// Folds one observed diff for a peer (peer id 0 = anonymous: ignored).
  void observe(std::uint64_t peer_id, std::uint64_t diff) {
    if (peer_id == 0) return;
    auto it = ewma_.find(peer_id);
    if (it == ewma_.end()) {
      if (ewma_.size() >= max_peers_) ewma_.erase(ewma_.begin());
      ewma_.emplace(peer_id, static_cast<double>(diff));
      return;
    }
    it->second = (1.0 - alpha_) * it->second +
                 alpha_ * static_cast<double>(diff);
  }

  /// The current estimate for a peer, or 0 when it has no history.
  [[nodiscard]] std::uint64_t estimate(std::uint64_t peer_id) const {
    const auto it = ewma_.find(peer_id);
    if (it == ewma_.end()) return 0;
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(it->second + 0.5));
  }

  [[nodiscard]] std::size_t size() const noexcept { return ewma_.size(); }

 private:
  double alpha_;
  std::size_t max_peers_;
  std::unordered_map<std::uint64_t, double> ewma_;
};

}  // namespace ribltx::sync::adaptive
