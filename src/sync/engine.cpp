#include "sync/engine.hpp"

namespace ribltx::sync::v2 {

namespace {

[[nodiscard]] bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kAdminReply);
}

/// Reads a length-prefixed payload, rejecting length claims the frame
/// cannot possibly hold before any allocation.
[[nodiscard]] std::vector<std::byte> read_payload(ByteReader& r) {
  const std::uint64_t len = r.uvarint();
  if (len > r.remaining()) {
    throw ProtocolError("frame payload length exceeds frame size");
  }
  const auto view = r.bytes(static_cast<std::size_t>(len));
  return std::vector<std::byte>(view.begin(), view.end());
}

}  // namespace

Frame parse_frame(std::span<const std::byte> data) {
  if (data.empty()) throw ProtocolError("empty frame");
  try {
    ByteReader r(data);
    Frame out;
    const std::uint8_t type = r.u8();
    if (!known_type(type)) throw ProtocolError("unknown frame type");
    out.type = static_cast<FrameType>(type);
    out.session_id = r.uvarint();
    if (out.session_id == 0) {
      throw ProtocolError("session id 0 is reserved");
    }
    switch (out.type) {
      case FrameType::kHello: {
        if (r.u8() != kVersion) throw ProtocolError("version mismatch");
        out.backend = r.u8();
        out.item_size = r.u32();
        out.checksum_len = r.u8();
        const std::uint8_t flags = r.u8();
        if ((flags & ~kKnownHelloFlags) != 0) {
          throw ProtocolError("unknown HELLO flags");
        }
        out.count_residuals = (flags & kFlagCountResiduals) != 0;
        if ((flags & kFlagSharded) != 0) {
          const std::uint64_t shard_index = r.uvarint();
          const std::uint64_t shard_count = r.uvarint();
          if (shard_count == 0 || shard_count > 0xffffffffull ||
              shard_index >= shard_count) {
            throw ProtocolError("HELLO shard fields out of range");
          }
          out.shard_index = static_cast<std::uint32_t>(shard_index);
          out.shard_count = static_cast<std::uint32_t>(shard_count);
        }
        if ((flags & kFlagAdaptive) != 0) {
          out.adaptive = true;
          out.peer_id = r.uvarint();
          out.probe = read_payload(r);
        }
        break;
      }
      case FrameType::kHelloAck: {
        out.backend = r.u8();
        out.checksum_len = r.u8();
        const std::uint8_t flags = r.u8();
        if ((flags & ~kKnownHelloAckFlags) != 0) {
          throw ProtocolError("unknown HELLO_ACK flags");
        }
        out.count_residuals = (flags & kFlagCountResiduals) != 0;
        if (out.count_residuals) out.value = r.uvarint();
        if ((flags & kFlagAdaptive) != 0) {
          out.adaptive = true;
          out.d_estimate = r.uvarint();
          out.pace_cap = r.uvarint();
        }
        break;
      }
      case FrameType::kSymbols:
      case FrameType::kRound:
      case FrameType::kError:
      case FrameType::kAdmin:
        out.payload = read_payload(r);
        break;
      case FrameType::kAdminReply:
        // `value` carries the final-chunk flag (1 = last chunk of the
        // reassembled admin reply body).
        out.value = r.u8();
        out.payload = read_payload(r);
        break;
      case FrameType::kDone:
        out.value = r.uvarint();
        // Adaptive sessions append the recovered |diff|; the extension is
        // optional so a pre-adaptive DONE still parses.
        if (!r.done()) out.diff_count = r.uvarint();
        break;
    }
    if (!r.done()) throw ProtocolError("trailing bytes in frame");
    return out;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception&) {
    // ByteReader/varint overruns on truncated or garbage input.
    throw ProtocolError("truncated frame");
  }
}

std::uint64_t peek_session_id(std::span<const std::byte> data) {
  if (data.empty()) throw ProtocolError("empty frame");
  try {
    ByteReader r(data);
    if (!known_type(r.u8())) throw ProtocolError("unknown frame type");
    const std::uint64_t sid = r.uvarint();
    if (sid == 0) throw ProtocolError("session id 0 is reserved");
    return sid;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception&) {
    throw ProtocolError("truncated frame");
  }
}

std::vector<std::byte> encode_frame(const Frame& frame) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.uvarint(frame.session_id);
  switch (frame.type) {
    case FrameType::kHello: {
      w.u8(kVersion);
      w.u8(frame.backend);
      w.u32(frame.item_size);
      w.u8(frame.checksum_len);
      std::uint8_t flags = 0;
      if (frame.shard_count != 0) flags |= kFlagSharded;
      if (frame.count_residuals) flags |= kFlagCountResiduals;
      if (frame.adaptive) flags |= kFlagAdaptive;
      w.u8(flags);
      if (frame.shard_count != 0) {
        w.uvarint(frame.shard_index);
        w.uvarint(frame.shard_count);
      }
      if (frame.adaptive) {
        w.uvarint(frame.peer_id);
        w.uvarint(frame.probe.size());
        w.bytes(frame.probe);
      }
      break;
    }
    case FrameType::kHelloAck: {
      w.u8(frame.backend);
      w.u8(frame.checksum_len);
      std::uint8_t flags = 0;
      if (frame.count_residuals) flags |= kFlagCountResiduals;
      if (frame.adaptive) flags |= kFlagAdaptive;
      w.u8(flags);
      if (frame.count_residuals) w.uvarint(frame.value);
      if (frame.adaptive) {
        w.uvarint(frame.d_estimate);
        w.uvarint(frame.pace_cap);
      }
      break;
    }
    case FrameType::kSymbols:
    case FrameType::kRound:
    case FrameType::kError:
    case FrameType::kAdmin:
      w.uvarint(frame.payload.size());
      w.bytes(frame.payload);
      break;
    case FrameType::kAdminReply:
      w.u8(frame.value != 0 ? 1 : 0);
      w.uvarint(frame.payload.size());
      w.bytes(frame.payload);
      break;
    case FrameType::kDone:
      w.uvarint(frame.value);
      if (frame.diff_count) w.uvarint(*frame.diff_count);
      break;
  }
  return std::move(w).take();
}

std::vector<std::byte> make_error_frame(std::uint64_t session_id,
                                        const std::string& message) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.session_id = session_id;
  // Clamp: an exception message of arbitrary length (e.g. one that embeds
  // attacker-controlled input) must never produce an ERROR frame larger
  // than a conduit's max_frame -- that would escalate a contained
  // per-session failure into a dead connection.
  const std::size_t n = std::min(message.size(), kMaxErrorBytes);
  frame.payload.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    frame.payload.push_back(static_cast<std::byte>(message[i]));
  }
  return encode_frame(frame);
}

std::string error_text(const Frame& frame) {
  std::string out;
  out.reserve(frame.payload.size());
  for (const std::byte b : frame.payload) {
    out.push_back(static_cast<char>(b));
  }
  return out;
}

}  // namespace ribltx::sync::v2
