// Transport-agnostic rateless reconciliation protocol.
//
// The paper's deployment (§7.3) wraps the codec in a trivially simple
// protocol: the client opens a connection, the server streams coded
// symbols at line rate, the client closes when decoded. This header gives
// that protocol a versioned byte-level framing that a downstream user can
// run over TCP, QUIC streams, or message buses:
//
//   client -> server : HELLO  (version, item size, checksum width, flags)
//   server -> client : SYMBOLS(batch of coded symbols)   [repeated]
//   client -> server : DONE   (symbols consumed)          [ends session]
//
// The server produces batches until told to stop; symbol order inside and
// across batches is the coded-symbol stream order (the transport must
// preserve ordering, as the paper assumes). Both ends validate the framing
// and throw ProtocolError on anything malformed or mismatched.
#pragma once

#include <cstdint>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "core/riblt.hpp"
#include "sync/error.hpp"

namespace ribltx::sync {

namespace proto {
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::uint8_t kHello = 0x01;
inline constexpr std::uint8_t kSymbols = 0x02;
inline constexpr std::uint8_t kDone = 0x03;
}  // namespace proto

/// Server (Alice) side: emits SYMBOLS frames on demand from a
/// SequenceCache. By default the server owns a private cache; hand several
/// servers one shared cache (the §2 serving model) and each session is a
/// snapshot cursor over the same universal prefix -- coded symbols are
/// materialized once, not once per peer, and the cache can keep absorbing
/// churn while sessions stream.
template <Symbol T, typename Hasher = SipHasher<T>>
class ReconcileServer {
 public:
  using Cache = SequenceCache<T, Hasher>;

  explicit ReconcileServer(Hasher hasher = Hasher{},
                           std::size_t symbols_per_batch = 64)
      : cache_(std::make_shared<Cache>(std::move(hasher))),
        batch_(symbols_per_batch) {
    if (symbols_per_batch == 0) {
      throw std::invalid_argument("ReconcileServer: empty batch size");
    }
  }

  /// Builds a server over a shared cache; the snapshot is pinned at the
  /// first next_batch(), so cache churn before then is part of this
  /// session. (Named factory rather than a constructor: `{}` would be
  /// ambiguous between a default Hasher and a null cache.)
  [[nodiscard]] static ReconcileServer serving(
      std::shared_ptr<Cache> cache, std::size_t symbols_per_batch = 64) {
    if (!cache) {
      throw std::invalid_argument("ReconcileServer: null cache");
    }
    ReconcileServer out(Hasher{}, symbols_per_batch);
    out.cache_ = std::move(cache);
    return out;
  }

  /// Adds a set item; must precede the first next_batch().
  void add_symbol(const T& s) {
    if (cursor_) {
      throw std::logic_error(
          "ReconcileServer: cannot add items after encoding started");
    }
    cache_->add_symbol(s);
  }

  /// Validates the client's HELLO and adopts its negotiated parameters.
  /// Throws ProtocolError on version or geometry mismatch (failing loudly
  /// beats silently mis-decoding) and on a repeated HELLO.
  void handle_hello(std::span<const std::byte> frame) {
    if (hello_seen_) throw ProtocolError("duplicate HELLO");
    ByteReader r(frame);
    if (r.u8() != proto::kHello) throw ProtocolError("expected HELLO");
    if (r.u8() != proto::kVersion) throw ProtocolError("version mismatch");
    if (r.u32() != static_cast<std::uint32_t>(T::kSize)) {
      throw ProtocolError("item size mismatch");
    }
    const std::uint8_t checksum_len = r.u8();
    if (checksum_len != 4 && checksum_len != 8) {
      throw ProtocolError("unsupported checksum width");
    }
    if (!r.done()) throw ProtocolError("trailing bytes in HELLO");
    checksum_len_ = checksum_len;
    hello_seen_ = true;
  }

  /// Next SYMBOLS frame, or nullopt once the client said DONE. The caller
  /// pumps this into the transport as fast as it will accept (rateless:
  /// there is no "right" number of batches).
  [[nodiscard]] std::optional<std::vector<std::byte>> next_batch() {
    if (!hello_seen_) throw ProtocolError("next_batch before HELLO");
    if (done_) return std::nullopt;
    if (!cursor_) cursor_.emplace(cache_);  // pin this session's snapshot
    ByteWriter w;
    w.u8(proto::kSymbols);
    w.uvarint(batch_);
    for (std::size_t i = 0; i < batch_; ++i) {
      wire::write_stream_symbol(w, cursor_->next(), checksum_len_);
    }
    return std::move(w).take();
  }

  /// Feed any client->server frame (HELLO or DONE).
  void handle_message(std::span<const std::byte> frame) {
    if (frame.empty()) throw ProtocolError("empty frame");
    switch (static_cast<std::uint8_t>(frame[0])) {
      case proto::kHello:
        handle_hello(frame);
        return;
      case proto::kDone: {
        if (!hello_seen_) throw ProtocolError("DONE before HELLO");
        ByteReader r(frame);
        (void)r.u8();
        symbols_reported_ = r.uvarint();
        if (!r.done()) throw ProtocolError("trailing bytes in DONE");
        done_ = true;
        return;
      }
      default:
        throw ProtocolError("unknown client frame type");
    }
  }

  [[nodiscard]] bool done() const noexcept { return done_; }
  /// Symbols the client reported consuming (diagnostics; 0 until DONE).
  [[nodiscard]] std::uint64_t symbols_reported() const noexcept {
    return symbols_reported_;
  }
  [[nodiscard]] std::uint64_t symbols_sent() const noexcept {
    return cursor_ ? cursor_->index() : 0;
  }
  /// Checksum width adopted from the client's HELLO (8 until negotiated).
  [[nodiscard]] std::uint8_t checksum_len() const noexcept {
    return checksum_len_;
  }
  /// The cache this server streams from (share it across servers).
  [[nodiscard]] const std::shared_ptr<Cache>& cache() const noexcept {
    return cache_;
  }

 private:
  std::shared_ptr<Cache> cache_;
  std::optional<typename Cache::Cursor> cursor_;
  std::size_t batch_;
  std::uint8_t checksum_len_ = 8;
  bool hello_seen_ = false;
  bool done_ = false;
  std::uint64_t symbols_reported_ = 0;
};

/// Client (Bob) side: owns the decoder; produces HELLO, consumes SYMBOLS,
/// emits DONE when reconciliation completes.
template <Symbol T, typename Hasher = SipHasher<T>>
class ReconcileClient {
 public:
  /// `checksum_len` is the wire checksum width this client proposes in its
  /// HELLO (4 or 8 bytes; §7.1 "Scalability" -- 4 suffices for differences
  /// up to tens of thousands and halves the per-cell fixed overhead).
  explicit ReconcileClient(Hasher hasher = Hasher{},
                           std::uint8_t checksum_len = 8)
      : decoder_(hasher), checksum_len_(checksum_len) {
    decoder_.set_checksum_mask(wire::checksum_mask(checksum_len));
  }

  /// Adds a local set item; must precede handle_symbols().
  void add_local_symbol(const T& s) { decoder_.add_local_symbol(s); }

  /// The opening frame. Must be produced (and delivered) before any SYMBOLS
  /// frame is accepted.
  [[nodiscard]] std::vector<std::byte> hello() {
    ByteWriter w;
    w.u8(proto::kHello);
    w.u8(proto::kVersion);
    w.u32(static_cast<std::uint32_t>(T::kSize));
    w.u8(checksum_len_);
    hello_sent_ = true;
    return std::move(w).take();
  }

  /// Consumes one server frame. Returns the DONE frame to send back when
  /// this frame completed reconciliation; nullopt otherwise. Symbols past
  /// completion (already-queued batches) are ignored gracefully.
  [[nodiscard]] std::optional<std::vector<std::byte>> handle_message(
      std::span<const std::byte> frame) {
    if (frame.empty()) throw ProtocolError("empty frame");
    ByteReader r(frame);
    if (r.u8() != proto::kSymbols) {
      throw ProtocolError("unknown server frame type");
    }
    if (!hello_sent_) throw ProtocolError("SYMBOLS before HELLO");
    if (decoder_.decoded() && symbols_consumed_ > 0) {
      return std::nullopt;  // stale in-flight batch after completion
    }
    const std::uint64_t count = r.uvarint();
    for (std::uint64_t i = 0; i < count; ++i) {
      decoder_.add_coded_symbol(wire::read_stream_symbol<T>(r, checksum_len_));
      ++symbols_consumed_;
      if (decoder_.decoded()) break;  // remaining symbols in batch unused
    }
    if (!decoder_.decoded()) return std::nullopt;
    ByteWriter w;
    w.u8(proto::kDone);
    w.uvarint(symbols_consumed_);
    return std::move(w).take();
  }

  [[nodiscard]] bool complete() const noexcept { return decoder_.decoded(); }
  [[nodiscard]] std::span<const HashedSymbol<T>> remote() const noexcept {
    return decoder_.remote();
  }
  [[nodiscard]] std::span<const HashedSymbol<T>> local() const noexcept {
    return decoder_.local();
  }
  [[nodiscard]] std::uint64_t symbols_consumed() const noexcept {
    return symbols_consumed_;
  }
  [[nodiscard]] std::uint8_t checksum_len() const noexcept {
    return checksum_len_;
  }

 private:
  Decoder<T, Hasher> decoder_;
  std::uint8_t checksum_len_;
  bool hello_sent_ = false;
  std::uint64_t symbols_consumed_ = 0;
};

}  // namespace ribltx::sync
