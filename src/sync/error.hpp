// ProtocolError: the one exception type every sync-layer component (v1
// streaming protocol, Reconciler backends, v2 SyncEngine framing) throws on
// malformed, out-of-order, or mis-negotiated input. Carrying a specific
// message is part of the contract: tests assert on the text, and operators
// triage peer failures from it.
#pragma once

#include <stdexcept>

namespace ribltx::sync {

class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace ribltx::sync
