// Multi-session reconciliation engine over the v2 wire protocol.
//
// One SyncEngine instance owns one item set and reconciles it against many
// peers concurrently -- the paper's universality argument (§2) made
// operational: sessions are independent state machines multiplexed by a
// session id carried in every frame, so a single server endpoint can serve
// a fleet of peers of different staleness, each over a backend of its
// choice (sync/reconciler.hpp).
//
// v2 framing (all client->server frames carry the session id; little
// endian, uvarints per common/varint.hpp):
//
//   HELLO     c->s  0x11 | uvarint sid | u8 ver | u8 backend |
//                   u32 item_size | u8 checksum_len | u8 flags
//                   [flags & 0x01 (sharded): uvarint shard_index |
//                    uvarint shard_count -- see sync/sharded.hpp]
//                   [flags & 0x02: request §6 count residuals]
//   HELLO_ACK s->c  0x12 | uvarint sid | u8 backend | u8 checksum_len |
//                   u8 flags [flags & 0x02: uvarint anchor_set_size]
//   SYMBOLS   s->c  0x13 | uvarint sid | uvarint len | payload
//   ROUND     c->s  0x14 | uvarint sid | uvarint len | payload
//   DONE      c->s  0x15 | uvarint sid | uvarint payload_bytes_consumed
//   ERROR     both  0x16 | uvarint sid | uvarint len | utf-8 message
//   ADMIN     c->s  0x17 | uvarint sid | uvarint len | utf-8 verb
//   ADMIN_RE  s->c  0x18 | uvarint sid | u8 final | uvarint len | chunk
//
// ADMIN is transport-level, not session-level: the servers
// (net/socket_server.hpp, net/uring_server.hpp) and the Replica daemon
// intercept it before engine submission and reply with the observability
// snapshot the verb names ("METRICS" = Prometheus text, "METRICS_JSON" =
// JSON, "TRACE" = chrome://tracing JSON), chunked into ADMIN_REPLY
// frames whose `final` byte marks the last chunk. The engine itself
// rejects ADMIN frames with a contained ProtocolError, so an admin verb
// aimed at a transport that predates the verb fails cleanly in-band.
//
// Dialogue: the client opens with HELLO (negotiating backend id and
// checksum width); the server ACKs and then pushes SYMBOLS frames --
// continuously for the rateless backend, one round per ROUND request for
// the others (ROUND is the NACK/escalation path: a bigger IBLT, more CPI
// evaluations, the next MET extension block). DONE closes the session;
// ERROR flows in either direction -- the server reporting a contained
// per-session failure, or the client aborting a session whose decoder hit
// a dead end -- without disturbing other sessions.
//
// Error containment: frames that cannot be attributed to a healthy session
// (garbage, unknown/zero session ids, duplicate HELLOs, failed
// negotiation) throw ProtocolError to the transport that delivered them.
// Failures *inside* an established session (a backend rejecting a round
// request, a malformed SYMBOLS/ROUND payload, a codec that cannot extend
// further) mark only that session kFailed on both ends and produce an
// ERROR frame; every other session keeps streaming.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstddef>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "core/sketch.hpp"
#include "core/symbol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sync/adaptive.hpp"
#include "sync/error.hpp"
#include "sync/reconciler.hpp"

namespace ribltx::sync {

namespace v2 {

inline constexpr std::uint8_t kVersion = 2;

/// HELLO flag bit: the frame carries `uvarint shard_index | uvarint
/// shard_count` after the flags byte. A client talking to a ShardedEngine
/// splits its set with shard_of_hash() and opens one session per shard;
/// the shard fields let the server verify both ends agree on the topology
/// and route the session without a side channel.
inline constexpr std::uint8_t kFlagSharded = 0x01;

/// HELLO flag bit: request the §6 count compression on the SYMBOLS stream.
/// Granted only for the rateless backend (the other codecs own their
/// payload formats): the HELLO_ACK echoes the flag and carries the anchor
/// set size N -- the serving SequenceCache's snapshot set_size -- and every
/// subsequent stream symbol's count rides as a svarint residual against
/// N*rho(i) instead of a plain svarint (~1 byte at any N vs up to 3-5
/// bytes for the large near-origin counts of a big set).
inline constexpr std::uint8_t kFlagCountResiduals = 0x02;

/// HELLO flag bit: request adaptive negotiation. The HELLO carries
/// `uvarint peer_id | uvarint probe_len | probe bytes` after any shard
/// fields -- peer_id is a stable client identity for the server's per-peer
/// EWMA of past diffs, probe is an optional tiny strata digest
/// (sync/adaptive.hpp) for a first-contact d estimate. The HELLO_ACK
/// echoes the flag and carries `uvarint d_estimate | uvarint pace_cap`;
/// its backend byte is the server's *choice* (cost model over d-estimate x
/// link class), which may differ from the requested backend. A DONE from
/// an adaptive session appends `uvarint diff_count` so the server can
/// update the EWMA. Servers that predate the flag reject the HELLO with a
/// clean ERROR ("unknown HELLO flags"); clients then retry without it.
inline constexpr std::uint8_t kFlagAdaptive = 0x04;

/// Per-frame-type known-flag masks. HELLO and HELLO_ACK grow flags
/// independently (the adaptive grant is ACK-side), so each direction
/// validates against its own mask -- an unknown bit from a newer peer
/// fails as a clean ProtocolError instead of a mis-framed stream.
inline constexpr std::uint8_t kKnownHelloFlags =
    kFlagSharded | kFlagCountResiduals | kFlagAdaptive;
inline constexpr std::uint8_t kKnownHelloAckFlags =
    kFlagCountResiduals | kFlagAdaptive;

/// ERROR frames clamp their message payload to this many bytes: an ERROR
/// must always fit any conduit's max_frame, or reporting a contained
/// per-session failure would poison the whole connection.
inline constexpr std::size_t kMaxErrorBytes = 256;

enum class FrameType : std::uint8_t {
  kHello = 0x11,
  kHelloAck = 0x12,
  kSymbols = 0x13,
  kRound = 0x14,
  kDone = 0x15,
  kError = 0x16,
  kAdmin = 0x17,       ///< observability verb (transport-level; see header)
  kAdminReply = 0x18,  ///< chunked admin reply; `value` = final-chunk flag
};

/// A parsed v2 frame; which fields are meaningful depends on `type`.
struct Frame {
  FrameType type{};
  std::uint64_t session_id = 0;
  std::uint8_t backend = 0;        ///< HELLO, HELLO_ACK
  std::uint32_t item_size = 0;     ///< HELLO
  std::uint8_t checksum_len = 0;   ///< HELLO, HELLO_ACK
  bool count_residuals = false;    ///< HELLO request / HELLO_ACK grant
  std::uint32_t shard_index = 0;   ///< HELLO (kFlagSharded)
  std::uint32_t shard_count = 0;   ///< HELLO (kFlagSharded); 0 = unsharded
  /// DONE: payload bytes consumed; HELLO_ACK with kFlagCountResiduals: the
  /// residual anchor set size N.
  std::uint64_t value = 0;
  std::vector<std::byte> payload;  ///< SYMBOLS, ROUND; ERROR: message
  bool adaptive = false;           ///< HELLO request / HELLO_ACK grant
  std::uint64_t peer_id = 0;       ///< HELLO (kFlagAdaptive); 0 = anonymous
  std::vector<std::byte> probe;    ///< HELLO (kFlagAdaptive): strata digest
  std::uint64_t d_estimate = 0;    ///< HELLO_ACK (kFlagAdaptive)
  std::uint64_t pace_cap = 0;      ///< HELLO_ACK (kFlagAdaptive); 0 = unpaced
  /// DONE: recovered |diff| when present (adaptive sessions feed the
  /// server's per-peer EWMA with it).
  std::optional<std::uint64_t> diff_count;
};

/// Parses and validates one frame. Throws ProtocolError with a specific
/// message on anything malformed (empty frame, unknown type, version
/// mismatch, zero session id, truncation, trailing bytes).
[[nodiscard]] Frame parse_frame(std::span<const std::byte> data);

/// Reads just the frame type byte and session id -- the routing prefix a
/// ShardedEngine needs -- without copying the payload. Throws ProtocolError
/// on anything too short or malformed to route.
[[nodiscard]] std::uint64_t peek_session_id(std::span<const std::byte> data);

/// Serializes a frame (the inverse of parse_frame).
[[nodiscard]] std::vector<std::byte> encode_frame(const Frame& frame);

/// The ERROR frame's message bytes as text.
[[nodiscard]] std::string error_text(const Frame& frame);

/// Builds an encoded ERROR frame carrying `message`.
[[nodiscard]] std::vector<std::byte> make_error_frame(
    std::uint64_t session_id, const std::string& message);

/// Builds an encoded ADMIN frame carrying an observability verb
/// ("METRICS", "METRICS_JSON", "TRACE").
[[nodiscard]] inline std::vector<std::byte> make_admin_frame(
    std::uint64_t session_id, std::string_view verb) {
  Frame frame;
  frame.type = FrameType::kAdmin;
  frame.session_id = session_id;
  frame.payload.reserve(verb.size());
  for (const char c : verb) {
    frame.payload.push_back(static_cast<std::byte>(c));
  }
  return encode_frame(frame);
}

/// Chunks an admin reply body into ADMIN_REPLY frames; the last chunk
/// carries the final flag (an empty body still produces one final
/// frame, so the requester always gets a terminator).
[[nodiscard]] inline std::vector<std::vector<std::byte>> make_admin_reply(
    std::uint64_t session_id, std::string_view body,
    std::size_t chunk_bytes = 32 * 1024) {
  std::vector<std::vector<std::byte>> out;
  std::size_t off = 0;
  do {
    const std::size_t n = std::min(chunk_bytes, body.size() - off);
    Frame frame;
    frame.type = FrameType::kAdminReply;
    frame.session_id = session_id;
    frame.value = off + n >= body.size() ? 1 : 0;
    frame.payload.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      frame.payload.push_back(static_cast<std::byte>(body[off + i]));
    }
    off += n;
    out.push_back(encode_frame(frame));
  } while (off < body.size());
  return out;
}

}  // namespace v2

enum class SessionState : std::uint8_t {
  kActive,  ///< reconciling
  kDone,    ///< client reported completion
  kFailed,  ///< contained per-session error; see SessionStats::error
};

/// Per-session byte/round accounting and outcome.
struct SessionStats {
  SessionState state = SessionState::kActive;
  BackendId backend{};
  std::uint8_t checksum_len = 8;
  std::uint64_t bytes_to_peer = 0;    ///< SYMBOLS frame bytes emitted
  std::uint64_t bytes_from_peer = 0;  ///< HELLO/ROUND/DONE frame bytes
  std::uint32_t rounds = 0;           ///< round requests honored
  std::uint32_t frames_sent = 0;      ///< SYMBOLS frames emitted
  std::uint64_t done_value = 0;       ///< client-reported consumed bytes
  std::string error;                  ///< failure reason when kFailed
  bool adaptive = false;              ///< session granted adaptive mode
  std::uint64_t d_estimate = 0;       ///< adaptive: the d^ the grant used
  std::uint64_t pace_cap = 0;         ///< adaptive: emission runway (0=off)
  std::uint32_t credits = 0;          ///< adaptive: pacing renewals received
};

struct EngineOptions {
  std::size_t frame_budget = 1024;  ///< target SYMBOLS payload bytes
  std::uint32_t max_rounds = 32;    ///< escalation cap per session
  std::size_t max_sessions = 4096;  ///< concurrent session cap
  ReconcilerConfig config{};        ///< backend tuning shared by sessions
  /// Adaptive negotiation (sync/adaptive.hpp): grants, EWMA, and pacing
  /// tuning, plus the link class the cost model prices backends against.
  adaptive::AdaptiveOptions adaptive{};
  adaptive::LinkProfile link = adaptive::LinkProfile::loopback();
  /// Shard identity (set by ShardedEngine on its per-shard engines). When
  /// shard_count != 0 the engine only accepts HELLOs carrying the matching
  /// (shard_index, shard_count); when 0 it rejects sharded HELLOs -- both
  /// ends must agree on the topology before any symbols flow.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 0;
  /// Idle-session deadline in seconds: reap_idle() fails and reclaims any
  /// ACTIVE session with no inbound frame for longer than this (a peer
  /// that said HELLO and vanished would otherwise hold its slot -- and its
  /// snapshot's journal floor -- forever). 0 disables reaping.
  double idle_deadline_s = 0;
  /// Clock for activity stamps and reaping, in seconds on any monotonic
  /// scale. Defaults to the steady clock; netsim harnesses bind their
  /// EventLoop's now() so simulated idleness reaps in simulated time.
  std::function<double()> clock{};
  /// Observability taps (both optional; must outlive the engine). With
  /// `metrics` set the engine registers its lifecycle counters,
  /// per-backend session histograms, and the SequenceCache gate-wait /
  /// compaction timings in the registry; with `tracer` set every
  /// session lifecycle step (HELLO -> grant -> rounds -> DONE / ERROR /
  /// reap) lands in the trace rings. A ShardedEngine propagates one
  /// registry to all shards; the registry dedupes on (name, labels), so
  /// shards share process-wide cells and the roll-up is additive. Null
  /// pointers cost one predictable branch per instrumentation site --
  /// the measured "instrumentation off" baseline of
  /// bench_extra_serving_throughput's overhead gate.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

/// Whole-engine roll-up of the per-session accounting (the per-shard and
/// cross-shard stats a ShardedEngine reports). Lifetime totals: closed
/// sessions fold into the engine's retired accumulator, so `sessions` /
/// `done` / `failed` count every session ever opened while `active` counts
/// only sessions currently live in the table.
struct EngineTotals {
  std::size_t sessions = 0;
  std::size_t active = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::uint64_t bytes_to_peers = 0;
  std::uint64_t bytes_from_peers = 0;
  std::uint64_t rounds = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t items_added = 0;    ///< lifetime successful add_item calls
  std::uint64_t items_removed = 0;  ///< lifetime successful remove_item calls
  std::uint64_t journal_depth = 0;  ///< churn ops retained for snapshots now
  std::uint64_t sessions_reaped = 0;   ///< idle sessions reclaimed
  std::uint64_t sessions_evicted = 0;  ///< oldest-idle shed at the cap

  EngineTotals& operator+=(const EngineTotals& o) noexcept {
    sessions += o.sessions;
    active += o.active;
    done += o.done;
    failed += o.failed;
    bytes_to_peers += o.bytes_to_peers;
    bytes_from_peers += o.bytes_from_peers;
    rounds += o.rounds;
    frames_sent += o.frames_sent;
    items_added += o.items_added;
    items_removed += o.items_removed;
    journal_depth += o.journal_depth;
    sessions_reaped += o.sessions_reaped;
    sessions_evicted += o.sessions_evicted;
    return *this;
  }
};

/// Appends an EngineTotals roll-up to a metrics snapshot as synthetic
/// counter/gauge families -- the thin-view path the servers' METRICS
/// admin verb composes before rendering. Snapshot consistency: a totals
/// struct built under the serving lock (SyncEngine::totals via the
/// shard mutex) is internally consistent for the session-lifecycle
/// fields; items_added/items_removed/journal_depth are concurrent
/// relaxed counters and may run a few events ahead of the session
/// fields (see the model in obs/metrics.hpp).
inline void append_engine_totals(obs::MetricsSnapshot& s,
                                 const EngineTotals& t,
                                 obs::Labels labels = {}) {
  s.add_counter("riblt_engine_sessions_total",
                "Sessions ever opened (live + retired)", t.sessions, labels);
  s.add_gauge("riblt_engine_sessions_active",
              "Sessions currently reconciling",
              static_cast<std::int64_t>(t.active), labels);
  s.add_counter("riblt_engine_sessions_done_total",
                "Sessions completed by a client DONE", t.done, labels);
  s.add_counter("riblt_engine_sessions_failed_total",
                "Sessions ended by contained failure", t.failed, labels);
  s.add_counter("riblt_engine_bytes_to_peers_total",
                "SYMBOLS frame bytes emitted", t.bytes_to_peers, labels);
  s.add_counter("riblt_engine_bytes_from_peers_total",
                "HELLO/ROUND/DONE frame bytes received", t.bytes_from_peers,
                labels);
  s.add_counter("riblt_engine_rounds_total", "Round requests honored",
                t.rounds, labels);
  s.add_counter("riblt_engine_frames_sent_total", "SYMBOLS frames emitted",
                t.frames_sent, labels);
  s.add_counter("riblt_engine_items_added_total",
                "Successful add_item calls", t.items_added, labels);
  s.add_counter("riblt_engine_items_removed_total",
                "Successful remove_item calls", t.items_removed, labels);
  s.add_gauge("riblt_engine_journal_depth",
              "Churn ops retained for open snapshots",
              static_cast<std::int64_t>(t.journal_depth), labels);
  s.add_counter("riblt_engine_sessions_reaped_total",
                "Idle sessions reclaimed", t.sessions_reaped, labels);
  s.add_counter("riblt_engine_sessions_evicted_total",
                "Oldest-idle sessions shed at the cap", t.sessions_evicted,
                labels);
}

/// Relaxed event counter that stays movable (std::atomic is not): moving
/// an engine is only legal while nothing else touches it -- the same
/// contract as every other member -- so a plain value copy is exact.
struct MovableCounter {
  MovableCounter() = default;
  MovableCounter(MovableCounter&& o) noexcept
      : n(o.n.load(std::memory_order_relaxed)) {}
  MovableCounter& operator=(MovableCounter&& o) noexcept {
    n.store(o.n.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
  void fetch_add(std::uint64_t d, std::memory_order mo) noexcept {
    n.fetch_add(d, mo);
  }
  [[nodiscard]] std::uint64_t load(std::memory_order mo) const noexcept {
    return n.load(mo);
  }
  std::atomic<std::uint64_t> n{0};
};

/// Hash-keyed membership index for the served set, striped so concurrent
/// ingest threads contend only when their items land in the same stripe.
/// Entries are confirmed by symbol equality, so 64-bit hash collisions
/// between distinct items cannot mis-report membership. The stripe
/// selector uses bits the rest of the system leaves alone: shard routing
/// consumes the high 32 bits (shard_of_hash) and strata placement the
/// trailing zeros, so mid-bits keep the stripes balanced per shard.
template <Symbol T>
class StripedItemIndex {
 public:
  static constexpr std::size_t kStripes = 64;

  StripedItemIndex() : stripes_(std::make_unique<StripeArray>()) {}

  // Movable so the owning engine stays movable; moving is only legal while
  // no other thread touches either side (same contract as every member),
  // and a moved-from index is only destructible/assignable.
  StripedItemIndex(StripedItemIndex&& other) noexcept
      : stripes_(std::move(other.stripes_)),
        size_(other.size_.exchange(0, std::memory_order_relaxed)) {}
  StripedItemIndex& operator=(StripedItemIndex&& other) noexcept {
    stripes_ = std::move(other.stripes_);
    size_.store(other.size_.exchange(0, std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  /// Inserts unless an equal item is present. True on insert.
  bool insert(const HashedSymbol<T>& hs) {
    Stripe& s = stripe(hs.hash);
    const std::lock_guard<std::mutex> lk(s.mu);
    auto [lo, hi] = s.map.equal_range(hs.hash);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == hs.symbol) return false;
    }
    s.map.emplace(hs.hash, hs.symbol);
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Erases the item if present. True on erase.
  bool erase(const HashedSymbol<T>& hs) {
    Stripe& s = stripe(hs.hash);
    const std::lock_guard<std::mutex> lk(s.mu);
    auto [lo, hi] = s.map.equal_range(hs.hash);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == hs.symbol) {
        s.map.erase(it);
        size_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool contains(const HashedSymbol<T>& hs) const {
    const Stripe& s = stripe(hs.hash);
    const std::lock_guard<std::mutex> lk(s.mu);
    auto [lo, hi] = s.map.equal_range(hs.hash);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == hs.symbol) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

  /// Visits every item, one stripe at a time under that stripe's lock.
  /// Concurrent with ingest; an item added or removed *during* the walk
  /// may or may not be visited (same snapshot fuzziness any concurrent
  /// enumeration has -- callers wanting a frozen view serialize ingest).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Stripe& s : *stripes_) {
      const std::lock_guard<std::mutex> lk(s.mu);
      for (const auto& [hash, symbol] : s.map) {
        fn(HashedSymbol<T>{symbol, hash});
      }
    }
  }

 private:
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_multimap<std::uint64_t, T> map;
  };

  using StripeArray = std::array<Stripe, kStripes>;

  [[nodiscard]] Stripe& stripe(std::uint64_t hash) noexcept {
    return (*stripes_)[(hash >> 20) % kStripes];
  }
  [[nodiscard]] const Stripe& stripe(std::uint64_t hash) const noexcept {
    return (*stripes_)[(hash >> 20) % kStripes];
  }

  std::unique_ptr<StripeArray> stripes_;
  std::atomic<std::size_t> size_{0};
};

/// Server side: one item set, many concurrent sessions.
///
/// The engine owns ONE SequenceCache -- the universal coded-symbol prefix
/// of §2 -- as the single source of truth for the rateless stream. Each
/// rateless session is a snapshot cursor over that shared cache, so
/// HELLO-to-first-SYMBOLS costs O(1) regardless of set size, steady-state
/// serving costs O(cache growth + d per session) instead of O(n per
/// session), and set churn (add_item/remove_item after sessions opened)
/// updates the cache in place in O(log m) per item. Open sessions keep the
/// consistent snapshot they negotiated at HELLO: the cache journals churn
/// ops, and each cursor undoes the ops newer than its snapshot, so cells
/// already streamed to a peer are never mutated out from under it. Items
/// are hashed exactly once on add and the HashedSymbol is reused by every
/// consumer (cache, strata, IBLT, MET).
///
/// Threading contract: the INGEST surface -- add_item/remove_item (and
/// their hashed variants), contains, item_count -- is safe from any number
/// of concurrent threads and never blocks on the session machinery: the
/// membership index is striped (StripedItemIndex), the cache's churn path
/// is lock-free (see SequenceCache), and the probe digest is replicated
/// across kProbeLanes per-thread lanes merged only at HELLO time. The
/// SESSION surface -- handle_frame, next_frame, close_session, session
/// queries, totals -- is NOT internally synchronized; callers serialize it
/// (ShardedEngine holds its per-shard mutex around it) while ingest runs
/// concurrently underneath.
template <Symbol T, typename Hasher = SipHasher<T>>
class SyncEngine {
 public:
  /// Probe-digest replicas for the ingest path (merged per HELLO).
  static constexpr std::size_t kProbeLanes = 4;

  explicit SyncEngine(Hasher hasher = Hasher{}, EngineOptions options = {})
      : hasher_(std::move(hasher)),
        options_(std::move(options)),
        cache_(std::make_shared<SequenceCache<T, Hasher>>(hasher_)),
        peer_ewma_(options_.adaptive.ewma_alpha,
                   options_.adaptive.max_peers) {
    probe_lanes_.reserve(kProbeLanes);
    for (std::size_t i = 0; i < kProbeLanes; ++i) {
      probe_lanes_.push_back(std::make_unique<ProbeLane>(
          adaptive::make_probe<T, Hasher>(hasher_)));
    }
    if (options_.metrics != nullptr) bind_metrics(*options_.metrics);
  }

  /// Adds an item to the served set. Returns false (and leaves every
  /// structure untouched) if the item is already present -- a duplicate add
  /// would corrupt the subtractive cache (its cells count items, so the
  /// same item twice is indistinguishable from two distinct items).
  /// Rateless sessions already open keep their HELLO-time snapshot;
  /// sessions opened afterwards see the new item. O(log m); thread-safe
  /// (the index insert is the linearization point for duplicate races).
  bool add_item(const T& item) { return add_hashed_item(hasher_.hashed(item)); }

  /// Pre-hashed variant: the ShardedEngine router hashes once to pick the
  /// shard and hands the HashedSymbol straight through.
  bool add_hashed_item(const HashedSymbol<T>& hs) {
    if (!index_.insert(hs)) return false;  // duplicate: no-op
    cache_->add_hashed(hs);
    ProbeLane& lane = *probe_lanes_[ingest_lane()];
    {
      const std::lock_guard<std::mutex> lk(lane.mu);
      lane.probe.add_hashed(hs);  // keep the live probe digest current
    }
    items_added_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Removes an item from the served set. Returns false if absent. Open
  /// rateless sessions keep streaming their snapshot (which still contains
  /// the item); new sessions see the shrunken set. O(log m); thread-safe.
  bool remove_item(const T& item) {
    return remove_hashed_item(hasher_.hashed(item));
  }

  /// Pre-hashed variant (the ShardedEngine router hashes once to route).
  bool remove_hashed_item(const HashedSymbol<T>& hs) {
    if (!index_.erase(hs)) return false;
    cache_->remove_hashed(hs);
    ProbeLane& lane = *probe_lanes_[ingest_lane()];
    {
      const std::lock_guard<std::mutex> lk(lane.mu);
      lane.probe.remove_hashed(hs);  // subtractive cells back out cleanly
    }
    items_removed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// True iff the item is currently in the served set. Thread-safe.
  [[nodiscard]] bool contains(const T& item) const {
    return contains_hashed(hasher_.hashed(item));
  }

  [[nodiscard]] bool contains_hashed(const HashedSymbol<T>& hs) const {
    return index_.contains(hs);
  }

  /// Feeds one client->server frame. Returns the server->client frames to
  /// send back (HELLO_ACK on session open, ERROR on contained failures;
  /// often empty). Throws ProtocolError on frames that cannot be attributed
  /// to a healthy session -- see the containment contract above.
  std::vector<std::vector<std::byte>> handle_frame(
      std::span<const std::byte> data) {
    const v2::Frame frame = v2::parse_frame(data);
    std::vector<std::vector<std::byte>> out;
    switch (frame.type) {
      case v2::FrameType::kHello: {
        if (sessions_.count(frame.session_id) != 0) {
          throw ProtocolError("duplicate HELLO for session");
        }
        if (sessions_.size() >= options_.max_sessions &&
            !shed_one(out)) {
          throw ProtocolError("session limit reached");
        }
        if (frame.item_size != static_cast<std::uint32_t>(T::kSize)) {
          throw ProtocolError("item size mismatch");
        }
        if (!backend_known(frame.backend)) {
          throw ProtocolError("unknown backend id");
        }
        if (frame.checksum_len != 4 && frame.checksum_len != 8) {
          throw ProtocolError("unsupported checksum width");
        }
        if (frame.shard_count != options_.shard_count) {
          throw ProtocolError(
              options_.shard_count == 0
                  ? "sharded HELLO to an unsharded engine"
                  : "HELLO shard count does not match the engine topology");
        }
        if (frame.shard_count != 0 &&
            frame.shard_index != options_.shard_index) {
          throw ProtocolError("HELLO routed to the wrong shard");
        }
        const auto requested = static_cast<BackendId>(frame.backend);
        // Adaptive grant: estimate d (probe -> per-peer EWMA -> default),
        // then let the cost model pick the backend for this link class.
        // Without the flag (or with grants disabled) the requested backend
        // is served verbatim -- the clean fallback old clients rely on.
        const bool adaptive = frame.adaptive && options_.adaptive.enabled;
        std::uint64_t d_est = 0;
        BackendId backend = requested;
        if (adaptive) {
          d_est = estimate_diff(frame);
          backend = adaptive::choose_backend<T>(
              requested, d_est, index_.size(), frame.checksum_len,
              options_.config, options_.adaptive, options_.link);
        }
        const std::uint8_t effective =
            negotiate_checksum_len(backend, frame.checksum_len);
        // §6 count residuals: only the rateless stream has the implicit
        // (index, anchor) the residual coding needs; other backends own
        // their payload formats, so the request clamps off.
        const bool residuals =
            frame.count_residuals && backend == BackendId::kRiblt;
        ReconcilerConfig config = options_.config;
        config.checksum_len = effective;
        std::uint64_t pace_cap = 0;
        if (adaptive && backend == BackendId::kRiblt) {
          // The one backend that streams unboundedly gets a pacing runway.
          pace_cap =
              adaptive::pace_cap_for<T>(d_est, effective, options_.adaptive);
        }
        if (adaptive && backend == BackendId::kCpi) {
          // One-shot capacity: ship the whole ladder prefix for d^ up
          // front instead of walking the escalation round trips.
          config.cpi_initial_capacity = static_cast<std::size_t>(
              adaptive::cpi_capacity_for(d_est, options_.config));
        }
        Session session;
        if (backend == BackendId::kRiblt) {
          // O(1): a snapshot cursor over the shared cache -- no per-session
          // re-hash/re-encode, no per-session coding-window heap.
          auto rateless = std::make_unique<RibltEncoderBackend<T, Hasher>>(
              cache_, effective);
          if (residuals) {
            // The anchor is the snapshot the cursor just pinned: churn
            // after this HELLO does not move this session's counts.
            rateless->enable_count_residuals(cache_->set_size());
          }
          session.rateless = rateless.get();
          session.encoder = std::move(rateless);
        } else {
          // Table backends snapshot by construction: they fold the current
          // set (pre-hashed, no re-hash) into their own structures.
          session.encoder =
              make_reconciler_encoder<T>(backend, config, hasher_);
          index_.for_each([&](const HashedSymbol<T>& hs) {
            session.encoder->add_hashed_item(hs);
          });
        }
        session.stats.backend = backend;
        session.stats.checksum_len = effective;
        session.stats.bytes_from_peer = data.size();
        session.stats.adaptive = adaptive;
        session.stats.d_estimate = d_est;
        session.stats.pace_cap = pace_cap;
        session.peer_id = adaptive ? frame.peer_id : 0;
        const double opened_at = now_s();
        session.last_activity = opened_at;
        sessions_.emplace(frame.session_id, std::move(session));
        if (auto* c = cells(backend).opened; c != nullptr) c->inc();
        trace(obs::TraceKind::kOpen, frame.session_id, backend, d_est,
              pace_cap, opened_at);
        v2::Frame ack;
        ack.type = v2::FrameType::kHelloAck;
        ack.session_id = frame.session_id;
        ack.backend = static_cast<std::uint8_t>(backend);
        ack.checksum_len = effective;
        ack.count_residuals = residuals;
        if (residuals) ack.value = cache_->set_size();
        ack.adaptive = adaptive;
        ack.d_estimate = d_est;
        ack.pace_cap = pace_cap;
        out.push_back(v2::encode_frame(ack));
        return out;
      }
      case v2::FrameType::kRound: {
        Session& session = established(frame.session_id);
        session.stats.bytes_from_peer += data.size();
        // Any inbound frame proves the peer is still consuming: reopen the
        // pacing runway from the current emission position.
        session.pace_mark = session.stats.bytes_to_peer;
        if (session.stats.state != SessionState::kActive) {
          return out;  // stale request after DONE/failure: drop
        }
        if (session.stats.pace_cap != 0 && frame.payload.empty()) {
          // Pacing credit: an empty ROUND from a paced rateless session
          // renews the runway and nothing else -- it is not an escalation,
          // does not count against max_rounds, and never reaches the
          // encoder (which owns no round protocol).
          ++session.stats.credits;
          trace(obs::TraceKind::kCredit, frame.session_id,
                session.stats.backend, session.stats.credits);
          return out;
        }
        if (session.stats.rounds + 1 > options_.max_rounds) {
          out.push_back(fail(frame.session_id, session,
                             "round limit exceeded"));
          return out;
        }
        try {
          obs::Histogram* const cpu = cells(session.stats.backend).cpu_us;
          const std::uint64_t t0 = cpu != nullptr ? steady_us() : 0;
          session.encoder->handle_round_request(frame.payload);
          if (cpu != nullptr) cpu->record(steady_us() - t0);
          ++session.stats.rounds;
          trace(obs::TraceKind::kRound, frame.session_id,
                session.stats.backend, session.stats.rounds);
        } catch (const std::exception& e) {
          out.push_back(fail(frame.session_id, session, e.what()));
        }
        return out;
      }
      case v2::FrameType::kDone: {
        Session& session = established(frame.session_id);
        session.stats.bytes_from_peer += data.size();
        session.pace_mark = session.stats.bytes_to_peer;
        if (session.stats.state == SessionState::kActive) {
          session.stats.state = SessionState::kDone;
          session.stats.done_value = frame.value;
          trace(obs::TraceKind::kDone, frame.session_id,
                session.stats.backend, session.stats.bytes_to_peer,
                session.stats.bytes_from_peer);
          if (session.stats.adaptive && frame.diff_count) {
            // The observed |diff| feeds this peer's EWMA: the next session
            // from the same peer gets a history-grounded d^ with no probe.
            peer_ewma_.observe(session.peer_id, *frame.diff_count);
          }
        }
        return out;
      }
      case v2::FrameType::kError: {
        // The client aborted its side (e.g. its decoder hit a data-path
        // dead end); contain it to this session.
        Session& session = established(frame.session_id);
        session.stats.bytes_from_peer += data.size();
        if (session.stats.state == SessionState::kActive) {
          session.stats.state = SessionState::kFailed;
          session.stats.error = "peer abort: " + v2::error_text(frame);
          trace(obs::TraceKind::kError, frame.session_id,
                session.stats.backend, session.stats.bytes_to_peer,
                session.stats.bytes_from_peer);
        }
        return out;
      }
      case v2::FrameType::kAdmin:
      case v2::FrameType::kAdminReply:
        // Transport-level verbs: the servers answer these before engine
        // submission. One that reaches an engine directly (in-memory
        // harness, pre-verb transport) fails contained, like any other
        // unattributable frame.
        throw ProtocolError("ADMIN frames are handled by the transport");
      default:
        throw ProtocolError("unexpected server-to-client frame type");
    }
  }

  /// Produces the next SYMBOLS frame for a session: continuously for a
  /// rateless session, once per armed round otherwise. Returns nullopt when
  /// the session is waiting on a round request, done, failed, or unknown --
  /// or paused at its pacing cap (an adaptive rateless session emits at
  /// most pace_cap bytes past the last inbound frame; an empty ROUND
  /// credit reopens the runway). A backend failure during emit is
  /// contained: the session fails and the ERROR frame is returned in place
  /// of symbols.
  std::optional<std::vector<std::byte>> next_frame(std::uint64_t session_id) {
    // Journal upkeep rides the serving path, not ingest: churn threads
    // must never scan the session table, and this path is already
    // serialized by the caller. The throttle makes the steady-state cost
    // one atomic load per frame.
    prune_cache_journal();
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return std::nullopt;
    Session& session = it->second;
    if (session.stats.state != SessionState::kActive) return std::nullopt;
    std::size_t budget = options_.frame_budget;
    if (session.stats.pace_cap != 0) {
      // Clamp so the whole encoded frame (header + payload, where emit()
      // may overshoot its budget by at most one symbol) stays inside the
      // runway: emitted-past-last-inbound never exceeds pace_cap.
      const std::uint64_t since =
          session.stats.bytes_to_peer - session.pace_mark;
      const std::uint64_t slop =
          adaptive::max_symbol_wire<T>(session.stats.checksum_len) +
          adaptive::kFrameHeaderSlop;
      if (session.stats.pace_cap <= since + slop) {
        return std::nullopt;  // paused: waiting for a credit
      }
      budget = static_cast<std::size_t>(std::min<std::uint64_t>(
          budget, session.stats.pace_cap - since - slop));
    }
    ByteWriter payload;
    try {
      // Serve-CPU timing is sampled 1-in-8: emit() runs for every frame
      // of a rateless stream, so unconditional clock reads would be the
      // dominant instrumentation cost on tiny sessions. Quantiles off a
      // 1/8 uniform sample are unbiased; the histogram's _count reflects
      // samples, not frames (frames_sent has the exact frame count).
      obs::Histogram* const cpu =
          (obs_cpu_sample_++ & 7) == 0 ? cells(session.stats.backend).cpu_us
                                       : nullptr;
      const std::uint64_t t0 = cpu != nullptr ? steady_us() : 0;
      const std::size_t emitted = session.encoder->emit(payload, budget);
      if (cpu != nullptr) cpu->record(steady_us() - t0);
      if (emitted == 0) {
        return std::nullopt;
      }
    } catch (const std::exception& e) {
      return fail(session_id, session, e.what());
    }
    v2::Frame frame;
    frame.type = v2::FrameType::kSymbols;
    frame.session_id = session_id;
    frame.payload = std::move(payload).take();
    auto encoded = v2::encode_frame(frame);
    session.stats.bytes_to_peer += encoded.size();
    ++session.stats.frames_sent;
    return encoded;
  }

  [[nodiscard]] const SessionStats* session(std::uint64_t id) const {
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : &it->second.stats;
  }

  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.size();
  }

  [[nodiscard]] std::size_t active_count() const noexcept {
    std::size_t n = 0;
    for (const auto& [id, s] : sessions_) {
      n += s.stats.state == SessionState::kActive ? 1 : 0;
    }
    return n;
  }

  /// Sums the per-session accounting (the ShardedEngine stats roll-up).
  /// Lifetime view: starts from the retired accumulator (every session ever
  /// closed, reaped, or evicted) and adds the live table on top.
  ///
  /// Consistency: this walks sessions_, so it belongs to the SESSION
  /// surface -- callers serialize it (the shard mutex), and the
  /// session-lifecycle fields of the result are exact as of that lock.
  /// items_added/items_removed/journal_depth load concurrent relaxed
  /// counters: each is individually torn-free and monotone, but they
  /// can run ahead of the locked fields by whatever ingest completed
  /// mid-call (the obs/metrics.hpp snapshot model).
  [[nodiscard]] EngineTotals totals() const {
    EngineTotals t = retired_;
    for (const auto& [id, s] : sessions_) {
      ++t.sessions;
      switch (s.stats.state) {
        case SessionState::kActive: ++t.active; break;
        case SessionState::kDone: ++t.done; break;
        case SessionState::kFailed: ++t.failed; break;
      }
      t.bytes_to_peers += s.stats.bytes_to_peer;
      t.bytes_from_peers += s.stats.bytes_from_peer;
      t.rounds += s.stats.rounds;
      t.frames_sent += s.stats.frames_sent;
    }
    t.items_added = items_added_.load(std::memory_order_relaxed);
    t.items_removed = items_removed_.load(std::memory_order_relaxed);
    t.journal_depth = cache_->journal_size();
    return t;
  }

  [[nodiscard]] std::vector<std::uint64_t> session_ids() const {
    std::vector<std::uint64_t> out;
    out.reserve(sessions_.size());
    for (const auto& [id, s] : sessions_) out.push_back(id);
    return out;
  }

  /// Drops a session's state (a long-lived server would do this on
  /// disconnect), folding its accounting into the retired totals -- a
  /// session closed while still kActive was aborted and folds as failed.
  /// Returns false if the id is unknown.
  bool close_session(std::uint64_t id) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    retire(it);
    prune_cache_journal(/*force=*/true);
    return true;
  }

  /// Fails and reclaims every ACTIVE session whose last inbound frame is
  /// older than the engine's idle deadline (a peer that said HELLO and
  /// vanished mid-handshake would otherwise hold its slot -- and its
  /// snapshot's journal floor -- forever). Returns (session id, ERROR
  /// frame) pairs for the transport to deliver before dropping its routes.
  /// No-op (empty) when EngineOptions::idle_deadline_s is 0.
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> reap_idle() {
    return reap_idle(options_.idle_deadline_s);
  }

  /// Same sweep against an explicit deadline (seconds of allowed silence).
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> reap_idle(
      double deadline_s) {
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> reaped;
    if (deadline_s <= 0 || sessions_.empty()) return reaped;
    const double now = now_s();
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      Session& s = it->second;
      if (s.stats.state == SessionState::kActive &&
          now - s.last_activity > deadline_s) {
        s.stats.state = SessionState::kFailed;
        s.stats.error = "idle session reaped";
        reaped.emplace_back(it->first,
                            v2::make_error_frame(it->first, s.stats.error));
        ++retired_.sessions_reaped;
        if (obs_reaped_ != nullptr) obs_reaped_->inc();
        trace(obs::TraceKind::kReap, it->first, s.stats.backend,
              s.stats.bytes_to_peer);
        retire(it++);
      } else {
        ++it;
      }
    }
    if (!reaped.empty()) prune_cache_journal(/*force=*/true);
    return reaped;
  }

  [[nodiscard]] std::size_t item_count() const noexcept {
    return index_.size();
  }

  /// Lifetime ingest counters (successful adds/removes; thread-safe).
  [[nodiscard]] std::uint64_t items_added() const noexcept {
    return items_added_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t items_removed() const noexcept {
    return items_removed_.load(std::memory_order_relaxed);
  }

  /// Cells of the shared rateless stream materialized so far (diagnostics).
  [[nodiscard]] std::size_t cache_cells() const noexcept {
    return cache_->materialized();
  }

  /// Churn ops currently retained for open sessions' snapshots.
  [[nodiscard]] std::size_t cache_journal_size() const noexcept {
    return cache_->journal_size();
  }

  /// Visits every item of the served set as HashedSymbols, one index stripe
  /// at a time under that stripe's lock (StripedItemIndex::for_each
  /// snapshot fuzziness applies under concurrent ingest). What a Replica
  /// uses to seed each anti-entropy client without keeping a second copy.
  template <typename Fn>
  void for_each_item(Fn&& fn) const {
    index_.for_each(std::forward<Fn>(fn));
  }

 private:
  struct Session {
    std::unique_ptr<ReconcilerEncoder<T>> encoder;
    /// Non-owning view of `encoder` when it is the rateless cursor backend;
    /// used for journal-pruning floors. Null for table backends.
    RibltEncoderBackend<T, Hasher>* rateless = nullptr;
    SessionStats stats;
    std::uint64_t peer_id = 0;    ///< adaptive: EWMA key (0 = anonymous)
    /// bytes_to_peer at the last inbound frame -- the pacing runway origin.
    std::uint64_t pace_mark = 0;
    /// now_s() at the last inbound frame (HELLO included): what reap_idle
    /// and cap-shedding measure idleness against.
    double last_activity = 0;
  };

  /// The adaptive d^ for a HELLO: probe digest if carried (a valid digest
  /// of mismatched geometry -- config skew -- degrades to the fallbacks,
  /// a malformed one is a protocol error), else this peer's EWMA, else the
  /// configured default.
  [[nodiscard]] std::uint64_t estimate_diff(const v2::Frame& frame) {
    if (!frame.probe.empty()) {
      std::optional<iblt::StrataEstimator<T, Hasher>> remote;
      try {
        remote.emplace(iblt::StrataEstimator<T, Hasher>::deserialize(
            frame.probe, hasher_));
      } catch (const std::exception&) {
        throw ProtocolError("malformed adaptive probe");
      }
      try {
        remote->subtract(merged_probe());
        return std::max<std::uint64_t>(1, remote->estimate());
      } catch (const std::exception&) {
        // Shape mismatch: the peer built a different probe geometry.
      }
    }
    if (const std::uint64_t e = peer_ewma_.estimate(frame.peer_id)) return e;
    return options_.adaptive.default_d;
  }

  /// The full-set probe digest: the per-lane replicas absorbed into one
  /// (linearity; iblt::StrataEstimator::absorb). Built per HELLO-with-probe
  /// -- a handful of small IBLT copies, amortized over a whole session --
  /// so ingest lanes never contend on a single digest.
  [[nodiscard]] iblt::StrataEstimator<T, Hasher> merged_probe() {
    auto merged = [&] {
      ProbeLane& first = *probe_lanes_[0];
      const std::lock_guard<std::mutex> lk(first.mu);
      return first.probe;  // copy under the lane lock
    }();
    for (std::size_t i = 1; i < probe_lanes_.size(); ++i) {
      ProbeLane& lane = *probe_lanes_[i];
      const std::lock_guard<std::mutex> lk(lane.mu);
      merged.absorb(lane.probe);
    }
    return merged;
  }

  Session& established(std::uint64_t id) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      throw ProtocolError("unknown session id");
    }
    // Every attributed inbound frame is proof of life (emission does not
    // count: a server streaming into a void is exactly what reaping ends).
    it->second.last_activity = now_s();
    return it->second;
  }

  /// Drops journal entries no active rateless session can still need. The
  /// journal only accumulates while snapshot cursors are alive, and a
  /// stalled session can pin its floor indefinitely, so rescan sessions
  /// only once the journal has grown enough since the last scan (unless
  /// forced). Serving-path only (it walks sessions_): next_frame and
  /// close_session call it; ingest threads never do.
  void prune_cache_journal(bool force = false) {
    if (cache_->journal_size() == 0) {
      journal_size_at_prune_ = 0;
      if (obs_journal_ != nullptr) obs_journal_->set(0);
      return;
    }
    if (!force && cache_->journal_size() < journal_size_at_prune_ + 64) {
      return;
    }
    std::uint64_t min_pos = cache_->version();
    for (const auto& [id, s] : sessions_) {
      if (s.rateless != nullptr && s.stats.state == SessionState::kActive) {
        min_pos = std::min(min_pos, s.rateless->journal_position());
      }
    }
    cache_->prune_journal(min_pos);
    journal_size_at_prune_ = cache_->journal_size();
    if (obs_journal_ != nullptr) {
      obs_journal_->set(static_cast<std::int64_t>(journal_size_at_prune_));
    }
  }

  /// Marks the session failed and builds the ERROR frame -- the containment
  /// boundary: only this session is affected.
  [[nodiscard]] std::vector<std::byte> fail(std::uint64_t id, Session& session,
                                            const std::string& reason) {
    session.stats.state = SessionState::kFailed;
    session.stats.error = reason;
    trace(obs::TraceKind::kError, id, session.stats.backend,
          session.stats.bytes_to_peer, session.stats.bytes_from_peer);
    return v2::make_error_frame(id, reason);
  }

  [[nodiscard]] double now_s() const {
    if (options_.clock) return options_.clock();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Folds a session's accounting into the retired totals and erases it.
  /// A session still kActive here was aborted: it counts as failed.
  void retire(typename std::map<std::uint64_t, Session>::iterator it) {
    const SessionStats& s = it->second.stats;
    ++retired_.sessions;
    if (s.state == SessionState::kDone) {
      ++retired_.done;
    } else {
      ++retired_.failed;
    }
    retired_.bytes_to_peers += s.bytes_to_peer;
    retired_.bytes_from_peers += s.bytes_from_peer;
    retired_.rounds += s.rounds;
    retired_.frames_sent += s.frames_sent;
    const BackendCells& c = cells(s.backend);
    if (s.state == SessionState::kDone) {
      if (c.done != nullptr) c.done->inc();
    } else if (c.failed != nullptr) {
      c.failed->inc();
    }
    if (c.bytes_to_peer != nullptr) c.bytes_to_peer->record(s.bytes_to_peer);
    if (c.rounds != nullptr) c.rounds->record(s.rounds);
    trace(obs::TraceKind::kClose, it->first, s.backend, s.bytes_to_peer,
          s.rounds);
    sessions_.erase(it);
  }

  /// Graceful shedding at the session cap: prefer reclaiming a slot nobody
  /// will miss (any already-terminal session retires silently); with every
  /// slot active, evict the one idle the longest -- it gets an ERROR frame
  /// so its peer learns the session died rather than waiting on silence.
  /// False only when there is nothing to shed (max_sessions == 0).
  bool shed_one(std::vector<std::vector<std::byte>>& out) {
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->second.stats.state != SessionState::kActive) {
        retire(it);
        prune_cache_journal(/*force=*/true);
        return true;
      }
    }
    auto victim = sessions_.end();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (victim == sessions_.end() ||
          it->second.last_activity < victim->second.last_activity) {
        victim = it;
      }
    }
    if (victim == sessions_.end()) return false;
    victim->second.stats.state = SessionState::kFailed;
    victim->second.stats.error = "evicted at session cap";
    out.push_back(
        v2::make_error_frame(victim->first, victim->second.stats.error));
    ++retired_.sessions_evicted;
    if (obs_evicted_ != nullptr) obs_evicted_->inc();
    trace(obs::TraceKind::kEvict, victim->first,
          victim->second.stats.backend, victim->second.stats.bytes_to_peer);
    retire(victim);
    prune_cache_journal(/*force=*/true);
    return true;
  }

  // ------------------------------------------------------ observability

  /// Pre-resolved registry handles per backend wire id (1..4; slot 0
  /// unused). Resolved once at construction so the hot paths never
  /// touch the registry -- a null handle is the "instrumentation off"
  /// branch.
  struct BackendCells {
    obs::Counter* opened = nullptr;
    obs::Counter* done = nullptr;
    obs::Counter* failed = nullptr;
    obs::Histogram* bytes_to_peer = nullptr;
    obs::Histogram* rounds = nullptr;
    obs::Histogram* cpu_us = nullptr;  ///< per-call encode/round CPU
  };

  [[nodiscard]] const BackendCells& cells(BackendId b) const noexcept {
    const auto i = static_cast<std::size_t>(b);
    return obs_cells_[i < obs_cells_.size() ? i : 0];
  }

  void bind_metrics(obs::MetricsRegistry& m) {
    for (std::uint8_t wire = 1; wire <= 4; ++wire) {
      const auto id = static_cast<BackendId>(wire);
      const obs::Labels labels{{"backend", backend_name(id)}};
      BackendCells& c = obs_cells_[wire];
      c.opened = &m.counter("riblt_sessions_opened_total",
                            "Sessions accepted at HELLO", labels);
      c.done = &m.counter("riblt_sessions_done_total",
                          "Sessions retired after a client DONE", labels);
      c.failed = &m.counter("riblt_sessions_failed_total",
                            "Sessions retired failed/aborted", labels);
      c.bytes_to_peer =
          &m.histogram("riblt_session_bytes_to_peer",
                       "SYMBOLS bytes emitted per retired session", labels);
      c.rounds = &m.histogram("riblt_session_rounds",
                              "Round escalations per retired session",
                              labels);
      c.cpu_us = &m.histogram(
          "riblt_serve_cpu_us",
          "Serving-side encode/round CPU per call (microseconds; emit() "
          "calls sampled 1-in-8)",
          labels);
    }
    obs_reaped_ =
        &m.counter("riblt_sessions_reaped_total", "Idle sessions reclaimed");
    obs_evicted_ = &m.counter("riblt_sessions_evicted_total",
                              "Oldest-idle sessions shed at the cap");
    // No live-session gauge here: scrape-time composition already exports
    // riblt_engine_sessions_active from EngineTotals, so the hot open path
    // stays at one counter increment.
    obs_journal_ = &m.gauge("riblt_cache_journal_depth",
                            "Churn ops retained for open snapshots");
    cache_->bind_metrics(
        &m.histogram("riblt_cache_gate_wait_us",
                     "ExclusiveGate acquire+drain wait (microseconds)"),
        &m.histogram("riblt_cache_compact_us",
                     "Coding-window compaction duration (microseconds)"),
        &m.counter("riblt_cache_compactions_total",
                   "Coding-window compactions run"));
  }

  /// `ts_hint` lets call sites that already computed now_s() skip a
  /// second clock read (the HELLO hot path cares); NaN = read the clock.
  void trace(obs::TraceKind kind, std::uint64_t sid, BackendId backend,
             std::uint64_t a = 0, std::uint64_t b = 0,
             double ts_hint = std::numeric_limits<double>::quiet_NaN()) {
    if (options_.tracer == nullptr) return;
    obs::TraceEvent ev;
    ev.ts_s = std::isnan(ts_hint) ? now_s() : ts_hint;
    ev.session_id = sid;
    ev.kind = kind;
    ev.backend = static_cast<std::uint8_t>(backend);
    ev.a = a;
    ev.b = b;
    options_.tracer->record(ev);
  }

  /// Steady-clock microseconds (CPU-ish timing for serve histograms;
  /// only read when the corresponding handle is bound).
  [[nodiscard]] static std::uint64_t steady_us() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// One probe-digest replica per ingest lane (adaptive d estimation),
  /// kept incrementally under churn like the cache; see merged_probe().
  struct ProbeLane {
    explicit ProbeLane(iblt::StrataEstimator<T, Hasher> p)
        : probe(std::move(p)) {}
    std::mutex mu;
    iblt::StrataEstimator<T, Hasher> probe;
  };

  /// Round-robin thread->probe-lane assignment (stable per thread).
  [[nodiscard]] static std::size_t ingest_lane() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t ordinal =
        next.fetch_add(1, std::memory_order_relaxed);
    return ordinal % kProbeLanes;
  }

  Hasher hasher_;
  EngineOptions options_;
  StripedItemIndex<T> index_;  ///< served-set membership (hash + symbol)
  std::shared_ptr<SequenceCache<T, Hasher>> cache_;  ///< the rateless stream
  std::size_t journal_size_at_prune_ = 0;  ///< rescan throttle
  std::map<std::uint64_t, Session> sessions_;
  EngineTotals retired_;  ///< fold of every closed/reaped/evicted session
  std::vector<std::unique_ptr<ProbeLane>> probe_lanes_;
  MovableCounter items_added_;
  MovableCounter items_removed_;
  adaptive::PeerEwma peer_ewma_;  ///< per-peer diff history (adaptive)
  /// Registry handles (null = untapped); see bind_metrics().
  std::array<BackendCells, 5> obs_cells_{};
  std::uint64_t obs_cpu_sample_ = 0;  ///< 1-in-8 serve-CPU sampling phase
  obs::Counter* obs_reaped_ = nullptr;
  obs::Counter* obs_evicted_ = nullptr;
  obs::Gauge* obs_journal_ = nullptr;
};

/// Client side of one engine session: produces HELLO, absorbs SYMBOLS,
/// answers with ROUND requests (round-based backends) and the closing DONE.
template <Symbol T, typename Hasher = SipHasher<T>>
class SyncClient {
 public:
  SyncClient(std::uint64_t session_id, BackendId backend,
             Hasher hasher = Hasher{}, ReconcilerConfig config = {})
      : session_id_(session_id),
        backend_(backend),
        hasher_(std::move(hasher)),
        config_(std::move(config)) {
    if (session_id == 0) {
      throw std::invalid_argument("SyncClient: session id 0 is reserved");
    }
  }

  /// Adds a local set item; must precede hello(). The item is hashed once
  /// here and the HashedSymbol reused end-to-end (decoder seeding included),
  /// mirroring the server's hash-once discipline.
  void add_item(const T& item) { add_hashed_item(hasher_.hashed(item)); }

  /// Pre-hashed variant: a client opening a second session (or a
  /// ShardedClient splitting one set across shards) reuses the hashes it
  /// already computed instead of re-hashing the whole set per session.
  void add_hashed_item(const HashedSymbol<T>& item) {
    if (state_ != State::kIdle) {
      throw std::logic_error("SyncClient: items must precede hello()");
    }
    items_.push_back(item);
  }

  /// Declares the sharded-topology identity this session's HELLO carries
  /// (index within count). Must precede hello(); count 0 means unsharded.
  void set_shard(std::uint32_t index, std::uint32_t count) {
    if (state_ != State::kIdle) {
      throw std::logic_error("SyncClient: set_shard must precede hello()");
    }
    if (count != 0 && index >= count) {
      throw std::invalid_argument("SyncClient: shard index out of range");
    }
    shard_index_ = index;
    shard_count_ = count;
  }

  /// Requests adaptive negotiation: the HELLO carries the flag, this
  /// peer_id (a stable identity for the server's per-peer EWMA; 0 =
  /// anonymous), and -- when `send_probe` -- a tiny strata digest of the
  /// local set for a first-contact d estimate. The server may then grant
  /// a different backend than requested; handle_frame adopts it from the
  /// HELLO_ACK. Must precede hello().
  void set_adaptive(std::uint64_t peer_id, bool send_probe = true) {
    if (state_ != State::kIdle) {
      throw std::logic_error("SyncClient: set_adaptive must precede hello()");
    }
    adaptive_ = true;
    peer_id_ = peer_id;
    send_probe_ = send_probe;
  }

  /// The opening frame; call exactly once.
  [[nodiscard]] std::vector<std::byte> hello() {
    if (state_ != State::kIdle) throw ProtocolError("duplicate HELLO");
    state_ = State::kAwaitAck;
    v2::Frame frame;
    frame.type = v2::FrameType::kHello;
    frame.session_id = session_id_;
    frame.backend = static_cast<std::uint8_t>(backend_);
    frame.item_size = static_cast<std::uint32_t>(T::kSize);
    frame.checksum_len = config_.checksum_len;
    frame.count_residuals =
        config_.count_residuals && backend_ == BackendId::kRiblt;
    frame.shard_index = shard_index_;
    frame.shard_count = shard_count_;
    frame.adaptive = adaptive_;
    frame.peer_id = peer_id_;
    if (adaptive_ && send_probe_) {
      auto probe = adaptive::make_probe<T, Hasher>(hasher_);
      for (const auto& x : items_) probe.add_hashed(x);
      frame.probe = probe.serialize(adaptive::kProbeChecksumLen);
    }
    return v2::encode_frame(frame);
  }

  /// Consumes one server->client frame; returns the client->server frames
  /// to send back (ROUND escalations, the final DONE; often empty). Throws
  /// ProtocolError on out-of-order or mis-addressed frames.
  std::vector<std::vector<std::byte>> handle_frame(
      std::span<const std::byte> data) {
    const v2::Frame frame = v2::parse_frame(data);
    if (frame.session_id != session_id_) {
      throw ProtocolError("frame for a different session");
    }
    std::vector<std::vector<std::byte>> out;
    switch (frame.type) {
      case v2::FrameType::kHelloAck: {
        if (state_ != State::kAwaitAck) {
          throw ProtocolError("unexpected HELLO_ACK");
        }
        if (frame.adaptive && !adaptive_) {
          throw ProtocolError("HELLO_ACK grants unrequested adaptive mode");
        }
        // An adaptive grant carries the server's backend *choice*; only a
        // non-adaptive ACK must echo the requested backend verbatim.
        if (frame.adaptive) {
          if (!backend_known(frame.backend)) {
            throw ProtocolError("HELLO_ACK grants unknown backend");
          }
          backend_ = static_cast<BackendId>(frame.backend);
          granted_ = true;
          d_estimate_ = frame.d_estimate;
          pace_cap_ = frame.pace_cap;
        } else if (frame.backend != static_cast<std::uint8_t>(backend_)) {
          throw ProtocolError("HELLO_ACK backend mismatch");
        }
        if (frame.checksum_len != 4 && frame.checksum_len != 8) {
          throw ProtocolError("HELLO_ACK checksum width invalid");
        }
        if (frame.count_residuals && !config_.count_residuals) {
          throw ProtocolError("HELLO_ACK grants unrequested count residuals");
        }
        // Adopt the server's effective checksum width (it may clamp our
        // narrow-checksum request for backends that do not support it) and
        // its count-residual grant + anchor (it may clamp the request off).
        config_.checksum_len = frame.checksum_len;
        config_.count_residuals = frame.count_residuals;
        config_.residual_anchor = frame.count_residuals ? frame.value : 0;
        decoder_ = make_reconciler_decoder<T>(backend_, config_, hasher_);
        for (const auto& x : items_) decoder_->add_hashed_item(x);
        // The decoder owns the set now; holding a second copy for the
        // session's lifetime would double per-client memory.
        items_.clear();
        items_.shrink_to_fit();
        state_ = State::kActive;
        return out;
      }
      case v2::FrameType::kSymbols: {
        if (state_ == State::kIdle || state_ == State::kAwaitAck) {
          throw ProtocolError("SYMBOLS before HELLO");
        }
        if (state_ != State::kActive) return out;  // stale in-flight frame
        try {
          decoder_->absorb(frame.payload);
        } catch (const std::exception& e) {
          // Malformed payloads AND data-path dead ends (e.g. a difference
          // past MET-IBLT's deepest block) are contained: this session
          // fails and the server is told to stop streaming, instead of an
          // exception wedging the session open on both ends.
          state_ = State::kFailed;
          error_ = e.what();
          out.push_back(v2::make_error_frame(session_id_, error_));
          return out;
        }
        payload_bytes_ += frame.payload.size();
        if (decoder_->decoded()) {
          diff_ = decoder_->diff();
          state_ = State::kComplete;
          v2::Frame done;
          done.type = v2::FrameType::kDone;
          done.session_id = session_id_;
          done.value = payload_bytes_;
          if (granted_) {
            // Feed the server's per-peer EWMA (only a peer that granted
            // adaptive mode understands the DONE extension).
            done.diff_count = diff_.remote.size() + diff_.local.size();
          }
          out.push_back(v2::encode_frame(done));
        } else if (auto request = decoder_->round_request()) {
          ++rounds_;
          v2::Frame round;
          round.type = v2::FrameType::kRound;
          round.session_id = session_id_;
          round.payload = std::move(*request);
          out.push_back(v2::encode_frame(round));
        } else if (pace_cap_ != 0) {
          // Paced stream: renew the server's emission runway with an empty
          // ROUND credit once we are half a cap past the last one, so the
          // next credit is in flight before the server stalls.
          credit_bytes_ += data.size();
          if (2 * credit_bytes_ >= pace_cap_) {
            credit_bytes_ = 0;
            ++credits_;
            v2::Frame credit;
            credit.type = v2::FrameType::kRound;
            credit.session_id = session_id_;
            out.push_back(v2::encode_frame(credit));
          }
        }
        return out;
      }
      case v2::FrameType::kError: {
        // Terminal states stick: a stale/crossing ERROR (e.g. the server's
        // emit failure racing our DONE) must not unsettle a session that
        // already completed or failed.
        if (state_ == State::kComplete || state_ == State::kFailed) {
          return out;
        }
        state_ = State::kFailed;
        error_ = v2::error_text(frame);
        return out;
      }
      default:
        throw ProtocolError("unexpected client-to-server frame type");
    }
  }

  /// True once hello() has been produced.
  [[nodiscard]] bool started() const noexcept {
    return state_ != State::kIdle;
  }
  [[nodiscard]] bool complete() const noexcept {
    return state_ == State::kComplete;
  }
  [[nodiscard]] bool failed() const noexcept {
    return state_ == State::kFailed;
  }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  /// The recovered symmetric difference; meaningful once complete().
  [[nodiscard]] const SetDiff<T>& diff() const noexcept { return diff_; }
  [[nodiscard]] std::uint64_t session_id() const noexcept {
    return session_id_;
  }
  [[nodiscard]] BackendId backend() const noexcept { return backend_; }
  /// SYMBOLS payload bytes absorbed (the DONE frame reports this number).
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept {
    return payload_bytes_;
  }
  [[nodiscard]] std::uint32_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint8_t checksum_len() const noexcept {
    return config_.checksum_len;
  }
  /// True once the server granted adaptive mode (HELLO_ACK flag).
  [[nodiscard]] bool adaptive_granted() const noexcept { return granted_; }
  /// The server's d estimate from the grant (0 until granted).
  [[nodiscard]] std::uint64_t d_estimate() const noexcept {
    return d_estimate_;
  }
  /// The emission runway granted (0 = unpaced session).
  [[nodiscard]] std::uint64_t pace_cap() const noexcept { return pace_cap_; }
  /// Pacing credits sent so far.
  [[nodiscard]] std::uint32_t credits() const noexcept { return credits_; }

 private:
  enum class State : std::uint8_t {
    kIdle,
    kAwaitAck,
    kActive,
    kComplete,
    kFailed,
  };

  std::uint64_t session_id_;
  BackendId backend_;
  Hasher hasher_;
  ReconcilerConfig config_;
  std::uint32_t shard_index_ = 0;
  std::uint32_t shard_count_ = 0;  ///< 0 = unsharded
  bool adaptive_ = false;          ///< request adaptive negotiation
  bool send_probe_ = false;        ///< attach the strata probe to HELLO
  bool granted_ = false;           ///< server granted adaptive mode
  std::uint64_t peer_id_ = 0;
  std::uint64_t d_estimate_ = 0;   ///< server's d^ from the grant
  std::uint64_t pace_cap_ = 0;     ///< emission runway (0 = unpaced)
  std::uint64_t credit_bytes_ = 0; ///< bytes absorbed since last credit
  std::uint32_t credits_ = 0;
  std::vector<HashedSymbol<T>> items_;  ///< hashed once, reused everywhere
  std::unique_ptr<ReconcilerDecoder<T>> decoder_;
  State state_ = State::kIdle;
  std::uint64_t payload_bytes_ = 0;
  std::uint32_t rounds_ = 0;
  SetDiff<T> diff_;
  std::string error_;
};

}  // namespace ribltx::sync
