// Multi-core sharded serving: a session router over K per-shard engines.
//
// One SyncEngine is single-threaded by design (one SequenceCache, one
// session table). To scale a server past one core, ShardedEngine partitions
// the *item space* into K shards with a consistent keyed hash: shard k owns
// a SyncEngine (with its own SequenceCache) holding exactly the items that
// hash into shard k. A client splits its local set with the same hash --
// both ends share the SipHash key already, so the partition is identical by
// construction -- and opens one session per shard; the per-shard symmetric
// differences are disjoint and their union is exactly the full difference,
// so sharded reconciliation recovers the same diff as unsharded (the
// cross-shard parity test pins this).
//
// Topology negotiation rides in HELLO: a sharded session's HELLO carries
// (shard_index, shard_count) behind v2::kFlagSharded, the router routes it
// to shard_index, and the shard engine rejects any topology mismatch
// loudly (ProtocolError) before symbols flow. Non-HELLO frames route by the
// session id the router recorded at HELLO time, read with
// v2::peek_session_id (no payload copy on the router thread).
//
// Threaded serving: start() launches one worker per shard, each owning its
// engine behind the shard mutex with an inbox of raw frames. A worker
// drains its inbox, then pumps one SYMBOLS frame per active session per
// round, handing output to the sink *outside* the shard lock (so a sink
// may call submit() -- even back into the same shard -- without deadlock).
// A blocking sink is the backpressure: the worker streams as fast as the
// sink accepts, which is the paper's serve-at-line-rate model. Set churn
// (add_item/remove_item/contains/item_count) bypasses the shard mutex
// entirely -- SyncEngine's ingest surface is internally synchronized
// (striped index, lock-free cache churn, per-lane probes), so any number
// of writer threads can churn a shard while its worker streams sessions;
// only the session machinery (and stats()) takes the shard locks.
//
// bench/extra_shard_scaling.cpp measures sessions/sec against shard count;
// tests/test_sharded.cpp holds the parity and threaded-smoke coverage.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sync/engine.hpp"

namespace ribltx::sync {

/// The consistent item->shard map: fixed-point scaling of the hash's high
/// bits (deterministic across platforms, unbiased for any shard count, and
/// keyed because the hash is the parties' shared SipHash).
[[nodiscard]] constexpr std::size_t shard_of_hash(
    std::uint64_t hash, std::size_t shard_count) noexcept {
  return static_cast<std::size_t>(
      ((hash >> 32) * static_cast<std::uint64_t>(shard_count)) >> 32);
}

/// Cross-shard stats roll-up (per shard plus totals).
struct ShardedStats {
  struct PerShard {
    std::size_t items = 0;
    std::size_t protocol_errors = 0;
    EngineTotals totals{};
  };
  std::vector<PerShard> shards;
  std::size_t items = 0;
  std::size_t protocol_errors = 0;
  EngineTotals totals{};
};

template <Symbol T, typename Hasher = SipHasher<T>>
class ShardedEngine {
 public:
  /// Delivery callback for threaded serving; invoked concurrently from the
  /// shard workers (one frame at a time per shard), never under a shard
  /// lock. Frames carry their session id; block to apply backpressure.
  using Sink = std::function<void(std::vector<std::byte> frame)>;

  explicit ShardedEngine(std::size_t shard_count, Hasher hasher = Hasher{},
                         EngineOptions options = EngineOptions{})
      : hasher_(std::move(hasher)) {
    if (shard_count == 0 || shard_count > kMaxShards) {
      throw std::invalid_argument("ShardedEngine: shard count out of range");
    }
    // With an idle deadline configured, idle workers wake on a bounded
    // tick (half the deadline, capped at 200 ms) so reaping runs even when
    // no frames arrive -- the maintenance tick of the serving path.
    if (options.idle_deadline_s > 0) {
      reap_wait_s_ = std::min(options.idle_deadline_s / 2, 0.2);
    }
    shards_.reserve(shard_count);
    for (std::size_t k = 0; k < shard_count; ++k) {
      EngineOptions shard_options = options;
      shard_options.shard_index = static_cast<std::uint32_t>(k);
      shard_options.shard_count = static_cast<std::uint32_t>(shard_count);
      shards_.push_back(std::make_unique<Shard>(hasher_, shard_options));
    }
    // The per-shard engines each bind their cells against the same
    // registry; dedup on (name, labels) makes those process-wide, so the
    // roll-up stays additive across shards. The router adds one family of
    // its own: inbox depth per worker wakeup (the queue the serving
    // threads feed and the shard workers drain).
    if (options.metrics != nullptr) {
      obs_inbox_depth_ = &options.metrics->histogram(
          "riblt_shard_inbox_depth",
          "Frames drained per shard worker wakeup (non-empty drains)");
    }
  }

  ~ShardedEngine() { stop(); }

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// The shard an item routes to (what a client must compute identically).
  [[nodiscard]] std::size_t shard_of(const T& item) const {
    return shard_of_hash(hasher_(item), shards_.size());
  }

  // ---------------------------------------------------------- set churn

  /// Adds an item to its shard's engine (hashed once). Concurrent-ingest
  /// path: no shard mutex -- SyncEngine's ingest surface is internally
  /// synchronized, so writer threads never queue behind a worker that is
  /// streaming sessions (nor behind each other, beyond a striped-index
  /// bucket). Safe from any thread while workers run; false on duplicate.
  bool add_item(const T& item) {
    const HashedSymbol<T> hs = hasher_.hashed(item);
    return shards_[shard_of_hash(hs.hash, shards_.size())]
        ->engine.add_hashed_item(hs);
  }

  /// Removes an item from its shard's engine (hashed once); same lock-free
  /// ingest path as add_item. False if absent.
  bool remove_item(const T& item) {
    const HashedSymbol<T> hs = hasher_.hashed(item);
    return shards_[shard_of_hash(hs.hash, shards_.size())]
        ->engine.remove_hashed_item(hs);
  }

  [[nodiscard]] bool contains(const T& item) const {
    const HashedSymbol<T> hs = hasher_.hashed(item);
    return shards_[shard_of_hash(hs.hash, shards_.size())]
        ->engine.contains_hashed(hs);
  }

  [[nodiscard]] std::size_t item_count() const {
    std::size_t n = 0;
    for (const auto& sh : shards_) n += sh->engine.item_count();
    return n;
  }

  // ------------------------------------------- synchronous (router) path

  /// Routes one client frame to its shard engine and returns the replies --
  /// the single-threaded mirror of SyncEngine::handle_frame, used by tests
  /// and in-process callers. Throws ProtocolError exactly where SyncEngine
  /// would (unattributable frames, topology mismatches).
  std::vector<std::vector<std::byte>> handle_frame(
      std::span<const std::byte> data) {
    Shard& sh = *shards_[route(data)];
    try {
      const std::lock_guard<std::mutex> lk(sh.mu);
      return sh.engine.handle_frame(data);
    } catch (...) {
      // A HELLO the shard engine rejected must not leave its freshly
      // recorded route behind.
      if (is_hello(data)) drop_route(v2::peek_session_id(data));
      throw;
    }
  }

  /// Produces the next SYMBOLS frame for a session (synchronous path).
  std::optional<std::vector<std::byte>> next_frame(std::uint64_t session_id) {
    const std::optional<std::size_t> k = route_of(session_id);
    if (!k) return std::nullopt;
    Shard& sh = *shards_[*k];
    const std::lock_guard<std::mutex> lk(sh.mu);
    return sh.engine.next_frame(session_id);
  }

  bool close_session(std::uint64_t session_id) {
    const std::optional<std::size_t> k = route_of(session_id);
    if (!k) return false;
    Shard& sh = *shards_[*k];
    bool erased = false;
    {
      const std::lock_guard<std::mutex> lk(sh.mu);
      erased = sh.engine.close_session(session_id);
    }
    // Drop the route only when the engine actually held the session: if
    // the HELLO is still queued in the shard inbox, erasing here would
    // orphan the session the worker is about to open (unreachable by any
    // route_of-gated API, streaming forever). Leaving the route intact
    // keeps the session addressable so a later close_session lands.
    if (erased) drop_route(session_id);
    return erased;
  }

  // ------------------------------------------------------ threaded path

  /// Launches one worker thread per shard delivering output through `sink`.
  void start(Sink sink) {
    if (running_.load(std::memory_order_acquire)) {
      throw std::logic_error("ShardedEngine: already started");
    }
    sink_ = std::move(sink);
    if (!sink_) throw std::invalid_argument("ShardedEngine: null sink");
    for (auto& sh : shards_) {
      sh->stop = false;
      sh->thread = std::thread([this, shard = sh.get()] { worker(*shard); });
    }
    running_.store(true, std::memory_order_release);
  }

  /// Stops and joins the workers; queued inbox frames may go unprocessed.
  void stop() {
    if (!running_.exchange(false, std::memory_order_acq_rel)) return;
    for (auto& sh : shards_) {
      {
        const std::lock_guard<std::mutex> lk(sh->mu);
        sh->stop = true;
      }
      sh->cv.notify_all();
    }
    for (auto& sh : shards_) {
      if (sh->thread.joinable()) sh->thread.join();
    }
  }

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Enqueues one raw client frame for its shard's worker. Thread-safe.
  /// Unroutable frames (garbage prefix, unknown session, bad topology)
  /// throw ProtocolError to the caller, exactly like the synchronous path.
  void submit(std::vector<std::byte> frame) {
    Shard& sh = *shards_[route(frame)];
    {
      const std::lock_guard<std::mutex> lk(sh.mu);
      sh.inbox.push_back(std::move(frame));
    }
    sh.cv.notify_one();
  }

  /// Locks each shard in turn and aggregates items/sessions/bytes.
  ///
  /// Snapshot consistency: each PerShard row is exact at the instant its
  /// shard lock was held (modulo the relaxed ingest counters documented
  /// on SyncEngine::totals()), but the shards are sampled sequentially --
  /// the cross-shard totals are a *smear*, not one instant. Every row is
  /// internally consistent and monotone fields never run backwards
  /// between successive calls; invariants that span shards (e.g.
  /// sessions == done + failed + active summed across shards) can be
  /// transiently off while workers retire sessions mid-walk. Same
  /// bracketing contract as obs::MetricsRegistry::snapshot().
  [[nodiscard]] ShardedStats stats() const {
    ShardedStats out;
    out.shards.reserve(shards_.size());
    for (const auto& sh : shards_) {
      ShardedStats::PerShard row;
      {
        const std::lock_guard<std::mutex> lk(sh->mu);
        row.items = sh->engine.item_count();
        row.protocol_errors = sh->protocol_errors;
        // Lifetime view: engine totals already include every session the
        // worker retired (close_session folds into the engine accumulator).
        row.totals = sh->engine.totals();
      }
      out.items += row.items;
      out.protocol_errors += row.protocol_errors;
      out.totals += row.totals;
      out.shards.push_back(row);
    }
    return out;
  }

  static constexpr std::size_t kMaxShards = 4096;

 private:
  struct Shard {
    Shard(const Hasher& hasher, const EngineOptions& options)
        : engine(hasher, options) {}

    SyncEngine<T, Hasher> engine;
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::byte>> inbox;
    std::size_t protocol_errors = 0;
    bool stop = false;
    std::thread thread;
  };

  [[nodiscard]] static bool is_hello(std::span<const std::byte> data) {
    return !data.empty() &&
           static_cast<std::uint8_t>(data[0]) ==
               static_cast<std::uint8_t>(v2::FrameType::kHello);
  }

  /// Shard for a frame: HELLOs parse their shard fields (and are recorded
  /// sid->shard -- rejecting a sid that is already routed, so a duplicate
  /// HELLO can never hijack a live session's route); everything else
  /// routes by the recorded session. If the shard engine then rejects a
  /// recorded HELLO, drop_route() must undo the recording.
  [[nodiscard]] std::size_t route(std::span<const std::byte> data) {
    if (data.empty()) throw ProtocolError("empty frame");
    if (is_hello(data)) {
      const v2::Frame hello = v2::parse_frame(data);
      if (hello.shard_count != shards_.size()) {
        throw ProtocolError("HELLO shard count does not match this server");
      }
      const std::lock_guard<std::mutex> lk(routes_mu_);
      const auto [it, inserted] =
          routes_.emplace(hello.session_id, hello.shard_index);
      if (!inserted) throw ProtocolError("duplicate HELLO for session");
      return hello.shard_index;
    }
    const std::uint64_t sid = v2::peek_session_id(data);
    const std::optional<std::size_t> k = route_of(sid);
    if (!k) throw ProtocolError("unknown session id");
    return *k;
  }

  void drop_route(std::uint64_t session_id) {
    const std::lock_guard<std::mutex> lk(routes_mu_);
    routes_.erase(session_id);
  }

  [[nodiscard]] std::optional<std::size_t> route_of(
      std::uint64_t session_id) const {
    const std::lock_guard<std::mutex> lk(routes_mu_);
    const auto it = routes_.find(session_id);
    if (it == routes_.end()) return std::nullopt;
    return it->second;
  }

  void worker(Shard& sh) {
    std::vector<std::vector<std::byte>> outgoing;
    std::vector<std::uint64_t> retire;
    std::deque<std::vector<std::byte>> batch;
    bool streaming = false;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(sh.mu);
        if (!streaming) {
          if (reap_wait_s_ > 0) {
            // Bounded wait = the maintenance tick: an otherwise idle shard
            // still wakes to reap sessions whose peers went silent.
            sh.cv.wait_for(
                lk, std::chrono::duration<double>(reap_wait_s_),
                [&] { return sh.stop || !sh.inbox.empty(); });
          } else {
            sh.cv.wait(lk, [&] { return sh.stop || !sh.inbox.empty(); });
          }
        }
        if (sh.stop) return;
        batch.clear();
        batch.swap(sh.inbox);
        // Empty drains (maintenance ticks, streaming rounds) are skipped
        // so the histogram reflects queueing, not the wakeup cadence.
        if (obs_inbox_depth_ != nullptr && !batch.empty()) {
          obs_inbox_depth_->record(batch.size());
        }
        for (const auto& frame : batch) {
          try {
            for (auto& reply : sh.engine.handle_frame(frame)) {
              outgoing.push_back(std::move(reply));
            }
          } catch (const ProtocolError&) {
            // No transport to throw to on the worker: count and drop (the
            // sync path surfaces the same error to the submitter) -- and a
            // rejected HELLO must not keep its route recording.
            ++sh.protocol_errors;
            if (is_hello(frame)) {
              try {
                drop_route(v2::peek_session_id(frame));
              } catch (const ProtocolError&) {
                // unroutable garbage: nothing was recorded
              }
            }
          }
        }
        // Reap sessions whose peers went silent past the idle deadline:
        // the engine fails + folds them and hands back ERROR frames, which
        // go to the sink like any reply so the (possibly half-dead) peer
        // hears why its session died; the routes drop below with the rest.
        retire.clear();
        for (auto& [sid, frame] : sh.engine.reap_idle()) {
          retire.push_back(sid);
          outgoing.push_back(std::move(frame));
        }
        // One frame per active session per round keeps sessions fair and
        // bounds how far the server runs ahead of in-flight DONEs.
        // Sessions that reached a terminal state retire immediately --
        // close_session folds their accounting into the engine's lifetime
        // totals and their route entries are dropped, so a long-running
        // server neither re-scans dead sessions every round nor runs
        // into the max_sessions cap from sessions long finished.
        for (const std::uint64_t sid : sh.engine.session_ids()) {
          const SessionStats* stats = sh.engine.session(sid);
          if (stats != nullptr && stats->state != SessionState::kActive) {
            (void)sh.engine.close_session(sid);
            retire.push_back(sid);
            continue;
          }
          if (auto frame = sh.engine.next_frame(sid)) {
            outgoing.push_back(std::move(*frame));
          }
        }
        streaming = !outgoing.empty();
      }
      for (const std::uint64_t sid : retire) drop_route(sid);
      // Deliver outside the lock: a sink may block (backpressure) or call
      // submit() -- even into this shard -- without deadlocking. A sink
      // that throws (e.g. it re-submits a reply whose session was retired
      // moments earlier) is contained per frame and counted, not allowed
      // to escape the thread entry point and terminate the process.
      for (auto& frame : outgoing) {
        try {
          sink_(std::move(frame));
        } catch (const std::exception&) {
          const std::lock_guard<std::mutex> lk(sh.mu);
          ++sh.protocol_errors;
        }
      }
      outgoing.clear();
    }
  }

  Hasher hasher_;
  double reap_wait_s_ = 0;  ///< idle-worker wake interval (0 = wait forever)
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex routes_mu_;
  std::unordered_map<std::uint64_t, std::size_t> routes_;  ///< sid -> shard
  Sink sink_;
  std::atomic<bool> running_{false};
  obs::Histogram* obs_inbox_depth_ = nullptr;  ///< null = untapped
};

/// Client-side counterpart: splits one local set across K per-shard
/// SyncClient sessions with the same consistent hash and merges the
/// per-shard differences. Sub-session s of a client with base id B gets
/// session id (B-1)*K + s + 1, so distinct bases never collide.
///
/// Thread-safety: handle_frame for different shards touches disjoint
/// sub-clients, so the K shard workers of a ShardedEngine may call it
/// concurrently (each worker only ever delivers its own shard's sessions);
/// complete()/failed() are safe to poll from any thread, and diff() is
/// valid once complete() returns true.
template <Symbol T, typename Hasher = SipHasher<T>>
class ShardedClient {
 public:
  ShardedClient(std::uint64_t base_session_id, std::size_t shard_count,
                BackendId backend, Hasher hasher = Hasher{},
                ReconcilerConfig config = ReconcilerConfig{})
      : hasher_(std::move(hasher)),
        base_(base_session_id),
        shard_count_(shard_count) {
    if (base_session_id == 0) {
      throw std::invalid_argument("ShardedClient: session id 0 is reserved");
    }
    if (shard_count == 0 || shard_count > ShardedEngine<T>::kMaxShards) {
      throw std::invalid_argument("ShardedClient: shard count out of range");
    }
    subs_.reserve(shard_count);
    terminal_ = std::make_unique<std::atomic<std::size_t>>(0);
    failures_ = std::make_unique<std::atomic<std::size_t>>(0);
    for (std::size_t s = 0; s < shard_count; ++s) {
      subs_.push_back(std::make_unique<SyncClient<T, Hasher>>(
          sub_session_id(s), backend, hasher_, config));
      subs_.back()->set_shard(static_cast<std::uint32_t>(s),
                              static_cast<std::uint32_t>(shard_count));
    }
    counted_.assign(shard_count, 0);
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return subs_.size();
  }

  [[nodiscard]] std::uint64_t sub_session_id(std::size_t shard) const {
    return (base_ - 1) * shard_count_ + shard + 1;
  }

  /// Adds a local item: hashed once, routed to its shard's sub-client,
  /// reused as HashedSymbol end-to-end.
  void add_item(const T& item) {
    const HashedSymbol<T> hs = hasher_.hashed(item);
    subs_[shard_of_hash(hs.hash, subs_.size())]->add_hashed_item(hs);
  }

  /// Requests adaptive negotiation on every sub-session. Each sub-client
  /// probes only its own shard's slice, and the server's per-shard engines
  /// keep independent EWMAs keyed by the same peer_id -- the adaptive
  /// contract composes per shard with no cross-shard coordination. Must
  /// precede hellos().
  void set_adaptive(std::uint64_t peer_id, bool send_probe = true) {
    for (auto& sub : subs_) sub->set_adaptive(peer_id, send_probe);
  }

  /// The K opening frames (one sharded HELLO per shard), in shard order.
  [[nodiscard]] std::vector<std::vector<std::byte>> hellos() {
    std::vector<std::vector<std::byte>> out;
    out.reserve(subs_.size());
    for (auto& sub : subs_) out.push_back(sub->hello());
    return out;
  }

  /// True iff `session_id` is one of this client's sub-sessions. Transports
  /// multiplexing several clients' sessions (or sequential sessions whose
  /// rateless tails overlap) over one connection use this to route/drop.
  [[nodiscard]] bool owns(std::uint64_t session_id) const noexcept {
    return session_id > (base_ - 1) * subs_.size() &&
           session_id <= base_ * subs_.size();
  }

  /// Consumes one server frame (routed to the owning sub-client by session
  /// id); returns the client frames to send back.
  std::vector<std::vector<std::byte>> handle_frame(
      std::span<const std::byte> data) {
    const std::uint64_t sid = v2::peek_session_id(data);
    if (!owns(sid)) {
      throw ProtocolError("frame for a different sharded client");
    }
    const std::size_t s =
        static_cast<std::size_t>((sid - 1) % subs_.size());
    SyncClient<T, Hasher>& sub = *subs_[s];
    auto out = sub.handle_frame(data);
    if (!counted_[s] && (sub.complete() || sub.failed())) {
      counted_[s] = 1;  // only this shard's worker touches sub/counted_[s]
      if (sub.failed()) failures_->fetch_add(1, std::memory_order_relaxed);
      terminal_->fetch_add(1, std::memory_order_release);
    }
    return out;
  }

  /// True once every sub-session completed successfully.
  [[nodiscard]] bool complete() const {
    return terminal_->load(std::memory_order_acquire) == subs_.size() &&
           failures_->load(std::memory_order_relaxed) == 0;
  }

  /// True as soon as any sub-session failed.
  [[nodiscard]] bool failed() const {
    return failures_->load(std::memory_order_relaxed) != 0;
  }

  /// True once no sub-session is still in flight (complete or failed).
  [[nodiscard]] bool terminal() const {
    return terminal_->load(std::memory_order_acquire) == subs_.size();
  }

  /// The merged symmetric difference; meaningful once complete().
  [[nodiscard]] SetDiff<T> diff() const {
    SetDiff<T> out;
    for (const auto& sub : subs_) {
      const SetDiff<T>& d = sub->diff();
      out.remote.insert(out.remote.end(), d.remote.begin(), d.remote.end());
      out.local.insert(out.local.end(), d.local.begin(), d.local.end());
    }
    return out;
  }

  /// Total SYMBOLS payload bytes absorbed across shards.
  [[nodiscard]] std::uint64_t payload_bytes() const {
    std::uint64_t n = 0;
    for (const auto& sub : subs_) n += sub->payload_bytes();
    return n;
  }

  [[nodiscard]] const SyncClient<T, Hasher>& sub(std::size_t shard) const {
    return *subs_[shard];
  }

 private:
  Hasher hasher_;
  std::uint64_t base_;
  std::size_t shard_count_;
  std::vector<std::unique_ptr<SyncClient<T, Hasher>>> subs_;
  std::vector<std::uint8_t> counted_;  ///< per-shard terminal latch
  std::unique_ptr<std::atomic<std::size_t>> terminal_;
  std::unique_ptr<std::atomic<std::size_t>> failures_;
};

}  // namespace ribltx::sync
