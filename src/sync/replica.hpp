// Replica: continuous anti-entropy on top of SyncEngine/SyncClient -- the
// daemon that turns one-shot reconciliation sessions into a convergent
// multi-node system.
//
// Each Replica owns one SyncEngine (its item set + serving sessions) and a
// scheduler that periodically opens outbound SyncClient sessions against
// every registered peer ("pull" anti-entropy): the recovered diff.remote
// items are applied to the local set, so in a (transitively) connected
// peer graph every item eventually reaches every replica. Removals are the
// churn driver's job (state-based union convergence); the sessions only
// ever add.
//
// Robustness model -- everything here assumes peers crash, links
// partition, and frames vanish:
//   * retry with capped exponential backoff + jitter: a failed round
//     doubles the peer's delay (base_s -> cap_s) with a uniform jitter
//     factor so a partition healing does not synchronize a thundering
//     herd; the first successful round resets the backoff.
//   * per-session deadlines: an in-flight round older than
//     session_deadline_s is aborted (ERROR to the server so it reclaims
//     its side) and rescheduled through the backoff path -- a stuck
//     exchange can delay a peer, never wedge the replica.
//   * serving-side hygiene rides the engine: reap_idle() reclaims
//     abandoned inbound sessions each tick, and every reclaimed/terminal
//     session's route is dropped so nothing leaks.
//   * adaptive reuse: successive rounds against the same peer carry the
//     stable replica id, so the server's per-peer EWMA (sync/adaptive.hpp)
//     prices d^ from history and each steady-state round costs O(d), not
//     O(n).
//
// Transport-agnostic and passive: the owner supplies a SendFn per peer
// (frames out), calls deliver() for frames in, and drives tick(now) on its
// own cadence with its own clock -- netsim harnesses pass simulated time,
// socket harnesses pass wall time. Nothing here blocks or spawns threads.
//
// Threading contract: deliver/tick/add_peer/restart/stats form the
// scheduler surface and are caller-serialized (one event loop, like the
// engine's session surface). The set surface (add_item/remove_item/
// contains/item_count) is the engine's thread-safe ingest path and may be
// called concurrently from any thread -- churn during anti-entropy is the
// designed workload.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "obs/prom.hpp"
#include "sync/engine.hpp"

namespace ribltx::sync {

struct ReplicaOptions {
  /// Stable nonzero identity: namespaces this replica's session ids and
  /// keys the peers' adaptive EWMAs. Must be unique across the fleet.
  std::uint64_t replica_id = 1;
  /// Cadence between anti-entropy rounds against a healthy peer.
  double sync_interval_s = 1.0;
  /// First retry delay after a failed round; doubles per consecutive
  /// failure up to backoff_cap_s.
  double backoff_base_s = 0.5;
  double backoff_cap_s = 30.0;
  /// Uniform schedule jitter: every delay is scaled by a draw from
  /// [1 - jitter, 1 + jitter] so recovering replicas do not stampede.
  double jitter = 0.2;
  /// Abort an in-flight outbound round older than this (0 disables).
  double session_deadline_s = 10.0;
  /// Max serving frames pumped per session per tick (bounds tick latency).
  std::size_t serve_budget = 64;
  /// Backend requested for outbound rounds (the server may override it
  /// when adaptive negotiation is on).
  BackendId backend = BackendId::kRiblt;
  /// Carry the replica id + probe on outbound HELLOs so servers price d^
  /// from per-peer history (kFlagAdaptive).
  bool adaptive = true;
  ReconcilerConfig config{};
  /// Engine tuning. idle_deadline_s drives the serving-side reap sweep;
  /// clock defaults to "the last now passed to deliver/tick", which keeps
  /// engine idleness on the caller's timescale (simulated or wall).
  EngineOptions engine{};
  std::uint64_t seed = 0;  ///< jitter RNG stream
};

/// Per-peer health snapshot (staleness is the fig12 axis: how long ago
/// this replica last converged with the peer).
struct ReplicaPeerStats {
  std::uint64_t peer_id = 0;
  double last_success = -1;   ///< time of last converged round (-1 = never)
  double backoff_s = 0;       ///< current retry delay (0 = healthy)
  std::uint64_t failures = 0; ///< consecutive failed rounds
  std::uint64_t converged = 0;
};

struct ReplicaStats {
  std::uint64_t rounds_attempted = 0;
  std::uint64_t rounds_converged = 0;
  /// Failed + deadline-aborted + link-down rounds.
  std::uint64_t rounds_aborted = 0;
  /// Rounds opened while a backoff was pending (i.e. retries).
  std::uint64_t retries = 0;
  std::uint64_t items_applied = 0;
  std::uint64_t restarts = 0;
  std::vector<ReplicaPeerStats> peers;
  EngineTotals engine;  ///< serving-side roll-up (reaps/evictions included)
};

/// Appends the replica roll-up as synthetic snapshot families (the thin
/// view over ReplicaStats), including per-peer health rows labeled by
/// peer id -- staleness surfaces as riblt_replica_peer_last_success_s so
/// a scraper computes "now - last_success" on its own clock.
inline void append_replica_stats(obs::MetricsSnapshot& snap,
                                 const ReplicaStats& s,
                                 obs::Labels labels = {}) {
  snap.add_counter("riblt_replica_rounds_attempted_total",
                   "Outbound anti-entropy rounds opened", s.rounds_attempted,
                   labels);
  snap.add_counter("riblt_replica_rounds_converged_total",
                   "Rounds that completed and applied their diff",
                   s.rounds_converged, labels);
  snap.add_counter("riblt_replica_rounds_aborted_total",
                   "Failed + deadline-aborted + link-down rounds",
                   s.rounds_aborted, labels);
  snap.add_counter("riblt_replica_retries_total",
                   "Rounds opened while a backoff was pending", s.retries,
                   labels);
  snap.add_counter("riblt_replica_items_applied_total",
                   "Items learned through anti-entropy", s.items_applied,
                   labels);
  snap.add_counter("riblt_replica_restarts_total",
                   "Crash/restart cycles", s.restarts, labels);
  append_engine_totals(snap, s.engine, labels);
  for (const ReplicaPeerStats& p : s.peers) {
    obs::Labels l = labels;
    l.emplace_back("peer", std::to_string(p.peer_id));
    snap.add_gauge("riblt_replica_peer_backoff_ms",
                   "Current retry delay toward this peer (0 = healthy)",
                   static_cast<std::int64_t>(p.backoff_s * 1000.0), l);
    snap.add_gauge("riblt_replica_peer_failures",
                   "Consecutive failed rounds toward this peer",
                   static_cast<std::int64_t>(p.failures), l);
    snap.add_counter("riblt_replica_peer_converged_total",
                     "Converged rounds with this peer", p.converged, l);
    snap.add_gauge(
        "riblt_replica_peer_last_success_s",
        "Caller-clock time of the last converged round (-1 = never)",
        static_cast<std::int64_t>(p.last_success), l);
  }
}

template <Symbol T, typename Hasher = SipHasher<T>>
class Replica {
 public:
  /// Frame transport to one peer. Return false when the link is known dead
  /// (the replica treats it as a link-down event for that peer); blocking
  /// or buffering internally is the transport's business.
  using SendFn = std::function<bool(std::vector<std::byte>)>;
  /// Optional send gate: frames are only produced while it returns true
  /// (checked BEFORE encoding, so a backpressured link never forces the
  /// replica to drop frames it already built).
  using ReadyFn = std::function<bool()>;
  /// Observer for items learned through anti-entropy (staleness sampling).
  using ApplyFn = std::function<void(const T& item, double now)>;

  explicit Replica(ReplicaOptions options = {}, Hasher hasher = Hasher{})
      : options_(std::move(options)),
        hasher_(std::move(hasher)),
        rng_(mix64(options_.replica_id ^ mix64(options_.seed ^
                                               0x7265706c696361ULL))) {
    if (options_.replica_id == 0) {
      throw std::invalid_argument("Replica: replica id 0 is reserved");
    }
    EngineOptions eng = options_.engine;
    if (!eng.clock) {
      // Engine activity stamps follow the caller's clock: the last now
      // seen by deliver/tick. Simulated time reaps in simulated time.
      eng.clock = [this] { return now_; };
    }
    engine_ = std::make_unique<SyncEngine<T, Hasher>>(hasher_, eng);
    // The engine already registered its cells against the same registry;
    // these are the scheduler-tier additions. The caller clock may be
    // simulated, so the gap histogram is "caller microseconds".
    if (options_.engine.metrics != nullptr) {
      const obs::Labels l{
          {"replica", std::to_string(options_.replica_id)}};
      obs_round_gap_us_ = &options_.engine.metrics->histogram(
          "riblt_replica_round_gap_us",
          "Gap between successive converged rounds per peer "
          "(caller-clock microseconds)",
          l);
      obs_backoff_ms_ = &options_.engine.metrics->histogram(
          "riblt_replica_backoff_ms",
          "Retry backoff scheduled after an aborted round (milliseconds)",
          l);
    }
  }

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // ------------------------------------------------------------ set surface

  /// Thread-safe ingest (the engine's striped/lock-free path).
  bool add_item(const T& item) { return engine_->add_item(item); }
  bool remove_item(const T& item) { return engine_->remove_item(item); }
  [[nodiscard]] bool contains(const T& item) const {
    return engine_->contains(item);
  }
  [[nodiscard]] std::size_t item_count() const noexcept {
    return engine_->item_count();
  }

  /// Visits the full set (byte-exact convergence checks).
  template <typename Fn>
  void for_each_item(Fn&& fn) const {
    engine_->for_each_item(std::forward<Fn>(fn));
  }

  // ------------------------------------------------------ scheduler surface

  /// Registers a peer. `send` carries frames toward it; `ready` (optional)
  /// gates emission. The first round is scheduled one jittered interval
  /// out, so a fleet booting together does not open every session at t=0.
  void add_peer(std::uint64_t peer_id, SendFn send, ReadyFn ready = {}) {
    if (peer_id == 0 || peer_id == options_.replica_id) {
      throw std::invalid_argument("Replica: bad peer id");
    }
    Peer& p = peers_[peer_id];
    p.id = peer_id;
    p.send = std::move(send);
    p.ready = std::move(ready);
    p.next_attempt = now_ + jittered(options_.sync_interval_s);
  }

  /// Rebinds a peer's transport after its link was rebuilt (peer restart):
  /// scheduling state (backoff, staleness) survives, the dead SendFn does
  /// not.
  void set_peer_link(std::uint64_t peer_id, SendFn send, ReadyFn ready = {}) {
    const auto it = peers_.find(peer_id);
    if (it == peers_.end()) {
      throw std::invalid_argument("Replica: unknown peer");
    }
    it->second.send = std::move(send);
    it->second.ready = std::move(ready);
  }

  /// Feeds one frame that arrived from `peer_id`. Routes by frame type:
  /// server-bound types go to the engine (serving side), client-bound
  /// types to the peer's in-flight round; ERROR frames go to whichever
  /// side owns the session id. Unattributable frames are dropped (stale
  /// traffic from before a crash/abort is normal, not an error).
  void deliver(std::uint64_t peer_id, std::span<const std::byte> frame,
               double now) {
    advance(now);
    const auto it = peers_.find(peer_id);
    if (it == peers_.end() || frame.empty()) return;
    Peer& peer = it->second;
    std::uint64_t sid = 0;
    try {
      sid = v2::peek_session_id(frame);
    } catch (const ProtocolError&) {
      return;  // unroutable garbage: the conduit layer already contains it
    }
    switch (static_cast<v2::FrameType>(frame[0])) {
      case v2::FrameType::kHello:
      case v2::FrameType::kRound:
      case v2::FrameType::kDone:
        serve_frame(peer, sid, frame);
        break;
      case v2::FrameType::kHelloAck:
      case v2::FrameType::kSymbols:
        client_frame(peer, sid, frame);
        break;
      case v2::FrameType::kError:
        if (peer.client && peer.client->session_id() == sid) {
          client_frame(peer, sid, frame);
        } else if (serving_.count(sid) != 0) {
          serve_frame(peer, sid, frame);
        }
        break;
      case v2::FrameType::kAdmin:
        // Observability tap: a peer (or an operator riding a peer link)
        // can scrape this replica in-band, same verbs as the socket
        // servers. Answered here, never handed to the engine.
        admin_frame(peer, sid, frame);
        break;
      default:
        break;  // unknown type: drop (the engine would reject it anyway)
    }
  }

  /// Drives everything time-based: serving pumps, idle reaps, round
  /// scheduling, deadline aborts. Call on any cadence; all scheduling
  /// derives from `now`, not from the call rate.
  void tick(double now) {
    advance(now);
    reap_serving();
    for (auto& [sid, peer_id] : snapshot_serving()) {
      pump_serving(sid, peer_id);
    }
    for (auto& [id, peer] : peers_) {
      step_client(peer);
    }
  }

  /// The transport to `peer_id` died (conduit broke, socket closed).
  /// Aborts the in-flight round through the backoff path and fails every
  /// serving session owned by that peer.
  void peer_link_down(std::uint64_t peer_id, double now) {
    advance(now);
    const auto it = peers_.find(peer_id);
    if (it == peers_.end()) return;
    Peer& peer = it->second;
    if (peer.client) {
      abort_round(peer, "link down", /*notify_server=*/false);
    }
    std::vector<std::uint64_t> owned;
    for (const auto& [sid, pid] : serving_) {
      if (pid == peer_id) owned.push_back(sid);
    }
    for (const std::uint64_t sid : owned) {
      // Synthetic in-band abort, same pattern as the socket servers: the
      // engine fails + the worker-equivalent below retires the session.
      try {
        (void)engine_->handle_frame(v2::make_error_frame(sid, "peer link down"));
      } catch (const ProtocolError&) {
      }
      (void)engine_->close_session(sid);
      serving_.erase(sid);
    }
  }

  /// Crash + restart in place: every session (both directions) and route
  /// is dropped, in-flight rounds are abandoned, backoffs reset, and the
  /// session-id namespace advances an epoch so post-restart sessions can
  /// never collide with pre-crash ones still buffered in the network. The
  /// item set survives (the surviving on-disk set the replica rebuilds
  /// from); anti-entropy re-fills whatever it missed while down.
  void restart(double now) {
    advance(now);
    for (const std::uint64_t sid : engine_->session_ids()) {
      (void)engine_->close_session(sid);
    }
    serving_.clear();
    ++epoch_;
    ++restarts_;
    for (auto& [id, peer] : peers_) {
      peer.client.reset();
      peer.backoff_s = 0;
      peer.failures = 0;
      peer.next_attempt = now_ + jittered(options_.sync_interval_s);
    }
  }

  /// Pauses/resumes opening NEW outbound rounds (serving and in-flight
  /// rounds continue): the quiesce gate convergence checks use before
  /// asserting zero leaked sessions.
  void set_paused(bool paused) { paused_ = paused; }

  /// Observer for every item applied from a completed round.
  void on_item_applied(ApplyFn fn) { on_apply_ = std::move(fn); }

  [[nodiscard]] ReplicaStats stats() const {
    ReplicaStats out;
    out.rounds_attempted = rounds_attempted_;
    out.rounds_converged = rounds_converged_;
    out.rounds_aborted = rounds_aborted_;
    out.retries = retries_;
    out.items_applied = items_applied_;
    out.restarts = restarts_;
    out.engine = engine_->totals();
    out.peers.reserve(peers_.size());
    for (const auto& [id, peer] : peers_) {
      ReplicaPeerStats row;
      row.peer_id = id;
      row.last_success = peer.last_success;
      row.backoff_s = peer.backoff_s;
      row.failures = peer.failures;
      row.converged = peer.converged;
      out.peers.push_back(row);
    }
    return out;
  }

  /// Live serving sessions + in-flight outbound rounds: the leak gauge
  /// (must drain to zero once peers quiesce).
  [[nodiscard]] std::size_t session_count() const {
    std::size_t n = engine_->session_count();
    for (const auto& [id, peer] : peers_) n += peer.client ? 1 : 0;
    return n;
  }

  [[nodiscard]] std::uint64_t replica_id() const noexcept {
    return options_.replica_id;
  }

  [[nodiscard]] SyncEngine<T, Hasher>& engine() noexcept { return *engine_; }

 private:
  struct Peer {
    std::uint64_t id = 0;
    SendFn send;
    ReadyFn ready;
    std::unique_ptr<SyncClient<T, Hasher>> client;  ///< in-flight round
    double started_at = 0;    ///< client HELLO time (deadline base)
    double next_attempt = 0;  ///< earliest next round open
    double backoff_s = 0;     ///< current retry delay (0 = healthy)
    std::uint64_t failures = 0;
    std::uint64_t converged = 0;
    double last_success = -1;
  };

  void advance(double now) { now_ = now > now_ ? now : now_; }

  [[nodiscard]] double jittered(double delay) {
    const double j = options_.jitter;
    if (j <= 0) return delay;
    return delay * (1.0 - j + 2.0 * j * rng_.next_double());
  }

  /// Session ids: replica id (high bits) | restart epoch | sequence, so
  /// ids are unique fleet-wide and never reused across a crash.
  [[nodiscard]] std::uint64_t next_sid() {
    return ((options_.replica_id & 0xffffff) << 40) |
           ((epoch_ & 0xff) << 32) | (++seq_ & 0xffffffff);
  }

  [[nodiscard]] bool peer_ready(const Peer& peer) const {
    return !peer.ready || peer.ready();
  }

  /// Sends one frame toward a peer; false (link dead) fails everything
  /// that peer owns, exactly like an explicit peer_link_down.
  bool send_to(Peer& peer, std::vector<std::byte> frame) {
    if (!peer.send || peer.send(std::move(frame))) return true;
    peer_link_down(peer.id, now_);
    return false;
  }

  // ------------------------------------------------------------ serving side

  void serve_frame(Peer& peer, std::uint64_t sid,
                   std::span<const std::byte> frame) {
    const auto route = serving_.find(sid);
    if (route != serving_.end() && route->second != peer.id) {
      // Hijack guard, same contract as the socket servers' route check.
      (void)send_to(peer, v2::make_error_frame(
                              sid, "session belongs to another peer"));
      return;
    }
    std::vector<std::vector<std::byte>> replies;
    try {
      replies = engine_->handle_frame(frame);
    } catch (const ProtocolError& e) {
      // Unattributable on the engine (unknown/stale session, bad
      // topology): tell the peer in-band and drop any recording.
      (void)send_to(peer, v2::make_error_frame(sid, e.what()));
      return;
    }
    serving_[sid] = peer.id;
    for (auto& reply : replies) {
      // Shedding can emit ERROR frames for OTHER sids (evicted sessions):
      // route each reply by its own id.
      std::uint64_t reply_sid = sid;
      try {
        reply_sid = v2::peek_session_id(reply);
      } catch (const ProtocolError&) {
      }
      const auto owner = serving_.find(reply_sid);
      Peer* target = &peer;
      if (owner != serving_.end()) {
        const auto po = peers_.find(owner->second);
        if (po != peers_.end()) target = &po->second;
      }
      if (reply_sid != sid) serving_.erase(reply_sid);  // evicted: retired
      if (!send_to(*target, std::move(reply))) return;
    }
    pump_serving(sid, peer.id);
  }

  /// Streams up to serve_budget frames for one serving session; retires
  /// the session (and its route) once terminal.
  void pump_serving(std::uint64_t sid, std::uint64_t peer_id) {
    const auto it = serving_.find(sid);
    if (it == serving_.end()) return;
    const auto po = peers_.find(peer_id);
    if (po == peers_.end()) return;
    Peer& peer = po->second;
    const SessionStats* stats = engine_->session(sid);
    if (stats == nullptr) {
      serving_.erase(sid);
      return;
    }
    if (stats->state != SessionState::kActive) {
      (void)engine_->close_session(sid);
      serving_.erase(sid);
      return;
    }
    for (std::size_t i = 0; i < options_.serve_budget; ++i) {
      if (!peer_ready(peer)) return;  // gate BEFORE encoding: no drops
      auto frame = engine_->next_frame(sid);
      if (!frame) break;
      if (!send_to(peer, std::move(*frame))) return;
      // next_frame can fail the session and hand back its ERROR; the next
      // pump retires it.
      if (const SessionStats* s = engine_->session(sid);
          s == nullptr || s->state != SessionState::kActive) {
        break;
      }
    }
  }

  void reap_serving() {
    for (auto& [sid, frame] : engine_->reap_idle()) {
      const auto it = serving_.find(sid);
      if (it != serving_.end()) {
        const auto po = peers_.find(it->second);
        serving_.erase(it);
        if (po != peers_.end()) {
          (void)send_to(po->second, std::move(frame));
        }
      }
    }
  }

  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  snapshot_serving() const {
    return {serving_.begin(), serving_.end()};
  }

  /// Answers one in-band ADMIN verb over the peer's link (the replica's
  /// scrape endpoint; mirrors the socket servers' handle_admin).
  void admin_frame(Peer& peer, std::uint64_t sid,
                   std::span<const std::byte> frame) {
    std::string verb;
    try {
      verb = v2::error_text(v2::parse_frame(frame));  // payload as text
    } catch (const ProtocolError&) {
      (void)send_to(peer, v2::make_error_frame(sid, "malformed ADMIN"));
      return;
    }
    std::string body;
    obs::MetricsRegistry* const m = options_.engine.metrics;
    if ((verb == "METRICS" || verb == "METRICS_JSON") && m != nullptr) {
      obs::MetricsSnapshot snap = m->snapshot();
      append_replica_stats(
          snap, stats(),
          {{"replica", std::to_string(options_.replica_id)}});
      body = verb == "METRICS" ? obs::prometheus_text(snap)
                               : obs::json_text(snap);
    } else if (verb == "TRACE" && options_.engine.tracer != nullptr) {
      body = options_.engine.tracer->chrome_json();
    } else {
      (void)send_to(peer, v2::make_error_frame(
                              sid, "unsupported ADMIN verb: " + verb));
      return;
    }
    for (auto& reply : v2::make_admin_reply(sid, body)) {
      if (!send_to(peer, std::move(reply))) return;
    }
  }

  // ------------------------------------------------------------- client side

  void client_frame(Peer& peer, std::uint64_t sid,
                    std::span<const std::byte> frame) {
    if (!peer.client || peer.client->session_id() != sid) {
      return;  // stale frame from an aborted/pre-restart round: drop
    }
    std::vector<std::vector<std::byte>> replies;
    try {
      replies = peer.client->handle_frame(frame);
    } catch (const ProtocolError&) {
      abort_round(peer, "protocol error", /*notify_server=*/true);
      return;
    }
    for (auto& reply : replies) {
      if (!send_to(peer, std::move(reply))) return;
    }
    settle_client(peer);
  }

  /// Opens rounds when due, aborts rounds past their deadline, settles
  /// terminal rounds the transport finished without a final deliver.
  void step_client(Peer& peer) {
    if (peer.client) {
      settle_client(peer);
      if (peer.client && options_.session_deadline_s > 0 &&
          now_ - peer.started_at > options_.session_deadline_s) {
        abort_round(peer, "session deadline", /*notify_server=*/true);
      }
      return;
    }
    if (paused_ || now_ < peer.next_attempt || !peer_ready(peer)) return;
    open_round(peer);
  }

  void open_round(Peer& peer) {
    const std::uint64_t sid = next_sid();
    auto client = std::make_unique<SyncClient<T, Hasher>>(
        sid, options_.backend, hasher_, options_.config);
    if (options_.adaptive) {
      client->set_adaptive(options_.replica_id);
    }
    engine_->for_each_item([&](const HashedSymbol<T>& hs) {
      client->add_hashed_item(hs);
    });
    ++rounds_attempted_;
    if (peer.backoff_s > 0) ++retries_;
    peer.started_at = now_;
    peer.client = std::move(client);
    auto hello = peer.client->hello();
    (void)send_to(peer, std::move(hello));
  }

  /// Applies a completed round's diff / routes a failed round into backoff.
  void settle_client(Peer& peer) {
    if (!peer.client) return;
    if (peer.client->complete()) {
      for (const T& item : peer.client->diff().remote) {
        if (engine_->add_item(item)) {
          ++items_applied_;
          if (on_apply_) on_apply_(item, now_);
        }
      }
      peer.client.reset();
      peer.failures = 0;
      peer.backoff_s = 0;
      ++peer.converged;
      if (obs_round_gap_us_ != nullptr && peer.last_success >= 0 &&
          now_ > peer.last_success) {
        obs_round_gap_us_->record(
            static_cast<std::uint64_t>((now_ - peer.last_success) * 1e6));
      }
      peer.last_success = now_;
      ++rounds_converged_;
      peer.next_attempt = now_ + jittered(options_.sync_interval_s);
    } else if (peer.client->failed()) {
      abort_round(peer, peer.client->error(), /*notify_server=*/false);
    }
  }

  /// Tears down the in-flight round and schedules the retry through the
  /// capped exponential backoff. notify_server sends the session ERROR so
  /// the far side reclaims immediately instead of waiting for its reaper.
  void abort_round(Peer& peer, std::string reason, bool notify_server) {
    if (!peer.client) return;
    const std::uint64_t sid = peer.client->session_id();
    peer.client.reset();
    ++rounds_aborted_;
    ++peer.failures;
    peer.backoff_s = peer.backoff_s <= 0
                         ? options_.backoff_base_s
                         : std::min(2.0 * peer.backoff_s,
                                    options_.backoff_cap_s);
    if (obs_backoff_ms_ != nullptr) {
      obs_backoff_ms_->record(
          static_cast<std::uint64_t>(peer.backoff_s * 1000.0));
    }
    peer.next_attempt = now_ + jittered(peer.backoff_s);
    if (notify_server) {
      (void)send_to(peer, v2::make_error_frame(sid, reason));
    }
  }

  ReplicaOptions options_;
  Hasher hasher_;
  SplitMix64 rng_;
  std::unique_ptr<SyncEngine<T, Hasher>> engine_;
  std::map<std::uint64_t, Peer> peers_;       ///< deterministic iteration
  std::map<std::uint64_t, std::uint64_t> serving_;  ///< sid -> peer id
  double now_ = 0;
  bool paused_ = false;
  std::uint64_t epoch_ = 0;  ///< bumped per restart (sid namespace)
  std::uint64_t seq_ = 0;
  ApplyFn on_apply_;

  std::uint64_t rounds_attempted_ = 0;
  std::uint64_t rounds_converged_ = 0;
  std::uint64_t rounds_aborted_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t items_applied_ = 0;
  std::uint64_t restarts_ = 0;
  /// Registry handles (null = untapped); bound in the constructor.
  obs::Histogram* obs_round_gap_us_ = nullptr;
  obs::Histogram* obs_backoff_ms_ = nullptr;
};

}  // namespace ribltx::sync
