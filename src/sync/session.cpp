#include "sync/session.hpp"

#include <algorithm>

namespace ribltx::sync {

SessionResult run_riblt_session(const RibltPlan& plan,
                                const netsim::LinkConfig& link,
                                const CpuModel& cpu) {
  netsim::EventLoop loop;
  netsim::Link up(loop, link, "bob->alice");
  netsim::Link down(loop, link, "alice->bob");

  SessionResult out;
  out.interactive_rounds = 0.5;  // a single request, no lock-step descent

  double bob_ready = 0;
  // Bob's open/request departs at t = 0.
  up.send(kRequestBytes, [&](const netsim::Delivery&) {
    // Alice streams every frame; the FIFO link serializes back-to-back.
    for (const std::uint32_t bytes : plan.frame_bytes) {
      down.send(bytes, [&](const netsim::Delivery& d) {
        bob_ready = std::max(bob_ready, d.arrive_end) + cpu.bob_symbol_s;
      });
    }
  });
  loop.run();

  out.completion_s = bob_ready;
  out.bytes_down = down.total_bytes();
  out.bytes_up = up.total_bytes() + kRequestBytes;  // request + close
  out.downstream = down.deliveries();
  return out;
}

SessionResult run_heal_session(const merkle::HealPlan& plan,
                               const netsim::LinkConfig& link,
                               const CpuModel& cpu) {
  netsim::EventLoop loop;
  netsim::Link up(loop, link, "bob->alice");
  netsim::Link down(loop, link, "alice->bob");

  SessionResult out;
  out.interactive_rounds = static_cast<double>(plan.rounds.size());

  double completion = 0;
  std::size_t next_round = 0;

  // Lock-step: round r's request goes out only after round r-1 is fully
  // processed by Bob.
  std::function<void()> start_round = [&] {
    if (next_round >= plan.rounds.size()) {
      return;
    }
    const merkle::HealRound& round = plan.rounds[next_round];
    ++next_round;
    up.send(std::max(round.bytes_up, kRequestBytes),
            [&, round](const netsim::Delivery&) {
              // Alice reads the requested nodes, then streams the bodies.
              const double serve =
                  static_cast<double>(round.nodes) * cpu.alice_node_s;
              loop.schedule_in(serve, [&, round] {
                down.send(round.bytes_down, [&, round](const netsim::Delivery& d) {
                  // Bob starts verifying as bytes arrive; the round ends
                  // when both the wire and his CPU are done.
                  const double cpu_done =
                      d.arrive_start +
                      static_cast<double>(round.nodes) * cpu.bob_node_s;
                  const double round_done = std::max(d.arrive_end, cpu_done);
                  completion = std::max(completion, round_done);
                  loop.schedule_at(round_done, [&] { start_round(); });
                });
              });
            });
  };
  if (!plan.rounds.empty()) start_round();
  loop.run();

  out.completion_s = completion;
  out.bytes_down = down.total_bytes();
  out.bytes_up = up.total_bytes();
  out.downstream = down.deliveries();
  return out;
}

}  // namespace ribltx::sync
