// Reconciliation sessions over the simulated network: the two protocols of
// the paper's §7.3 Ethereum experiment.
//
//  * Rateless IBLT streaming: Bob opens a connection (half a round of
//    interactivity); Alice streams coded symbols from her universal
//    sequence at line rate; Bob peels incrementally and closes the stream
//    once decoded. First byte lands 1 RTT after open (Fig 13).
//  * Merkle state heal: lock-step rounds; each round Bob requests the
//    frontier of missing trie nodes and Alice returns their bodies. The
//    link idles while requests/responses are in flight, and Bob's per-node
//    processing makes the protocol compute-bound at higher bandwidths
//    (Fig 14's plateau).
//
// Planning (how many symbols / which nodes) runs on the real data
// structures; timing replays the plan through netsim with a calibrated CPU
// model (DESIGN.md §1.4).
#pragma once

#include <cstdint>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/riblt.hpp"
#include "merkle/heal.hpp"
#include "netsim/sim.hpp"

namespace ribltx::sync {

/// Per-operation CPU costs, calibrated so the simulation reproduces the
/// paper's compute-bound anchors: the Rateless IBLT receiver saturates a
/// ~170 Mbps link with one core (=> ~5 us per 92-byte coded symbol), and
/// state heal plateaus at ~20 Mbps (=> ~60 us per trie node).
struct CpuModel {
  double bob_symbol_s = 5e-6;   ///< decode work per coded symbol
  double bob_node_s = 6e-5;     ///< verify/persist work per healed node
  double alice_node_s = 1e-5;   ///< node lookup/serve work
};

/// Outcome of the Rateless IBLT planning stage: the exact wire size of
/// every coded symbol Bob needed, computed by running the real
/// encoder/decoder pair on the real sets.
struct RibltPlan {
  std::vector<std::uint32_t> frame_bytes;  ///< one entry per coded symbol
  std::size_t coded_symbols = 0;
  std::size_t differences = 0;  ///< |A (-) B| recovered
  std::size_t total_bytes = 0;
};

/// Runs real reconciliation between `alice_items` and `bob_items` and
/// records the coded-symbol stream Bob consumed. `expected_d` sizes Alice's
/// materialized sequence (grown automatically if the decode needs more).
/// Frames are accounted with the paper's §6 count compression: 8-byte
/// checksum plus a varint residual against N*rho(i).
template <Symbol T>
[[nodiscard]] RibltPlan plan_riblt_sync(const std::vector<T>& alice_items,
                                        const std::vector<T>& bob_items,
                                        std::size_t expected_d) {
  RibltPlan plan;
  // Materialize ~2x the Fig 5 worst-case overhead worth of cells; the
  // retry loop below doubles on the (rare) runs that need more.
  const double d_hint = static_cast<double>(std::max<std::size_t>(expected_d, 4));
  std::size_t bound = std::max<std::size_t>(
      64, static_cast<std::size_t>(2.8 * d_hint));
  for (int attempt = 0; attempt < 8; ++attempt) {
    Sketch<T> alice(bound), bob(bound);
    for (const auto& x : alice_items) alice.add_symbol(x);
    for (const auto& y : bob_items) bob.add_symbol(y);
    Sketch<T> diff = alice;
    diff.subtract(bob);

    Decoder<T> dec;
    std::size_t used = 0;
    for (const auto& cell : diff.cells()) {
      dec.add_coded_symbol(cell);
      ++used;
      if (dec.decoded()) break;
    }
    if (!dec.decoded()) {
      bound *= 2;  // unlucky tail: enlarge Alice's materialized prefix
      continue;
    }

    plan.coded_symbols = used;
    plan.differences = dec.remote().size() + dec.local().size();
    plan.frame_bytes.reserve(used);
    const auto n = static_cast<std::uint64_t>(alice_items.size());
    for (std::size_t i = 0; i < used; ++i) {
      // Alice streams *her* cells; count rides as a residual vs N*rho(i).
      const std::int64_t residual =
          alice.cells()[i].count - wire::expected_count(n, i);
      const auto bytes = static_cast<std::uint32_t>(
          T::kSize + 8 + uvarint_size(zigzag_encode(residual)));
      plan.frame_bytes.push_back(bytes);
      plan.total_bytes += bytes;
    }
    return plan;
  }
  throw std::runtime_error("plan_riblt_sync: decode did not converge");
}

/// Network/timing outcome of a simulated session.
struct SessionResult {
  double completion_s = 0;     ///< Bob's sync completion time
  std::size_t bytes_down = 0;  ///< Alice -> Bob
  std::size_t bytes_up = 0;    ///< Bob -> Alice
  double interactive_rounds = 0;
  /// Downstream deliveries (feed to netsim::BandwidthTrace for Fig 13).
  std::vector<netsim::Delivery> downstream;
};

/// Replays a Rateless IBLT plan over a simulated link. Timeline: Bob's
/// request departs at t=0; Alice streams all frames back-to-back; Bob's
/// completion is when he finishes processing the last frame he needed.
[[nodiscard]] SessionResult run_riblt_session(const RibltPlan& plan,
                                              const netsim::LinkConfig& link,
                                              const CpuModel& cpu = {});

/// Replays a state-heal plan (lock-step rounds) over a simulated link.
[[nodiscard]] SessionResult run_heal_session(const merkle::HealPlan& plan,
                                             const netsim::LinkConfig& link,
                                             const CpuModel& cpu = {});

/// Request/keepalive message size used by both sessions.
inline constexpr std::size_t kRequestBytes = 64;

}  // namespace ribltx::sync
