// Runtime-polymorphic reconciliation backends.
//
// The paper's headline comparison (§7) pits Rateless IBLT against regular
// IBLT + strata estimator, CPI, and the rate-compatible MET-IBLT -- four
// codecs with very different wire dialogues (one-way streaming vs.
// estimator-then-sized-table vs. capacity escalation vs. extension blocks).
// This header flattens all four behind one interface so a single session
// layer (sync/engine.hpp) and a single benchmark harness
// (bench/extra_backend_matrix.cpp) can drive them through the same code
// path:
//
//   encode side (server):  add_item() -> emit(writer, budget)
//                          [+ handle_round_request() for round-based codecs]
//   decode side (client):  add_item() -> absorb(payload) -> decoded()/diff()
//                          [+ round_request() to escalate a failed round]
//
// emit() appends an opaque payload chunk the matching decoder's absorb()
// understands; the session layer never interprets it. Rateless backends
// (RibltBackend) produce a chunk on every call, sized to ~`budget` bytes.
// Round-based backends produce their pending round exactly once and then
// return 0 until the peer's round request (carried in a v2 ROUND frame)
// re-arms them -- that request/escalation loop is the NACK dialogue regular
// IBLT, CPI, and MET-IBLT need and streaming Rateless IBLT does not.
#pragma once

#include <cstdint>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "core/riblt.hpp"
#include "iblt/iblt.hpp"
#include "iblt/iblt_wire.hpp"
#include "iblt/strata.hpp"
#include "metiblt/metiblt.hpp"
#include "pinsketch/cpi.hpp"
#include "sync/error.hpp"

namespace ribltx::sync {

/// Wire identifiers of the reconciliation backends (negotiated in HELLO).
enum class BackendId : std::uint8_t {
  kRiblt = 1,       ///< Rateless IBLT streaming (the paper's scheme)
  kIbltStrata = 2,  ///< strata estimator -> sized regular IBLT rounds
  kCpi = 3,         ///< characteristic-polynomial with capacity escalation
  kMetIblt = 4,     ///< MET-IBLT extension blocks
};

[[nodiscard]] constexpr bool backend_known(std::uint8_t id) noexcept {
  return id >= 1 && id <= 4;
}

[[nodiscard]] constexpr const char* backend_name(BackendId id) noexcept {
  switch (id) {
    case BackendId::kRiblt: return "riblt";
    case BackendId::kIbltStrata: return "iblt+strata";
    case BackendId::kCpi: return "cpi";
    case BackendId::kMetIblt: return "met-iblt";
  }
  return "unknown";
}

/// Backend tuning shared by both ends of a session. Geometry-bearing fields
/// (strata shape, MET config, IBLT hash count) must match between peers;
/// everything else is advisory.
struct ReconcilerConfig {
  std::uint8_t checksum_len = 8;  ///< wire checksum width (4 or 8)
  /// Request the §6 count compression on the rateless SYMBOLS stream
  /// (v2::kFlagCountResiduals). Ignored by the other backends. The engine
  /// grants it in HELLO_ACK together with the anchor set size.
  bool count_residuals = false;
  /// Decode-side anchor N for residual counts (set from the HELLO_ACK;
  /// meaningful only when count_residuals is granted).
  std::uint64_t residual_anchor = 0;
  std::size_t cpi_initial_capacity = 16;    ///< first CPI round's capacity
  std::size_t strata_num_strata = 16;       ///< SIGCOMM'11 defaults
  std::size_t strata_cells_per_stratum = 80;
  unsigned iblt_k = 4;                      ///< hash count for sized IBLTs
  std::size_t iblt_min_cells = 64;          ///< floor for the first round
  metiblt::MetConfig met = metiblt::MetConfig::recommended();
};

/// Which checksum width a backend actually puts on the wire. The Rateless
/// IBLT stream and both table-family backends (regular IBLT + strata,
/// MET-IBLT) implement the §7.1 narrow-checksum option via decoder-side
/// masking; CPI carries no checksums at all, so its syndrome accounting
/// stays pinned at the paper's fixed 8 bytes.
[[nodiscard]] constexpr std::uint8_t negotiate_checksum_len(
    BackendId backend, std::uint8_t requested) noexcept {
  return backend == BackendId::kCpi ? std::uint8_t{8} : requested;
}

/// The symmetric difference from the decoder's point of view.
template <Symbol T>
struct SetDiff {
  std::vector<T> remote;  ///< items only the encode side has (A \ B)
  std::vector<T> local;   ///< items only the decode side has (B \ A)
};

/// Encode (server) side of a backend: owns the local set, produces payload
/// chunks. Items must all be added before the first emit().
template <Symbol T>
class ReconcilerEncoder {
 public:
  virtual ~ReconcilerEncoder() = default;

  virtual void add_item(const T& item) = 0;

  /// Adds a pre-hashed item. The engine hashes every item exactly once and
  /// feeds the HashedSymbol to all consumers; backends that key their own
  /// structures off the hash override this to skip the re-hash.
  virtual void add_hashed_item(const HashedSymbol<T>& item) {
    add_item(item.symbol);
  }

  /// Appends the next payload chunk to `w`; `budget` is a target size in
  /// bytes (rateless backends emit at least one symbol and stop at the
  /// first boundary past the budget; round payloads are atomic and ignore
  /// it). Returns bytes appended; 0 means nothing to send until the next
  /// round request (or, for rateless backends, never).
  virtual std::size_t emit(ByteWriter& w, std::size_t budget) = 0;

  /// Feeds a peer round request (opaque, backend-defined; arrived in a
  /// ROUND frame), re-arming emit(). No-op dialect for rateless backends --
  /// they throw ProtocolError, as a peer sending ROUND there is confused.
  virtual void handle_round_request(std::span<const std::byte> request) = 0;

  /// True when emit() can produce unboundedly many chunks with no peer
  /// feedback (the defining property of the paper's scheme).
  [[nodiscard]] virtual bool rateless() const noexcept = 0;
};

/// Decode (client) side of a backend: owns the local set, absorbs payload
/// chunks, reports the recovered difference. Items must all be added before
/// the first absorb().
template <Symbol T>
class ReconcilerDecoder {
 public:
  virtual ~ReconcilerDecoder() = default;

  virtual void add_item(const T& item) = 0;

  /// Pre-hashed variant; see ReconcilerEncoder::add_hashed_item.
  virtual void add_hashed_item(const HashedSymbol<T>& item) {
    add_item(item.symbol);
  }

  /// Consumes one payload chunk produced by the matching encoder's emit().
  /// Throws ProtocolError (or the wire parsers' invalid_argument /
  /// out_of_range) on malformed payloads.
  virtual void absorb(std::span<const std::byte> payload) = 0;

  [[nodiscard]] virtual bool decoded() const = 0;

  /// The recovered symmetric difference; meaningful once decoded().
  [[nodiscard]] virtual SetDiff<T> diff() const = 0;

  /// After an absorb() that did not complete the decode, round-based
  /// backends return the escalation request to ship to the encoder (at most
  /// once per failed round); rateless backends always return nullopt.
  [[nodiscard]] virtual std::optional<std::vector<std::byte>>
  round_request() = 0;
};

// ---------------------------------------------------------------- Rateless

/// Streaming Rateless IBLT (paper §4): emit() walks the universal coded
/// symbol sequence; absorb() peels incrementally. Payloads are raw
/// back-to-back stream symbols (wire.hpp framing) at the negotiated
/// checksum width.
///
/// The sequence is universal (§4.1), so the backend does not own an
/// encoder: it is a snapshot cursor over a SequenceCache. In shared mode
/// (the SyncEngine serving path) the cache belongs to the engine and is
/// shared by every rateless session -- opening a session costs O(1), not
/// an O(n) re-hash/re-encode of the whole set, and set churn between
/// sessions updates the one cache in O(log m) per item while this cursor
/// keeps streaming its HELLO-time snapshot. In standalone mode (direct
/// backend use, no engine) the backend owns a private cache and behaves
/// like the old per-session encoder.
template <Symbol T, typename Hasher = SipHasher<T>>
class RibltEncoderBackend final : public ReconcilerEncoder<T> {
 public:
  using Cache = SequenceCache<T, Hasher>;

  /// Standalone mode: a private cache, populated via add_item().
  explicit RibltEncoderBackend(Hasher hasher = Hasher{},
                               std::uint8_t checksum_len = 8)
      : cache_(std::make_shared<Cache>(std::move(hasher))),
        checksum_len_(checksum_len),
        shared_(false) {
    (void)wire::checksum_mask(checksum_len);  // validates the width
  }

  /// Shared mode: a cursor over an engine-owned cache, snapshotting the
  /// set as it stands right now (HELLO time).
  RibltEncoderBackend(std::shared_ptr<Cache> cache,
                      std::uint8_t checksum_len)
      : cache_(std::move(cache)), checksum_len_(checksum_len), shared_(true) {
    if (!cache_) {
      throw std::invalid_argument("riblt: null shared sequence cache");
    }
    (void)wire::checksum_mask(checksum_len);
    cursor_.emplace(cache_);
  }

  void add_item(const T& item) override {
    check_may_add();
    cache_->add_symbol(item);
  }

  void add_hashed_item(const HashedSymbol<T>& item) override {
    check_may_add();
    cache_->add_hashed(item);
  }

  std::size_t emit(ByteWriter& w, std::size_t budget) override {
    if (!cursor_) cursor_.emplace(cache_);
    const std::size_t start = w.size();
    do {
      const std::uint64_t index = cursor_->index();
      const CodedSymbol<T> cell = cursor_->next();
      if (residuals_) {
        wire::write_stream_symbol_residual(w, cell, checksum_len_,
                                           residual_anchor_, index);
      } else {
        wire::write_stream_symbol(w, cell, checksum_len_);
      }
    } while (w.size() - start < budget);
    return w.size() - start;
  }

  void handle_round_request(std::span<const std::byte>) override {
    throw ProtocolError("riblt: rateless backend takes no round requests");
  }

  [[nodiscard]] bool rateless() const noexcept override { return true; }

  /// Switches the stream to §6 residual counts anchored on `anchor` (the
  /// snapshot set size negotiated at HELLO). Must precede the first emit:
  /// symbols already on the wire used the plain encoding. Pins the cursor
  /// snapshot NOW (shared mode already pinned it at construction), so the
  /// anchor cannot drift from the stream's true N via set changes between
  /// this call and the first emit.
  void enable_count_residuals(std::uint64_t anchor) {
    if (symbols_sent() != 0) {
      throw std::logic_error(
          "riblt: count residuals must be enabled before streaming");
    }
    if (!cursor_) cursor_.emplace(cache_);
    residuals_ = true;
    residual_anchor_ = anchor;
  }

  /// Oldest cache-journal entry this session may still need (the engine's
  /// pruning floor). Before the first emit the snapshot is still pending,
  /// so the floor is the cache's current version.
  [[nodiscard]] std::uint64_t journal_position() const noexcept {
    return cursor_ ? cursor_->journal_position() : cache_->version();
  }

  /// Coded symbols streamed so far.
  [[nodiscard]] std::uint64_t symbols_sent() const noexcept {
    return cursor_ ? cursor_->index() : 0;
  }

 private:
  void check_may_add() {
    if (shared_) {
      throw std::logic_error(
          "riblt: shared-cache sessions take items from the engine");
    }
    if (cursor_) {
      throw std::logic_error(
          "riblt: cannot add items after encoding started");
    }
  }

  std::shared_ptr<Cache> cache_;
  std::optional<typename Cache::Cursor> cursor_;
  std::uint8_t checksum_len_;
  bool shared_;
  bool residuals_ = false;
  std::uint64_t residual_anchor_ = 0;  ///< snapshot N for §6 residuals
};

template <Symbol T, typename Hasher = SipHasher<T>>
class RibltDecoderBackend final : public ReconcilerDecoder<T> {
 public:
  explicit RibltDecoderBackend(Hasher hasher = Hasher{},
                               std::uint8_t checksum_len = 8,
                               bool count_residuals = false,
                               std::uint64_t residual_anchor = 0)
      : decoder_(std::move(hasher)),
        checksum_len_(checksum_len),
        residuals_(count_residuals),
        residual_anchor_(residual_anchor) {
    decoder_.set_checksum_mask(wire::checksum_mask(checksum_len));
  }

  void add_item(const T& item) override { decoder_.add_local_symbol(item); }

  void add_hashed_item(const HashedSymbol<T>& item) override {
    decoder_.add_local_hashed_symbol(item);
  }

  void absorb(std::span<const std::byte> payload) override {
    ByteReader r(payload);
    while (!r.done() && !decoder_.decoded()) {
      // The running stream index is the residual anchor position; it only
      // advances for symbols actually parsed, so it stays aligned with the
      // encoder's cursor across frame boundaries.
      decoder_.add_coded_symbol(
          residuals_ ? wire::read_stream_symbol_residual<T>(
                           r, checksum_len_, residual_anchor_, stream_index_)
                     : wire::read_stream_symbol<T>(r, checksum_len_));
      ++stream_index_;
    }
    // Symbols past completion (in-flight chunks) are ignored gracefully.
  }

  [[nodiscard]] bool decoded() const override { return decoder_.decoded(); }

  [[nodiscard]] SetDiff<T> diff() const override {
    SetDiff<T> out;
    for (const auto& s : decoder_.remote()) out.remote.push_back(s.symbol);
    for (const auto& s : decoder_.local()) out.local.push_back(s.symbol);
    return out;
  }

  [[nodiscard]] std::optional<std::vector<std::byte>> round_request() override {
    return std::nullopt;
  }

 private:
  Decoder<T, Hasher> decoder_;
  std::uint8_t checksum_len_;
  bool residuals_;
  std::uint64_t residual_anchor_;
  std::uint64_t stream_index_ = 0;
};

// ------------------------------------------------- Regular IBLT + strata

/// The deployed-systems baseline (paper Fig 7 "Regular IBLT + Estimator"):
/// round 0 ships a strata estimator; the decoder sizes an IBLT from the
/// estimate and requests it; undersized tables double until the peel
/// succeeds. Round requests carry the requested cell count as a uvarint.
template <Symbol T, typename Hasher = SipHasher<T>>
class IbltStrataEncoderBackend final : public ReconcilerEncoder<T> {
 public:
  explicit IbltStrataEncoderBackend(Hasher hasher = Hasher{},
                                    ReconcilerConfig config = {})
      : hasher_(std::move(hasher)), config_(std::move(config)) {}

  void add_item(const T& item) override {
    items_.push_back(hasher_.hashed(item));
  }

  void add_hashed_item(const HashedSymbol<T>& item) override {
    items_.push_back(item);
  }

  std::size_t emit(ByteWriter& w, std::size_t) override {
    if (!estimator_sent_) {
      iblt::StrataEstimator<T, Hasher> est(config_.strata_num_strata,
                                           config_.strata_cells_per_stratum,
                                           config_.iblt_k, hasher_);
      for (const auto& x : items_) est.add_hashed(x);
      const auto payload = est.serialize(config_.checksum_len);
      w.bytes(payload);
      estimator_sent_ = true;
      return payload.size();
    }
    if (pending_cells_ == 0) return 0;  // waiting for a round request
    // Fresh salt each round decorrelates retry placements from the failed
    // attempt (and from other sessions reusing the same cell count).
    const std::uint64_t salt = 0x49424c5453414c54ULL ^ (round_ * 0x9e37ULL);
    iblt::Iblt<T, Hasher> table(pending_cells_, config_.iblt_k, hasher_, salt);
    for (const auto& x : items_) table.apply(x, Direction::kAdd);
    const auto payload = iblt::wire::serialize(table, salt,
                                               config_.checksum_len);
    w.bytes(payload);
    pending_cells_ = 0;
    return payload.size();
  }

  void handle_round_request(std::span<const std::byte> request) override {
    ByteReader r(request);
    const std::uint64_t cells = r.uvarint();
    if (!r.done()) throw ProtocolError("iblt+strata: malformed round request");
    if (cells == 0 || cells > kMaxRequestCells) {
      throw ProtocolError("iblt+strata: requested cell count out of range");
    }
    pending_cells_ = static_cast<std::size_t>(cells);
    ++round_;
  }

  [[nodiscard]] bool rateless() const noexcept override { return false; }

  static constexpr std::uint64_t kMaxRequestCells = 1ull << 26;

 private:
  Hasher hasher_;
  ReconcilerConfig config_;
  std::vector<HashedSymbol<T>> items_;  ///< hashed once, reused every round
  bool estimator_sent_ = false;
  std::size_t pending_cells_ = 0;
  std::uint64_t round_ = 0;
};

template <Symbol T, typename Hasher = SipHasher<T>>
class IbltStrataDecoderBackend final : public ReconcilerDecoder<T> {
 public:
  explicit IbltStrataDecoderBackend(Hasher hasher = Hasher{},
                                    ReconcilerConfig config = {})
      : hasher_(std::move(hasher)), config_(std::move(config)) {}

  void add_item(const T& item) override {
    items_.push_back(hasher_.hashed(item));
  }

  void add_hashed_item(const HashedSymbol<T>& item) override {
    items_.push_back(item);
  }

  void absorb(std::span<const std::byte> payload) override {
    if (decoded_) return;  // stale in-flight chunk
    if (!estimate_) {
      auto remote = iblt::StrataEstimator<T, Hasher>::deserialize(payload,
                                                                  hasher_);
      if (remote.num_strata() != config_.strata_num_strata) {
        throw ProtocolError("iblt+strata: estimator shape mismatch");
      }
      iblt::StrataEstimator<T, Hasher> local(
          config_.strata_num_strata, config_.strata_cells_per_stratum,
          config_.iblt_k, hasher_);
      for (const auto& x : items_) local.add_hashed(x);
      // remote carries wire-width (possibly masked) checksums; its masked
      // estimate() peel reduces the full-width local contributions into the
      // same domain.
      remote.subtract(local);
      estimate_ = std::max<std::uint64_t>(remote.estimate(), 1);
      // Strata estimates over/undershoot by ~1.5-2x (SIGCOMM'11 §3), so the
      // first table over-provisions 2 cells per estimated difference; a
      // failed peel doubles from there.
      request_cells_ = std::max<std::size_t>(
          config_.iblt_min_cells, 2 * static_cast<std::size_t>(*estimate_));
      return;
    }
    const auto parsed = iblt::wire::parse<T>(payload);
    iblt::Iblt<T, Hasher> diff(parsed.cells.size(), parsed.k, hasher_,
                               parsed.salt);
    diff.load_cells(parsed.cells);
    iblt::Iblt<T, Hasher> local(parsed.cells.size(), parsed.k, hasher_,
                                parsed.salt);
    for (const auto& x : items_) local.apply(x, Direction::kAdd);
    diff.subtract(local);
    auto result = diff.decode(wire::checksum_mask(parsed.checksum_len));
    if (result.success) {
      decoded_ = true;
      diff_.remote.clear();
      diff_.local.clear();
      for (const auto& s : result.remote) diff_.remote.push_back(s.symbol);
      for (const auto& s : result.local) diff_.local.push_back(s.symbol);
    } else {
      request_cells_ = parsed.cells.size() * 2;  // undersized: double
    }
  }

  [[nodiscard]] bool decoded() const override { return decoded_; }

  [[nodiscard]] SetDiff<T> diff() const override { return diff_; }

  [[nodiscard]] std::optional<std::vector<std::byte>> round_request() override {
    if (decoded_ || request_cells_ == 0) return std::nullopt;
    ByteWriter w;
    w.uvarint(request_cells_);
    request_cells_ = 0;
    return std::move(w).take();
  }

 private:
  Hasher hasher_;
  ReconcilerConfig config_;
  std::vector<HashedSymbol<T>> items_;  ///< hashed once, reused every round
  std::optional<std::uint64_t> estimate_;
  std::size_t request_cells_ = 0;
  bool decoded_ = false;
  SetDiff<T> diff_;
};

// ------------------------------------------------------------------- CPI

/// Characteristic-polynomial interpolation (MTZ'03) with capacity
/// escalation. Because the evaluation points are fixed per index, a
/// capacity-c sketch's evaluations are a prefix of any larger one's -- each
/// round ships only the new evaluations (rate-compatible, like the
/// Lazaro-Matuz framing). 8-byte items only; items must be nonzero.
/// Payload: uvarint total_capacity | uvarint set_size | uvarint n | n * u64.
/// Round request: uvarint new_capacity.
class CpiEncoderBackend final : public ReconcilerEncoder<U64Symbol> {
 public:
  explicit CpiEncoderBackend(ReconcilerConfig config = {})
      : capacity_(config.cpi_initial_capacity) {
    if (capacity_ == 0) throw ProtocolError("cpi: zero initial capacity");
  }

  void add_item(const U64Symbol& item) override { items_.push_back(item); }

  void add_hashed_item(const HashedSymbol<U64Symbol>& item) override {
    items_.push_back(item.symbol);  // CPI syndromes never touch the hash
  }

  std::size_t emit(ByteWriter& w, std::size_t) override {
    if (emitted_points_ >= capacity_) return 0;  // waiting for escalation
    // Only the new evaluation points are computed (O(n) each); the prefix
    // already went out in earlier rounds and is never recomputed.
    const std::size_t start = w.size();
    w.uvarint(capacity_);
    w.uvarint(items_.size());
    w.uvarint(capacity_ - emitted_points_);
    for (std::size_t j = emitted_points_; j < capacity_; ++j) {
      w.u64(cpi::CpiSketch::evaluate_at(items_, j).bits());
    }
    emitted_points_ = capacity_;
    return w.size() - start;
  }

  void handle_round_request(std::span<const std::byte> request) override {
    ByteReader r(request);
    const std::uint64_t capacity = r.uvarint();
    if (!r.done()) throw ProtocolError("cpi: malformed round request");
    if (capacity <= capacity_ || capacity > kMaxCapacity) {
      throw ProtocolError("cpi: requested capacity out of range");
    }
    capacity_ = static_cast<std::size_t>(capacity);
  }

  [[nodiscard]] bool rateless() const noexcept override { return false; }

  static constexpr std::uint64_t kMaxCapacity = 1ull << 20;

 private:
  std::vector<U64Symbol> items_;
  std::size_t capacity_;
  std::size_t emitted_points_ = 0;
};

class CpiDecoderBackend final : public ReconcilerDecoder<U64Symbol> {
 public:
  explicit CpiDecoderBackend(ReconcilerConfig = {}) {}

  void add_item(const U64Symbol& item) override { items_.push_back(item); }

  void add_hashed_item(const HashedSymbol<U64Symbol>& item) override {
    items_.push_back(item.symbol);
  }

  void absorb(std::span<const std::byte> payload) override {
    if (decoded_) return;
    ByteReader r(payload);
    const std::uint64_t capacity = r.uvarint();
    const std::uint64_t remote_size = r.uvarint();
    const std::uint64_t count = r.uvarint();
    if (capacity > CpiEncoderBackend::kMaxCapacity ||
        evals_.size() + count != capacity) {
      throw ProtocolError("cpi: evaluation count out of sequence");
    }
    if (count > r.remaining() / 8) {
      throw ProtocolError("cpi: evaluation count exceeds payload");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      evals_.emplace_back(r.u64());
    }
    if (!r.done()) throw ProtocolError("cpi: trailing bytes in payload");

    const auto remote = cpi::CpiSketch::from_evaluations(
        evals_, static_cast<std::size_t>(remote_size));
    // Extend the local evaluations incrementally (mirror of the encoder):
    // only the new points cost O(n) each; earlier rounds' work is kept.
    for (std::size_t j = local_evals_.size(); j < evals_.size(); ++j) {
      local_evals_.push_back(cpi::CpiSketch::evaluate_at(items_, j));
    }
    const auto local =
        cpi::CpiSketch::from_evaluations(local_evals_, items_.size());
    auto result = cpi::CpiSketch::reconcile(remote, local);
    if (result.success) {
      decoded_ = true;
      diff_.remote = std::move(result.alice_only);
      diff_.local = std::move(result.bob_only);
    } else if (evals_.size() >= CpiEncoderBackend::kMaxCapacity) {
      // Dead end, not a protocol violation: report it as such instead of
      // letting the encoder reject an over-the-cap escalation request.
      throw ProtocolError("cpi: difference exceeds the maximum capacity");
    } else {
      request_capacity_ = std::min<std::size_t>(
          evals_.size() * 2, CpiEncoderBackend::kMaxCapacity);
    }
  }

  [[nodiscard]] bool decoded() const override { return decoded_; }

  [[nodiscard]] SetDiff<U64Symbol> diff() const override { return diff_; }

  [[nodiscard]] std::optional<std::vector<std::byte>> round_request() override {
    if (decoded_ || request_capacity_ == 0) return std::nullopt;
    ByteWriter w;
    w.uvarint(request_capacity_);
    request_capacity_ = 0;
    return std::move(w).take();
  }

 private:
  std::vector<U64Symbol> items_;
  std::vector<pinsketch::GF64> evals_;        ///< peer's chi_A(e_j), cumulative
  std::vector<pinsketch::GF64> local_evals_;  ///< own chi_B(e_j), cumulative
  std::size_t request_capacity_ = 0;
  bool decoded_ = false;
  SetDiff<U64Symbol> diff_;
};

// -------------------------------------------------------------- MET-IBLT

/// Rate-compatible MET-IBLT (paper's [16]): the table's extension blocks
/// stream level by level; the decoder re-tries the peel over the cumulative
/// prefix after each block. Both ends must construct from the same
/// MetConfig. Payload: uvarint level | uvarint n | n raw cells.
/// Round request: uvarint next_level.
template <Symbol T, typename Hasher = SipHasher<T>>
class MetIbltEncoderBackend final : public ReconcilerEncoder<T> {
 public:
  explicit MetIbltEncoderBackend(Hasher hasher = Hasher{},
                                 ReconcilerConfig config = {})
      : table_(config.met, std::move(hasher)),
        checksum_len_(config.checksum_len) {
    (void)wire::checksum_mask(checksum_len_);  // validates the width
  }

  void add_item(const T& item) override { table_.add_symbol(item); }

  void add_hashed_item(const HashedSymbol<T>& item) override {
    table_.apply(item, Direction::kAdd);
  }

  std::size_t emit(ByteWriter& w, std::size_t) override {
    if (next_level_ > armed_level_ || next_level_ >= table_.num_levels()) {
      return 0;  // waiting for the peer to request the next block
    }
    const std::size_t lo =
        next_level_ == 0 ? 0 : table_.boundary(next_level_ - 1);
    const std::size_t hi = table_.boundary(next_level_);
    const std::size_t start = w.size();
    w.uvarint(next_level_);
    w.uvarint(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      wire::write_stream_symbol(w, table_.cells()[i], checksum_len_);
    }
    ++next_level_;
    return w.size() - start;
  }

  void handle_round_request(std::span<const std::byte> request) override {
    ByteReader r(request);
    const std::uint64_t level = r.uvarint();
    if (!r.done()) throw ProtocolError("met-iblt: malformed round request");
    if (level != next_level_ || level >= table_.num_levels()) {
      throw ProtocolError("met-iblt: round request out of sequence");
    }
    armed_level_ = static_cast<std::size_t>(level);
  }

  [[nodiscard]] bool rateless() const noexcept override { return false; }

 private:
  metiblt::MetIblt<T, Hasher> table_;
  std::uint8_t checksum_len_;
  std::size_t next_level_ = 0;   ///< next block to transmit
  std::size_t armed_level_ = 0;  ///< deepest block the peer asked for
};

template <Symbol T, typename Hasher = SipHasher<T>>
class MetIbltDecoderBackend final : public ReconcilerDecoder<T> {
 public:
  explicit MetIbltDecoderBackend(Hasher hasher = Hasher{},
                                 ReconcilerConfig config = {})
      : table_(config.met, std::move(hasher)),
        checksum_mask_(wire::checksum_mask(config.checksum_len)),
        checksum_len_(config.checksum_len) {}

  void add_item(const T& item) override { table_.add_symbol(item); }

  void add_hashed_item(const HashedSymbol<T>& item) override {
    table_.apply(item, Direction::kAdd);
  }

  void absorb(std::span<const std::byte> payload) override {
    if (decoded_) return;
    ByteReader r(payload);
    const std::uint64_t level = r.uvarint();
    const std::uint64_t count = r.uvarint();
    if (level != levels_received_ || level >= table_.num_levels()) {
      throw ProtocolError("met-iblt: block out of sequence");
    }
    const std::size_t lo = level == 0 ? 0 : table_.boundary(level - 1);
    const std::size_t expect = table_.boundary(level) - lo;
    if (count != expect) {
      throw ProtocolError("met-iblt: block cell count mismatch");
    }
    const std::size_t min_cell = T::kSize + checksum_len_ + 1;
    if (count > r.remaining() / min_cell) {
      throw ProtocolError("met-iblt: block exceeds payload size");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      diff_cells_.push_back(wire::read_stream_symbol<T>(r, checksum_len_));
    }
    if (!r.done()) throw ProtocolError("met-iblt: trailing bytes in block");
    // Subtract the local table's matching cells as one contiguous run
    // (vectorizable): diff_cells_ always holds difference cells for the
    // received prefix.
    subtract_run<T>(
        std::span<CodedSymbol<T>>(diff_cells_.data() + lo, expect),
        table_.cells().subspan(lo, expect));
    levels_received_ = static_cast<std::size_t>(level) + 1;

    auto result = table_.decode_prefix_over(
        diff_cells_, static_cast<std::size_t>(level), checksum_mask_);
    if (result.success) {
      decoded_ = true;
      diff_.remote.clear();
      diff_.local.clear();
      for (const auto& s : result.remote) diff_.remote.push_back(s.symbol);
      for (const auto& s : result.local) diff_.local.push_back(s.symbol);
    } else if (levels_received_ < table_.num_levels()) {
      request_level_ = levels_received_;
    } else {
      throw ProtocolError(
          "met-iblt: difference exceeds the deepest extension block");
    }
  }

  [[nodiscard]] bool decoded() const override { return decoded_; }

  [[nodiscard]] SetDiff<T> diff() const override { return diff_; }

  [[nodiscard]] std::optional<std::vector<std::byte>> round_request() override {
    if (decoded_ || !request_level_) return std::nullopt;
    ByteWriter w;
    w.uvarint(*request_level_);
    request_level_.reset();
    return std::move(w).take();
  }

 private:
  metiblt::MetIblt<T, Hasher> table_;
  std::vector<CodedSymbol<T>> diff_cells_;  ///< received minus local prefix
  std::uint64_t checksum_mask_;
  std::uint8_t checksum_len_;
  std::size_t levels_received_ = 0;
  std::optional<std::size_t> request_level_;
  bool decoded_ = false;
  SetDiff<T> diff_;
};

// -------------------------------------------------------------- Factories

/// Builds the encode side of `backend`. Throws ProtocolError for unusable
/// combinations (CPI with non-8-byte items).
template <Symbol T, typename Hasher = SipHasher<T>>
[[nodiscard]] std::unique_ptr<ReconcilerEncoder<T>> make_reconciler_encoder(
    BackendId backend, const ReconcilerConfig& config = {},
    Hasher hasher = Hasher{}) {
  switch (backend) {
    case BackendId::kRiblt:
      return std::make_unique<RibltEncoderBackend<T, Hasher>>(
          std::move(hasher), config.checksum_len);
    case BackendId::kIbltStrata:
      return std::make_unique<IbltStrataEncoderBackend<T, Hasher>>(
          std::move(hasher), config);
    case BackendId::kCpi:
      if constexpr (std::is_same_v<T, U64Symbol>) {
        return std::make_unique<CpiEncoderBackend>(config);
      } else {
        throw ProtocolError("cpi backend requires 8-byte items");
      }
    case BackendId::kMetIblt:
      return std::make_unique<MetIbltEncoderBackend<T, Hasher>>(
          std::move(hasher), config);
  }
  throw ProtocolError("unknown backend id");
}

/// Builds the decode side of `backend`; same restrictions as the encoder
/// factory.
template <Symbol T, typename Hasher = SipHasher<T>>
[[nodiscard]] std::unique_ptr<ReconcilerDecoder<T>> make_reconciler_decoder(
    BackendId backend, const ReconcilerConfig& config = {},
    Hasher hasher = Hasher{}) {
  switch (backend) {
    case BackendId::kRiblt:
      return std::make_unique<RibltDecoderBackend<T, Hasher>>(
          std::move(hasher), config.checksum_len, config.count_residuals,
          config.residual_anchor);
    case BackendId::kIbltStrata:
      return std::make_unique<IbltStrataDecoderBackend<T, Hasher>>(
          std::move(hasher), config);
    case BackendId::kCpi:
      if constexpr (std::is_same_v<T, U64Symbol>) {
        return std::make_unique<CpiDecoderBackend>(config);
      } else {
        throw ProtocolError("cpi backend requires 8-byte items");
      }
    case BackendId::kMetIblt:
      return std::make_unique<MetIbltDecoderBackend<T, Hasher>>(
          std::move(hasher), config);
  }
  throw ProtocolError("unknown backend id");
}

}  // namespace ribltx::sync
