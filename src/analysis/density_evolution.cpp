#include "analysis/density_evolution.hpp"

#include <cmath>
#include <stdexcept>

#include "analysis/expint.hpp"

namespace ribltx::analysis {

double de_step(double q, double alpha, double eta) {
  if (!(alpha > 0.0) || !(eta > 0.0)) {
    throw std::domain_error("de_step: alpha and eta must be positive");
  }
  if (!(q > 0.0)) return 0.0;
  return std::exp(expint_ei_negative(-q / (alpha * eta)) / alpha);
}

namespace {

/// Margin q - f(q); decodable needs it strictly positive on (0,1].
double margin(double q, double alpha, double eta) {
  return q - de_step(q, alpha, eta);
}

}  // namespace

bool de_decodable(double alpha, double eta, std::size_t grid) {
  // f(q)/q -> 0 as q -> 0+ (f ~ C q^{1/alpha}, 1/alpha > 1), so the binding
  // constraints live at moderate q; a log grid from 1e-9 plus refinement
  // around the worst point is robust.
  double worst_q = 1.0;
  double worst_margin = margin(1.0, alpha, eta);
  const double lo = 1e-9;
  for (std::size_t k = 0; k < grid; ++k) {
    const double t = static_cast<double>(k) / static_cast<double>(grid - 1);
    const double q = lo * std::pow(1.0 / lo, t);  // log-spaced up to 1
    const double m = margin(q, alpha, eta);
    if (m < worst_margin) {
      worst_margin = m;
      worst_q = q;
    }
    if (m <= 0.0) return false;
  }
  // Golden-section refinement around the worst grid point.
  double a = worst_q / 1.5;
  double b = std::min(1.0, worst_q * 1.5);
  constexpr double kInvPhi = 0.6180339887498949;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double m1 = margin(x1, alpha, eta);
  double m2 = margin(x2, alpha, eta);
  for (int iter = 0; iter < 80; ++iter) {
    if (m1 < m2) {
      b = x2;
      x2 = x1;
      m2 = m1;
      x1 = b - kInvPhi * (b - a);
      m1 = margin(x1, alpha, eta);
    } else {
      a = x1;
      x1 = x2;
      m1 = m2;
      x2 = a + kInvPhi * (b - a);
      m2 = margin(x2, alpha, eta);
    }
    if (std::min(m1, m2) <= 0.0) return false;
  }
  return std::min(m1, m2) > 0.0;
}

double de_threshold(double alpha, double tol) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::domain_error("de_threshold: alpha must be in (0, 1]");
  }
  double lo = 0.5;   // always undecodable: below the counting bound of 1
  double hi = 1.0;
  while (!de_decodable(alpha, hi)) {
    hi *= 2.0;
    if (hi > 64.0) {
      throw std::runtime_error("de_threshold: no threshold below 64");
    }
  }
  lo = hi / 2.0;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (de_decodable(alpha, mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double de_stall_fixed_point(double alpha, double eta, std::size_t max_iters) {
  double q = 1.0;
  for (std::size_t i = 0; i < max_iters; ++i) {
    const double next = de_step(q, alpha, eta);
    if (!(next > 1e-12)) return 0.0;
    if (std::abs(next - q) < 1e-13) return next;
    q = next;
  }
  return q;
}

double de_irregular_threshold(const std::vector<double>& weights,
                              const std::vector<double>& alphas, double tol) {
  if (weights.empty() || weights.size() != alphas.size()) {
    throw std::domain_error("de_irregular_threshold: weights/alphas mismatch");
  }
  for (double a : alphas) {
    if (!(a > 0.0) || a > 1.0) {
      throw std::domain_error("de_irregular_threshold: alpha out of (0,1]");
    }
  }
  const auto converges = [&](double eta) {
    std::vector<double> q(weights.size(), 1.0);
    std::vector<double> next(weights.size());
    for (int iter = 0; iter < 200000; ++iter) {
      double theta = 0.0;
      for (std::size_t k = 0; k < weights.size(); ++k) {
        theta += weights[k] * q[k] / alphas[k];
      }
      if (theta < 1e-11) return true;
      const double ei = expint_ei_negative(-theta / eta);
      double max_delta = 0.0;
      for (std::size_t j = 0; j < weights.size(); ++j) {
        next[j] = std::exp(ei / alphas[j]);
        max_delta = std::max(max_delta, std::abs(next[j] - q[j]));
      }
      q = next;
      if (max_delta < 1e-14) break;  // stuck at a positive fixed point
    }
    double theta = 0.0;
    for (std::size_t k = 0; k < weights.size(); ++k) {
      theta += weights[k] * q[k] / alphas[k];
    }
    return theta < 1e-9;
  };

  double hi = 1.0;
  while (!converges(hi)) {
    hi *= 2.0;
    if (hi > 64.0) {
      throw std::runtime_error("de_irregular_threshold: no threshold below 64");
    }
  }
  double lo = hi / 2.0;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (converges(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

std::vector<std::pair<double, double>> de_progress_curve(double alpha,
                                                         double eta_lo,
                                                         double eta_hi,
                                                         std::size_t steps) {
  std::vector<std::pair<double, double>> out;
  out.reserve(steps);
  for (std::size_t k = 0; k < steps; ++k) {
    const double eta =
        eta_lo + (eta_hi - eta_lo) * static_cast<double>(k) /
                     static_cast<double>(steps - 1);
    out.emplace_back(eta, 1.0 - de_stall_fixed_point(alpha, eta));
  }
  return out;
}

}  // namespace ribltx::analysis
