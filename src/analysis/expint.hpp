// Exponential integral functions, implemented from the standard series /
// continued-fraction expansions (Abramowitz & Stegun §5.1). Needed by the
// density-evolution analysis of Theorem 5.1, whose decodability condition is
//   for all q in (0,1]:  exp((1/alpha) * Ei(-q / (alpha*eta))) < q.
#pragma once

namespace ribltx::analysis {

/// E1(x) for x > 0: the principal exponential integral
/// E1(x) = integral_x^inf e^-t / t dt.
/// Accuracy ~1e-14 relative. Throws std::domain_error for x <= 0.
[[nodiscard]] double expint_e1(double x);

/// Ei(x) for x < 0, via Ei(-y) = -E1(y). Throws std::domain_error for
/// x >= 0 (the analysis only ever evaluates negative arguments).
[[nodiscard]] double expint_ei_negative(double x);

}  // namespace ribltx::analysis
