#include "analysis/expint.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ribltx::analysis {
namespace {

constexpr double kEulerGamma = 0.57721566490153286060651209008240243;

/// Power series, accurate for small x (we use it for x <= 1):
/// E1(x) = -gamma - ln x + sum_{k>=1} (-1)^{k+1} x^k / (k * k!).
double e1_series(double x) {
  double sum = 0.0;
  double term = 1.0;  // x^k / k! accumulates here
  for (int k = 1; k <= 64; ++k) {
    term *= x / k;
    const double contrib = ((k % 2) ? term : -term) / k;
    sum += contrib;
    if (std::abs(contrib) < 1e-18 * std::abs(sum)) break;
  }
  return -kEulerGamma - std::log(x) + sum;
}

/// Modified Lentz continued fraction, accurate for x >= 1:
/// E1(x) = e^{-x} * 1/(x + 1 - 1/(x + 3 - 4/(x + 5 - 9/(x + 7 - ...)))).
double e1_continued_fraction(double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 200; ++i) {
    const double a = -static_cast<double>(i) * static_cast<double>(i);
    b += 2.0;
    d = 1.0 / (a * d + b);
    c = b + a / c;
    const double delta = c * d;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x);
}

}  // namespace

double expint_e1(double x) {
  if (!(x > 0.0)) {
    throw std::domain_error("expint_e1: requires x > 0");
  }
  if (x > 700.0) return 0.0;  // below double underflow of e^-x / x
  return (x <= 1.0) ? e1_series(x) : e1_continued_fraction(x);
}

double expint_ei_negative(double x) {
  if (!(x < 0.0)) {
    throw std::domain_error("expint_ei_negative: requires x < 0");
  }
  return -expint_e1(-x);
}

}  // namespace ribltx::analysis
