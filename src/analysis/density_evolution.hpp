// Density-evolution analysis of the Rateless IBLT peeling decoder (paper §5).
//
// Theorem 5.1: with mapping probability rho(i) = 1/(1 + alpha*i) and eta
// coded symbols per source symbol, peeling succeeds w.h.p. (as d -> inf)
// iff  f(q) = exp((1/alpha) * Ei(-q/(alpha*eta))) < q  for all q in (0,1].
// q is the probability a random edge touches an unrecovered source symbol;
// f is one peeling iteration in the limit.
//
// This module computes:
//  * the threshold overhead eta*(alpha) -- Corollary 5.2: eta*(0.5) = 1.35;
//    the optimum alpha ~= 0.64 gives eta* ~= 1.31 (Fig 4's "DE" curve);
//  * the stall fixed point q*(eta): the fraction of symbols NOT recovered
//    when the decoder stalls at overhead eta < eta* (Fig 6's DE curve).
#pragma once

#include <cstddef>
#include <vector>

namespace ribltx::analysis {

/// One density-evolution iteration: f(q) for given alpha, eta.
[[nodiscard]] double de_step(double q, double alpha, double eta);

/// True iff f(q) < q holds on all of (0,1] (checked on a dense log+linear
/// grid of `grid` points, then locally refined around near-misses).
[[nodiscard]] bool de_decodable(double alpha, double eta,
                                std::size_t grid = 4096);

/// Threshold overhead eta*(alpha): smallest eta satisfying Theorem 5.1,
/// found by bisection to absolute tolerance `tol`.
[[nodiscard]] double de_threshold(double alpha, double tol = 1e-4);

/// Largest fixed point of f reachable from q = 1: iterating q <- f(q) until
/// convergence. Returns ~0 when eta > eta* (full recovery) and the stall
/// fraction otherwise. 1 - q* is Fig 6's "recovered fraction".
[[nodiscard]] double de_stall_fixed_point(double alpha, double eta,
                                          std::size_t max_iters = 100000);

/// Convenience: (eta, recovered_fraction) samples of the DE prediction for
/// Fig 6, eta swept over [eta_lo, eta_hi] in `steps` points.
[[nodiscard]] std::vector<std::pair<double, double>> de_progress_curve(
    double alpha, double eta_lo, double eta_hi, std::size_t steps);

/// Multi-edge-type density evolution for Irregular Rateless IBLT (§8):
/// subsets with weights w_j and mapping parameters alpha_j. The coupled
/// recursion (derived exactly as in Theorem 5.1's proof, with the cell
/// neighbor counts Poisson-thinned per subset) is
///   q_j <- exp( Ei(-theta/eta) / alpha_j ),  theta = sum_k w_k q_k/alpha_k.
/// Returns the threshold overhead eta*. For the paper's c=3 configuration
/// this evaluates to ~1.10 (Fig 15's asymptote).
[[nodiscard]] double de_irregular_threshold(const std::vector<double>& weights,
                                            const std::vector<double>& alphas,
                                            double tol = 1e-4);

}  // namespace ribltx::analysis
