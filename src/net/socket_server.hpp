// SocketServer: the ShardedEngine served over real loopback TCP.
//
// One poll thread owns an epoll loop (net::Poller) with the listener, a
// cross-thread wakeup eventfd, and every accepted connection. Each
// connection carries a FrameConduit: inbound bytes reassemble into v2
// frames that route to the engine via v2::peek_session_id + submit()
// (recording sid -> connection so replies find their way back); outbound
// frames from the shard workers' sink stage into the connection and drain
// through writev as the socket accepts them.
//
// Backpressure end to end: a shard worker's sink call blocks while the
// destination connection's queued output (staged + conduit) sits above the
// high watermark, and resumes when the poll thread drains it below the low
// watermark -- the worker streams exactly as fast as the peer's socket
// accepts, which is the paper's serve-at-line-rate model with real kernel
// send buffers as the rate signal. Slow peers therefore stall only their
// own sessions' shard progress, never the poll thread (which never blocks
// on the engine) and never other connections' drains.
//
// Error containment mirrors the engine contract: a frame whose routing
// prefix cannot be parsed poisons only its connection (framing is intact,
// so it is a hostile/broken client, and with no session id there is nobody
// to ERROR); a frame the router rejects (unknown session, bad topology)
// gets a v2 ERROR frame back on its connection; failures inside an
// established session already produce in-band ERROR frames from the engine.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/frame_conduit.hpp"
#include "net/tcp.hpp"
#include "obs/prom.hpp"
#include "sync/sharded.hpp"

namespace ribltx::net {

struct SocketServerOptions {
  std::uint16_t port = 0;            ///< 0 = ephemeral; see port()
  std::size_t high_watermark = 64u << 10;  ///< sink blocks above this
  std::size_t low_watermark = 16u << 10;   ///< sink resumes below this
  /// SO_SNDBUF cap per accepted connection (0 = kernel default). The total
  /// runway a rateless stream has before the worker's sink blocks is
  /// watermark + this + the peer's receive buffer, so keep all three small
  /// relative to the expected per-session transfer -- otherwise a server
  /// on a fast link encodes megabytes of symbols the peer's DONE will
  /// throw away (the measured default was ~600 KB of waste per session on
  /// unbounded loopback buffers).
  int send_buffer = 64 << 10;
  std::size_t max_frame = FrameConduit::kDefaultMaxFrame;
  /// Longest a shard worker's sink blocks on one connection's backpressure
  /// before the connection is doomed and closed (a peer that stops reading
  /// would otherwise wedge its shard's worker forever -- and with it every
  /// other session on that shard, including the idle-reap sweep). 0 keeps
  /// the historical wait-forever behavior.
  double sink_timeout_s = 0;
  /// UringServer-only knobs (the epoll server ignores them): disable the
  /// provided-buffer-ring multishot recv or the MSG_RING wakeup to force
  /// the single-shot recv / eventfd fallback paths without an old kernel.
  bool uring_buffer_ring = true;
  bool uring_msg_ring = true;
  /// Live exposition taps (optional; must outlive the server). With
  /// `metrics` set the in-band ADMIN verbs "METRICS" (Prometheus text)
  /// and "METRICS_JSON" answer with a live registry snapshot composed
  /// with the server's transport counters and the engine roll-up; with
  /// `tracer` set "TRACE" answers with chrome://tracing JSON. A verb
  /// whose tap is unset gets an in-band ERROR frame. Pass the same
  /// registry/tracer the engine's EngineOptions carry so one scrape
  /// covers every tier.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

/// Transport-layer counters (engine-layer stats live in ShardedStats).
/// The syscall columns are the bench's syscalls/session source -- counted
/// at the call sites, not strace'd -- and are populated by both servers:
/// the epoll path counts read/sendmsg/epoll_wait/eventfd-write; the uring
/// path counts io_uring_enter under `syscalls_wait` (its only steady-state
/// syscall) plus `sqe_submits` for the batching numerator.
struct SocketServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t frames_dropped = 0;   ///< outbound with no live route
  std::uint64_t protocol_errors = 0;  ///< router rejects + framing poisons
  std::uint64_t syscalls_read = 0;    ///< read()s (epoll path)
  std::uint64_t syscalls_write = 0;   ///< sendmsg()s (epoll path)
  std::uint64_t syscalls_wait = 0;    ///< epoll_wait()s / io_uring_enter()s
  std::uint64_t wakeups = 0;          ///< cross-thread wakeup syscalls
  std::uint64_t sqe_submits = 0;      ///< SQEs handed to the kernel (uring)
  std::uint64_t routes = 0;           ///< live sid->connection routes (gauge)

  /// Total data-path syscalls (sqe_submits excluded: an SQE is not a
  /// syscall, that is the whole point).
  ///
  /// Consistency (audited): this sums columns of ONE materialized stats()
  /// snapshot, so it can never tear a live counter mid-read -- but the
  /// snapshot itself samples each underlying atomic with a separate
  /// relaxed load. Each column is individually torn-free (single 64-bit
  /// atomics) and monotone across successive snapshots; the SUM is a
  /// smear: a read counted between the syscalls_read load and the
  /// syscalls_wait load lands in neither. Deltas between two snapshots
  /// bracket the true syscall count, which is what the benches divide by
  /// sessions. Same contract as obs::MetricsRegistry::snapshot().
  [[nodiscard]] std::uint64_t syscalls() const noexcept {
    return syscalls_read + syscalls_write + syscalls_wait + wakeups;
  }
};

/// Appends the transport counters as synthetic snapshot families -- the
/// "thin view" composition: the hot counters stay in the server's padded
/// atomics, and scrape time folds one stats() sample into the exposition
/// next to the registry-native families. `labels` distinguishes servers
/// sharing a registry (conventionally {{"server", "epoll"|"uring"}}).
inline void append_server_stats(obs::MetricsSnapshot& snap,
                                const SocketServerStats& s,
                                obs::Labels labels = {}) {
  snap.add_counter("riblt_server_connections_accepted_total",
                   "Connections accepted", s.connections_accepted, labels);
  snap.add_counter("riblt_server_connections_closed_total",
                   "Connections closed", s.connections_closed, labels);
  snap.add_counter("riblt_server_frames_in_total",
                   "Frames reassembled off sockets", s.frames_in, labels);
  snap.add_counter("riblt_server_frames_out_total",
                   "Frames staged for sending", s.frames_out, labels);
  snap.add_counter("riblt_server_frames_dropped_total",
                   "Outbound frames with no live route", s.frames_dropped,
                   labels);
  snap.add_counter("riblt_server_protocol_errors_total",
                   "Router rejects plus framing poisons", s.protocol_errors,
                   labels);
  auto op = [&labels](const char* v) {
    obs::Labels l = labels;
    l.emplace_back("op", v);
    return l;
  };
  const char* const syscall_help = "Data-path syscalls by call site";
  snap.add_counter("riblt_server_syscalls_total", syscall_help,
                   s.syscalls_read, op("read"));
  snap.add_counter("riblt_server_syscalls_total", syscall_help,
                   s.syscalls_write, op("write"));
  snap.add_counter("riblt_server_syscalls_total", syscall_help,
                   s.syscalls_wait, op("wait"));
  snap.add_counter("riblt_server_syscalls_total", syscall_help, s.wakeups,
                   op("wakeup"));
  snap.add_counter("riblt_server_sqe_submits_total",
                   "SQEs handed to the kernel (uring)", s.sqe_submits,
                   labels);
  snap.add_gauge("riblt_server_routes",
                 "Live session-to-connection routes",
                 static_cast<std::int64_t>(s.routes), labels);
}

template <Symbol T, typename Hasher = SipHasher<T>>
class SocketServer {
 public:
  /// Binds the listener immediately (so port() is valid before start());
  /// the engine must not be start()ed -- the server owns its sink.
  explicit SocketServer(sync::ShardedEngine<T, Hasher>& engine,
                        SocketServerOptions options = {})
      : engine_(engine), options_(options), listener_(options.port) {
    if (options_.low_watermark >= options_.high_watermark) {
      throw std::invalid_argument("SocketServer: watermarks out of order");
    }
    if (options_.metrics != nullptr) {
      obs_conduit_depth_ = &options_.metrics->histogram(
          "riblt_server_conduit_pending_bytes",
          "Bytes queued in a connection's conduit after a flush",
          {{"server", "epoll"}});
    }
  }

  ~SocketServer() { stop(); }

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }

  /// Starts the shard workers (engine.start with this server's sink) and
  /// the poll thread.
  void start() {
    if (running_) throw std::logic_error("SocketServer: already started");
    stopping_.store(false, std::memory_order_release);
    engine_.start([this](std::vector<std::byte> frame) {
      sink(std::move(frame));
    });
    poll_thread_ = std::thread([this] { poll_loop(); });
    running_ = true;
  }

  /// Unblocks and joins the shard workers, then the poll thread; closes
  /// every connection. Idempotent.
  void stop() {
    if (!running_) return;
    stopping_.store(true, std::memory_order_release);
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      for (auto& [id, conn] : conns_) {
        // Take the conn mutex before notifying: a sink that evaluated its
        // wait predicate just before stopping_ flipped must be fully
        // parked (mutex released into the wait) before the notify fires,
        // or the wakeup is lost and the worker sleeps forever.
        { const std::lock_guard<std::mutex> conn_lk(conn->mu); }
        conn->cv.notify_all();
      }
    }
    engine_.stop();
    wakeup_.signal();
    if (poll_thread_.joinable()) poll_thread_.join();
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      conns_.clear();
      routes_.clear();
    }
    {
      const std::lock_guard<std::mutex> lk(dirty_mu_);
      dirty_.clear();
    }
    running_ = false;
  }

  [[nodiscard]] bool running() const noexcept { return running_; }

  [[nodiscard]] SocketServerStats stats() const {
    SocketServerStats out;
    out.connections_accepted = accepted_.load(std::memory_order_relaxed);
    out.connections_closed = closed_.load(std::memory_order_relaxed);
    out.frames_in = frames_in_.load(std::memory_order_relaxed);
    out.frames_out = frames_out_.load(std::memory_order_relaxed);
    out.frames_dropped = dropped_.load(std::memory_order_relaxed);
    out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    out.syscalls_read = syscalls_read_.load(std::memory_order_relaxed);
    out.syscalls_write = syscalls_write_.load(std::memory_order_relaxed);
    out.syscalls_wait = syscalls_wait_.load(std::memory_order_relaxed);
    out.wakeups = wakeups_.load(std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      out.routes = routes_.size();
    }
    return out;
  }

 private:
  struct Conn {
    explicit Conn(int fd, std::uint64_t key_, std::size_t max_frame)
        : io(fd), key(key_), conduit(max_frame) {}

    TcpConn io;
    const std::uint64_t key;  ///< epoll key / conns_ index
    FrameConduit conduit;  ///< poll thread only, both directions

    std::mutex mu;  ///< guards staged/staged_bytes (sink <-> poll thread)
    std::condition_variable cv;  ///< backpressure wait/wake
    std::deque<std::vector<std::byte>> staged;  ///< sink -> poll thread
    std::size_t staged_bytes = 0;
    /// Conduit-side pending bytes mirrored for the sink's watermark check
    /// (the conduit itself is poll-thread-only).
    std::atomic<std::size_t> conduit_pending{0};
    std::atomic<bool> dead{false};
    /// A sink timed out on this connection's backpressure: the poll thread
    /// closes it at the next drain cycle (sinks must not close -- only the
    /// poll thread owns the fd/poller lifecycle).
    std::atomic<bool> doomed{false};
    /// In the poll thread's dirty list (has undrained staged frames).
    /// Guard against re-enqueueing; see drain_dirty() for the ordering.
    std::atomic<bool> dirty{false};
    bool want_write = false;  ///< poll thread: current epoll interest
  };

  static constexpr std::uint64_t kListenerKey = 0;
  static constexpr std::uint64_t kWakeupKey = 1;
  static constexpr std::uint64_t kFirstConnKey = 2;

  // ------------------------------------------------------- worker-side sink

  /// Delivery callback running on the shard workers. Blocking here is the
  /// designed backpressure: the worker stops pumping this shard's sessions
  /// until the peer's socket drains.
  void sink(std::vector<std::byte> frame) {
    std::uint64_t sid = 0;
    try {
      sid = sync::v2::peek_session_id(frame);
    } catch (const sync::ProtocolError&) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;  // engine frames are well-formed; defensive only
    }
    std::shared_ptr<Conn> conn;
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      const auto it = routes_.find(sid);
      if (it != routes_.end()) conn = it->second;
    }
    if (!conn) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;  // peer disconnected (or finished) mid-stream
    }
    {
      std::unique_lock<std::mutex> lk(conn->mu);
      const auto drained = [&] {
        return stopping_.load(std::memory_order_acquire) ||
               conn->dead.load(std::memory_order_acquire) ||
               conn->staged_bytes +
                       conn->conduit_pending.load(std::memory_order_acquire) <
                   options_.high_watermark;
      };
      bool woke = true;
      if (options_.sink_timeout_s > 0) {
        woke = conn->cv.wait_for(
            lk, std::chrono::duration<double>(options_.sink_timeout_s),
            drained);
      } else {
        conn->cv.wait(lk, drained);
      }
      if (!woke) {
        // The peer sat above the high watermark for the whole timeout: it
        // stopped reading. Doom the connection and move on -- the poll
        // thread closes it (which aborts its sessions in-band), and this
        // worker is free to serve the shard's other sessions again.
        lk.unlock();
        conn->doomed.store(true, std::memory_order_release);
        dropped_.fetch_add(1, std::memory_order_relaxed);
        mark_dirty(conn);
        if (!wake_pending_.exchange(true, std::memory_order_acq_rel)) {
          wakeup_.signal();
          wakeups_.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
      if (stopping_.load(std::memory_order_acquire) ||
          conn->dead.load(std::memory_order_acquire)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      conn->staged_bytes += frame.size();
      conn->staged.push_back(std::move(frame));
    }
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    mark_dirty(conn);
    // Coalesced wakeup: every sink used to write the eventfd per frame
    // (thousands of syscalls/sec under load that the poll thread collapsed
    // into one drain anyway). One wakeup is pending until the poll thread
    // clears the flag at the start of its drain cycle; stages landing
    // before the clear ride the already-pending wakeup.
    if (!wake_pending_.exchange(true, std::memory_order_acq_rel)) {
      wakeup_.signal();
      wakeups_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Enqueues `conn` for the poll thread's next drain cycle (idempotent
  /// until the poll thread clears the flag).
  void mark_dirty(const std::shared_ptr<Conn>& conn) {
    if (!conn->dirty.exchange(true, std::memory_order_acq_rel)) {
      const std::lock_guard<std::mutex> lk(dirty_mu_);
      dirty_.push_back(conn);
    }
  }

  // --------------------------------------------------------- poll thread

  void poll_loop() {
    poller_.add(listener_.fd(), kPollIn, kListenerKey);
    poller_.add(wakeup_.fd(), kPollIn, kWakeupKey);
    Poller::Event events[64];
    while (!stopping_.load(std::memory_order_acquire)) {
      const std::size_t n = poller_.wait(events, /*timeout_ms=*/200);
      syscalls_wait_.fetch_add(1, std::memory_order_relaxed);
      for (std::size_t i = 0; i < n; ++i) {
        const Poller::Event& ev = events[i];
        if (ev.key == kListenerKey) {
          accept_all();
        } else if (ev.key == kWakeupKey) {
          wakeup_.drain();
        } else {
          on_conn_event(ev);
        }
      }
      // Clear the pending-wakeup flag BEFORE draining: a sink that stages
      // after the clear signals a fresh wakeup; one that staged before it
      // is picked up by this very drain. Clear-after-drain would strand
      // frames staged in the window until the 200ms tick.
      wake_pending_.store(false, std::memory_order_release);
      drain_dirty();
    }
  }

  void accept_all() {
    for (;;) {
      const int fd = listener_.accept_conn();
      if (fd < 0) return;
      set_send_buffer(fd, options_.send_buffer);
      const std::uint64_t key = next_conn_key_++;
      auto conn = std::make_shared<Conn>(fd, key, options_.max_frame);
      {
        const std::lock_guard<std::mutex> lk(conns_mu_);
        conns_.emplace(key, conn);
      }
      poller_.add(conn->io.fd(), kPollIn, key);
      accepted_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::shared_ptr<Conn> conn_of(std::uint64_t key) {
    const std::lock_guard<std::mutex> lk(conns_mu_);
    const auto it = conns_.find(key);
    return it == conns_.end() ? nullptr : it->second;
  }

  void on_conn_event(const Poller::Event& ev) {
    const std::shared_ptr<Conn> conn = conn_of(ev.key);
    if (!conn) return;  // already closed this round
    if (ev.broken()) {
      close_conn(ev.key, *conn);
      return;
    }
    if (ev.readable() && !read_ready(ev.key, conn)) return;
    if (ev.writable()) flush_conn(ev.key, *conn);
  }

  /// Reads until EAGAIN, feeding the conduit and routing complete frames.
  /// Returns false when the connection died (and was closed).
  bool read_ready(std::uint64_t key, const std::shared_ptr<Conn>& conn) {
    std::byte buf[64 * 1024];
    for (;;) {
      const TcpConn::IoResult r = conn->io.read_some(buf);
      syscalls_read_.fetch_add(1, std::memory_order_relaxed);
      if (r.status == TcpConn::Io::kWouldBlock) break;
      if (r.status == TcpConn::Io::kClosed) {
        close_conn(key, *conn);
        return false;
      }
      try {
        conn->conduit.feed(std::span<const std::byte>(buf, r.bytes));
      } catch (const sync::ProtocolError&) {
        // Framing poisoned (oversized/garbled length): unrecoverable on a
        // byte stream, and containment is per connection.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        close_conn(key, *conn);
        return false;
      }
      while (auto frame = conn->conduit.next_frame()) {
        if (!route_inbound(key, conn, std::move(*frame))) return false;
      }
    }
    return true;
  }

  /// Routes one reassembled frame into the engine. Returns false when the
  /// connection was closed in response.
  bool route_inbound(std::uint64_t key, const std::shared_ptr<Conn>& conn,
                     std::vector<std::byte> frame) {
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t sid = 0;
    try {
      // Also rejects the empty (zero-length) frame, so the type read below
      // is in bounds.
      sid = sync::v2::peek_session_id(frame);
    } catch (const sync::ProtocolError&) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      close_conn(key, *conn);  // valid framing, unparseable routing: hostile
      return false;
    }
    const auto type = static_cast<std::uint8_t>(frame[0]);
    if (type == static_cast<std::uint8_t>(sync::v2::FrameType::kAdmin)) {
      // Observability verbs are transport-level: answered here on the poll
      // thread, never submitted to the engine (which rejects them) and
      // never recorded in the reply routes -- the chunked ADMIN_REPLY
      // rides stage_local back on this same connection, so a scrape works
      // mid-load from a second connection without touching any session.
      handle_admin(conn, sid, frame);
      return true;
    }
    bool inserted_route = false;
    {
      // Record the reply route up front: the HELLO_ACK can race out of the
      // shard worker before submit() returns. A sid already routed to a
      // DIFFERENT connection is a hijack attempt: reject without touching
      // the live session.
      const std::lock_guard<std::mutex> lk(conns_mu_);
      const auto [it, inserted] = routes_.emplace(sid, conn);
      if (!inserted && it->second.get() != conn.get()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        stage_local(conn, sync::v2::make_error_frame(
                              sid, "session belongs to another connection"));
        return true;
      }
      inserted_route = inserted;
    }
    try {
      engine_.submit(std::move(frame));
    } catch (const sync::ProtocolError& e) {
      // Router-level reject (bad topology, unknown session, duplicate
      // HELLO): contained to this session; tell the peer in-band. Only a
      // route THIS frame created is undone -- a duplicate HELLO must not
      // sever the live session's reply route.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      if (inserted_route) drop_route_if_self(sid, *conn);
      stage_local(conn, sync::v2::make_error_frame(sid, e.what()));
      return true;
    }
    if (type == static_cast<std::uint8_t>(sync::v2::FrameType::kDone) ||
        type == static_cast<std::uint8_t>(sync::v2::FrameType::kError)) {
      // The client ended the session; nothing meaningful flows back. The
      // engine-side session went terminal on the same frame, so the worker
      // retires it -- no abort needed.
      drop_route_if_self(sid, *conn);
    }
    return true;
  }

  /// Composes the live exposition snapshot: registry-native families plus
  /// the thin views over this server's transport counters and the engine
  /// roll-up. Runs on the poll thread; engine_.stats() takes each shard
  /// lock briefly (workers never block holding one -- sinks run outside
  /// the shard lock -- so this cannot deadlock against backpressure).
  [[nodiscard]] obs::MetricsSnapshot compose_snapshot() const {
    obs::MetricsSnapshot snap = options_.metrics->snapshot();
    append_server_stats(snap, stats(), {{"server", "epoll"}});
    sync::append_engine_totals(snap, engine_.stats().totals);
    return snap;
  }

  /// Answers one ADMIN verb in-band. Unknown verbs and verbs whose tap is
  /// not configured get an ERROR frame (counted as protocol errors), so a
  /// scraper always hears back.
  void handle_admin(const std::shared_ptr<Conn>& conn, std::uint64_t sid,
                    std::span<const std::byte> raw) {
    std::string verb;
    try {
      const sync::v2::Frame frame = sync::v2::parse_frame(raw);
      verb = sync::v2::error_text(frame);  // payload bytes as text
    } catch (const sync::ProtocolError&) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      stage_local(conn, sync::v2::make_error_frame(sid, "malformed ADMIN"));
      return;
    }
    std::string body;
    if ((verb == "METRICS" || verb == "METRICS_JSON") &&
        options_.metrics != nullptr) {
      const obs::MetricsSnapshot snap = compose_snapshot();
      body = verb == "METRICS" ? obs::prometheus_text(snap)
                               : obs::json_text(snap);
    } else if (verb == "TRACE" && options_.tracer != nullptr) {
      body = options_.tracer->chrome_json();
    } else {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      stage_local(conn, sync::v2::make_error_frame(
                            sid, "unsupported ADMIN verb: " + verb));
      return;
    }
    for (auto& reply : sync::v2::make_admin_reply(sid, body)) {
      stage_local(conn, std::move(reply));
    }
  }

  void drop_route_if_self(std::uint64_t sid, const Conn& conn) {
    const std::lock_guard<std::mutex> lk(conns_mu_);
    const auto it = routes_.find(sid);
    if (it != routes_.end() && it->second.get() == &conn) routes_.erase(it);
  }

  /// Stages a poll-thread-generated frame (ERROR replies) onto `conn`,
  /// bypassing the sink watermark: these are tiny and must get out even
  /// when the peer is backpressured. Delivery rides the end-of-iteration
  /// drain_dirty() sweep -- flushing inline here could close the conn in
  /// the middle of its own read_ready frame loop.
  void stage_local(const std::shared_ptr<Conn>& conn,
                   std::vector<std::byte> frame) {
    {
      const std::lock_guard<std::mutex> lk(conn->mu);
      conn->staged_bytes += frame.size();
      conn->staged.push_back(std::move(frame));
    }
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    mark_dirty(conn);
  }

  /// Drains only the connections sinks have staged onto since the last
  /// cycle. The previous full-table sweep was O(connections) per loop
  /// iteration -- ruinous at 10k mostly-idle paced sessions.
  void drain_dirty() {
    std::vector<std::shared_ptr<Conn>> batch;
    {
      const std::lock_guard<std::mutex> lk(dirty_mu_);
      batch.swap(dirty_);
    }
    for (auto& conn : batch) {
      // Clear before draining: a sink staging concurrently either lands in
      // this drain (staged before the clear) or re-enqueues the conn
      // (exchange sees false after it). Clear-after-drain loses frames
      // staged in between.
      conn->dirty.store(false, std::memory_order_release);
      if (conn->dead.load(std::memory_order_acquire)) continue;
      if (conn->doomed.load(std::memory_order_acquire)) {
        close_conn(conn->key, *conn);  // sink timed out: stalled peer
        continue;
      }
      drain_staged(*conn);
      flush_conn(conn->key, *conn);
    }
  }

  /// Moves sink-staged frames into the conduit (poll thread only).
  void drain_staged(Conn& conn) {
    std::deque<std::vector<std::byte>> batch;
    {
      const std::lock_guard<std::mutex> lk(conn.mu);
      batch.swap(conn.staged);
      conn.staged_bytes = 0;
    }
    for (auto& frame : batch) conn.conduit.send(std::move(frame));
    conn.conduit_pending.store(conn.conduit.pending_bytes(),
                               std::memory_order_release);
  }

  /// writev-drains the conduit and maintains EPOLLOUT interest and the
  /// backpressure watermark signal.
  void flush_conn(std::uint64_t key, Conn& conn) {
    if (!conn.io.open()) return;
    while (conn.conduit.has_output()) {
      std::span<const std::byte> chunks[TcpConn::kMaxIov];
      const std::size_t n = conn.conduit.gather(chunks);
      const TcpConn::IoResult r =
          conn.io.write_gather(std::span<const std::span<const std::byte>>(
              chunks, n));
      syscalls_write_.fetch_add(1, std::memory_order_relaxed);
      if (r.status == TcpConn::Io::kClosed) {
        close_conn(key, conn);
        return;
      }
      if (r.status == TcpConn::Io::kWouldBlock || r.bytes == 0) break;
      conn.conduit.consume(r.bytes);
    }
    conn.conduit_pending.store(conn.conduit.pending_bytes(),
                               std::memory_order_release);
    if (obs_conduit_depth_ != nullptr) {
      obs_conduit_depth_->record(
          conn.conduit_pending.load(std::memory_order_relaxed));
    }
    const bool want = conn.conduit.has_output();
    if (want != conn.want_write) {
      conn.want_write = want;
      poller_.modify(conn.io.fd(), want ? (kPollIn | kPollOut) : kPollIn,
                     key);
    }
    if (conn.conduit_pending.load(std::memory_order_relaxed) <
        options_.low_watermark) {
      // Resume backpressured sinks; lock-then-notify so a sink between
      // predicate check and park cannot miss the drain.
      { const std::lock_guard<std::mutex> lk(conn.mu); }
      conn.cv.notify_all();
    }
  }

  void close_conn(std::uint64_t key, Conn& conn) {
    {
      // Under the conn mutex so a sink mid-wait-entry cannot miss the
      // dead flag (see the matching comment in stop()).
      const std::lock_guard<std::mutex> lk(conn.mu);
      conn.dead.store(true, std::memory_order_release);
    }
    if (conn.io.open()) {
      poller_.remove(conn.io.fd());
      conn.io.close();
    }
    std::vector<std::uint64_t> orphaned;
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      for (auto it = routes_.begin(); it != routes_.end();) {
        if (it->second.get() == &conn) {
          orphaned.push_back(it->first);
          it = routes_.erase(it);
        } else {
          ++it;
        }
      }
      conns_.erase(key);
    }
    conn.cv.notify_all();  // unblock any sink waiting on this connection
    // Abort the engine side of every session this connection still owned:
    // without this, a rateless session stays kActive forever, its shard
    // worker spinning out SYMBOLS frames that drop on the floor (one
    // disconnect pinned a core and generated ~160k dropped frames/sec).
    // A synthetic in-band ERROR is FIFO-correct even when the session's
    // HELLO is still queued in the shard inbox -- the worker opens the
    // session, then fails and retires it on the very next frame.
    for (const std::uint64_t sid : orphaned) {
      try {
        engine_.submit(sync::v2::make_error_frame(sid, "peer disconnected"));
      } catch (const sync::ProtocolError&) {
        // Router no longer knows the session (already retired): done.
      }
    }
    closed_.fetch_add(1, std::memory_order_relaxed);
  }

  sync::ShardedEngine<T, Hasher>& engine_;
  SocketServerOptions options_;
  TcpListener listener_;
  Poller poller_;
  WakeupFd wakeup_;

  mutable std::mutex conns_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> conns_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> routes_;  ///< sid->
  std::uint64_t next_conn_key_ = kFirstConnKey;  ///< poll thread only

  std::mutex dirty_mu_;
  std::vector<std::shared_ptr<Conn>> dirty_;  ///< staged-but-undrained conns
  std::atomic<bool> wake_pending_{false};     ///< eventfd write coalescing

  std::thread poll_thread_;
  std::atomic<bool> stopping_{false};
  bool running_ = false;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> syscalls_read_{0};
  std::atomic<std::uint64_t> syscalls_write_{0};
  std::atomic<std::uint64_t> syscalls_wait_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  obs::Histogram* obs_conduit_depth_ = nullptr;  ///< null = untapped
};

}  // namespace ribltx::net
