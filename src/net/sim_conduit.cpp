#include "net/sim_conduit.hpp"

#include <algorithm>
#include <utility>

#include "common/siphash.hpp"

namespace ribltx::net {

namespace {

/// Derives a retransmission timeout from the two directions' link
/// parameters: a couple of jittered RTTs plus the worst-case queueing of a
/// full window behind one bottleneck, floored at 5 ms.
[[nodiscard]] double derive_rto(const netsim::LinkConfig& fwd,
                                const netsim::LinkConfig& rev,
                                const SimConduitConfig& cfg) {
  const double rtt = fwd.one_way_delay_s + rev.one_way_delay_s +
                     fwd.reorder_jitter_s + rev.reorder_jitter_s;
  const double queue =
      static_cast<double>(cfg.window) *
      fwd.tx_time(cfg.mtu + kSimPacketOverhead);
  return std::max(2.0 * rtt + queue + 2.0 * rev.tx_time(kSimPacketOverhead),
                  0.005);
}

}  // namespace

// ------------------------------------------------------------ SimEndpoint

void SimEndpoint::send_frame(std::vector<std::byte> frame) {
  if (broken_) {
    throw sync::ProtocolError("SimConduit: endpoint is broken");
  }
  framer_.send(std::move(frame));
  pump_out();
}

void SimEndpoint::pump_out() {
  while (!broken_ && unacked_.size() < cfg_.window && framer_.has_output()) {
    std::vector<std::byte> bytes;
    bytes.reserve(std::min(cfg_.mtu, framer_.pending_bytes()));
    while (bytes.size() < cfg_.mtu && framer_.has_output()) {
      std::span<const std::byte> chunks[1];
      const std::size_t n = framer_.gather(chunks);
      if (n == 0) break;
      const std::size_t take =
          std::min(chunks[0].size(), cfg_.mtu - bytes.size());
      bytes.insert(bytes.end(), chunks[0].begin(),
                   chunks[0].begin() + static_cast<std::ptrdiff_t>(take));
      framer_.consume(take);
    }
    Segment seg;
    seg.offset = next_send_off_;
    seg.payload =
        std::make_shared<const std::vector<std::byte>>(std::move(bytes));
    next_send_off_ += seg.payload->size();
    transmit(seg, /*retransmit=*/false);
    unacked_.push_back(std::move(seg));
  }
}

std::uint64_t SimEndpoint::segment_checksum(
    std::uint64_t offset, std::span<const std::byte> payload) noexcept {
  // Fixed-key SipHash over (offset, payload): the datagram integrity check
  // both ends agree on by construction. The key is not secret -- this
  // models a CRC, not an authenticator.
  const SipKey key{0x73696d636f6e6475ULL, offset};
  return siphash24(key, payload);
}

void SimEndpoint::transmit(const Segment& seg, bool retransmit) {
  ++data_packets_;
  data_bytes_ += seg.payload->size() + kSimPacketOverhead;
  if (retransmit) ++retransmits_;
  const std::uint64_t sum = segment_checksum(seg.offset, *seg.payload);
  tx_->send(seg.payload->size() + kSimPacketOverhead,
            [peer = peer_, off = seg.offset, payload = seg.payload,
             sum](const netsim::Delivery& d) {
              // The link flags corruption but carries only byte counts, so
              // the damage is applied here, to the receiver's copy: one
              // deterministic bit-flip (or a damaged checksum field when
              // the segment has no payload), while the transmitted
              // checksum still describes the original bytes.
              std::vector<std::byte> bytes = *payload;
              std::uint64_t arrived_sum = sum;
              if (d.corrupted) {
                if (bytes.empty()) {
                  arrived_sum ^= 1;
                } else {
                  const std::size_t bit =
                      static_cast<std::size_t>(d.corrupt_seed) %
                      (bytes.size() * 8);
                  bytes[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
                }
              }
              peer->on_data(off, std::move(bytes), arrived_sum);
            });
  last_tx_time_ = loop_->now();
  arm_timer();
}

void SimEndpoint::send_ack() {
  ++ack_packets_;
  ack_bytes_ += kSimPacketOverhead;
  tx_->send(kSimPacketOverhead,
            [peer = peer_, cum = recv_next_](const netsim::Delivery& d) {
              if (d.corrupted) {
                // An ACK is all header, and headers always checksum (a
                // corrupted cumulative offset acking bytes that never
                // arrived would silently hole the stream): detected and
                // dropped unconditionally; the cumulative re-ack heals.
                ++peer->corrupt_drops_;
                return;
              }
              peer->on_ack(cum);
            });
}

void SimEndpoint::arm_timer() {
  if (broken_) return;
  const double backoff =
      static_cast<double>(1u << std::min<std::size_t>(retries_, 6));
  const double deadline = last_tx_time_ + rto_ * backoff;
  // An outstanding timer already fires at or before the current deadline:
  // nothing to do. Otherwise schedule an additional, earlier timer -- the
  // stale later one degrades to a no-op when it fires.
  if (next_fire_ <= deadline + 1e-12) return;
  next_fire_ = deadline;
  loop_->schedule_in(std::max(deadline - loop_->now(), 0.0),
                     [this] { on_timer(); });
}

void SimEndpoint::on_timer() {
  next_fire_ = kNoTimer;
  if (broken_ || unacked_.empty()) return;  // all acked: go quiet
  const double backoff =
      static_cast<double>(1u << std::min<std::size_t>(retries_, 6));
  if (loop_->now() + 1e-12 >= last_tx_time_ + rto_ * backoff) {
    if (++retries_ > cfg_.max_retries) {
      // Peer gone (e.g. a permanent partition): stop scheduling and let
      // the loop quiesce -- and tell the session layer, whose backoff
      // owns the retry policy from here.
      break_pipe();
      return;
    }
    // Go-back-N burst: everything unacked goes again. Cumulative ACKs make
    // duplicates harmless on the far side.
    for (const Segment& seg : unacked_) transmit(seg, /*retransmit=*/true);
  }
  arm_timer();
}

void SimEndpoint::on_data(std::uint64_t offset, std::vector<std::byte> bytes,
                          std::uint64_t checksum) {
  if (broken_) return;
  if (cfg_.verify_checksums &&
      segment_checksum(offset, bytes) != checksum) {
    // Damaged in flight: discard without acking -- go-back-N retransmits
    // the gap, exactly like a dropped packet. This is the integrity
    // boundary that keeps link corruption out of the ordered byte stream.
    ++corrupt_drops_;
    return;
  }
  if (offset + bytes.size() > recv_next_) {
    // May duplicate an entry (same bytes); with verification off a
    // corrupted retransmission can also differ from a clean original --
    // emplace keeps the first-arrived copy either way.
    reorder_.emplace(offset, std::move(bytes));
    deliver_ready();
    if (broken_) return;  // framing poisoned mid-delivery: no ack
  }
  // Always re-ack (cumulative): lost ACKs and duplicate data self-heal.
  send_ack();
}

void SimEndpoint::deliver_ready() {
  auto it = reorder_.begin();
  while (it != reorder_.end() && it->first <= recv_next_) {
    const std::uint64_t end = it->first + it->second.size();
    if (end > recv_next_) {
      const std::size_t skip = static_cast<std::size_t>(recv_next_ - it->first);
      try {
        framer_.feed(std::span<const std::byte>(it->second).subspan(skip));
      } catch (const sync::ProtocolError&) {
        reorder_.clear();
        break_pipe();  // framing poisoned; nothing sane can follow
        return;
      }
      recv_next_ = end;
    }
    it = reorder_.erase(it);
  }
  while (handler_) {
    auto frame = framer_.next_frame();
    if (!frame) break;
    handler_(std::move(*frame));
  }
}

void SimEndpoint::break_pipe() {
  if (broken_) return;
  broken_ = true;
  unacked_.clear();
  reorder_.clear();
  if (error_) error_();
}

void SimEndpoint::on_ack(std::uint64_t cumulative) {
  if (broken_) return;
  bool progress = false;
  while (!unacked_.empty() &&
         unacked_.front().offset + unacked_.front().payload->size() <=
             cumulative) {
    unacked_.pop_front();
    progress = true;
  }
  if (progress) {
    retries_ = 0;
    pump_out();
    // The backoff reset moved the retransmission deadline up; make sure a
    // timer exists at the new, earlier deadline even if pump_out had
    // nothing fresh to transmit (stale far-future timers do not count).
    if (!unacked_.empty()) arm_timer();
    // Fire on window room alone: a sender draining a backlog larger than
    // the window must still see progress ticks, not silence until total
    // drain (writable() no longer conflates window-room with flushed()).
    if (writable_ && writable()) writable_();
  }
}

// ------------------------------------------------------------- SimConduit

SimConduit::SimConduit(netsim::EventLoop& loop, netsim::LinkConfig a_to_b,
                       netsim::LinkConfig b_to_a, SimConduitConfig cfg)
    : ab_(loop, a_to_b, "a->b"), ba_(loop, b_to_a, "b->a") {
  const double rto = cfg.rto_s > 0 ? cfg.rto_s : derive_rto(a_to_b, b_to_a, cfg);
  a_.reset(new SimEndpoint(loop, ab_, cfg, rto));
  b_.reset(new SimEndpoint(loop, ba_, cfg, rto));
  a_->peer_ = b_.get();
  b_->peer_ = a_.get();
}

}  // namespace ribltx::net
