// SimConduit: the FrameConduit byte-stream protocol carried over a pair of
// simulated netsim links -- the third leg of the transport subsystem.
//
// The same framing codec that runs over loopback TCP (net/frame_conduit.hpp)
// runs here over netsim::EventLoop links with loss, latency, bandwidth
// caps, and reordering jitter; the engine/client code on top is byte-for-
// byte identical, so loss/latency scenarios exercise exactly the serving
// path the paper measures on Dummynet (Figs 12-14).
//
// Reliability layer (a deliberately small TCP analogue, since the frame
// protocols assume an ordered reliable stream):
//   * the outbound frame stream is byte-sequenced and chunked into
//     segments of <= mtu payload bytes;
//   * the receiver delivers bytes in order (out-of-order segments park in
//     a reorder buffer) and returns cumulative ACKs carrying the next
//     needed offset;
//   * unacked segments retransmit in a burst when the retransmission
//     timer expires (go-back-N; ACK loss self-heals cumulatively);
//   * a bounded in-flight window provides flow control, and on_writable
//     fires when the window reopens -- the event-driven analogue of the
//     socket path's send-buffer backpressure, which is what paces a
//     rateless server so it does not stream unboundedly ahead.
//
// Everything is deterministic: loss and jitter draw from the links' seeded
// RNG streams, and the event loop is single-threaded.
#pragma once

#include <cstdint>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "net/frame_conduit.hpp"
#include "netsim/sim.hpp"

namespace ribltx::net {

struct SimConduitConfig {
  std::size_t mtu = 1200;       ///< max payload bytes per data segment
  std::size_t window = 64;      ///< max unacked segments in flight
  double rto_s = 0;             ///< retransmission timeout; 0 = derive
  std::size_t max_retries = 64; ///< give up (mark broken) after this many
  std::size_t max_frame = FrameConduit::kDefaultMaxFrame;
  /// Verify the per-segment payload checksum on receive and drop mismatches
  /// (the retransmission machinery then heals the gap) -- the datagram
  /// integrity layer that keeps link-level corruption out of the byte
  /// stream. Turn off only to prove the layers above contain corruption on
  /// their own (framing + codec checksums).
  bool verify_checksums = true;
};

/// Per-packet header cost charged to the link (seq/ack/len fields of a
/// real datagram header).
inline constexpr std::size_t kSimPacketOverhead = 16;

class SimConduit;

/// One end of the pipe. Not constructed directly; see SimConduit.
class SimEndpoint {
 public:
  using FrameHandler = std::function<void(std::vector<std::byte>)>;

  /// Queues a frame for reliable delivery to the peer.
  void send_frame(std::vector<std::byte> frame);

  /// Complete frames from the peer invoke `fn` (in order, exactly once).
  void on_frame(FrameHandler fn) { handler_ = std::move(fn); }

  /// Fires whenever the in-flight window reopens and queued output can
  /// move (use to pace a rateless stream against the link).
  void on_writable(std::function<void()> fn) { writable_ = std::move(fn); }

  /// Fires exactly once when the pipe transitions to broken (retransmit
  /// cap exhausted through a dead path, framing poisoned, or sever()): the
  /// connection-error signal a session layer's retry/backoff keys off.
  void on_error(std::function<void()> fn) { error_ = std::move(fn); }

  /// Kills this end of the pipe immediately (crash injection): in-flight
  /// state is dropped, broken() turns true, and on_error fires. The peer
  /// endpoint is not touched -- it discovers the death through its own
  /// retransmit cap (or its own sever()).
  void sever() { break_pipe(); }

  /// True while the in-flight window has room -- the "send buffer has
  /// room" pacing signal. Deliberately NOT conditioned on the outbound
  /// framer being drained: a sender that queued one frame larger than the
  /// window would otherwise read false until total drain and its pacing
  /// loop would stall. Queued-but-unsent bytes are visible separately via
  /// flushed().
  [[nodiscard]] bool writable() const noexcept {
    return !broken_ && unacked_.size() < cfg_.window;
  }

  /// True once every queued frame has been handed to the link (the
  /// outbound framer is drained; in-flight segments may still await ACKs).
  /// The "did my backlog move" predicate -- distinct from writable().
  [[nodiscard]] bool flushed() const noexcept {
    return !framer_.has_output();
  }

  /// The peer stopped acking for max_retries RTOs (or framing poisoned):
  /// the pipe is dead.
  [[nodiscard]] bool broken() const noexcept { return broken_; }

  [[nodiscard]] std::size_t retransmits() const noexcept {
    return retransmits_;
  }
  [[nodiscard]] std::size_t data_packets() const noexcept {
    return data_packets_;
  }
  [[nodiscard]] std::size_t ack_packets() const noexcept {
    return ack_packets_;
  }
  /// Link bytes charged to this endpoint's transmit direction for data
  /// segments (payload + per-packet overhead, retransmissions included).
  [[nodiscard]] std::uint64_t data_bytes() const noexcept {
    return data_bytes_;
  }
  /// Link bytes charged for ACK packets.
  [[nodiscard]] std::uint64_t ack_bytes() const noexcept {
    return ack_bytes_;
  }
  /// Inbound packets discarded for failed integrity checks (checksum
  /// mismatches on data segments, corrupted ACK headers).
  [[nodiscard]] std::size_t corrupt_drops() const noexcept {
    return corrupt_drops_;
  }

 private:
  friend class SimConduit;

  struct Segment {
    std::uint64_t offset = 0;
    /// Shared with every in-flight delivery closure: a go-back-N burst
    /// re-captures the pointer, not a copy of the window's payload bytes.
    std::shared_ptr<const std::vector<std::byte>> payload;
  };

  SimEndpoint(netsim::EventLoop& loop, netsim::Link& tx,
              const SimConduitConfig& cfg, double rto)
      : loop_(&loop), tx_(&tx), cfg_(cfg), rto_(rto), framer_(cfg.max_frame) {}

  void pump_out();
  void transmit(const Segment& seg, bool retransmit);
  void send_ack();
  void arm_timer();
  void on_timer();
  void on_data(std::uint64_t offset, std::vector<std::byte> bytes,
               std::uint64_t checksum);
  void on_ack(std::uint64_t cumulative);
  void deliver_ready();
  void break_pipe();
  [[nodiscard]] static std::uint64_t segment_checksum(
      std::uint64_t offset, std::span<const std::byte> payload) noexcept;

  netsim::EventLoop* loop_;
  netsim::Link* tx_;          ///< this endpoint's transmit direction
  SimEndpoint* peer_ = nullptr;
  SimConduitConfig cfg_;
  double rto_;
  FrameConduit framer_;       ///< outbound queue + inbound reassembly

  // Sender state.
  std::deque<Segment> unacked_;
  std::uint64_t next_send_off_ = 0;
  double last_tx_time_ = 0;   ///< newest (re)transmission time
  /// Earliest pending timer fire time (+inf when none). Timers cannot be
  /// cancelled in the EventLoop, so a NEW earlier timer is scheduled
  /// whenever the current retransmission deadline moves up (e.g. an ACK
  /// reset the backoff while a stale far-future timer was outstanding);
  /// late stale timers fire as no-ops.
  double next_fire_ = kNoTimer;
  std::size_t retries_ = 0;   ///< consecutive timeouts without progress
  bool broken_ = false;

  static constexpr double kNoTimer = 1e300;

  // Receiver state.
  std::uint64_t recv_next_ = 0;
  std::map<std::uint64_t, std::vector<std::byte>> reorder_;

  FrameHandler handler_;
  std::function<void()> writable_;
  std::function<void()> error_;
  std::size_t retransmits_ = 0;
  std::size_t data_packets_ = 0;
  std::size_t ack_packets_ = 0;
  std::uint64_t data_bytes_ = 0;
  std::uint64_t ack_bytes_ = 0;
  std::size_t corrupt_drops_ = 0;
};

/// A full-duplex reliable frame pipe: endpoint a() transmits over the
/// a->b link, b() over b->a. Owns both links and both endpoints; the
/// EventLoop is the caller's (sessions usually share one).
class SimConduit {
 public:
  SimConduit(netsim::EventLoop& loop, netsim::LinkConfig a_to_b,
             netsim::LinkConfig b_to_a, SimConduitConfig cfg = {});

  [[nodiscard]] SimEndpoint& a() noexcept { return *a_; }
  [[nodiscard]] SimEndpoint& b() noexcept { return *b_; }
  [[nodiscard]] netsim::Link& link_ab() noexcept { return ab_; }
  [[nodiscard]] netsim::Link& link_ba() noexcept { return ba_; }

 private:
  netsim::Link ab_;
  netsim::Link ba_;
  std::unique_ptr<SimEndpoint> a_;
  std::unique_ptr<SimEndpoint> b_;
};

}  // namespace ribltx::net
