// UringServer: the ShardedEngine served over loopback TCP by an io_uring
// submission loop -- the C10K->C1M half of the transport tier.
//
// Same surface and same semantics as the epoll SocketServer (bind-before-
// start, port(), stats(), sid -> connection reply routing, watermark
// backpressure from the shard workers' blocking sinks, per-connection
// error containment), different engine room:
//
//   accept    one multishot accept SQE produces a CQE per connection
//             instead of one epoll wakeup + accept4 syscall each.
//   recv      multishot recv through a provided-buffer ring: the kernel
//             picks a buffer per completion, so parked paced sessions cost
//             zero armed read buffers and zero syscalls while idle.
//   send      the conduit's scatter output drains through one outstanding
//             sendmsg SQE per connection. Deliberately NOT a linked SQE
//             chain: a short write completes the link "successfully"
//             without severing it, so the next linked send would transmit
//             from the wrong offset and corrupt the stream. One in-flight
//             gather per connection re-armed on completion is short-write
//             safe and still batches all connections into one submit.
//   wakeup    shard workers nudge the serving thread via IORING_OP_MSG_RING
//             on a shared sender ring (a CQE, no eventfd round trip), or
//             an eventfd read SQE where MSG_RING is unavailable. Both are
//             coalesced to one wakeup per drain cycle.
//   close     io_uring ops hold a reference to the file, so close() alone
//             neither cancels them nor closes the socket. Teardown is
//             shutdown(SHUT_RDWR) -> pending ops error out -> the conn is
//             erased once its last in-flight op completes.
//
// Every caller that wants "best available server" should use AnyServer
// (bottom of this header): it instantiates UringServer when the build has
// <linux/io_uring.h> AND the runtime probe passes (kernel support, no
// seccomp denial, RIBLT_NO_URING unset), else the epoll SocketServer.
#pragma once

#include <cstdint>
#include <optional>

#include "net/socket_server.hpp"
#include "net/uring.hpp"

#if defined(RIBLT_HAS_IO_URING)

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/frame_conduit.hpp"
#include "net/tcp.hpp"
#include "sync/sharded.hpp"

namespace ribltx::net {

template <Symbol T, typename Hasher = SipHasher<T>>
class UringServer {
 public:
  /// Binds the listener immediately (port() valid before start()) and
  /// creates the ring, so construction throws -- rather than start()
  /// failing later -- when io_uring is unusable. Gate on uring_available().
  explicit UringServer(sync::ShardedEngine<T, Hasher>& engine,
                       SocketServerOptions options = {})
      : engine_(engine), options_(options), listener_(options.port) {
    if (options_.low_watermark >= options_.high_watermark) {
      throw std::invalid_argument("UringServer: watermarks out of order");
    }
    // Deep CQ: multishot accept/recv complete many times per SQE, and an
    // overflowed CQ stalls the whole ring.
    ring_ = std::make_unique<Uring>(kSqEntries, kCqEntries);
    use_buf_ring_ = options_.uring_buffer_ring &&
                    ring_->setup_buf_ring(kBufGroup, kBufRingEntries,
                                          kRecvBufSize);
    use_msg_ring_ = options_.uring_msg_ring && uring_caps().msg_ring;
    if (options_.metrics != nullptr) {
      obs_conduit_depth_ = &options_.metrics->histogram(
          "riblt_server_conduit_pending_bytes",
          "Bytes queued in a connection's conduit after a flush",
          {{"server", "uring"}});
    }
    if (use_msg_ring_) {
      // Tiny sender ring shared by all sink threads (mutex-guarded): its
      // only job is posting wakeup CQEs onto the serving ring.
      sender_ring_ = std::make_unique<Uring>(/*sq_entries=*/4);
    }
  }

  ~UringServer() { stop(); }

  UringServer(const UringServer&) = delete;
  UringServer& operator=(const UringServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }

  /// True when recv goes through the provided-buffer ring (false = the
  /// single-shot fallback; exposed for tests).
  [[nodiscard]] bool using_buffer_ring() const noexcept {
    return use_buf_ring_;
  }
  [[nodiscard]] bool using_msg_ring() const noexcept { return use_msg_ring_; }

  void start() {
    if (running_) throw std::logic_error("UringServer: already started");
    stopping_.store(false, std::memory_order_release);
    engine_.start([this](std::vector<std::byte> frame) {
      sink(std::move(frame));
    });
    serve_thread_ = std::thread([this] { serve_loop(); });
    running_ = true;
  }

  void stop() {
    if (!running_) return;
    stopping_.store(true, std::memory_order_release);
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      for (auto& [id, conn] : conns_) {
        // Same lost-wakeup guard as the epoll server: park-in-progress
        // sinks must be fully inside the wait before the notify.
        { const std::lock_guard<std::mutex> conn_lk(conn->mu); }
        conn->cv.notify_all();
      }
    }
    engine_.stop();
    wake();
    if (serve_thread_.joinable()) serve_thread_.join();
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      conns_.clear();
      routes_.clear();
    }
    {
      const std::lock_guard<std::mutex> lk(dirty_mu_);
      dirty_.clear();
    }
    running_ = false;
  }

  [[nodiscard]] bool running() const noexcept { return running_; }

  [[nodiscard]] SocketServerStats stats() const {
    SocketServerStats out;
    out.connections_accepted = accepted_.load(std::memory_order_relaxed);
    out.connections_closed = closed_.load(std::memory_order_relaxed);
    out.frames_in = frames_in_.load(std::memory_order_relaxed);
    out.frames_out = frames_out_.load(std::memory_order_relaxed);
    out.frames_dropped = dropped_.load(std::memory_order_relaxed);
    out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    // The uring data path's only steady-state syscall is io_uring_enter.
    out.syscalls_wait = ring_ ? ring_->enter_calls() : 0;
    out.sqe_submits = ring_ ? ring_->sqes_submitted() : 0;
    out.wakeups = wakeups_.load(std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      out.routes = routes_.size();
    }
    return out;
  }

 private:
  static constexpr unsigned kSqEntries = 1024;
  static constexpr unsigned kCqEntries = 8192;
  static constexpr std::uint16_t kBufGroup = 1;
  static constexpr unsigned kBufRingEntries = 256;
  static constexpr std::size_t kRecvBufSize = 32u << 10;
  static constexpr std::size_t kSendIov = 32;
  static constexpr std::size_t kReapBatch = 256;

  // user_data: low 8 bits op kind, high 56 bits connection key.
  enum Ud : std::uint8_t {
    kUdAccept = 1,
    kUdTimeout = 2,
    kUdWakeup = 3,
    kUdCancel = 4,
    kUdRecv = 5,
    kUdSend = 6,
  };
  [[nodiscard]] static constexpr std::uint64_t make_ud(
      Ud op, std::uint64_t key = 0) noexcept {
    return (key << 8) | op;
  }
  [[nodiscard]] static constexpr Ud ud_op(std::uint64_t ud) noexcept {
    return static_cast<Ud>(ud & 0xff);
  }
  [[nodiscard]] static constexpr std::uint64_t ud_key(
      std::uint64_t ud) noexcept {
    return ud >> 8;
  }

  struct Conn {
    Conn(int fd, std::uint64_t key_, std::size_t max_frame)
        : io(fd), key(key_), conduit(max_frame) {}

    TcpConn io;
    const std::uint64_t key;
    FrameConduit conduit;  ///< serving thread only, both directions

    std::mutex mu;  ///< guards staged/staged_bytes (sink <-> serving thread)
    std::condition_variable cv;
    std::deque<std::vector<std::byte>> staged;
    std::size_t staged_bytes = 0;
    std::atomic<std::size_t> conduit_pending{0};
    std::atomic<bool> dead{false};
    std::atomic<bool> dirty{false};
    /// A sink timed out on this connection's backpressure; the serving
    /// thread begins the close at the next drain cycle (only it owns the
    /// op/fd lifecycle).
    std::atomic<bool> doomed{false};

    // io_uring state, serving thread only.
    bool recv_armed = false;
    bool send_armed = false;
    bool closing = false;
    std::vector<std::byte> recv_buf;  ///< single-shot recv fallback only
    // Stable storage for the in-flight sendmsg (the kernel may import the
    // iovec after submission on the async path).
    msghdr msg{};
    iovec iov[kSendIov]{};
  };

  // ------------------------------------------------------ worker-side sink

  /// Identical contract to SocketServer::sink: blocks the shard worker on
  /// the destination connection's watermark, stages the frame, nudges the
  /// serving thread (coalesced to one wakeup per drain cycle).
  void sink(std::vector<std::byte> frame) {
    std::uint64_t sid = 0;
    try {
      sid = sync::v2::peek_session_id(frame);
    } catch (const sync::ProtocolError&) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::shared_ptr<Conn> conn;
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      const auto it = routes_.find(sid);
      if (it != routes_.end()) conn = it->second;
    }
    if (!conn) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    {
      std::unique_lock<std::mutex> lk(conn->mu);
      const auto drained = [&] {
        return stopping_.load(std::memory_order_acquire) ||
               conn->dead.load(std::memory_order_acquire) ||
               conn->staged_bytes +
                       conn->conduit_pending.load(std::memory_order_acquire) <
                   options_.high_watermark;
      };
      bool woke = true;
      if (options_.sink_timeout_s > 0) {
        woke = conn->cv.wait_for(
            lk, std::chrono::duration<double>(options_.sink_timeout_s),
            drained);
      } else {
        conn->cv.wait(lk, drained);
      }
      if (!woke) {
        // Stalled peer (above the watermark for the whole timeout): doom
        // the connection so the serving thread closes it, and release this
        // worker back to the shard's other sessions.
        lk.unlock();
        conn->doomed.store(true, std::memory_order_release);
        dropped_.fetch_add(1, std::memory_order_relaxed);
        mark_dirty(conn);
        if (!wake_pending_.exchange(true, std::memory_order_acq_rel)) wake();
        return;
      }
      if (stopping_.load(std::memory_order_acquire) ||
          conn->dead.load(std::memory_order_acquire)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      conn->staged_bytes += frame.size();
      conn->staged.push_back(std::move(frame));
    }
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    mark_dirty(conn);
    if (!wake_pending_.exchange(true, std::memory_order_acq_rel)) wake();
  }

  void mark_dirty(const std::shared_ptr<Conn>& conn) {
    if (!conn->dirty.exchange(true, std::memory_order_acq_rel)) {
      const std::lock_guard<std::mutex> lk(dirty_mu_);
      dirty_.push_back(conn);
    }
  }

  /// Nudges the serving thread out of submit_and_wait. MSG_RING posts a
  /// CQE straight onto the serving ring; the fallback writes the eventfd a
  /// persistent read SQE is parked on. Either way: one syscall, counted.
  void wake() {
    if (use_msg_ring_) {
      const std::lock_guard<std::mutex> lk(sender_mu_);
      io_uring_sqe* sqe = sender_ring_->get_sqe();
      Uring::prep_msg_ring(*sqe, ring_->ring_fd(), make_ud(kUdWakeup),
                           make_ud(kUdWakeup));
      (void)sender_ring_->submit();
      // The MSG_RING op posts its own completion on the SENDER ring too;
      // discard them here or its small CQ overflows after a few wakes.
      Uring::Cqe scratch[8];
      while (sender_ring_->reap(scratch) != 0) {
      }
    } else {
      wakeup_.signal();
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
  }

  // -------------------------------------------------------- serving thread

  void serve_loop() {
    arm_accept();
    arm_timeout();
    if (!use_msg_ring_) arm_wakeup_read();
    Uring::Cqe cqes[kReapBatch];
    while (!stopping_.load(std::memory_order_acquire)) {
      (void)ring_->submit_and_wait(1);
      std::size_t n;
      while ((n = ring_->reap(cqes)) != 0) {
        for (std::size_t i = 0; i < n; ++i) on_cqe(cqes[i]);
      }
      // Clear-then-drain, same ordering argument as the epoll loop: a sink
      // staging after the clear wakes us again; one staging before it is
      // drained right here.
      wake_pending_.store(false, std::memory_order_release);
      drain_dirty();
    }
    teardown_drain();
  }

  void on_cqe(const Uring::Cqe& cqe) {
    switch (ud_op(cqe.user_data)) {
      case kUdAccept:
        if (!cqe.more()) {
          inflight_--;
          accept_armed_ = false;
        }
        on_accept(cqe);
        break;
      case kUdTimeout:
        inflight_--;
        timeout_armed_ = false;
        arm_timeout();  // the 200ms stop-flag tick; also re-arms a downed
        if (!accept_armed_) arm_accept();  // accept after transient errors
        break;
      case kUdWakeup:
        if (!use_msg_ring_) {
          inflight_--;
          wakeup_read_armed_ = false;
          wakeup_.drain();  // reset the eventfd counter (nonblocking fd)
          arm_wakeup_read();
        }
        break;
      case kUdCancel:
        inflight_--;
        break;
      case kUdRecv:
        on_recv(cqe);
        break;
      case kUdSend:
        on_send(cqe);
        break;
    }
  }

  void on_accept(const Uring::Cqe& cqe) {
    if (cqe.res < 0) {
      if (cqe.res == -EINVAL && multishot_accept_) {
        // Kernel predates multishot accept: fall back to one-shot re-arm.
        multishot_accept_ = false;
        arm_accept();
      }
      // Other errors (EMFILE, ECONNABORTED): the accept SQE is down; the
      // timeout tick re-arms it, which rate-limits a hot error loop.
      return;
    }
    const int fd = cqe.res;
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    set_send_buffer(fd, options_.send_buffer);
    const std::uint64_t key = next_conn_key_++;
    auto conn = std::make_shared<Conn>(fd, key, options_.max_frame);
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      conns_.emplace(key, conn);
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    arm_recv(*conn);
    if (!multishot_accept_ && !cqe.more()) arm_accept();
  }

  void on_recv(const Uring::Cqe& cqe) {
    const std::uint64_t key = ud_key(cqe.user_data);
    const std::shared_ptr<Conn> conn = conn_of(key);
    const bool rearmed = cqe.more();
    if (!rearmed && conn) conn->recv_armed = false;
    if (!rearmed) inflight_--;
    if (!conn) {
      if (cqe.has_buffer()) ring_->recycle_buffer(cqe.buffer_id());
      return;
    }
    if (conn->closing) {
      if (cqe.has_buffer()) ring_->recycle_buffer(cqe.buffer_id());
      maybe_finish_close(conn);
      return;
    }
    if (cqe.res == -ENOBUFS) {
      // Provided-buffer ring momentarily empty; buffers recycle within
      // this same drain cycle, so re-arming immediately is safe.
      if (!conn->recv_armed) arm_recv(*conn);
      return;
    }
    if (cqe.res == -EINVAL && use_buf_ring_) {
      // Kernel predates multishot recv / buffer selection: drop the whole
      // server to single-shot recv (per-conn buffers) and carry on.
      use_buf_ring_ = false;
      if (!conn->recv_armed) arm_recv(*conn);
      return;
    }
    if (cqe.res <= 0) {
      if (cqe.has_buffer()) ring_->recycle_buffer(cqe.buffer_id());
      begin_close(conn);
      maybe_finish_close(conn);
      return;
    }
    const auto nbytes = static_cast<std::size_t>(cqe.res);
    std::span<const std::byte> data;
    std::uint16_t bid = 0;
    if (cqe.has_buffer()) {
      bid = cqe.buffer_id();
      data = ring_->buffer(bid).first(nbytes);
    } else {
      data = std::span<const std::byte>(conn->recv_buf.data(), nbytes);
    }
    bool alive = true;
    try {
      conn->conduit.feed(data);
    } catch (const sync::ProtocolError&) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      begin_close(conn);
      alive = false;
    }
    if (cqe.has_buffer()) ring_->recycle_buffer(bid);
    if (alive) {
      while (auto frame = conn->conduit.next_frame()) {
        if (!route_inbound(conn, std::move(*frame))) {
          alive = false;
          break;
        }
      }
    }
    if (!alive) {
      maybe_finish_close(conn);
      return;
    }
    if (!conn->recv_armed) arm_recv(*conn);
  }

  void on_send(const Uring::Cqe& cqe) {
    inflight_--;
    const std::shared_ptr<Conn> conn = conn_of(ud_key(cqe.user_data));
    if (!conn) return;
    conn->send_armed = false;
    if (conn->closing) {
      maybe_finish_close(conn);
      return;
    }
    if (cqe.res < 0) {
      begin_close(conn);
      maybe_finish_close(conn);
      return;
    }
    conn->conduit.consume(static_cast<std::size_t>(cqe.res));
    after_drain(*conn);
    arm_send(*conn);
  }

  // ------------------------------------------------------------ arm helpers

  void arm_accept() {
    if (accept_armed_ || stopping_.load(std::memory_order_acquire)) return;
    io_uring_sqe* sqe = ring_->get_sqe();
    Uring::prep_accept(*sqe, listener_.fd(), multishot_accept_,
                       make_ud(kUdAccept));
    accept_armed_ = true;
    inflight_++;
  }

  void arm_timeout() {
    if (timeout_armed_) return;
    tick_ts_ = {0, 200 * 1000 * 1000};  // 200ms, matches the epoll tick
    io_uring_sqe* sqe = ring_->get_sqe();
    Uring::prep_timeout(*sqe, &tick_ts_, make_ud(kUdTimeout));
    timeout_armed_ = true;
    inflight_++;
  }

  void arm_wakeup_read() {
    if (wakeup_read_armed_) return;
    io_uring_sqe* sqe = ring_->get_sqe();
    Uring::prep_read(*sqe, wakeup_.fd(), &wakeup_scratch_,
                     sizeof wakeup_scratch_, make_ud(kUdWakeup));
    wakeup_read_armed_ = true;
    inflight_++;
  }

  void arm_recv(Conn& conn) {
    if (conn.recv_armed || conn.closing) return;
    io_uring_sqe* sqe = ring_->get_sqe();
    if (use_buf_ring_) {
      Uring::prep_recv_multishot(*sqe, conn.io.fd(), kBufGroup,
                                 make_ud(kUdRecv, conn.key));
    } else {
      if (conn.recv_buf.empty()) conn.recv_buf.resize(kRecvBufSize);
      Uring::prep_recv(*sqe, conn.io.fd(), conn.recv_buf.data(),
                       conn.recv_buf.size(), make_ud(kUdRecv, conn.key));
    }
    conn.recv_armed = true;
    inflight_++;
  }

  /// Arms at most ONE outstanding sendmsg per connection over the
  /// conduit's current scatter head (see the header comment for why not a
  /// linked chain). Iovec/msghdr live in the Conn, stable until the CQE.
  void arm_send(Conn& conn) {
    if (conn.send_armed || conn.closing || !conn.conduit.has_output()) return;
    std::span<const std::byte> chunks[kSendIov];
    const std::size_t n = conn.conduit.gather(chunks);
    if (n == 0) return;
    for (std::size_t i = 0; i < n; ++i) {
      conn.iov[i].iov_base =
          const_cast<std::byte*>(chunks[i].data());
      conn.iov[i].iov_len = chunks[i].size();
    }
    conn.msg = msghdr{};
    conn.msg.msg_iov = conn.iov;
    conn.msg.msg_iovlen = n;
    io_uring_sqe* sqe = ring_->get_sqe();
    Uring::prep_sendmsg(*sqe, conn.io.fd(), &conn.msg,
                        make_ud(kUdSend, conn.key));
    conn.send_armed = true;
    inflight_++;
  }

  // ------------------------------------------------------- routing / drain

  [[nodiscard]] std::shared_ptr<Conn> conn_of(std::uint64_t key) {
    const std::lock_guard<std::mutex> lk(conns_mu_);
    const auto it = conns_.find(key);
    return it == conns_.end() ? nullptr : it->second;
  }

  /// Same routing contract as SocketServer::route_inbound (route-first for
  /// the HELLO_ACK race, hijack rejection, ERROR-reply containment, DONE/
  /// ERROR route drop). Returns false when the connection began closing.
  bool route_inbound(const std::shared_ptr<Conn>& conn,
                     std::vector<std::byte> frame) {
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t sid = 0;
    try {
      sid = sync::v2::peek_session_id(frame);
    } catch (const sync::ProtocolError&) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      begin_close(conn);
      return false;
    }
    const auto type = static_cast<std::uint8_t>(frame[0]);
    if (type == static_cast<std::uint8_t>(sync::v2::FrameType::kAdmin)) {
      // Same transport-level interception as SocketServer::route_inbound:
      // answered on the serving thread, never routed, never submitted.
      handle_admin(conn, sid, frame);
      return true;
    }
    bool inserted_route = false;
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      const auto [it, inserted] = routes_.emplace(sid, conn);
      if (!inserted && it->second.get() != conn.get()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        stage_local(conn, sync::v2::make_error_frame(
                              sid, "session belongs to another connection"));
        return true;
      }
      inserted_route = inserted;
    }
    try {
      engine_.submit(std::move(frame));
    } catch (const sync::ProtocolError& e) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      if (inserted_route) drop_route_if_self(sid, *conn);
      stage_local(conn, sync::v2::make_error_frame(sid, e.what()));
      return true;
    }
    if (type == static_cast<std::uint8_t>(sync::v2::FrameType::kDone) ||
        type == static_cast<std::uint8_t>(sync::v2::FrameType::kError)) {
      drop_route_if_self(sid, *conn);
    }
    return true;
  }

  void drop_route_if_self(std::uint64_t sid, const Conn& conn) {
    const std::lock_guard<std::mutex> lk(conns_mu_);
    const auto it = routes_.find(sid);
    if (it != routes_.end() && it->second.get() == &conn) routes_.erase(it);
  }

  /// Snapshot composition and ADMIN answering, mirroring SocketServer
  /// (see the comments there); only the server label differs.
  [[nodiscard]] obs::MetricsSnapshot compose_snapshot() const {
    obs::MetricsSnapshot snap = options_.metrics->snapshot();
    append_server_stats(snap, stats(), {{"server", "uring"}});
    sync::append_engine_totals(snap, engine_.stats().totals);
    return snap;
  }

  void handle_admin(const std::shared_ptr<Conn>& conn, std::uint64_t sid,
                    std::span<const std::byte> raw) {
    std::string verb;
    try {
      const sync::v2::Frame frame = sync::v2::parse_frame(raw);
      verb = sync::v2::error_text(frame);  // payload bytes as text
    } catch (const sync::ProtocolError&) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      stage_local(conn, sync::v2::make_error_frame(sid, "malformed ADMIN"));
      return;
    }
    std::string body;
    if ((verb == "METRICS" || verb == "METRICS_JSON") &&
        options_.metrics != nullptr) {
      const obs::MetricsSnapshot snap = compose_snapshot();
      body = verb == "METRICS" ? obs::prometheus_text(snap)
                               : obs::json_text(snap);
    } else if (verb == "TRACE" && options_.tracer != nullptr) {
      body = options_.tracer->chrome_json();
    } else {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      stage_local(conn, sync::v2::make_error_frame(
                            sid, "unsupported ADMIN verb: " + verb));
      return;
    }
    for (auto& reply : sync::v2::make_admin_reply(sid, body)) {
      stage_local(conn, std::move(reply));
    }
  }

  void stage_local(const std::shared_ptr<Conn>& conn,
                   std::vector<std::byte> frame) {
    {
      const std::lock_guard<std::mutex> lk(conn->mu);
      conn->staged_bytes += frame.size();
      conn->staged.push_back(std::move(frame));
    }
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    mark_dirty(conn);
  }

  void drain_dirty() {
    std::vector<std::shared_ptr<Conn>> batch;
    {
      const std::lock_guard<std::mutex> lk(dirty_mu_);
      batch.swap(dirty_);
    }
    for (auto& conn : batch) {
      conn->dirty.store(false, std::memory_order_release);
      if (conn->closing) continue;
      if (conn->doomed.load(std::memory_order_acquire)) {
        begin_close(conn);  // sink timed out: stalled peer
        maybe_finish_close(conn);
        continue;
      }
      {
        const std::lock_guard<std::mutex> lk(conn->mu);
        for (auto& frame : conn->staged) conn->conduit.send(std::move(frame));
        conn->staged.clear();
        conn->staged_bytes = 0;
      }
      after_drain(*conn);
      arm_send(*conn);
    }
  }

  /// Post-drain bookkeeping shared by send completions and staging:
  /// refresh the sink-visible pending mirror and release backpressured
  /// workers once below the low watermark.
  void after_drain(Conn& conn) {
    const std::size_t pending = conn.conduit.pending_bytes();
    conn.conduit_pending.store(pending, std::memory_order_release);
    if (obs_conduit_depth_ != nullptr) obs_conduit_depth_->record(pending);
    if (pending < options_.low_watermark) {
      { const std::lock_guard<std::mutex> lk(conn.mu); }
      conn.cv.notify_all();
    }
  }

  // ------------------------------------------------------------ close path

  /// First half of closing: stop the session (routes dropped, engine
  /// aborted, sinks released, socket shutdown so in-flight ops error out).
  /// The Conn stays in conns_ until its last op completes -- the kernel
  /// still owns references into its buffers.
  void begin_close(const std::shared_ptr<Conn>& conn) {
    if (conn->closing) return;
    conn->closing = true;
    {
      const std::lock_guard<std::mutex> lk(conn->mu);
      conn->dead.store(true, std::memory_order_release);
    }
    conn->io.shutdown_both();
    conn->cv.notify_all();
    std::vector<std::uint64_t> orphaned;
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      for (auto it = routes_.begin(); it != routes_.end();) {
        if (it->second.get() == conn.get()) {
          orphaned.push_back(it->first);
          it = routes_.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Abort the engine side of orphaned sessions (same rationale and same
    // synthetic in-band ERROR as SocketServer::close_conn).
    for (const std::uint64_t sid : orphaned) {
      try {
        engine_.submit(sync::v2::make_error_frame(sid, "peer disconnected"));
      } catch (const sync::ProtocolError&) {
      }
    }
  }

  /// Second half: once no op references the conn, close the fd and erase.
  void maybe_finish_close(const std::shared_ptr<Conn>& conn) {
    if (!conn->closing || conn->recv_armed || conn->send_armed) return;
    conn->io.close();
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      conns_.erase(conn->key);
    }
    closed_.fetch_add(1, std::memory_order_relaxed);
  }

  // -------------------------------------------------------------- teardown

  /// Cancels everything in flight and reaps until the kernel has released
  /// every op (it may hold references into conn buffers until then; the
  /// iteration cap only guards against a kernel that ignores CANCEL_ANY).
  void teardown_drain() {
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      for (auto& [key, conn] : conns_) conn->io.shutdown_both();
    }
    io_uring_sqe* sqe = ring_->get_sqe();
    Uring::prep_cancel_all(*sqe, make_ud(kUdCancel));
    inflight_++;
    Uring::Cqe cqes[kReapBatch];
    int rounds = 0;
    while (inflight_ > 0 && rounds++ < 64) {
      (void)ring_->submit_and_wait(1);
      std::size_t n;
      while ((n = ring_->reap(cqes)) != 0) {
        for (std::size_t i = 0; i < n; ++i) teardown_cqe(cqes[i]);
      }
      // Liveness: if non-timeout ops are still pending, keep a timeout
      // armed so submit_and_wait can never block indefinitely.
      if (!timeout_armed_ && inflight_ > 0) arm_timeout();
      if (timeout_armed_ && inflight_ == 1) {
        // Only our own tick left: let it fire once un-re-armed.
        (void)ring_->submit_and_wait(1);
        while ((n = ring_->reap(cqes)) != 0) {
          for (std::size_t i = 0; i < n; ++i) teardown_cqe(cqes[i]);
        }
      }
    }
    // Every accepted conn must eventually count as closed (the epoll
    // server's invariant): conns whose terminal CQEs landed only during
    // teardown never went through maybe_finish_close, so settle them here.
    std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> leftover;
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      leftover.swap(conns_);
    }
    for (auto& [key, conn] : leftover) {
      conn->io.close();
      closed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Minimal CQE dispatch during teardown: release buffers, clear armed
  /// flags, balance the inflight count. No re-arming except the liveness
  /// timeout handled by the caller.
  void teardown_cqe(const Uring::Cqe& cqe) {
    switch (ud_op(cqe.user_data)) {
      case kUdAccept:
        if (!cqe.more()) {
          inflight_--;
          accept_armed_ = false;
        }
        if (cqe.res >= 0) ::close(cqe.res);  // accepted during shutdown
        break;
      case kUdTimeout:
        inflight_--;
        timeout_armed_ = false;
        break;
      case kUdWakeup:
        if (!use_msg_ring_) {
          inflight_--;
          wakeup_read_armed_ = false;
        }
        break;
      case kUdCancel:
        inflight_--;
        break;
      case kUdRecv: {
        if (cqe.has_buffer()) ring_->recycle_buffer(cqe.buffer_id());
        if (!cqe.more()) {
          inflight_--;
          if (auto conn = conn_of(ud_key(cqe.user_data))) {
            conn->recv_armed = false;
          }
        }
        break;
      }
      case kUdSend:
        inflight_--;
        if (auto conn = conn_of(ud_key(cqe.user_data))) {
          conn->send_armed = false;
        }
        break;
    }
  }

  sync::ShardedEngine<T, Hasher>& engine_;
  SocketServerOptions options_;
  TcpListener listener_;
  std::unique_ptr<Uring> ring_;         ///< serving thread (after start)
  std::unique_ptr<Uring> sender_ring_;  ///< sink threads, sender_mu_-guarded
  std::mutex sender_mu_;
  WakeupFd wakeup_;  ///< eventfd fallback when MSG_RING is unavailable
  std::uint64_t wakeup_scratch_ = 0;
  __kernel_timespec tick_ts_{};
  bool use_buf_ring_ = false;
  bool use_msg_ring_ = false;
  bool multishot_accept_ = true;

  mutable std::mutex conns_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> conns_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> routes_;  ///< sid->
  std::uint64_t next_conn_key_ = 1;  ///< serving thread only

  std::mutex dirty_mu_;
  std::vector<std::shared_ptr<Conn>> dirty_;
  std::atomic<bool> wake_pending_{false};

  // Serving thread only: armed-op accounting for teardown.
  std::size_t inflight_ = 0;
  bool accept_armed_ = false;
  bool timeout_armed_ = false;
  bool wakeup_read_armed_ = false;

  std::thread serve_thread_;
  std::atomic<bool> stopping_{false};
  bool running_ = false;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  obs::Histogram* obs_conduit_depth_ = nullptr;  ///< null = untapped
};

}  // namespace ribltx::net

#else  // !RIBLT_HAS_IO_URING

namespace ribltx::net {

/// Builds without <linux/io_uring.h> get the epoll server under the uring
/// name, so callers (tests, benches) compile unchanged and the runtime
/// probe -- always false here -- tells them which path they are really on.
template <Symbol T, typename Hasher = SipHasher<T>>
using UringServer = SocketServer<T, Hasher>;

}  // namespace ribltx::net

#endif  // RIBLT_HAS_IO_URING

namespace ribltx::net {

enum class ServerBackend : std::uint8_t { kEpoll, kUring };

/// "Best available server": UringServer when the build has io_uring support
/// AND the runtime probe passes, else the epoll SocketServer -- one type
/// callers can hold without caring which engine room they got.
template <Symbol T, typename Hasher = SipHasher<T>>
class AnyServer {
 public:
  /// `allow_uring` false forces the epoll path (forced-fallback testing).
  explicit AnyServer(sync::ShardedEngine<T, Hasher>& engine,
                     SocketServerOptions options = {},
                     bool allow_uring = true) {
#if defined(RIBLT_HAS_IO_URING)
    if (allow_uring && uring_available()) {
      uring_.emplace(engine, options);
      backend_ = ServerBackend::kUring;
      return;
    }
#else
    (void)allow_uring;
#endif
    epoll_.emplace(engine, options);
    backend_ = ServerBackend::kEpoll;
  }

  [[nodiscard]] ServerBackend backend() const noexcept { return backend_; }

  [[nodiscard]] std::uint16_t port() const noexcept {
#if defined(RIBLT_HAS_IO_URING)
    if (uring_) return uring_->port();
#endif
    return epoll_->port();
  }

  void start() {
#if defined(RIBLT_HAS_IO_URING)
    if (uring_) {
      uring_->start();
      return;
    }
#endif
    epoll_->start();
  }

  void stop() {
#if defined(RIBLT_HAS_IO_URING)
    if (uring_) {
      uring_->stop();
      return;
    }
#endif
    epoll_->stop();
  }

  [[nodiscard]] bool running() const noexcept {
#if defined(RIBLT_HAS_IO_URING)
    if (uring_) return uring_->running();
#endif
    return epoll_->running();
  }

  [[nodiscard]] SocketServerStats stats() const {
#if defined(RIBLT_HAS_IO_URING)
    if (uring_) return uring_->stats();
#endif
    return epoll_->stats();
  }

 private:
  std::optional<SocketServer<T, Hasher>> epoll_;
#if defined(RIBLT_HAS_IO_URING)
  std::optional<UringServer<T, Hasher>> uring_;
#endif
  ServerBackend backend_ = ServerBackend::kEpoll;
};

}  // namespace ribltx::net
