#include "net/uring.hpp"

#include <cstdlib>
#include <mutex>

#if defined(RIBLT_HAS_IO_URING)

#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace ribltx::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

int sys_io_uring_setup(unsigned entries, io_uring_params* p) noexcept {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) noexcept {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int sys_io_uring_register(int fd, unsigned opcode, void* arg,
                          unsigned nr_args) noexcept {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

template <typename U>
[[nodiscard]] U* ring_ptr(void* base, std::uint32_t off) noexcept {
  return reinterpret_cast<U*>(static_cast<char*>(base) + off);
}

/// One-shot runtime probe: create a tiny ring, check required opcode
/// support via IORING_REGISTER_PROBE, tear it down.
UringCaps probe_caps() noexcept {
  UringCaps caps;
  if (std::getenv("RIBLT_NO_URING") != nullptr) {
    caps.reason = "disabled by RIBLT_NO_URING";
    return caps;
  }
  io_uring_params p{};
  const int fd = sys_io_uring_setup(4, &p);
  if (fd < 0) {
    caps.reason = errno == ENOSYS ? "io_uring_setup: ENOSYS (kernel too old)"
                  : errno == EPERM
                      ? "io_uring_setup: EPERM (seccomp/sysctl denied)"
                      : "io_uring_setup failed";
    return caps;
  }
  // Opcode probe (5.6+). A kernel too old to probe is too old to serve.
  constexpr unsigned kProbeOps = 64;
  alignas(io_uring_probe) unsigned char buf[sizeof(io_uring_probe) +
                                            kProbeOps *
                                                sizeof(io_uring_probe_op)] = {};
  auto* probe = reinterpret_cast<io_uring_probe*>(buf);
  const auto supported = [probe](unsigned op) {
    return op <= probe->last_op &&
           (probe->ops[op].flags & IO_URING_OP_SUPPORTED) != 0;
  };
  if (sys_io_uring_register(fd, IORING_REGISTER_PROBE, probe, kProbeOps) < 0) {
    caps.reason = "IORING_REGISTER_PROBE unsupported";
    ::close(fd);
    return caps;
  }
  if (!supported(IORING_OP_ACCEPT) || !supported(IORING_OP_RECV) ||
      !supported(IORING_OP_SENDMSG) || !supported(IORING_OP_ASYNC_CANCEL) ||
      !supported(IORING_OP_TIMEOUT) || !supported(IORING_OP_READ)) {
    caps.reason = "kernel lacks a required io_uring opcode";
    ::close(fd);
    return caps;
  }
  caps.available = true;
  caps.msg_ring = supported(IORING_OP_MSG_RING);
  // IORING_ASYNC_CANCEL_ANY landed with the same 5.19 batch as the
  // provided-buffer ring; probed indirectly via MSG_RING (5.18) being the
  // closest probeable op. A false positive only costs the teardown path a
  // fallback to per-op cancels (an -EINVAL completion).
  caps.cancel_any = caps.msg_ring;
  ::close(fd);
  return caps;
}

const UringCaps& cached_caps() noexcept {
  static const UringCaps caps = probe_caps();
  return caps;
}

}  // namespace

bool uring_available() noexcept { return cached_caps().available; }

const UringCaps& uring_caps() noexcept { return cached_caps(); }

// ------------------------------------------------------------------ Uring

Uring::Uring(unsigned sq_entries, unsigned cq_entries) {
  io_uring_params p{};
  if (cq_entries != 0) {
    p.flags |= IORING_SETUP_CQSIZE;
    p.cq_entries = cq_entries;
  }
  fd_ = sys_io_uring_setup(sq_entries, &p);
  if (fd_ < 0) throw_errno("io_uring_setup");

  sq_mmap_len_ = p.sq_off.array + p.sq_entries * sizeof(std::uint32_t);
  cq_mmap_len_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single =
      (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single) {
    sq_mmap_len_ = cq_mmap_len_ =
        sq_mmap_len_ > cq_mmap_len_ ? sq_mmap_len_ : cq_mmap_len_;
  }
  sq_mmap_ = ::mmap(nullptr, sq_mmap_len_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_SQ_RING);
  if (sq_mmap_ == MAP_FAILED) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("mmap(SQ ring)");
  }
  cq_mmap_ = single ? sq_mmap_
                    : ::mmap(nullptr, cq_mmap_len_, PROT_READ | PROT_WRITE,
                             MAP_SHARED | MAP_POPULATE, fd_,
                             IORING_OFF_CQ_RING);
  if (cq_mmap_ == MAP_FAILED) {
    const int saved = errno;
    ::munmap(sq_mmap_, sq_mmap_len_);
    ::close(fd_);
    errno = saved;
    throw_errno("mmap(CQ ring)");
  }
  sqe_mmap_len_ = p.sq_entries * sizeof(io_uring_sqe);
  sqe_mmap_ = ::mmap(nullptr, sqe_mmap_len_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_SQES);
  if (sqe_mmap_ == MAP_FAILED) {
    const int saved = errno;
    if (cq_mmap_ != sq_mmap_) ::munmap(cq_mmap_, cq_mmap_len_);
    ::munmap(sq_mmap_, sq_mmap_len_);
    ::close(fd_);
    errno = saved;
    throw_errno("mmap(SQEs)");
  }

  sqes_ = static_cast<io_uring_sqe*>(sqe_mmap_);
  sq_head_ = ring_ptr<unsigned>(sq_mmap_, p.sq_off.head);
  sq_tail_ = ring_ptr<unsigned>(sq_mmap_, p.sq_off.tail);
  sq_mask_ = *ring_ptr<unsigned>(sq_mmap_, p.sq_off.ring_mask);
  sq_entries_ = p.sq_entries;
  local_tail_ = *sq_tail_;
  submitted_ = local_tail_;
  // Identity SQ index array: slot i of the array always names SQE i, and
  // the SQE for a submission is chosen as (tail & mask).
  unsigned* sq_array = ring_ptr<unsigned>(sq_mmap_, p.sq_off.array);
  for (unsigned i = 0; i < p.sq_entries; ++i) sq_array[i] = i;

  cqes_ = ring_ptr<io_uring_cqe>(cq_mmap_, p.cq_off.cqes);
  cq_head_ = ring_ptr<unsigned>(cq_mmap_, p.cq_off.head);
  cq_tail_ = ring_ptr<unsigned>(cq_mmap_, p.cq_off.tail);
  cq_mask_ = *ring_ptr<unsigned>(cq_mmap_, p.cq_off.ring_mask);
}

Uring::~Uring() {
  if (br_ != nullptr) {
    io_uring_buf_reg reg{};
    reg.bgid = 0;
    (void)sys_io_uring_register(fd_, IORING_UNREGISTER_PBUF_RING, &reg, 1);
    ::munmap(br_, br_mmap_len_);
  }
  if (sqe_mmap_ != nullptr) ::munmap(sqe_mmap_, sqe_mmap_len_);
  if (cq_mmap_ != nullptr && cq_mmap_ != sq_mmap_) {
    ::munmap(cq_mmap_, cq_mmap_len_);
  }
  if (sq_mmap_ != nullptr) ::munmap(sq_mmap_, sq_mmap_len_);
  if (fd_ >= 0) ::close(fd_);
}

io_uring_sqe* Uring::get_sqe() {
  if (local_tail_ - std::atomic_ref<unsigned>(*sq_head_).load(
                        std::memory_order_acquire) >=
      sq_entries_) {
    (void)submit();  // SQ full: hand the backlog to the kernel first
  }
  io_uring_sqe* s = &sqes_[local_tail_ & sq_mask_];
  ++local_tail_;
  std::memset(s, 0, sizeof *s);
  return s;
}

void Uring::flush_tail() noexcept {
  std::atomic_ref<unsigned>(*sq_tail_).store(local_tail_,
                                             std::memory_order_release);
}

int Uring::enter(unsigned to_submit, unsigned min_complete, unsigned flags) {
  int r;
  do {
    r = sys_io_uring_enter(fd_, to_submit, min_complete, flags);
  } while (r < 0 && errno == EINTR);
  if (r < 0 && errno == EBUSY) {
    // CQ overflow backlog (pre-NODROP kernels): flush completions, retry.
    do {
      r = sys_io_uring_enter(fd_, to_submit, min_complete,
                             flags | IORING_ENTER_GETEVENTS);
    } while (r < 0 && errno == EINTR);
  }
  if (r < 0) throw_errno("io_uring_enter");
  enters_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

unsigned Uring::submit() {
  flush_tail();
  const unsigned pending = local_tail_ - submitted_;
  if (pending == 0) return 0;
  const int consumed = enter(pending, 0, 0);
  submitted_ += static_cast<unsigned>(consumed);
  sqe_count_.fetch_add(static_cast<unsigned>(consumed),
                       std::memory_order_relaxed);
  return static_cast<unsigned>(consumed);
}

unsigned Uring::submit_and_wait(unsigned min_complete) {
  flush_tail();
  const unsigned pending = local_tail_ - submitted_;
  const int consumed = enter(pending, min_complete, IORING_ENTER_GETEVENTS);
  submitted_ += static_cast<unsigned>(consumed);
  sqe_count_.fetch_add(static_cast<unsigned>(consumed),
                       std::memory_order_relaxed);
  return static_cast<unsigned>(consumed);
}

std::size_t Uring::reap(std::span<Cqe> out) noexcept {
  unsigned head = *cq_head_;  // sole consumer
  const unsigned tail =
      std::atomic_ref<unsigned>(*cq_tail_).load(std::memory_order_acquire);
  std::size_t n = 0;
  while (head != tail && n < out.size()) {
    const io_uring_cqe& c = cqes_[head & cq_mask_];
    out[n++] = Cqe{c.user_data, c.res, c.flags};
    ++head;
  }
  std::atomic_ref<unsigned>(*cq_head_).store(head, std::memory_order_release);
  return n;
}

// ------------------------------------------------- provided-buffer ring

bool Uring::setup_buf_ring(std::uint16_t bgid, unsigned entries,
                           std::size_t buf_size) {
  br_mmap_len_ = entries * sizeof(io_uring_buf);
  void* mem = ::mmap(nullptr, br_mmap_len_, PROT_READ | PROT_WRITE,
                     MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
  if (mem == MAP_FAILED) return false;
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<std::uint64_t>(mem);
  reg.ring_entries = entries;
  reg.bgid = bgid;
  if (sys_io_uring_register(fd_, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
    ::munmap(mem, br_mmap_len_);
    br_mmap_len_ = 0;
    return false;  // pre-5.19 kernel: single-shot recv fallback
  }
  br_ = static_cast<io_uring_buf_ring*>(mem);
  br_entries_ = entries;
  br_buf_size_ = buf_size;
  br_tail_ = 0;
  br_data_.resize(static_cast<std::size_t>(entries) * buf_size);
  for (unsigned i = 0; i < entries; ++i) {
    recycle_buffer(static_cast<std::uint16_t>(i));
  }
  return true;
}

std::span<std::byte> Uring::buffer(std::uint16_t bid) noexcept {
  return std::span<std::byte>(br_data_.data() + bid * br_buf_size_,
                              br_buf_size_);
}

void Uring::recycle_buffer(std::uint16_t bid) noexcept {
  // NOT br_->bufs[...]: under C++ the UAPI header's __DECLARE_FLEX_ARRAY
  // wraps the flexible array in an anonymous struct whose empty leading
  // member still occupies space, shifting offsetof(bufs) from 0 to 8 --
  // every slot would land 8 bytes past where the kernel reads it. The
  // kernel's contract is that slot i lives at ring_addr + i * 16.
  auto* slots = reinterpret_cast<io_uring_buf*>(br_);
  io_uring_buf& slot = slots[br_tail_ & (br_entries_ - 1)];
  slot.addr = reinterpret_cast<std::uint64_t>(br_data_.data() +
                                              bid * br_buf_size_);
  slot.len = static_cast<std::uint32_t>(br_buf_size_);
  slot.bid = bid;
  ++br_tail_;
  std::atomic_ref<std::uint16_t>(br_->tail).store(br_tail_,
                                                  std::memory_order_release);
}

// ------------------------------------------------------- prep helpers

void Uring::prep_accept(io_uring_sqe& s, int listen_fd, bool multishot,
                        std::uint64_t user_data) noexcept {
  s.opcode = IORING_OP_ACCEPT;
  s.fd = listen_fd;
  if (multishot) s.ioprio = IORING_ACCEPT_MULTISHOT;
  s.accept_flags = SOCK_CLOEXEC;
  s.user_data = user_data;
}

void Uring::prep_recv_multishot(io_uring_sqe& s, int fd, std::uint16_t bgid,
                                std::uint64_t user_data) noexcept {
  s.opcode = IORING_OP_RECV;
  s.fd = fd;
  s.ioprio = IORING_RECV_MULTISHOT;
  s.flags = IOSQE_BUFFER_SELECT;
  s.buf_group = bgid;
  s.user_data = user_data;
}

void Uring::prep_recv(io_uring_sqe& s, int fd, void* buf, std::size_t len,
                      std::uint64_t user_data) noexcept {
  s.opcode = IORING_OP_RECV;
  s.fd = fd;
  s.addr = reinterpret_cast<std::uint64_t>(buf);
  s.len = static_cast<std::uint32_t>(len);
  s.user_data = user_data;
}

void Uring::prep_sendmsg(io_uring_sqe& s, int fd, const msghdr* msg,
                         std::uint64_t user_data) noexcept {
  s.opcode = IORING_OP_SENDMSG;
  s.fd = fd;
  s.addr = reinterpret_cast<std::uint64_t>(msg);
  s.len = 1;
  s.msg_flags = MSG_NOSIGNAL;
  s.user_data = user_data;
}

void Uring::prep_read(io_uring_sqe& s, int fd, void* buf, std::size_t len,
                      std::uint64_t user_data) noexcept {
  s.opcode = IORING_OP_READ;
  s.fd = fd;
  s.addr = reinterpret_cast<std::uint64_t>(buf);
  s.len = static_cast<std::uint32_t>(len);
  s.user_data = user_data;
}

void Uring::prep_timeout(io_uring_sqe& s, __kernel_timespec* ts,
                         std::uint64_t user_data) noexcept {
  s.opcode = IORING_OP_TIMEOUT;
  s.addr = reinterpret_cast<std::uint64_t>(ts);
  s.len = 1;
  s.fd = -1;
  s.user_data = user_data;
}

void Uring::prep_msg_ring(io_uring_sqe& s, int target_ring_fd,
                          std::uint64_t target_user_data,
                          std::uint64_t user_data) noexcept {
  s.opcode = IORING_OP_MSG_RING;
  s.fd = target_ring_fd;
  s.addr = IORING_MSG_DATA;
  s.len = 0;                 // becomes the target CQE's res
  s.off = target_user_data;  // becomes the target CQE's user_data
  s.user_data = user_data;
}

void Uring::prep_cancel_all(io_uring_sqe& s,
                            std::uint64_t user_data) noexcept {
  s.opcode = IORING_OP_ASYNC_CANCEL;
  s.fd = -1;
  s.cancel_flags = IORING_ASYNC_CANCEL_ANY;
  s.user_data = user_data;
}

std::uint64_t Uring::enter_calls() const noexcept {
  return enters_.load(std::memory_order_relaxed);
}

std::uint64_t Uring::sqes_submitted() const noexcept {
  return sqe_count_.load(std::memory_order_relaxed);
}

}  // namespace ribltx::net

#else  // !RIBLT_HAS_IO_URING

namespace ribltx::net {

namespace {
const UringCaps kNoUring{false, false, false,
                         "built without <linux/io_uring.h>"};
}  // namespace

bool uring_available() noexcept { return false; }

const UringCaps& uring_caps() noexcept { return kNoUring; }

}  // namespace ribltx::net

#endif  // RIBLT_HAS_IO_URING
