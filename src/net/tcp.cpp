#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace ribltx::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) noexcept {
  // Frames are latency-sensitive and self-contained; Nagle coalescing only
  // adds RTTs. Failure is harmless (e.g. non-TCP fd in tests).
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

// ---------------------------------------------------------------- Poller

static_assert(kPollIn == EPOLLIN && kPollOut == EPOLLOUT,
              "re-exported readiness bits must match epoll's");

Poller::Poller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (epfd_ < 0) throw_errno("epoll_create1");
}

Poller::~Poller() {
  if (epfd_ >= 0) ::close(epfd_);
}

void Poller::add(int fd, std::uint32_t events, std::uint64_t key) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = key;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(ADD)");
  }
}

void Poller::modify(int fd, std::uint32_t events, std::uint64_t key) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = key;
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(MOD)");
  }
}

void Poller::remove(int fd) {
  // Best effort: the fd may already be closed (EBADF) on teardown paths.
  (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
}

std::size_t Poller::wait(std::span<Event> out, int timeout_ms) {
  if (out.empty()) return 0;
  epoll_event evs[64];
  const int cap = static_cast<int>(
      out.size() < std::size(evs) ? out.size() : std::size(evs));
  int n;
  do {
    n = ::epoll_wait(epfd_, evs, cap, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw_errno("epoll_wait");
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] =
        Event{evs[i].data.u64, evs[i].events};
  }
  return static_cast<std::size_t>(n);
}

// -------------------------------------------------------------- WakeupFd

WakeupFd::WakeupFd() : fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (fd_ < 0) throw_errno("eventfd");
}

WakeupFd::~WakeupFd() {
  if (fd_ >= 0) ::close(fd_);
}

void WakeupFd::signal() noexcept {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const auto n = ::write(fd_, &one, sizeof one);
}

void WakeupFd::drain() noexcept {
  std::uint64_t value = 0;
  [[maybe_unused]] const auto n = ::read(fd_, &value, sizeof value);
}

// ----------------------------------------------------------- TcpListener

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind(127.0.0.1)");
  }
  // A 10k-connection sweep can dump thousands of SYNs into the backlog
  // faster than one accept loop drains them; 128 drops the excess.
  if (::listen(fd_, 1024) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  set_nonblocking(fd_);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

int TcpListener::accept_conn() {
  const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return -1;  // EAGAIN or a transient accept failure: retry later
  set_nonblocking(fd);
  set_nodelay(fd);
  return fd;
}

// --------------------------------------------------------------- TcpConn

void set_send_buffer(int fd, int bytes) noexcept {
  if (bytes > 0) {
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes);
  }
}

TcpConn TcpConn::connect_loopback(std::uint16_t port, bool nonblocking,
                                  int recv_buffer) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  if (recv_buffer > 0) {
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &recv_buffer,
                       sizeof recv_buffer);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(127.0.0.1)");
  }
  set_nodelay(fd);
  if (nonblocking) set_nonblocking(fd);
  return TcpConn(fd);
}

void TcpConn::shutdown_both() noexcept {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void TcpConn::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpConn::IoResult TcpConn::read_some(std::span<std::byte> buf) noexcept {
  ssize_t n;
  do {
    n = ::read(fd_, buf.data(), buf.size());
  } while (n < 0 && errno == EINTR);
  if (n > 0) return {Io::kProgress, static_cast<std::size_t>(n)};
  if (n == 0) return {Io::kClosed, 0};
  if (errno == EAGAIN || errno == EWOULDBLOCK) return {Io::kWouldBlock, 0};
  return {Io::kClosed, 0};
}

TcpConn::IoResult TcpConn::write_gather(
    std::span<const std::span<const std::byte>> chunks) noexcept {
  iovec iov[kMaxIov];
  const std::size_t niov = chunks.size() < kMaxIov ? chunks.size() : kMaxIov;
  if (niov == 0) return {Io::kProgress, 0};
  for (std::size_t i = 0; i < niov; ++i) {
    iov[i].iov_base = const_cast<std::byte*>(chunks[i].data());
    iov[i].iov_len = chunks[i].size();
  }
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = niov;
  ssize_t n;
  do {
    // sendmsg + MSG_NOSIGNAL instead of writev: racing a peer close must
    // come back as EPIPE (-> kClosed, contained per connection), not a
    // process-killing SIGPIPE.
    n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
  } while (n < 0 && errno == EINTR);
  if (n >= 0) return {Io::kProgress, static_cast<std::size_t>(n)};
  if (errno == EAGAIN || errno == EWOULDBLOCK) return {Io::kWouldBlock, 0};
  return {Io::kClosed, 0};
}

}  // namespace ribltx::net
