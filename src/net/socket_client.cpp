#include "net/socket_client.hpp"

#include <poll.h>

#include <chrono>
#include <cmath>

namespace ribltx::net {

namespace {

/// Waits for readability with a millisecond deadline; EINTR retries.
[[nodiscard]] bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  return rc > 0;
}

}  // namespace

SocketClient::SocketClient(std::uint16_t port, std::size_t max_frame,
                           int recv_buffer)
    : conn_(TcpConn::connect_loopback(port, /*nonblocking=*/false,
                                      recv_buffer)),
      conduit_(max_frame) {}

void SocketClient::send_frame(std::vector<std::byte> frame) {
  conduit_.send(std::move(frame));
  while (conduit_.has_output()) {
    std::span<const std::byte> chunks[TcpConn::kMaxIov];
    const std::size_t n = conduit_.gather(chunks);
    const TcpConn::IoResult r = conn_.write_gather(
        std::span<const std::span<const std::byte>>(chunks, n));
    if (r.status == TcpConn::Io::kClosed) {
      conn_.close();
      throw sync::ProtocolError("SocketClient: connection closed on send");
    }
    conduit_.consume(r.bytes);  // blocking fd: kProgress or kClosed only
  }
}

std::optional<std::vector<std::byte>> SocketClient::recv_frame(
    double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    if (auto frame = conduit_.next_frame()) return frame;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return std::nullopt;
    if (!wait_readable(conn_.fd(), static_cast<int>(left.count()))) {
      return std::nullopt;
    }
    std::byte buf[64 * 1024];
    const TcpConn::IoResult r = conn_.read_some(buf);
    if (r.status == TcpConn::Io::kClosed) {
      conn_.close();
      throw sync::ProtocolError("SocketClient: connection closed by server");
    }
    if (r.status == TcpConn::Io::kProgress) {
      conduit_.feed(std::span<const std::byte>(buf, r.bytes));
    }
  }
}

}  // namespace ribltx::net
