// Nonblocking loopback TCP primitives for the async transport subsystem:
// an epoll wrapper (Poller), a cross-thread wakeup fd, a listener bound to
// 127.0.0.1, and a connection wrapper with scatter (writev) output.
//
// These are deliberately thin: ownership, routing, and backpressure policy
// live in net::SocketServer / net::SocketClient; this file only hides the
// syscall boilerplate and normalizes errno handling (EAGAIN/EINTR are flow
// control, everything else surfaces as std::system_error or a closed-
// connection result). Linux-only, like the epoll API it wraps.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <utility>

namespace ribltx::net {

/// epoll_wait readiness bits, re-exported so headers need not pull in
/// <sys/epoll.h>.
inline constexpr std::uint32_t kPollIn = 0x001;   // EPOLLIN
inline constexpr std::uint32_t kPollOut = 0x004;  // EPOLLOUT

/// RAII epoll instance. Registered fds carry a caller-chosen 64-bit key
/// that wait() hands back with the readiness bits.
class Poller {
 public:
  struct Event {
    std::uint64_t key = 0;
    std::uint32_t events = 0;  ///< kPollIn/kPollOut plus error/hup bits
    [[nodiscard]] bool readable() const noexcept {
      return (events & kPollIn) != 0;
    }
    [[nodiscard]] bool writable() const noexcept {
      return (events & kPollOut) != 0;
    }
    /// EPOLLERR/EPOLLHUP: the fd is dead regardless of the other bits.
    [[nodiscard]] bool broken() const noexcept {
      return (events & ~(kPollIn | kPollOut)) != 0;
    }
  };

  Poller();
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  void add(int fd, std::uint32_t events, std::uint64_t key);
  void modify(int fd, std::uint32_t events, std::uint64_t key);
  void remove(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever) and fills `out` with ready
  /// events. Returns the event count (0 on timeout). EINTR retries.
  [[nodiscard]] std::size_t wait(std::span<Event> out, int timeout_ms);

 private:
  int epfd_ = -1;
};

/// eventfd-based cross-thread wakeup: any thread may signal(); the poll
/// thread registers fd() for kPollIn and drain()s on readiness.
class WakeupFd {
 public:
  WakeupFd();
  ~WakeupFd();
  WakeupFd(const WakeupFd&) = delete;
  WakeupFd& operator=(const WakeupFd&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  void signal() noexcept;
  void drain() noexcept;

 private:
  int fd_ = -1;
};

/// Nonblocking listener on 127.0.0.1 (port 0 = ephemeral; port() reports
/// the bound one).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accepts one pending connection as a nonblocking, TCP_NODELAY fd;
  /// returns -1 when the backlog is drained.
  [[nodiscard]] int accept_conn();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// One TCP connection (adopted fd). Data-path results are flow-control
/// values, not exceptions: the peer closing mid-stream is an expected
/// outcome the caller handles per connection.
class TcpConn {
 public:
  enum class Io : std::uint8_t {
    kProgress,    ///< bytes moved (see the size result)
    kWouldBlock,  ///< try again on the next readiness event
    kClosed,      ///< peer closed or hard error: drop the connection
  };

  struct IoResult {
    Io status = Io::kWouldBlock;
    std::size_t bytes = 0;
  };

  explicit TcpConn(int fd) noexcept : fd_(fd) {}
  ~TcpConn() { close(); }
  TcpConn(TcpConn&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  TcpConn& operator=(TcpConn&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  /// Connects to 127.0.0.1:`port`. Blocking connect (loopback: immediate),
  /// then the fd is switched to `nonblocking` and TCP_NODELAY.
  /// `recv_buffer` != 0 caps SO_RCVBUF (set before connecting so the
  /// advertised window honors it) -- a small receive buffer is how a peer
  /// bounds how far a rateless server can stream ahead of its decode.
  [[nodiscard]] static TcpConn connect_loopback(std::uint16_t port,
                                                bool nonblocking,
                                                int recv_buffer = 0);

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool open() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// shutdown(SHUT_RDWR) without closing the fd. The io_uring close path
  /// needs this split: in-flight SQEs hold a reference to the file, so
  /// close() alone neither cancels them nor tears the socket down --
  /// shutdown forces pending recv/send completions to error out first.
  void shutdown_both() noexcept;

  [[nodiscard]] IoResult read_some(std::span<std::byte> buf) noexcept;

  /// writev over the scatter list (at most kMaxIov spans used per call).
  [[nodiscard]] IoResult write_gather(
      std::span<const std::span<const std::byte>> chunks) noexcept;

  static constexpr std::size_t kMaxIov = 16;

 private:
  int fd_ = -1;
};

/// Caps a socket's kernel send buffer (SO_SNDBUF). Together with the
/// conduit watermark this bounds the total bytes a serving session can run
/// ahead of its peer: overshoot = watermark + SO_SNDBUF + peer SO_RCVBUF.
void set_send_buffer(int fd, int bytes) noexcept;

}  // namespace ribltx::net
