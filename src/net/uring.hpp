// Thin io_uring wrapper for the C10K->C1M serving path (no liburing
// dependency: raw io_uring_setup/enter/register syscalls + mmap'd rings).
//
// Two-level availability gating:
//
//   build time:  CMake probes <linux/io_uring.h> and defines
//                RIBLT_HAS_IO_URING when present and RIBLT_ENABLE_URING is
//                ON. Without it this header only declares the probe
//                functions (always "unavailable") and UringServer aliases
//                the epoll SocketServer, so every caller compiles and runs
//                on the fallback path unchanged.
//
//   run time:    uring_available() creates and destroys a tiny ring once
//                (cached): io_uring_setup failing with ENOSYS (old kernel)
//                or EPERM (seccomp, e.g. default Docker profiles) means
//                the epoll path is the best available server. The
//                RIBLT_NO_URING environment variable forces "unavailable"
//                for fallback testing without a rebuild.
//
// The wrapper is deliberately small: SQE acquisition with auto-flush, CQE
// reaping, a provided-buffer ring (IORING_REGISTER_PBUF_RING) for
// multishot recv, and static prep helpers for exactly the ops the server
// uses. Ring state is single-threaded (the serving loop owns it); cross-
// thread wakeups go through a separate mutex-guarded sender ring
// (IORING_OP_MSG_RING) or an eventfd, never through this ring's SQ.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#if defined(RIBLT_HAS_IO_URING)
#include <linux/io_uring.h>
#include <linux/time_types.h>
struct msghdr;  // <sys/socket.h>; only referenced by pointer here
#endif

namespace ribltx::net {

/// Per-process io_uring capability summary (see uring_caps()).
struct UringCaps {
  bool available = false;        ///< setup + required opcodes all present
  bool msg_ring = false;         ///< IORING_OP_MSG_RING (eventfd-free wakeup)
  bool cancel_any = false;       ///< IORING_ASYNC_CANCEL_ANY teardown
  const char* reason = "";       ///< why unavailable (empty when available)
};

/// Cached runtime probe: can this process create and drive an io_uring?
/// False on old kernels (ENOSYS), seccomp denials (EPERM), missing
/// required opcodes, builds without <linux/io_uring.h>, and when the
/// RIBLT_NO_URING environment variable is set (forced-fallback testing).
[[nodiscard]] bool uring_available() noexcept;

/// The full capability record behind uring_available().
[[nodiscard]] const UringCaps& uring_caps() noexcept;

#if defined(RIBLT_HAS_IO_URING)

/// RAII io_uring instance: SQ/CQ ring mmaps, SQE acquisition, submission,
/// CQE reaping, and an optional provided-buffer ring. Single-owner: all
/// SQ-side calls must come from one thread (MSG_RING CQEs may be posted
/// into the CQ by other rings; that is kernel-side and safe).
class Uring {
 public:
  struct Cqe {
    std::uint64_t user_data = 0;
    std::int32_t res = 0;
    std::uint32_t flags = 0;
    [[nodiscard]] bool more() const noexcept {
      return (flags & IORING_CQE_F_MORE) != 0;
    }
    [[nodiscard]] bool has_buffer() const noexcept {
      return (flags & IORING_CQE_F_BUFFER) != 0;
    }
    [[nodiscard]] std::uint16_t buffer_id() const noexcept {
      return static_cast<std::uint16_t>(flags >> IORING_CQE_BUFFER_SHIFT);
    }
  };

  /// Creates the ring (throws std::system_error when the kernel refuses;
  /// callers should gate on uring_available()). `cq_entries` 0 = kernel
  /// default (2x SQ); the server passes a deep CQ because multishot ops
  /// complete many times per SQE.
  explicit Uring(unsigned sq_entries, unsigned cq_entries = 0);
  ~Uring();
  Uring(const Uring&) = delete;
  Uring& operator=(const Uring&) = delete;

  [[nodiscard]] int ring_fd() const noexcept { return fd_; }

  /// Next free SQE, zero-initialized. Auto-flushes (submit()) when the SQ
  /// is full, so it never returns null.
  [[nodiscard]] io_uring_sqe* get_sqe();

  /// Publishes pending SQEs to the kernel. Returns the count submitted.
  unsigned submit();

  /// submit() + block until at least `min_complete` CQEs are available
  /// (or the in-flight TIMEOUT op fires -- the server keeps one armed, so
  /// this never hangs past its tick). Returns SQEs submitted.
  unsigned submit_and_wait(unsigned min_complete);

  /// Drains available CQEs into `out`; returns the count.
  [[nodiscard]] std::size_t reap(std::span<Cqe> out) noexcept;

  // ------------------------------------------------- provided-buffer ring

  /// Registers a provided-buffer ring (group `bgid`, `entries` buffers of
  /// `buf_size` bytes, entries must be a power of two). False when the
  /// kernel lacks IORING_REGISTER_PBUF_RING -- callers fall back to
  /// per-connection single-shot recv.
  [[nodiscard]] bool setup_buf_ring(std::uint16_t bgid, unsigned entries,
                                    std::size_t buf_size);

  [[nodiscard]] bool has_buf_ring() const noexcept { return br_ != nullptr; }

  /// The payload bytes of provided buffer `bid` (valid ids only).
  [[nodiscard]] std::span<std::byte> buffer(std::uint16_t bid) noexcept;

  /// Returns buffer `bid` to the kernel's ring for reuse.
  void recycle_buffer(std::uint16_t bid) noexcept;

  // ------------------------------------------------------- prep helpers

  static void prep_accept(io_uring_sqe& s, int listen_fd, bool multishot,
                          std::uint64_t user_data) noexcept;
  /// Multishot recv via the provided-buffer ring (buffer group `bgid`).
  static void prep_recv_multishot(io_uring_sqe& s, int fd, std::uint16_t bgid,
                                  std::uint64_t user_data) noexcept;
  /// Single-shot recv into caller-owned memory (stable until completion).
  static void prep_recv(io_uring_sqe& s, int fd, void* buf, std::size_t len,
                        std::uint64_t user_data) noexcept;
  /// sendmsg (MSG_NOSIGNAL); `msg` and its iovecs must stay stable until
  /// the completion arrives.
  static void prep_sendmsg(io_uring_sqe& s, int fd, const msghdr* msg,
                           std::uint64_t user_data) noexcept;
  static void prep_read(io_uring_sqe& s, int fd, void* buf, std::size_t len,
                        std::uint64_t user_data) noexcept;
  /// Relative timeout; `ts` must stay stable until completion.
  static void prep_timeout(io_uring_sqe& s, __kernel_timespec* ts,
                           std::uint64_t user_data) noexcept;
  /// Posts a CQE with `target_user_data` onto `target_ring_fd`'s CQ.
  static void prep_msg_ring(io_uring_sqe& s, int target_ring_fd,
                            std::uint64_t target_user_data,
                            std::uint64_t user_data) noexcept;
  /// Cancels every in-flight op on this ring (IORING_ASYNC_CANCEL_ANY).
  static void prep_cancel_all(io_uring_sqe& s,
                              std::uint64_t user_data) noexcept;

  // ------------------------------------------------------- accounting

  /// io_uring_enter syscalls made (the uring side of syscalls/session).
  [[nodiscard]] std::uint64_t enter_calls() const noexcept;
  /// SQEs handed to the kernel (submission batching numerator).
  [[nodiscard]] std::uint64_t sqes_submitted() const noexcept;

 private:
  void flush_tail() noexcept;
  int enter(unsigned to_submit, unsigned min_complete, unsigned flags);

  int fd_ = -1;
  // SQ ring.
  void* sq_mmap_ = nullptr;
  std::size_t sq_mmap_len_ = 0;
  void* sqe_mmap_ = nullptr;
  std::size_t sqe_mmap_len_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned local_tail_ = 0;      ///< app-side tail (published on submit)
  unsigned submitted_ = 0;       ///< SQEs the kernel has consumed
  // CQ ring.
  void* cq_mmap_ = nullptr;      ///< == sq_mmap_ under FEAT_SINGLE_MMAP
  std::size_t cq_mmap_len_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  // Provided-buffer ring.
  io_uring_buf_ring* br_ = nullptr;
  std::size_t br_mmap_len_ = 0;
  unsigned br_entries_ = 0;
  std::uint16_t br_tail_ = 0;
  std::size_t br_buf_size_ = 0;
  std::vector<std::byte> br_data_;

  // Relaxed: the owning thread increments, stats() readers only need a
  // recent value.
  std::atomic<std::uint64_t> enters_{0};
  std::atomic<std::uint64_t> sqe_count_{0};
};

#endif  // RIBLT_HAS_IO_URING

}  // namespace ribltx::net
