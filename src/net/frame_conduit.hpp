// FrameConduit: the transport-agnostic seam between the v2 frame protocol
// and any byte stream (TCP, a simulated link, a pipe).
//
// The sync layer (sync/engine.hpp, sync/sharded.hpp) speaks in whole frames;
// byte-stream transports deliver arbitrary fragments and accept arbitrary
// partial writes. The conduit bridges the two directions independently:
//
//   inbound:  feed(bytes) reassembles `uvarint length | frame` records
//             across any fragmentation (a single byte at a time decodes
//             identically to whole-record delivery) and hands out complete
//             frames. A length claim above the frame-size bound throws
//             ProtocolError BEFORE any allocation -- a hostile 2^40-byte
//             header cannot take the process down -- and poisons the
//             conduit (a byte stream is unrecoverable once framing desyncs;
//             the transport must close the connection).
//
//   outbound: send(frame) enqueues the length prefix and the frame body as
//             a scatter list without copying the frame into a contiguous
//             staging buffer. Transports drain it writev-style via
//             gather()/consume(); pending_bytes() is the send-buffer
//             fullness that SocketServer maps the shard workers' blocking
//             sink backpressure onto.
//
// Buffer reuse: buffers retired by consume() (transmitted prefixes and
// frame bodies) park in a small bounded pool and are handed back out for
// future length prefixes and reassembled inbound frames, so the per-frame
// emit hot path stops paying a heap alloc/free pair per frame (measured in
// bench/micro_core.cpp BM_FrameConduitEmit, pooled vs heap). The pool is
// capped in count and per-buffer capacity so a burst of maximum-size
// frames cannot pin megabytes.
#pragma once

#include <cstdint>
#include <cstddef>
#include <deque>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/varint.hpp"
#include "sync/error.hpp"

namespace ribltx::net {

class FrameConduit {
 public:
  /// Frames above this are a protocol violation on both paths. SYMBOLS
  /// payloads are budget-bounded (~KBs); 16 MiB leaves two orders of
  /// magnitude of headroom while keeping a hostile length claim harmless.
  static constexpr std::size_t kDefaultMaxFrame = 16u << 20;

  /// `pool_buffers` false disables retired-buffer reuse (the heap baseline
  /// the micro benchmark compares against).
  explicit FrameConduit(std::size_t max_frame = kDefaultMaxFrame,
                        bool pool_buffers = true)
      : max_frame_(max_frame), pool_buffers_(pool_buffers) {}

  [[nodiscard]] std::size_t max_frame() const noexcept { return max_frame_; }

  // ------------------------------------------------------------- inbound

  /// Appends received bytes to the reassembly buffer and extracts every
  /// complete frame into the inbox. Throws ProtocolError on a length claim
  /// above max_frame() (before allocating) and on any use after poisoning.
  void feed(std::span<const std::byte> bytes) {
    if (poisoned_) {
      throw sync::ProtocolError("FrameConduit: stream already poisoned");
    }
    in_.insert(in_.end(), bytes.begin(), bytes.end());
    for (;;) {
      std::size_t pos = in_pos_;
      std::uint64_t len = 0;
      if (!try_uvarint(pos, len)) break;  // incomplete prefix: wait
      if (len > max_frame_) {
        poisoned_ = true;
        throw sync::ProtocolError("FrameConduit: frame length exceeds bound");
      }
      if (in_.size() - pos < len) break;  // incomplete body: wait
      std::vector<std::byte> frame = take_pooled();
      frame.assign(in_.begin() + static_cast<std::ptrdiff_t>(pos),
                   in_.begin() + static_cast<std::ptrdiff_t>(pos + len));
      inbox_.push_back(std::move(frame));
      in_pos_ = pos + static_cast<std::size_t>(len);
      compact();
    }
  }

  /// Next fully reassembled frame, oldest first; nullopt when none pending.
  [[nodiscard]] std::optional<std::vector<std::byte>> next_frame() {
    if (inbox_.empty()) return std::nullopt;
    std::vector<std::byte> out = std::move(inbox_.front());
    inbox_.pop_front();
    return out;
  }

  [[nodiscard]] std::size_t frames_pending() const noexcept {
    return inbox_.size();
  }

  /// Bytes buffered that do not yet form a complete frame.
  [[nodiscard]] std::size_t reassembly_bytes() const noexcept {
    return in_.size() - in_pos_;
  }

  /// True once a framing violation made the stream unrecoverable.
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

  // ------------------------------------------------------------ outbound

  /// Enqueues one frame (prefix + body) on the scatter output queue. The
  /// frame buffer is kept, not copied. Oversized frames are a caller bug on
  /// this side: ProtocolError, nothing queued.
  void send(std::vector<std::byte> frame) {
    if (frame.size() > max_frame_) {
      throw sync::ProtocolError("FrameConduit: refusing to send oversized frame");
    }
    std::vector<std::byte> prefix = take_pooled();
    put_uvarint(prefix, frame.size());
    pending_out_ += prefix.size() + frame.size();
    out_.push_back(std::move(prefix));
    out_.push_back(std::move(frame));
  }

  /// Bytes queued for transmission (the send-buffer fullness signal).
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return pending_out_;
  }

  [[nodiscard]] bool has_output() const noexcept { return pending_out_ != 0; }

  /// Fills `out` with up to out.size() spans of queued bytes, writev-style
  /// (the first span starts at the current drain offset). Returns the span
  /// count. The spans stay valid until the next send()/consume().
  [[nodiscard]] std::size_t gather(
      std::span<std::span<const std::byte>> out) const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < out_.size() && n < out.size(); ++i) {
      std::span<const std::byte> chunk = out_[i];
      if (i == 0) chunk = chunk.subspan(out_offset_);
      if (chunk.empty()) continue;
      out[n++] = chunk;
    }
    return n;
  }

  /// Marks `n` queued bytes as transmitted (a short writev consumes a
  /// prefix; buffers are released as they complete).
  void consume(std::size_t n) {
    if (n > pending_out_) {
      throw std::logic_error("FrameConduit: consuming more than pending");
    }
    pending_out_ -= n;
    while (n != 0) {
      const std::size_t left = out_.front().size() - out_offset_;
      if (n < left) {
        out_offset_ += n;
        return;
      }
      n -= left;
      recycle(std::move(out_.front()));
      out_.pop_front();
      out_offset_ = 0;
    }
  }

 private:
  static constexpr std::size_t kPoolMaxBuffers = 32;
  /// Buffers above this capacity are released, not pooled: one hostile-
  /// large (but legal) frame must not pin max_frame-sized capacity.
  static constexpr std::size_t kPoolMaxCapacity = 256u << 10;

  /// A cleared buffer from the pool, or a fresh one when the pool is dry.
  [[nodiscard]] std::vector<std::byte> take_pooled() {
    if (pool_.empty()) return {};
    std::vector<std::byte> out = std::move(pool_.back());
    pool_.pop_back();
    out.clear();
    return out;
  }

  /// Parks a retired buffer for reuse (bounded count and capacity).
  void recycle(std::vector<std::byte>&& buf) {
    if (pool_buffers_ && pool_.size() < kPoolMaxBuffers &&
        buf.capacity() != 0 && buf.capacity() <= kPoolMaxCapacity) {
      pool_.push_back(std::move(buf));
    }
  }

  /// Decodes a uvarint at `pos` without consuming; false when the buffer
  /// ends mid-varint. Mirrors common/varint.hpp's bounds (a >10-byte prefix
  /// means a length that cannot fit max_frame_ anyway).
  [[nodiscard]] bool try_uvarint(std::size_t& pos, std::uint64_t& value) {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (pos >= in_.size()) return false;
      const auto b = static_cast<std::uint8_t>(in_[pos++]);
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        value = v;
        return true;
      }
    }
    poisoned_ = true;
    throw sync::ProtocolError("FrameConduit: malformed length prefix");
  }

  /// Reclaims consumed reassembly bytes once they dominate the buffer.
  void compact() {
    if (in_pos_ > 4096 && in_pos_ * 2 >= in_.size()) {
      in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(in_pos_));
      in_pos_ = 0;
    }
  }

  std::size_t max_frame_;
  std::vector<std::byte> in_;  ///< reassembly buffer
  std::size_t in_pos_ = 0;     ///< consumed prefix of in_
  std::deque<std::vector<std::byte>> inbox_;
  std::deque<std::vector<std::byte>> out_;  ///< scatter list: prefix, body, ...
  std::size_t out_offset_ = 0;  ///< drain offset into out_.front()
  std::size_t pending_out_ = 0;
  bool poisoned_ = false;
  bool pool_buffers_;
  std::vector<std::vector<std::byte>> pool_;  ///< retired buffers for reuse
};

}  // namespace ribltx::net
