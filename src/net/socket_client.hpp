// SocketClient: the peer end of the loopback transport -- a blocking TCP
// connection wrapping a FrameConduit, plus drivers that run a SyncClient or
// ShardedClient session dialogue over it to completion.
//
// The client side is deliberately simple (blocking fd, poll()-enforced
// deadline): all the async machinery lives on the serving side, which is
// where the paper's many-peers scaling question is. One SocketClient may
// run many sessions back to back over one connection (the bench does), and
// a ShardedClient's K sub-sessions multiplex over the single connection
// exactly like they multiplex over the in-memory router.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/frame_conduit.hpp"
#include "net/tcp.hpp"
#include "sync/sharded.hpp"

namespace ribltx::net {

class SocketClient {
 public:
  /// Connects to 127.0.0.1:`port` (blocking fd). `recv_buffer` != 0 caps
  /// SO_RCVBUF before connecting: a small receive window is the client's
  /// half of bounding how far a rateless server streams past the DONE.
  explicit SocketClient(std::uint16_t port,
                        std::size_t max_frame = FrameConduit::kDefaultMaxFrame,
                        int recv_buffer = 64 << 10);

  /// Queues and fully flushes one frame (blocking).
  void send_frame(std::vector<std::byte> frame);

  /// Next inbound frame, waiting up to `timeout_s`. nullopt on timeout;
  /// throws ProtocolError when the server closes the stream or poisons
  /// framing.
  [[nodiscard]] std::optional<std::vector<std::byte>> recv_frame(
      double timeout_s);

  [[nodiscard]] bool open() const noexcept { return conn_.open(); }
  void close() noexcept { conn_.close(); }

 private:
  TcpConn conn_;
  FrameConduit conduit_;
};

/// Runs one SyncClient session over the socket to a terminal state.
/// Returns true when the session completed (client.complete()); false on
/// failure or deadline. The server must host a ShardedEngine, so an
/// unsharded client should set_shard(0, 1) against a 1-shard server.
/// Frames for other sessions -- the rateless tail of an earlier session on
/// this connection still in flight when its DONE crossed the stream -- are
/// dropped, exactly as the engine drops stale post-DONE client frames.
template <Symbol T, typename Hasher>
bool run_session(SocketClient& sock, sync::SyncClient<T, Hasher>& client,
                 double timeout_s = 30.0) {
  sock.send_frame(client.hello());
  while (!client.complete() && !client.failed()) {
    auto frame = sock.recv_frame(timeout_s);
    if (!frame) return false;  // deadline
    if (sync::v2::peek_session_id(*frame) != client.session_id()) continue;
    for (auto& reply : client.handle_frame(*frame)) {
      sock.send_frame(std::move(reply));
    }
  }
  return client.complete();
}

/// Scrapes one observability verb ("METRICS", "METRICS_JSON", "TRACE")
/// from a server over an open connection: sends the ADMIN frame and
/// reassembles the chunked ADMIN_REPLY stream into the body -- the
/// curl-equivalent of hitting a Prometheus endpoint, usable from a second
/// connection while sessions load the first. `session_id` only correlates
/// request and reply (any nonzero value; no session is created). Frames
/// for other sessions interleaved on this connection are skipped. Throws
/// ProtocolError when the server answers with an in-band ERROR (unknown
/// verb / tap not configured); nullopt on deadline. `timeout_s` bounds
/// the WHOLE scrape (an absolute deadline), so steady interleaved
/// session traffic on the connection cannot stretch it unboundedly.
inline std::optional<std::string> scrape(SocketClient& sock,
                                         std::string_view verb,
                                         std::uint64_t session_id = 1,
                                         double timeout_s = 30.0) {
  sock.send_frame(sync::v2::make_admin_frame(session_id, verb));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::string body;
  for (;;) {
    const double remaining =
        std::chrono::duration<double>(deadline -
                                      std::chrono::steady_clock::now())
            .count();
    if (remaining <= 0) return std::nullopt;  // deadline
    auto raw = sock.recv_frame(remaining);
    if (!raw) return std::nullopt;  // deadline
    if (sync::v2::peek_session_id(*raw) != session_id) continue;
    const sync::v2::Frame frame = sync::v2::parse_frame(*raw);
    if (frame.type == sync::v2::FrameType::kError) {
      throw sync::ProtocolError(sync::v2::error_text(frame));
    }
    if (frame.type != sync::v2::FrameType::kAdminReply) continue;
    body.append(sync::v2::error_text(frame));  // payload bytes as text
    if (frame.value != 0) return body;         // final chunk
  }
}

/// Runs a ShardedClient's K sub-sessions (multiplexed over the one
/// connection) to a terminal state. True when every sub-session completed.
/// Stale frames from other sessions on the connection are dropped (see the
/// SyncClient overload).
template <Symbol T, typename Hasher>
bool run_session(SocketClient& sock, sync::ShardedClient<T, Hasher>& client,
                 double timeout_s = 30.0) {
  for (auto& hello : client.hellos()) sock.send_frame(std::move(hello));
  while (!client.terminal()) {
    auto frame = sock.recv_frame(timeout_s);
    if (!frame) return false;  // deadline
    if (!client.owns(sync::v2::peek_session_id(*frame))) continue;
    for (auto& reply : client.handle_frame(*frame)) {
      sock.send_frame(std::move(reply));
    }
  }
  return client.complete();
}

}  // namespace ribltx::net
