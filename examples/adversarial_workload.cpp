// Adversarial workloads and keyed hashing (paper §4.3).
//
// In open systems users control set contents. If the checksum hash is
// PREDICTABLE, an attacker can insert an item into Bob's set whose hash
// collides with an item of Alice's: the pair cancels in every checksum but
// corrupts the sums, so reconciliation never completes (a denial of
// service). A keyed hash (SipHash under a key the attacker does not know)
// removes the attacker's ability to aim collisions.
//
//   ./build/examples/adversarial_workload
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/riblt.hpp"

namespace {

using namespace ribltx;
using Item = ByteSymbol<32>;

/// A predictable "hash": the item's first 8 bytes. Stands in for any
/// unkeyed function an attacker can evaluate offline (finding a 64-bit
/// SipHash collision without the key costs ~2^32 work; against *this* hash
/// it is trivial, which keeps the demo instant).
struct PredictableHasher {
  std::uint64_t operator()(const Item& s) const noexcept {
    std::uint64_t v;
    std::memcpy(&v, s.data.data(), 8);
    return v;
  }
  HashedSymbol<Item> hashed(const Item& s) const noexcept {
    return {s, (*this)(s)};
  }
};

/// Runs reconciliation; returns true if Bob decodes within the budget.
template <typename Hasher>
bool reconcile(const std::vector<Item>& a, const std::vector<Item>& b,
               Hasher hasher, std::size_t budget) {
  Encoder<Item, Hasher> alice(hasher);
  for (const auto& x : a) alice.add_symbol(x);
  Decoder<Item, Hasher> bob(hasher);
  for (const auto& y : b) bob.add_local_symbol(y);
  std::size_t used = 0;
  while (!bob.decoded() && used < budget) {
    bob.add_coded_symbol(alice.produce_next());
    ++used;
  }
  return bob.decoded();
}

}  // namespace

int main() {
  SplitMix64 rng(99);
  std::vector<Item> alice_set, bob_set;
  for (int i = 0; i < 1'000; ++i) {
    const Item shared = Item::random(rng.next());
    alice_set.push_back(shared);
    bob_set.push_back(shared);
  }
  const Item victim = Item::random(rng.next());
  alice_set.push_back(victim);  // an honest item only Alice has

  // The attacker (a user of Bob's service) crafts a DIFFERENT item whose
  // predictable hash collides with the victim's, and injects it into Bob's
  // set.
  Item evil = Item::random(rng.next());
  std::memcpy(evil.data.data(), victim.data.data(), 8);  // same first 8 B
  bob_set.push_back(evil);

  const std::size_t budget = 50'000;  // ~25,000x the difference size

  const bool unkeyed_ok =
      reconcile(alice_set, bob_set, PredictableHasher{}, budget);
  std::printf("predictable hash + targeted collision: %s\n",
              unkeyed_ok ? "decoded (unexpected!)"
                         : "STUCK -- never decodes, as §4.3 warns");

  // Same sets, keyed SipHash with a key the attacker couldn't know.
  const SipHasher<Item> keyed(SipKey{0x1122334455667788ULL, 0x99aabbccddeeff00ULL});
  const bool keyed_ok = reconcile(alice_set, bob_set, keyed, budget);
  std::printf("keyed SipHash, secret key:              %s\n",
              keyed_ok ? "decodes fine -- collision no longer aimed"
                       : "stuck (unexpected!)");

  return (!unkeyed_ok && keyed_ok) ? 0 : 1;
}
