// Quickstart: reconcile two sets with the streaming Rateless IBLT API.
//
// Alice and Bob each hold ~10,000 32-byte items, differing in a few dozen.
// Neither side knows the difference size in advance -- Alice just streams
// coded symbols until Bob says stop. Build & run:
//
//   cmake -B build -S . && cmake --build build -j
//   ./build/example_quickstart
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/riblt.hpp"

int main() {
  using namespace ribltx;
  using Item = ByteSymbol<32>;

  // Build two overlapping sets: 10,000 shared items, 23 only Alice has,
  // 14 only Bob has.
  std::vector<Item> alice_set, bob_set;
  SplitMix64 rng(2024);
  for (int i = 0; i < 10'000; ++i) {
    const Item shared = Item::random(rng.next());
    alice_set.push_back(shared);
    bob_set.push_back(shared);
  }
  for (int i = 0; i < 23; ++i) alice_set.push_back(Item::random(rng.next()));
  for (int i = 0; i < 14; ++i) bob_set.push_back(Item::random(rng.next()));

  // Alice's side: an encoder over her set. No parameters: the encoder does
  // not need to know how different Bob's set is.
  Encoder<Item> alice;
  for (const Item& x : alice_set) alice.add_symbol(x);

  // Bob's side: a decoder primed with his own set.
  Decoder<Item> bob;
  for (const Item& y : bob_set) bob.add_local_symbol(y);

  // The protocol: Alice streams coded symbols; Bob peels incrementally and
  // stops as soon as the difference is fully recovered.
  std::size_t symbols = 0;
  while (!bob.decoded()) {
    bob.add_coded_symbol(alice.produce_next());
    ++symbols;
  }

  const double d =
      static_cast<double>(bob.remote().size() + bob.local().size());
  std::printf("reconciled %zu + %zu sets\n", alice_set.size(), bob_set.size());
  std::printf("difference: %zu items Alice-only, %zu items Bob-only\n",
              bob.remote().size(), bob.local().size());
  std::printf("coded symbols used: %zu (overhead %.2fx the difference)\n",
              symbols, static_cast<double>(symbols) / d);
  std::printf("bytes on the wire: ~%zu vs %zu for sending Alice's whole set\n",
              symbols * (32 + 8 + 1), alice_set.size() * 32);

  // Sanity: recovered symbols are real set items.
  if (bob.remote().size() != 23 || bob.local().size() != 14) {
    std::printf("UNEXPECTED recovery counts!\n");
    return 1;
  }
  std::printf("ok\n");
  return 0;
}
