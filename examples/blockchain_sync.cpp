// Blockchain state synchronization (the paper's §7.3 scenario, scaled to a
// laptop): a stale replica catches up to the latest ledger state over a
// 50 ms / 20 Mbps link, comparing Rateless IBLT streaming against Merkle
// "state heal".
//
//   ./build/examples/blockchain_sync
#include <cstdio>

#include "ledger/ledger.hpp"
#include "merkle/heal.hpp"
#include "sync/session.hpp"

int main() {
  using namespace ribltx;

  // A 50,000-account ledger; Bob went offline 2 hours (600 blocks) ago.
  ledger::LedgerParams params;
  params.base_accounts = 50'000;
  params.modifies_per_block = 3;
  params.creates_per_block = 1;
  const std::uint64_t latest = 1'000, stale = 400;

  std::printf("materializing ledger states (N=%zu)...\n",
              params.base_accounts);
  const ledger::LedgerState alice(params, latest);
  const ledger::LedgerState bob(params, stale);
  const std::size_t d =
      ledger::symmetric_difference_size(params, stale, latest);
  std::printf("Bob is %llu blocks (%.0f min) stale; |A (-) B| = %zu of %zu "
              "accounts\n\n",
              static_cast<unsigned long long>(latest - stale),
              static_cast<double>(latest - stale) * params.seconds_per_block /
                  60.0,
              d, alice.account_count());

  // --- Rateless IBLT: plan on the real sets, then replay over the link.
  const auto riblt_plan =
      sync::plan_riblt_sync(alice.as_symbols(), bob.as_symbols(), d);

  // --- Merkle state heal: diff the real tries.
  const auto heal_plan =
      merkle::plan_heal(alice.build_trie(), bob.build_trie());

  const netsim::LinkConfig link;  // 50 ms one-way, 20 Mbps
  const auto riblt = sync::run_riblt_session(riblt_plan, link);
  const auto heal = sync::run_heal_session(heal_plan, link);

  std::printf("%-22s %12s %14s\n", "", "RatelessIBLT", "MerkleStateHeal");
  std::printf("%-22s %12zu %14zu\n", "coded symbols / nodes",
              riblt_plan.coded_symbols, heal_plan.total_nodes);
  std::printf("%-22s %12.3f %14.3f\n", "data transmitted (MB)",
              static_cast<double>(riblt.bytes_down + riblt.bytes_up) / 1e6,
              static_cast<double>(heal.bytes_down + heal.bytes_up) / 1e6);
  std::printf("%-22s %12.1f %14.1f\n", "interactive rounds",
              riblt.interactive_rounds, heal.interactive_rounds);
  std::printf("%-22s %12.2f %14.2f\n", "completion time (s)",
              riblt.completion_s, heal.completion_s);
  std::printf("\nRateless IBLT: %.1fx faster, %.1fx fewer bytes\n",
              heal.completion_s / riblt.completion_s,
              static_cast<double>(heal.bytes_down + heal.bytes_up) /
                  static_cast<double>(riblt.bytes_down + riblt.bytes_up));
  return 0;
}
