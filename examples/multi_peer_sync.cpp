// Universality in action (paper §2, §4.1): Alice maintains ONE cached
// coded-symbol sequence and serves peers of wildly different staleness from
// prefixes of the same stream -- no per-peer encoding, no difference-size
// estimation. When her set changes she updates the cache incrementally
// (linearity, §7.3) instead of re-encoding.
//
//   ./build/examples/multi_peer_sync
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/riblt.hpp"

int main() {
  using namespace ribltx;
  using Item = ByteSymbol<32>;

  constexpr std::size_t kSetSize = 20'000;
  constexpr std::size_t kCacheCells = 4'096;

  // Alice's canonical state and her universal coded-symbol cache.
  std::vector<Item> alice_set;
  SplitMix64 rng(7);
  for (std::size_t i = 0; i < kSetSize; ++i) {
    alice_set.push_back(Item::random(rng.next()));
  }
  SequenceCache<Item> cache(kCacheCells);
  for (const Item& x : alice_set) cache.add_symbol(x);
  std::printf("Alice cached %zu coded symbols for %zu items\n\n", kCacheCells,
              kSetSize);

  // Three peers missing 5, 60 and 700 items respectively. Each consumes a
  // prefix of the SAME cached stream.
  for (const std::size_t missing : {5u, 60u, 700u}) {
    Decoder<Item> peer;
    for (std::size_t i = missing; i < alice_set.size(); ++i) {
      peer.add_local_symbol(alice_set[i]);
    }
    std::size_t used = 0;
    while (!peer.decoded() && used < kCacheCells) {
      peer.add_coded_symbol(cache.cell(used));
      ++used;
    }
    std::printf("peer missing %4zu items: decoded from the first %5zu "
                "cached symbols (%.2fx overhead)\n",
                missing, used,
                static_cast<double>(used) / static_cast<double>(missing));
  }

  // Alice's set changes: one item replaced. Linearity lets her patch the
  // cache in O(log m) cells per item instead of re-encoding 20k items.
  const Item removed = alice_set[0];
  const Item added = Item::random(rng.next());
  cache.remove_symbol(removed);
  cache.add_symbol(added);

  // A fresh peer holding the OLD state now reconciles against the updated
  // cache and discovers exactly the one-item swap.
  Decoder<Item> peer;
  for (const Item& y : alice_set) peer.add_local_symbol(y);  // old state
  std::size_t used = 0;
  while (!peer.decoded() && used < kCacheCells) {
    peer.add_coded_symbol(cache.cell(used));
    ++used;
  }
  std::printf("\nafter incremental cache update: peer found %zu new / %zu "
              "stale item(s) in %zu symbols\n",
              peer.remote().size(), peer.local().size(), used);
  return peer.decoded() && peer.remote().size() == 1 &&
                 peer.local().size() == 1
             ? 0
             : 1;
}
