// One server, many concurrent peers, four interchangeable codecs: the
// SyncEngine (src/sync/engine.hpp) multiplexes independent reconciliation
// sessions over the v2 wire protocol, so peers of wildly different
// staleness -- each free to pick its own backend -- sync against the same
// server instance through one code path. The engine's per-session
// accounting shows the paper's §7 trade-offs live: streaming Rateless IBLT
// needs no interaction rounds, the estimator+IBLT baseline pays a flat
// estimator charge plus sizing rounds, MET-IBLT pays per extension block,
// CPI pays almost no bytes but escalating decode CPU.
//
//   ./build/examples/multi_peer_sync
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "sync/engine.hpp"

int main() {
  using namespace ribltx;
  using sync::BackendId;
  using Item = U64Symbol;  // 8-byte items so the CPI backend can play too

  constexpr std::size_t kSetSize = 20'000;

  // The server's canonical state.
  std::vector<Item> server_set;
  SplitMix64 rng(7);
  for (std::size_t i = 0; i < kSetSize; ++i) {
    server_set.push_back(Item::from_u64(rng.next() | 1));
  }
  sync::SyncEngine<Item> engine;
  for (const Item& x : server_set) engine.add_item(x);

  // Four peers, four staleness levels, four backends -- all concurrent
  // sessions on the one engine.
  struct Peer {
    const char* label;
    BackendId backend;
    std::size_t missing;  ///< server items this peer lacks
    std::size_t extra;    ///< peer items the server lacks
  };
  const Peer peers[] = {
      {"riblt", BackendId::kRiblt, 5, 2},
      {"iblt+strata", BackendId::kIbltStrata, 60, 10},
      {"cpi", BackendId::kCpi, 12, 4},
      {"met-iblt", BackendId::kMetIblt, 700, 90},
  };

  std::vector<sync::SyncClient<Item>> clients;
  clients.reserve(std::size(peers));
  for (std::size_t i = 0; i < std::size(peers); ++i) {
    clients.emplace_back(i + 1, peers[i].backend);
    for (std::size_t j = peers[i].missing; j < server_set.size(); ++j) {
      clients[i].add_item(server_set[j]);
    }
    for (std::size_t j = 0; j < peers[i].extra; ++j) {
      clients[i].add_item(Item::from_u64(rng.next() | 1));
    }
    for (const auto& response : engine.handle_frame(clients[i].hello())) {
      (void)clients[i].handle_frame(response);
    }
  }
  std::printf("engine: %zu items, %zu concurrent sessions\n\n",
              engine.item_count(), engine.session_count());

  // Round-robin pump: one frame per peer per pass, so the sessions
  // genuinely interleave on the engine.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& client : clients) {
      if (client.complete() || client.failed()) continue;
      const auto frame = engine.next_frame(client.session_id());
      if (!frame) continue;
      progress = true;
      for (const auto& reply : client.handle_frame(*frame)) {
        for (const auto& response : engine.handle_frame(reply)) {
          (void)client.handle_frame(response);
        }
      }
    }
  }

  bool all_ok = true;
  std::printf("%-12s %-9s %-8s %-12s %-8s %-8s\n", "peer", "missing",
              "extra", "bytes_down", "rounds", "status");
  for (std::size_t i = 0; i < std::size(peers); ++i) {
    const auto* stats = engine.session(i + 1);
    const bool ok = clients[i].complete() &&
                    clients[i].diff().remote.size() == peers[i].missing &&
                    clients[i].diff().local.size() == peers[i].extra;
    all_ok = all_ok && ok;
    std::printf("%-12s %-9zu %-8zu %-12llu %-8u %-8s\n", peers[i].label,
                peers[i].missing, peers[i].extra,
                static_cast<unsigned long long>(stats->bytes_to_peer),
                stats->rounds, ok ? "ok" : "FAILED");
  }
  return all_ok ? 0 : 1;
}
