// Loopback socket quickstart: a sharded reconciliation server on real TCP.
//
// One ShardedEngine behind a net::SocketServer (epoll poll thread + one
// worker per shard), three peers of different staleness connecting over
// 127.0.0.1 -- each splits its set with the shared consistent hash, opens
// one session per shard through a single connection, and recovers exactly
// the items it is missing. The §6 count-residual compression is negotiated
// on one of the peers to show the HELLO flag path.
#include <cstdio>
#include <vector>

#include "net/socket_client.hpp"
#include "net/socket_server.hpp"

int main() {
  using Item = ribltx::ByteSymbol<32>;
  using namespace ribltx;

  // The server's set: 5000 items.
  std::vector<Item> ledger;
  SplitMix64 rng(2024);
  for (int i = 0; i < 5000; ++i) ledger.push_back(Item::random(rng.next()));

  sync::ShardedEngine<Item> engine(/*shard_count=*/4);
  for (const auto& x : ledger) engine.add_item(x);

  net::SocketServer<Item> server(engine);  // binds 127.0.0.1, ephemeral port
  server.start();                          // shard workers + epoll thread
  std::printf("serving %zu items on 127.0.0.1:%u across %zu shards\n",
              engine.item_count(), server.port(), engine.shard_count());

  // Three peers, each missing a different slice of the ledger.
  const std::size_t stale[] = {3, 70, 400};
  for (int p = 0; p < 3; ++p) {
    sync::ReconcilerConfig config;
    config.count_residuals = (p == 1);  // peer 1 asks for §6 compression
    sync::ShardedClient<Item> peer(/*base_session_id=*/p + 1,
                                   engine.shard_count(),
                                   sync::BackendId::kRiblt, {}, config);
    for (std::size_t i = stale[p]; i < ledger.size(); ++i) {
      peer.add_item(ledger[i]);
    }
    net::SocketClient sock(server.port());
    if (!run_session(sock, peer, /*timeout_s=*/30.0)) {
      std::fprintf(stderr, "peer %d failed to reconcile\n", p);
      return 1;
    }
    std::printf("peer %d: recovered %zu missing items over %llu payload "
                "bytes%s\n",
                p, peer.diff().remote.size(),
                static_cast<unsigned long long>(peer.payload_bytes()),
                p == 1 ? " (count residuals)" : "");
    if (peer.diff().remote.size() != stale[p] || !peer.diff().local.empty()) {
      std::fprintf(stderr, "peer %d: wrong diff\n", p);
      return 1;
    }
  }

  server.stop();
  const net::SocketServerStats stats = server.stats();
  std::printf("server: %llu connections, %llu frames in, %llu frames out\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.frames_in),
              static_cast<unsigned long long>(stats.frames_out));
  return 0;
}
