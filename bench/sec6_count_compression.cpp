// §6 claim: with the expected-value residual coding, the count field costs
// ~1.05 bytes per coded symbol when encoding 10^6 items into 10^4 coded
// symbols (vs 8 bytes fixed in the baselines).
//
// Two measurements:
//   1. the sketch wire form (counts as residuals vs plain, same cells);
//   2. the v2 engine stream (ISSUE 5 satellite): a rateless session with
//      kFlagCountResiduals negotiated vs one without, same reconciliation
//      -- asserting the residual stream is strictly smaller (exit 1
//      otherwise), since near the origin a plain count svarint costs
//      ~ceil(log128(N)) bytes and the residual ~1.
#include <cstdio>

#include "benchutil.hpp"
#include "sync/engine.hpp"

namespace {

using namespace ribltx;

/// Bytes-to-peer of one rateless engine session at the given residual
/// setting (fresh engine per run so session streams are identical).
struct StreamCost {
  std::uint64_t bytes_to_peer = 0;
  bool complete = false;
};

StreamCost run_session(const std::vector<U64Symbol>& server_items,
                       const std::vector<U64Symbol>& client_items,
                       bool residuals) {
  // A small frame budget keeps the byte accounting per-symbol: both modes
  // pack the same symbol count per frame (ceil(budget/symbol_bytes) lands
  // on 4 for 17- and 18-byte symbols alike), so the residual coding's
  // per-count saving shows up as strictly smaller frames instead of
  // vanishing into more-symbols-per-kilobyte quantization.
  sync::EngineOptions options;
  options.frame_budget = 64;
  sync::SyncEngine<U64Symbol> engine({}, options);
  for (const auto& x : server_items) engine.add_item(x);
  sync::ReconcilerConfig config;
  config.count_residuals = residuals;
  sync::SyncClient<U64Symbol> client(1, sync::BackendId::kRiblt, {}, config);
  for (const auto& y : client_items) client.add_item(y);
  for (const auto& r : engine.handle_frame(client.hello())) {
    (void)client.handle_frame(r);
  }
  for (int i = 0; i < 1'000'000 && !client.complete(); ++i) {
    const auto frame = engine.next_frame(1);
    if (!frame) break;
    for (const auto& reply : client.handle_frame(*frame)) {
      (void)engine.handle_frame(reply);
    }
  }
  StreamCost out;
  out.complete = client.complete();
  out.bytes_to_peer = engine.session(1)->bytes_to_peer;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  bench::JsonReport report(opts, "sec6_count_compression");

  struct Case {
    std::size_t n;
    std::size_t m;
  };
  const std::vector<Case> cases =
      opts.smoke ? std::vector<Case>{{10'000, 100}}
      : opts.full
          ? std::vector<Case>{{100'000, 1'000},  {1'000'000, 10'000},
                              {1'000'000, 1'000}, {1'000'000, 100'000},
                              {10'000'000, 10'000}}
          : std::vector<Case>{{100'000, 1'000}, {1'000'000, 10'000}};

  std::printf("# Sec 6: count-field wire cost via residual varints\n");
  std::printf("# paper: 1.05 B/symbol at N=1e6, m=1e4 (8 B fixed baseline)\n");
  std::printf("%-10s %-8s %-16s %-14s\n", "N", "m", "count_B_per_sym",
              "total_sketch_B");

  for (const auto& c : cases) {
    Sketch<U64Symbol> sketch(c.m);
    SplitMix64 rng(derive_seed(opts.seed, c.n ^ c.m));
    for (std::size_t i = 0; i < c.n; ++i) {
      sketch.add_symbol(U64Symbol::random(rng.next()));
    }
    const auto with_counts = wire::serialize_sketch(sketch, c.n);
    wire::SketchWireOptions no_counts;
    no_counts.include_counts = false;
    const auto without = wire::serialize_sketch(sketch, c.n, no_counts);
    const double per_cell =
        static_cast<double>(with_counts.size() - without.size()) /
        static_cast<double>(c.m);
    std::printf("%-10zu %-8zu %-16.3f %-14zu\n", c.n, c.m, per_cell,
                with_counts.size());
    std::fflush(stdout);
    report.row()
        .str("section", "sketch")
        .num("n", c.n)
        .num("m", c.m)
        .num("count_bytes_per_symbol", per_cell);
  }

  // ---- v2 stream: residual-counting sessions must beat plain sessions.
  const std::size_t n = opts.pick<std::size_t>(5'000, 50'000, 500'000);
  const std::size_t d = opts.pick<std::size_t>(20, 100, 200);
  std::vector<U64Symbol> server_items;
  server_items.reserve(n);
  SplitMix64 rng(derive_seed(opts.seed, 0x53454336));
  for (std::size_t i = 0; i < n; ++i) {
    server_items.push_back(U64Symbol::random(rng.next()));
  }
  const std::vector<U64Symbol> client_items(server_items.begin(),
                                            server_items.end() -
                                                static_cast<std::ptrdiff_t>(d));

  const StreamCost plain = run_session(server_items, client_items, false);
  const StreamCost compressed = run_session(server_items, client_items, true);

  std::printf("\n# v2 engine stream (n=%zu, d=%zu): HELLO flag 0x02\n", n, d);
  std::printf("%-12s %-16s %-16s %-10s\n", "mode", "bytes_to_peer",
              "saved_bytes", "ok");
  const std::int64_t saved =
      static_cast<std::int64_t>(plain.bytes_to_peer) -
      static_cast<std::int64_t>(compressed.bytes_to_peer);
  std::printf("%-12s %-16llu %-16s %-10s\n", "plain",
              static_cast<unsigned long long>(plain.bytes_to_peer), "-",
              plain.complete ? "y" : "N");
  std::printf("%-12s %-16llu %-16lld %-10s\n", "residual",
              static_cast<unsigned long long>(compressed.bytes_to_peer),
              static_cast<long long>(saved), compressed.complete ? "y" : "N");
  report.row()
      .str("section", "engine_stream")
      .num("n", n)
      .num("d", d)
      .num("bytes_plain", plain.bytes_to_peer)
      .num("bytes_residual", compressed.bytes_to_peer);

  // The satellite's acceptance gate: residual streams are strictly smaller
  // (both sessions must also actually reconcile).
  if (!plain.complete || !compressed.complete ||
      compressed.bytes_to_peer >= plain.bytes_to_peer) {
    std::fprintf(stderr,
                 "FAIL: residual stream not smaller (plain=%llu, "
                 "residual=%llu)\n",
                 static_cast<unsigned long long>(plain.bytes_to_peer),
                 static_cast<unsigned long long>(compressed.bytes_to_peer));
    return 1;
  }
  return 0;
}
