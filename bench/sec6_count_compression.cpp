// §6 claim: with the expected-value residual coding, the count field costs
// ~1.05 bytes per coded symbol when encoding 10^6 items into 10^4 coded
// symbols (vs 8 bytes fixed in the baselines).
#include <cstdio>

#include "benchutil.hpp"

int main(int argc, char** argv) {
  using namespace ribltx;
  const auto opts = bench::Options::parse(argc, argv);

  struct Case {
    std::size_t n;
    std::size_t m;
  };
  const std::vector<Case> cases =
      opts.smoke ? std::vector<Case>{{10'000, 100}}
      : opts.full
          ? std::vector<Case>{{100'000, 1'000},  {1'000'000, 10'000},
                              {1'000'000, 1'000}, {1'000'000, 100'000},
                              {10'000'000, 10'000}}
          : std::vector<Case>{{100'000, 1'000}, {1'000'000, 10'000}};

  std::printf("# Sec 6: count-field wire cost via residual varints\n");
  std::printf("# paper: 1.05 B/symbol at N=1e6, m=1e4 (8 B fixed baseline)\n");
  std::printf("%-10s %-8s %-16s %-14s\n", "N", "m", "count_B_per_sym",
              "total_sketch_B");

  for (const auto& c : cases) {
    Sketch<U64Symbol> sketch(c.m);
    SplitMix64 rng(derive_seed(opts.seed, c.n ^ c.m));
    for (std::size_t i = 0; i < c.n; ++i) {
      sketch.add_symbol(U64Symbol::random(rng.next()));
    }
    const auto with_counts = wire::serialize_sketch(sketch, c.n);
    wire::SketchWireOptions no_counts;
    no_counts.include_counts = false;
    const auto without = wire::serialize_sketch(sketch, c.n, no_counts);
    const double per_cell =
        static_cast<double>(with_counts.size() - without.size()) /
        static_cast<double>(c.m);
    std::printf("%-10zu %-8zu %-16.3f %-14zu\n", c.n, c.m, per_cell,
                with_counts.size());
    std::fflush(stdout);
  }
  return 0;
}
