// Extension bench (ISSUE 7 acceptance): lock-free multi-writer churn --
// ingest throughput (items/s) against writer-thread count, with serving
// sessions live on the same engine the whole time.
//
// One 1-shard ShardedEngine (one SequenceCache -- the structure whose
// multi-writer path is under test) absorbs a fixed total budget of
// add/remove ops split across W writer threads, each churning through the
// lock-free ingest surface (atomic coded cells + striped journal + striped
// index; see src/core/sketch.hpp). Concurrently, a serving thread runs
// back-to-back rateless reconciliation sessions against the churning set,
// so the measured scaling includes the real interference pattern: snapshot
// cursors journaling every op, seqlock cell reads, journal pruning, and
// window compaction firing mid-churn.
//
// Total work is fixed across W (each writer does total/W adds plus the
// matching lag-delayed removes), so ingest_items_per_s compares directly
// and speedup = rate(W)/rate(1). The acceptance gate is >= 3x at 4 writers
// on a 4+ core machine in full mode; on smoke runs and smaller boxes
// correctness is the gate and scaling is reported, not asserted (same
// policy as extra_shard_scaling). Serving correctness is asserted always:
// every mid-churn session must decode with an empty local side and at
// least the d planted missing items, and a final quiesced session must
// recover exactly the planted difference.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "benchutil.hpp"
#include "sync/sharded.hpp"

namespace {

using namespace ribltx;

struct RunResult {
  double wall_s = 0;
  double items_per_s = 0;
  std::size_t sessions_served = 0;
  bool ok = false;
};

/// One churn pass: W writers splitting `total_adds` add ops (each add paired
/// with a lag-delayed remove of the same writer's earlier item) against a
/// base_n-item served set, while a serving thread streams sessions missing
/// `d` planted items.
RunResult run_churn(std::size_t writers, std::size_t base_n,
                    std::size_t total_adds, std::size_t lag, std::size_t d,
                    std::uint64_t seed) {
  RunResult out;
  std::vector<U64Symbol> base;
  base.reserve(base_n);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < base_n; ++i) {
    base.push_back(U64Symbol::random(rng.next()));
  }

  sync::EngineOptions options;
  options.max_sessions = 1024;
  sync::ShardedEngine<U64Symbol> engine(1, {}, options);
  for (const auto& x : base) engine.add_item(x);

  // Frames route to whichever live client owns the session; a just-retired
  // client lingers one slot so tail frames cannot land ownerless.
  std::mutex fleet_mu;
  std::deque<std::shared_ptr<sync::ShardedClient<U64Symbol>>> live;
  std::atomic<bool> sink_error{false};
  engine.start([&](std::vector<std::byte> frame) {
    const std::uint64_t sid = sync::v2::peek_session_id(frame);
    std::shared_ptr<sync::ShardedClient<U64Symbol>> owner;
    {
      const std::lock_guard<std::mutex> lk(fleet_mu);
      for (const auto& c : live) {
        if (c->owns(sid)) {
          owner = c;
          break;
        }
      }
    }
    if (!owner) return;  // tail frame of an already-dropped session
    try {
      for (auto& reply : owner->handle_frame(frame)) {
        engine.submit(std::move(reply));
      }
    } catch (const std::exception&) {
      sink_error.store(true, std::memory_order_relaxed);
    }
  });

  // Serving load: back-to-back sessions from a peer missing the first d
  // base items. Mid-churn diffs also contain whatever writer items were
  // live at the snapshot, so the check is containment-shaped (>= d remote,
  // empty local); the exact-diff check runs after the churn quiesces.
  std::atomic<bool> churn_live{true};
  std::atomic<std::size_t> served{0};
  std::atomic<bool> serve_ok{true};
  std::thread server_driver([&] {
    std::uint64_t next_base = 1;
    do {
      auto client = std::make_shared<sync::ShardedClient<U64Symbol>>(
          next_base++, 1, sync::BackendId::kRiblt);
      for (std::size_t i = d; i < base.size(); ++i) {
        client->add_item(base[i]);
      }
      {
        const std::lock_guard<std::mutex> lk(fleet_mu);
        live.push_back(client);
        if (live.size() > 2) live.pop_front();
      }
      for (auto& hello : client->hellos()) engine.submit(std::move(hello));
      while (!client->terminal()) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      if (client->complete() && client->diff().local.empty() &&
          client->diff().remote.size() >= d) {
        served.fetch_add(1, std::memory_order_relaxed);
      } else {
        serve_ok.store(false, std::memory_order_relaxed);
      }
    } while (churn_live.load(std::memory_order_acquire));
  });

  // Writers: each adds its share of fresh random items and removes its own
  // items `lag` adds later (a sliding working set), then drains -- so the
  // quiesced engine holds exactly the base set again.
  const std::size_t per_writer = total_adds / writers;
  std::atomic<std::uint64_t> ops_done{0};
  std::atomic<bool> churn_ok{true};
  std::vector<std::thread> fleet;
  fleet.reserve(writers);
  bench::Timer timer;
  for (std::size_t w = 0; w < writers; ++w) {
    fleet.emplace_back([&, w] {
      // derive_seed (not a raw offset/xor of `seed`): SplitMix64 streams
      // from additively-related states overlap, and a writer replaying the
      // base stream would "remove" real base items via failed-add slots.
      SplitMix64 wrng(derive_seed(seed, w + 1));
      std::vector<U64Symbol> window(lag);
      std::uint64_t done = 0;
      bool ok = true;
      for (std::size_t i = 0; i < per_writer; ++i) {
        const U64Symbol item = U64Symbol::random(wrng.next());
        ok = engine.add_item(item) && ok;
        ++done;
        const std::size_t slot = i % lag;
        if (i >= lag) {
          ok = engine.remove_item(window[slot]) && ok;
          ++done;
        }
        window[slot] = item;
      }
      const std::size_t tail = per_writer < lag ? per_writer : lag;
      for (std::size_t i = 0; i < tail; ++i) {
        ok = engine.remove_item(window[i]) && ok;
        ++done;
      }
      ops_done.fetch_add(done, std::memory_order_relaxed);
      if (!ok) churn_ok.store(false, std::memory_order_relaxed);
    });
  }
  for (auto& t : fleet) t.join();
  out.wall_s = timer.elapsed();
  churn_live.store(false, std::memory_order_release);
  server_driver.join();
  engine.stop();

  // Quiesced exact check over the synchronous path: the recovered diff must
  // be exactly the d planted items -- every writer item net-cancelled.
  sync::SyncClient<U64Symbol> verify(1'000'000, sync::BackendId::kRiblt);
  verify.set_shard(0, 1);
  for (std::size_t i = d; i < base.size(); ++i) verify.add_item(base[i]);
  std::deque<std::vector<std::byte>> inbox;
  for (auto& reply : engine.handle_frame(verify.hello())) {
    inbox.push_back(std::move(reply));
  }
  for (std::size_t guard = 0; !verify.complete() && !verify.failed();) {
    if (inbox.empty()) {
      if (auto frame = engine.next_frame(1'000'000)) {
        inbox.push_back(std::move(*frame));
      } else if (++guard > 1'000'000) {
        break;  // wedged: fail below
      }
      continue;
    }
    auto frame = std::move(inbox.front());
    inbox.pop_front();
    for (auto& reply : verify.handle_frame(frame)) {
      for (auto& back : engine.handle_frame(reply)) {
        inbox.push_back(std::move(back));
      }
    }
  }
  const SipHasher<U64Symbol> hasher;  // the default key every side shares
  std::unordered_set<std::uint64_t> missing;
  for (std::size_t i = 0; i < d; ++i) {
    missing.insert(hasher(base[i]));
  }
  bool exact = verify.complete() && verify.diff().local.empty() &&
               verify.diff().remote.size() == d;
  if (exact) {
    for (const auto& item : verify.diff().remote) {
      exact = exact && missing.count(hasher(item)) != 0;
    }
  }

  // The ingest counters (satellite: EngineTotals observability) must agree
  // with what the writers actually did.
  const sync::ShardedStats stats = engine.stats();
  const std::uint64_t adds =
      writers * per_writer + base_n;  // writers + the seeding loop
  const std::uint64_t removes = writers * per_writer;
  const bool counters_ok = stats.totals.items_added == adds &&
                           stats.totals.items_removed == removes &&
                           stats.items == base_n;

  out.sessions_served = served.load(std::memory_order_relaxed);
  out.ok = churn_ok.load(std::memory_order_relaxed) &&
           serve_ok.load(std::memory_order_relaxed) &&
           !sink_error.load(std::memory_order_relaxed) && exact &&
           counters_ok && out.sessions_served > 0;
  if (!out.ok) {
    std::printf("# run_churn(W=%zu) FAIL: churn_ok=%d serve_ok=%d "
                "sink_error=%d exact=%d counters_ok=%d served=%zu "
                "(added=%llu/%llu removed=%llu/%llu items=%zu/%zu)\n",
                writers, (int)churn_ok.load(), (int)serve_ok.load(),
                (int)sink_error.load(), (int)exact, (int)counters_ok,
                out.sessions_served,
                (unsigned long long)stats.totals.items_added,
                (unsigned long long)adds,
                (unsigned long long)stats.totals.items_removed,
                (unsigned long long)removes, stats.items, base_n);
  }
  out.items_per_s =
      static_cast<double>(ops_done.load(std::memory_order_relaxed)) /
      out.wall_s;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  bench::JsonReport report(opts, "extra_ingest_scaling");

  const std::size_t base_n = opts.pick<std::size_t>(512, 20'000, 100'000);
  const std::size_t total_adds =
      opts.pick<std::size_t>(2'000, 120'000, 400'000);
  const std::size_t lag = opts.pick<std::size_t>(128, 256, 256);
  const std::size_t d = opts.pick<std::size_t>(16, 64, 128);
  const std::vector<std::size_t> writer_counts =
      opts.smoke ? std::vector<std::size_t>{1, 2}
                 : std::vector<std::size_t>{1, 2, 4, 8};

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("# Extra: multi-writer ingest throughput vs writer threads "
              "(%u hardware threads)\n", cores);
  std::printf("# base_n=%zu items, %zu total adds (+lagged removes), "
              "lag=%zu, d=%zu, serving sessions live\n",
              base_n, total_adds, lag, d);
  std::printf("%-8s %-12s %-18s %-10s %-10s %-4s\n", "writers", "wall_s",
              "ingest_items_per_s", "speedup", "sessions", "ok");

  bool ok = true;
  double base_rate = 0;
  double speedup_4w = 0;
  for (const std::size_t writers : writer_counts) {
    const RunResult r =
        run_churn(writers, base_n, total_adds, lag, d, opts.seed + writers);
    if (writers == 1) base_rate = r.items_per_s;
    const double speedup = base_rate > 0 ? r.items_per_s / base_rate : 0;
    if (writers == 4) speedup_4w = speedup;
    std::printf("%-8zu %-12.4f %-18.1f %-10.2f %-10zu %-4s\n", writers,
                r.wall_s, r.items_per_s, speedup, r.sessions_served,
                r.ok ? "y" : "N");
    std::fflush(stdout);
    auto& row = report.row()
                   .num("writers", writers)
                   .num("base_n", base_n)
                   .num("total_adds", total_adds)
                   .num("d", d)
                   .num("cores", cores)
                   .num("wall_s", r.wall_s)
                   .num("sessions_served", r.sessions_served)
                   .num("ingest_items_per_s", r.items_per_s)
                   .num("speedup", speedup);
    if (writers == 4) row.num("ingest_speedup_4w", speedup);
    ok = ok && r.ok;
  }
  // Correctness always gates. The >= 3x scaling gate (ISSUE 7 acceptance)
  // only binds where it is demonstrable: full mode on a 4+ core machine.
  if (!opts.smoke && cores >= 4 && speedup_4w > 0 && speedup_4w < 3.0) {
    std::printf("# FAIL: ingest speedup at 4 writers %.2fx < 3.0x gate\n",
                speedup_4w);
    ok = false;
  }
  return ok ? 0 : 1;
}
