// §7.3 claim: because of linearity, Alice can incrementally update her
// cached coded-symbol sequence as the ledger changes instead of re-encoding
// (the paper: 11 ms to update 50 M cached symbols for an average block).
//
// We measure the per-item update cost on caches of growing size: each
// inserted/removed item touches O(log m) cells, so per-item time grows only
// logarithmically while a full rebuild grows linearly in N.
#include <cstdio>

#include "benchutil.hpp"
#include "ledger/ledger.hpp"

int main(int argc, char** argv) {
  using namespace ribltx;
  const auto opts = bench::Options::parse(argc, argv);
  const std::size_t max_cells =
      opts.pick<std::size_t>(50'000, 500'000, 5'000'000);

  std::printf("# Sec 7.3: incremental update of Alice's cached sequence\n");
  std::printf("# per updated item: O(log m) cell XORs of 92-byte items\n");
  std::printf("%-10s %-16s %-18s\n", "cells", "us_per_item",
              "ms_per_block(300)");

  for (std::size_t m = 5'000; m <= max_cells; m *= 10) {
    SequenceCache<ledger::StateItem> cache(m);
    // Pre-fill with a modest set; update cost is independent of set size.
    SplitMix64 rng(derive_seed(opts.seed, m));
    for (std::size_t i = 0; i < 10'000; ++i) {
      cache.add_symbol(ledger::StateItem::random(rng.next()));
    }
    constexpr std::size_t kUpdates = 2'000;
    std::vector<ledger::StateItem> updates;
    updates.reserve(kUpdates);
    for (std::size_t i = 0; i < kUpdates; ++i) {
      updates.push_back(ledger::StateItem::random(rng.next()));
    }
    bench::Timer timer;
    for (const auto& u : updates) cache.add_symbol(u);
    for (const auto& u : updates) cache.remove_symbol(u);
    const double per_item = timer.elapsed() / (2.0 * kUpdates);
    // An average Ethereum block touches a few hundred accounts; each
    // touched account is one removal plus one insertion.
    std::printf("%-10zu %-16.3f %-18.3f\n", m, per_item * 1e6,
                per_item * 2 * 300 * 1e3);
    std::fflush(stdout);
  }
  return 0;
}
