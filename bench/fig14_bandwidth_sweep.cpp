// Fig 14: completion time vs link bandwidth, ledger 10 hours stale, 50 ms
// delay.
//
// Expected shape (paper §7.3): state heal stops improving past ~20 Mbps --
// Bob cannot process trie nodes any faster (compute-bound; the calibrated
// CPU model in sync/session.hpp pins this knee) -- while Rateless IBLT
// keeps scaling with bandwidth until its own much-higher CPU ceiling
// (~170 Mbps single-core in the paper). The paper reports 4.8x at 10 Mbps
// growing to 16x at 100 Mbps.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "ledgerbench.hpp"

int main(int argc, char** argv) {
  using namespace ribltx;
  const auto opts = bench::Options::parse(argc, argv);
  const auto params = bench::default_eth_params(opts);
  // 10 h stale normally; 1 h under --smoke to keep plan construction quick.
  const double staleness_s = opts.smoke ? 3600.0 : 10.0 * 3600.0;
  const std::uint64_t latest =
      ledger::blocks_for_staleness(params, staleness_s) + 10;
  bench::EthWorkbench wb(params, latest);

  const auto plans =
      wb.plans_for(ledger::blocks_for_staleness(params, staleness_s));

  std::printf("# Fig 14: completion time vs bandwidth, %.0f h stale "
              "(d=%zu, riblt %.2f MB, heal %.2f MB)\n",
              staleness_s / 3600.0, plans.d,
              static_cast<double>(plans.riblt.total_bytes) / 1e6,
              static_cast<double>(plans.heal.total_bytes()) / 1e6);
  std::printf("%-10s %-10s %-10s %-8s\n", "Mbps", "riblt_s", "heal_s",
              "ratio");

  const std::vector<double> mbps =
      opts.smoke
          ? std::vector<double>{20, 100, 0}
          : std::vector<double>{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 0};
  for (const double bw : mbps) {
    netsim::LinkConfig link;
    link.bandwidth_bps = bw * 1e6;  // 0 = unlimited
    const auto riblt = sync::run_riblt_session(plans.riblt, link);
    const auto heal = sync::run_heal_session(plans.heal, link);
    if (bw > 0) {
      std::printf("%-10.0f", bw);
    } else {
      std::printf("%-10s", "inf");
    }
    std::printf(" %-10.2f %-10.2f %-8.2f\n", riblt.completion_s,
                heal.completion_s, heal.completion_s / riblt.completion_s);
    std::fflush(stdout);
  }
  return 0;
}
