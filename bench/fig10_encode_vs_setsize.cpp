// Fig 10: encoding time for a fixed 1000-item difference as the set size N
// grows.
//
// Expected shape (paper §7.2): linear in N -- every set item contributes
// the same expected number of coded-symbol updates, so the paper reports
// 2.9 ms at N = 10^4 vs 294 ms at N = 10^6 (exactly 100x). Default sweeps
// N = 10^3..10^6 (--full: 10^7; the paper reaches 10^8 on a bigger box).
#include <cstdio>

#include "benchutil.hpp"

int main(int argc, char** argv) {
  using namespace ribltx;
  const auto opts = bench::Options::parse(argc, argv);
  const std::size_t max_n =
      opts.pick<std::size_t>(10'000, 1'000'000, 10'000'000);
  constexpr std::size_t kD = 1000;
  const auto symbols = static_cast<std::size_t>(1.35 * kD) + 8;

  std::printf("# Fig 10: encode time of %zu differences vs set size N\n", kD);
  std::printf("# paper: linear in N\n");
  std::printf("%-10s %-14s %-16s\n", "N", "seconds", "ns_per_item");
  for (std::size_t n = 1000; n <= max_n; n *= 10) {
    Encoder<U64Symbol> enc;
    SplitMix64 rng(derive_seed(opts.seed, n));
    for (std::size_t i = 0; i < n; ++i) {
      enc.add_symbol(U64Symbol::random(rng.next()));
    }
    bench::Timer timer;
    for (std::size_t i = 0; i < symbols; ++i) {
      volatile auto cell = enc.produce_next();
      (void)cell;
    }
    const double t = timer.elapsed();
    std::printf("%-10zu %-14.5f %-16.1f\n", n, t,
                t * 1e9 / static_cast<double>(n));
    std::fflush(stdout);
  }
  return 0;
}
