// Fig 6: fraction of source symbols recovered vs coded symbols received
// (normalized by d), compared with the density-evolution fixed points.
//
// Expected shape (paper §5.1): simulations for d = 500 / 2000 / 10000 track
// the DE curve closely, with a sharp completion knee just before eta = 1.35.
#include <cstdio>
#include <vector>

#include "analysis/density_evolution.hpp"
#include "benchutil.hpp"

namespace {

using namespace ribltx;

/// Average recovered fraction at each eta grid point over `trials` runs.
std::vector<double> progress_curve(std::size_t d, int trials,
                                   const std::vector<double>& etas,
                                   std::uint64_t seed) {
  std::vector<double> sum(etas.size(), 0.0);
  for (int t = 0; t < trials; ++t) {
    Encoder<U64Symbol> enc;
    SplitMix64 rng(derive_seed(seed, static_cast<std::uint64_t>(t)));
    for (std::size_t i = 0; i < d; ++i) {
      enc.add_symbol(U64Symbol::random(rng.next()));
    }
    Decoder<U64Symbol> dec;
    std::size_t next_eta = 0;
    const std::size_t max_symbols =
        static_cast<std::size_t>(etas.back() * static_cast<double>(d)) + 1;
    for (std::size_t m = 1; m <= max_symbols && next_eta < etas.size(); ++m) {
      dec.add_coded_symbol(enc.produce_next());
      const double eta = static_cast<double>(m) / static_cast<double>(d);
      while (next_eta < etas.size() && eta >= etas[next_eta]) {
        sum[next_eta] += static_cast<double>(dec.remote().size()) /
                         static_cast<double>(d);
        ++next_eta;
      }
    }
    // Grid points past the stream cap count as fully recovered state.
    while (next_eta < etas.size()) {
      sum[next_eta] += static_cast<double>(dec.remote().size()) /
                       static_cast<double>(d);
      ++next_eta;
    }
  }
  for (auto& v : sum) v /= trials;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const int trials = opts.trials > 0 ? opts.trials : opts.pick(2, 20, 200);
  const std::vector<std::size_t> dsizes =
      opts.smoke ? std::vector<std::size_t>{500}
                 : std::vector<std::size_t>{500, 2000, 10000};

  std::vector<double> etas;
  for (double e = 0.05; e <= 2.0001; e += 0.05) etas.push_back(e);

  std::printf("# Fig 6: recovered fraction vs eta (trials=%d)\n", trials);
  std::printf("# paper: sharp knee completing just before eta=1.35 (DE)\n");

  std::vector<std::vector<double>> sims;
  sims.reserve(dsizes.size());
  for (const auto d : dsizes) {
    sims.push_back(progress_curve(d, trials, etas, derive_seed(opts.seed, d)));
  }

  std::printf("%-8s", "eta");
  for (const auto d : dsizes) std::printf(" sim_d=%-7zu", d);
  std::printf(" %-8s\n", "DE");
  for (std::size_t k = 0; k < etas.size(); ++k) {
    std::printf("%-8.2f", etas[k]);
    for (const auto& sim : sims) std::printf(" %-11.4f", sim[k]);
    std::printf(" %-8.4f\n",
                1.0 - analysis::de_stall_fixed_point(0.5, etas[k]));
  }
  return 0;
}
