// Fig 4: communication overhead eta* vs the mapping parameter alpha.
//
// Columns: the density-evolution prediction (d -> infinity) and Monte-Carlo
// averages at finite difference sizes. Expected shape (paper §5.1): the DE
// curve dips to ~1.31 at alpha ~= 0.64; alpha = 0.5 gives 1.35 (within 3%
// of optimal); simulations converge to DE from above as d grows, slowest
// for large alpha.
#include <cstdio>

#include "analysis/density_evolution.hpp"
#include "benchutil.hpp"

int main(int argc, char** argv) {
  using namespace ribltx;
  const auto opts = bench::Options::parse(argc, argv);
  const int trials = opts.trials > 0 ? opts.trials : opts.pick(2, 10, 100);
  const std::vector<std::size_t> dsizes =
      opts.smoke ? std::vector<std::size_t>{100}
      : opts.full
          ? std::vector<std::size_t>{100, 1000, 10000, 100000, 1000000}
          : std::vector<std::size_t>{100, 1000, 10000};

  std::printf("# Fig 4: overhead eta* vs alpha (trials=%d%s)\n", trials,
              opts.full ? ", --full" : "");
  std::printf("# paper: DE minimum ~1.31 at alpha~0.64; alpha=0.5 -> 1.35\n");
  std::printf("%-8s %-8s", "alpha", "DE");
  for (const auto d : dsizes) std::printf(" sim_d=%-8zu", d);
  std::printf("\n");

  for (double alpha = 0.10; alpha <= 0.951; alpha += 0.05) {
    std::printf("%-8.2f %-8.4f", alpha,
                analysis::de_threshold(alpha));
    for (const auto d : dsizes) {
      const GenericMappingFactory mf{alpha};
      const auto s = bench::measure_overhead(
          d, trials, mf, derive_seed(opts.seed, static_cast<std::uint64_t>(alpha * 1000)));
      std::printf(" %-12.4f", s.mean);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
