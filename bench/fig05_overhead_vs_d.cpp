// Fig 5: overhead of Rateless IBLT (alpha = 0.5) vs difference size d.
//
// Expected shape (paper §5.1): peak ~1.72 at d = 4, below 1.40 for all
// d > 128, converging to the density-evolution limit 1.35.
#include <cstdio>

#include "benchutil.hpp"

int main(int argc, char** argv) {
  using namespace ribltx;
  const auto opts = bench::Options::parse(argc, argv);
  bench::JsonReport report(opts, "fig05_overhead_vs_d");
  const std::size_t max_d = opts.pick<std::size_t>(1u << 6, 1u << 16, 1u << 20);

  std::printf("# Fig 5: overhead vs d, alpha=0.5 (DE limit 1.35)\n");
  std::printf("# paper: peak 1.72 @ d=4; <1.40 for d>128\n");
  std::printf("%-10s %-8s %-10s %-10s %-8s\n", "d", "mean", "stddev",
              "median", "trials");

  const DefaultMappingFactory mf;
  for (std::size_t d = 1; d <= max_d; d *= 2) {
    // Fewer trials at large d (runs are long but variance shrinks).
    int trials = opts.trials > 0 ? opts.trials
               : d <= 64      ? opts.pick(3, 50, 100)
               : d <= 4096    ? opts.pick(2, 20, 100)
                                : opts.pick(1, 8, 30);
    const auto s =
        bench::measure_overhead(d, trials, mf, derive_seed(opts.seed, d));
    std::printf("%-10zu %-8.4f %-10.4f %-10.4f %-8d\n", d, s.mean, s.stddev,
                s.median, trials);
    report.row()
        .num("d", d)
        .num("mean", s.mean)
        .num("stddev", s.stddev)
        .num("median", s.median)
        .num("trials", trials);
    std::fflush(stdout);
  }
  std::printf("# DE prediction: 1.35\n");
  return 0;
}
