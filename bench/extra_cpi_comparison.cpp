// Extension bench: the three coding-theoretic families side by side
// (paper §2's cost narrative). CPI [19] decodes in O(d^3) (rational
// interpolation), PinSketch [7] in O(d^2) (Berlekamp-Massey), Rateless
// IBLT in O(d log d) (peeling). Communication goes the other way: CPI and
// PinSketch sit at the information-theoretic floor, Rateless IBLT pays
// ~1.35x plus per-symbol framing.
//
// Expected shape: decode-time curves separate by an order per power of d;
// by d ~ 10^2-10^3 CPI is already intractable, which is why the paper's
// headline comparisons use PinSketch as the optimal-communication champion.
#include <cstdio>

#include "benchutil.hpp"
#include "pinsketch/cpi.hpp"
#include "pinsketch/pinsketch.hpp"

namespace {

using namespace ribltx;

std::vector<U64Symbol> nonzero_items(std::size_t n, std::uint64_t seed) {
  std::vector<U64Symbol> out;
  out.reserve(n);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(U64Symbol::from_u64(rng.next() | 1));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  // Both baselines are root-finding-bound at tiny d; CPI's O(d^3)
  // interpolation overtakes PinSketch's O(d^2) BM past d ~ 128.
  const std::size_t cpi_max = opts.pick<std::size_t>(16, 256, 512);
  const std::size_t pin_max = opts.pick<std::size_t>(32, 512, 2048);
  const std::size_t max_d = opts.pick<std::size_t>(64, 4096, 16384);

  std::printf("# Extra: CPI vs PinSketch vs Rateless IBLT decode time "
              "(8-byte items)\n");
  std::printf("# comm. overhead: cpi/pinsketch = 1.0x; riblt ~1.35-1.7x + "
              "9B/symbol\n");
  std::printf("%-8s %-12s %-12s %-12s\n", "d", "cpi_s", "pinsketch_s",
              "riblt_s");

  for (std::size_t d = 2; d <= max_d; d *= 2) {
    const auto items = nonzero_items(d, derive_seed(opts.seed, d));

    double cpi_s = -1;
    if (d <= cpi_max) {
      cpi::CpiSketch a(d), b(d);
      for (std::size_t i = 0; i < items.size(); ++i) {
        ((i % 2 == 0) ? a : b).add_symbol(items[i]);
      }
      bench::Timer t;
      const auto r = cpi::CpiSketch::reconcile(a, b);
      cpi_s = t.elapsed();
      if (!r.success) cpi_s = -2;  // flag anomaly in output
    }

    double pin_s = -1;
    if (d <= pin_max) {
      pinsketch::PinSketch sk(d);
      for (const auto& s : items) sk.add_symbol(s);
      bench::Timer t;
      const auto r = sk.decode();
      pin_s = t.elapsed();
      if (!r.success) pin_s = -2;
    }

    Encoder<U64Symbol> enc;
    for (const auto& s : items) enc.add_symbol(s);
    std::vector<CodedSymbol<U64Symbol>> cells;
    for (std::size_t i = 0; i < 2 * d + 16; ++i) {
      cells.push_back(enc.produce_next());
    }
    bench::Timer t;
    Decoder<U64Symbol> dec;
    for (const auto& c : cells) {
      dec.add_coded_symbol(c);
      if (dec.decoded()) break;
    }
    const double riblt_s = t.elapsed();

    std::printf("%-8zu", d);
    if (cpi_s >= 0) {
      std::printf(" %-12.5f", cpi_s);
    } else {
      std::printf(" %-12s", cpi_s == -2 ? "FAIL" : "-");
    }
    if (pin_s >= 0) {
      std::printf(" %-12.5f", pin_s);
    } else {
      std::printf(" %-12s", pin_s == -2 ? "FAIL" : "-");
    }
    std::printf(" %-12.6f\n", riblt_s);
    std::fflush(stdout);
  }
  return 0;
}
