// Shared scaffolding for the §7.3 Ethereum-synchronization benches
// (Figs 12-14): one Alice at the latest block, Bobs of varying staleness,
// both protocols planned on the real data structures and replayed through
// netsim.
//
// Scale note (DESIGN.md §1.4): the paper's mainnet snapshot has 230 M
// accounts and real transaction churn; we default to a 400 k-account
// synthetic ledger with modifies/creates rates chosen so that d grows into
// the hundreds of thousands at 100 h staleness, matching the paper's regime
// relative to bandwidth. Merkle amplification grows with trie depth
// (log N), so our byte ratios are a conservative lower bound on the
// paper's 4.4-8.6x.
#pragma once

#include <cstdio>
#include <memory>

#include "benchutil.hpp"
#include "ledger/ledger.hpp"
#include "merkle/heal.hpp"
#include "sync/session.hpp"

namespace ribltx::bench {

struct EthPlans {
  std::size_t d = 0;
  sync::RibltPlan riblt;
  merkle::HealPlan heal;
};

class EthWorkbench {
 public:
  EthWorkbench(ledger::LedgerParams params, std::uint64_t latest_block)
      : params_(params),
        latest_block_(latest_block),
        alice_(params, latest_block),
        alice_symbols_(alice_.as_symbols()),
        alice_trie_(alice_.build_trie()) {}

  [[nodiscard]] const ledger::LedgerParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::uint64_t latest_block() const noexcept {
    return latest_block_;
  }

  /// Builds both protocols' plans for a Bob stale by `blocks`.
  [[nodiscard]] EthPlans plans_for(std::uint64_t stale_blocks) const {
    const std::uint64_t bob_block =
        stale_blocks >= latest_block_ ? 0 : latest_block_ - stale_blocks;
    const ledger::LedgerState bob(params_, bob_block);

    EthPlans out;
    out.d = ledger::symmetric_difference_size(params_, bob_block,
                                              latest_block_);
    out.riblt = sync::plan_riblt_sync(alice_symbols_, bob.as_symbols(),
                                      out.d);
    out.heal = merkle::plan_heal(alice_trie_, bob.build_trie());
    return out;
  }

 private:
  ledger::LedgerParams params_;
  std::uint64_t latest_block_;
  ledger::LedgerState alice_;
  std::vector<ledger::StateItem> alice_symbols_;
  merkle::Trie alice_trie_;
};

/// Default ledger scale for the benches: see the header comment. The churn
/// rate keeps d well below N across the staleness sweep (the paper's
/// regime: d/N < 1%); push either knob up and the Merkle ratios shrink as
/// the trie saturates.
inline ledger::LedgerParams default_eth_params(bool full) {
  ledger::LedgerParams p;
  p.base_accounts = full ? 2'000'000 : 400'000;
  p.modifies_per_block = full ? 4 : 2;
  p.creates_per_block = 1;
  return p;
}

/// Mode-aware overload: --smoke shrinks the ledger so trie construction
/// stays in ctest-smoke territory while exercising the same code paths.
inline ledger::LedgerParams default_eth_params(const Options& opts) {
  if (!opts.smoke) return default_eth_params(opts.full);
  ledger::LedgerParams p;
  p.base_accounts = 20'000;
  p.modifies_per_block = 2;
  p.creates_per_block = 1;
  return p;
}

}  // namespace ribltx::bench
