// Chaos anti-entropy harness: N Replica daemons reconciling continuously
// over a full mesh of SimConduit links while a seeded fault plan injects
// partitions, a crash/restart, corruption, loss, and duplication on top of
// ledger-style churn.
//
// The convergence gate (also a ctest target, default and --smoke scales):
// once churn and faults stop, every replica must reach byte-exact set
// equality with every other within a bounded quiesce window, and no engine
// session or in-flight round may leak (session_count() == 0 fleet-wide
// after the drain). The process exits nonzero when either fails, so CI
// catches both divergence and leaks.
//
// Workload model (ledgerbench shape, replica-local view): per block,
// `creates` fresh accounts appear at 1-2 random origin replicas and
// `modifies` existing accounts get a new version at origins while the old
// version is deleted from every *alive* replica. Deletions propagate only
// through the churn driver (no tombstones in a plain set), so a crashed or
// partitioned replica can resurrect an old version into the mesh -- the
// union is still monotone once churn stops, which is exactly why the gate
// demands inter-replica equality rather than equality to a ledger oracle.
//
// Reported metrics: staleness p50/p99 (item birth at origin -> applied via
// anti-entropy elsewhere -- the continuous analogue of Fig 12's staleness
// axis), bytes per reconciled item (all link bytes, retransmits and ACKs
// included), time-to-converge after churn ends, and the abort/reap/retry
// counters that show the robustness machinery actually engaged.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "benchutil.hpp"
#include "ledger/ledger.hpp"
#include "net/sim_conduit.hpp"
#include "obs/metrics.hpp"
#include "sync/replica.hpp"

namespace ribltx::bench {
namespace {

using ledger::StateItem;
using sync::Replica;

struct ChaosParams {
  std::size_t replicas = 5;
  std::size_t base_items = 1500;   ///< shared pre-loaded population
  std::size_t blocks = 80;         ///< churn blocks
  double seconds_per_block = 0.5;  ///< sim-time block cadence
  std::size_t creates_per_block = 4;
  std::size_t modifies_per_block = 3;
  double tick_dt = 0.05;
  double check_dt = 0.25;
  double drain_s = 8.0;       ///< quiesce window after convergence detected
  double converge_cap_s = 60; ///< max post-churn time before declaring failure
  std::uint64_t seed = 1;
};

ChaosParams pick_params(const Options& opts) {
  ChaosParams p;
  p.replicas = opts.pick<std::size_t>(4, 5, 6);
  p.base_items = opts.pick<std::size_t>(400, 1500, 4000);
  p.blocks = opts.pick<std::size_t>(30, 80, 160);
  p.creates_per_block = opts.pick<std::size_t>(3, 4, 6);
  p.modifies_per_block = opts.pick<std::size_t>(2, 3, 4);
  p.seconds_per_block = opts.smoke ? 0.4 : 0.5;
  p.seed = opts.seed;
  return p;
}

/// Deterministic account content, ledger-flavored: 92-byte address||value
/// items keyed by (account index, version).
StateItem account_item(std::uint64_t seed, std::uint64_t account,
                       std::uint64_t version) {
  return StateItem::random(
      derive_seed(seed ^ 0x63686173616363ULL, mix64(account) ^ version));
}

struct Account {
  std::uint64_t id = 0;
  std::uint64_t version = 0;
  StateItem item;
};

/// One mesh edge: replica lo's endpoint is a(), hi's is b().
struct Pipe {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::unique_ptr<net::SimConduit> conduit;
};

class Fleet {
 public:
  Fleet(const ChaosParams& params, const Options& opts)
      : p_(params), churn_rng_(mix64(params.seed ^ 0x63686f7321ULL)) {
    (void)opts;
    const double t_churn = churn_end();
    // Staleness lands in a registry histogram (microsecond scale) -- the
    // same cells a live METRICS scrape would read -- with the raw sample
    // vector retained as the parity oracle for the quantile estimates.
    staleness_hist_ = &registry_.histogram(
        "chaos_staleness_us",
        "Item birth at origin to applied via anti-entropy elsewhere");
    replicas_.reserve(p_.replicas);
    for (std::size_t i = 0; i < p_.replicas; ++i) {
      sync::ReplicaOptions ro;
      ro.replica_id = i + 1;
      ro.sync_interval_s = 0.4;
      ro.backoff_base_s = 0.2;
      ro.backoff_cap_s = 4.0;
      ro.jitter = 0.25;
      ro.session_deadline_s = 2.0;
      ro.engine.idle_deadline_s = 3.0;
      ro.engine.metrics = &registry_;
      ro.serve_budget = 32;
      ro.seed = derive_seed(p_.seed, i);
      replicas_.push_back(std::make_unique<Replica<StateItem>>(ro));
      down_.push_back(false);
    }
    // Shared base population: every replica starts from the same state.
    for (std::size_t a = 0; a < p_.base_items; ++a) {
      accounts_.push_back({a, 0, account_item(p_.seed, a, 0)});
      for (auto& r : replicas_) (void)r->add_item(accounts_.back().item);
    }
    next_account_ = p_.base_items;

    for (std::size_t i = 0; i < p_.replicas; ++i) {
      const std::size_t idx = i;
      replicas_[i]->on_item_applied([this, idx](const StateItem& item,
                                                double now) {
        ++applied_[idx];
        const auto it = birth_.find(item);
        if (it != birth_.end()) {
          const double lag = now - it->second;
          staleness_.push_back(lag);
          staleness_hist_->record(
              static_cast<std::uint64_t>(lag * 1e6));
        }
      });
      applied_.push_back(0);
    }

    // Full mesh; peers registered once, links rebindable after a crash.
    for (std::size_t i = 0; i < p_.replicas; ++i) {
      for (std::size_t j = i + 1; j < p_.replicas; ++j) {
        pipes_.push_back({i, j, nullptr});
        rebuild_pipe(pipes_.back(), /*first_time=*/true);
      }
    }

    // Fault plan, scaled to the churn phase: two bidirectional partition
    // windows on distinct mesh edges plus one crash/restart.
    Pipe& part_a = pipe_between(0, 1);
    part_a.conduit->link_ab().add_partition(0.20 * t_churn, 0.32 * t_churn);
    part_a.conduit->link_ba().add_partition(0.20 * t_churn, 0.32 * t_churn);
    if (p_.replicas > 2) {
      Pipe& part_b = pipe_between(0, 2);
      part_b.conduit->link_ab().add_partition(0.55 * t_churn, 0.68 * t_churn);
      part_b.conduit->link_ba().add_partition(0.55 * t_churn, 0.68 * t_churn);
    }
    crash_victim_ = p_.replicas - 1;
    loop_.schedule_at(0.35 * t_churn, [this] { crash(crash_victim_); });
    loop_.schedule_at(0.58 * t_churn, [this] { recover(crash_victim_); });

    for (std::size_t b = 1; b <= p_.blocks; ++b) {
      loop_.schedule_at(static_cast<double>(b) * p_.seconds_per_block,
                        [this] { churn_block(); });
    }
    for (std::size_t i = 0; i < p_.replicas; ++i) schedule_tick(i);
    schedule_check();
  }

  [[nodiscard]] double churn_end() const {
    return static_cast<double>(p_.blocks) * p_.seconds_per_block;
  }

  void run() { loop_.run(); }

  /// Post-run sweep: jump time forward so session deadlines and idle reaps
  /// fire for anything the drain window left behind, then let the loop
  /// deliver the resulting abort/ERROR frames. Three passes retire chains
  /// (client abort -> server ERROR -> server retire).
  void final_sweep() {
    for (int pass = 0; pass < 3; ++pass) {
      const double t = loop_.now() + p_.drain_s;
      for (std::size_t i = 0; i < p_.replicas; ++i) {
        if (!down_[i]) replicas_[i]->tick(t);
      }
      loop_.run();
    }
  }

  [[nodiscard]] bool converged_flag() const { return converged_at_ >= 0; }
  [[nodiscard]] double converge_latency() const {
    return converged_at_ < 0 ? -1 : converged_at_ - churn_end();
  }

  /// Byte-exact equality: every replica's sorted item vector must match
  /// replica 0's.
  [[nodiscard]] bool byte_exact_equal() const {
    std::vector<StateItem> ref = items_of(0);
    for (std::size_t i = 1; i < p_.replicas; ++i) {
      if (items_of(i) != ref) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t leaked_sessions() const {
    std::size_t n = 0;
    for (const auto& r : replicas_) n += r->session_count();
    return n;
  }

  [[nodiscard]] std::uint64_t link_bytes() {
    std::uint64_t total = 0;
    const auto add = [&](net::SimConduit& c) {
      total += c.a().data_bytes() + c.a().ack_bytes() + c.b().data_bytes() +
               c.b().ack_bytes();
    };
    for (const auto& pipe : pipes_) add(*pipe.conduit);
    for (const auto& dead : graveyard_) add(*dead);
    return total;
  }

  [[nodiscard]] std::uint64_t items_applied() const {
    std::uint64_t n = 0;
    for (const std::uint64_t a : applied_) n += a;
    return n;
  }

  [[nodiscard]] std::vector<double> staleness_samples() const {
    return staleness_;
  }

  /// Snapshot of the whole fleet's registry (staleness histogram plus
  /// every replica engine's bound cells) -- the scrape-path view the
  /// JSON report reads its quantiles from.
  [[nodiscard]] obs::MetricsSnapshot metrics() const {
    return registry_.snapshot();
  }

  [[nodiscard]] sync::ReplicaStats stats_of(std::size_t i) const {
    return replicas_[i]->stats();
  }

  [[nodiscard]] std::size_t replica_count() const { return p_.replicas; }
  [[nodiscard]] std::size_t item_count_of(std::size_t i) const {
    return replicas_[i]->item_count();
  }

 private:
  [[nodiscard]] std::vector<StateItem> items_of(std::size_t i) const {
    std::vector<StateItem> out;
    out.reserve(replicas_[i]->item_count());
    replicas_[i]->for_each_item(
        [&](const HashedSymbol<StateItem>& hs) { out.push_back(hs.symbol); });
    std::sort(out.begin(), out.end());
    return out;
  }

  Pipe& pipe_between(std::size_t a, std::size_t b) {
    for (auto& pipe : pipes_) {
      if (pipe.lo == std::min(a, b) && pipe.hi == std::max(a, b)) return pipe;
    }
    throw std::logic_error("chaos: no such pipe");
  }

  /// (Re)creates the conduit for one edge and rebinds both replicas'
  /// transports to the fresh endpoints. Lossy, jittery, corrupting,
  /// duplicating links -- the steady-state fault floor.
  void rebuild_pipe(Pipe& pipe, bool first_time) {
    netsim::LinkConfig link;
    link.one_way_delay_s = 0.01;
    link.bandwidth_bps = 50e6;
    link.loss_rate = 0.05;
    link.reorder_jitter_s = 0.005;
    link.corrupt_rate = 0.01;
    link.duplicate_rate = 0.01;
    // Fresh seeds per incarnation so a rebuilt link draws a new stream.
    link.seed = derive_seed(p_.seed ^ 0x6c696e6b73ULL,
                            (pipe.lo << 20) ^ (pipe.hi << 8) ^ incarnation_);
    netsim::LinkConfig back = link;
    back.seed = mix64(link.seed);
    ++incarnation_;

    if (pipe.conduit) graveyard_.push_back(std::move(pipe.conduit));
    pipe.conduit = std::make_unique<net::SimConduit>(loop_, link, back);

    const std::size_t lo = pipe.lo;
    const std::size_t hi = pipe.hi;
    net::SimEndpoint* lo_end = &pipe.conduit->a();
    net::SimEndpoint* hi_end = &pipe.conduit->b();
    lo_end->on_frame([this, hi, lo](std::vector<std::byte> f) {
      if (!down_[lo]) replicas_[lo]->deliver(hi + 1, f, loop_.now());
    });
    hi_end->on_frame([this, hi, lo](std::vector<std::byte> f) {
      if (!down_[hi]) replicas_[hi]->deliver(lo + 1, f, loop_.now());
    });
    lo_end->on_error([this, hi, lo] {
      if (!down_[lo]) replicas_[lo]->peer_link_down(hi + 1, loop_.now());
    });
    hi_end->on_error([this, hi, lo] {
      if (!down_[hi]) replicas_[hi]->peer_link_down(lo + 1, loop_.now());
    });

    const auto send_via = [](net::SimEndpoint* ep) {
      return [ep](std::vector<std::byte> f) {
        if (ep->broken()) return false;
        ep->send_frame(std::move(f));
        return true;
      };
    };
    const auto ready_via = [](net::SimEndpoint* ep) {
      return [ep] { return !ep->broken() && ep->writable(); };
    };
    if (first_time) {
      replicas_[lo]->add_peer(hi + 1, send_via(lo_end), ready_via(lo_end));
      replicas_[hi]->add_peer(lo + 1, send_via(hi_end), ready_via(hi_end));
    } else {
      replicas_[lo]->set_peer_link(hi + 1, send_via(lo_end),
                                   ready_via(lo_end));
      replicas_[hi]->set_peer_link(lo + 1, send_via(hi_end),
                                   ready_via(hi_end));
    }
  }

  void crash(std::size_t victim) {
    down_[victim] = true;
    for (auto& pipe : pipes_) {
      if (pipe.lo != victim && pipe.hi != victim) continue;
      // Both ends die: the victim's abruptly (crash), the survivor's via
      // its on_error -> peer backoff takes over.
      pipe.conduit->a().sever();
      pipe.conduit->b().sever();
    }
  }

  void recover(std::size_t victim) {
    replicas_[victim]->restart(loop_.now());
    down_[victim] = false;
    for (auto& pipe : pipes_) {
      if (pipe.lo == victim || pipe.hi == victim) {
        rebuild_pipe(pipe, /*first_time=*/false);
      }
    }
  }

  void churn_block() {
    const double now = loop_.now();
    for (std::size_t c = 0; c < p_.creates_per_block; ++c) {
      Account acct{next_account_++, 0, {}};
      acct.item = account_item(p_.seed, acct.id, 0);
      accounts_.push_back(acct);
      place_at_origins(acct.item, now);
    }
    for (std::size_t m = 0; m < p_.modifies_per_block && !accounts_.empty();
         ++m) {
      Account& acct = accounts_[static_cast<std::size_t>(
          churn_rng_.next_below(accounts_.size()))];
      const StateItem old = acct.item;
      ++acct.version;
      acct.item = account_item(p_.seed, acct.id, acct.version);
      // The delete reaches only alive replicas: a crashed one keeps the
      // old version on "disk" and may resurrect it after recovery -- the
      // union still converges, which is what the gate checks.
      for (std::size_t i = 0; i < p_.replicas; ++i) {
        if (!down_[i]) (void)replicas_[i]->remove_item(old);
      }
      place_at_origins(acct.item, now);
    }
  }

  /// New versions land at 1-2 random alive replicas; anti-entropy carries
  /// them everywhere else (staleness clock starts now).
  void place_at_origins(const StateItem& item, double now) {
    birth_[item] = now;
    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < p_.replicas; ++i) {
      if (!down_[i]) alive.push_back(i);
    }
    if (alive.empty()) return;
    const std::size_t origins =
        1 + static_cast<std::size_t>(churn_rng_.next_below(2));
    for (std::size_t k = 0; k < origins; ++k) {
      const std::size_t who = alive[static_cast<std::size_t>(
          churn_rng_.next_below(alive.size()))];
      (void)replicas_[who]->add_item(item);
    }
  }

  void schedule_tick(std::size_t i) {
    loop_.schedule_in(p_.tick_dt, [this, i] {
      if (!running_) return;
      if (!down_[i]) replicas_[i]->tick(loop_.now());
      schedule_tick(i);
    });
  }

  void schedule_check() {
    loop_.schedule_in(p_.check_dt, [this] {
      if (!running_) return;
      const double now = loop_.now();
      if (now >= churn_end() && !paused_) {
        if (fingerprints_equal()) {
          converged_at_ = now;
          paused_ = true;
          drain_until_ = now + p_.drain_s;
          for (auto& r : replicas_) r->set_paused(true);
        } else if (now > churn_end() + p_.converge_cap_s) {
          running_ = false;  // divergence: report after the run
          return;
        }
      } else if (paused_ && now >= drain_until_) {
        running_ = false;
        return;
      }
      schedule_check();
    });
  }

  /// Cheap convergence probe (count + hash-xor); the byte-exact comparison
  /// runs once at the end.
  [[nodiscard]] bool fingerprints_equal() const {
    if (std::find(down_.begin(), down_.end(), true) != down_.end()) {
      return false;
    }
    std::uint64_t ref_xor = 0;
    std::size_t ref_count = 0;
    for (std::size_t i = 0; i < p_.replicas; ++i) {
      std::uint64_t x = 0;
      std::size_t count = 0;
      replicas_[i]->for_each_item([&](const HashedSymbol<StateItem>& hs) {
        x ^= hs.hash;
        ++count;
      });
      if (i == 0) {
        ref_xor = x;
        ref_count = count;
      } else if (x != ref_xor || count != ref_count) {
        return false;
      }
    }
    return true;
  }

  ChaosParams p_;
  obs::MetricsRegistry registry_;
  obs::Histogram* staleness_hist_ = nullptr;
  netsim::EventLoop loop_;
  std::vector<std::unique_ptr<Replica<StateItem>>> replicas_;
  std::vector<bool> down_;
  std::vector<Pipe> pipes_;
  /// Severed conduits: EventLoop closures hold raw endpoint pointers, so
  /// dead incarnations must outlive the run.
  std::vector<std::unique_ptr<net::SimConduit>> graveyard_;
  SplitMix64 churn_rng_;
  std::vector<Account> accounts_;
  std::uint64_t next_account_ = 0;
  std::map<StateItem, double> birth_;  ///< item -> origin-placement time
  std::vector<double> staleness_;
  std::vector<std::uint64_t> applied_;
  std::size_t crash_victim_ = 0;
  std::uint64_t incarnation_ = 0;
  bool running_ = true;
  bool paused_ = false;
  double converged_at_ = -1;
  double drain_until_ = 0;
};

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

int run_chaos(const Options& opts) {
  const ChaosParams params = pick_params(opts);
  JsonReport report(opts, "chaos_anti_entropy");
  Fleet fleet(params, opts);

  Timer wall;
  fleet.run();
  fleet.final_sweep();
  const double wall_s = wall.elapsed();

  const bool equal = fleet.byte_exact_equal();
  const std::size_t leaked = fleet.leaked_sessions();
  const auto staleness = fleet.staleness_samples();
  const double p50_exact = percentile(staleness, 0.50);
  const double p99_exact = percentile(staleness, 0.99);

  // Staleness quantiles now come off the registry histogram -- the same
  // snapshot path a live METRICS scrape reads. The retained sample vector
  // is the migration oracle: at the pinned seed both views rank the same
  // samples, so the log-linear estimate must agree with the exact
  // percentile to within one bucket (<= 1/32 relative + 1us unit slop).
  const obs::MetricsSnapshot snap = fleet.metrics();
  const auto* stale_series = snap.find_series("chaos_staleness_us");
  if (stale_series == nullptr) {
    std::fprintf(stderr, "chaos: staleness histogram missing from snapshot\n");
    return 1;
  }
  const obs::HistogramSnapshot& stale = stale_series->hist;
  const double p50 = stale.quantile(0.50) / 1e6;
  const double p99 = stale.quantile(0.99) / 1e6;
  if (stale.bucket_total() != staleness.size()) {
    std::fprintf(stderr, "chaos: histogram count %llu != %zu samples\n",
                 static_cast<unsigned long long>(stale.bucket_total()),
                 staleness.size());
    return 1;
  }
  const auto quantiles_agree = [](double est, double exact) {
    const double slop =
        exact / static_cast<double>(obs::HistogramLayout::kSub) + 2e-6;
    return est >= exact - slop && est <= exact + slop;
  };
  if (!quantiles_agree(p50, p50_exact) || !quantiles_agree(p99, p99_exact)) {
    std::fprintf(stderr,
                 "chaos: histogram quantiles diverge from exact percentiles "
                 "(p50 %.6f vs %.6f, p99 %.6f vs %.6f)\n",
                 p50, p50_exact, p99, p99_exact);
    return 1;
  }
  const std::uint64_t applied = fleet.items_applied();
  const double bytes_per_item =
      applied == 0 ? 0
                   : static_cast<double>(fleet.link_bytes()) /
                         static_cast<double>(applied);

  std::uint64_t aborted = 0;
  std::uint64_t retries = 0;
  std::uint64_t converged_rounds = 0;
  std::uint64_t reaped = 0;
  std::uint64_t evicted = 0;
  std::printf("# chaos anti-entropy: %zu replicas, %zu blocks, churn end "
              "%.1fs (sim)\n",
              fleet.replica_count(), params.blocks, fleet.churn_end());
  std::printf("# replica  items  rounds_ok  aborted  retries  reaped\n");
  for (std::size_t i = 0; i < fleet.replica_count(); ++i) {
    const auto s = fleet.stats_of(i);
    std::printf("%9zu %6zu %10llu %8llu %8llu %7llu\n", i + 1,
                fleet.item_count_of(i),
                static_cast<unsigned long long>(s.rounds_converged),
                static_cast<unsigned long long>(s.rounds_aborted),
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.engine.sessions_reaped));
    aborted += s.rounds_aborted;
    retries += s.retries;
    converged_rounds += s.rounds_converged;
    reaped += s.engine.sessions_reaped;
    evicted += s.engine.sessions_evicted;
  }
  std::printf("# staleness p50 %.3fs p99 %.3fs (%zu samples)\n", p50, p99,
              staleness.size());
  std::printf("# bytes/item %.1f  applied %llu  converge %.2fs  wall %.2fs\n",
              bytes_per_item, static_cast<unsigned long long>(applied),
              fleet.converge_latency(), wall_s);
  std::printf("# converged=%s byte_exact=%s leaked_sessions=%zu\n",
              fleet.converged_flag() ? "yes" : "NO", equal ? "yes" : "NO",
              leaked);

  report.row()
      .str("scenario", "chaos")
      .num("replicas", static_cast<std::uint64_t>(fleet.replica_count()))
      .num("blocks", static_cast<std::uint64_t>(params.blocks))
      .num("staleness_p50_s", p50)
      .num("staleness_p99_s", p99)
      .num("bytes_per_item", bytes_per_item)
      .num("converge_s", fleet.converge_latency())
      .num("sessions_aborted", aborted)
      .num("sessions_reaped", reaped + evicted)
      .num("rounds_converged", converged_rounds)
      .num("wall_s", wall_s);

  if (!fleet.converged_flag() || !equal) {
    std::fprintf(stderr,
                 "chaos: FLEET DID NOT CONVERGE (converged=%d exact=%d)\n",
                 fleet.converged_flag() ? 1 : 0, equal ? 1 : 0);
    return 1;
  }
  if (leaked != 0) {
    std::fprintf(stderr, "chaos: %zu LEAKED SESSIONS after quiesce\n",
                 leaked);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ribltx::bench

int main(int argc, char** argv) {
  const auto opts = ribltx::bench::Options::parse(argc, argv);
  return ribltx::bench::run_chaos(opts);
}
