// Extension bench: the four reconciliation backends driven through the
// SAME SyncEngine/SyncClient code path -- the repo's apples-to-apples
// reproduction of the paper's §7 comparison. For each backend and each
// difference size d it reports wire bytes down (SYMBOLS frames) and up
// (HELLO/ROUND/DONE), interaction rounds, and end-to-end CPU time for one
// full session.
//
// Expected shape (paper §7 + MTZ/L&M):
//  * riblt: zero rounds, bytes ~1.35-1.7x d plus per-symbol framing, CPU
//    flat in d (O(d log d) decode);
//  * iblt+strata: a flat ~24 KB estimator charge plus a 2-4x-overshot
//    table, 2+ rounds;
//  * cpi: near-optimal bytes (8 B per unit capacity) but O(d^3) decode --
//    CPU explodes orders of magnitude past the others;
//  * met-iblt: sawtooth bytes (extension-block quantization), 1 round per
//    extra block.
//
// CPI is capped at a smaller max d (like bench_extra_cpi_comparison) so
// the sweep finishes; '-' marks skipped cells.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "sync/engine.hpp"

namespace {

using namespace ribltx;
using sync::BackendId;

struct SessionOutcome {
  bool ok = false;
  std::uint64_t bytes_down = 0;
  std::uint64_t bytes_up = 0;
  std::uint32_t rounds = 0;
  std::uint32_t frames = 0;
  double cpu_s = 0;
};

/// One full engine session over an in-memory loopback: build server + one
/// client, pump to completion, return the accounting.
SessionOutcome run_session(BackendId backend, std::size_t shared,
                           std::size_t d, std::uint64_t seed) {
  std::vector<U64Symbol> both, only_a, only_b;
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < shared; ++i) {
    both.push_back(U64Symbol::from_u64(rng.next() | 1));
  }
  for (std::size_t i = 0; i < d / 2; ++i) {
    only_b.push_back(U64Symbol::from_u64(rng.next() | 1));
  }
  for (std::size_t i = 0; i < d - d / 2; ++i) {
    only_a.push_back(U64Symbol::from_u64(rng.next() | 1));
  }

  SessionOutcome out;
  bench::Timer timer;
  sync::SyncEngine<U64Symbol> engine;
  for (const auto& x : both) engine.add_item(x);
  for (const auto& x : only_a) engine.add_item(x);
  sync::SyncClient<U64Symbol> client(1, backend);
  for (const auto& y : both) client.add_item(y);
  for (const auto& y : only_b) client.add_item(y);

  std::uint64_t up = 0;
  const auto hello = client.hello();
  up += hello.size();
  for (const auto& response : engine.handle_frame(hello)) {
    (void)client.handle_frame(response);
  }
  for (std::size_t guard = 0; guard < 1'000'000; ++guard) {
    const auto frame = engine.next_frame(1);
    if (!frame) break;
    for (const auto& reply : client.handle_frame(*frame)) {
      up += reply.size();
      for (const auto& response : engine.handle_frame(reply)) {
        (void)client.handle_frame(response);
      }
    }
    if (client.complete() || client.failed()) break;
  }
  out.cpu_s = timer.elapsed();

  const sync::SessionStats* stats = engine.session(1);
  out.ok = client.complete() &&
           client.diff().remote.size() + client.diff().local.size() == d;
  out.bytes_down = stats->bytes_to_peer;
  out.bytes_up = up;
  out.rounds = stats->rounds;
  out.frames = stats->frames_sent;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  bench::JsonReport report(opts, "extra_backend_matrix");
  const std::size_t shared = opts.pick<std::size_t>(200, 2000, 20000);
  const std::size_t max_d = opts.pick<std::size_t>(16, 1000, 10000);
  const std::size_t cpi_max_d = opts.pick<std::size_t>(16, 256, 1000);

  constexpr BackendId kBackends[] = {BackendId::kRiblt, BackendId::kIbltStrata,
                                     BackendId::kCpi, BackendId::kMetIblt};

  std::printf("# Extra: backend matrix through one SyncEngine "
              "(8-byte items, %zu shared)\n", shared);
  std::printf("# bytes_down = SYMBOLS frames; bytes_up = HELLO+ROUND+DONE\n");
  std::printf("%-12s %-7s %-12s %-9s %-7s %-7s %-10s\n", "backend", "d",
              "bytes_down", "bytes_up", "rounds", "frames", "cpu_s");

  bool all_ok = true;
  for (std::size_t d = 1; d <= max_d; d *= 10) {
    for (const BackendId backend : kBackends) {
      if (backend == BackendId::kCpi && d > cpi_max_d) {
        std::printf("%-12s %-7zu %-12s %-9s %-7s %-7s %-10s\n",
                    sync::backend_name(backend), d, "-", "-", "-", "-", "-");
        continue;
      }
      const auto r =
          run_session(backend, shared, d, derive_seed(opts.seed, d));
      if (!r.ok) {
        std::printf("%-12s %-7zu FAILED\n", sync::backend_name(backend), d);
        all_ok = false;
        continue;
      }
      std::printf("%-12s %-7zu %-12llu %-9llu %-7u %-7u %-10.5f\n",
                  sync::backend_name(backend), d,
                  static_cast<unsigned long long>(r.bytes_down),
                  static_cast<unsigned long long>(r.bytes_up), r.rounds,
                  r.frames, r.cpu_s);
      report.row()
          .str("backend", sync::backend_name(backend))
          .num("d", d)
          .num("bytes_down", r.bytes_down)
          .num("bytes_up", r.bytes_up)
          .num("rounds", static_cast<std::uint64_t>(r.rounds))
          .num("frames", static_cast<std::uint64_t>(r.frames))
          .num("cpu_s", r.cpu_s);
      std::fflush(stdout);
    }
  }
  // Nonzero on any failed cell so the ctest smoke registration (and the CI
  // JSON step) cannot rot silently.
  return all_ok ? 0 : 1;
}
