// Microbenchmarks (google-benchmark) for the hot paths, including the
// ablations DESIGN.md calls out:
//  * alpha = 0.5 sqrt mapping vs generic-alpha pow mapping (§4.2's reason
//    for fixing alpha = 0.5);
//  * SipHash keyed checksums (§4.3: "negligible cost compared to sums");
//  * symbol XOR across item sizes (the Fig 11 cost driver);
//  * encoder/decoder per-symbol costs and the §7.2 items-per-second claim;
//  * GF(2^64) multiply (the PinSketch cost unit);
//  * atomic vs plain coded-cell XOR (the multi-writer churn trade):
//    SequenceCache's materialized cells are AtomicCodedCells so concurrent
//    writers need no lock, which taxes the SINGLE-writer ingest path with
//    uncontended lock-prefixed RMWs. In isolation that tax is large by
//    construction (BM_AtomicCellXor vs BM_PlainCellXor measures a lock
//    xadd per word against a register XOR: ~8x / ~15x at 8 / 32 bytes),
//    so the regression budget is judged where it is meaningful -- end to
//    end: BM_SequenceCacheChurn (the full lock-free churn op) must stay
//    within ~15% of BM_SketchAddSymbol (the plain-cell walk at the same
//    m; measured +16%), the serving-path churn_us in
//    bench_extra_serving_throughput within ~10-15% of its pre-lock-free
//    value (measured +12% mean, inside that bench's run-to-run noise
//    band), and fig08/fig10 (pure Encoder paths, no cache) exactly 0%.
//    If the end-to-end tax ever outgrows that, the escape hatch is a
//    plain-cell fast path taken while the cache has never seen a second
//    writer thread -- not needed at the current numbers.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/atomic_cell.hpp"
#include "core/riblt.hpp"
#include "net/frame_conduit.hpp"
#include "pinsketch/pinsketch.hpp"

namespace {

using namespace ribltx;

void BM_MappingAdvanceSqrt(benchmark::State& state) {
  // Ablation (a): the production alpha = 0.5 sampler (exact inverse, sqrt).
  std::uint64_t seed = 0x12345;
  for (auto _ : state) {
    IndexMapping m(seed++);
    std::uint64_t last = 0;
    for (int i = 0; i < 24; ++i) last = m.advance();
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() * 24);
}
BENCHMARK(BM_MappingAdvanceSqrt);

void BM_MappingAdvanceGenericPow(benchmark::State& state) {
  // Ablation (b): generic alpha (pow path; paper: "significantly slower").
  std::uint64_t seed = 0x12345;
  for (auto _ : state) {
    GenericMapping m(0.68, seed++);
    std::uint64_t last = 0;
    for (int i = 0; i < 24; ++i) last = m.advance();
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() * 24);
}
BENCHMARK(BM_MappingAdvanceGenericPow);

template <std::size_t N>
void BM_SipHash(benchmark::State& state) {
  const auto sym = ByteSymbol<N>::random(7);
  const SipKey key{1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(siphash24(key, sym.bytes()));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(N));
}
BENCHMARK(BM_SipHash<8>);
BENCHMARK(BM_SipHash<32>);
BENCHMARK(BM_SipHash<1024>);

template <std::size_t N>
void BM_SipHash4(benchmark::State& state) {
  // The decoder's batched checksum verification: four interleaved SipHash
  // lanes per dispatch. Compare items/s against BM_SipHash to see the ILP
  // win; a regression here shows up in fig09 before anything else.
  const auto s0 = ByteSymbol<N>::random(11);
  const auto s1 = ByteSymbol<N>::random(12);
  const auto s2 = ByteSymbol<N>::random(13);
  const auto s3 = ByteSymbol<N>::random(14);
  const ByteSymbol<N>* const syms[4] = {&s0, &s1, &s2, &s3};
  const SipHasher<ByteSymbol<N>> hasher(SipKey{1, 2});
  std::uint64_t out[4];
  for (auto _ : state) {
    hasher.hash4(syms, out);
    benchmark::DoNotOptimize(out[0] ^ out[1] ^ out[2] ^ out[3]);
  }
  state.SetItemsProcessed(state.iterations() * 4);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(4 * N));
}
BENCHMARK(BM_SipHash4<8>);
BENCHMARK(BM_SipHash4<32>);

template <std::size_t N>
void BM_SubtractRun(benchmark::State& state) {
  // The vectorizable contiguous cell-wise subtraction every sketch family
  // leans on (Sketch/Iblt/StrataEstimator/MetIblt + the MET arrival path).
  constexpr std::size_t kCells = 1024;
  std::vector<CodedSymbol<ByteSymbol<N>>> dst(kCells), src(kCells);
  const SipHasher<ByteSymbol<N>> hasher;
  SplitMix64 rng(15);
  for (std::size_t i = 0; i < kCells; ++i) {
    dst[i].apply(hasher.hashed(ByteSymbol<N>::random(rng.next())),
                 Direction::kAdd);
    src[i].apply(hasher.hashed(ByteSymbol<N>::random(rng.next())),
                 Direction::kAdd);
  }
  for (auto _ : state) {
    subtract_run<ByteSymbol<N>>(dst, src);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kCells));
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(kCells * sizeof(CodedSymbol<ByteSymbol<N>>)));
}
BENCHMARK(BM_SubtractRun<8>);
BENCHMARK(BM_SubtractRun<32>);

template <std::size_t N>
void BM_SymbolXor(benchmark::State& state) {
  auto a = ByteSymbol<N>::random(1);
  const auto b = ByteSymbol<N>::random(2);
  for (auto _ : state) {
    a ^= b;
    benchmark::DoNotOptimize(a);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(N));
}
BENCHMARK(BM_SymbolXor<8>);
BENCHMARK(BM_SymbolXor<92>);
BENCHMARK(BM_SymbolXor<2048>);
BENCHMARK(BM_SymbolXor<32768>);

template <std::size_t N>
void BM_PlainCellXor(benchmark::State& state) {
  // Baseline: one churn op's worth of work against a plain CodedSymbol
  // cell (what Sketch and the single-threaded paths pay per touched cell).
  const SipHasher<ByteSymbol<N>> hasher;
  const auto hs = hasher.hashed(ByteSymbol<N>::random(21));
  CodedSymbol<ByteSymbol<N>> cell;
  for (auto _ : state) {
    cell.apply(hs, Direction::kAdd);
    benchmark::DoNotOptimize(cell);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(N));
}
BENCHMARK(BM_PlainCellXor<8>);
BENCHMARK(BM_PlainCellXor<32>);

template <std::size_t N>
void BM_AtomicCellXor(benchmark::State& state) {
  // The same op against an AtomicCodedCell with zero contention -- the
  // single-writer overhead SequenceCache now pays per touched cell. This
  // is the ablation, not the budget gate: lock-prefixed RMWs vs register
  // XORs is ~8x in isolation, but each churn op touches only ~log(m)
  // cells amid hashing/mapping work, so the end-to-end pairs in the
  // header comment are what the budget is judged on.
  const SipHasher<ByteSymbol<N>> hasher;
  const auto hs = hasher.hashed(ByteSymbol<N>::random(21));
  AtomicCodedCell<ByteSymbol<N>> cell;
  for (auto _ : state) {
    cell.apply(hs, Direction::kAdd);
    benchmark::DoNotOptimize(cell);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(N));
}
BENCHMARK(BM_AtomicCellXor<8>);
BENCHMARK(BM_AtomicCellXor<32>);

void BM_SequenceCacheChurn(benchmark::State& state) {
  // End-to-end single-writer churn against the lock-free cache: enter the
  // lane, reserve a version, walk the atomic cells, register in the lane
  // window. Compare against BM_SketchAddSymbol for the full path tax.
  auto cache = SequenceCache<U64Symbol>(10'000);
  SplitMix64 rng(22);
  for (auto _ : state) {
    cache.add_symbol(U64Symbol::random(rng.next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequenceCacheChurn);

void BM_EncoderProduceNext(benchmark::State& state) {
  // Per-coded-symbol cost at d = 1024 (paper §7.2: millions of items/s).
  const auto d = static_cast<std::size_t>(state.range(0));
  Encoder<U64Symbol> enc;
  SplitMix64 rng(3);
  for (std::size_t i = 0; i < d; ++i) {
    enc.add_symbol(U64Symbol::random(rng.next()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.produce_next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncoderProduceNext)->Arg(1024)->Arg(65536);

void BM_DecoderRoundTrip(benchmark::State& state) {
  // Whole-difference decode; items/second is the §7.2 throughput metric.
  const auto d = static_cast<std::size_t>(state.range(0));
  Encoder<U64Symbol> enc;
  SplitMix64 rng(4);
  for (std::size_t i = 0; i < d; ++i) {
    enc.add_symbol(U64Symbol::random(rng.next()));
  }
  std::vector<CodedSymbol<U64Symbol>> cells;
  for (std::size_t i = 0; i < 2 * d + 16; ++i) {
    cells.push_back(enc.produce_next());
  }
  for (auto _ : state) {
    Decoder<U64Symbol> dec;
    for (const auto& c : cells) {
      dec.add_coded_symbol(c);
      if (dec.decoded()) break;
    }
    benchmark::DoNotOptimize(dec.decoded());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d));
}
BENCHMARK(BM_DecoderRoundTrip)->Arg(1024);

void BM_SketchAddSymbol(benchmark::State& state) {
  Sketch<U64Symbol> sketch(10'000);
  SplitMix64 rng(5);
  for (auto _ : state) {
    sketch.add_symbol(U64Symbol::random(rng.next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SketchAddSymbol);

void BM_FrameConduitEmit(benchmark::State& state) {
  // The serving path's per-frame allocation cost: send() materializes a
  // length-prefix buffer and feed() materializes each inbound frame, both
  // on the serving thread. With pooling (range(0) = 1, the production
  // default) completed buffers recycle through the conduit's free list;
  // without it every frame is a fresh heap vector. The before/after pair
  // is ISSUE 8's S3 measurement -- steady-state emit+consume should show
  // the pooled path dodging the allocator entirely.
  // One conduit plays both directions, like a server conn: consume()
  // recycles the emitted prefix+payload buffers, feed() and the next
  // send() draw them back out, so the pooled steady state allocates only
  // the caller's frame copy (which both modes pay identically).
  const bool pooled = state.range(0) != 0;
  net::FrameConduit conduit(net::FrameConduit::kDefaultMaxFrame, pooled);
  std::vector<std::byte> frame(512);
  SplitMix64 rng(23);
  for (auto& b : frame) b = static_cast<std::byte>(rng.next());
  std::span<const std::byte> chunks[8];
  for (auto _ : state) {
    conduit.send(std::vector<std::byte>(frame));
    const std::size_t n = conduit.gather(chunks);
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      conduit.feed(chunks[i]);
      bytes += chunks[i].size();
    }
    conduit.consume(bytes);
    benchmark::DoNotOptimize(conduit.next_frame());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_FrameConduitEmit)->Arg(1)->Arg(0);

void BM_Gf64Mul(benchmark::State& state) {
  pinsketch::GF64 a(0x123456789abcdef1ULL), b(0xfedcba9876543211ULL);
  for (auto _ : state) {
    a = a * b;
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Gf64Mul);

void BM_PinSketchAdd(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  pinsketch::PinSketch sketch(capacity);
  SplitMix64 rng(6);
  for (auto _ : state) {
    sketch.add_symbol(U64Symbol::from_u64(rng.next() | 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PinSketchAdd)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
