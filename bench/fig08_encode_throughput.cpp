// Fig 8: encoding throughput and time vs difference size, 8-byte items,
// for set sizes N = 1,000,000 (Fig 8a) and N = 10,000 (Fig 8b).
//
// Throughput is defined as in the paper: difference size divided by the
// time to generate enough coded symbols for successful reconciliation
// (1.35d symbols for Rateless IBLT, d syndromes for PinSketch).
//
// Expected shape: Rateless IBLT throughput grows almost linearly with d
// (cost per coded symbol shrinks as the mapping gets sparser), while
// PinSketch's converges to a constant (every syndrome touches every item);
// the gap reaches 2-2000x. Our portable GF(2^64) multiply is slower than
// minisketch's CLMUL path, so PinSketch absolute numbers are lower than the
// paper's; the scaling (and therefore the gap's growth) is preserved --
// see DESIGN.md §1.4.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "pinsketch/pinsketch.hpp"

namespace {

using namespace ribltx;

double riblt_encode_seconds(std::size_t n, std::size_t d,
                            std::uint64_t seed) {
  // Symbols needed ~ 1.35 d (paper §5); round up to be safe.
  const auto symbols = static_cast<std::size_t>(1.35 * static_cast<double>(d)) + 8;
  Encoder<U64Symbol> enc;
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    enc.add_symbol(U64Symbol::random(rng.next()));
  }
  bench::Timer timer;
  for (std::size_t i = 0; i < symbols; ++i) {
    volatile auto cell = enc.produce_next();
    (void)cell;
  }
  return timer.elapsed();
}

double pinsketch_encode_seconds(std::size_t n, std::size_t d,
                                std::uint64_t seed) {
  pinsketch::PinSketch sketch(d);
  SplitMix64 rng(seed);
  bench::Timer timer;
  for (std::size_t i = 0; i < n; ++i) {
    sketch.add_symbol(U64Symbol::from_u64(rng.next() | 1));
  }
  return timer.elapsed();
}

void run_panel(const char* name, std::size_t n, std::size_t max_d,
               std::size_t pin_max_d, std::uint64_t seed) {
  std::printf("# Fig 8%s: N = %zu\n", name, n);
  std::printf("%-8s %-14s %-14s %-14s %-14s\n", "d", "riblt_s",
              "riblt_d_per_s", "pinsketch_s", "pin_d_per_s");
  for (std::size_t d = 1; d <= max_d; d *= 10) {
    const double rt = riblt_encode_seconds(n, d, seed + d);
    double pt = -1;
    if (d <= pin_max_d) pt = pinsketch_encode_seconds(n, d, seed + d + 1);
    std::printf("%-8zu %-14.5f %-14.1f", d, rt, static_cast<double>(d) / rt);
    if (pt >= 0) {
      std::printf(" %-14.5f %-14.1f\n", pt, static_cast<double>(d) / pt);
    } else {
      std::printf(" %-14s %-14s\n", "-", "-");
    }
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  // PinSketch encode is O(N*d) field multiplies; cap d to keep the default
  // run interactive (--full raises the cap).
  if (opts.smoke) {
    run_panel("a", 10'000, 1'000, 100, opts.seed);
  } else if (opts.full) {
    run_panel("a", 1'000'000, 100'000, 1'000, opts.seed);
    run_panel("b", 10'000, 1'000, 1'000, opts.seed + 99);
  } else {
    run_panel("a", 1'000'000, 100'000, 100, opts.seed);
    run_panel("b", 10'000, 1'000, 1'000, opts.seed + 99);
  }
  return 0;
}
