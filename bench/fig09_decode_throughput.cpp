// Fig 9: decoding throughput and time vs difference size, 8-byte items.
//
// Decoding operates on the difference only, so the set size is irrelevant
// (paper §7.2). Expected shape: Rateless IBLT decode is O(d log d) --
// throughput drops only ~2x over a 10^4x growth in d -- while PinSketch is
// O(d^2) (Berlekamp-Massey + root finding), so its throughput collapses;
// the paper reports a 10-10^7x gap. Default caps PinSketch at d = 512 to
// stay interactive (--full raises to 2048; the quadratic wall is already
// unmistakable).
#include <cstdio>

#include "benchutil.hpp"
#include "pinsketch/pinsketch.hpp"

namespace {

using namespace ribltx;

double riblt_decode_seconds(std::size_t d, std::uint64_t seed) {
  Encoder<U64Symbol> enc;
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < d; ++i) {
    enc.add_symbol(U64Symbol::random(rng.next()));
  }
  // Materialize the stream first; the decoder alone is timed.
  std::vector<CodedSymbol<U64Symbol>> cells;
  cells.reserve(static_cast<std::size_t>(2.2 * static_cast<double>(d)) + 16);
  for (std::size_t i = 0; i < cells.capacity(); ++i) {
    cells.push_back(enc.produce_next());
  }
  bench::Timer timer;
  Decoder<U64Symbol> dec;
  for (const auto& c : cells) {
    dec.add_coded_symbol(c);
    if (dec.decoded()) break;
  }
  const double t = timer.elapsed();
  if (!dec.decoded()) return riblt_decode_seconds(d, seed + 1);  // rare tail
  return t;
}

double pinsketch_decode_seconds(std::size_t d, std::uint64_t seed,
                                bool& ok) {
  pinsketch::PinSketch sketch(d);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < d; ++i) {
    sketch.add_symbol(U64Symbol::from_u64(rng.next() | 1));
  }
  bench::Timer timer;
  const auto r = sketch.decode();
  ok = r.success && r.difference.size() == d;
  return timer.elapsed();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  bench::JsonReport report(opts, "fig09_decode_throughput");
  const std::size_t riblt_max =
      opts.pick<std::size_t>(1'000, 100'000, 1'000'000);
  const std::size_t pin_max = opts.pick<std::size_t>(64, 512, 2048);

  std::printf("# Fig 9: decode throughput/time vs d (8-byte items)\n");
  std::printf("%-8s %-14s %-14s %-14s %-14s %-4s\n", "d", "riblt_s",
              "riblt_d_per_s", "pinsketch_s", "pin_d_per_s", "ok");
  for (std::size_t d = 1; d <= riblt_max; d *= 4) {
    const double rt = riblt_decode_seconds(d, derive_seed(opts.seed, d));
    std::printf("%-8zu %-14.6f %-14.1f", d, rt, static_cast<double>(d) / rt);
    auto& row = report.row().num("d", d).num("riblt_s", rt).num(
        "riblt_d_per_s", static_cast<double>(d) / rt);
    if (d <= pin_max) {
      bool ok = false;
      const double pt =
          pinsketch_decode_seconds(d, derive_seed(opts.seed, d + 1), ok);
      std::printf(" %-14.6f %-14.1f %-4s\n", pt, static_cast<double>(d) / pt,
                  ok ? "y" : "N");
      row.num("pinsketch_s", pt);
    } else {
      std::printf(" %-14s %-14s %-4s\n", "-", "-", "-");
    }
    std::fflush(stdout);
  }
  return 0;
}
