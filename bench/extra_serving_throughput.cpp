// Extension bench (ISSUE 3 acceptance): server-side cost of opening and
// starting a rateless session, shared-SequenceCache serving vs the old
// per-session re-encode, across set sizes n and a fleet of sessions.
//
// "hello_us" is the server CPU from HELLO arrival to the first SYMBOLS
// frame handed to the transport -- the paper's §2 serving model says this
// must not depend on n (the coded-symbol prefix is universal and cached),
// while the re-encode baseline pays an O(n) re-hash + heap build per
// session. Expected shape: shared-cache hello_us flat in n (after the
// first session materializes the prefix); re-encode hello_us growing
// linearly; the ratio crossing 10x well before n = 10^6.
//
// Also reports cache churn cost (O(log m) per item) while sessions are
// open, since that is the operation that replaces full re-encodes.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "benchutil.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sync/engine.hpp"

namespace {

using namespace ribltx;

/// Builds the HELLO frame for `sid` directly (no SyncClient: a client
/// would pay O(n) itself and we are measuring the server).
std::vector<std::byte> make_hello(std::uint64_t sid) {
  sync::v2::Frame hello;
  hello.type = sync::v2::FrameType::kHello;
  hello.session_id = sid;
  hello.backend = static_cast<std::uint8_t>(sync::BackendId::kRiblt);
  hello.item_size = static_cast<std::uint32_t>(U64Symbol::kSize);
  hello.checksum_len = 8;
  return sync::v2::encode_frame(hello);
}

struct ModeResult {
  double build_s = 0;        ///< one-time set build / hash / warm-up cost
  double hello_us = 0;       ///< mean HELLO -> first SYMBOLS, per session
  double sessions_per_s = 0;
};

/// Shared-cache path: one engine, `sessions` rateless sessions opened
/// against it; each session measured from HELLO to its first frame. The
/// very first session triggers the one-time lazy materialization of the
/// cache prefix; that is warm-up (a server pays it once per lifetime, not
/// per peer), so it is folded into build_s and the steady-state per-session
/// cost is what hello_us reports. With `reg`/`tracer` set the engine runs
/// fully instrumented (registry cells + session tracer) -- the attached
/// half of the observability-overhead gate below.
ModeResult run_shared(std::size_t n, std::size_t sessions,
                      std::uint64_t seed,
                      obs::MetricsRegistry* reg = nullptr,
                      obs::Tracer* tracer = nullptr) {
  ModeResult out;
  sync::EngineOptions options;
  options.max_sessions = sessions + 16;
  options.metrics = reg;
  options.tracer = tracer;
  sync::SyncEngine<U64Symbol> engine({}, options);
  bench::Timer build;
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    engine.add_item(U64Symbol::random(rng.next()));
  }
  {
    const std::uint64_t warm_sid = sessions + 1;
    (void)engine.handle_frame(make_hello(warm_sid));
    if (!engine.next_frame(warm_sid)) std::abort();
    (void)engine.close_session(warm_sid);
  }
  out.build_s = build.elapsed();

  bench::Timer serve;
  for (std::size_t s = 0; s < sessions; ++s) {
    const std::uint64_t sid = s + 1;
    (void)engine.handle_frame(make_hello(sid));
    const auto frame = engine.next_frame(sid);
    if (!frame) std::abort();  // rateless sessions always have symbols
  }
  const double total = serve.elapsed();
  out.hello_us = total / static_cast<double>(sessions) * 1e6;
  out.sessions_per_s = static_cast<double>(sessions) / total;
  return out;
}

/// Re-encode baseline: what SyncEngine did before the shared cache -- a
/// fresh standalone rateless encoder per session, fed the whole set, then
/// the first ~frame worth of symbols.
ModeResult run_reencode(std::size_t n, std::size_t sessions,
                        std::uint64_t seed) {
  ModeResult out;
  std::vector<U64Symbol> items;
  items.reserve(n);
  bench::Timer build;
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back(U64Symbol::random(rng.next()));
  }
  out.build_s = build.elapsed();

  bench::Timer serve;
  for (std::size_t s = 0; s < sessions; ++s) {
    sync::RibltEncoderBackend<U64Symbol> enc;
    for (const auto& x : items) enc.add_item(x);
    ByteWriter payload;
    if (enc.emit(payload, 1024) == 0) std::abort();
  }
  const double total = serve.elapsed();
  out.hello_us = total / static_cast<double>(sessions) * 1e6;
  out.sessions_per_s = static_cast<double>(sessions) / total;
  return out;
}

/// Churn cost while `open_sessions` snapshot cursors are live: the O(log m)
/// per-item update that replaces whole-set re-encodes.
double churn_us_per_item(std::size_t n, std::size_t open_sessions,
                         std::uint64_t seed) {
  sync::EngineOptions options;
  options.max_sessions = open_sessions + 16;
  sync::SyncEngine<U64Symbol> engine({}, options);
  SplitMix64 rng(seed);
  std::vector<U64Symbol> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back(U64Symbol::random(rng.next()));
    engine.add_item(items.back());
  }
  for (std::size_t s = 0; s < open_sessions; ++s) {
    (void)engine.handle_frame(make_hello(s + 1));
    (void)engine.next_frame(s + 1);  // pin each session's snapshot cursor
  }
  constexpr std::size_t kOps = 512;
  bench::Timer timer;
  for (std::size_t i = 0; i < kOps; ++i) {
    engine.remove_item(items[i]);
    engine.add_item(U64Symbol::random(rng.next()));
  }
  return timer.elapsed() / (2.0 * kOps) * 1e6;
}

/// Process-wide registry for the overhead gate's attached runs (the
/// registry must outlive every engine bound to it; a static mirrors how a
/// server process owns one registry for its lifetime).
obs::MetricsRegistry& obs_registry() {
  static obs::MetricsRegistry reg;
  return reg;
}

struct OverheadResult {
  double detached_per_s = 0;    ///< detached sessions/s of the median pair
  double attached_per_s = 0;    ///< attached sessions/s of the median pair
  double overhead_pct = 0;      ///< median over paired trials (reported)
  double overhead_min_pct = 0;  ///< min over paired trials (gated)
};

/// Observability-overhead gate: the same serving loop with the registry
/// and tracer attached vs detached (null taps -- one untaken branch per
/// site). Each trial runs the pair back-to-back (alternating order so
/// neither side systematically inherits a warm cache or a noisy
/// scheduler slice) and yields one paired overhead sample. Noise only
/// ever inflates the apparent overhead -- the instrumented build cannot
/// be faster than its own uninstrumented loop -- so the minimum across
/// trials is the least-contaminated estimate, and that is what the
/// <= 2% acceptance bar judges. The median pair is what gets reported
/// (the min can swing far negative on a loaded machine, which would be
/// a misleading headline number). The attached runs record into `reg`,
/// which the caller reads for the snapshot-path quantile report.
OverheadResult measure_obs_overhead(std::size_t n, std::size_t sessions,
                                    int trials, std::uint64_t seed,
                                    obs::MetricsRegistry& reg) {
  struct Pair {
    double detached = 0, attached = 0, pct = 0;
  };
  std::vector<Pair> pairs;
  pairs.reserve(static_cast<std::size_t>(trials));
  obs::Tracer tracer;
  for (int t = 0; t < trials; ++t) {
    ModeResult detached, attached;
    if ((t & 1) == 0) {
      detached = run_shared(n, sessions, seed);
      attached = run_shared(n, sessions, seed, &reg, &tracer);
    } else {
      attached = run_shared(n, sessions, seed, &reg, &tracer);
      detached = run_shared(n, sessions, seed);
    }
    Pair p;
    p.detached = detached.sessions_per_s;
    p.attached = attached.sessions_per_s;
    p.pct = (p.detached - p.attached) / p.detached * 100.0;
    pairs.push_back(p);
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.pct < b.pct; });
  const Pair& median = pairs[pairs.size() / 2];
  OverheadResult out;
  out.detached_per_s = median.detached;
  out.attached_per_s = median.attached;
  out.overhead_pct = median.pct;
  out.overhead_min_pct = pairs.front().pct;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  bench::JsonReport report(opts, "extra_serving_throughput");

  std::vector<std::size_t> sizes;
  if (opts.smoke) {
    sizes = {1'000};
  } else if (opts.full) {
    sizes = {10'000, 100'000, 1'000'000};
  } else {
    sizes = {10'000, 100'000};
  }
  const std::size_t sessions = opts.pick<std::size_t>(8, 100, 100);

  std::printf("# Extra: rateless serving throughput, shared SequenceCache "
              "vs per-session re-encode\n");
  std::printf("# hello_us = server CPU from HELLO to first SYMBOLS frame "
              "(8-byte items, %zu sessions)\n", sessions);
  std::printf("%-9s %-10s %-14s %-14s %-14s %-10s %-12s\n", "n", "mode",
              "build_s", "hello_us", "sessions_per_s", "speedup",
              "churn_us");

  bool ok = true;
  for (const std::size_t n : sizes) {
    // The O(n)-per-session baseline gets a smaller fleet at huge n so the
    // sweep terminates; per-session cost is what matters.
    const std::size_t base_sessions =
        n >= 1'000'000 ? std::min<std::size_t>(sessions, 10) : sessions;
    const auto shared = run_shared(n, sessions, opts.seed + n);
    const auto reencode = run_reencode(n, base_sessions, opts.seed + n);
    const double speedup = reencode.hello_us / shared.hello_us;
    const double churn_us = churn_us_per_item(n, 4, opts.seed + n + 1);

    std::printf("%-9zu %-10s %-14.4f %-14.2f %-14.1f %-10s %-12s\n", n,
                "shared", shared.build_s, shared.hello_us,
                shared.sessions_per_s, "-", "-");
    std::printf("%-9zu %-10s %-14.4f %-14.2f %-14.1f %-10.1f %-12.3f\n", n,
                "reencode", reencode.build_s, reencode.hello_us,
                reencode.sessions_per_s, speedup, churn_us);
    report.row()
        .str("mode", "shared")
        .num("n", n)
        .num("sessions", sessions)
        .num("build_s", shared.build_s)
        .num("hello_us", shared.hello_us)
        .num("sessions_per_s", shared.sessions_per_s)
        .num("churn_us", churn_us);
    report.row()
        .str("mode", "reencode")
        .num("n", n)
        .num("sessions", base_sessions)
        .num("build_s", reencode.build_s)
        .num("hello_us", reencode.hello_us)
        .num("sessions_per_s", reencode.sessions_per_s)
        .num("speedup", speedup);
    std::fflush(stdout);
    // Sanity floor rather than a perf assertion: shared serving must never
    // be slower than re-encoding the set per session.
    if (speedup < 1.0) ok = false;
  }

  // Observability overhead gate (ISSUE 10 acceptance): attaching the
  // metrics registry + tracer to the hot serving loop must cost <= 2%
  // sessions/s vs detached. Enough sessions that each timed run is tens
  // of milliseconds (steady_clock noise << 1%), min over paired trials.
  const std::size_t ovh_sessions =
      opts.pick<std::size_t>(12000, 16000, 16000);
  const auto ovh = measure_obs_overhead(sizes.front(), ovh_sessions,
                                        /*trials=*/9, opts.seed + 17,
                                        obs_registry());
  std::printf("# obs overhead: detached %.0f/s attached %.0f/s (median "
              "%.2f%%, min %.2f%%, gate 2%% on min)\n",
              ovh.detached_per_s, ovh.attached_per_s, ovh.overhead_pct,
              ovh.overhead_min_pct);
  const obs::MetricsSnapshot snap = obs_registry().snapshot();
  auto& ovh_row = report.row()
                      .str("mode", "obs_overhead")
                      .num("n", sizes.front())
                      .num("sessions", ovh_sessions)
                      .num("sessions_per_s", ovh.attached_per_s)
                      .num("sessions_per_s_detached", ovh.detached_per_s)
                      .num("obs_overhead_pct", ovh.overhead_pct);
  // Quantiles read off the registry snapshot -- the same path the live
  // METRICS scrape renders -- instead of a private sample vector.
  if (const auto* cpu = snap.find_series("riblt_serve_cpu_us",
                                         {{"backend", "riblt"}})) {
    ovh_row.hist("serve_cpu_us", cpu->hist);
  }
  if (ovh.overhead_min_pct > 2.0) {
    std::fprintf(stderr,
                 "serving: observability overhead %.2f%% exceeds 2%% gate\n",
                 ovh.overhead_min_pct);
    ok = false;
  }
  return ok ? 0 : 1;
}
