// Fig 12: Ethereum ledger synchronization -- completion time and data
// transmitted vs staleness, 50 ms delay / 20 Mbps (the paper's link).
//
// Panel (a): staleness 20 min .. 100 h; panel (b): 1 .. 20 min.
// Expected shape (paper §7.3): both metrics grow ~linearly with staleness
// for both protocols; Rateless IBLT is 4.8-13.6x faster and moves 4.4-8.6x
// fewer bytes than Merkle state heal (our shallower trie yields smaller --
// but still multi-x -- byte ratios; see ledgerbench.hpp).
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "ledgerbench.hpp"

namespace {

using namespace ribltx;

void run_panel(const char* title, const bench::EthWorkbench& wb,
               const std::vector<double>& staleness_s) {
  std::printf("# %s\n", title);
  std::printf("%-12s %-9s %-10s %-10s %-10s %-10s %-8s %-8s\n",
              "staleness_s", "d", "riblt_s", "riblt_MB", "heal_s", "heal_MB",
              "t_ratio", "B_ratio");
  const netsim::LinkConfig link;  // 50 ms / 20 Mbps defaults
  for (const double s : staleness_s) {
    const auto blocks = ledger::blocks_for_staleness(wb.params(), s);
    const auto plans = wb.plans_for(blocks);
    const auto riblt = sync::run_riblt_session(plans.riblt, link);
    const auto heal = sync::run_heal_session(plans.heal, link);
    const double riblt_mb =
        static_cast<double>(riblt.bytes_down + riblt.bytes_up) / 1e6;
    const double heal_mb =
        static_cast<double>(heal.bytes_down + heal.bytes_up) / 1e6;
    std::printf(
        "%-12.0f %-9zu %-10.2f %-10.3f %-10.2f %-10.3f %-8.2f %-8.2f\n", s,
        plans.d, riblt.completion_s, riblt_mb, heal.completion_s, heal_mb,
        heal.completion_s / riblt.completion_s, heal_mb / riblt_mb);
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const auto params = bench::default_eth_params(opts);
  // "Latest" sits past block 0 far enough that every staleness in the
  // sweep fits before it (100 h normally, 10 h under --smoke).
  const double max_staleness_s = opts.smoke ? 10.0 * 3600.0 : 100.0 * 3600.0;
  const std::uint64_t latest =
      ledger::blocks_for_staleness(params, max_staleness_s) + 10;
  bench::EthWorkbench wb(params, latest);

  std::printf("# Fig 12: Ethereum sync vs staleness (N=%zu, %zu+%zu "
              "updates/block, 50ms/20Mbps)\n",
              params.base_accounts, params.modifies_per_block,
              params.creates_per_block);

  const std::vector<double> panel_a =
      opts.smoke ? std::vector<double>{1200, 10 * 3600.0}
      : opts.full
          ? std::vector<double>{1200, 10 * 3600.0, 20 * 3600.0,
                                30 * 3600.0, 40 * 3600.0, 50 * 3600.0,
                                60 * 3600.0, 70 * 3600.0, 80 * 3600.0,
                                90 * 3600.0, 100 * 3600.0}
          : std::vector<double>{1200, 10 * 3600.0, 30 * 3600.0,
                                50 * 3600.0, 70 * 3600.0, 100 * 3600.0};
  char title_a[80];
  std::snprintf(title_a, sizeof(title_a),
                "Fig 12a: staleness %.0f min .. %.0f h", panel_a.front() / 60.0,
                panel_a.back() / 3600.0);
  run_panel(title_a, wb, panel_a);

  const std::vector<double> panel_b =
      opts.smoke ? std::vector<double>{60, 600}
      : opts.full ? std::vector<double>{60,  120, 240, 360, 480, 600,
                                        720, 840, 960, 1080, 1200}
                  : std::vector<double>{60, 240, 600, 1200};
  run_panel("Fig 12b: staleness 1 .. 20 min", wb, panel_b);
  return 0;
}
