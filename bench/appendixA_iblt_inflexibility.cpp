// Appendix A: why regular IBLTs cannot be rateless.
//
// Theorem A.1: an IBLT with m cells holding n > m source symbols recovers
// *nothing* with probability approaching 1 exponentially in n/m.
// Theorem A.2: decoding from a prefix (the first eta*n cells of a table
// parameterized for m > eta*n) fails exponentially in 1 - eta*n/m -- items
// hash across the whole table, so cells outside the prefix are lost.
//
// Together these justify the rateless design: a fixed IBLT can neither
// absorb more differences than provisioned nor be cheaply truncated.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"

namespace {

using namespace ribltx;

/// Bench-local fixed IBLT with the partitioned k-subtable mapping, exposing
/// prefix decoding (the public iblt:: library deliberately has no such
/// API -- that is the point of the theorem).
class PrefixableIblt {
 public:
  PrefixableIblt(std::size_t m, unsigned k) : k_(k), sub_(m / k), cells_(m) {}

  void add(const HashedSymbol<U64Symbol>& s) {
    for (unsigned j = 0; j < k_; ++j) {
      cells_[index(s.hash, j)].apply(s, Direction::kAdd);
    }
  }

  /// Peels using only cells [0, limit); returns recovered symbol count.
  [[nodiscard]] std::size_t peel_prefix(std::size_t limit,
                                        std::size_t total) const {
    std::vector<CodedSymbol<U64Symbol>> cells(cells_.begin(),
                                              cells_.begin() + static_cast<std::ptrdiff_t>(limit));
    const SipHasher<U64Symbol> hasher;
    std::vector<std::size_t> queue;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].is_pure(hasher)) queue.push_back(i);
    }
    std::size_t recovered = 0;
    while (!queue.empty()) {
      const std::size_t i = queue.back();
      queue.pop_back();
      if (!cells[i].is_pure(hasher)) continue;
      const HashedSymbol<U64Symbol> sym{cells[i].sum, cells[i].checksum};
      ++recovered;
      for (unsigned j = 0; j < k_; ++j) {
        const std::size_t ci = index(sym.hash, j);
        if (ci >= limit) continue;  // mapped outside the prefix: lost
        cells[ci].apply(sym, Direction::kRemove);
        if (cells[ci].is_pure(hasher)) queue.push_back(ci);
      }
      if (recovered == total) break;
    }
    return recovered;
  }

 private:
  [[nodiscard]] std::size_t index(std::uint64_t hash, unsigned j) const {
    return static_cast<std::size_t>(j) * sub_ +
           static_cast<std::size_t>(
               mix64(hash ^ (0x9e3779b97f4a7c15ULL * (j + 1))) % sub_);
  }

  unsigned k_;
  std::size_t sub_;
  std::vector<CodedSymbol<U64Symbol>> cells_;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const int trials = opts.trials > 0 ? opts.trials : opts.pick(20, 300, 2000);
  const SipHasher<U64Symbol> hasher;

  std::printf("# Theorem A.1: undersized IBLT (m=60, k=3): P(recover any)\n");
  std::printf("%-8s %-10s %-14s\n", "n/m", "n", "P(any)");
  constexpr std::size_t kM = 60;
  for (const double ratio : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0}) {
    const auto n = static_cast<std::size_t>(ratio * kM);
    int any = 0;
    for (int t = 0; t < trials; ++t) {
      PrefixableIblt table(kM, 3);
      SplitMix64 rng(derive_seed(opts.seed, n * 1000 + static_cast<std::uint64_t>(t)));
      for (std::size_t i = 0; i < n; ++i) {
        table.add(hasher.hashed(U64Symbol::random(rng.next())));
      }
      if (table.peel_prefix(kM, n) > 0) ++any;
    }
    std::printf("%-8.1f %-10zu %-14.4f\n", ratio, n,
                static_cast<double>(any) / trials);
  }

  std::printf("\n# Theorem A.2: prefix decode of an oversized IBLT "
              "(n=100, eta=1.5, k=3): P(success)\n");
  std::printf("%-12s %-10s %-14s\n", "eta*n/m", "m", "P(success)");
  constexpr std::size_t kN = 100;
  const auto prefix = static_cast<std::size_t>(1.5 * kN);  // 150 cells used
  for (const double frac : {1.0, 0.9, 0.75, 0.6, 0.5, 0.375}) {
    const auto m =
        ((static_cast<std::size_t>(static_cast<double>(prefix) / frac) + 2) / 3) * 3;
    int ok = 0;
    for (int t = 0; t < trials; ++t) {
      PrefixableIblt table(m, 3);
      SplitMix64 rng(derive_seed(opts.seed ^ 0xA2, m * 1000 + static_cast<std::uint64_t>(t)));
      for (std::size_t i = 0; i < kN; ++i) {
        table.add(hasher.hashed(U64Symbol::random(rng.next())));
      }
      if (table.peel_prefix(prefix, kN) == kN) ++ok;
    }
    std::printf("%-12.3f %-10zu %-14.4f\n",
                static_cast<double>(prefix) / static_cast<double>(m), m,
                static_cast<double>(ok) / trials);
  }
  std::printf("# shape: success collapses as the used prefix shrinks "
              "relative to m\n");
  return 0;
}
