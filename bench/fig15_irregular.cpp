// Fig 15: communication overhead of Irregular Rateless IBLT (§8, c = 3,
// w = 0.18/0.56/0.26, alpha = 0.11/0.68/0.82) vs the regular design.
//
// Expected shape (paper §8): the irregular overhead converges to 1.10
// (multi-type density evolution; 19% below regular's 1.35 and 10% above
// the information-theoretic floor) at the cost of slower encoding/decoding
// (the paper reports 1.88x; our generic-alpha sampler adds an exact-scan
// stage, so the measured ratio is reported alongside).
#include <cstdio>

#include "analysis/density_evolution.hpp"
#include "benchutil.hpp"

namespace {

using namespace ribltx;

/// Wall-clock encode+decode seconds for one difference set.
template <typename MappingFactory>
double codec_seconds(std::size_t d, const MappingFactory& mf,
                     std::uint64_t seed) {
  Encoder<U64Symbol, SipHasher<U64Symbol>, MappingFactory> enc({}, mf);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < d; ++i) {
    enc.add_symbol(U64Symbol::random(rng.next()));
  }
  bench::Timer timer;
  Decoder<U64Symbol, SipHasher<U64Symbol>, MappingFactory> dec({}, mf);
  while (!dec.decoded()) {
    dec.add_coded_symbol(enc.produce_next());
  }
  return timer.elapsed();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const int trials = opts.trials > 0 ? opts.trials : opts.pick(2, 10, 100);
  const std::size_t max_d = opts.pick<std::size_t>(1'000, 100'000, 1'000'000);

  const auto cfg = IrregularConfig::paper_optimal();
  const double de_regular = analysis::de_threshold(0.5);
  const double de_irregular =
      analysis::de_irregular_threshold(cfg.weights, cfg.alphas);

  std::printf("# Fig 15: regular vs irregular overhead (trials=%d)\n",
              trials);
  std::printf("# DE asymptotes: regular %.3f, irregular %.3f\n", de_regular,
              de_irregular);
  std::printf("%-9s %-10s %-12s %-12s %-14s\n", "d", "regular", "irregular",
              "irr_median", "irr/reg_cpu");

  const DefaultMappingFactory regular_mf;
  const IrregularMappingFactory irregular_mf(cfg);
  for (std::size_t d = 100; d <= max_d; d *= 10) {
    const auto reg =
        bench::measure_overhead(d, trials, regular_mf, derive_seed(opts.seed, d));
    const auto irr = bench::measure_overhead(d, trials, irregular_mf,
                                             derive_seed(opts.seed, d + 1));
    // CPU ablation at this d: one timed run each (same seed).
    const double t_reg = codec_seconds(d, regular_mf, derive_seed(9, d));
    const double t_irr = codec_seconds(d, irregular_mf, derive_seed(9, d));
    std::printf("%-9zu %-10.4f %-12.4f %-12.4f %-14.2f\n", d, reg.mean,
                irr.mean, irr.median, t_irr / t_reg);
    std::fflush(stdout);
  }
  return 0;
}
