// Fig 7: communication overhead (bytes sent / difference bytes) of all
// schemes, 32-byte items, d = 1..400.
//
// Expected shape (paper §7.1):
//  * PinSketch: exactly 1.0 (the information-theoretic floor);
//  * Rateless IBLT: 1.35-1.72 x plus ~9 B/symbol fixed overhead -> ~1.8-2.4;
//  * MET-IBLT: between Rateless and regular IBLT at optimized points, up to
//    4-10x at non-optimized d (sawtooth);
//  * regular IBLT: 2-4x at moderate d, worse at small d; the strata
//    estimator adds a flat >=15 KB ("+est" column);
//  * Merkle trie: >40 across this whole range (not plotted; reproduced on
//    the ledger workload in fig12/fig14).
//
// Regular IBLT sizing: m is ratcheted up until the observed decode failure
// rate over the calibration trials falls below the target (paper: 1/3000
// with --full; default: 1/150 for speed).
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "iblt/iblt.hpp"
#include "iblt/strata.hpp"
#include "metiblt/metiblt.hpp"
#include "pinsketch/pinsketch.hpp"

namespace {

using namespace ribltx;
using Item32 = ByteSymbol<32>;

constexpr std::size_t kItemBytes = 32;
/// Per-cell wire cost of IBLT-family baselines (paper: 8 B checksum + 8 B
/// count on top of the 32 B sum).
constexpr std::size_t kBaselineCell = kItemBytes + 8 + 8;
/// Rateless IBLT streamed symbol: 32 B sum + 8 B checksum + ~1 B compressed
/// count (§6).
constexpr std::size_t kRibltSymbol = kItemBytes + 8 + 1;

std::vector<Item32> random_items(std::size_t d, std::uint64_t seed) {
  std::vector<Item32> out;
  out.reserve(d);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < d; ++i) out.push_back(Item32::random(rng.next()));
  return out;
}

double riblt_overhead(std::size_t d, int trials, std::uint64_t seed) {
  double bytes = 0;
  for (int t = 0; t < trials; ++t) {
    Encoder<Item32> enc;
    for (const auto& s :
         random_items(d, derive_seed(seed, static_cast<std::uint64_t>(t)))) {
      enc.add_symbol(s);
    }
    Decoder<Item32> dec;
    std::size_t used = 0;
    while (!dec.decoded()) {
      dec.add_coded_symbol(enc.produce_next());
      ++used;
    }
    bytes += static_cast<double>(used * kRibltSymbol);
  }
  return bytes / trials / static_cast<double>(d * kItemBytes);
}

double met_overhead(std::size_t d, int trials, std::uint64_t seed) {
  double bytes = 0;
  for (int t = 0; t < trials; ++t) {
    metiblt::MetIblt<Item32> table;
    for (const auto& s :
         random_items(d, derive_seed(seed ^ 0x4d45, static_cast<std::uint64_t>(t)))) {
      table.add_symbol(s);
    }
    const auto r = table.decode_progressive();
    // Failure past the last level means the full table was shipped.
    bytes += static_cast<double>(r.cells_used * kBaselineCell);
  }
  return bytes / trials / static_cast<double>(d * kItemBytes);
}

/// Smallest cell count whose failure rate over `trials` is under
/// `max_failures`; sized in 8% ratchet steps like deployed tuning.
std::size_t calibrate_iblt_cells(std::size_t d, int trials, int max_failures,
                                 std::uint64_t seed) {
  constexpr unsigned kHashes = 4;
  std::size_t m = std::max<std::size_t>(kHashes * 2,
                                        static_cast<std::size_t>(1.15 * static_cast<double>(d)));
  for (;;) {
    int failures = 0;
    for (int t = 0; t < trials && failures <= max_failures; ++t) {
      iblt::Iblt<Item32> table(m, kHashes);
      for (const auto& s : random_items(
               d, derive_seed(seed ^ m, static_cast<std::uint64_t>(t)))) {
        table.add_symbol(s);
      }
      if (!table.decode().success) ++failures;
    }
    if (failures <= max_failures) return ((m + kHashes - 1) / kHashes) * kHashes;
    m = static_cast<std::size_t>(static_cast<double>(m) * 1.08) + kHashes;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  bench::JsonReport report(opts, "fig07_comm_overhead");
  const int trials = opts.trials > 0 ? opts.trials : opts.pick(2, 20, 100);
  const int iblt_trials = opts.pick(30, 150, 3000);
  const int iblt_max_fail = 1;  // tolerated failures out of iblt_trials

  const std::vector<std::size_t> ds =
      opts.smoke ? std::vector<std::size_t>{1, 4, 10, 28}
                 : std::vector<std::size_t>{1,  2,  3,  4,  5,  7,  10,  14,
                                            20, 28, 40, 56, 80, 113, 160, 226,
                                            320, 400};

  const iblt::StrataEstimator<Item32> estimator;  // recommended setup
  const double est_bytes = static_cast<double>(estimator.serialized_size());

  std::printf("# Fig 7: communication overhead vs d (32-byte items)\n");
  std::printf("# riblt/met trials=%d, iblt calibration trials=%d\n", trials,
              iblt_trials);
  std::printf("# merkle trie: >40 across this range (paper); see fig12\n");
  std::printf("%-6s %-9s %-9s %-9s %-11s %-10s\n", "d", "riblt", "met",
              "iblt", "iblt+est", "pinsketch");

  for (const auto d : ds) {
    const double riblt = riblt_overhead(d, trials, derive_seed(opts.seed, d));
    const double met = met_overhead(d, trials, derive_seed(opts.seed, d + 1));
    const std::size_t cells = calibrate_iblt_cells(
        d, iblt_trials, iblt_max_fail, derive_seed(opts.seed, d + 2));
    const double iblt_oh = static_cast<double>(cells * kBaselineCell) /
                           static_cast<double>(d * kItemBytes);
    const double iblt_est_oh =
        iblt_oh + est_bytes / static_cast<double>(d * kItemBytes);

    // PinSketch: exactly d syndromes of item length; verify decodability
    // with the real 8-byte-field implementation (32-byte items would chain
    // four sketches; the byte accounting is identical).
    pinsketch::PinSketch ps(d);
    SplitMix64 rng(derive_seed(opts.seed, d + 3));
    for (std::size_t i = 0; i < d; ++i) {
      ps.add_symbol(U64Symbol::from_u64(rng.next() | 1));
    }
    const double pin = ps.decode().success ? 1.0 : -1.0;

    std::printf("%-6zu %-9.2f %-9.2f %-9.2f %-11.2f %-10.2f\n", d, riblt, met,
                iblt_oh, iblt_est_oh, pin);
    report.row()
        .num("d", d)
        .num("riblt", riblt)
        .num("met", met)
        .num("iblt", iblt_oh)
        .num("iblt_est", iblt_est_oh)
        .num("pinsketch", pin);
    std::fflush(stdout);
  }
  return 0;
}
