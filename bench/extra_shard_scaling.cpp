// Extension bench (ISSUE 4 acceptance): multi-core sharded serving --
// completed client reconciliations per second against shard count.
//
// One ShardedEngine with K shards serves a fleet of ShardedClients, each
// differing from the server set by d items. The shard workers do ALL the
// session work (serve + frame parse + client decode runs inside the sink,
// i.e. on the worker that produced the frame), so on a machine with >= K
// cores the wall-clock throughput should scale ~linearly in K until the
// router/submit path saturates: the acceptance criterion is >= 3x
// sessions/sec at 4 shards vs 1 shard on a 4+ core machine. On fewer cores
// the sharded run degrades gracefully to ~1x (same total work, small
// routing overhead); the bench prints the detected core count so CI trend
// numbers are interpretable.
//
// sessions_per_s counts whole client reconciliations (a client's K
// sub-sessions together recover exactly the unsharded difference -- the
// cross-shard parity test in tests/test_sharded.cpp pins that).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "benchutil.hpp"
#include "sync/sharded.hpp"

namespace {

using namespace ribltx;

struct RunResult {
  double wall_s = 0;
  double sessions_per_s = 0;
  bool ok = false;
};

/// One fleet pass: `clients` sharded clients against a K-shard engine over
/// an n-item set, each client missing `d` items of it.
RunResult run_fleet(std::size_t shards, std::size_t n, std::size_t clients,
                    std::size_t d, std::uint64_t seed) {
  RunResult out;
  std::vector<U64Symbol> items;
  items.reserve(n);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back(U64Symbol::random(rng.next()));
  }

  sync::EngineOptions options;
  options.max_sessions = clients + 16;
  sync::ShardedEngine<U64Symbol> engine(shards, {}, options);
  for (const auto& x : items) engine.add_item(x);

  std::vector<std::unique_ptr<sync::ShardedClient<U64Symbol>>> fleet;
  fleet.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    fleet.push_back(std::make_unique<sync::ShardedClient<U64Symbol>>(
        c + 1, shards, sync::BackendId::kRiblt));
    // Client c is missing a distinct d-item slice of the server set (slices
    // wrap; same per-client work at every shard count).
    const std::size_t start = (c * d) % n;
    for (std::size_t i = 0; i < n; ++i) {
      const bool missing =
          ((i + n - start) % n) < d;  // d items, wrapping window
      if (!missing) fleet[c]->add_item(items[i]);
    }
  }

  // The sink runs on the shard workers: decode there, route replies back.
  std::atomic<bool> sink_error{false};
  engine.start([&](std::vector<std::byte> frame) {
    const std::uint64_t sid = sync::v2::peek_session_id(frame);
    const std::size_t c = static_cast<std::size_t>((sid - 1) / shards);
    if (c >= fleet.size()) {
      sink_error.store(true, std::memory_order_relaxed);
      return;
    }
    for (auto& reply : fleet[c]->handle_frame(frame)) {
      engine.submit(std::move(reply));
    }
  });

  bench::Timer timer;
  for (auto& client : fleet) {
    for (auto& hello : client->hellos()) engine.submit(std::move(hello));
  }
  bool all = false;
  while (!all) {
    all = true;
    for (const auto& client : fleet) all = all && client->terminal();
    if (!all) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  out.wall_s = timer.elapsed();
  engine.stop();

  out.ok = !sink_error.load(std::memory_order_relaxed);
  for (const auto& client : fleet) {
    out.ok = out.ok && client->complete() &&
             client->diff().remote.size() == d &&
             client->diff().local.empty();
  }
  out.sessions_per_s = static_cast<double>(clients) / out.wall_s;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  bench::JsonReport report(opts, "extra_shard_scaling");

  const std::size_t n = opts.pick<std::size_t>(2'000, 20'000, 50'000);
  const std::size_t clients = opts.pick<std::size_t>(8, 64, 128);
  const std::size_t d = opts.pick<std::size_t>(50, 200, 400);
  std::vector<std::size_t> shard_counts =
      opts.smoke ? std::vector<std::size_t>{1, 2}
                 : std::vector<std::size_t>{1, 2, 4, 8};

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("# Extra: sharded serving throughput vs shard count "
              "(%u hardware threads)\n", cores);
  std::printf("# n=%zu items, %zu clients, d=%zu per client, riblt backend\n",
              n, clients, d);
  std::printf("%-8s %-12s %-16s %-10s %-4s\n", "shards", "wall_s",
              "sessions_per_s", "speedup", "ok");

  bool ok = true;
  double base_rate = 0;
  for (const std::size_t shards : shard_counts) {
    const RunResult r = run_fleet(shards, n, clients, d, opts.seed + shards);
    if (shards == 1) base_rate = r.sessions_per_s;
    const double speedup = base_rate > 0 ? r.sessions_per_s / base_rate : 0;
    std::printf("%-8zu %-12.4f %-16.1f %-10.2f %-4s\n", shards, r.wall_s,
                r.sessions_per_s, speedup, r.ok ? "y" : "N");
    std::fflush(stdout);
    report.row()
        .num("shards", shards)
        .num("n", n)
        .num("clients", clients)
        .num("d", d)
        .num("cores", cores)
        .num("wall_s", r.wall_s)
        .num("sessions_per_s", r.sessions_per_s)
        .num("speedup", speedup);
    ok = ok && r.ok;
  }
  // Correctness is the gate; scaling is reported, not asserted (CI smoke
  // runners and single-core boxes cannot demonstrate the 4-shard speedup).
  return ok ? 0 : 1;
}
