// Shared helpers for the figure-reproduction benches: flag parsing, wall
// clock, and Monte-Carlo overhead measurement on the core codec.
//
// Every bench binary prints a gnuplot-ready table (columns separated by
// whitespace, '#' comment headers). Default parameters finish in seconds
// and show the same curve shapes as the paper; pass --full for paper-scale
// sweeps. EXPERIMENTS.md records both.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/riblt.hpp"

namespace ribltx::bench {

struct Options {
  bool full = false;
  bool smoke = false;       ///< tiny-N ctest mode: full code path, seconds
  int trials = 0;           ///< 0 = bench-specific default
  std::uint64_t seed = 1;

  /// Scale knob selector: --smoke < default < --full.
  template <typename V>
  [[nodiscard]] V pick(V smoke_value, V default_value, V full_value) const {
    return smoke ? smoke_value : full ? full_value : default_value;
  }

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--full") {
        o.full = true;
      } else if (arg == "--smoke") {
        o.smoke = true;
      } else if (arg.rfind("--trials=", 0) == 0) {
        o.trials = std::atoi(arg.c_str() + 9);
      } else if (arg.rfind("--seed=", 0) == 0) {
        o.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
      } else if (arg == "--help" || arg == "-h") {
        std::printf("usage: %s [--full|--smoke] [--trials=N] [--seed=N]\n",
                    argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    if (o.full && o.smoke) {
      std::fprintf(stderr, "--full and --smoke are mutually exclusive\n");
      std::exit(2);
    }
    return o;
  }
};

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds since construction or last reset.
  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One reconciliation trial: encode a fresh d-item set, stream coded
/// symbols into a decoder with no local items (the difference-set view),
/// return coded symbols consumed. Overhead = result / d.
template <typename MappingFactory>
[[nodiscard]] std::size_t coded_symbols_to_decode(std::size_t d,
                                                  const MappingFactory& mf,
                                                  std::uint64_t seed,
                                                  std::size_t cap = 0) {
  Encoder<U64Symbol, SipHasher<U64Symbol>, MappingFactory> enc({}, mf);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < d; ++i) {
    enc.add_symbol(U64Symbol::random(rng.next()));
  }
  Decoder<U64Symbol, SipHasher<U64Symbol>, MappingFactory> dec({}, mf);
  std::size_t used = 0;
  const std::size_t limit = cap == 0 ? 400 * d + 4096 : cap;
  while (!dec.decoded() && used < limit) {
    dec.add_coded_symbol(enc.produce_next());
    ++used;
  }
  return used;
}

struct OverheadStats {
  double mean = 0;
  double stddev = 0;
  double median = 0;
};

template <typename MappingFactory>
[[nodiscard]] OverheadStats measure_overhead(std::size_t d, int trials,
                                             const MappingFactory& mf,
                                             std::uint64_t seed) {
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const auto used = coded_symbols_to_decode(
        d, mf, derive_seed(seed, static_cast<std::uint64_t>(t)));
    xs.push_back(static_cast<double>(used) / static_cast<double>(d));
  }
  OverheadStats s;
  for (double x : xs) s.mean += x;
  s.mean /= static_cast<double>(xs.size());
  for (double x : xs) s.stddev += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(s.stddev / static_cast<double>(xs.size() - 1))
                 : 0.0;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(xs.size() / 2), xs.end());
  s.median = xs[xs.size() / 2];
  return s;
}

}  // namespace ribltx::bench
