// Shared helpers for the figure-reproduction benches: flag parsing, wall
// clock, and Monte-Carlo overhead measurement on the core codec.
//
// Every bench binary prints a gnuplot-ready table (columns separated by
// whitespace, '#' comment headers). Default parameters finish in seconds
// and show the same curve shapes as the paper; pass --full for paper-scale
// sweeps. EXPERIMENTS.md records both.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/rng.hpp"
#include "core/riblt.hpp"
#include "obs/metrics.hpp"

namespace ribltx::bench {

struct Options {
  bool full = false;
  bool smoke = false;       ///< tiny-N ctest mode: full code path, seconds
  bool sweep = false;       ///< opt-in extra sweep (bench-specific meaning)
  int trials = 0;           ///< 0 = bench-specific default
  std::uint64_t seed = 1;
  std::string json_path;    ///< --json <path>: machine-readable output

  /// Scale knob selector: --smoke < default < --full.
  template <typename V>
  [[nodiscard]] V pick(V smoke_value, V default_value, V full_value) const {
    return smoke ? smoke_value : full ? full_value : default_value;
  }

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--full") {
        o.full = true;
      } else if (arg == "--smoke") {
        o.smoke = true;
      } else if (arg == "--sweep") {
        o.sweep = true;
      } else if (arg.rfind("--trials=", 0) == 0) {
        o.trials = std::atoi(arg.c_str() + 9);
      } else if (arg.rfind("--seed=", 0) == 0) {
        o.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
      } else if (arg.rfind("--json=", 0) == 0) {
        o.json_path = arg.substr(7);
      } else if (arg == "--json" && i + 1 < argc) {
        o.json_path = argv[++i];
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: %s [--full|--smoke] [--sweep] [--trials=N] [--seed=N] "
            "[--json <path>]\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    if (o.full && o.smoke) {
      std::fprintf(stderr, "--full and --smoke are mutually exclusive\n");
      std::exit(2);
    }
    return o;
  }
};

/// Machine-readable sidecar for a bench run (--json <path>): collects flat
/// key/value rows alongside the human-readable table and writes one JSON
/// document on destruction:
///
///   {"bench": "...", "mode": "smoke", "seed": 1, "rows": [{...}, ...]}
///
/// Keys and string values must be plain identifiers (no quotes/escapes);
/// that is all the perf-trajectory tooling needs. When no --json path was
/// given every call is a no-op, so benches can log rows unconditionally.
class JsonReport {
 public:
  JsonReport(const Options& opts, std::string bench_name)
      : path_(opts.json_path), bench_(std::move(bench_name)), opts_(opts) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() { write(); }

  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }

  /// One output row built field by field; fields render in call order.
  class Row {
   public:
    Row& str(const char* key, const std::string& value) {
      field(key);
      body_ += '"';
      body_ += value;
      body_ += '"';
      return *this;
    }

    Row& num(const char* key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.8g", value);
      field(key);
      body_ += buf;
      return *this;
    }

    template <typename V>
      requires std::is_integral_v<V>
    Row& num(const char* key, V value) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(value));
      field(key);
      body_ += buf;
      return *this;
    }

    /// Quantile fields from a registry histogram snapshot: emits
    /// `<key>_p50` and `<key>_p99` (the suffixes perf_trend.py treats as
    /// noisy lower-is-better metrics), so benches report latency
    /// distributions through the same snapshot path the live METRICS
    /// scrape uses instead of private sample vectors.
    Row& hist(const char* key, const obs::HistogramSnapshot& s,
              double scale = 1.0) {
      num((std::string(key) + "_p50").c_str(), s.quantile(0.50) * scale);
      num((std::string(key) + "_p99").c_str(), s.quantile(0.99) * scale);
      return *this;
    }

   private:
    friend class JsonReport;
    void field(const char* key) {
      if (!body_.empty()) body_ += ',';
      body_ += '"';
      body_ += key;
      body_ += "\":";
    }
    std::string body_;
  };

  /// Appends a new row and returns it for field chaining.
  Row& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Writes the document now (also called by the destructor; idempotent).
  void write() {
    if (path_.empty() || written_) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot open %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\":\"%s\",\"mode\":\"%s\",\"seed\":%llu,",
                 bench_.c_str(),
                 opts_.smoke ? "smoke" : opts_.full ? "full" : "default",
                 static_cast<unsigned long long>(opts_.seed));
    std::fprintf(f, "\"rows\":[");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s{%s}", i == 0 ? "" : ",", rows_[i].body_.c_str());
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    written_ = true;
  }

 private:
  std::string path_;
  std::string bench_;
  Options opts_;
  std::vector<Row> rows_;
  bool written_ = false;
};

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds since construction or last reset.
  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One reconciliation trial: encode a fresh d-item set, stream coded
/// symbols into a decoder with no local items (the difference-set view),
/// return coded symbols consumed. Overhead = result / d.
template <typename MappingFactory>
[[nodiscard]] std::size_t coded_symbols_to_decode(std::size_t d,
                                                  const MappingFactory& mf,
                                                  std::uint64_t seed,
                                                  std::size_t cap = 0) {
  Encoder<U64Symbol, SipHasher<U64Symbol>, MappingFactory> enc({}, mf);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < d; ++i) {
    enc.add_symbol(U64Symbol::random(rng.next()));
  }
  Decoder<U64Symbol, SipHasher<U64Symbol>, MappingFactory> dec({}, mf);
  std::size_t used = 0;
  const std::size_t limit = cap == 0 ? 400 * d + 4096 : cap;
  while (!dec.decoded() && used < limit) {
    dec.add_coded_symbol(enc.produce_next());
    ++used;
  }
  return used;
}

struct OverheadStats {
  double mean = 0;
  double stddev = 0;
  double median = 0;
};

template <typename MappingFactory>
[[nodiscard]] OverheadStats measure_overhead(std::size_t d, int trials,
                                             const MappingFactory& mf,
                                             std::uint64_t seed) {
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const auto used = coded_symbols_to_decode(
        d, mf, derive_seed(seed, static_cast<std::uint64_t>(t)));
    xs.push_back(static_cast<double>(used) / static_cast<double>(d));
  }
  OverheadStats s;
  for (double x : xs) s.mean += x;
  s.mean /= static_cast<double>(xs.size());
  for (double x : xs) s.stddev += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(s.stddev / static_cast<double>(xs.size() - 1))
                 : 0.0;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(xs.size() / 2), xs.end());
  s.median = xs[xs.size() / 2];
  return s;
}

}  // namespace ribltx::bench
