// Extension bench: wire-format ablations from §7.1 "Scalability of
// Rateless IBLT" -- the checksum/count fields add ~9 B per coded symbol,
// which dominates for short items. The paper's outs: shrink the checksum
// to 4 B (enough for differences into the tens of thousands) and/or drop
// the count field entirely (peeling never reads it).
//
// This bench measures bytes-per-reconciled-difference for each option and
// verifies decodability of each (4-byte-checksum streams decode through
// the standard decoder with a masked-hash hasher; count-less streams
// through CountlessDecoder).
#include <cstdio>

#include "benchutil.hpp"
#include "core/countless.hpp"

namespace {

using namespace ribltx;
using Item = ByteSymbol<8>;  // short items: framing overhead is maximal

/// Hasher whose output is truncated to 32 bits: what effectively rides the
/// wire when checksum_len = 4. Both parties must use it symmetrically.
struct TruncatedHasher {
  SipHasher<Item> inner;
  std::uint64_t operator()(const Item& s) const noexcept {
    return inner(s) & 0xffffffffULL;
  }
  HashedSymbol<Item> hashed(const Item& s) const noexcept {
    return {s, (*this)(s)};
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const int trials = opts.trials > 0 ? opts.trials : opts.pick(2, 10, 50);

  std::printf("# Extra: wire ablations on 8-byte items (bytes per "
              "difference; item floor is 8)\n");
  std::printf("%-8s %-14s %-14s %-14s %-9s\n", "d", "full(8B+cnt)",
              "4B_checksum", "countless_8B", "decodes");

  for (std::size_t d : {16u, 128u, 1024u, 8192u}) {
    double sym_full = 0, sym_trunc = 0, sym_countless = 0;
    bool all_ok = true;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t seed = derive_seed(opts.seed + d, static_cast<std::uint64_t>(t));
      // Full format, standard decoder.
      {
        Encoder<Item> enc;
        SplitMix64 rng(seed);
        for (std::size_t i = 0; i < d; ++i) enc.add_symbol(Item::random(rng.next()));
        Decoder<Item> dec;
        std::size_t used = 0;
        while (!dec.decoded()) {
          dec.add_coded_symbol(enc.produce_next());
          ++used;
        }
        sym_full += static_cast<double>(used);
      }
      // Truncated 32-bit checksum.
      {
        const TruncatedHasher h{};
        Encoder<Item, TruncatedHasher> enc(h);
        SplitMix64 rng(seed);
        for (std::size_t i = 0; i < d; ++i) enc.add_symbol(Item::random(rng.next()));
        Decoder<Item, TruncatedHasher> dec(h);
        std::size_t used = 0;
        while (!dec.decoded() && used < 100 * d) {
          dec.add_coded_symbol(enc.produce_next());
          ++used;
        }
        all_ok = all_ok && dec.decoded();
        sym_trunc += static_cast<double>(used);
      }
      // Count-less stream.
      {
        Encoder<Item> enc;
        SplitMix64 rng(seed);
        for (std::size_t i = 0; i < d; ++i) enc.add_symbol(Item::random(rng.next()));
        CountlessDecoder<Item> dec;
        std::size_t used = 0;
        while (!dec.decoded()) {
          dec.add_coded_symbol(enc.produce_next());
          ++used;
        }
        sym_countless += static_cast<double>(used);
      }
    }
    const double dd = static_cast<double>(d) * trials;
    // Per-symbol wire: full = 8+8+~1; 4B checksum = 8+4+~1; countless = 8+8.
    std::printf("%-8zu %-14.2f %-14.2f %-14.2f %-9s\n", d,
                sym_full / dd * (8 + 8 + 1.05), sym_trunc / dd * (8 + 4 + 1.05),
                sym_countless / dd * (8 + 8), all_ok ? "y" : "N");
    std::fflush(stdout);
  }
  return 0;
}
