// Extension bench: the adaptive negotiation path (sync/adaptive.hpp)
// against every fixed backend, on a simulated link -- the ISSUE 6
// acceptance surface. Sweeps d in {1,10,100,1000} x loss in {0,1,5}% over
// a SimConduit (bounded window, go-back-N, seeded deterministic loss) and
// reports, per cell:
//
//  * one fixed-backend session per backend (CPI only inside the shared
//    cpi_feasible() envelope -- the same rule the adaptive chooser uses,
//    so bench and engine agree by construction on where CPI competes);
//  * the adaptive path in steady state: the client probes on first
//    contact, later sessions ride the server's per-peer EWMA; the cell
//    reports the LAST of `warm` sessions (the common case: a node
//    re-syncing the same neighbor), plus the first-contact cost.
//
// The headline check (nonzero exit on violation): adaptive session bytes
// within 10% of the best fixed backend on EVERY cell. Fixed rateless
// shows why pacing matters: unpaced, the server fills the conduit window
// with symbols the client never needed, at every d.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "benchutil.hpp"
#include "net/sim_conduit.hpp"
#include "sync/adaptive.hpp"
#include "sync/engine.hpp"

namespace {

using namespace ribltx;
using sync::BackendId;

struct Sets {
  std::vector<U64Symbol> both, only_a, only_b;
};

Sets make_sets(std::size_t shared, std::size_t d, std::uint64_t seed) {
  Sets s;
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < shared; ++i) {
    s.both.push_back(U64Symbol::from_u64(rng.next() | 1));
  }
  for (std::size_t i = 0; i < d / 2; ++i) {
    s.only_b.push_back(U64Symbol::from_u64(rng.next() | 1));
  }
  for (std::size_t i = 0; i < d - d / 2; ++i) {
    s.only_a.push_back(U64Symbol::from_u64(rng.next() | 1));
  }
  return s;
}

struct SessionOutcome {
  bool ok = false;
  std::uint64_t bytes_down = 0;  ///< SYMBOLS frame bytes emitted
  std::uint64_t bytes_up = 0;    ///< HELLO/ROUND/DONE (credits included)
  std::uint64_t link_bytes = 0;  ///< both directions incl. retransmits/ACKs
  std::uint32_t rounds = 0;
  std::uint32_t credits = 0;
  BackendId chosen{};
};

/// One session over a lossy SimConduit, event-driven: the server pumps
/// while the window is open (and its pacing runway allows), exactly the
/// test_net_sim harness shape.
SessionOutcome run_session(sync::SyncEngine<U64Symbol>& engine,
                           sync::SyncClient<U64Symbol>& client,
                           std::uint64_t sid, double loss,
                           std::uint64_t seed) {
  netsim::EventLoop loop;
  netsim::LinkConfig fwd;
  fwd.one_way_delay_s = 0.002;
  fwd.bandwidth_bps = 100e6;
  fwd.loss_rate = loss;
  fwd.reorder_jitter_s = loss > 0 ? 0.004 : 0.0;
  fwd.seed = seed;
  netsim::LinkConfig rev = fwd;
  rev.seed = seed ^ 0x5a5a;
  net::SimConduit pipe(loop, fwd, rev);
  net::SimEndpoint& client_end = pipe.a();
  net::SimEndpoint& server_end = pipe.b();

  SessionOutcome out;
  const auto pump_server = [&] {
    while (server_end.writable()) {
      auto frame = engine.next_frame(sid);
      if (!frame) break;  // round/credit wait, pacing pause, or done
      server_end.send_frame(std::move(*frame));
    }
  };
  server_end.on_frame([&](std::vector<std::byte> frame) {
    for (auto& reply : engine.handle_frame(frame)) {
      server_end.send_frame(std::move(reply));
    }
    pump_server();
  });
  server_end.on_writable(pump_server);
  client_end.on_frame([&](std::vector<std::byte> frame) {
    for (auto& reply : client.handle_frame(frame)) {
      out.bytes_up += reply.size();
      client_end.send_frame(std::move(reply));
    }
  });

  const auto hello = client.hello();
  out.bytes_up += hello.size();
  client_end.send_frame(hello);
  loop.run();

  const sync::SessionStats* stats = engine.session(sid);
  out.ok = client.complete() && stats != nullptr && !client_end.broken() &&
           !server_end.broken();
  if (stats != nullptr) {
    out.bytes_down = stats->bytes_to_peer;
    out.rounds = stats->rounds;
    out.credits = stats->credits;
    out.chosen = stats->backend;
  }
  out.link_bytes = client_end.data_bytes() + client_end.ack_bytes() +
                   server_end.data_bytes() + server_end.ack_bytes();
  return out;
}

sync::SyncEngine<U64Symbol> make_engine(const Sets& s, double loss) {
  sync::EngineOptions options;
  options.link = sync::adaptive::LinkProfile::lossy(loss);
  sync::SyncEngine<U64Symbol> engine({}, options);
  for (const auto& x : s.both) engine.add_item(x);
  for (const auto& x : s.only_a) engine.add_item(x);
  return engine;
}

sync::SyncClient<U64Symbol> make_client(const Sets& s, std::uint64_t sid,
                                        BackendId backend) {
  sync::SyncClient<U64Symbol> client(sid, backend);
  for (const auto& y : s.both) client.add_item(y);
  for (const auto& y : s.only_b) client.add_item(y);
  return client;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  bench::JsonReport report(opts, "extra_adaptive_backend");
  const std::size_t max_d = opts.pick<std::size_t>(100, 1000, 1000);
  const std::size_t warm = 3;  ///< adaptive sessions per cell (last scored)
  const std::vector<double> losses =
      opts.smoke ? std::vector<double>{0.0, 0.05}
                 : std::vector<double>{0.0, 0.01, 0.05};
  const sync::ReconcilerConfig config{};  // the engine-default tuning

  std::printf("# Extra: adaptive negotiation vs fixed backends over "
              "SimConduit (8-byte items)\n");
  std::printf("# bytes = session wire bytes down+up; link_bytes adds "
              "retransmits + ACK packets\n");
  std::printf("%-7s %-6s %-12s %-10s %-12s %-7s %-8s %-7s\n", "d", "loss",
              "backend", "bytes", "link_bytes", "rounds", "credits", "ratio");

  bool all_ok = true;
  for (std::size_t d = 1; d <= max_d; d *= 10) {
    const std::size_t shared = std::max<std::size_t>(200, 2 * d);
    for (const double loss : losses) {
      const std::uint64_t seed = derive_seed(opts.seed, d * 1000 + static_cast<std::uint64_t>(loss * 100));
      const Sets sets = make_sets(shared, d, seed);

      // Fixed cells: one fresh engine+session each, client pinned to the
      // backend, no adaptive flag -- the server serves the request
      // verbatim (the fallback path old clients get).
      std::uint64_t best_fixed = ~std::uint64_t{0};
      constexpr BackendId kBackends[] = {
          BackendId::kRiblt, BackendId::kIbltStrata, BackendId::kCpi,
          BackendId::kMetIblt};
      for (const BackendId backend : kBackends) {
        if (backend == BackendId::kCpi &&
            !sync::adaptive::cpi_feasible<U64Symbol>(d, config)) {
          std::printf("%-7zu %-6.2f %-12s %-10s %-12s %-7s %-8s %-7s\n", d,
                      loss, sync::backend_name(backend), "-", "-", "-", "-",
                      "-");
          continue;
        }
        auto engine = make_engine(sets, loss);
        auto client = make_client(sets, 1, backend);
        const auto r = run_session(engine, client, 1, loss, seed + 7);
        if (!r.ok) {
          std::printf("%-7zu %-6.2f %-12s FAILED\n", d, loss,
                      sync::backend_name(backend));
          all_ok = false;
          continue;
        }
        const std::uint64_t bytes = r.bytes_down + r.bytes_up;
        best_fixed = std::min(best_fixed, bytes);
        std::printf("%-7zu %-6.2f %-12s %-10llu %-12llu %-7u %-8u %-7s\n", d,
                    loss, sync::backend_name(backend),
                    static_cast<unsigned long long>(bytes),
                    static_cast<unsigned long long>(r.link_bytes), r.rounds,
                    r.credits, "-");
        report.row()
            .str("backend", sync::backend_name(backend))
            .num("d", d)
            .num("loss_pct", static_cast<std::uint64_t>(loss * 100))
            .num("bytes_down", r.bytes_down)
            .num("bytes_up", r.bytes_up)
            .num("link_bytes", r.link_bytes)
            .num("rounds", static_cast<std::uint64_t>(r.rounds));
      }

      // Adaptive: ONE engine across `warm` sessions from the same peer.
      // Session 1 carries the probe (first contact); the rest lean on the
      // per-peer EWMA the DONE diff counts fed. The gate scores the last.
      auto engine = make_engine(sets, loss);
      const std::uint64_t peer = 0xabcd;
      SessionOutcome last;
      std::uint64_t first_contact = 0;
      bool adaptive_ok = true;
      for (std::size_t s = 1; s <= warm; ++s) {
        auto client = make_client(sets, s, BackendId::kRiblt);
        client.set_adaptive(peer, /*send_probe=*/s == 1);
        last = run_session(engine, client, s, loss, seed + 100 + s);
        adaptive_ok = adaptive_ok && last.ok;
        if (s == 1) first_contact = last.bytes_down + last.bytes_up;
      }
      const std::uint64_t bytes = last.bytes_down + last.bytes_up;
      const double ratio = best_fixed == 0
                               ? 0.0
                               : static_cast<double>(bytes) /
                                     static_cast<double>(best_fixed);
      // The acceptance gate: steady-state adaptive within 10% of the best
      // fixed backend's bytes on this cell.
      const bool within = adaptive_ok && ratio <= 1.10;
      all_ok = all_ok && within;
      std::printf("%-7zu %-6.2f %-12s %-10llu %-12llu %-7u %-8u %.3f%s\n", d,
                  loss,
                  (std::string("a:") + sync::backend_name(last.chosen)).c_str(),
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(last.link_bytes),
                  last.rounds, last.credits, ratio, within ? "" : "  GATE!");
      report.row()
          .str("backend", "adaptive")
          .str("chosen", sync::backend_name(last.chosen))
          .num("d", d)
          .num("loss_pct", static_cast<std::uint64_t>(loss * 100))
          .num("bytes_down", last.bytes_down)
          .num("bytes_up", last.bytes_up)
          .num("link_bytes", last.link_bytes)
          .num("rounds", static_cast<std::uint64_t>(last.rounds))
          .num("credits", static_cast<std::uint64_t>(last.credits))
          .num("first_contact_bytes", first_contact)
          .num("ratio", ratio);
      std::fflush(stdout);
    }
  }
  return all_ok ? 0 : 1;
}
