// Fig 11: slowdown of encoding as the item size grows from 8 B to 32 KB,
// with d = 1000 differences.
//
// Expected shape (paper §7.2): sublinear at first (fixed per-symbol costs
// -- mapping generation, heap maintenance -- amortize over larger XORs),
// then linear past ~2 KB where the XOR dominates. In the linear regime the
// encoder's *input data rate* (bytes of set items processed per second)
// becomes constant; the paper reports ~124.8 MB/s on a 2016 Xeon.
#include <cstdio>

#include "benchutil.hpp"

namespace {

using namespace ribltx;

template <std::size_t kItemBytes>
double encode_seconds(std::size_t n, std::size_t d, std::uint64_t seed) {
  using Item = ByteSymbol<kItemBytes>;
  const auto symbols = static_cast<std::size_t>(1.35 * static_cast<double>(d)) + 8;
  Encoder<Item> enc;
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    enc.add_symbol(Item::random(rng.next()));
  }
  bench::Timer timer;
  for (std::size_t i = 0; i < symbols; ++i) {
    volatile std::int64_t sink = enc.produce_next().count;
    (void)sink;
  }
  return timer.elapsed();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  // Large items shift cost into memory traffic; a moderate N keeps the
  // default run quick while preserving the per-item asymptotics.
  const std::size_t n = opts.pick<std::size_t>(2'000, 20'000, 100'000);
  constexpr std::size_t kD = 1000;

  std::printf("# Fig 11: encode slowdown vs item size (N=%zu, d=%zu)\n", n,
              kD);
  std::printf("# paper: sublinear to ~2KB, then linear; constant MB/s\n");
  std::printf("%-10s %-12s %-10s %-12s\n", "bytes", "seconds", "slowdown",
              "input_MBps");

  double base = 0;
  const auto report = [&](std::size_t bytes, double secs) {
    if (base == 0) base = secs;
    std::printf("%-10zu %-12.5f %-10.2f %-12.1f\n", bytes, secs, secs / base,
                static_cast<double>(n) * static_cast<double>(bytes) / secs / 1e6);
    std::fflush(stdout);
  };

  report(8, encode_seconds<8>(n, kD, opts.seed));
  report(32, encode_seconds<32>(n, kD, opts.seed));
  report(128, encode_seconds<128>(n, kD, opts.seed));
  report(512, encode_seconds<512>(n, kD, opts.seed));
  report(2048, encode_seconds<2048>(n, kD, opts.seed));
  report(8192, encode_seconds<8192>(n, kD, opts.seed));
  report(32768, encode_seconds<32768>(n, kD, opts.seed));
  return 0;
}
