// Fig 13: bandwidth usage over time when synchronizing a nearly-fresh
// ledger (50 ms delay, 20 Mbps).
//
// Expected shape (paper §7.3): Rateless IBLT's first coded symbol reaches
// Bob 1 RTT after the connection opens and the link then runs at line rate
// until completion; state heal idles through ~log N lock-step rounds before
// the leaf-level rounds finally move real data -- the link sits nearly
// empty for the first ~11 RTTs.
//
// The per-block churn here is set to Ethereum-like hundreds of touched
// accounts so the transfer spans several trace bins (our default ledger's
// background rate would finish within one bin).
#include <cstdio>

#include "benchutil.hpp"
#include "ledgerbench.hpp"

int main(int argc, char** argv) {
  using namespace ribltx;
  const auto opts = bench::Options::parse(argc, argv);

  auto params = bench::default_eth_params(opts);
  params.modifies_per_block = opts.smoke ? 200 : 2000;
  params.creates_per_block = opts.smoke ? 10 : 100;
  const std::uint64_t latest = 32;
  bench::EthWorkbench wb(params, latest);

  const auto plans = wb.plans_for(1);  // 1 block (12 s) stale
  const netsim::LinkConfig link;       // 50 ms / 20 Mbps

  const auto riblt = sync::run_riblt_session(plans.riblt, link);
  const auto heal = sync::run_heal_session(plans.heal, link);

  std::printf("# Fig 13: bandwidth trace, 1 block stale (d=%zu)\n", plans.d);
  std::printf("# riblt: first byte %.3f s (1 RTT = 0.100 s), done %.3f s\n",
              riblt.downstream.empty() ? -1.0
                                       : riblt.downstream.front().arrive_start,
              riblt.completion_s);
  std::printf("# heal: %zu lock-step rounds, done %.3f s\n",
              plans.heal.rounds.size(), heal.completion_s);

  netsim::BandwidthTrace rt(0.05), ht(0.05);
  rt.add_all(riblt.downstream);
  ht.add_all(heal.downstream);
  const auto rb = rt.bins();
  const auto hb = ht.bins();

  std::printf("%-8s %-12s %-12s\n", "time_s", "riblt_Mbps", "heal_Mbps");
  const std::size_t n = std::max(rb.size(), hb.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%-8.2f %-12.2f %-12.2f\n",
                static_cast<double>(i) * 0.05,
                i < rb.size() ? rb[i].mbps : 0.0,
                i < hb.size() ? hb[i].mbps : 0.0);
  }
  return 0;
}
