// Extension bench (ISSUE 5 acceptance): serving throughput with the
// transport in the loop -- completed reconciliations per second and
// per-session sync latency (p50/p99) over real loopback TCP
// (net::SocketServer/SocketClient) vs the in-memory submit/sink path.
//
// Every number before this bench excluded syscalls, copies, and socket
// backpressure; the paper's Fig 12/13 results run over real links. Both
// transports here drive the identical ShardedEngine worker path (threaded
// submit/sink); the socket rows add framing, epoll dispatch, read/writev
// syscalls, and the kernel loopback queue. The acceptance criterion is
// that loopback sessions/sec stays within the same order of magnitude as
// in-memory at d=100.
//
// Sessions run back to back (one in flight), so sessions_per_s ~=
// 1/latency and the p50/p99 spread isolates transport jitter rather than
// queueing from concurrent load (extra_shard_scaling covers concurrency).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "benchutil.hpp"
#include "net/socket_client.hpp"
#include "net/socket_server.hpp"

namespace {

using namespace ribltx;

struct RunResult {
  double wall_s = 0;
  double sessions_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  bool ok = false;
};

struct Workload {
  std::vector<U64Symbol> items;
  std::size_t n = 0;
  std::size_t d = 0;
  std::size_t sessions = 0;
  std::size_t shards = 0;
};

/// Builds the per-session clients: client s is missing a distinct d-item
/// wrapping slice of the server set (identical work per session).
std::vector<std::unique_ptr<sync::ShardedClient<U64Symbol>>> build_clients(
    const Workload& w) {
  std::vector<std::unique_ptr<sync::ShardedClient<U64Symbol>>> out;
  out.reserve(w.sessions);
  for (std::size_t s = 0; s < w.sessions; ++s) {
    out.push_back(std::make_unique<sync::ShardedClient<U64Symbol>>(
        s + 1, w.shards, sync::BackendId::kRiblt));
    const std::size_t start = (s * w.d) % w.n;
    for (std::size_t i = 0; i < w.n; ++i) {
      const bool missing = ((i + w.n - start) % w.n) < w.d;
      if (!missing) out[s]->add_item(w.items[i]);
    }
  }
  return out;
}

RunResult summarize(std::vector<double> latencies_s, double wall_s,
                    bool correct) {
  RunResult r;
  r.wall_s = wall_s;
  r.sessions_per_s = static_cast<double>(latencies_s.size()) / wall_s;
  std::sort(latencies_s.begin(), latencies_s.end());
  const auto at = [&](double q) {
    const std::size_t i = std::min(
        latencies_s.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies_s.size())));
    return latencies_s[i] * 1e3;
  };
  r.p50_ms = at(0.50);
  r.p99_ms = at(0.99);
  r.ok = correct;
  return r;
}

/// In-memory baseline: the same threaded worker/sink path, no sockets --
/// frames hop threads through the sink closure instead of the kernel.
RunResult run_memory(const Workload& w) {
  sync::EngineOptions options;
  options.max_sessions = w.sessions + 16;
  sync::ShardedEngine<U64Symbol> engine(w.shards, {}, options);
  for (const auto& x : w.items) engine.add_item(x);
  auto clients = build_clients(w);

  std::atomic<bool> sink_error{false};
  engine.start([&](std::vector<std::byte> frame) {
    const std::uint64_t sid = sync::v2::peek_session_id(frame);
    const std::size_t s = static_cast<std::size_t>((sid - 1) / w.shards);
    if (s >= clients.size()) {
      sink_error.store(true, std::memory_order_relaxed);
      return;
    }
    for (auto& reply : clients[s]->handle_frame(frame)) {
      engine.submit(std::move(reply));
    }
  });

  std::vector<double> latencies;
  latencies.reserve(w.sessions);
  bool correct = true;
  bench::Timer total;
  for (std::size_t s = 0; s < w.sessions; ++s) {
    bench::Timer t;
    for (auto& hello : clients[s]->hellos()) engine.submit(std::move(hello));
    while (!clients[s]->terminal()) {
      std::this_thread::yield();
    }
    latencies.push_back(t.elapsed());
    correct = correct && clients[s]->complete() &&
              clients[s]->diff().remote.size() == w.d &&
              clients[s]->diff().local.empty();
  }
  const double wall = total.elapsed();
  engine.stop();
  return summarize(std::move(latencies), wall,
                   correct && !sink_error.load(std::memory_order_relaxed));
}

/// Loopback TCP: the same engine behind a SocketServer; one client
/// connection runs the sessions back to back.
RunResult run_loopback(const Workload& w) {
  sync::EngineOptions options;
  options.max_sessions = w.sessions + 16;
  sync::ShardedEngine<U64Symbol> engine(w.shards, {}, options);
  for (const auto& x : w.items) engine.add_item(x);
  auto clients = build_clients(w);

  net::SocketServer<U64Symbol> server(engine);
  server.start();
  net::SocketClient sock(server.port());

  std::vector<double> latencies;
  latencies.reserve(w.sessions);
  bool correct = true;
  bench::Timer total;
  for (std::size_t s = 0; s < w.sessions; ++s) {
    bench::Timer t;
    const bool done = run_session(sock, *clients[s], /*timeout_s=*/120.0);
    latencies.push_back(t.elapsed());
    correct = correct && done && clients[s]->diff().remote.size() == w.d &&
              clients[s]->diff().local.empty();
  }
  const double wall = total.elapsed();
  server.stop();
  correct = correct && server.stats().protocol_errors == 0;
  return summarize(std::move(latencies), wall, correct);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  bench::JsonReport report(opts, "extra_transport_throughput");

  Workload w;
  w.n = opts.pick<std::size_t>(2'000, 20'000, 50'000);
  w.d = opts.pick<std::size_t>(50, 100, 100);
  w.sessions = opts.pick<std::size_t>(16, 128, 512);
  w.shards = opts.pick<std::size_t>(2, 4, 4);
  w.items.reserve(w.n);
  SplitMix64 rng(opts.seed);
  for (std::size_t i = 0; i < w.n; ++i) {
    w.items.push_back(U64Symbol::random(rng.next()));
  }

  std::printf("# Extra: serving throughput with the transport in the loop "
              "(%u hardware threads)\n",
              std::thread::hardware_concurrency());
  std::printf("# n=%zu items, %zu sequential sessions, d=%zu, %zu shards, "
              "riblt backend\n",
              w.n, w.sessions, w.d, w.shards);
  std::printf("%-10s %-12s %-16s %-10s %-10s %-4s\n", "transport", "wall_s",
              "sessions_per_s", "p50_ms", "p99_ms", "ok");

  const RunResult mem = run_memory(w);
  std::printf("%-10s %-12.4f %-16.1f %-10.3f %-10.3f %-4s\n", "memory",
              mem.wall_s, mem.sessions_per_s, mem.p50_ms, mem.p99_ms,
              mem.ok ? "y" : "N");
  std::fflush(stdout);
  const RunResult loop = run_loopback(w);
  std::printf("%-10s %-12.4f %-16.1f %-10.3f %-10.3f %-4s\n", "loopback",
              loop.wall_s, loop.sessions_per_s, loop.p50_ms, loop.p99_ms,
              loop.ok ? "y" : "N");

  const double ratio =
      loop.sessions_per_s > 0 ? mem.sessions_per_s / loop.sessions_per_s : 0;
  // Acceptance criterion: loopback within the same order of magnitude at
  // d=100 (the default scale). Smoke sessions are so small (sub-ms) that
  // fixed per-frame transport costs dominate, so smoke gates correctness
  // only and just reports the ratio.
  const bool same_magnitude = ratio > 0 && (opts.smoke || ratio < 10.0);
  std::printf("# memory/loopback rate ratio: %.2fx (%s)\n", ratio,
              ratio < 10.0 ? "same order of magnitude"
                           : "outside one order of magnitude");

  for (const auto& [name, r] :
       {std::pair<const char*, const RunResult&>{"memory", mem},
        std::pair<const char*, const RunResult&>{"loopback", loop}}) {
    report.row()
        .str("transport", name)
        .num("n", w.n)
        .num("d", w.d)
        .num("shards", w.shards)
        .num("sessions", w.sessions)
        .num("wall_s", r.wall_s)
        .num("sessions_per_s", r.sessions_per_s)
        .num("p50_ms", r.p50_ms)
        .num("p99_ms", r.p99_ms);
  }
  return (mem.ok && loop.ok && same_magnitude) ? 0 : 1;
}
