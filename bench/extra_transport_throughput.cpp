// Extension bench (ISSUE 5 acceptance): serving throughput with the
// transport in the loop -- completed reconciliations per second and
// per-session sync latency (p50/p99) over real loopback TCP
// (net::SocketServer/SocketClient) vs the in-memory submit/sink path.
//
// Every number before this bench excluded syscalls, copies, and socket
// backpressure; the paper's Fig 12/13 results run over real links. Both
// transports here drive the identical ShardedEngine worker path (threaded
// submit/sink); the socket rows add framing, epoll dispatch, read/writev
// syscalls, and the kernel loopback queue. The acceptance criterion is
// that loopback sessions/sec stays within the same order of magnitude as
// in-memory at d=100.
//
// Sessions run back to back (one in flight), so sessions_per_s ~=
// 1/latency and the p50/p99 spread isolates transport jitter rather than
// queueing from concurrent load (extra_shard_scaling covers concurrency).
//
// --sweep (ISSUE 8 acceptance) adds the connection-count sweep: 100 -> 1k
// -> 10k open connections running paced sessions against the epoll server
// and the io_uring server (when the kernel has it), reporting sessions/s,
// p50/p99 latency, and syscalls/session from SocketServerStats. In default
// (non-smoke) mode the sweep gates that at the top tier uring serves at
// least as many sessions/s as epoll while issuing at most half the
// syscalls per session; the gate auto-skips without io_uring or under
// sanitizers (whose syscall interception distorts both sides).
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "benchutil.hpp"
#include "net/socket_client.hpp"
#include "net/socket_server.hpp"
#include "net/uring_server.hpp"
#include "obs/metrics.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RIBLT_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RIBLT_BENCH_SANITIZED 1
#endif
#endif
#ifndef RIBLT_BENCH_SANITIZED
#define RIBLT_BENCH_SANITIZED 0
#endif

namespace {

using namespace ribltx;

struct RunResult {
  double wall_s = 0;
  double sessions_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  bool ok = false;
};

struct Workload {
  std::vector<U64Symbol> items;
  std::size_t n = 0;
  std::size_t d = 0;
  std::size_t sessions = 0;
  std::size_t shards = 0;
};

/// Builds the per-session clients: client s is missing a distinct d-item
/// wrapping slice of the server set (identical work per session).
std::vector<std::unique_ptr<sync::ShardedClient<U64Symbol>>> build_clients(
    const Workload& w) {
  std::vector<std::unique_ptr<sync::ShardedClient<U64Symbol>>> out;
  out.reserve(w.sessions);
  for (std::size_t s = 0; s < w.sessions; ++s) {
    out.push_back(std::make_unique<sync::ShardedClient<U64Symbol>>(
        s + 1, w.shards, sync::BackendId::kRiblt));
    const std::size_t start = (s * w.d) % w.n;
    for (std::size_t i = 0; i < w.n; ++i) {
      const bool missing = ((i + w.n - start) % w.n) < w.d;
      if (!missing) out[s]->add_item(w.items[i]);
    }
  }
  return out;
}

/// Latency quantiles off an obs::Histogram (microsecond samples) -- the
/// same log-linear estimator the live METRICS scrape serves, replacing
/// the former private sorted-vector percentiles. The histogram's relaxed
/// record() is also what makes the connection sweep's concurrent client
/// threads safe without a lock or per-thread vectors.
RunResult summarize(const obs::Histogram& latencies_us, double wall_s,
                    bool correct) {
  const obs::HistogramSnapshot s = latencies_us.snapshot();
  RunResult r;
  r.wall_s = wall_s;
  r.sessions_per_s = static_cast<double>(s.bucket_total()) / wall_s;
  r.p50_ms = s.quantile(0.50) / 1e3;
  r.p99_ms = s.quantile(0.99) / 1e3;
  r.ok = correct;
  return r;
}

/// Seconds -> whole microseconds for histogram recording.
std::uint64_t as_us(double seconds) {
  return static_cast<std::uint64_t>(seconds * 1e6);
}

/// In-memory baseline: the same threaded worker/sink path, no sockets --
/// frames hop threads through the sink closure instead of the kernel.
RunResult run_memory(const Workload& w) {
  sync::EngineOptions options;
  options.max_sessions = w.sessions + 16;
  sync::ShardedEngine<U64Symbol> engine(w.shards, {}, options);
  for (const auto& x : w.items) engine.add_item(x);
  auto clients = build_clients(w);

  std::atomic<bool> sink_error{false};
  engine.start([&](std::vector<std::byte> frame) {
    const std::uint64_t sid = sync::v2::peek_session_id(frame);
    const std::size_t s = static_cast<std::size_t>((sid - 1) / w.shards);
    if (s >= clients.size()) {
      sink_error.store(true, std::memory_order_relaxed);
      return;
    }
    for (auto& reply : clients[s]->handle_frame(frame)) {
      engine.submit(std::move(reply));
    }
  });

  obs::Histogram latencies;
  bool correct = true;
  bench::Timer total;
  for (std::size_t s = 0; s < w.sessions; ++s) {
    bench::Timer t;
    for (auto& hello : clients[s]->hellos()) engine.submit(std::move(hello));
    while (!clients[s]->terminal()) {
      std::this_thread::yield();
    }
    latencies.record(as_us(t.elapsed()));
    correct = correct && clients[s]->complete() &&
              clients[s]->diff().remote.size() == w.d &&
              clients[s]->diff().local.empty();
  }
  const double wall = total.elapsed();
  engine.stop();
  return summarize(latencies, wall,
                   correct && !sink_error.load(std::memory_order_relaxed));
}

/// Loopback TCP: the same engine behind a SocketServer; one client
/// connection runs the sessions back to back.
RunResult run_loopback(const Workload& w) {
  sync::EngineOptions options;
  options.max_sessions = w.sessions + 16;
  sync::ShardedEngine<U64Symbol> engine(w.shards, {}, options);
  for (const auto& x : w.items) engine.add_item(x);
  auto clients = build_clients(w);

  net::SocketServer<U64Symbol> server(engine);
  server.start();
  net::SocketClient sock(server.port());

  obs::Histogram latencies;
  bool correct = true;
  bench::Timer total;
  for (std::size_t s = 0; s < w.sessions; ++s) {
    bench::Timer t;
    const bool done = run_session(sock, *clients[s], /*timeout_s=*/120.0);
    latencies.record(as_us(t.elapsed()));
    correct = correct && done && clients[s]->diff().remote.size() == w.d &&
              clients[s]->diff().local.empty();
  }
  const double wall = total.elapsed();
  server.stop();
  correct = correct && server.stats().protocol_errors == 0;
  return summarize(latencies, wall, correct);
}

// ------------------------------------------------------ connection sweep

struct SweepResult {
  std::size_t conns = 0;
  std::size_t sessions = 0;
  double wall_s = 0;
  double sessions_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double syscalls_per_session = 0;
  std::uint64_t sqe_submits = 0;
  bool ok = false;
};

/// Raises the soft RLIMIT_NOFILE to the hard cap and returns the largest
/// connection count that fits: each open connection costs two fds in this
/// process (client end + accepted end), and the engine, rings, eventfds,
/// and stdio need headroom.
std::size_t clamp_conns_to_nofile(std::size_t want) {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return want;
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &rl);
    (void)getrlimit(RLIMIT_NOFILE, &rl);
  }
  const auto cur = static_cast<std::size_t>(rl.rlim_cur);
  const std::size_t budget = cur > 256 ? (cur - 256) / 2 : 8;
  return std::min(want, budget);
}

/// One sweep tier: `conns` open connections, each running
/// `sessions_per_conn` small reconciliations (n=256, d=16, 2 shards) paced
/// round-robin by a fixed pool of client threads. Most connections sit
/// idle at any instant -- exactly the many-peers shape the serving loop
/// has to scale across -- while syscalls/session comes from the server's
/// own counters (connection setup amortizes into it).
SweepResult run_sweep_tier(bool use_uring, std::size_t conns,
                           std::size_t sessions_per_conn,
                           std::uint64_t seed) {
  constexpr std::size_t kN = 256;
  constexpr std::size_t kD = 16;
  constexpr std::size_t kShards = 2;

  std::vector<U64Symbol> items;
  items.reserve(kN);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < kN; ++i) {
    items.push_back(U64Symbol::random(rng.next()));
  }

  sync::ShardedEngine<U64Symbol> engine(kShards);
  for (const auto& x : items) engine.add_item(x);
  net::AnyServer<U64Symbol> server(engine, {}, use_uring);
  server.start();
  const std::uint16_t port = server.port();

  const std::size_t pool = std::min<std::size_t>(conns, 8);
  std::vector<std::unique_ptr<net::SocketClient>> socks(conns);
  std::atomic<std::size_t> connect_failures{0};

  const auto connect_range = [&](std::size_t t) {
    for (std::size_t c = t; c < conns; c += pool) {
      try {
        socks[c] = std::make_unique<net::SocketClient>(port);
      } catch (...) {
        connect_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  {
    std::vector<std::thread> ts;
    ts.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) ts.emplace_back(connect_range, t);
    for (auto& th : ts) th.join();
  }

  const std::size_t total = conns * sessions_per_conn;
  obs::Histogram lat;  // pool threads record concurrently (relaxed atomics)
  std::vector<unsigned char> okv(total, 0);

  bench::Timer wall;
  const auto serve_range = [&](std::size_t t) {
    for (std::size_t k = 0; k < sessions_per_conn; ++k) {
      for (std::size_t c = t; c < conns; c += pool) {
        if (!socks[c]) continue;
        const std::size_t g = c * sessions_per_conn + k;
        sync::ShardedClient<U64Symbol> client(g + 1, kShards,
                                              sync::BackendId::kRiblt);
        const std::size_t start = (g * kD) % kN;
        for (std::size_t i = 0; i < kN; ++i) {
          if (((i + kN - start) % kN) >= kD) client.add_item(items[i]);
        }
        bench::Timer timer;
        const bool done = run_session(*socks[c], client, /*timeout_s=*/120.0);
        lat.record(as_us(timer.elapsed()));
        okv[g] = done && client.diff().remote.size() == kD &&
                 client.diff().local.empty();
      }
    }
  };
  {
    std::vector<std::thread> ts;
    ts.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) ts.emplace_back(serve_range, t);
    for (auto& th : ts) th.join();
  }
  const double wall_s = wall.elapsed();

  for (auto& s : socks) s.reset();  // disconnect before stopping the server
  server.stop();
  const net::SocketServerStats stats = server.stats();

  bool correct = connect_failures.load() == 0 &&
                 stats.protocol_errors == 0 &&
                 stats.connections_accepted == conns;
  for (const unsigned char o : okv) correct = correct && o != 0;

  const RunResult base = summarize(lat, wall_s, correct);
  SweepResult r;
  r.conns = conns;
  r.sessions = total;
  r.wall_s = base.wall_s;
  r.sessions_per_s = base.sessions_per_s;
  r.p50_ms = base.p50_ms;
  r.p99_ms = base.p99_ms;
  r.syscalls_per_session =
      static_cast<double>(stats.syscalls()) / static_cast<double>(total);
  r.sqe_submits = stats.sqe_submits;
  r.ok = base.ok;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  bench::JsonReport report(opts, "extra_transport_throughput");

  Workload w;
  w.n = opts.pick<std::size_t>(2'000, 20'000, 50'000);
  w.d = opts.pick<std::size_t>(50, 100, 100);
  w.sessions = opts.pick<std::size_t>(16, 128, 512);
  w.shards = opts.pick<std::size_t>(2, 4, 4);
  w.items.reserve(w.n);
  SplitMix64 rng(opts.seed);
  for (std::size_t i = 0; i < w.n; ++i) {
    w.items.push_back(U64Symbol::random(rng.next()));
  }

  std::printf("# Extra: serving throughput with the transport in the loop "
              "(%u hardware threads)\n",
              std::thread::hardware_concurrency());
  std::printf("# n=%zu items, %zu sequential sessions, d=%zu, %zu shards, "
              "riblt backend\n",
              w.n, w.sessions, w.d, w.shards);
  std::printf("%-10s %-12s %-16s %-10s %-10s %-4s\n", "transport", "wall_s",
              "sessions_per_s", "p50_ms", "p99_ms", "ok");

  const RunResult mem = run_memory(w);
  std::printf("%-10s %-12.4f %-16.1f %-10.3f %-10.3f %-4s\n", "memory",
              mem.wall_s, mem.sessions_per_s, mem.p50_ms, mem.p99_ms,
              mem.ok ? "y" : "N");
  std::fflush(stdout);
  const RunResult loop = run_loopback(w);
  std::printf("%-10s %-12.4f %-16.1f %-10.3f %-10.3f %-4s\n", "loopback",
              loop.wall_s, loop.sessions_per_s, loop.p50_ms, loop.p99_ms,
              loop.ok ? "y" : "N");

  const double ratio =
      loop.sessions_per_s > 0 ? mem.sessions_per_s / loop.sessions_per_s : 0;
  // Acceptance criterion: loopback within the same order of magnitude at
  // d=100 (the default scale). Smoke sessions are so small (sub-ms) that
  // fixed per-frame transport costs dominate, so smoke gates correctness
  // only and just reports the ratio.
  const bool same_magnitude = ratio > 0 && (opts.smoke || ratio < 10.0);
  std::printf("# memory/loopback rate ratio: %.2fx (%s)\n", ratio,
              ratio < 10.0 ? "same order of magnitude"
                           : "outside one order of magnitude");

  for (const auto& [name, r] :
       {std::pair<const char*, const RunResult&>{"memory", mem},
        std::pair<const char*, const RunResult&>{"loopback", loop}}) {
    report.row()
        .str("transport", name)
        .num("n", w.n)
        .num("d", w.d)
        .num("shards", w.shards)
        .num("sessions", w.sessions)
        .num("wall_s", r.wall_s)
        .num("sessions_per_s", r.sessions_per_s)
        .num("p50_ms", r.p50_ms)
        .num("p99_ms", r.p99_ms);
  }

  bool sweep_ok = true;
  if (opts.sweep) {
    const std::vector<std::size_t> tiers =
        opts.smoke ? std::vector<std::size_t>{8, 32}
                   : std::vector<std::size_t>{100, 1'000, 10'000};
    const std::size_t session_target = opts.pick<std::size_t>(64, 2'048, 4'096);
    const bool have_uring = net::uring_available();

    std::printf("\n# Connection-count sweep: paced sessions over many open "
                "connections, epoll vs io_uring\n");
    if (!have_uring) {
      std::printf("# io_uring unavailable on this kernel/build: sweeping the "
                  "epoll server only, crossover gate skipped\n");
    }
    std::printf("%-8s %-7s %-9s %-10s %-16s %-10s %-10s %-18s %-12s %-4s\n",
                "backend", "conns", "sessions", "wall_s", "sessions_per_s",
                "p50_ms", "p99_ms", "syscalls_per_sess", "sqe_submits", "ok");

    SweepResult top_epoll;
    SweepResult top_uring;
    for (const std::size_t tier : tiers) {
      const std::size_t conns = clamp_conns_to_nofile(tier);
      if (conns != tier) {
        std::printf("# tier %zu clamped to %zu connections by RLIMIT_NOFILE\n",
                    tier, conns);
      }
      const std::size_t per_conn = std::max<std::size_t>(
          1, session_target / std::max<std::size_t>(1, conns));
      for (const bool use_uring : {false, true}) {
        if (use_uring && !have_uring) continue;
        const SweepResult r = run_sweep_tier(use_uring, conns, per_conn,
                                             opts.seed + tier);
        const char* backend = use_uring ? "uring" : "epoll";
        std::printf(
            "%-8s %-7zu %-9zu %-10.4f %-16.1f %-10.3f %-10.3f %-18.2f "
            "%-12llu %-4s\n",
            backend, r.conns, r.sessions, r.wall_s, r.sessions_per_s,
            r.p50_ms, r.p99_ms, r.syscalls_per_session,
            static_cast<unsigned long long>(r.sqe_submits), r.ok ? "y" : "N");
        std::fflush(stdout);
        sweep_ok = sweep_ok && r.ok;
        if (tier == tiers.back()) (use_uring ? top_uring : top_epoll) = r;
        report.row()
            .str("transport", backend)
            .num("tier", tier)
            .num("conns", r.conns)
            .num("sessions", r.sessions)
            .num("wall_s", r.wall_s)
            .num("sessions_per_s", r.sessions_per_s)
            .num("p50_ms", r.p50_ms)
            .num("p99_ms", r.p99_ms)
            .num("syscalls_per_session", r.syscalls_per_session)
            .num("sqe_submits", r.sqe_submits);
      }
    }

    // Crossover gate (default mode only): at the top tier the uring server
    // must serve at least as many sessions/s as epoll -- 5% tolerance for
    // the run-to-run noise of a shared box -- while issuing at most half
    // the syscalls per session. Sanitizer builds intercept every syscall
    // and distort both sides, so they report without gating.
    if (!opts.smoke && have_uring && !RIBLT_BENCH_SANITIZED) {
      const bool rate_ok =
          top_uring.sessions_per_s >= 0.95 * top_epoll.sessions_per_s;
      const bool syscall_ok = top_epoll.syscalls_per_session >=
                              2.0 * top_uring.syscalls_per_session;
      std::printf("# top-tier crossover: uring %.1f vs epoll %.1f sessions/s "
                  "(%s), syscalls/session %.2f vs %.2f (%s)\n",
                  top_uring.sessions_per_s, top_epoll.sessions_per_s,
                  rate_ok ? "ok" : "REGRESSION",
                  top_uring.syscalls_per_session,
                  top_epoll.syscalls_per_session,
                  syscall_ok ? ">=2x reduction" : "UNDER 2x");
      sweep_ok = sweep_ok && rate_ok && syscall_ok;
    } else if (!opts.smoke) {
      std::printf("# crossover gate skipped (%s)\n",
                  have_uring ? "sanitizer build" : "no io_uring");
    }
  }

  return (mem.ok && loop.ok && same_magnitude && sweep_ok) ? 0 : 1;
}
