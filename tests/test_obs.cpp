// Tests for the observability substrate (src/obs/): log-linear histogram
// geometry and quantile error bounds, snapshot merge algebra, registry
// dedup/kind rules, concurrent record-during-scrape (the TSan job hammers
// this), the session tracer's ring semantics, and the engine/replica
// instrumentation wiring (registry cells move when sessions run).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"
#include "sync/sharded.hpp"
#include "testutil.hpp"

namespace ribltx::obs {
namespace {

using testing::make_set_pair;
using Item8 = U64Symbol;

// ------------------------------------------------------- bucket geometry

TEST(Histogram, UnitBucketsAreExactBelowSub) {
  for (std::uint64_t v = 0; v < HistogramLayout::kSub; ++v) {
    ASSERT_EQ(HistogramLayout::bucket_index(v), v);
    ASSERT_EQ(HistogramLayout::bucket_lower(v), v);
    ASSERT_EQ(HistogramLayout::bucket_upper(v), v + 1);
  }
}

TEST(Histogram, BucketBoundsContainTheirValues) {
  SplitMix64 rng(7);
  std::vector<std::uint64_t> probes = {
      32,  33,  63,  64,  65,  1000,  4096,  4097,  (1ull << 32) - 1,
      1ull << 32, (1ull << 32) + 1, ~0ull, ~0ull - 1, 1ull << 62};
  for (int i = 0; i < 2000; ++i) {
    // Random values spread across octaves (shifted so all widths hit).
    probes.push_back(rng.next() >> (rng.next() % 60));
  }
  for (const std::uint64_t v : probes) {
    const std::size_t idx = HistogramLayout::bucket_index(v);
    ASSERT_LT(idx, HistogramLayout::kBucketCount);
    const std::uint64_t lo = HistogramLayout::bucket_lower(idx);
    const std::uint64_t hi = HistogramLayout::bucket_upper(idx);
    ASSERT_LE(lo, v) << "v=" << v;
    // Upper bound is exclusive except at the top, where it clamps to the
    // u64 maximum (inclusive by necessity).
    if (hi != ~0ull) {
      ASSERT_GT(hi, v) << "v=" << v;
    } else {
      ASSERT_GE(hi, v) << "v=" << v;
    }
    // Log-linear width bound: width <= lower/kSub for v >= kSub (the
    // relative-error contract every quantile consumer leans on).
    if (v >= HistogramLayout::kSub && idx + 1 < HistogramLayout::kBucketCount) {
      ASSERT_LE(hi - lo, lo / HistogramLayout::kSub) << "v=" << v;
    }
  }
}

TEST(Histogram, BucketIndexIsMonotone) {
  // Monotonicity across every boundary value (lower(i) for all i).
  std::size_t prev = 0;
  for (std::size_t i = 0; i < HistogramLayout::kBucketCount; ++i) {
    const std::uint64_t lo = HistogramLayout::bucket_lower(i);
    const std::size_t idx = HistogramLayout::bucket_index(lo);
    ASSERT_EQ(idx, i) << "lower(" << i << ")=" << lo;
    ASSERT_GE(idx, prev);
    prev = idx;
  }
}

// ------------------------------------------------------- merge algebra

TEST(Histogram, MergeOfSnapshotsEqualsSnapshotOfMerge) {
  SplitMix64 rng(42);
  Histogram a;
  Histogram b;
  Histogram both;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t va = rng.next() >> (rng.next() % 50);
    const std::uint64_t vb = rng.next() >> (rng.next() % 50);
    a.record(va);
    b.record(vb);
    both.record(va);
    both.record(vb);
  }
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const HistogramSnapshot direct = both.snapshot();
  ASSERT_EQ(merged.count, direct.count);
  ASSERT_EQ(merged.sum, direct.sum);
  ASSERT_EQ(merged.buckets, direct.buckets);
  ASSERT_EQ(merged.bucket_total(), direct.bucket_total());
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    ASSERT_EQ(merged.quantile(q), direct.quantile(q));
  }
}

// --------------------------------------------------- quantile error bound

TEST(Histogram, QuantileMatchesSortedVectorWithinBucketWidth) {
  SplitMix64 rng(1234);
  for (int trial = 0; trial < 8; ++trial) {
    Histogram h;
    std::vector<std::uint64_t> samples;
    const int n = 100 + static_cast<int>(rng.next() % 5000);
    for (int i = 0; i < n; ++i) {
      // Mixed regimes: small exact values and large bucketed ones.
      const std::uint64_t v = (rng.next() % 2) ? rng.next() % 64
                                               : rng.next() >> (rng.next() % 40);
      samples.push_back(v);
      h.record(v);
    }
    std::sort(samples.begin(), samples.end());
    const HistogramSnapshot s = h.snapshot();
    for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
      const auto rank = static_cast<std::size_t>(
          q * static_cast<double>(samples.size() - 1) + 0.5);
      const std::uint64_t exact = samples[rank];
      const double est = s.quantile(q);
      // The estimate lives in the same bucket as the exact rank value:
      // error is at most one bucket width = exact/kSub (plus the unit
      // slop of the midpoint convention).
      const double bound =
          static_cast<double>(exact) / HistogramLayout::kSub + 1.0;
      const double err = est > static_cast<double>(exact)
                             ? est - static_cast<double>(exact)
                             : static_cast<double>(exact) - est;
      ASSERT_LE(err, bound) << "q=" << q << " n=" << samples.size()
                            << " exact=" << exact << " est=" << est;
    }
  }
}

// -------------------------------------------- concurrency (TSan target)

TEST(Histogram, ConcurrentRecordDuringScrapeIsCoherent) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  Histogram h;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, &go, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      SplitMix64 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        h.record(rng.next() >> (rng.next() % 48));
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Scrape while the writers hammer: every intermediate snapshot must be
  // internally monotone (bucket_total never exceeds a later total).
  std::uint64_t last_total = 0;
  for (int i = 0; i < 50; ++i) {
    const HistogramSnapshot s = h.snapshot();
    const std::uint64_t total = s.bucket_total();
    ASSERT_GE(total, last_total);
    ASSERT_LE(total, static_cast<std::uint64_t>(kThreads) * kPerThread);
    (void)s.quantile(0.99);  // must not crash/underflow mid-race
    last_total = total;
  }
  for (auto& th : writers) th.join();
  const HistogramSnapshot final_snap = h.snapshot();
  ASSERT_EQ(final_snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(final_snap.bucket_total(), final_snap.count);
}

TEST(Registry, ConcurrentRegistrationAndScrape) {
  MetricsRegistry reg;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, &go, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      Counter& c = reg.counter("obs_test_shared_total", "shared cell");
      Histogram& h = reg.histogram(
          "obs_test_lat_us", "latency",
          {{"worker", std::to_string(t)}});
      for (int i = 0; i < 5000; ++i) {
        c.inc();
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int i = 0; i < 20; ++i) (void)reg.snapshot();
  for (auto& th : threads) th.join();
  const MetricsSnapshot s = reg.snapshot();
  const MetricsSnapshot::Series* shared =
      s.find_series("obs_test_shared_total");
  ASSERT_NE(shared, nullptr);
  ASSERT_EQ(shared->counter, 4u * 5000u);  // all threads shared one cell
  const MetricsSnapshot::Family* lat = s.find("obs_test_lat_us");
  ASSERT_NE(lat, nullptr);
  ASSERT_EQ(lat->series.size(), 4u);  // distinct labels -> distinct cells
}

// ----------------------------------------------------------- registry

TEST(Registry, DedupesOnNameAndSortedLabels) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total", "x", {{"b", "2"}, {"a", "1"}});
  Counter& b = reg.counter("x_total", "x", {{"a", "1"}, {"b", "2"}});
  ASSERT_EQ(&a, &b);  // label order is identity-blind
  Counter& c = reg.counter("x_total", "x", {{"a", "1"}});
  ASSERT_NE(&a, &c);
}

TEST(Registry, RejectsKindMismatchAndBadNames) {
  MetricsRegistry reg;
  (void)reg.counter("y_total", "y");
  ASSERT_THROW((void)reg.gauge("y_total", "y"), std::invalid_argument);
  ASSERT_THROW((void)reg.histogram("y_total", "y"), std::invalid_argument);
  ASSERT_THROW((void)reg.counter("9bad", "bad"), std::invalid_argument);
  ASSERT_THROW((void)reg.counter("has space", "bad"), std::invalid_argument);
  ASSERT_THROW((void)reg.counter("ok_total", "ok", {{"9bad", "v"}}),
               std::invalid_argument);
}

TEST(Registry, SnapshotCarriesValuesAndSyntheticFamiliesCompose) {
  MetricsRegistry reg;
  reg.counter("hits_total", "hits").inc(7);
  reg.gauge("depth", "queue depth").set(-3);
  reg.histogram("lat_us", "latency").record(100);
  MetricsSnapshot s = reg.snapshot();
  s.add_counter("synthetic_total", "appended at scrape", 11,
                {{"tier", "server"}});
  s.add_gauge("synthetic_level", "appended gauge", 5);
  ASSERT_EQ(s.find_series("hits_total")->counter, 7u);
  ASSERT_EQ(s.find_series("depth")->gauge, -3);
  ASSERT_EQ(s.find_series("lat_us")->hist.bucket_total(), 1u);
  ASSERT_EQ(s.find_series("synthetic_total", {{"tier", "server"}})->counter,
            11u);
  ASSERT_EQ(s.find_series("synthetic_level")->gauge, 5);
  // Both renderers accept the composed snapshot; the text form lints.
  const std::string text = prometheus_text(s);
  ASSERT_EQ(lint_prometheus(text), "");
  const std::string json = json_text(s);
  ASSERT_NE(json.find("\"synthetic_total\""), std::string::npos);
  ASSERT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Registry, HistogramLeBoundsAreInclusive) {
  // Regression: `le` was rendered as bucket_upper (one PAST the largest
  // contained value), so an observation equal to a rendered boundary was
  // excluded from its own cumulative bucket. A unit-width bucket holding
  // value 6 must render le="6" and count 6 itself.
  MetricsRegistry reg;
  Histogram& h = reg.histogram("v", "values");
  h.record(6);
  h.record(64);  // bucket [64, 66): largest contained value is 65
  const std::string text = prometheus_text(reg.snapshot());
  ASSERT_NE(text.find("v_bucket{le=\"6\"} 1\n"), std::string::npos) << text;
  ASSERT_NE(text.find("v_bucket{le=\"65\"} 2\n"), std::string::npos) << text;
  ASSERT_NE(text.find("v_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  ASSERT_EQ(lint_prometheus(text), "");
}

// ------------------------------------------------------------- tracer

TEST(Tracer, RecordsAndExportsLifecycleEvents) {
  Tracer tracer(64);
  TraceEvent ev;
  ev.ts_s = 1.5;
  ev.session_id = 42;
  ev.kind = TraceKind::kOpen;
  ev.backend = 1;
  ev.a = 10;
  ev.b = 4;
  tracer.record(ev);
  ev.kind = TraceKind::kDone;
  ev.ts_s = 2.0;
  tracer.record(ev);
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  ASSERT_EQ(events[0].session_id, 42u);
  ASSERT_EQ(events[0].kind, TraceKind::kOpen);
  ASSERT_EQ(events[1].kind, TraceKind::kDone);
  const std::string json = tracer.chrome_json();
  ASSERT_NE(json.find("\"traceEvents\""), std::string::npos);
  ASSERT_NE(json.find("session_open"), std::string::npos);
  ASSERT_NE(json.find("\"sid\":42"), std::string::npos);
}

TEST(Tracer, RingRetainsNewestAndMergesThreads) {
  constexpr std::size_t kCap = 128;
  Tracer tracer(kCap);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&tracer, t] {
      for (std::uint64_t i = 0; i < 1000; ++i) {
        TraceEvent ev;
        ev.session_id = static_cast<std::uint64_t>(t) * 10000 + i;
        ev.kind = TraceKind::kRound;
        tracer.record(ev);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(tracer.ring_count(), 3u);
  const std::vector<TraceEvent> events = tracer.events();
  // Newest kCap - 1 per ring survive: the exporter always sacrifices one
  // slot to cover a possibly in-flight record (it cannot tell a
  // quiescent ring from one with a store racing the head bump).
  ASSERT_EQ(events.size(), 3u * (kCap - 1));
  // Per ring the retained window is the newest events in order.
  for (int t = 0; t < 3; ++t) {
    std::vector<std::uint64_t> ids;
    for (const TraceEvent& ev : events) {
      if (ev.session_id / 10000 == static_cast<std::uint64_t>(t)) {
        ids.push_back(ev.session_id % 10000);
      }
    }
    ASSERT_EQ(ids.size(), kCap - 1);
    ASSERT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    ASSERT_EQ(ids.back(), 999u);
  }
}

TEST(Tracer, SequentialTracersAtTheSameAddressDoNotAlias) {
  // Regression: the per-thread ring cache was keyed on the tracer's
  // address, so a tracer constructed where a destroyed one lived reused
  // the dead tracer's freed ring (use-after-free). optional guarantees
  // the same storage for both incarnations.
  std::optional<Tracer> tracer;
  tracer.emplace(16);
  TraceEvent ev;
  ev.session_id = 1;
  ev.kind = TraceKind::kOpen;
  tracer->record(ev);
  ASSERT_EQ(tracer->ring_count(), 1u);
  tracer.reset();
  tracer.emplace(16);
  ev.session_id = 2;
  tracer->record(ev);  // must register a fresh ring, not write the old one
  ASSERT_EQ(tracer->ring_count(), 1u);
  const std::vector<TraceEvent> events = tracer->events();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].session_id, 2u);
}

TEST(Tracer, AlternatingBetweenLiveTracersReusesRings) {
  // Regression: switching tracers registered a brand-new ring on every
  // switch, growing rings_ without bound.
  Tracer a(16);
  Tracer b(16);
  TraceEvent ev;
  ev.kind = TraceKind::kRound;
  for (int i = 0; i < 100; ++i) {
    ev.session_id = static_cast<std::uint64_t>(i);
    a.record(ev);
    b.record(ev);
  }
  ASSERT_EQ(a.ring_count(), 1u);
  ASSERT_EQ(b.ring_count(), 1u);
  ASSERT_EQ(a.events().size(), 15u);  // capacity - 1 retained
  ASSERT_EQ(b.events().size(), 15u);
}

TEST(Tracer, ConcurrentScrapeExportsOnlyRealEvents) {
  // Writers lap a tiny ring while the exporter walks it; every exported
  // event must be a real recorded event, never a torn mix of two (the
  // per-field tag invariant below breaks on any cross-event mix). Also
  // the TSan job's race check for record() vs events().
  Tracer tracer(8);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&tracer, &stop, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        TraceEvent ev;
        ev.session_id = (static_cast<std::uint64_t>(t) << 32) | i;
        ev.a = ev.session_id ^ 0x5a5a5a5a5a5a5a5aull;
        ev.b = ~ev.session_id;
        ev.kind = TraceKind::kCredit;
        tracer.record(ev);
        ++i;
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    for (const TraceEvent& ev : tracer.events()) {
      ASSERT_EQ(ev.a, ev.session_id ^ 0x5a5a5a5a5a5a5a5aull);
      ASSERT_EQ(ev.b, ~ev.session_id);
      ASSERT_EQ(ev.kind, TraceKind::kCredit);
    }
  }
  stop.store(true);
  for (auto& th : writers) th.join();
}

// ----------------------------------------- engine instrumentation wiring

TEST(ObsWiring, EngineSessionsMoveRegistryCellsAndTracer) {
  MetricsRegistry reg;
  Tracer tracer;
  const auto w = make_set_pair<Item8>(400, 12, 8, 77);
  sync::EngineOptions options;
  options.metrics = &reg;
  options.tracer = &tracer;
  sync::ShardedEngine<Item8> engine(2, {}, options);
  for (const auto& x : w.a) engine.add_item(x);

  sync::ShardedClient<Item8> client(1, 2, sync::BackendId::kRiblt);
  for (const auto& y : w.b) client.add_item(y);
  for (auto& hello : client.hellos()) {
    for (const auto& reply : engine.handle_frame(hello)) {
      (void)client.handle_frame(reply);
    }
  }
  std::size_t guard = 0;
  bool progressed = true;
  while (progressed && !client.terminal() && guard++ < 100000) {
    progressed = false;
    for (std::size_t s = 0; s < 2; ++s) {
      const auto frame = engine.next_frame(client.sub_session_id(s));
      if (!frame) continue;
      progressed = true;
      for (const auto& reply : client.handle_frame(*frame)) {
        for (const auto& response : engine.handle_frame(reply)) {
          (void)client.handle_frame(response);
        }
      }
    }
  }
  ASSERT_TRUE(client.complete());
  // Per-session cells fold at retirement (a server does this on
  // disconnect); close both sub-sessions to land them.
  for (std::size_t s = 0; s < 2; ++s) {
    ASSERT_TRUE(engine.close_session(client.sub_session_id(s)));
  }

  const MetricsSnapshot s = reg.snapshot();
  const MetricsSnapshot::Series* opened =
      s.find_series("riblt_sessions_opened_total", {{"backend", "riblt"}});
  ASSERT_NE(opened, nullptr);
  ASSERT_EQ(opened->counter, 2u);  // one per shard, shared cells
  const MetricsSnapshot::Series* done =
      s.find_series("riblt_sessions_done_total", {{"backend", "riblt"}});
  ASSERT_NE(done, nullptr);
  ASSERT_EQ(done->counter, 2u);
  const MetricsSnapshot::Series* bytes =
      s.find_series("riblt_session_bytes_to_peer", {{"backend", "riblt"}});
  ASSERT_NE(bytes, nullptr);
  ASSERT_EQ(bytes->hist.bucket_total(), 2u);
  ASSERT_GT(bytes->hist.sum, 0u);

  // Lifecycle landed in the tracer: open and close per sub-session.
  std::size_t opens = 0;
  std::size_t closes = 0;
  for (const TraceEvent& ev : tracer.events()) {
    opens += ev.kind == TraceKind::kOpen ? 1 : 0;
    closes += ev.kind == TraceKind::kClose ? 1 : 0;
  }
  ASSERT_EQ(opens, 2u);
  ASSERT_EQ(closes, 2u);

  // The full composed exposition (registry + engine totals view) lints.
  MetricsSnapshot composed = reg.snapshot();
  sync::append_engine_totals(composed, engine.stats().totals);
  const std::string text = prometheus_text(composed);
  ASSERT_EQ(lint_prometheus(text), "") << text.substr(0, 400);
  const MetricsSnapshot::Series* totals =
      composed.find_series("riblt_engine_sessions_total");
  ASSERT_NE(totals, nullptr);
  ASSERT_EQ(totals->counter, 2u);
}

}  // namespace
}  // namespace ribltx::obs
