// Tests for the runtime-polymorphic Reconciler backend interface: every
// backend driven through the same encoder/decoder loopback recovers the
// same symmetric difference, round-request dialogues escalate correctly,
// and misuse (CPI on wide items, out-of-sequence rounds) fails loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sync/reconciler.hpp"
#include "testutil.hpp"

namespace ribltx::sync {
namespace {

using testing::key_set;
using testing::make_set_pair;
using Item32 = ByteSymbol<32>;

constexpr BackendId kAllBackends[] = {BackendId::kRiblt,
                                      BackendId::kIbltStrata, BackendId::kCpi,
                                      BackendId::kMetIblt};

/// Drives one encoder/decoder pair over an in-memory loopback until the
/// decoder completes: emitted chunks are absorbed directly, round requests
/// are fed straight back. Returns false on a stall (encoder has nothing to
/// send and the decoder asked for nothing).
template <Symbol T>
bool pump_backend(ReconcilerEncoder<T>& enc, ReconcilerDecoder<T>& dec,
                  std::size_t max_chunks = 100'000) {
  for (std::size_t i = 0; i < max_chunks && !dec.decoded(); ++i) {
    ByteWriter w;
    const std::size_t n = enc.emit(w, 1024);
    if (n > 0) {
      dec.absorb(w.view());
      if (dec.decoded()) return true;
    }
    if (auto request = dec.round_request()) {
      enc.handle_round_request(*request);
    } else if (n == 0) {
      return false;  // stalled
    }
  }
  return dec.decoded();
}

/// Checks a recovered diff against the ground-truth workload.
template <Symbol T>
void expect_diff_matches(const SetDiff<T>& diff,
                         const testing::SetPair<T>& w) {
  REQUIRE_EQ(diff.remote.size(), w.only_a.size());
  REQUIRE_EQ(diff.local.size(), w.only_b.size());
  CHECK(key_set(diff.remote) == key_set(w.only_a));
  CHECK(key_set(diff.local) == key_set(w.only_b));
}

template <Symbol T>
void run_backend_loopback(BackendId backend, std::size_t shared,
                          std::size_t only_a, std::size_t only_b,
                          std::uint64_t seed, ReconcilerConfig config = {}) {
  const auto w = make_set_pair<T>(shared, only_a, only_b, seed);
  auto enc = make_reconciler_encoder<T>(backend, config);
  auto dec = make_reconciler_decoder<T>(backend, config);
  for (const auto& x : w.a) enc->add_item(x);
  for (const auto& y : w.b) dec->add_item(y);
  REQUIRE(pump_backend(*enc, *dec));
  expect_diff_matches(dec->diff(), w);
}

TEST(Reconciler, EveryBackendRecoversTheDifference) {
  for (const BackendId backend : kAllBackends) {
    run_backend_loopback<U64Symbol>(backend, 200, 7, 5, 42);
  }
}

TEST(Reconciler, WideItemBackendsRecoverTheDifference) {
  for (const BackendId backend :
       {BackendId::kRiblt, BackendId::kIbltStrata, BackendId::kMetIblt}) {
    run_backend_loopback<Item32>(backend, 300, 11, 3, 43);
  }
}

TEST(Reconciler, EmptyDifferenceCompletesQuickly) {
  for (const BackendId backend : kAllBackends) {
    run_backend_loopback<U64Symbol>(backend, 150, 0, 0, 44);
  }
}

TEST(Reconciler, RibltHonorsNarrowChecksums) {
  ReconcilerConfig config;
  config.checksum_len = 4;
  const auto w = make_set_pair<Item32>(400, 9, 6, 45);
  auto enc = make_reconciler_encoder<Item32>(BackendId::kRiblt, config);
  auto dec = make_reconciler_decoder<Item32>(BackendId::kRiblt, config);
  for (const auto& x : w.a) enc->add_item(x);
  for (const auto& y : w.b) dec->add_item(y);
  REQUIRE(pump_backend(*enc, *dec));
  expect_diff_matches(dec->diff(), w);

  // The narrow stream really is narrower: the first coded symbol of a
  // fresh 4-byte-checksum stream is exactly 4 bytes shorter than the
  // 8-byte one (same sum and count varint, half the checksum).
  auto enc4 = make_reconciler_encoder<Item32>(BackendId::kRiblt, config);
  auto enc8 = make_reconciler_encoder<Item32>(BackendId::kRiblt, {});
  for (const auto& x : w.a) {
    enc4->add_item(x);
    enc8->add_item(x);
  }
  ByteWriter narrow, wide;
  (void)enc4->emit(narrow, 0);  // budget 0: exactly one symbol
  (void)enc8->emit(wide, 0);
  CHECK_EQ(wide.size() - narrow.size(), 4u);
}

TEST(Reconciler, RatelessFlagMatchesDialogue) {
  for (const BackendId backend : kAllBackends) {
    auto enc = make_reconciler_encoder<U64Symbol>(backend);
    CHECK_EQ(enc->rateless(), backend == BackendId::kRiblt);
  }
  auto riblt = make_reconciler_encoder<U64Symbol>(BackendId::kRiblt);
  EXPECT_THROW(riblt->handle_round_request({}), ProtocolError);
}

TEST(Reconciler, CpiRequiresEightByteItems) {
  EXPECT_THROW((void)make_reconciler_encoder<Item32>(BackendId::kCpi),
               ProtocolError);
  EXPECT_THROW((void)make_reconciler_decoder<Item32>(BackendId::kCpi),
               ProtocolError);
}

TEST(Reconciler, CpiEscalatesCapacityUntilDecode) {
  ReconcilerConfig config;
  config.cpi_initial_capacity = 4;
  const auto w = make_set_pair<U64Symbol>(100, 10, 9, 46);  // d=19 > 4
  auto enc = make_reconciler_encoder<U64Symbol>(BackendId::kCpi, config);
  auto dec = make_reconciler_decoder<U64Symbol>(BackendId::kCpi, config);
  for (const auto& x : w.a) enc->add_item(x);
  for (const auto& y : w.b) dec->add_item(y);
  REQUIRE(pump_backend(*enc, *dec));
  expect_diff_matches(dec->diff(), w);
}

TEST(Reconciler, StrataSizesTheFirstTableFromTheEstimate) {
  // A large difference must not start from the minimum table size: the
  // first real round's request grows with the estimator's answer.
  const auto w = make_set_pair<U64Symbol>(500, 400, 350, 47);
  auto enc = make_reconciler_encoder<U64Symbol>(BackendId::kIbltStrata);
  auto dec = make_reconciler_decoder<U64Symbol>(BackendId::kIbltStrata);
  for (const auto& x : w.a) enc->add_item(x);
  for (const auto& y : w.b) dec->add_item(y);

  ByteWriter estimator;
  REQUIRE(enc->emit(estimator, 1024) > 0);
  dec->absorb(estimator.view());
  const auto request = dec->round_request();
  REQUIRE(request.has_value());
  ByteReader r(*request);
  const std::uint64_t cells = r.uvarint();
  CHECK(cells >= 400);  // ~2x an estimate of d=750 (estimates vary ~2x)
  enc->handle_round_request(*request);
  REQUIRE(pump_backend(*enc, *dec));
  expect_diff_matches(dec->diff(), w);
}

TEST(Reconciler, MetEncoderRejectsOutOfSequenceRounds) {
  auto enc = make_reconciler_encoder<U64Symbol>(BackendId::kMetIblt);
  enc->add_item(U64Symbol::random(1));
  ByteWriter w0;
  REQUIRE(enc->emit(w0, 1024) > 0);  // block 0 goes out unprompted
  ByteWriter req;
  req.uvarint(3);  // skipping blocks 1 and 2
  EXPECT_THROW(enc->handle_round_request(req.view()), ProtocolError);
}

TEST(Reconciler, RoundBackendsWaitBetweenRounds) {
  for (const BackendId backend :
       {BackendId::kIbltStrata, BackendId::kCpi, BackendId::kMetIblt}) {
    auto enc = make_reconciler_encoder<U64Symbol>(backend);
    enc->add_item(U64Symbol::random(2));
    ByteWriter first, second;
    CHECK(enc->emit(first, 1024) > 0);
    CHECK_EQ(enc->emit(second, 1024), 0u);  // blocked until a request
  }
}

TEST(Reconciler, DecoderRejectsMalformedPayloads) {
  const auto w = make_set_pair<U64Symbol>(64, 2, 2, 48);
  for (const BackendId backend :
       {BackendId::kIbltStrata, BackendId::kCpi, BackendId::kMetIblt}) {
    auto dec = make_reconciler_decoder<U64Symbol>(backend);
    for (const auto& y : w.b) dec->add_item(y);
    std::vector<std::byte> junk(11, std::byte{0x5a});
    EXPECT_THROW(dec->absorb(junk), std::exception);
  }
}

}  // namespace
}  // namespace ribltx::sync
