// Tests for the synthetic ledger: deterministic replay, prefix consistency
// across heights, difference accounting, and integration with the trie and
// the Rateless IBLT item model.
#include <gtest/gtest.h>

#include <unordered_set>

#include "ledger/ledger.hpp"

namespace ribltx::ledger {
namespace {

LedgerParams small_params() {
  LedgerParams p;
  p.base_accounts = 2000;
  p.modifies_per_block = 8;
  p.creates_per_block = 2;
  p.seed = 42;
  return p;
}

TEST(Ledger, DeterministicMaterialization) {
  const auto p = small_params();
  LedgerState a(p, 10), b(p, 10);
  EXPECT_EQ(a.accounts(), b.accounts());
}

TEST(Ledger, PopulationGrowsWithCreates) {
  const auto p = small_params();
  LedgerState s0(p, 0), s10(p, 10);
  EXPECT_EQ(s0.account_count(), p.base_accounts);
  EXPECT_EQ(s10.account_count(), p.base_accounts + 10 * p.creates_per_block);
}

TEST(Ledger, SharedHistoryIsPrefixConsistent) {
  // Accounts never touched after block 5 must be byte-identical between
  // the state at block 5 and the state at block 20.
  const auto p = small_params();
  LedgerState s5(p, 5), s20(p, 20);
  std::size_t shared = 0;
  for (std::size_t i = 0; i < s5.account_count(); ++i) {
    if (s5.accounts()[i] == s20.accounts()[i]) ++shared;
    EXPECT_EQ(s5.accounts()[i].key, s20.accounts()[i].key);  // keys stable
  }
  // Only ~15 blocks x 8 modifies can differ.
  EXPECT_GE(shared, s5.account_count() - 15 * p.modifies_per_block);
  EXPECT_LT(shared, s5.account_count());  // but something did change
}

TEST(Ledger, SymmetricDifferenceMatchesMaterializedStates) {
  const auto p = small_params();
  const std::uint64_t b0 = 3, b1 = 17;
  const std::size_t predicted = symmetric_difference_size(p, b0, b1);

  LedgerState s0(p, b0), s1(p, b1);
  std::unordered_set<std::uint64_t> items0, items1;
  const SipKey k{1, 2};
  for (const auto& s : s0.as_symbols()) items0.insert(siphash24(k, s.bytes()));
  for (const auto& s : s1.as_symbols()) items1.insert(siphash24(k, s.bytes()));
  std::size_t actual = 0;
  for (auto h : items0) {
    if (!items1.contains(h)) ++actual;
  }
  for (auto h : items1) {
    if (!items0.contains(h)) ++actual;
  }
  EXPECT_EQ(predicted, actual);
  EXPECT_GT(predicted, 0u);
}

TEST(Ledger, DifferenceGrowsLinearlyWithStaleness) {
  // Fig 12's premise: |A (-) B| ~ staleness. With collisions (an account
  // touched twice counts once) growth is mildly sub-linear; check within
  // 25% of proportionality over a 4x span.
  const auto p = small_params();
  const auto d10 = static_cast<double>(symmetric_difference_size(p, 0, 10));
  const auto d40 = static_cast<double>(symmetric_difference_size(p, 0, 40));
  EXPECT_GT(d40, 3.0 * d10);
  EXPECT_LT(d40, 4.4 * d10);
}

TEST(Ledger, SymmetricDifferenceIsSymmetric) {
  const auto p = small_params();
  EXPECT_EQ(symmetric_difference_size(p, 2, 9),
            symmetric_difference_size(p, 9, 2));
  EXPECT_EQ(symmetric_difference_size(p, 7, 7), 0u);
}

TEST(Ledger, BlocksForStaleness) {
  const auto p = small_params();  // 12 s per block
  EXPECT_EQ(blocks_for_staleness(p, 0.0), 0u);
  EXPECT_EQ(blocks_for_staleness(p, 12.0), 1u);
  EXPECT_EQ(blocks_for_staleness(p, 3600.0), 300u);
  EXPECT_THROW((void)blocks_for_staleness(p, -1.0), std::invalid_argument);
}

TEST(Ledger, StateItemLayout) {
  const auto p = small_params();
  LedgerState s(p, 1);
  const auto& account = s.accounts()[7];
  const StateItem item = to_state_item(account);
  EXPECT_EQ(std::memcmp(item.data.data(), account.key.data(), 20), 0);
  EXPECT_EQ(std::memcmp(item.data.data() + 20, account.value.data(), 72), 0);
  EXPECT_EQ(StateItem::kSize, 92u);
}

TEST(Ledger, TrieRootTracksState) {
  const auto p = small_params();
  LedgerState s3(p, 3), s3b(p, 3), s4(p, 4);
  const auto t3 = s3.build_trie();
  const auto t3b = s3b.build_trie();
  const auto t4 = s4.build_trie();
  EXPECT_EQ(t3.root_hash(), t3b.root_hash());
  EXPECT_NE(t3.root_hash(), t4.root_hash());
  EXPECT_EQ(t3.account_count(), s3.account_count());
}

TEST(Ledger, RejectsEmptyBase) {
  LedgerParams p;
  p.base_accounts = 0;
  EXPECT_THROW(LedgerState(p, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ribltx::ledger
