// Tests for the PinSketch baseline: GF(2^64) field axioms, polynomial
// arithmetic, Berlekamp-Massey + trace-algorithm root finding (through the
// public decode path), and end-to-end reconciliation.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "pinsketch/gf64.hpp"
#include "pinsketch/pinsketch.hpp"
#include "pinsketch/poly.hpp"

namespace ribltx::pinsketch {
namespace {

// ------------------------------------------------------------------ GF64

TEST(GF64, AdditionIsXor) {
  EXPECT_EQ(GF64(0b1100) + GF64(0b1010), GF64(0b0110));
  EXPECT_EQ(GF64(7) + GF64(7), GF64::zero());
  EXPECT_EQ(GF64(5) + GF64::zero(), GF64(5));
}

TEST(GF64, ReductionPolynomialAnchor) {
  // x^63 * x = x^64 == x^4 + x^3 + x + 1 (mask 0x1b) by construction.
  EXPECT_EQ(GF64(1ULL << 63) * GF64(2), GF64(0x1b));
  // Plain polynomial product below the modulus: x^3 * x^4 = x^7.
  EXPECT_EQ(GF64(1 << 3) * GF64(1 << 4), GF64(1 << 7));
  EXPECT_EQ(GF64(3) * GF64(3), GF64(5));  // (x+1)^2 = x^2+1
}

TEST(GF64, MultiplicationAxioms) {
  SplitMix64 rng(1);
  for (int t = 0; t < 200; ++t) {
    const GF64 a(rng.next()), b(rng.next()), c(rng.next());
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * GF64::one(), a);
    EXPECT_EQ(a * GF64::zero(), GF64::zero());
  }
}

TEST(GF64, FrobeniusEndomorphism) {
  SplitMix64 rng(2);
  for (int t = 0; t < 100; ++t) {
    const GF64 a(rng.next()), b(rng.next());
    EXPECT_EQ((a + b).squared(), a.squared() + b.squared());
  }
}

TEST(GF64, InverseAndGroupOrder) {
  SplitMix64 rng(3);
  for (int t = 0; t < 50; ++t) {
    GF64 a(rng.next());
    if (a.is_zero()) a = GF64::one();
    EXPECT_EQ(a * a.inverse(), GF64::one());
    // Lagrange: a^(2^64 - 1) = 1.
    EXPECT_EQ(a.pow(~std::uint64_t{0}), GF64::one());
  }
  EXPECT_THROW((void)GF64::zero().inverse(), std::domain_error);
}

TEST(GF64, PowLaws) {
  const GF64 g(0x123456789abcdef0ULL);
  EXPECT_EQ(g.pow(0), GF64::one());
  EXPECT_EQ(g.pow(1), g);
  EXPECT_EQ(g.pow(5), g * g * g * g * g);
  EXPECT_EQ(g.pow(3) * g.pow(4), g.pow(7));
}

TEST(GF64, SymbolRoundTrip) {
  const auto s = U64Symbol::from_u64(0xdeadbeefcafef00dULL);
  EXPECT_EQ(GF64::from_symbol(s).bits(), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(GF64(0xdeadbeefcafef00dULL).to_symbol(), s);
}

// ------------------------------------------------------------------ Poly

TEST(Poly, DegreeAndTrim) {
  EXPECT_EQ(Poly{}.degree(), -1);
  EXPECT_EQ(Poly::constant(GF64(5)).degree(), 0);
  EXPECT_EQ(Poly::constant(GF64::zero()).degree(), -1);
  // Trailing zeros are trimmed on construction.
  Poly p(std::vector<GF64>{GF64(1), GF64(2), GF64::zero()});
  EXPECT_EQ(p.degree(), 1);
}

TEST(Poly, MulMatchesEval) {
  SplitMix64 rng(4);
  const Poly a(std::vector<GF64>{GF64(rng.next()), GF64(rng.next()),
                                 GF64(rng.next())});
  const Poly b(std::vector<GF64>{GF64(rng.next()), GF64(rng.next())});
  const Poly ab = a * b;
  for (int t = 0; t < 20; ++t) {
    const GF64 x(rng.next());
    EXPECT_EQ(ab.eval(x), a.eval(x) * b.eval(x));
  }
}

TEST(Poly, ModIsEuclidean) {
  SplitMix64 rng(5);
  for (int t = 0; t < 20; ++t) {
    std::vector<GF64> ac(8), mc(4);
    for (auto& v : ac) v = GF64(rng.next());
    for (auto& v : mc) v = GF64(rng.next());
    mc.back() = GF64(rng.next() | 1);  // nonzero leading coeff
    const Poly a(ac), m(mc);
    const Poly r = a.mod(m);
    EXPECT_LT(r.degree(), m.degree());
    // a and r agree at roots of m... cheaper: (a + r) divisible by m:
    // check via a few random evals of witness q = (a+r) and m's roots is
    // hard; instead verify mod is idempotent and linear.
    EXPECT_EQ(r.mod(m), r);
    const Poly a2 = a + m * Poly::constant(GF64(rng.next()));
    EXPECT_EQ(a2.mod(m), r);
  }
}

TEST(Poly, SquaredModMatchesMulMod) {
  SplitMix64 rng(6);
  std::vector<GF64> pc(5), mc(6);
  for (auto& v : pc) v = GF64(rng.next());
  for (auto& v : mc) v = GF64(rng.next());
  mc.back() = GF64::one();
  const Poly p(pc), m(mc);
  EXPECT_EQ(p.squared_mod(m), (p * p).mod(m));
}

TEST(Poly, GcdOfKnownFactors) {
  // (x + a)(x + b) and (x + a)(x + c) share exactly (x + a).
  const GF64 a(123), b(456), c(789);
  const Poly xa(std::vector<GF64>{a, GF64::one()});
  const Poly xb(std::vector<GF64>{b, GF64::one()});
  const Poly xc(std::vector<GF64>{c, GF64::one()});
  const Poly g = Poly::gcd(xa * xb, xa * xc);
  EXPECT_EQ(g, xa);
}

TEST(Poly, FindRootsOfSplitPolynomial) {
  // Build prod (x + r_i) for distinct r_i and recover them all.
  SplitMix64 rng(7);
  std::vector<GF64> roots;
  Poly p = Poly::constant(GF64::one());
  std::unordered_set<std::uint64_t> seen;
  while (roots.size() < 12) {
    const GF64 r(rng.next());
    if (r.is_zero() || !seen.insert(r.bits()).second) continue;
    roots.push_back(r);
    p = p * Poly(std::vector<GF64>{r, GF64::one()});
  }
  std::vector<GF64> found;
  ASSERT_TRUE(find_roots(p, found));
  ASSERT_EQ(found.size(), roots.size());
  std::unordered_set<std::uint64_t> expect;
  for (const auto& r : roots) expect.insert(r.bits());
  for (const auto& f : found) EXPECT_TRUE(expect.contains(f.bits()));
}

TEST(Poly, FindRootsRejectsNonSplit) {
  // x^2 + x + 1 has no roots iff Tr(1) != 0... over GF(2^64) trace of 1 is
  // 64 mod 2 = 0, so x^2+x+1 *does* split here. Use an irreducible-by-
  // construction instead: x^2 + a where a is a non-square is impossible in
  // char 2 (squaring is bijective). Known non-split example: take
  // p = (x + r)^2 (repeated root) -- the trace algorithm cannot separate
  // it, and find_roots must fail rather than loop or return duplicates.
  const GF64 r(42);
  const Poly xr(std::vector<GF64>{r, GF64::one()});
  std::vector<GF64> found;
  EXPECT_FALSE(find_roots(xr * xr, found));
}

// -------------------------------------------------------------- PinSketch

std::vector<U64Symbol> random_items(std::size_t n, std::uint64_t seed) {
  std::vector<U64Symbol> out;
  out.reserve(n);
  SplitMix64 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  while (out.size() < n) {
    const std::uint64_t v = rng.next();
    if (v == 0 || !seen.insert(v).second) continue;
    out.push_back(U64Symbol::from_u64(v));
  }
  return out;
}

TEST(PinSketch, EmptyDifference) {
  const auto items = random_items(50, 1);
  PinSketch a(16), b(16);
  for (const auto& s : items) {
    a.add_symbol(s);
    b.add_symbol(s);
  }
  a.subtract(b);
  const auto r = a.decode();
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.difference.empty());
}

class PinSketchRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PinSketchRoundTrip, RecoversSymmetricDifference) {
  const std::size_t d = GetParam();
  const std::size_t capacity = d;  // exact capacity: overhead 1.0
  const auto shared = random_items(64, 2);
  const auto diff = random_items(d, 1000 + d);

  PinSketch a(capacity), b(capacity);
  for (const auto& s : shared) {
    a.add_symbol(s);
    b.add_symbol(s);
  }
  // Split the difference across the two sides.
  for (std::size_t i = 0; i < diff.size(); ++i) {
    (i % 2 == 0 ? a : b).add_symbol(diff[i]);
  }
  a.subtract(b);
  const auto r = a.decode();
  ASSERT_TRUE(r.success) << "d=" << d;
  ASSERT_EQ(r.difference.size(), d);
  std::unordered_set<std::uint64_t> expect;
  for (const auto& s : diff) expect.insert(GF64::from_symbol(s).bits());
  for (const auto& s : r.difference) {
    EXPECT_TRUE(expect.contains(GF64::from_symbol(s).bits()));
  }
}

INSTANTIATE_TEST_SUITE_P(DifferenceSizes, PinSketchRoundTrip,
                         ::testing::Values(1, 2, 3, 8, 17, 33, 64));

TEST(PinSketch, FailsCleanlyWhenOverloaded) {
  // d = 3 * capacity: decode must detect and report failure.
  const auto diff = random_items(24, 3);
  PinSketch a(8), b(8);
  for (const auto& s : diff) a.add_symbol(s);
  a.subtract(b);
  const auto r = a.decode();
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.difference.empty());
}

TEST(PinSketch, SlightOverloadAlsoFails) {
  const auto diff = random_items(9, 4);
  PinSketch a(8);
  for (const auto& s : diff) a.add_symbol(s);
  const auto r = a.decode();
  EXPECT_FALSE(r.success);
}

TEST(PinSketch, RejectsZeroItem) {
  PinSketch a(4);
  EXPECT_THROW(a.add_symbol(U64Symbol{}), std::invalid_argument);
}

TEST(PinSketch, CapacityMismatchThrows) {
  PinSketch a(4), b(8);
  EXPECT_THROW(a.subtract(b), std::invalid_argument);
  EXPECT_THROW(PinSketch(0), std::invalid_argument);
}

TEST(PinSketch, SerializeRoundTrip) {
  const auto items = random_items(10, 5);
  PinSketch a(12);
  for (const auto& s : items) a.add_symbol(s);
  EXPECT_EQ(a.serialized_size(), 12u * 8u);
  const auto data = a.serialize();
  EXPECT_EQ(data.size(), 4u + 12u * 8u);  // u32 capacity header + syndromes
  const auto back = PinSketch::deserialize(data);
  ASSERT_EQ(back.capacity(), a.capacity());
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(back.syndromes()[i], a.syndromes()[i]);
  }
}

TEST(PinSketch, AddIsInvolution) {
  // Adding the same element twice cancels (char 2): the sketch returns to
  // all-zero syndromes.
  PinSketch a(6);
  const auto s = U64Symbol::from_u64(777);
  a.add_symbol(s);
  a.add_symbol(s);
  for (const auto& syn : a.syndromes()) EXPECT_TRUE(syn.is_zero());
}

TEST(PinSketch, DecodeIgnoresWhichSideItemsCameFrom) {
  // PinSketch yields the unattributed symmetric difference; swapping the
  // roles of A and B gives the same decoded set.
  const auto diff = random_items(6, 6);
  PinSketch a(8), b(8);
  for (std::size_t i = 0; i < diff.size(); ++i) {
    (i % 2 == 0 ? a : b).add_symbol(diff[i]);
  }
  PinSketch ab = a;
  ab.subtract(b);
  PinSketch ba = b;
  ba.subtract(a);
  const auto ra = ab.decode();
  const auto rb = ba.decode();
  ASSERT_TRUE(ra.success);
  ASSERT_TRUE(rb.success);
  std::unordered_set<std::uint64_t> sa, sb;
  for (const auto& s : ra.difference) sa.insert(GF64::from_symbol(s).bits());
  for (const auto& s : rb.difference) sb.insert(GF64::from_symbol(s).bits());
  EXPECT_EQ(sa, sb);
}

}  // namespace
}  // namespace ribltx::pinsketch
