// Property-style tests for the core codec: algebraic invariants the design
// depends on (linearity, prefix stability, order independence, stream
// determinism), parameterized difference sweeps, the count-less decoding
// mode, multi-source union recovery, and failure injection (corrupted
// cells must degrade safely, never crash or mis-decode silently).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/countless.hpp"
#include "core/riblt.hpp"
#include "testutil.hpp"

namespace ribltx {
namespace {

using testing::make_set_pair;
using Item = ByteSymbol<32>;

// ------------------------------------------------- parameterized sweeps

struct SweepCase {
  std::size_t shared;
  std::size_t only_a;
  std::size_t only_b;
};

class ReconcileSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ReconcileSweep, ExactRecovery) {
  const auto [shared, only_a, only_b] = GetParam();
  const auto w = make_set_pair<Item>(shared, only_a, only_b,
                                     derive_seed(77, shared + only_a * 131 + only_b));
  Encoder<Item> alice;
  for (const auto& x : w.a) alice.add_symbol(x);
  Decoder<Item> bob;
  for (const auto& y : w.b) bob.add_local_symbol(y);

  std::size_t used = 0;
  const std::size_t budget = 64 + 8 * (only_a + only_b + 1);
  while (!bob.decoded() && used < budget) {
    bob.add_coded_symbol(alice.produce_next());
    ++used;
  }
  ASSERT_TRUE(bob.decoded());
  EXPECT_EQ(bob.remote().size(), only_a);
  EXPECT_EQ(bob.local().size(), only_b);
  const auto want_remote = testing::key_set(w.only_a);
  const auto want_local = testing::key_set(w.only_b);
  for (const auto& s : bob.remote()) {
    EXPECT_TRUE(want_remote.contains(
        siphash24(SipKey{0x1234, 0x5678}, s.symbol.bytes())));
  }
  for (const auto& s : bob.local()) {
    EXPECT_TRUE(want_local.contains(
        siphash24(SipKey{0x1234, 0x5678}, s.symbol.bytes())));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DifferenceShapes, ReconcileSweep,
    ::testing::Values(SweepCase{0, 1, 0}, SweepCase{0, 0, 1},
                      SweepCase{1, 1, 1}, SweepCase{10, 3, 0},
                      SweepCase{10, 0, 3}, SweepCase{100, 2, 5},
                      SweepCase{100, 16, 16}, SweepCase{50, 37, 0},
                      SweepCase{0, 64, 64}, SweepCase{500, 150, 7},
                      SweepCase{200, 0, 128}, SweepCase{1000, 250, 250}));

// ------------------------------------------------- decade difference sweep

TEST(CoreProperty, RoundTripDecadeSweep) {
  // Round-trip reconciliation at d in {1, 10, 100, 1000}: the recovered
  // remote() and local() sets must exactly equal the symmetric difference
  // (both inclusions), deterministically from the fixed seed.
  for (const std::size_t d : {1u, 10u, 100u, 1000u}) {
    const std::size_t only_a = d / 2;
    const std::size_t only_b = d - only_a;
    const auto w =
        make_set_pair<Item>(256, only_a, only_b, derive_seed(0xdecade, d));

    Encoder<Item> alice;
    for (const auto& x : w.a) alice.add_symbol(x);
    Decoder<Item> bob;
    for (const auto& y : w.b) bob.add_local_symbol(y);

    std::size_t used = 0;
    const std::size_t budget = 64 + 8 * d;
    while (!bob.decoded() && used < budget) {
      bob.add_coded_symbol(alice.produce_next());
      ++used;
    }
    REQUIRE(bob.decoded()) << "d=" << d << " budget=" << budget;

    std::unordered_set<std::uint64_t> got_remote, got_local;
    for (const auto& s : bob.remote())
      got_remote.insert(testing::symbol_key(s.symbol));
    for (const auto& s : bob.local())
      got_local.insert(testing::symbol_key(s.symbol));
    // Exact equality both ways: nothing missing, nothing spurious, no dups.
    CHECK_EQ(bob.remote().size(), only_a) << "d=" << d;
    CHECK_EQ(bob.local().size(), only_b) << "d=" << d;
    CHECK(got_remote == testing::key_set(w.only_a)) << "d=" << d;
    CHECK(got_local == testing::key_set(w.only_b)) << "d=" << d;
  }
}

TEST(CoreProperty, RandomizedRoundTripHolds) {
  // Randomized shapes via the seeded property runner: any (shared, a, b)
  // split must reconcile to exactly the symmetric difference.
  testing::for_all(
      "round-trip reconciliation", 12, 0xF00D, [](SplitMix64& rng) {
        const auto shared = static_cast<std::size_t>(rng.next_below(300));
        const auto only_a = static_cast<std::size_t>(rng.next_below(48));
        const auto only_b = static_cast<std::size_t>(rng.next_below(48));
        const auto w = make_set_pair<Item>(shared, only_a, only_b, rng.next());

        Encoder<Item> alice;
        for (const auto& x : w.a) alice.add_symbol(x);
        Decoder<Item> bob;
        for (const auto& y : w.b) bob.add_local_symbol(y);
        std::size_t used = 0;
        const std::size_t budget = 64 + 8 * (only_a + only_b + 1);
        while (!bob.decoded() && used < budget) {
          bob.add_coded_symbol(alice.produce_next());
          ++used;
        }
        if (!bob.decoded()) return false;

        std::unordered_set<std::uint64_t> got_remote, got_local;
        for (const auto& s : bob.remote())
          got_remote.insert(testing::symbol_key(s.symbol));
        for (const auto& s : bob.local())
          got_local.insert(testing::symbol_key(s.symbol));
        return bob.remote().size() == only_a && bob.local().size() == only_b &&
               got_remote == testing::key_set(w.only_a) &&
               got_local == testing::key_set(w.only_b);
      });
}

// ----------------------------------------------------------- invariants

TEST(CoreProperty, LinearityOfSketches) {
  // Sketch(A) - Sketch(B) must equal a sketch holding A\B with +1 counts
  // and B\A with -1 counts (the identity IBLT(A) - IBLT(B) = IBLT(A diff B)
  // from §3 that the whole protocol rests on).
  const auto w = make_set_pair<Item>(300, 21, 13, 1);
  constexpr std::size_t kCells = 128;
  Sketch<Item> sa(kCells), sb(kCells), sdiff(kCells);
  for (const auto& x : w.a) sa.add_symbol(x);
  for (const auto& y : w.b) sb.add_symbol(y);
  for (const auto& x : w.only_a) sdiff.add_symbol(x);
  for (const auto& y : w.only_b) sdiff.remove_symbol(y);
  sa.subtract(sb);
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(sa.cells()[i], sdiff.cells()[i]) << "cell " << i;
  }
}

TEST(CoreProperty, SubtractionAntiSymmetry) {
  const auto w = make_set_pair<Item>(100, 9, 4, 2);
  constexpr std::size_t kCells = 64;
  Sketch<Item> ab(kCells), ba(kCells);
  {
    Sketch<Item> sa(kCells), sb(kCells);
    for (const auto& x : w.a) sa.add_symbol(x);
    for (const auto& y : w.b) sb.add_symbol(y);
    ab = sa;
    ab.subtract(sb);
    ba = sb;
    ba.subtract(sa);
  }
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(ab.cells()[i].sum, ba.cells()[i].sum);
    EXPECT_EQ(ab.cells()[i].checksum, ba.cells()[i].checksum);
    EXPECT_EQ(ab.cells()[i].count, -ba.cells()[i].count);
  }
}

TEST(CoreProperty, InsertionOrderIrrelevant) {
  const auto w = make_set_pair<Item>(200, 0, 0, 3);
  auto shuffled = w.a;
  std::reverse(shuffled.begin(), shuffled.end());
  std::swap(shuffled[3], shuffled[90]);

  Encoder<Item> e1, e2;
  for (const auto& x : w.a) e1.add_symbol(x);
  for (const auto& x : shuffled) e2.add_symbol(x);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(e1.produce_next(), e2.produce_next()) << "symbol " << i;
  }
}

TEST(CoreProperty, StreamIsDeterministic) {
  const auto w = make_set_pair<Item>(150, 0, 0, 4);
  Encoder<Item> e1, e2;
  for (const auto& x : w.a) {
    e1.add_symbol(x);
    e2.add_symbol(x);
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(e1.produce_next(), e2.produce_next());
  }
}

TEST(CoreProperty, PrefixStabilityAcrossSketchSizes) {
  // Fig 3's rateless property: a bigger sketch extends a smaller one
  // without touching existing cells.
  const auto w = make_set_pair<Item>(120, 0, 0, 5);
  Sketch<Item> small(32), big(256);
  for (const auto& x : w.a) {
    small.add_symbol(x);
    big.add_symbol(x);
  }
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small.cells()[i], big.cells()[i]);
  }
}

TEST(CoreProperty, ExtraSymbolsAfterDecodeStayConsistent) {
  // Once decoded, further coded symbols arrive pre-reduced to empty; the
  // decoder must remain in the decoded state (Alice's stop signal races
  // with in-flight symbols in a real deployment).
  const auto w = make_set_pair<Item>(64, 6, 2, 6);
  Encoder<Item> alice;
  for (const auto& x : w.a) alice.add_symbol(x);
  Decoder<Item> bob;
  for (const auto& y : w.b) bob.add_local_symbol(y);
  while (!bob.decoded()) bob.add_coded_symbol(alice.produce_next());
  const auto remote_count = bob.remote().size();
  for (int i = 0; i < 200; ++i) {
    bob.add_coded_symbol(alice.produce_next());
    ASSERT_TRUE(bob.decoded());
  }
  EXPECT_EQ(bob.remote().size(), remote_count);
}

TEST(CoreProperty, ItemInBothSetsNeverSurfaces) {
  // Shared items must cancel exactly, regardless of difference churn.
  const auto w = make_set_pair<Item>(512, 20, 20, 7);
  Encoder<Item> alice;
  for (const auto& x : w.a) alice.add_symbol(x);
  Decoder<Item> bob;
  for (const auto& y : w.b) bob.add_local_symbol(y);
  while (!bob.decoded()) bob.add_coded_symbol(alice.produce_next());
  const auto shared_keys = testing::key_set(
      std::vector<Item>(w.a.begin(), w.a.begin() + 512));
  for (const auto& s : bob.remote()) {
    EXPECT_FALSE(shared_keys.contains(
        siphash24(SipKey{0x1234, 0x5678}, s.symbol.bytes())));
  }
}

// ------------------------------------------------------ failure injection

TEST(CoreFailure, CorruptedSumNeverFalselyCompletes) {
  // Flip a byte in one coded symbol: decoding must not complete with wrong
  // data -- the checksums quarantine the corruption (the cell simply never
  // settles), so the decoder reports not-decoded within any budget.
  const auto w = make_set_pair<Item>(64, 4, 4, 8);
  Encoder<Item> alice;
  for (const auto& x : w.a) alice.add_symbol(x);
  Decoder<Item> bob;
  for (const auto& y : w.b) bob.add_local_symbol(y);

  for (int i = 0; i < 2000; ++i) {
    auto cell = alice.produce_next();
    if (i == 0) cell.sum.data[5] ^= std::byte{0x40};  // corrupt cell 0
    bob.add_coded_symbol(cell);
  }
  EXPECT_FALSE(bob.decoded());
  // Recovered items that did surface are still genuine.
  const auto want_remote = testing::key_set(w.only_a);
  for (const auto& s : bob.remote()) {
    EXPECT_TRUE(want_remote.contains(
        siphash24(SipKey{0x1234, 0x5678}, s.symbol.bytes())));
  }
}

TEST(CoreFailure, CorruptedChecksumQuarantined) {
  const auto w = make_set_pair<Item>(32, 3, 1, 9);
  Encoder<Item> alice;
  for (const auto& x : w.a) alice.add_symbol(x);
  Decoder<Item> bob;
  for (const auto& y : w.b) bob.add_local_symbol(y);
  for (int i = 0; i < 1000; ++i) {
    auto cell = alice.produce_next();
    if (i == 2) cell.checksum ^= 0xdeadbeefULL;
    bob.add_coded_symbol(cell);
  }
  EXPECT_FALSE(bob.decoded());
}

TEST(CoreFailure, CorruptedCountMisclassifiesButDoesNotCrash) {
  // count only affects side attribution; a corrupted count can flip a
  // remote item to local (or stall), but must never crash or fabricate
  // items that exist in neither set.
  const auto w = make_set_pair<Item>(32, 2, 2, 10);
  Encoder<Item> alice;
  for (const auto& x : w.a) alice.add_symbol(x);
  Decoder<Item> bob;
  for (const auto& y : w.b) bob.add_local_symbol(y);
  for (int i = 0; i < 1000 && !bob.decoded(); ++i) {
    auto cell = alice.produce_next();
    cell.count += 3;  // systematic corruption
    bob.add_coded_symbol(cell);
  }
  auto all_items = testing::key_set(w.a);
  for (const auto k : testing::key_set(w.b)) all_items.insert(k);
  for (const auto& s : bob.remote()) {
    EXPECT_TRUE(all_items.contains(
        siphash24(SipKey{0x1234, 0x5678}, s.symbol.bytes())));
  }
  for (const auto& s : bob.local()) {
    EXPECT_TRUE(all_items.contains(
        siphash24(SipKey{0x1234, 0x5678}, s.symbol.bytes())));
  }
}

// --------------------------------------------------------- count-less

TEST(Countless, MatchesCountedDecoder) {
  const auto w = make_set_pair<Item>(128, 11, 7, 11);
  Encoder<Item> alice;
  for (const auto& x : w.a) alice.add_symbol(x);

  Decoder<Item> counted;
  CountlessDecoder<Item> countless;
  for (const auto& y : w.b) {
    counted.add_local_symbol(y);
    countless.add_local_symbol(y);
  }
  std::size_t used_counted = 0, used_countless = 0;
  Encoder<Item> alice2;
  for (const auto& x : w.a) alice2.add_symbol(x);
  while (!counted.decoded()) {
    counted.add_coded_symbol(alice.produce_next());
    ++used_counted;
  }
  while (!countless.decoded()) {
    countless.add_coded_symbol(alice2.produce_next());
    ++used_countless;
  }
  // Identical peeling structure => identical symbol consumption.
  EXPECT_EQ(used_counted, used_countless);
  // Union of counted remote+local == countless difference.
  auto expected = testing::key_set(w.only_a);
  for (auto k : testing::key_set(w.only_b)) expected.insert(k);
  ASSERT_EQ(countless.difference().size(), expected.size());
  for (const auto& s : countless.difference()) {
    EXPECT_TRUE(expected.contains(
        siphash24(SipKey{0x1234, 0x5678}, s.symbol.bytes())));
  }
}

TEST(Countless, WorksFromCountlessWireFormat) {
  // End-to-end with include_counts=false: parse and decode purely from
  // sums + checksums (the §7.1 bandwidth trim).
  const auto w = make_set_pair<Item>(256, 9, 0, 12);
  constexpr std::size_t kCells = 64;
  Sketch<Item> sa(kCells);
  for (const auto& x : w.a) sa.add_symbol(x);
  wire::SketchWireOptions opts;
  opts.include_counts = false;
  const auto data = wire::serialize_sketch(sa, w.a.size(), opts);
  const auto parsed = wire::parse_sketch<Item>(data);
  ASSERT_FALSE(parsed.has_counts);

  CountlessDecoder<Item> dec;
  for (const auto& y : w.b) dec.add_local_symbol(y);
  std::size_t used = 0;
  for (const auto& cell : parsed.cells) {
    dec.add_coded_symbol(cell);
    ++used;
    if (dec.decoded()) break;
  }
  ASSERT_TRUE(dec.decoded());
  EXPECT_EQ(dec.difference().size(), 9u);
  // The count-less stream is strictly smaller on the wire.
  const auto with_counts = wire::serialize_sketch(sa, w.a.size());
  EXPECT_LT(data.size(), with_counts.size());
}

TEST(Countless, RejectsLateLocalSymbols) {
  CountlessDecoder<Item> dec;
  dec.add_local_symbol(Item::random(1));
  Encoder<Item> enc;
  enc.add_symbol(Item::random(2));
  dec.add_coded_symbol(enc.produce_next());
  EXPECT_THROW(dec.add_local_symbol(Item::random(3)), std::logic_error);
}

// ------------------------------------------------------ multi-source

TEST(MultiSource, UnionFromTwoConcurrentStreams) {
  // §1: a node syncing with several peers recovers the union of their
  // states from independently produced streams of the same universal code.
  const auto base = make_set_pair<Item>(200, 0, 0, 13);
  std::vector<Item> a1 = base.a, a2 = base.a, bob_set = base.a;
  SplitMix64 rng(999);
  std::vector<Item> extra1, extra2;
  for (int i = 0; i < 12; ++i) {
    extra1.push_back(Item::random(rng.next()));
    a1.push_back(extra1.back());
  }
  for (int i = 0; i < 9; ++i) {
    extra2.push_back(Item::random(rng.next()));
    a2.push_back(extra2.back());
  }

  Encoder<Item> peer1, peer2;
  for (const auto& x : a1) peer1.add_symbol(x);
  for (const auto& x : a2) peer2.add_symbol(x);
  Decoder<Item> bob1, bob2;
  for (const auto& y : bob_set) {
    bob1.add_local_symbol(y);
    bob2.add_local_symbol(y);
  }
  // Interleave the two streams (concurrent arrival).
  while (!bob1.decoded() || !bob2.decoded()) {
    if (!bob1.decoded()) bob1.add_coded_symbol(peer1.produce_next());
    if (!bob2.decoded()) bob2.add_coded_symbol(peer2.produce_next());
  }
  auto expected = testing::key_set(extra1);
  for (auto k : testing::key_set(extra2)) expected.insert(k);
  std::unordered_set<std::uint64_t> got;
  for (const auto& s : bob1.remote()) {
    got.insert(siphash24(SipKey{0x1234, 0x5678}, s.symbol.bytes()));
  }
  for (const auto& s : bob2.remote()) {
    got.insert(siphash24(SipKey{0x1234, 0x5678}, s.symbol.bytes()));
  }
  EXPECT_EQ(got, expected);
}

// ------------------------------------------------------ differential

TEST(Differential, StreamingDecoderMatchesSketchDecode) {
  // The streaming Decoder fed difference cells one by one and the batch
  // Sketch::decode() must agree on success and recovered sets, across many
  // random workloads -- two independent paths over the same peeling.
  for (int trial = 0; trial < 15; ++trial) {
    SplitMix64 rng(derive_seed(5000, static_cast<std::uint64_t>(trial)));
    const auto only_a = rng.next_below(40);
    const auto only_b = rng.next_below(40);
    const auto w = make_set_pair<Item>(
        64, only_a, only_b, derive_seed(6000, static_cast<std::uint64_t>(trial)));
    const std::size_t cells =
        std::max<std::size_t>(8, 4 * (only_a + only_b));

    Sketch<Item> sa(cells), sb(cells);
    for (const auto& x : w.a) sa.add_symbol(x);
    for (const auto& y : w.b) sb.add_symbol(y);
    sa.subtract(sb);
    const auto batch = sa.decode();

    Decoder<Item> streaming;
    for (const auto& cell : sa.cells()) streaming.add_coded_symbol(cell);

    EXPECT_EQ(batch.success, streaming.decoded()) << "trial " << trial;
    if (batch.success) {
      EXPECT_EQ(batch.remote.size(), streaming.remote().size());
      EXPECT_EQ(batch.local.size(), streaming.local().size());
      EXPECT_EQ(batch.remote.size(), only_a);
      EXPECT_EQ(batch.local.size(), only_b);
    }
  }
}

TEST(Differential, EncoderStreamEqualsSketchAtEveryPrefix) {
  const auto w = make_set_pair<Item>(77, 0, 0, 16);
  constexpr std::size_t kCells = 96;
  Sketch<Item> sketch(kCells);
  Encoder<Item> enc;
  for (const auto& x : w.a) {
    sketch.add_symbol(x);
    enc.add_symbol(x);
  }
  for (std::size_t i = 0; i < kCells; ++i) {
    ASSERT_EQ(enc.produce_next(), sketch.cells()[i]) << "prefix " << i;
  }
}

// -------------------------------------------------- wire format fuzzing

TEST(WireFuzz, EveryTruncationThrowsCleanly) {
  const auto w = make_set_pair<Item>(50, 0, 0, 14);
  Sketch<Item> sketch(16);
  for (const auto& x : w.a) sketch.add_symbol(x);
  const auto data = wire::serialize_sketch(sketch, w.a.size());
  for (std::size_t len = 0; len < data.size(); ++len) {
    const std::span<const std::byte> prefix(data.data(), len);
    EXPECT_THROW((void)wire::parse_sketch<Item>(prefix), std::exception)
        << "prefix length " << len;
  }
  EXPECT_NO_THROW((void)wire::parse_sketch<Item>(data));
}

TEST(WireFuzz, HeaderBitFlipsRejectedOrHarmless) {
  const auto w = make_set_pair<Item>(20, 0, 0, 15);
  Sketch<Item> sketch(8);
  for (const auto& x : w.a) sketch.add_symbol(x);
  const auto data = wire::serialize_sketch(sketch, w.a.size());
  // Flip each bit of the 13-byte header; parsing must never crash and the
  // strict fields (magic, version, checksum_len, symbol size) must reject.
  for (std::size_t byte = 0; byte < 13; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = data;
      mutated[byte] ^= static_cast<std::byte>(1 << bit);
      try {
        (void)wire::parse_sketch<Item>(mutated);
      } catch (const std::exception&) {
        // rejection is the expected common case
      }
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace ribltx
