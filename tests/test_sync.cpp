// Integration tests for the sync sessions: Rateless IBLT streaming and
// Merkle state heal over the simulated link, on real ledger workloads.
// These validate the mechanics behind Figs 12-14.
#include <gtest/gtest.h>

#include "ledger/ledger.hpp"
#include "merkle/heal.hpp"
#include "sync/session.hpp"

namespace ribltx::sync {
namespace {

ledger::LedgerParams test_params() {
  ledger::LedgerParams p;
  p.base_accounts = 5000;
  p.modifies_per_block = 10;
  p.creates_per_block = 2;
  p.seed = 7;
  return p;
}

TEST(RibltPlan, MatchesLedgerDifference) {
  const auto p = test_params();
  ledger::LedgerState alice(p, 50), bob(p, 40);
  const std::size_t d = ledger::symmetric_difference_size(p, 40, 50);
  const auto plan = plan_riblt_sync(alice.as_symbols(), bob.as_symbols(), d);
  EXPECT_EQ(plan.differences, d);
  EXPECT_GE(plan.coded_symbols, d);            // at least one symbol per diff
  EXPECT_LE(plan.coded_symbols, 3 * d + 16);   // Fig 5 envelope
  EXPECT_EQ(plan.frame_bytes.size(), plan.coded_symbols);
  // 92-byte items + 8-byte checksum + ~1 byte compressed count.
  for (const auto b : plan.frame_bytes) {
    EXPECT_GE(b, 100u);
    EXPECT_LE(b, 112u);
  }
}

TEST(RibltPlan, ZeroDifference) {
  const auto p = test_params();
  ledger::LedgerState alice(p, 5), bob(p, 5);
  const auto plan = plan_riblt_sync(alice.as_symbols(), bob.as_symbols(), 0);
  EXPECT_EQ(plan.differences, 0u);
  EXPECT_EQ(plan.coded_symbols, 1u);  // the empty first cell signals done
}

TEST(RibltSession, FirstByteAtOneRttThenLineRate) {
  RibltPlan plan;
  plan.coded_symbols = 1000;
  plan.frame_bytes.assign(1000, 104);
  plan.total_bytes = 104'000;

  netsim::LinkConfig link;
  link.one_way_delay_s = 0.05;
  link.bandwidth_bps = 20e6;
  const auto r = run_riblt_session(plan, link);

  ASSERT_FALSE(r.downstream.empty());
  // Request 0.5 RTT + first frame flight 0.5 RTT (+ tiny serialization).
  EXPECT_NEAR(r.downstream.front().arrive_start, 0.1, 0.01);
  // Completion ~ RTT + total serialization.
  const double expect = 0.1 + 104'000.0 * 8 / 20e6;
  EXPECT_NEAR(r.completion_s, expect, 0.02);
  EXPECT_EQ(r.bytes_down, plan.total_bytes);
  EXPECT_DOUBLE_EQ(r.interactive_rounds, 0.5);
}

TEST(RibltSession, ComputeBoundAtVeryHighBandwidth) {
  // With an unlimited link the completion time is CPU-dominated:
  // symbols * bob_symbol_s (the paper's ~170 Mbps single-core saturation).
  RibltPlan plan;
  plan.coded_symbols = 10000;
  plan.frame_bytes.assign(10000, 104);
  plan.total_bytes = 1'040'000;

  netsim::LinkConfig link;
  link.one_way_delay_s = 0.05;
  link.bandwidth_bps = 0;  // unlimited
  CpuModel cpu;
  const auto r = run_riblt_session(plan, link, cpu);
  EXPECT_NEAR(r.completion_s, 0.1 + 10000 * cpu.bob_symbol_s, 0.02);
}

TEST(HealSession, LockStepRoundsAccumulateRtt) {
  merkle::HealPlan plan;
  for (int i = 0; i < 5; ++i) {
    merkle::HealRound round;
    round.requests = 10;
    round.nodes = 10;
    round.bytes_up = 360;
    round.bytes_down = 3000;
    plan.rounds.push_back(round);
    plan.total_nodes += 10;
    plan.total_bytes_up += 360;
    plan.total_bytes_down += 3000;
  }
  netsim::LinkConfig link;
  link.one_way_delay_s = 0.05;
  link.bandwidth_bps = 20e6;
  const auto r = run_heal_session(plan, link);
  // Five lock-step rounds: at least 5 RTTs even though bytes are tiny.
  EXPECT_GE(r.completion_s, 5 * 0.1);
  EXPECT_DOUBLE_EQ(r.interactive_rounds, 5.0);
  EXPECT_EQ(r.bytes_down, 15'000u);
}

TEST(HealSession, ComputeBoundPlateau) {
  // Large node counts: raising bandwidth beyond the CPU service rate must
  // not reduce completion time (Fig 14's plateau).
  merkle::HealPlan plan;
  merkle::HealRound round;
  round.requests = 200'000;
  round.nodes = 200'000;
  round.bytes_up = 200'000 * 36;
  round.bytes_down = 200'000 * 150;
  plan.rounds.push_back(round);
  plan.total_nodes = round.nodes;
  plan.total_bytes_up = round.bytes_up;
  plan.total_bytes_down = round.bytes_down;

  netsim::LinkConfig slow, fast;
  slow.bandwidth_bps = 40e6;
  fast.bandwidth_bps = 100e6;
  const auto r_slow = run_heal_session(plan, slow);
  const auto r_fast = run_heal_session(plan, fast);
  // CPU floor: 200k nodes x 60 us = 12 s of Bob-side processing. A 2.5x
  // bandwidth increase must buy almost nothing (only the request upload
  // speeds up): <10% improvement.
  EXPECT_GT(r_slow.completion_s, 12.0);
  EXPECT_GT(r_fast.completion_s, 12.0);
  EXPECT_LT((r_slow.completion_s - r_fast.completion_s) / r_slow.completion_s,
            0.10);
}

TEST(EndToEnd, RibltBeatsHealOnLedgerWorkload) {
  // The Fig 12 comparison in miniature: same ledger staleness, both
  // protocols, RIBLT strictly cheaper in bytes and faster in time.
  const auto p = test_params();
  const std::uint64_t stale = 30, latest = 60;
  ledger::LedgerState alice(p, latest), bob(p, stale);

  const std::size_t d = ledger::symmetric_difference_size(p, stale, latest);
  const auto riblt_plan =
      plan_riblt_sync(alice.as_symbols(), bob.as_symbols(), d);

  const auto alice_trie = alice.build_trie();
  const auto bob_trie = bob.build_trie();
  const auto heal_plan = merkle::plan_heal(alice_trie, bob_trie);

  netsim::LinkConfig link;  // 50 ms, 20 Mbps: the paper's Fig 12 setup
  const auto r_riblt = run_riblt_session(riblt_plan, link);
  const auto r_heal = run_heal_session(heal_plan, link);

  // Trie-node amplification grows with log N; this miniature 5k-account
  // trie is only ~4 levels deep, so expect a >1.5x byte ratio here (the
  // full Fig 12 workload with a deeper trie shows 3-8x).
  EXPECT_GT(static_cast<double>(r_heal.bytes_down + r_heal.bytes_up),
            1.5 * static_cast<double>(r_riblt.bytes_down + r_riblt.bytes_up));
  EXPECT_GT(r_heal.completion_s, r_riblt.completion_s);
  // Both transferred the same logical difference.
  EXPECT_EQ(riblt_plan.differences, d);
  EXPECT_GE(heal_plan.total_leaves, d / 2);  // new-version leaves at least
}

}  // namespace
}  // namespace ribltx::sync
