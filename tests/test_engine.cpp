// Tests for the multi-session SyncEngine and its v2 wire protocol: the
// cross-backend parity matrix (acceptance criterion: all four backends
// through one engine recover the identical symmetric difference), the
// 3-peer concurrent-session scenario, the per-session state machine, and
// error containment.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sync/engine.hpp"
#include "testutil.hpp"

namespace ribltx::sync {
namespace {

using testing::key_set;
using testing::make_set_pair;
using Item32 = ByteSymbol<32>;

constexpr BackendId kAllBackends[] = {BackendId::kRiblt,
                                      BackendId::kIbltStrata, BackendId::kCpi,
                                      BackendId::kMetIblt};

/// Round-robin loopback pump: interleaves one frame per client per pass so
/// concurrent sessions genuinely overlap on the engine. Client responses
/// (ROUND/DONE) are delivered to the engine inline; any engine responses
/// (ERROR) go back to the client.
template <Symbol T, typename Hasher>
void pump_engine(SyncEngine<T, Hasher>& engine,
                 std::vector<SyncClient<T, Hasher>*> clients,
                 std::size_t max_frames = 1'000'000) {
  for (auto* client : clients) {
    if (client->started()) continue;  // caller already delivered HELLO
    for (const auto& response : engine.handle_frame(client->hello())) {
      (void)client->handle_frame(response);
    }
  }
  std::size_t frames = 0;
  bool progress = true;
  while (progress && frames < max_frames) {
    progress = false;
    for (auto* client : clients) {
      if (client->complete() || client->failed()) continue;
      const auto frame = engine.next_frame(client->session_id());
      if (!frame) continue;
      progress = true;
      ++frames;
      for (const auto& reply : client->handle_frame(*frame)) {
        for (const auto& response : engine.handle_frame(reply)) {
          (void)client->handle_frame(response);
        }
      }
    }
  }
}

template <Symbol T>
void expect_diff_matches(const SetDiff<T>& diff,
                         const testing::SetPair<T>& w) {
  REQUIRE_EQ(diff.remote.size(), w.only_a.size());
  REQUIRE_EQ(diff.local.size(), w.only_b.size());
  CHECK(key_set(diff.remote) == key_set(w.only_a));
  CHECK(key_set(diff.local) == key_set(w.only_b));
}

// Acceptance criterion: for random sets with d in {1, 10, 100, 1000},
// every backend driven through the same SyncEngine recovers the identical
// symmetric difference.
TEST(Engine, CrossBackendParityAcrossDifferenceSizes) {
  struct Case {
    std::size_t shared, only_a, only_b;
  };
  const Case cases[] = {
      {500, 1, 0}, {500, 6, 4}, {800, 55, 45}, {1000, 520, 480}};
  std::uint64_t seed = 100;
  for (const Case& c : cases) {
    const auto w =
        make_set_pair<U64Symbol>(c.shared, c.only_a, c.only_b, ++seed);
    const auto want_remote = key_set(w.only_a);
    const auto want_local = key_set(w.only_b);
    SyncEngine<U64Symbol> engine;
    for (const auto& x : w.a) engine.add_item(x);
    std::uint64_t sid = 0;
    for (const BackendId backend : kAllBackends) {
      SyncClient<U64Symbol> client(++sid, backend);
      for (const auto& y : w.b) client.add_item(y);
      pump_engine<U64Symbol, SipHasher<U64Symbol>>(engine, {&client});
      REQUIRE(client.complete());
      REQUIRE_EQ(client.diff().remote.size(), c.only_a);
      REQUIRE_EQ(client.diff().local.size(), c.only_b);
      CHECK(key_set(client.diff().remote) == want_remote);
      CHECK(key_set(client.diff().local) == want_local);
      const SessionStats* stats = engine.session(sid);
      REQUIRE(stats != nullptr);
      CHECK(stats->state == SessionState::kDone);
      CHECK(stats->backend == backend);
      CHECK(stats->bytes_to_peer > 0u);
      CHECK_EQ(stats->done_value, client.payload_bytes());
    }
    CHECK_EQ(engine.session_count(), 4u);
  }
}

// Acceptance criterion: three peers with divergent sets reconcile
// concurrently against one server instance.
TEST(Engine, ThreePeersReconcileConcurrently) {
  constexpr std::size_t kShared = 2000;
  const auto base = make_set_pair<Item32>(kShared, 40, 0, 7);  // server +40
  SyncEngine<Item32> engine;
  for (const auto& x : base.a) engine.add_item(x);

  // Peer i is missing the last `missing[i]` shared items and holds
  // `extra[i]` items of its own -- three different staleness profiles over
  // three different backends.
  const std::size_t missing[] = {5, 60, 700};
  const std::size_t extra[] = {3, 17, 250};
  const BackendId backends[] = {BackendId::kRiblt, BackendId::kIbltStrata,
                                BackendId::kMetIblt};
  std::vector<SyncClient<Item32>> clients;
  clients.reserve(3);
  for (std::size_t i = 0; i < 3; ++i) {
    clients.emplace_back(i + 1, backends[i]);
    for (std::size_t j = 0; j < base.b.size() - missing[i]; ++j) {
      clients[i].add_item(base.b[j]);
    }
    for (std::size_t j = 0; j < extra[i]; ++j) {
      clients[i].add_item(Item32::random(derive_seed(990 + i, j)));
    }
  }
  pump_engine<Item32, SipHasher<Item32>>(
      engine, {&clients[0], &clients[1], &clients[2]});

  for (std::size_t i = 0; i < 3; ++i) {
    REQUIRE(clients[i].complete());
    // Remote = the server's 40 exclusive items plus the peer's missing
    // tail; local = the peer's extra items.
    CHECK_EQ(clients[i].diff().remote.size(), 40 + missing[i]);
    CHECK_EQ(clients[i].diff().local.size(), extra[i]);
    const SessionStats* stats = engine.session(i + 1);
    REQUIRE(stats != nullptr);
    CHECK(stats->state == SessionState::kDone);
  }
  CHECK_EQ(engine.session_count(), 3u);
  CHECK_EQ(engine.active_count(), 0u);
}

TEST(Engine, NarrowChecksumNegotiation) {
  const auto w = make_set_pair<Item32>(300, 4, 4, 9);
  SyncEngine<Item32> engine;
  for (const auto& x : w.a) engine.add_item(x);

  // riblt and both table-family backends honor the narrow request
  // end-to-end (decoder-side masking everywhere)...
  ReconcilerConfig narrow;
  narrow.checksum_len = 4;
  std::uint64_t sid = 0;
  for (const BackendId backend : {BackendId::kRiblt, BackendId::kIbltStrata,
                                  BackendId::kMetIblt}) {
    SyncClient<Item32> client(++sid, backend, {}, narrow);
    for (const auto& y : w.b) client.add_item(y);
    pump_engine<Item32, SipHasher<Item32>>(engine, {&client});
    REQUIRE(client.complete());
    CHECK_EQ(client.checksum_len(), 4);
    CHECK_EQ(engine.session(sid)->checksum_len, 4);
    expect_diff_matches(client.diff(), w);
  }

  // ...while CPI (no checksums in its syndromes) clamps the request to 8.
  const auto u = make_set_pair<U64Symbol>(100, 3, 2, 10);
  SyncEngine<U64Symbol> engine64;
  for (const auto& x : u.a) engine64.add_item(x);
  SyncClient<U64Symbol> cpi(1, BackendId::kCpi, {}, narrow);
  for (const auto& y : u.b) cpi.add_item(y);
  pump_engine<U64Symbol, SipHasher<U64Symbol>>(engine64, {&cpi});
  REQUIRE(cpi.complete());
  CHECK_EQ(cpi.checksum_len(), 8);
  CHECK_EQ(engine64.session(1)->checksum_len, 8);
}

TEST(Engine, CountResidualNegotiationSavesBytesAndPreservesParity) {
  // §6 count compression on the v2 stream: a rateless session that
  // requests kFlagCountResiduals recovers the identical diff while its
  // SYMBOLS frames shrink -- near the stream origin a plain count svarint
  // costs ~ceil(log128(N)) bytes, the residual ~1. The frame budget of 100
  // pins symbols-per-frame equal across modes (41-43-byte symbols: two fit
  // under 100 either way, so both modes emit exactly three per frame), so
  // the saving is strictly visible in bytes_to_peer instead of washing out
  // into frame-fill quantization.
  const auto w = make_set_pair<Item32>(20'000, 12, 8, 13);
  EngineOptions options;
  options.frame_budget = 100;
  SyncEngine<Item32> engine({}, options);
  for (const auto& x : w.a) engine.add_item(x);

  SyncClient<Item32> plain(1, BackendId::kRiblt);
  for (const auto& y : w.b) plain.add_item(y);
  pump_engine<Item32, SipHasher<Item32>>(engine, {&plain});
  REQUIRE(plain.complete());
  expect_diff_matches(plain.diff(), w);

  ReconcilerConfig want_residuals;
  want_residuals.count_residuals = true;
  SyncClient<Item32> compressed(2, BackendId::kRiblt, {}, want_residuals);
  for (const auto& y : w.b) compressed.add_item(y);
  pump_engine<Item32, SipHasher<Item32>>(engine, {&compressed});
  REQUIRE(compressed.complete());
  expect_diff_matches(compressed.diff(), w);

  // Same symbols, smaller stream: the per-symbol count field shrank.
  CHECK(engine.session(2)->bytes_to_peer < engine.session(1)->bytes_to_peer);
  CHECK(compressed.payload_bytes() < plain.payload_bytes());

  // Sharded sessions negotiate the flag per shard (each shard's own
  // set_size anchors its stream), and churn after HELLO does not disturb
  // an open residual session: its anchor is the snapshot.
  SyncClient<Item32> snapshot(3, BackendId::kRiblt, {}, want_residuals);
  for (const auto& y : w.b) snapshot.add_item(y);
  for (const auto& r : engine.handle_frame(snapshot.hello())) {
    (void)snapshot.handle_frame(r);
  }
  for (std::size_t i = 0; i < 64; ++i) {
    engine.add_item(Item32::random(derive_seed(1313, i)));
  }
  pump_engine<Item32, SipHasher<Item32>>(engine, {&snapshot});
  REQUIRE(snapshot.complete());
  expect_diff_matches(snapshot.diff(), w);

  // Round-based backends clamp the request off (their payloads are not
  // the rateless stream) -- and still reconcile.
  SyncClient<Item32> table(4, BackendId::kIbltStrata, {}, want_residuals);
  for (const auto& y : w.b) table.add_item(y);
  pump_engine<Item32, SipHasher<Item32>>(engine, {&table});
  REQUIRE(table.complete());

  // A server granting residuals nobody asked for is a protocol violation.
  SyncClient<Item32> strict(5, BackendId::kRiblt);
  (void)strict.hello();
  v2::Frame ack;
  ack.type = v2::FrameType::kHelloAck;
  ack.session_id = 5;
  ack.backend = static_cast<std::uint8_t>(BackendId::kRiblt);
  ack.checksum_len = 8;
  ack.count_residuals = true;
  ack.value = 123;
  EXPECT_THROW((void)strict.handle_frame(v2::encode_frame(ack)),
               ProtocolError);
}

TEST(Engine, RejectsStateMachineViolations) {
  SyncEngine<Item32> engine;
  engine.add_item(Item32::random(1));
  SyncClient<Item32> client(7, BackendId::kRiblt);
  client.add_item(Item32::random(2));
  const auto hello = client.hello();
  (void)engine.handle_frame(hello);

  // Duplicate HELLO for a live session.
  EXPECT_THROW((void)engine.handle_frame(hello), ProtocolError);
  // ROUND/DONE for sessions that never said HELLO.
  v2::Frame round;
  round.type = v2::FrameType::kRound;
  round.session_id = 99;
  EXPECT_THROW((void)engine.handle_frame(v2::encode_frame(round)),
               ProtocolError);
  v2::Frame done;
  done.type = v2::FrameType::kDone;
  done.session_id = 99;
  EXPECT_THROW((void)engine.handle_frame(v2::encode_frame(done)),
               ProtocolError);
  // Session id 0 is reserved.
  v2::Frame zero = done;
  zero.session_id = 0;
  EXPECT_THROW((void)engine.handle_frame(v2::encode_frame(zero)),
               ProtocolError);
  // Empty frame.
  EXPECT_THROW((void)engine.handle_frame({}), ProtocolError);
}

TEST(Engine, ClientRejectsSymbolsBeforeHello) {
  // A SYMBOLS frame arriving before the client ever said HELLO must be
  // rejected by the client's own state machine.
  v2::Frame symbols;
  symbols.type = v2::FrameType::kSymbols;
  symbols.session_id = 3;
  symbols.payload.assign(4, std::byte{0x00});
  SyncClient<Item32> idle(3, BackendId::kRiblt);
  EXPECT_THROW((void)idle.handle_frame(v2::encode_frame(symbols)),
               ProtocolError);
  // Also rejected between HELLO and the server's ACK.
  SyncClient<Item32> waiting(3, BackendId::kRiblt);
  (void)waiting.hello();
  EXPECT_THROW((void)waiting.handle_frame(v2::encode_frame(symbols)),
               ProtocolError);
  // And frames addressed to some other session never touch this one.
  v2::Frame other = symbols;
  other.session_id = 4;
  EXPECT_THROW((void)idle.handle_frame(v2::encode_frame(other)),
               ProtocolError);
  // A non-conforming server's ACK (checksum width outside {4, 8}) is a
  // ProtocolError too, not a leaked invalid_argument from the codec layer.
  v2::Frame ack;
  ack.type = v2::FrameType::kHelloAck;
  ack.session_id = 3;
  ack.backend = static_cast<std::uint8_t>(BackendId::kRiblt);
  ack.checksum_len = 5;
  EXPECT_THROW((void)waiting.handle_frame(v2::encode_frame(ack)),
               ProtocolError);
}

TEST(Engine, RejectsNegotiationMismatches) {
  SyncEngine<Item32> engine;
  v2::Frame hello;
  hello.type = v2::FrameType::kHello;
  hello.session_id = 1;
  hello.backend = static_cast<std::uint8_t>(BackendId::kRiblt);
  hello.item_size = 16;  // engine serves 32-byte items
  hello.checksum_len = 8;
  EXPECT_THROW((void)engine.handle_frame(v2::encode_frame(hello)),
               ProtocolError);
  hello.item_size = 32;
  hello.backend = 0x7f;  // unknown backend
  EXPECT_THROW((void)engine.handle_frame(v2::encode_frame(hello)),
               ProtocolError);
  hello.backend = static_cast<std::uint8_t>(BackendId::kRiblt);
  hello.checksum_len = 5;  // not 4 or 8
  EXPECT_THROW((void)engine.handle_frame(v2::encode_frame(hello)),
               ProtocolError);
  // CPI needs 8-byte items: negotiation fails at HELLO, loudly.
  hello.checksum_len = 8;
  hello.backend = static_cast<std::uint8_t>(BackendId::kCpi);
  EXPECT_THROW((void)engine.handle_frame(v2::encode_frame(hello)),
               ProtocolError);
}

TEST(Engine, ContainsPerSessionFailures) {
  // Session 1 (healthy) and session 2 (about to be poisoned) share the
  // engine; session 2's failure must not disturb session 1.
  const auto w = make_set_pair<Item32>(500, 8, 6, 11);
  SyncEngine<Item32> engine;
  for (const auto& x : w.a) engine.add_item(x);

  SyncClient<Item32> healthy(1, BackendId::kRiblt);
  for (const auto& y : w.b) healthy.add_item(y);
  for (const auto& response : engine.handle_frame(healthy.hello())) {
    (void)healthy.handle_frame(response);
  }

  SyncClient<Item32> victim(2, BackendId::kMetIblt);
  for (const auto& y : w.b) victim.add_item(y);
  for (const auto& response : engine.handle_frame(victim.hello())) {
    (void)victim.handle_frame(response);
  }

  // Poison session 2 with a malformed ROUND request.
  v2::Frame poison;
  poison.type = v2::FrameType::kRound;
  poison.session_id = 2;
  poison.payload.assign(3, std::byte{0xff});
  const auto responses = engine.handle_frame(v2::encode_frame(poison));
  REQUIRE_EQ(responses.size(), 1u);
  (void)victim.handle_frame(responses[0]);
  CHECK(victim.failed());
  CHECK(!victim.error().empty());
  const SessionStats* poisoned = engine.session(2);
  REQUIRE(poisoned != nullptr);
  CHECK(poisoned->state == SessionState::kFailed);
  CHECK(engine.next_frame(2) == std::nullopt);  // failed sessions go quiet

  // The healthy session still reconciles to completion.
  pump_engine<Item32, SipHasher<Item32>>(engine, {&healthy});
  REQUIRE(healthy.complete());
  expect_diff_matches(healthy.diff(), w);
  CHECK(engine.session(1)->state == SessionState::kDone);
}

TEST(Engine, ClientAbortPropagatesToServer) {
  // A difference past MET-IBLT's deepest extension block is a data-path
  // dead end, not malformed input: the client contains it, aborts the
  // session with an ERROR frame, and the server marks the session failed
  // instead of holding it active forever.
  ReconcilerConfig tiny;
  tiny.met.targets = {4, 8};
  tiny.met.level_overheads = {3.4, 2.0};
  EngineOptions options;
  options.config = tiny;
  SyncEngine<U64Symbol> engine({}, options);
  const auto w = make_set_pair<U64Symbol>(50, 30, 25, 13);  // d = 55 >> 8
  for (const auto& x : w.a) engine.add_item(x);
  SyncClient<U64Symbol> client(1, BackendId::kMetIblt, {}, tiny);
  for (const auto& y : w.b) client.add_item(y);
  pump_engine<U64Symbol, SipHasher<U64Symbol>>(engine, {&client});
  CHECK(client.failed());
  CHECK(!client.error().empty());
  const SessionStats* stats = engine.session(1);
  REQUIRE(stats != nullptr);
  CHECK(stats->state == SessionState::kFailed);
  CHECK_EQ(stats->error.rfind("peer abort", 0), 0u);
  CHECK(engine.next_frame(1) == std::nullopt);
}

TEST(Engine, RoundLimitFailsTheSessionNotTheEngine) {
  EngineOptions options;
  options.max_rounds = 1;
  SyncEngine<U64Symbol> engine({}, options);
  const auto w = make_set_pair<U64Symbol>(100, 60, 50, 12);  // d=110
  for (const auto& x : w.a) engine.add_item(x);
  ReconcilerConfig config;
  config.cpi_initial_capacity = 4;  // needs many escalations; cap is 1
  SyncClient<U64Symbol> client(1, BackendId::kCpi, {}, config);
  for (const auto& y : w.b) client.add_item(y);
  pump_engine<U64Symbol, SipHasher<U64Symbol>>(engine, {&client});
  CHECK(client.failed());
  CHECK(engine.session(1)->state == SessionState::kFailed);
  CHECK_EQ(engine.session(1)->error, "round limit exceeded");
}

TEST(Engine, FrameParserRejectsGarbage) {
  // Empty frames, unknown types, truncations, trailing bytes, zero session
  // ids: all specific ProtocolErrors, never UB (exercised under ASan).
  EXPECT_THROW((void)v2::parse_frame({}), ProtocolError);
  const std::vector<std::byte> unknown{std::byte{0x42}, std::byte{0x01}};
  EXPECT_THROW((void)v2::parse_frame(unknown), ProtocolError);

  v2::Frame frame;
  frame.type = v2::FrameType::kSymbols;
  frame.session_id = 5;
  frame.payload.assign(32, std::byte{0xab});
  const auto encoded = v2::encode_frame(frame);
  const auto parsed = v2::parse_frame(encoded);
  CHECK(parsed.type == v2::FrameType::kSymbols);
  CHECK_EQ(parsed.session_id, 5u);
  CHECK(parsed.payload == frame.payload);
  for (std::size_t cut = 1; cut < encoded.size(); ++cut) {
    std::vector<std::byte> truncated(encoded.begin(),
                                     encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)v2::parse_frame(truncated), ProtocolError);
  }
  auto trailing = encoded;
  trailing.push_back(std::byte{0});
  EXPECT_THROW((void)v2::parse_frame(trailing), ProtocolError);

  // A payload length claiming more bytes than the frame holds.
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(v2::FrameType::kRound));
  w.uvarint(5);
  w.uvarint(1u << 30);
  w.u8(0xaa);
  EXPECT_THROW((void)v2::parse_frame(w.view()), ProtocolError);

  // Zero session id.
  v2::Frame zero = frame;
  zero.session_id = 0;
  EXPECT_THROW((void)v2::parse_frame(v2::encode_frame(zero)), ProtocolError);
}

TEST(Engine, DuplicateAddItemIsRejected) {
  // Once the serving cache is subtractive, a double-add is
  // indistinguishable from two distinct items and corrupts counts; the
  // engine must detect it via the item's hash and no-op.
  SyncEngine<Item32> engine;
  const Item32 item = Item32::random(1);
  CHECK(engine.add_item(item));
  CHECK(!engine.add_item(item));  // duplicate: rejected
  CHECK_EQ(engine.item_count(), 1u);
  CHECK(engine.contains(item));

  // The cache holds the item exactly once: a client sharing no items
  // recovers a difference of exactly 1.
  SyncClient<Item32> client(1, BackendId::kRiblt);
  pump_engine<Item32, SipHasher<Item32>>(engine, {&client});
  REQUIRE(client.complete());
  CHECK_EQ(client.diff().remote.size(), 1u);
  CHECK_EQ(client.diff().local.size(), 0u);

  // remove_item round-trips: absent items report false, removal then
  // re-add works.
  CHECK(!engine.remove_item(Item32::random(2)));
  CHECK(engine.remove_item(item));
  CHECK(!engine.contains(item));
  CHECK_EQ(engine.item_count(), 0u);
  CHECK(engine.add_item(item));
  CHECK_EQ(engine.item_count(), 1u);
}

// Satellite: churn under concurrency. A session opened before the churn
// keeps decoding against its HELLO-time snapshot; a session opened after
// sees the churned set -- across the rateless paths (both checksum
// widths), which share one SequenceCache inside the engine.
TEST(Engine, ChurnKeepsConcurrentSessionsOnTheirSnapshots) {
  for (const std::uint8_t width : {std::uint8_t{8}, std::uint8_t{4}}) {
    // d = 60 >> one 1024-byte frame's worth of 32-byte cells, so session A
    // cannot complete off a single frame -- the churn lands mid-stream.
    const auto w = make_set_pair<Item32>(400, 35, 25, 17 + width);
    SyncEngine<Item32> engine;
    for (const auto& x : w.a) engine.add_item(x);

    ReconcilerConfig config;
    config.checksum_len = width;
    SyncClient<Item32> before(1, BackendId::kRiblt, {}, config);
    for (const auto& y : w.b) before.add_item(y);
    for (const auto& r : engine.handle_frame(before.hello())) {
      (void)before.handle_frame(r);
    }
    // Stream exactly one frame: session A is now mid-decode.
    {
      const auto frame = engine.next_frame(1);
      REQUIRE(frame.has_value());
      (void)before.handle_frame(*frame);
      REQUIRE(!before.complete());
    }

    // Churn: drop one shared item and one of A's exclusives; add 3 fresh.
    REQUIRE(engine.remove_item(w.a[0]));        // shared: flips to client
    REQUIRE(engine.remove_item(w.only_a[0]));   // server-exclusive: gone
    std::vector<Item32> fresh;
    for (std::size_t i = 0; i < 3; ++i) {
      fresh.push_back(Item32::random(derive_seed(9000 + width, i)));
      REQUIRE(engine.add_item(fresh[i]));
    }

    SyncClient<Item32> after(2, BackendId::kRiblt, {}, config);
    for (const auto& y : w.b) after.add_item(y);

    // Interleaved pump: both sessions stream from the same cache.
    pump_engine<Item32, SipHasher<Item32>>(engine, {&before, &after});

    // Session A decodes its HELLO-time snapshot S0 = w.a.
    REQUIRE(before.complete());
    expect_diff_matches(before.diff(), w);

    // Session B decodes the churned set S1.
    REQUIRE(after.complete());
    std::vector<Item32> want_remote(w.only_a.begin() + 1, w.only_a.end());
    for (const auto& f : fresh) want_remote.push_back(f);
    std::vector<Item32> want_local(w.only_b.begin(), w.only_b.end());
    want_local.push_back(w.a[0]);  // removed shared item
    REQUIRE_EQ(after.diff().remote.size(), want_remote.size());
    REQUIRE_EQ(after.diff().local.size(), want_local.size());
    CHECK(key_set(after.diff().remote) == key_set(want_remote));
    CHECK(key_set(after.diff().local) == key_set(want_local));

    // Both sessions closed: the cache journal shrinks back to nothing.
    CHECK(engine.close_session(1));
    CHECK(engine.close_session(2));
    CHECK_EQ(engine.cache_journal_size(), 0u);
  }
}

// ---------------------------------------------------------------------
// Wire robustness (PR 6 satellites): ERROR clamping and per-direction
// flag masks -- plus the adaptive negotiation loop (probe -> cost model
// -> backend grant -> pacing) end to end.

/// Runs `fn`, returning the ProtocolError message it threw (tests that pin
/// the SPECIFIC error, not just "some ProtocolError").
template <typename Fn>
std::string protocol_error_of(Fn&& fn) {
  try {
    fn();
  } catch (const ProtocolError& e) {
    return e.what();
  }
  return "<no ProtocolError>";
}

TEST(Engine, ErrorFrameClampsOversizedMessages) {
  // Regression: an exception message of arbitrary length (it may embed
  // peer-controlled input) must never yield an ERROR frame larger than a
  // conduit's max_frame -- that would escalate a contained per-session
  // failure into a dead connection.
  const std::string huge(10'000, 'x');
  const auto encoded = v2::make_error_frame(7, huge);
  CHECK(encoded.size() <= v2::kMaxErrorBytes + 16);  // header slop
  const auto frame = v2::parse_frame(encoded);
  CHECK(frame.type == v2::FrameType::kError);
  CHECK_EQ(frame.payload.size(), v2::kMaxErrorBytes);
  CHECK_EQ(v2::error_text(frame), huge.substr(0, v2::kMaxErrorBytes));
  // Short messages ride through untouched.
  const auto small = v2::parse_frame(v2::make_error_frame(7, "boom"));
  CHECK_EQ(v2::error_text(small), "boom");
}

TEST(Engine, VersionSkewUnknownFlagsRejectedBothDirections) {
  // Server side: a HELLO carrying a flag bit this build does not know (a
  // newer client's extension) fails as a specific error, not a mis-framed
  // stream or a silently dropped feature.
  ByteWriter hello;
  hello.u8(static_cast<std::uint8_t>(v2::FrameType::kHello));
  hello.uvarint(1);
  hello.u8(v2::kVersion);
  hello.u8(static_cast<std::uint8_t>(BackendId::kRiblt));
  hello.u32(32);
  hello.u8(8);
  hello.u8(0x80);  // a future flag bit
  CHECK_EQ(protocol_error_of([&] { (void)v2::parse_frame(hello.view()); }),
           "unknown HELLO flags");
  SyncEngine<Item32> engine;
  EXPECT_THROW((void)engine.handle_frame(hello.view()), ProtocolError);

  // Client side: HELLO_ACK validates against its OWN mask (regression for
  // the hard-coded single-flag check), so ACK-direction extensions from a
  // newer server fail just as cleanly.
  ByteWriter ack;
  ack.u8(static_cast<std::uint8_t>(v2::FrameType::kHelloAck));
  ack.uvarint(3);
  ack.u8(static_cast<std::uint8_t>(BackendId::kRiblt));
  ack.u8(8);
  ack.u8(0x80);
  CHECK_EQ(protocol_error_of([&] { (void)v2::parse_frame(ack.view()); }),
           "unknown HELLO_ACK flags");
  SyncClient<Item32> waiting(3, BackendId::kRiblt);
  (void)waiting.hello();
  EXPECT_THROW((void)waiting.handle_frame(ack.view()), ProtocolError);

  // The two masks are per-direction: the sharded bit is HELLO-only, so on
  // an ACK it is an unknown flag.
  ByteWriter sharded_ack;
  sharded_ack.u8(static_cast<std::uint8_t>(v2::FrameType::kHelloAck));
  sharded_ack.uvarint(3);
  sharded_ack.u8(static_cast<std::uint8_t>(BackendId::kRiblt));
  sharded_ack.u8(8);
  sharded_ack.u8(v2::kFlagSharded);
  CHECK_EQ(
      protocol_error_of([&] { (void)v2::parse_frame(sharded_ack.view()); }),
      "unknown HELLO_ACK flags");
}

TEST(Engine, AdaptiveFrameFieldsRoundTrip) {
  v2::Frame hello;
  hello.type = v2::FrameType::kHello;
  hello.session_id = 9;
  hello.backend = static_cast<std::uint8_t>(BackendId::kRiblt);
  hello.item_size = 8;
  hello.checksum_len = 8;
  hello.adaptive = true;
  hello.peer_id = 0xdeadbeef;
  hello.probe.assign(5, std::byte{0x7e});
  const auto h = v2::parse_frame(v2::encode_frame(hello));
  CHECK(h.adaptive);
  CHECK_EQ(h.peer_id, 0xdeadbeefull);
  CHECK(h.probe == hello.probe);

  v2::Frame ack;
  ack.type = v2::FrameType::kHelloAck;
  ack.session_id = 9;
  ack.backend = static_cast<std::uint8_t>(BackendId::kCpi);
  ack.checksum_len = 8;
  ack.adaptive = true;
  ack.d_estimate = 37;
  ack.pace_cap = 2048;
  const auto a = v2::parse_frame(v2::encode_frame(ack));
  CHECK(a.adaptive);
  CHECK_EQ(a.d_estimate, 37u);
  CHECK_EQ(a.pace_cap, 2048u);

  // DONE with and without the trailing diff count: the extension is
  // optional, so a pre-adaptive DONE still parses -- and a non-granted
  // client never appends it, so a pre-adaptive server never sees it.
  v2::Frame done;
  done.type = v2::FrameType::kDone;
  done.session_id = 9;
  done.value = 1234;
  CHECK(!v2::parse_frame(v2::encode_frame(done)).diff_count.has_value());
  done.diff_count = 42;
  const auto d = v2::parse_frame(v2::encode_frame(done));
  REQUIRE(d.diff_count.has_value());
  CHECK_EQ(*d.diff_count, 42u);
  CHECK_EQ(d.value, 1234u);
}

TEST(Engine, AdaptiveFallsBackCleanlyWhenEitherSideOptsOut) {
  const auto w = make_set_pair<U64Symbol>(300, 6, 4, 61);

  // A server with grants disabled serves the requested backend verbatim:
  // no grant in the ACK, client keeps its backend, no pacing.
  EngineOptions no_grants;
  no_grants.adaptive.enabled = false;
  SyncEngine<U64Symbol> off({}, no_grants);
  for (const auto& x : w.a) off.add_item(x);
  SyncClient<U64Symbol> wants(1, BackendId::kMetIblt);
  wants.set_adaptive(0x77);
  for (const auto& y : w.b) wants.add_item(y);
  pump_engine<U64Symbol, SipHasher<U64Symbol>>(off, {&wants});
  REQUIRE(wants.complete());
  CHECK(!wants.adaptive_granted());
  CHECK_EQ(wants.pace_cap(), 0u);
  CHECK(wants.backend() == BackendId::kMetIblt);
  const SessionStats* s1 = off.session(1);
  REQUIRE(s1 != nullptr);
  CHECK(!s1->adaptive);
  CHECK(s1->backend == BackendId::kMetIblt);
  expect_diff_matches(wants.diff(), w);

  // A plain client against an adaptive-enabled server: the grant requires
  // the request, so nothing adaptive happens either.
  SyncEngine<U64Symbol> on;  // adaptive.enabled defaults to true
  for (const auto& x : w.a) on.add_item(x);
  SyncClient<U64Symbol> plain(2, BackendId::kIbltStrata);
  for (const auto& y : w.b) plain.add_item(y);
  pump_engine<U64Symbol, SipHasher<U64Symbol>>(on, {&plain});
  REQUIRE(plain.complete());
  CHECK(!plain.adaptive_granted());
  CHECK(!on.session(2)->adaptive);
  CHECK(on.session(2)->backend == BackendId::kIbltStrata);
  expect_diff_matches(plain.diff(), w);

  // A server granting adaptive mode nobody requested is a protocol
  // violation...
  SyncClient<U64Symbol> strict(5, BackendId::kRiblt);
  (void)strict.hello();
  v2::Frame rogue;
  rogue.type = v2::FrameType::kHelloAck;
  rogue.session_id = 5;
  rogue.backend = static_cast<std::uint8_t>(BackendId::kRiblt);
  rogue.checksum_len = 8;
  rogue.adaptive = true;
  rogue.d_estimate = 4;
  rogue.pace_cap = 512;
  CHECK_EQ(protocol_error_of([&] {
             (void)strict.handle_frame(v2::encode_frame(rogue));
           }),
           "HELLO_ACK grants unrequested adaptive mode");

  // ...and so is a grant naming a backend this client cannot decode.
  SyncClient<U64Symbol> granted(6, BackendId::kRiblt);
  granted.set_adaptive(1);
  (void)granted.hello();
  v2::Frame unknown = rogue;
  unknown.session_id = 6;
  unknown.backend = 0x7f;
  CHECK_EQ(protocol_error_of([&] {
             (void)granted.handle_frame(v2::encode_frame(unknown));
           }),
           "HELLO_ACK grants unknown backend");
}

TEST(Engine, AdaptiveGrantPicksCpiForTinyDiffAndStillReconciles) {
  // 8-byte items, d = 5, loopback link class: the cost model's cheapest
  // candidate is one-shot CPI with a probe-sized capacity, even though the
  // client requested the rateless stream -- and the adopted backend
  // recovers the identical diff.
  const auto w = make_set_pair<U64Symbol>(300, 3, 2, 62);
  SyncEngine<U64Symbol> engine;  // link defaults to loopback
  for (const auto& x : w.a) engine.add_item(x);
  SyncClient<U64Symbol> client(1, BackendId::kRiblt);
  client.set_adaptive(0x1001);  // probe attached by default
  for (const auto& y : w.b) client.add_item(y);
  pump_engine<U64Symbol, SipHasher<U64Symbol>>(engine, {&client});
  REQUIRE(client.complete());
  REQUIRE(client.adaptive_granted());
  const SessionStats* stats = engine.session(1);
  REQUIRE(stats != nullptr);
  CHECK(stats->adaptive);
  CHECK(stats->backend == BackendId::kCpi);
  CHECK(client.backend() == BackendId::kCpi);  // adopted from the grant
  CHECK(stats->d_estimate >= 1u);
  CHECK_EQ(stats->pace_cap, 0u);  // only the rateless stream gets paced
  CHECK(stats->rounds <= 1u);     // one-shot capacity: escalation is rare
  expect_diff_matches(client.diff(), w);
}

TEST(Engine, PeerEwmaConvergesOverRepeatedSessions) {
  // No probe: the first session falls back to default_d; once a DONE
  // carries the observed diff, later sessions from the same peer ride the
  // EWMA -- which, fed a constant diff of 40, pins at exactly 40.
  const auto w = make_set_pair<U64Symbol>(300, 25, 15, 63);  // d = 40
  EngineOptions options;
  options.adaptive.default_d = 64;
  SyncEngine<U64Symbol> engine({}, options);
  for (const auto& x : w.a) engine.add_item(x);
  for (std::uint64_t sid = 1; sid <= 4; ++sid) {
    SyncClient<U64Symbol> client(sid, BackendId::kRiblt);
    client.set_adaptive(0x2002, /*send_probe=*/false);
    for (const auto& y : w.b) client.add_item(y);
    pump_engine<U64Symbol, SipHasher<U64Symbol>>(engine, {&client});
    REQUIRE(client.complete());
    REQUIRE(client.adaptive_granted());
    const SessionStats* stats = engine.session(sid);
    REQUIRE(stats != nullptr);
    CHECK_EQ(stats->d_estimate, sid == 1 ? 64u : 40u);
    expect_diff_matches(client.diff(), w);
  }

  // The EWMA itself: first observation seeds, later ones smooth with
  // alpha, the anonymous peer id 0 is ignored, the table stays bounded.
  adaptive::PeerEwma ewma(/*alpha=*/0.25, /*max_peers=*/2);
  ewma.observe(0, 1000);
  CHECK_EQ(ewma.size(), 0u);
  CHECK_EQ(ewma.estimate(0), 0u);
  ewma.observe(1, 100);
  CHECK_EQ(ewma.estimate(1), 100u);
  ewma.observe(1, 0);
  CHECK_EQ(ewma.estimate(1), 75u);  // 0.75 * 100 + 0.25 * 0
  ewma.observe(2, 8);
  ewma.observe(3, 9);  // evicts an entry to stay within max_peers
  CHECK_EQ(ewma.size(), 2u);
  CHECK_EQ(ewma.estimate(3), 9u);
}

TEST(Engine, PacingCapBoundsEmissionPastLastInboundFrame) {
  // The tentpole invariant at the engine layer: an adaptive rateless
  // session never emits more than pace_cap bytes past the last inbound
  // frame. Deliver NOTHING after the HELLO and drain -- emission stops at
  // the cap; one empty-ROUND credit reopens exactly one more runway.
  const auto w = make_set_pair<U64Symbol>(300, 200, 200, 64);  // d = 400
  SyncEngine<U64Symbol> engine;
  for (const auto& x : w.a) engine.add_item(x);
  SyncClient<U64Symbol> client(1, BackendId::kRiblt);
  client.set_adaptive(0x3003);
  for (const auto& y : w.b) client.add_item(y);
  for (const auto& r : engine.handle_frame(client.hello())) {
    (void)client.handle_frame(r);
  }
  REQUIRE(client.adaptive_granted());
  const SessionStats* stats = engine.session(1);
  REQUIRE(stats != nullptr);
  REQUIRE(stats->backend == BackendId::kRiblt);  // large d: stays rateless
  const std::uint64_t cap = stats->pace_cap;
  REQUIRE(cap > 0u);
  CHECK_EQ(client.pace_cap(), cap);

  std::size_t frames = 0;
  while (engine.next_frame(1)) ++frames;  // drain; deliver nothing back
  CHECK(frames > 0u);
  CHECK(stats->bytes_to_peer <= cap);       // the hard overshoot bound
  CHECK(stats->bytes_to_peer >= cap / 2);   // and the runway is used
  CHECK(stats->state == SessionState::kActive);  // paused, not failed
  CHECK(engine.next_frame(1) == std::nullopt);

  // The credit renews the runway and nothing else: not an escalation, no
  // encoder involvement, and another full cap of emission follows.
  v2::Frame credit;
  credit.type = v2::FrameType::kRound;
  credit.session_id = 1;
  CHECK(engine.handle_frame(v2::encode_frame(credit)).empty());
  CHECK_EQ(stats->credits, 1u);
  CHECK_EQ(stats->rounds, 0u);
  const std::uint64_t mark = stats->bytes_to_peer;
  while (engine.next_frame(1)) {
  }
  CHECK(stats->bytes_to_peer > mark);
  CHECK(stats->bytes_to_peer - mark <= cap);
}

TEST(Engine, AdaptivePacedStreamCompletesWithCredits) {
  // End to end in process: a granted paced session completes because the
  // client's credit cadence (every cap/2 absorbed bytes) renews the runway
  // before the server stalls -- and credits never count as rounds.
  const auto w = make_set_pair<U64Symbol>(400, 120, 100, 65);  // d = 220
  SyncEngine<U64Symbol> engine;
  for (const auto& x : w.a) engine.add_item(x);
  SyncClient<U64Symbol> client(1, BackendId::kRiblt);
  client.set_adaptive(0x4004);
  for (const auto& y : w.b) client.add_item(y);
  pump_engine<U64Symbol, SipHasher<U64Symbol>>(engine, {&client});
  REQUIRE(client.complete());
  REQUIRE(client.adaptive_granted());
  const SessionStats* stats = engine.session(1);
  REQUIRE(stats != nullptr);
  REQUIRE(stats->backend == BackendId::kRiblt);
  REQUIRE(stats->pace_cap > 0u);
  CHECK(client.credits() > 0u);
  CHECK_EQ(stats->credits, client.credits());
  CHECK_EQ(stats->rounds, 0u);
  expect_diff_matches(client.diff(), w);

  // The DONE's diff count fed the EWMA: a probe-less second session now
  // estimates from history (exactly 220), not from the default.
  SyncClient<U64Symbol> next(2, BackendId::kRiblt);
  next.set_adaptive(0x4004, /*send_probe=*/false);
  for (const auto& y : w.b) next.add_item(y);
  for (const auto& r : engine.handle_frame(next.hello())) {
    (void)next.handle_frame(r);
  }
  CHECK_EQ(engine.session(2)->d_estimate, 220u);
}

TEST(Engine, MalformedProbeRejectedButGeometrySkewDegrades) {
  SyncEngine<U64Symbol> engine;
  engine.add_item(U64Symbol::random(1));

  // Garbage probe bytes: the frame lied about carrying a strata digest --
  // a specific protocol error, not a crash and not a silent grant.
  v2::Frame hello;
  hello.type = v2::FrameType::kHello;
  hello.session_id = 1;
  hello.backend = static_cast<std::uint8_t>(BackendId::kRiblt);
  hello.item_size = 8;
  hello.checksum_len = 8;
  hello.adaptive = true;
  hello.peer_id = 5;
  hello.probe.assign(16, std::byte{0xff});
  CHECK_EQ(protocol_error_of([&] {
             (void)engine.handle_frame(v2::encode_frame(hello));
           }),
           "malformed adaptive probe");

  // A well-formed digest of a DIFFERENT geometry (config skew across
  // builds) is not an error: the estimate degrades to the fallbacks.
  iblt::StrataEstimator<U64Symbol, SipHasher<U64Symbol>> skewed(
      8, 2, 2, SipHasher<U64Symbol>{});
  v2::Frame skew = hello;
  skew.session_id = 2;
  skew.probe = skewed.serialize(adaptive::kProbeChecksumLen);
  REQUIRE_EQ(engine.handle_frame(v2::encode_frame(skew)).size(), 1u);
  const SessionStats* stats = engine.session(2);
  REQUIRE(stats != nullptr);
  CHECK(stats->adaptive);
  CHECK_EQ(stats->d_estimate, adaptive::AdaptiveOptions{}.default_d);
}

TEST(Engine, SessionLimitShedsOldestIdleInsteadOfRejecting) {
  // A fake clock orders the sessions' last-activity stamps deterministically.
  double now = 0.0;
  EngineOptions options;
  options.max_sessions = 2;
  options.clock = [&now] { return now; };
  SyncEngine<U64Symbol> engine({}, options);
  engine.add_item(U64Symbol::random(1));

  SyncClient<U64Symbol> first(1, BackendId::kRiblt);
  (void)engine.handle_frame(first.hello());
  now = 1.0;
  SyncClient<U64Symbol> second(2, BackendId::kRiblt);
  (void)engine.handle_frame(second.hello());
  CHECK_EQ(engine.session_count(), 2u);

  // At the cap, a new HELLO evicts the ACTIVE session idle the longest
  // (session 1): the replies carry its ERROR frame plus the HELLO_ACK.
  now = 2.0;
  SyncClient<U64Symbol> third(3, BackendId::kRiblt);
  const auto replies = engine.handle_frame(third.hello());
  REQUIRE_EQ(replies.size(), 2u);
  CHECK_EQ(static_cast<std::uint8_t>(replies[0][0]),
           static_cast<std::uint8_t>(v2::FrameType::kError));
  CHECK_EQ(v2::peek_session_id(replies[0]), 1u);
  CHECK_EQ(static_cast<std::uint8_t>(replies[1][0]),
           static_cast<std::uint8_t>(v2::FrameType::kHelloAck));
  CHECK_EQ(engine.session_count(), 2u);
  CHECK(engine.session(1) == nullptr);  // evicted and retired
  CHECK(!engine.close_session(1));

  // The evicted session folds into the lifetime totals as failed.
  const EngineTotals t = engine.totals();
  CHECK_EQ(t.sessions_evicted, 1u);
  CHECK_EQ(t.sessions, 3u);
  CHECK_EQ(t.failed, 1u);
  CHECK_EQ(t.active, 2u);

  // A slot held by an already-terminal session is preferred: no eviction,
  // no ERROR frame -- the dead session just retires silently.
  SyncClient<U64Symbol> aborter(2, BackendId::kRiblt);  // matches sid 2
  (void)engine.handle_frame(v2::make_error_frame(2, "client abort"));
  now = 3.0;
  SyncClient<U64Symbol> fourth(4, BackendId::kRiblt);
  const auto replies2 = engine.handle_frame(fourth.hello());
  REQUIRE_EQ(replies2.size(), 1u);
  CHECK_EQ(static_cast<std::uint8_t>(replies2[0][0]),
           static_cast<std::uint8_t>(v2::FrameType::kHelloAck));
  CHECK_EQ(engine.totals().sessions_evicted, 1u);

  CHECK(engine.close_session(3));
  CHECK(engine.close_session(4));
  CHECK_EQ(engine.session_count(), 0u);
  // Lifetime totals survive the closes: 4 sessions ever, none live.
  CHECK_EQ(engine.totals().sessions, 4u);
  CHECK_EQ(engine.totals().active, 0u);
}

TEST(Engine, ReapIdleReclaimsAbandonedSessions) {
  double now = 0.0;
  EngineOptions options;
  options.idle_deadline_s = 5.0;
  options.clock = [&now] { return now; };
  SyncEngine<U64Symbol> engine({}, options);
  for (std::uint64_t i = 1; i <= 64; ++i) {
    engine.add_item(U64Symbol::random(i));
  }

  // Session 1 says HELLO and goes silent -- the abandoned-mid-handshake
  // peer. Session 2 keeps sending frames (pacing credits count as life).
  SyncClient<U64Symbol> ghost(1, BackendId::kRiblt);
  (void)engine.handle_frame(ghost.hello());
  SyncClient<U64Symbol> live(2, BackendId::kIbltStrata);
  auto acks = engine.handle_frame(live.hello());
  REQUIRE_EQ(acks.size(), 1u);

  now = 4.0;
  {
    // A real protocol step refreshes session 2's activity stamp: one
    // SYMBOLS frame out, the client's ROUND reply back in.
    (void)live.handle_frame(acks[0]);
    const auto sym = engine.next_frame(2);
    REQUIRE(sym.has_value());
    for (const auto& reply : live.handle_frame(*sym)) {
      (void)engine.handle_frame(reply);
    }
  }

  // At t=6 the ghost is 6s idle (> 5s deadline) but session 2 is only 2s
  // idle: exactly one session reaps, with an ERROR frame addressed to it.
  now = 6.0;
  auto reaped = engine.reap_idle();
  REQUIRE_EQ(reaped.size(), 1u);
  CHECK_EQ(reaped[0].first, 1u);
  CHECK_EQ(static_cast<std::uint8_t>(reaped[0].second[0]),
           static_cast<std::uint8_t>(v2::FrameType::kError));
  CHECK_EQ(engine.session_count(), 1u);
  CHECK(engine.session(1) == nullptr);

  const EngineTotals t = engine.totals();
  CHECK_EQ(t.sessions_reaped, 1u);
  CHECK_EQ(t.failed, 1u);

  // Idle reaping disabled (deadline 0): nothing ever reaps.
  now = 1e9;
  CHECK(engine.reap_idle(0).empty());
  // The reaper only touches ACTIVE sessions; terminal ones are
  // close_session's job.
  (void)engine.reap_idle();
  (void)engine.close_session(2);
  CHECK_EQ(engine.session_count(), 0u);
}

}  // namespace
}  // namespace ribltx::sync
