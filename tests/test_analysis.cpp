// Tests for the density-evolution analysis (paper §5): exponential-integral
// accuracy against standard table values, the Theorem 5.1 threshold solver
// (Corollary 5.2: eta*(0.5) = 1.35; Fig 4 optimum alpha ~0.64 -> 1.31), and
// the stall fixed point driving Fig 6's DE curve.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/density_evolution.hpp"
#include "analysis/expint.hpp"

namespace ribltx::analysis {
namespace {

TEST(ExpInt, E1KnownValues) {
  // Abramowitz & Stegun table 5.1 / scipy.special.exp1 reference values.
  EXPECT_NEAR(expint_e1(1.0), 0.21938393439552029, 1e-12);
  EXPECT_NEAR(expint_e1(0.5), 0.55977359477616081, 1e-12);
  EXPECT_NEAR(expint_e1(2.0), 0.048900510708061120, 1e-12);
  EXPECT_NEAR(expint_e1(5.0), 0.0011482955912753257, 1e-14);
  EXPECT_NEAR(expint_e1(10.0), 4.1569689296853246e-06, 1e-17);
  EXPECT_NEAR(expint_e1(0.1), 1.8229239584193906, 1e-11);
  EXPECT_NEAR(expint_e1(0.01), 4.0379295765381135, 1e-10);
}

TEST(ExpInt, SeriesAndContinuedFractionAgreeAtSwitch) {
  // The two expansions must agree around the x = 1 switchover.
  for (double x : {0.9, 0.99, 1.0, 1.01, 1.1}) {
    const double v = expint_e1(x);
    EXPECT_GT(v, 0.0);
    // E1 is smooth and decreasing; finite-difference sanity.
    EXPECT_GT(expint_e1(x - 0.05), v);
    EXPECT_LT(expint_e1(x + 0.05), v);
  }
}

TEST(ExpInt, EiNegativeMatchesMinusE1) {
  for (double y : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_DOUBLE_EQ(expint_ei_negative(-y), -expint_e1(y));
  }
}

TEST(ExpInt, DomainErrors) {
  EXPECT_THROW((void)expint_e1(0.0), std::domain_error);
  EXPECT_THROW((void)expint_e1(-1.0), std::domain_error);
  EXPECT_THROW((void)expint_ei_negative(0.0), std::domain_error);
  EXPECT_THROW((void)expint_ei_negative(1.0), std::domain_error);
}

TEST(ExpInt, UnderflowReturnsZero) {
  EXPECT_EQ(expint_e1(800.0), 0.0);
}

TEST(DensityEvolution, StepBasicShape) {
  // f(q) in (0,1) for q in (0,1]; increasing in q; decreasing in eta.
  const double f1 = de_step(0.5, 0.5, 1.35);
  EXPECT_GT(f1, 0.0);
  EXPECT_LT(f1, 1.0);
  EXPECT_LT(de_step(0.25, 0.5, 1.35), de_step(0.75, 0.5, 1.35));
  EXPECT_GT(de_step(0.5, 0.5, 1.2), de_step(0.5, 0.5, 1.6));
  EXPECT_EQ(de_step(0.0, 0.5, 1.35), 0.0);
}

TEST(DensityEvolution, ThresholdAlphaHalfIsOnePointThreeFive) {
  // Corollary 5.2.
  const double eta = de_threshold(0.5);
  EXPECT_NEAR(eta, 1.35, 0.01);
}

TEST(DensityEvolution, OptimalAlphaNearPointSixFour) {
  // Fig 4: the DE curve attains ~1.31 around alpha = 0.64, and alpha = 0.5
  // is within 3% of optimal.
  const double at_opt = de_threshold(0.64);
  EXPECT_NEAR(at_opt, 1.31, 0.015);
  const double at_half = de_threshold(0.5);
  EXPECT_LT((at_half - at_opt) / at_opt, 0.04);

  // Coarse scan: nothing beats the 0.64 region by more than solver noise.
  for (double alpha = 0.1; alpha <= 1.0; alpha += 0.1) {
    EXPECT_GE(de_threshold(alpha) + 1e-3, at_opt) << "alpha " << alpha;
  }
}

TEST(DensityEvolution, ThresholdRisesAwayFromOptimum) {
  // Fig 4 shape: overhead grows on both flanks of the optimum.
  const double left = de_threshold(0.1);
  const double mid = de_threshold(0.64);
  const double right = de_threshold(0.95);
  EXPECT_GT(left, mid + 0.05);
  EXPECT_GT(right, mid + 0.05);
}

TEST(DensityEvolution, DecodableMonotoneInEta) {
  EXPECT_FALSE(de_decodable(0.5, 1.0));
  EXPECT_FALSE(de_decodable(0.5, 1.30));
  EXPECT_TRUE(de_decodable(0.5, 1.40));
  EXPECT_TRUE(de_decodable(0.5, 3.0));
}

TEST(DensityEvolution, StallFixedPoint) {
  // Above threshold: full recovery (q* ~ 0).
  EXPECT_LT(de_stall_fixed_point(0.5, 1.5), 1e-6);
  // Below threshold: decoder stalls with a macroscopic unrecovered mass.
  const double q_star = de_stall_fixed_point(0.5, 1.0);
  EXPECT_GT(q_star, 0.05);
  EXPECT_LT(q_star, 1.0);
  // Stall mass shrinks as eta grows toward the threshold.
  EXPECT_GT(de_stall_fixed_point(0.5, 0.9), de_stall_fixed_point(0.5, 1.2));
}

TEST(DensityEvolution, ProgressCurveShape) {
  // Fig 6: recovered fraction vs eta has a sharp knee completing by ~1.35.
  const auto curve = de_progress_curve(0.5, 0.2, 1.6, 57);
  ASSERT_EQ(curve.size(), 57u);
  EXPECT_LT(curve.front().second, 0.35);  // little recovered at eta=0.2
  EXPECT_GT(curve.back().second, 0.999);  // complete past the threshold
  // Monotone non-decreasing in eta.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second + 1e-9, curve[i - 1].second);
  }
  // The knee: between eta = 1.2 and 1.4 recovery jumps to ~1.
  double at_12 = 0, at_14 = 0;
  for (const auto& [eta, rec] : curve) {
    if (std::abs(eta - 1.2) < 0.02) at_12 = rec;
    if (std::abs(eta - 1.4) < 0.02) at_14 = rec;
  }
  EXPECT_LT(at_12, 0.999);
  EXPECT_GT(at_14, 0.999);
}

TEST(DensityEvolution, IrregularThresholdMatchesPaper) {
  // §8 / Fig 15: the optimized c=3 configuration converges to overhead 1.10.
  const double eta = de_irregular_threshold({0.18, 0.56, 0.26},
                                            {0.11, 0.68, 0.82});
  EXPECT_NEAR(eta, 1.10, 0.01);
}

TEST(DensityEvolution, IrregularDegeneratesToRegular) {
  // A single subset with alpha = 0.5 must reproduce Corollary 5.2.
  const double eta = de_irregular_threshold({1.0}, {0.5});
  EXPECT_NEAR(eta, de_threshold(0.5), 5e-3);
}

TEST(DensityEvolution, IrregularInvalidArgsThrow) {
  EXPECT_THROW((void)de_irregular_threshold({}, {}), std::domain_error);
  EXPECT_THROW((void)de_irregular_threshold({1.0}, {0.5, 0.5}),
               std::domain_error);
  EXPECT_THROW((void)de_irregular_threshold({1.0}, {1.5}), std::domain_error);
}

TEST(DensityEvolution, InvalidArgumentsThrow) {
  EXPECT_THROW((void)de_step(0.5, 0.0, 1.0), std::domain_error);
  EXPECT_THROW((void)de_step(0.5, 0.5, 0.0), std::domain_error);
  EXPECT_THROW((void)de_threshold(0.0), std::domain_error);
  EXPECT_THROW((void)de_threshold(1.5), std::domain_error);
}

}  // namespace
}  // namespace ribltx::analysis
