// Tests for the shared serving path's core structure: SequenceCache (lazy
// doubling materialization, O(log m) in-place churn, churn journal) and its
// snapshot Cursor (per-session consistency under concurrent churn), plus
// the v1 ReconcileServer serving many sessions from one shared cache.
//
// Acceptance property (ISSUE 3): a churned cache decodes identically to a
// freshly-built sketch of the final set, under randomized add/remove
// interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/riblt.hpp"
#include "sync/protocol.hpp"
#include "testutil.hpp"

namespace ribltx {
namespace {

using testing::for_all;
using testing::key_set;
using testing::make_set_pair;
using Item32 = ByteSymbol<32>;

template <Symbol T>
std::vector<CodedSymbol<T>> encoder_prefix(const std::vector<T>& items,
                                           std::size_t m) {
  Encoder<T> enc;
  for (const auto& x : items) enc.add_symbol(x);
  std::vector<CodedSymbol<T>> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) out.push_back(enc.produce_next());
  return out;
}

TEST(SequenceCache, LazyPrefixMatchesEncoderAcrossBlockBoundaries) {
  const auto w = make_set_pair<Item32>(500, 0, 0, 31);
  SequenceCache<Item32> cache;  // lazy: nothing materialized yet
  for (const auto& x : w.a) cache.add_symbol(x);
  CHECK_EQ(cache.materialized(), 0u);
  CHECK_EQ(cache.set_size(), w.a.size());

  const auto want = encoder_prefix(w.a, 300);
  // Read cells in an order that straddles several doubling blocks.
  CHECK(cache.cell(0) == want[0]);
  CHECK(cache.cell(65) == want[65]);    // forces 64 -> 128
  CHECK(cache.cell(299) == want[299]);  // forces -> 512
  for (std::size_t i = 0; i < 300; ++i) {
    if (!(cache.cell(i) == want[i])) {
      ADD_FAILURE() << "cell " << i << " diverges from the encoder stream";
      break;
    }
  }
  CHECK_EQ(cache.materialized(), 512u);
}

TEST(SequenceCache, PreMaterializedConstructorMatchesSketch) {
  const auto w = make_set_pair<Item32>(200, 0, 0, 32);
  constexpr std::size_t kCells = 100;
  SequenceCache<Item32> cache(kCells);
  Sketch<Item32> sketch(kCells);
  for (const auto& x : w.a) {
    cache.add_symbol(x);
    sketch.add_symbol(x);
  }
  REQUIRE_EQ(cache.materialized(), kCells);
  for (std::size_t i = 0; i < kCells; ++i) {
    CHECK(cache.cells()[i] == sketch.cells()[i]);
  }
}

// Acceptance criterion: a cache that lived through arbitrary interleaved
// adds/removes (including removes of never-materialized items and re-adds
// of removed ones) holds exactly the cells of a sketch built fresh from
// the final set.
TEST(SequenceCache, ChurnedCacheEqualsFreshSketchProperty) {
  for_all("churned cache == fresh sketch of the final set", 30, 777,
          [](SplitMix64& rng) {
            const std::size_t kCells = 64 + rng.next() % 128;
            SequenceCache<U64Symbol> cache;
            std::vector<U64Symbol> live;
            // Start with a base set.
            for (std::size_t i = 0; i < 60; ++i) {
              live.push_back(U64Symbol::random(rng.next()));
              cache.add_symbol(live.back());
            }
            // Force partial materialization mid-history.
            (void)cache.cell(kCells / 2);
            // Random interleaved churn.
            for (std::size_t step = 0; step < 120; ++step) {
              if (!live.empty() && rng.next() % 3 == 0) {
                const std::size_t victim = rng.next() % live.size();
                cache.remove_symbol(live[victim]);
                live[victim] = live.back();
                live.pop_back();
              } else {
                live.push_back(U64Symbol::random(rng.next()));
                cache.add_symbol(live.back());
              }
              if (step % 17 == 0) (void)cache.cell(rng.next() % kCells);
            }
            cache.ensure(kCells);
            Sketch<U64Symbol> fresh(kCells);
            for (const auto& x : live) fresh.add_symbol(x);
            for (std::size_t i = 0; i < kCells; ++i) {
              if (!(cache.cells()[i] == fresh.cells()[i])) return false;
            }
            return cache.set_size() == live.size();
          });
}

TEST(SequenceCache, ChurnedCacheDecodesAgainstAPeer) {
  // Decode path check on top of cell equality: subtract Bob's sketch from
  // the churned cache's prefix and peel.
  const auto w = make_set_pair<Item32>(300, 8, 5, 33);
  SequenceCache<Item32> cache;
  // Alice starts from B's shared part, then churns her way to A.
  for (const auto& x : w.b) cache.add_symbol(x);
  (void)cache.cell(10);  // some cells exist before the churn
  for (const auto& x : w.only_b) cache.remove_symbol(x);
  for (const auto& x : w.only_a) cache.add_symbol(x);

  constexpr std::size_t kCells = 256;
  cache.ensure(kCells);
  Sketch<Item32> bob(kCells);
  for (const auto& y : w.b) bob.add_symbol(y);

  Decoder<Item32> dec;
  std::size_t used = 0;
  for (std::size_t i = 0; i < kCells && !dec.decoded(); ++i, ++used) {
    CodedSymbol<Item32> diff = cache.cells()[i];
    diff.subtract(bob.cells()[i]);
    dec.add_coded_symbol(diff);
  }
  REQUIRE(dec.decoded());
  CHECK_EQ(dec.remote().size(), w.only_a.size());
  CHECK_EQ(dec.local().size(), w.only_b.size());
}

TEST(SequenceCacheCursor, SnapshotsSurviveConcurrentChurn) {
  // Two cursors pinned to different set versions stream their own
  // consistent snapshots from the one live cache.
  const auto w = make_set_pair<Item32>(150, 6, 0, 34);
  auto cache = std::make_shared<SequenceCache<Item32>>();
  for (const auto& x : w.a) cache->add_symbol(x);

  SequenceCache<Item32>::Cursor c0(cache);  // snapshot S0 = w.a
  std::vector<CodedSymbol<Item32>> first;
  for (int i = 0; i < 20; ++i) first.push_back(c0.next());

  // Churn: remove 5 items of S0, add 7 new ones -> S1.
  std::vector<Item32> s1(w.a.begin() + 5, w.a.end());
  for (std::size_t i = 0; i < 5; ++i) cache->remove_symbol(w.a[i]);
  for (std::size_t i = 0; i < 7; ++i) {
    s1.push_back(Item32::random(derive_seed(3400, i)));
    cache->add_symbol(s1.back());
  }

  SequenceCache<Item32>::Cursor c1(cache);  // snapshot S1
  const auto want0 = encoder_prefix(w.a, 120);
  const auto want1 = encoder_prefix(s1, 120);
  // Interleave reads; both cursors must reproduce their snapshot's stream,
  // and c0's pre-churn cells must agree with what it already handed out.
  for (std::size_t i = 0; i < 20; ++i) {
    CHECK(first[i] == want0[i]);
  }
  for (std::size_t i = 20, j = 0; i < 120; ++i, ++j) {
    CHECK(c0.next() == want0[i]);
    CHECK(c1.next() == want1[j]);
  }

  // The journal retains ops only while cursors that predate them live.
  CHECK(cache->journal_size() > 0);
  {
    SequenceCache<Item32>::Cursor drop = std::move(c0);
  }
  {
    SequenceCache<Item32>::Cursor drop = std::move(c1);
  }
  CHECK_EQ(cache->live_cursor_count(), 0u);
  CHECK_EQ(cache->journal_size(), 0u);  // last cursor's death emptied it
}

TEST(SequenceCacheCursor, RemovedThenReaddedItemRoundTrips) {
  // Tombstone + re-add: the cursor stream of the final snapshot matches a
  // fresh encode even when the same item cycled out and back in.
  auto cache = std::make_shared<SequenceCache<U64Symbol>>();
  std::vector<U64Symbol> items;
  for (std::size_t i = 0; i < 40; ++i) {
    items.push_back(U64Symbol::random(derive_seed(35, i)));
    cache->add_symbol(items.back());
  }
  (void)cache->cell(5);
  cache->remove_symbol(items[3]);
  cache->add_symbol(items[3]);
  const auto want = encoder_prefix(items, 80);
  SequenceCache<U64Symbol>::Cursor cur(cache);
  for (std::size_t i = 0; i < 80; ++i) {
    if (!(cur.next() == want[i])) {
      ADD_FAILURE() << "cell " << i << " diverges after remove/re-add";
      break;
    }
  }
}

TEST(SequenceCache, JournalPruningBounds) {
  auto cache = std::make_shared<SequenceCache<U64Symbol>>();
  cache->add_symbol(U64Symbol::random(1));
  CHECK_EQ(cache->journal_size(), 0u);  // no cursors -> no history kept

  SequenceCache<U64Symbol>::Cursor cur(cache);
  for (std::uint64_t i = 2; i < 10; ++i) {
    cache->add_symbol(U64Symbol::random(i));
  }
  CHECK_EQ(cache->journal_size(), 8u);
  // Ops below the cursor's floor can go; the cursor still streams fine.
  cache->prune_journal(cur.journal_position());
  CHECK_EQ(cache->journal_size(), 8u);  // floor is the snapshot: keeps all
  (void)cur.next();                     // catches up; floor advances
  cache->prune_journal(cur.journal_position());
  CHECK_EQ(cache->journal_size(), 0u);
  EXPECT_THROW((void)cache->op(cur.snapshot_version()), std::out_of_range);
}

// Satellite (ISSUE 4): sustained churn must not grow the coding window
// without bound -- once tombstones and their cancelled adds dominate, the
// window is rebuilt from the live set, and everything (cells, future
// blocks, snapshots) stays exactly equivalent.
TEST(SequenceCache, WindowCompactionBoundsSustainedChurn) {
  auto cache = std::make_shared<SequenceCache<U64Symbol>>();
  std::vector<U64Symbol> live;
  SplitMix64 rng(909);
  for (std::size_t i = 0; i < 300; ++i) {
    live.push_back(U64Symbol::random(rng.next()));
    cache->add_symbol(live.back());
  }
  (void)cache->cell(40);  // partially materialized before the churn

  // Weeks of churn in miniature: 2000 replace cycles on a 300-item set.
  for (std::size_t step = 0; step < 2000; ++step) {
    const std::size_t victim = rng.next() % live.size();
    cache->remove_symbol(live[victim]);
    live[victim] = U64Symbol::random(rng.next());
    cache->add_symbol(live[victim]);
    if (step % 97 == 0) (void)cache->cell(rng.next() % 128);
  }

  // Without compaction the window would hold 300 + 2 * 2000 entries; the
  // tombstone-ratio trigger keeps it within a small multiple of the live
  // set (the bound below allows one full not-yet-triggered batch).
  CHECK_EQ(cache->set_size(), live.size());
  CHECK(cache->window_size() <
        2 * live.size() + 4 * SequenceCache<U64Symbol>::kCompactMinTombstones)
      << "window grew to " << cache->window_size();

  // Cells (materialized and future) still equal a fresh sketch of the
  // live set.
  constexpr std::size_t kCells = 700;
  cache->ensure(kCells);
  Sketch<U64Symbol> fresh(kCells);
  for (const auto& x : live) fresh.add_symbol(x);
  for (std::size_t i = 0; i < kCells; ++i) {
    if (!(cache->cells()[i] == fresh.cells()[i])) {
      ADD_FAILURE() << "cell " << i << " diverges after compaction";
      break;
    }
  }

  // An explicit compaction drops every dead pair outright, and a snapshot
  // cursor opened before more churn still streams its own set.
  cache->compact_window();
  CHECK_EQ(cache->window_tombstones(), 0u);
  CHECK(cache->window_size() <= live.size());
  SequenceCache<U64Symbol>::Cursor cur(cache);
  const auto before = live;
  cache->remove_symbol(live[0]);
  cache->add_symbol(U64Symbol::random(rng.next()));
  const auto want = encoder_prefix(before, 64);
  for (std::size_t i = 0; i < 64; ++i) {
    if (!(cur.next() == want[i])) {
      ADD_FAILURE() << "snapshot cell " << i << " diverges across churn "
                       "after compaction";
      break;
    }
  }
}

// --------------------------------------------------------------------------
// Multi-writer churn (ISSUE 7). The SequenceCacheConcurrent suite is the
// TSan CI target: every test drives real threads through the lock-free
// churn path (atomic cells + striped journals + the exclusive gate) and
// then checks exact equality against single-threaded reference structures
// -- linearity says the interleaving must not matter at all.

// Seeded property: K writer threads churning concurrently (adds + removes
// of their own items, with lazy growth forced mid-churn) leave the cache
// byte-equal to a fresh sketch of the net multiset.
TEST(SequenceCacheConcurrent, MultiWriterChurnEqualsFreshSketch) {
  for_all("K-writer concurrent churn == fresh sketch of the net set", 5,
          4242, [](SplitMix64& rng) {
            const std::size_t writers = 2 + rng.next() % 3;  // 2..4
            constexpr std::size_t kOps = 300;
            constexpr std::size_t kCells = 256;
            SequenceCache<U64Symbol> cache(192);  // growth forced below
            std::vector<std::uint64_t> seeds;
            for (std::size_t w = 0; w < writers; ++w) {
              seeds.push_back(rng.next());
            }
            std::vector<std::vector<U64Symbol>> live(writers);
            std::vector<std::thread> fleet;
            for (std::size_t w = 0; w < writers; ++w) {
              fleet.emplace_back([&cache, &live, &seeds, w] {
                SplitMix64 wrng(seeds[w]);
                auto& mine = live[w];
                for (std::size_t i = 0; i < kOps; ++i) {
                  if (!mine.empty() && wrng.next() % 3 == 0) {
                    const std::size_t victim = wrng.next() % mine.size();
                    cache.remove_symbol(mine[victim]);
                    mine[victim] = mine.back();
                    mine.pop_back();
                  } else {
                    mine.push_back(U64Symbol::random(wrng.next()));
                    cache.add_symbol(mine.back());
                  }
                  if (i % 64 == 63) {
                    // Block materialization races steady-state churn.
                    (void)cache.cell(kCells - 1 - (w % 8));
                  }
                }
              });
            }
            for (auto& t : fleet) t.join();

            cache.ensure(kCells);
            Sketch<U64Symbol> fresh(kCells);
            std::size_t net = 0;
            for (const auto& mine : live) {
              for (const auto& x : mine) fresh.add_symbol(x);
              net += mine.size();
            }
            const auto cells = cache.cells();
            for (std::size_t i = 0; i < kCells; ++i) {
              if (!(cells[i] == fresh.cells()[i])) return false;
            }
            return cache.set_size() == net;
          });
}

// A cursor opened WHILE writers churn pins some completed-op prefix; the
// test recovers exactly which set that was (by decoding the snapshot
// stream against a quiesced final-set stream) and demands the cursor's
// cells be byte-equal to a fresh sketch of that set.
TEST(SequenceCacheConcurrent, CursorSnapshotConsistentUnderConcurrentChurn) {
  constexpr std::size_t kWriters = 3;
  constexpr std::size_t kOps = 150;
  constexpr std::size_t kRead = 1024;
  auto cache = std::make_shared<SequenceCache<U64Symbol>>(128);
  std::vector<U64Symbol> base;
  SplitMix64 rng(5151);
  for (std::size_t i = 0; i < 100; ++i) {
    base.push_back(U64Symbol::random(rng.next()));
    cache->add_symbol(base.back());
  }

  std::vector<std::uint64_t> seeds;
  for (std::size_t w = 0; w < kWriters; ++w) seeds.push_back(rng.next());
  std::vector<std::vector<U64Symbol>> live(kWriters);
  std::atomic<bool> started{false};
  std::vector<std::thread> fleet;
  for (std::size_t w = 0; w < kWriters; ++w) {
    fleet.emplace_back([&, w] {
      SplitMix64 wrng(seeds[w]);
      auto& mine = live[w];
      for (std::size_t i = 0; i < kOps; ++i) {
        if (i == 4 && w == 0) started.store(true, std::memory_order_release);
        if (!mine.empty() && wrng.next() % 4 == 0) {
          const std::size_t victim = wrng.next() % mine.size();
          cache->remove_symbol(mine[victim]);
          mine[victim] = mine.back();
          mine.pop_back();
        } else {
          mine.push_back(U64Symbol::random(wrng.next()));
          cache->add_symbol(mine.back());
        }
      }
    });
  }

  // Snapshot mid-churn and stream it while writers keep going: seqlock
  // retries, journal catch-up, and lazy growth all race live churn here.
  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
  SequenceCache<U64Symbol>::Cursor mid(cache);
  std::vector<CodedSymbol<U64Symbol>> mid_cells;
  mid_cells.reserve(kRead);
  for (std::size_t i = 0; i < kRead; ++i) mid_cells.push_back(mid.next());
  for (auto& t : fleet) t.join();

  // Quiesced final stream, then decode (snapshot - final).
  SequenceCache<U64Symbol>::Cursor fin(cache);
  Decoder<U64Symbol> dec;
  for (std::size_t i = 0; i < kRead && !dec.decoded(); ++i) {
    CodedSymbol<U64Symbol> diff = mid_cells[i];
    diff.subtract(fin.next());
    dec.add_coded_symbol(diff);
  }
  REQUIRE(dec.decoded());

  // Reconstruct the snapshot set S = (F \ local) | remote and pin the
  // cursor's whole output to a fresh sketch of S.
  std::set<U64Symbol> snap(base.begin(), base.end());
  for (const auto& mine : live) snap.insert(mine.begin(), mine.end());
  for (const auto& s : dec.local()) snap.erase(s.symbol);
  for (const auto& s : dec.remote()) snap.insert(s.symbol);
  Sketch<U64Symbol> fresh(kRead);
  for (const auto& x : snap) fresh.add_symbol(x);
  for (std::size_t i = 0; i < kRead; ++i) {
    if (!(mid_cells[i] == fresh.cells()[i])) {
      ADD_FAILURE() << "snapshot cell " << i
                    << " diverges from the recovered snapshot set";
      break;
    }
  }
  CHECK_EQ(cache->live_cursor_count(), 2u);
}

// Satellite (ISSUE 7): the compaction threshold reads tombstone counters
// that concurrent writers bump -- compaction must be able to fire (both
// from the racy maybe_compact trigger and an explicit call on another
// thread) while writers are mid-churn, without corrupting anything.
TEST(SequenceCacheConcurrent, CompactionDuringConcurrentChurn) {
  constexpr std::size_t kWriters = 3;
  constexpr std::size_t kOps = 400;
  SequenceCache<U64Symbol> cache(128);
  SplitMix64 rng(6767);
  std::vector<std::uint64_t> seeds;
  for (std::size_t w = 0; w < kWriters; ++w) seeds.push_back(rng.next());
  std::vector<std::vector<U64Symbol>> live(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    SplitMix64 wrng(seeds[w] ^ 1);
    for (std::size_t i = 0; i < 50; ++i) {
      live[w].push_back(U64Symbol::random(wrng.next()));
      cache.add_symbol(live[w].back());
    }
  }

  std::atomic<bool> churning{true};
  std::thread compactor([&] {
    // Explicit compactions racing the writers' own maybe_compact triggers.
    while (churning.load(std::memory_order_acquire)) {
      cache.compact_window();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> fleet;
  for (std::size_t w = 0; w < kWriters; ++w) {
    fleet.emplace_back([&cache, &live, &seeds, w] {
      SplitMix64 wrng(seeds[w]);
      auto& mine = live[w];
      for (std::size_t i = 0; i < kOps; ++i) {
        // Pure replacement churn: maximal tombstone pressure.
        const std::size_t victim = wrng.next() % mine.size();
        cache.remove_symbol(mine[victim]);
        mine[victim] = U64Symbol::random(wrng.next());
        cache.add_symbol(mine[victim]);
      }
    });
  }
  for (auto& t : fleet) t.join();
  churning.store(false, std::memory_order_release);
  compactor.join();

  std::size_t net = 0;
  Sketch<U64Symbol> fresh(128);
  for (const auto& mine : live) {
    for (const auto& x : mine) fresh.add_symbol(x);
    net += mine.size();
  }
  CHECK_EQ(cache.set_size(), net);
  cache.compact_window();
  CHECK_EQ(cache.window_tombstones(), 0u);
  CHECK(cache.window_size() <= net);
  const auto cells = cache.cells();
  for (std::size_t i = 0; i < 128; ++i) {
    if (!(cells[i] == fresh.cells()[i])) {
      ADD_FAILURE() << "cell " << i << " diverges after concurrent "
                       "compaction + churn";
      break;
    }
  }
}

TEST(V1Protocol, SharedCacheServesSessionsAcrossChurn) {
  // The §2 serving model through the v1 protocol: many ReconcileServer
  // sessions over ONE cache, with churn between session opens. Each client
  // must decode the diff against the server set as of its session start.
  const auto w = make_set_pair<Item32>(250, 7, 4, 36);
  auto cache = std::make_shared<SequenceCache<Item32>>();
  for (const auto& x : w.a) cache->add_symbol(x);

  // Pump a session (HELLO already delivered) to completion.
  auto pump = [&](sync::ReconcileServer<Item32>& server,
                  sync::ReconcileClient<Item32>& client) {
    for (int i = 0; i < 1000 && !client.complete(); ++i) {
      auto b = server.next_batch();
      REQUIRE(b.has_value());
      if (auto done = client.handle_message(*b)) {
        server.handle_message(*done);
      }
    }
    REQUIRE(client.complete());
  };

  // Session 1 pins its snapshot (S0 = w.a) at its first batch, so open it
  // and pull one batch before churning.
  auto s1 = sync::ReconcileServer<Item32>::serving(cache);
  sync::ReconcileClient<Item32> c1;
  for (const auto& y : w.b) c1.add_local_symbol(y);
  s1.handle_message(c1.hello());
  auto batch = s1.next_batch();
  REQUIRE(batch.has_value());
  if (auto done = c1.handle_message(*batch)) s1.handle_message(*done);

  // Churn: S1 = S0 minus 3 shared items plus 2 fresh ones.
  std::vector<Item32> set1(w.a.begin() + 3, w.a.end());
  for (std::size_t i = 0; i < 3; ++i) cache->remove_symbol(w.a[i]);
  for (std::size_t i = 0; i < 2; ++i) {
    set1.push_back(Item32::random(derive_seed(3700, i)));
    cache->add_symbol(set1.back());
  }

  // Session 2 snapshots S1.
  auto s2 = sync::ReconcileServer<Item32>::serving(cache);
  sync::ReconcileClient<Item32> c2;
  for (const auto& y : w.b) c2.add_local_symbol(y);
  s2.handle_message(c2.hello());
  pump(s2, c2);

  // Finish session 1 on its own S0 snapshot.
  if (!c1.complete()) pump(s1, c1);

  // Session 1 sees S0 \ B and B \ S0.
  std::vector<Item32> c1_remote, c1_local;
  for (const auto& s : c1.remote()) c1_remote.push_back(s.symbol);
  for (const auto& s : c1.local()) c1_local.push_back(s.symbol);
  CHECK(key_set(c1_remote) == key_set(w.only_a));
  CHECK(key_set(c1_local) == key_set(w.only_b));

  // Session 2 sees S1 \ B and B \ S1: the 3 removed shared items flip to
  // the client side; the 2 fresh items join the server side.
  std::vector<Item32> want_remote(w.only_a.begin(), w.only_a.end());
  want_remote.push_back(set1[set1.size() - 2]);
  want_remote.push_back(set1[set1.size() - 1]);
  std::vector<Item32> want_local(w.only_b.begin(), w.only_b.end());
  for (std::size_t i = 0; i < 3; ++i) want_local.push_back(w.a[i]);
  std::vector<Item32> c2_remote, c2_local;
  for (const auto& s : c2.remote()) c2_remote.push_back(s.symbol);
  for (const auto& s : c2.local()) c2_local.push_back(s.symbol);
  CHECK(key_set(c2_remote) == key_set(want_remote));
  CHECK(key_set(c2_local) == key_set(want_local));
}

}  // namespace
}  // namespace ribltx
